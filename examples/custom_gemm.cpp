/**
 * @file
 * Command-line what-if tool: evaluate a custom GEMM shape at chosen HO
 * vector sparsities on all five accelerator models. Useful for sizing a
 * deployment before committing to a quantization recipe.
 *
 * Usage:
 *   ./build/examples/custom_gemm M K N [rho_w] [rho_x] [dwos] [swos]
 * e.g.
 *   ./build/examples/custom_gemm 4096 4096 512 0.5 0.9
 */

#include <cstdlib>
#include <iostream>

#include "panacea/simulation.h"
#include "panacea/util.h"

using namespace panacea;

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::cerr << "usage: " << argv[0]
                  << " M K N [rho_w=0.5] [rho_x=0.9] [dwos=4] [swos=8]\n";
        return 1;
    }
    const auto m = static_cast<std::size_t>(std::atoll(argv[1]));
    const auto k = static_cast<std::size_t>(std::atoll(argv[2]));
    const auto n = static_cast<std::size_t>(std::atoll(argv[3]));
    const double rho_w = argc > 4 ? std::atof(argv[4]) : 0.5;
    const double rho_x = argc > 5 ? std::atof(argv[5]) : 0.9;
    const int dwos = argc > 6 ? std::atoi(argv[6]) : 4;
    const int swos = argc > 7 ? std::atoi(argv[7]) : 8;

    fatal_if(m == 0 || k == 0 || n == 0, "dimensions must be positive");
    fatal_if(m % 4 != 0 || n % 4 != 0,
             "M and N must be multiples of the vector length 4");
    fatal_if(rho_w < 0.0 || rho_w > 1.0 || rho_x < 0.0 || rho_x > 1.0,
             "sparsities must lie in [0,1]");

    Rng rng(1);
    GemmWorkload wl = GemmWorkload::synthetic("custom", m, k, n, rho_w,
                                              rho_x, 4, rng);

    std::cout << "GEMM " << m << "x" << k << " * " << k << "x" << n
              << "  rho_w=" << rho_w << " rho_x=" << rho_x << "\n";

    PanaceaConfig cfg;
    cfg.dwosPerPea = dwos;
    cfg.swosPerPea = swos;
    PanaceaSimulator panacea(cfg);
    TrafficPlan plan = panacea.planTraffic(wl);
    std::cout << "memory plan: DTP "
              << (plan.dtpEnabled ? "enabled" : "disabled")
              << ", weights " << (plan.weightsResident ? "resident"
                                                       : "streamed")
              << ", activations "
              << (plan.actsResident ? "resident" : "re-streamed") << "\n";

    Table t({"design", "cycles", "ms", "TOPS", "TOPS/W", "mult util",
             "DRAM MB"});
    SystolicSimulator sa_ws(SystolicDataflow::WeightStationary);
    SystolicSimulator sa_os(SystolicDataflow::OutputStationary);
    SimdSimulator simd;
    SibiaSimulator sibia;
    const Accelerator *designs[] = {&sa_ws, &sa_os, &simd, &sibia};
    for (const Accelerator *acc : designs) {
        PerfResult r = acc->run(wl);
        t.newRow()
            .cell(r.accelerator)
            .cell(static_cast<std::int64_t>(r.counters.cycles))
            .cell(r.seconds() * 1e3, 3)
            .cell(r.tops(), 3)
            .cell(r.topsPerWatt(), 3)
            .percentCell(r.opUtilization())
            .cell(static_cast<double>(r.counters.dramReadBytes +
                                      r.counters.dramWriteBytes) / 1e6,
                  1);
    }
    PerfResult r = panacea.run(wl);
    t.newRow()
        .cell(r.accelerator)
        .cell(static_cast<std::int64_t>(r.counters.cycles))
        .cell(r.seconds() * 1e3, 3)
        .cell(r.tops(), 3)
        .cell(r.topsPerWatt(), 3)
        .percentCell(r.opUtilization())
        .cell(static_cast<double>(r.counters.dramReadBytes +
                                  r.counters.dramWriteBytes) / 1e6, 1);
    t.print(std::cout);
    return 0;
}
