/**
 * @file
 * Quickstart: calibrate one linear layer with the full Panacea PTQ
 * pipeline (asymmetric activations, ZPM, DBS), run the AQS-GEMM, and
 * verify the three headline properties on your own data:
 *
 *   1. the bit-slice result is exact (equal to the plain integer GEMM),
 *   2. the frequent non-zero HO slices are compressed and skipped,
 *   3. the float output matches the unquantized GEMM closely.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cmath>
#include <iostream>

#include "panacea/core.h"
#include "panacea/util.h"

using namespace panacea;

int
main()
{
    Rng rng(42);

    // A toy layer: 64 outputs, 128 inputs, 32 tokens.
    const std::size_t m = 64;
    const std::size_t k = 128;
    const std::size_t n = 32;

    MatrixF w(m, k);
    for (auto &v : w.data())
        v = static_cast<float>(rng.gaussian(0.0, 0.1));
    std::vector<float> bias(m, 0.05f);

    // Activations with the asymmetric, zero-moded shape of real DNN
    // tensors (mass near zero, occasional wide values).
    auto make_acts = [&rng, k](std::size_t cols) {
        MatrixF x(k, cols);
        for (auto &v : x.data())
            v = rng.bernoulli(0.04)
                    ? static_cast<float>(rng.uniformReal(-0.4, 0.8))
                    : static_cast<float>(rng.gaussian(0.0, 0.04));
        return x;
    };

    // --- 1. PTQ calibration (paper Fig. 6) ---
    std::vector<MatrixF> calib = {make_acts(64), make_acts(64)};
    AqsPipelineOptions opts;   // 7-bit SBR weights, 8-bit asym acts,
                               // ZPM + DBS enabled, Eq. (6) compensation
    AqsLinearLayer layer = AqsLinearLayer::calibrate(w, bias, calib, opts);

    std::cout << "calibrated: weight scale = "
              << layer.weightParams().scale
              << ", activation zp = "
              << layer.activationParams().zeroPoint << " (post-ZPM), "
              << "DBS " << toString(layer.dbsDecision().type)
              << " (l = " << layer.dbsDecision().loBits << "), r = "
              << layer.dbsDecision().zpm.frequentSlice << "\n";

    // --- 2. Inference with the AQS-GEMM ---
    MatrixF x = make_acts(n);
    AqsStats stats;
    MatrixF y = layer.forward(x, &stats);

    std::cout << "AQS-GEMM: " << stats.executedOuterProducts
              << " outer products executed, "
              << stats.skippedOuterProducts << " skipped ("
              << stats.macReduction() * 100.0 << "% MAC reduction), "
              << stats.compMults << " compensation multiplies\n";

    // --- 3. Exactness: same codes through the naive integer path ---
    QuantizedLinear reference = QuantizedLinear::make(
        w, bias, opts.weightBits, layer.activationParams());
    MatrixI32 codes = layer.quantizeInput(x);
    bool exact = layer.forwardCodes(codes) == reference.forwardCodes(codes);
    std::cout << "bit-exact vs plain integer GEMM: "
              << (exact ? "YES" : "NO") << "\n";

    // --- 4. End-to-end fidelity vs the float layer ---
    MatrixF y_ref = floatGemm(w, x, bias);
    double err = 0.0;
    double mag = 0.0;
    for (std::size_t i = 0; i < y.data().size(); ++i) {
        double d = y.data()[i] - y_ref.data()[i];
        err += d * d;
        mag += static_cast<double>(y_ref.data()[i]) * y_ref.data()[i];
    }
    std::cout << "relative output error vs float GEMM: "
              << std::sqrt(err / mag) * 100.0 << "%\n";
    return exact ? 0 : 1;
}
