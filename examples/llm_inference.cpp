/**
 * @file
 * LLM inference scenario: deploy an OPT-class transformer block on the
 * Panacea accelerator and compare it against the Sibia baseline - the
 * paper's headline use case (OPT-2.7B: ~2x energy efficiency).
 *
 * The example builds the model's unique GEMM layers with the full PTQ
 * pipeline, runs the cycle simulators, and reports per-layer and
 * end-to-end energy, latency and the perplexity proxy. It then runs an
 * autoregressive decode loop on the host AQS-GEMM engine through the
 * serving runtime's prepared-operand cache (src/serve/): weights are
 * sliced/RLE-encoded/HO-compressed ONCE at load and every decode step
 * reuses them, versus the naive flow that re-prepares the operands
 * each step - the prep-amortization win is printed.
 *
 * Usage: ./build/examples/llm_inference [tokens]   (default 512)
 */

#include <cstdlib>
#include <iostream>

#include "arch/panacea_sim.h"
#include "baselines/sibia.h"
#include "models/accuracy_proxy.h"
#include "models/model_workloads.h"
#include "models/model_zoo.h"
#include "serve/engine.h"
#include "serve/operand_cache.h"
#include "util/random.h"
#include "util/table.h"
#include "util/walltime.h"

using namespace panacea;

int
main(int argc, char **argv)
{
    std::size_t tokens = 512;
    if (argc > 1)
        tokens = static_cast<std::size_t>(std::atol(argv[1]));
    fatal_if(tokens == 0 || tokens % 4 != 0,
             "token count must be a positive multiple of 4");

    ModelSpec model = opt2_7b();
    std::cout << "Building " << model.name << " workloads at " << tokens
              << " tokens (synthetic tensors, DESIGN.md S2)...\n";

    ModelBuildOptions opt;
    opt.seqLen = tokens;
    ModelBuild build = buildModel(model, opt);

    PanaceaSimulator panacea;
    SibiaSimulator sibia;

    printBanner(std::cout, "Per-layer comparison (one transformer block)");
    Table t({"layer", "M x K", "act rho (Panacea)", "DBS",
             "Panacea mJ", "Sibia mJ", "energy ratio"});
    for (const LayerBuild &lb : build.layers) {
        GemmWorkload pw = lb.panacea;
        GemmWorkload sw = lb.sibia;
        pw.repeat = 1;
        sw.repeat = 1;
        PerfResult rp = panacea.run(pw);
        PerfResult rs = sibia.run(sw);
        t.newRow()
            .cell(lb.spec.name)
            .cell(std::to_string(lb.spec.m) + "x" +
                  std::to_string(lb.spec.kDim))
            .percentCell(lb.panacea.rhoX())
            .cell(toString(lb.dbs.type))
            .cell(rp.totalMj(), 3)
            .cell(rs.totalMj(), 3)
            .ratioCell(rs.totalMj() / rp.totalMj());
    }
    t.print(std::cout);

    printBanner(std::cout, "Full model (32 blocks)");
    PerfResult total_p =
        panacea.runAll(build.panaceaWorkloads(), model.name);
    PerfResult total_s = sibia.runAll(build.sibiaWorkloads(), model.name);

    Table total({"design", "latency (ms)", "energy (mJ)", "TOPS",
                 "TOPS/W", "PPL (proxy)"});
    double ppl_asym = proxyPerplexity(
        model.fp16Ppl, build.meanNmseAsym() + build.meanWeightNmse());
    double ppl_sym = proxyPerplexity(
        model.fp16Ppl, build.meanNmseSym() + build.meanWeightNmse());
    total.newRow()
        .cell(total_s.accelerator)
        .cell(total_s.seconds() * 1e3, 2)
        .cell(total_s.totalMj(), 1)
        .cell(total_s.tops(), 3)
        .cell(total_s.topsPerWatt(), 3)
        .cell(ppl_sym, 2);
    total.newRow()
        .cell(total_p.accelerator)
        .cell(total_p.seconds() * 1e3, 2)
        .cell(total_p.totalMj(), 1)
        .cell(total_p.tops(), 3)
        .cell(total_p.topsPerWatt(), 3)
        .cell(ppl_asym, 2);
    total.print(std::cout);

    std::cout << "\nPanacea vs Sibia: "
              << total_p.topsPerWatt() / total_s.topsPerWatt()
              << "x energy efficiency, "
              << total_p.tops() / total_s.tops()
              << "x throughput (paper: 1.97x / 1.88x on OPT-2.7B), at "
              << ppl_asym << " vs " << ppl_sym << " proxy PPL (FP16 "
              << model.fp16Ppl << ").\n";

    // --- Autoregressive decode on the host engine: the prepared-operand
    // cache vs re-preparing weights every step -------------------------
    printBanner(std::cout,
                "Decode loop (host AQS-GEMM, prepared-operand cache)");
    using namespace panacea::serve;

    ServeModelOptions sopts;
    sopts.maxLayers = 2; // the attention block's QKV + PROJ GEMMs
    const std::size_t naive_steps = 2;
    const std::size_t cached_steps = 8;

    Rng rng(0xdec0de);
    const auto decode_token = [&](const ServedModel &served) {
        // One decode step: a v-wide token group through the stack.
        MatrixF x(served.inputFeatures(), 4);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        ActivationOperand op = served.prepareInput(x);
        const std::size_t offsets[] = {0, 1};
        return served.runPrepared(op, offsets);
    };

    // Naive flow: every decode step re-slices, re-encodes and
    // re-compresses the weight operands before it can multiply.
    double naive_ms = 0.0;
    for (std::size_t step = 0; step < naive_steps; ++step) {
        const auto t0 = nowTick();
        ServedModel fresh = ServedModel::build(model, sopts);
        decode_token(fresh);
        naive_ms += msSince(t0);
    }
    naive_ms /= static_cast<double>(naive_steps);

    // Cached flow: the cache prepares the weights once; every
    // subsequent step (and every other engine/process user of the same
    // key) reuses them untouched.
    PreparedModelCache &cache = PreparedModelCache::global();
    auto served = cache.acquire(model, sopts);
    double cached_ms = 0.0;
    for (std::size_t step = 0; step < cached_steps; ++step) {
        cache.acquire(model, sopts); // per-step lookup: always a hit
        const auto t0 = nowTick();
        decode_token(*served);
        cached_ms += msSince(t0);
    }
    cached_ms /= static_cast<double>(cached_steps);

    const auto cstats = cache.stats();
    std::cout << "weight prep (once, cached): " << served->buildMs()
              << " ms for " << served->layerCount()
              << " layers\nper decode step: naive (re-prepare) "
              << naive_ms << " ms -> cached " << cached_ms << " ms = "
              << naive_ms / cached_ms
              << "x faster\ncache: " << cstats.hits << " hits / "
              << cstats.misses << " misses, "
              << cstats.buildMsSaved
              << " ms of preparation amortized across this run\n";
    return 0;
}
