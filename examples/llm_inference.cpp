/**
 * @file
 * LLM inference scenario: deploy an OPT-class transformer block on the
 * Panacea accelerator and compare it against the Sibia baseline - the
 * paper's headline use case (OPT-2.7B: ~2x energy efficiency).
 *
 * The example builds the model's unique GEMM layers with the full PTQ
 * pipeline, runs the cycle simulators, and reports per-layer and
 * end-to-end energy, latency and the perplexity proxy.
 *
 * Usage: ./build/examples/llm_inference [tokens]   (default 512)
 */

#include <cstdlib>
#include <iostream>

#include "arch/panacea_sim.h"
#include "baselines/sibia.h"
#include "models/accuracy_proxy.h"
#include "models/model_workloads.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace panacea;

int
main(int argc, char **argv)
{
    std::size_t tokens = 512;
    if (argc > 1)
        tokens = static_cast<std::size_t>(std::atol(argv[1]));
    fatal_if(tokens == 0 || tokens % 4 != 0,
             "token count must be a positive multiple of 4");

    ModelSpec model = opt2_7b();
    std::cout << "Building " << model.name << " workloads at " << tokens
              << " tokens (synthetic tensors, DESIGN.md S2)...\n";

    ModelBuildOptions opt;
    opt.seqLen = tokens;
    ModelBuild build = buildModel(model, opt);

    PanaceaSimulator panacea;
    SibiaSimulator sibia;

    printBanner(std::cout, "Per-layer comparison (one transformer block)");
    Table t({"layer", "M x K", "act rho (Panacea)", "DBS",
             "Panacea mJ", "Sibia mJ", "energy ratio"});
    for (const LayerBuild &lb : build.layers) {
        GemmWorkload pw = lb.panacea;
        GemmWorkload sw = lb.sibia;
        pw.repeat = 1;
        sw.repeat = 1;
        PerfResult rp = panacea.run(pw);
        PerfResult rs = sibia.run(sw);
        t.newRow()
            .cell(lb.spec.name)
            .cell(std::to_string(lb.spec.m) + "x" +
                  std::to_string(lb.spec.kDim))
            .percentCell(lb.panacea.rhoX())
            .cell(toString(lb.dbs.type))
            .cell(rp.totalMj(), 3)
            .cell(rs.totalMj(), 3)
            .ratioCell(rs.totalMj() / rp.totalMj());
    }
    t.print(std::cout);

    printBanner(std::cout, "Full model (32 blocks)");
    PerfResult total_p =
        panacea.runAll(build.panaceaWorkloads(), model.name);
    PerfResult total_s = sibia.runAll(build.sibiaWorkloads(), model.name);

    Table total({"design", "latency (ms)", "energy (mJ)", "TOPS",
                 "TOPS/W", "PPL (proxy)"});
    double ppl_asym = proxyPerplexity(
        model.fp16Ppl, build.meanNmseAsym() + build.meanWeightNmse());
    double ppl_sym = proxyPerplexity(
        model.fp16Ppl, build.meanNmseSym() + build.meanWeightNmse());
    total.newRow()
        .cell(total_s.accelerator)
        .cell(total_s.seconds() * 1e3, 2)
        .cell(total_s.totalMj(), 1)
        .cell(total_s.tops(), 3)
        .cell(total_s.topsPerWatt(), 3)
        .cell(ppl_sym, 2);
    total.newRow()
        .cell(total_p.accelerator)
        .cell(total_p.seconds() * 1e3, 2)
        .cell(total_p.totalMj(), 1)
        .cell(total_p.tops(), 3)
        .cell(total_p.topsPerWatt(), 3)
        .cell(ppl_asym, 2);
    total.print(std::cout);

    std::cout << "\nPanacea vs Sibia: "
              << total_p.topsPerWatt() / total_s.topsPerWatt()
              << "x energy efficiency, "
              << total_p.tops() / total_s.tops()
              << "x throughput (paper: 1.97x / 1.88x on OPT-2.7B), at "
              << ppl_asym << " vs " << ppl_sym << " proxy PPL (FP16 "
              << model.fp16Ppl << ").\n";
    return 0;
}
