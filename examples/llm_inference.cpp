/**
 * @file
 * LLM inference scenario: deploy an OPT-class transformer block on the
 * Panacea accelerator and compare it against the Sibia baseline - the
 * paper's headline use case (OPT-2.7B: ~2x energy efficiency).
 *
 * The example builds the model's unique GEMM layers with the full PTQ
 * pipeline, runs the cycle simulators, and reports per-layer and
 * end-to-end energy, latency and the perplexity proxy. It then runs
 * an autoregressive generation through the public Generation API
 * (panacea::Session::generate): a prompt prefills in bounded chunks,
 * decode steps chain through the seeded sampler with phase-aware
 * admission, and per-step outputs stream through the callback. The
 * same generation is replayed as a manual per-step infer() loop and
 * compared byte-for-byte - this example doubles as the API's smoke
 * test. Finally the compiled model is saved and reloaded to show the
 * zero-preparation cold-start path (panacea::saveCompiledModel /
 * loadCompiledModel).
 *
 * Usage: ./build/examples/llm_inference [tokens]   (default 512)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "panacea/models.h"
#include "panacea/runtime.h"
#include "panacea/serialize.h"
#include "panacea/session.h"
#include "panacea/simulation.h"
#include "panacea/util.h"

using namespace panacea;

int
main(int argc, char **argv)
{
    std::size_t tokens = 512;
    if (argc > 1)
        tokens = static_cast<std::size_t>(std::atol(argv[1]));
    fatal_if(tokens == 0 || tokens % 4 != 0,
             "token count must be a positive multiple of 4");

    ModelSpec model = opt2_7b();
    std::cout << "Building " << model.name << " workloads at " << tokens
              << " tokens (synthetic tensors, DESIGN.md S2)...\n";

    ModelBuildOptions opt;
    opt.seqLen = tokens;
    ModelBuild build = buildModel(model, opt);

    PanaceaSimulator panacea;
    SibiaSimulator sibia;

    printBanner(std::cout, "Per-layer comparison (one transformer block)");
    Table t({"layer", "M x K", "act rho (Panacea)", "DBS",
             "Panacea mJ", "Sibia mJ", "energy ratio"});
    for (const LayerBuild &lb : build.layers) {
        GemmWorkload pw = lb.panacea;
        GemmWorkload sw = lb.sibia;
        pw.repeat = 1;
        sw.repeat = 1;
        PerfResult rp = panacea.run(pw);
        PerfResult rs = sibia.run(sw);
        t.newRow()
            .cell(lb.spec.name)
            .cell(std::to_string(lb.spec.m) + "x" +
                  std::to_string(lb.spec.kDim))
            .percentCell(lb.panacea.rhoX())
            .cell(toString(lb.dbs.type))
            .cell(rp.totalMj(), 3)
            .cell(rs.totalMj(), 3)
            .ratioCell(rs.totalMj() / rp.totalMj());
    }
    t.print(std::cout);

    printBanner(std::cout, "Full model (32 blocks)");
    PerfResult total_p =
        panacea.runAll(build.panaceaWorkloads(), model.name);
    PerfResult total_s = sibia.runAll(build.sibiaWorkloads(), model.name);

    Table total({"design", "latency (ms)", "energy (mJ)", "TOPS",
                 "TOPS/W", "PPL (proxy)"});
    double ppl_asym = proxyPerplexity(
        model.fp16Ppl, build.meanNmseAsym() + build.meanWeightNmse());
    double ppl_sym = proxyPerplexity(
        model.fp16Ppl, build.meanNmseSym() + build.meanWeightNmse());
    total.newRow()
        .cell(total_s.accelerator)
        .cell(total_s.seconds() * 1e3, 2)
        .cell(total_s.totalMj(), 1)
        .cell(total_s.tops(), 3)
        .cell(total_s.topsPerWatt(), 3)
        .cell(ppl_sym, 2);
    total.newRow()
        .cell(total_p.accelerator)
        .cell(total_p.seconds() * 1e3, 2)
        .cell(total_p.totalMj(), 1)
        .cell(total_p.tops(), 3)
        .cell(total_p.topsPerWatt(), 3)
        .cell(ppl_asym, 2);
    total.print(std::cout);

    std::cout << "\nPanacea vs Sibia: "
              << total_p.topsPerWatt() / total_s.topsPerWatt()
              << "x energy efficiency, "
              << total_p.tops() / total_s.tops()
              << "x throughput (paper: 1.97x / 1.88x on OPT-2.7B), at "
              << ppl_asym << " vs " << ppl_sym << " proxy PPL (FP16 "
              << model.fp16Ppl << ").\n";

    // --- Autoregressive generation through the public Generation API --
    printBanner(std::cout,
                "Autoregressive generation (Session::generate)");

    CompileOptions sopts;
    sopts.maxLayers = 2; // the attention block's QKV + PROJ GEMMs

    Runtime rt;
    SessionOptions dopts;
    dopts.workers = 1;
    dopts.continuous = true; // decode steps splice between layer steps
    Session session = rt.createSession(dopts);
    CompiledModel served = rt.compile(model, sopts);

    // A seeded prompt of 8 column groups; 8 decode steps follow it.
    const std::size_t v = 4;
    const std::size_t prompt_groups = 8;
    const std::size_t steps = 8;
    MatrixF prompt(served.inputFeatures(), prompt_groups * v);
    Rng rng(0xdec0de);
    for (auto &pv : prompt.data())
        pv = static_cast<float>(rng.gaussian(0.2, 1.0));

    GenerationRequest greq;
    greq.prompt = prompt;
    greq.maxSteps = steps;
    greq.samplerSeed = 0x70ca;
    greq.prefillChunkGroups = 4; // prefill lands in 2 bounded chunks
    greq.onStep = [](const GenerationStepView &sv) {
        std::cout << "  step " << toString(sv.phase) << "/" << sv.index
                  << ": " << sv.cols << " columns at "
                  << sv.sinceStartMs << " ms\n";
    };
    const auto tg = nowTick();
    GenerationResult gen = session.generate(served, greq).get();
    const double gen_ms = msSince(tg);

    const GenerationStats gstats = session.generationStats();
    std::cout << "generated " << gen.steps << " steps ("
              << gen.output.cols() << " columns) in " << gen_ms
              << " ms: TTFT " << gen.ttftMs << " ms, prefill "
              << gen.prefillMs << " ms, decode rate "
              << gstats.tokensPerSecond << " columns/s, paged state "
              << gen.arenaBytes << " bytes\n";

    // The smoke test: replay the SAME generation as a manual per-step
    // loop (whole prompt + one infer() per step) and compare bytes.
    // Scheduling policy must never change what gets computed.
    bool gen_ok = true;
    {
        serve::TokenSampler sampler(greq.samplerSeed);
        const InferenceResult pre = session.infer(served, prompt);
        gen_ok = gen_ok && pre.output == gen.prefillOutput;
        MatrixF prev = pre.output;
        for (std::size_t step = 0; step < steps; ++step) {
            MatrixF x =
                sampler.next(prev, served.inputFeatures(), v);
            const InferenceResult r = session.infer(served, std::move(x));
            for (std::size_t row = 0; gen_ok && row < r.output.rows();
                 ++row)
                for (std::size_t c = 0; gen_ok && c < v; ++c)
                    gen_ok = r.output(row, c) ==
                             gen.output(row, step * v + c);
            prev = r.output;
        }
    }
    std::cout << "generation outputs byte-identical to the manual "
                 "per-step loop: "
              << (gen_ok ? "YES" : "NO") << "\n";

    const CacheStats cstats = rt.cacheStats();
    std::cout << "weight prep (once, cached): " << served.buildMs()
              << " ms for " << served.layerCount() << " layers; cache: "
              << cstats.hits << " hits / " << cstats.misses
              << " misses, " << cstats.buildMsSaved
              << " ms of preparation amortized across this run\n";

    // --- Cold start: ship the compiled model as a file ----------------
    printBanner(std::cout, "Cold start (compiled-model artifact)");
    const std::string path = "llm_inference_block.pncm";
    bool saved = false;
    try {
        saveCompiledModel(served, path);
        saved = true;
    } catch (const SerializeError &err) {
        // Only the filesystem write gets a pass (read-only CWD is not
        // a defect of the artifact path); decode-side errors below
        // must fail the example.
        std::cout << "cold-start demo skipped (cannot write " << path
                  << "): " << err.what() << "\n";
    }
    bool cold_ok = !saved;
    if (saved) {
        try {
            const auto t0 = nowTick();
            CompiledModel cold = loadCompiledModel(path);
            const double load_ms = msSince(t0);

            // Same fixed input through both handles: byte-identical.
            MatrixF probe(served.inputFeatures(), 4);
            Rng prng(0xc01d);
            for (auto &v : probe.data())
                v = static_cast<float>(prng.gaussian(0.2, 1.0));
            const InferenceResult warm_r = session.infer(served, probe);
            const InferenceResult cold_r = session.infer(cold, probe);
            cold_ok = warm_r.output == cold_r.output;
            std::cout << "saved " << path << ", reloaded in " << load_ms
                      << " ms (vs " << served.buildMs()
                      << " ms to build = " << served.buildMs() / load_ms
                      << "x faster; zero calibration/slicing work), "
                      << "outputs byte-identical: "
                      << (cold_ok ? "YES" : "NO") << "\n";
        } catch (const SerializeError &err) {
            std::cout << "cold-start FAILED: " << err.what() << "\n";
            cold_ok = false;
        }
    }
    std::remove(path.c_str());
    return (cold_ok && gen_ok) ? 0 : 1;
}
