/**
 * @file
 * Vision-transformer calibration scenario: walk a DeiT-base block
 * through the PTQ calibration of paper Fig. 6 and inspect what each
 * stage (asymmetric quantization, ZPM, DBS) does to every layer's
 * zero point, slicing rule and bit-slice sparsity.
 *
 * Usage: ./build/examples/vit_calibration
 */

#include <iostream>

#include "panacea/models.h"
#include "panacea/simulation.h"
#include "panacea/util.h"

using namespace panacea;

namespace {

ModelBuild
buildStage(const ModelSpec &spec, bool zpm, bool dbs)
{
    ModelBuildOptions opt;
    opt.enableZpm = zpm;
    opt.enableDbs = dbs;
    return buildModel(spec, opt);
}

} // namespace

int
main()
{
    ModelSpec deit = deitBase();
    std::cout << "PTQ calibration walk-through for " << deit.name
              << " (" << deit.layers.size()
              << " unique layers x " << deit.layers[0].repeat
              << " blocks, " << deit.seqLen << " tokens)\n";

    ModelBuild raw = buildStage(deit, false, false);
    ModelBuild with_zpm = buildStage(deit, true, false);
    ModelBuild with_dbs = buildStage(deit, true, true);

    printBanner(std::cout, "Stage 1: asymmetric calibration (Eq. (2))");
    {
        Table t({"layer", "distribution", "raw zp", "r = HO(zp)",
                 "HO slice sparsity", "HO vector sparsity"});
        for (const LayerBuild &lb : raw.layers) {
            t.newRow()
                .cell(lb.spec.name)
                .cell(toString(lb.spec.dist))
                .cell(static_cast<std::int64_t>(lb.rawZeroPoint))
                .cell(static_cast<std::int64_t>(lb.rawZeroPoint >> 4))
                .percentCell(lb.actHoPanacea.sliceLevel)
                .percentCell(lb.actHoPanacea.vectorLevel);
        }
        t.print(std::cout);
    }

    printBanner(std::cout, "Stage 2: + zero-point manipulation (Eq. (7))");
    {
        Table t({"layer", "zp raw -> zp'", "slice sparsity",
                 "vector sparsity"});
        for (std::size_t i = 0; i < with_zpm.layers.size(); ++i) {
            const LayerBuild &lb = with_zpm.layers[i];
            t.newRow()
                .cell(lb.spec.name)
                .cell(std::to_string(lb.rawZeroPoint) + " -> " +
                      std::to_string(lb.dbs.zpm.zeroPoint))
                .percentCell(lb.actHoPanacea.sliceLevel)
                .percentCell(lb.actHoPanacea.vectorLevel);
        }
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Stage 3: + distribution-based slicing (Fig. 9/10)");
    {
        Table t({"layer", "std*z", "type", "l", "zp''", "r''",
                 "slice sparsity", "vector sparsity", "NMSE"});
        for (const LayerBuild &lb : with_dbs.layers) {
            t.newRow()
                .cell(lb.spec.name)
                .cell(lb.dbs.stdTimesZ, 1)
                .cell(toString(lb.dbs.type))
                .cell(static_cast<std::int64_t>(lb.dbs.loBits))
                .cell(static_cast<std::int64_t>(lb.dbs.zpm.zeroPoint))
                .cell(static_cast<std::int64_t>(
                    lb.dbs.zpm.frequentSlice))
                .percentCell(lb.actHoPanacea.sliceLevel)
                .percentCell(lb.actHoPanacea.vectorLevel)
                .cell(lb.actNmseAsym, 6);
        }
        t.print(std::cout);
    }

    double loss_raw = proxyAccuracyLossPct(raw.meanNmseAsym());
    double loss_dbs = proxyAccuracyLossPct(with_dbs.meanNmseAsym());
    std::cout << "\nAccuracy-loss proxy: " << loss_raw
              << "%p before DBS, " << loss_dbs
              << "%p after (the paper accepts ~0.6%p on DeiT-base for "
                 "+20%p average slice sparsity).\n";
    return 0;
}
