/**
 * @file
 * Design-space exploration scenario: the study behind paper Fig. 13's
 * conclusion that 4 DWOs + 8 SWOs with DTP is the right shipping
 * configuration. Sweeps the DWO/SWO split (at a constant 12 operators
 * per PEA = 3072 multipliers) and the DTP switch over a GPT-2 workload,
 * and reports throughput, efficiency and operator utilization.
 *
 * Usage: ./build/examples/design_space
 */

#include <iostream>

#include "panacea/models.h"
#include "panacea/simulation.h"
#include "panacea/util.h"

using namespace panacea;

int
main()
{
    ModelSpec gpt = gpt2();
    std::cout << "Design-space exploration on " << gpt.name
              << " (constant 12 operators/PEA = 3072 multipliers)\n";
    ModelBuildOptions opt;
    ModelBuild build = buildModel(gpt, opt);
    std::vector<GemmWorkload> layers = build.panaceaWorkloads();

    printBanner(std::cout, "DWO/SWO split x DTP sweep");
    Table t({"DWOs", "SWOs", "DTP", "TOPS", "TOPS/W", "cycles (M)",
             "mult util", "vs best"});

    struct Point
    {
        int dwos;
        int swos;
        bool dtp;
        PerfResult result;
    };
    std::vector<Point> points;
    double best_tops = 0.0;
    for (int dwos : {2, 4, 6, 8, 10}) {
        for (bool dtp : {false, true}) {
            PanaceaConfig cfg;
            cfg.dwosPerPea = dwos;
            cfg.swosPerPea = 12 - dwos;
            cfg.enableDtp = dtp;
            PanaceaSimulator sim(cfg);
            Point p{dwos, 12 - dwos, dtp,
                    sim.runAll(layers, gpt.name)};
            best_tops = std::max(best_tops, p.result.tops());
            points.push_back(std::move(p));
        }
    }
    for (const Point &p : points) {
        t.newRow()
            .cell(static_cast<std::int64_t>(p.dwos))
            .cell(static_cast<std::int64_t>(p.swos))
            .cell(p.dtp ? "on" : "off")
            .cell(p.result.tops(), 3)
            .cell(p.result.topsPerWatt(), 3)
            .cell(static_cast<double>(p.result.counters.cycles) / 1e6,
                  1)
            .percentCell(p.result.opUtilization())
            .percentCell(p.result.tops() / best_tops);
    }
    t.print(std::cout);

    printBanner(std::cout, "Why: per-layer sparsity profile");
    Table prof({"layer", "rho_w", "rho_x",
                "dyn share of dense work"});
    for (const LayerBuild &lb : build.layers) {
        // Structural classification: with two weight slices, 3 of 4
        // products are dynamic; weight/activation sparsity then thins
        // the dynamic queue while the static one stays dense.
        double dyn_share =
            1.0 - 1.0 / (static_cast<double>(lb.panacea.wLevels) *
                         lb.panacea.xLevels);
        prof.newRow()
            .cell(lb.spec.name)
            .percentCell(lb.panacea.rhoW())
            .percentCell(lb.panacea.rhoX())
            .percentCell(dyn_share);
    }
    prof.print(std::cout);

    std::cout
        << "\nReading: high activation sparsity drains the dynamic "
           "queue, so few DWOs suffice and SWOs become the bottleneck - "
           "which DTP relieves by routing the second tile's static "
           "products onto idle DWOs. That is the paper's rationale for "
           "shipping 4 DWOs + 8 SWOs + DTP.\n";
    return 0;
}
