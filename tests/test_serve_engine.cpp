/**
 * @file
 * Determinism tests for the serving engine (src/serve/): the same
 * request set must produce byte-identical per-request outputs and
 * statistics for ANY submission order, worker count, batch
 * window/deadline and PANACEA_ISA level - micro-batching may change
 * throughput and latency only, never a result bit. Plus coverage of
 * the prepared-model cache and the batching machinery itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <vector>

#include "isa_guard.h"
#include "pool_guard.h"
#include "serve/engine.h"
#include "serve/operand_cache.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace serve {
namespace {

/** A three-layer toy stack exercising distinct distribution families
 *  and a feature-width change (24 -> 16 forces the glue path). */
ModelSpec
tinySpec()
{
    ModelSpec spec;
    spec.name = "serve-test-tiny";
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12; // mismatched on purpose: exercises adaptFeatures
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

std::vector<MatrixF>
makeRequests(std::size_t features, std::size_t count)
{
    Rng rng(0xbeef);
    std::vector<MatrixF> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Mixed widths: 4 or 8 columns (1 or 2 column groups).
        MatrixF x(features, (i % 3 == 0) ? 8 : 4);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }
    return inputs;
}

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.compMults, b.compMults);
    EXPECT_EQ(a.compAdds, b.compAdds);
    EXPECT_EQ(a.compExtraEmaNibbles, b.compExtraEmaNibbles);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
    EXPECT_EQ(a.wIndexBits, b.wIndexBits);
    EXPECT_EQ(a.xIndexBits, b.xIndexBits);
    EXPECT_EQ(a.denseNibbles, b.denseNibbles);
    EXPECT_DOUBLE_EQ(a.macsPerOuterProduct, b.macsPerOuterProduct);
}

/** Run every request through an engine; results in input order. */
std::vector<RequestResult>
runEngine(const EngineOptions &opts,
          const std::shared_ptr<const ServedModel> &model,
          const std::vector<MatrixF> &inputs,
          const std::vector<std::size_t> &order)
{
    InferenceEngine engine(opts, &PreparedModelCache::global());
    std::vector<std::future<RequestResult>> futures(inputs.size());
    for (std::size_t idx : order)
        futures[idx] = engine.submit(model, inputs[idx]);
    std::vector<RequestResult> results;
    results.reserve(inputs.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

std::vector<std::size_t>
identityOrder(std::size_t n)
{
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    return order;
}

TEST(ServeEngine, BatchingIsBitExactForAnyOrderWorkersWindowAndIsa)
{
    PoolGuard pool_guard;
    const ModelSpec spec = tinySpec();
    ServeModelOptions mopts;
    InferenceEngine loader;
    auto model = loader.load(spec, mopts);
    const std::vector<MatrixF> inputs =
        makeRequests(model->inputFeatures(), 6);

    // Reference: every request alone (window 1 = no batching).
    EngineOptions solo_opts;
    solo_opts.batchWindow = 1;
    solo_opts.batchDeadlineMs = 0.0;
    solo_opts.workers = 1;
    const std::vector<RequestResult> solo = runEngine(
        solo_opts, model, inputs, identityOrder(inputs.size()));

    std::vector<std::size_t> reversed = identityOrder(inputs.size());
    std::reverse(reversed.begin(), reversed.end());
    std::vector<std::size_t> interleaved = {3, 0, 5, 1, 4, 2};

    struct Sweep
    {
        int window;
        double deadlineMs;
        int workers;
        const std::vector<std::size_t> *order;
    };
    const std::vector<std::size_t> ident = identityOrder(inputs.size());
    const std::vector<Sweep> sweeps = {
        {1, 0.0, 2, &reversed},    {3, 5.0, 1, &ident},
        {3, 0.0, 4, &interleaved}, {8, 5.0, 2, &ident},
        {8, 5.0, 4, &reversed},    {8, 0.0, 1, &interleaved},
    };
    for (const Sweep &sw : sweeps) {
        EngineOptions opts;
        opts.batchWindow = sw.window;
        opts.batchDeadlineMs = sw.deadlineMs;
        opts.workers = sw.workers;
        const std::vector<RequestResult> got =
            runEngine(opts, model, inputs, *sw.order);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            EXPECT_TRUE(got[i].output == solo[i].output)
                << "request " << i << " window=" << sw.window
                << " workers=" << sw.workers;
            expectStatsEqual(got[i].stats, solo[i].stats);
        }
    }

    // Thread-pool width and ISA level must not change a bit either.
    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {1, 4}) {
            setParallelThreads(threads);
            EngineOptions opts;
            opts.batchWindow = 8;
            opts.batchDeadlineMs = 5.0;
            opts.workers = 2;
            const std::vector<RequestResult> got =
                runEngine(opts, model, inputs, ident);
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                EXPECT_TRUE(got[i].output == solo[i].output)
                    << "request " << i << " isa=" << toString(isa)
                    << " threads=" << threads;
                expectStatsEqual(got[i].stats, solo[i].stats);
            }
        }
    }
}

TEST(ServeEngine, AggregateStatsAreDeterministic)
{
    const ModelSpec spec = tinySpec();
    InferenceEngine loader;
    auto model = loader.load(spec, ServeModelOptions{});
    const std::vector<MatrixF> inputs =
        makeRequests(model->inputFeatures(), 5);

    EngineStats first;
    for (int run = 0; run < 3; ++run) {
        EngineOptions opts;
        opts.batchWindow = run + 1; // different batch compositions
        opts.batchDeadlineMs = run == 2 ? 5.0 : 0.0;
        opts.workers = run + 1;
        InferenceEngine engine(opts);
        std::vector<std::future<RequestResult>> futures;
        for (const MatrixF &x : inputs)
            futures.push_back(engine.submit(model, x));
        for (auto &f : futures)
            f.get();
        engine.drain();
        const EngineStats s = engine.stats();
        EXPECT_EQ(s.requests, inputs.size());
        EXPECT_EQ(s.columns, 28u); // 8 + 4 + 4 + 8 + 4
        EXPECT_EQ(s.macs, 28u * model->macsPerColumn());
        EXPECT_GE(s.batches, 1u);
        EXPECT_LE(s.batches, inputs.size());
        EXPECT_GE(s.p99LatencyMs, s.p50LatencyMs);
        if (run == 0)
            first = s;
        else
            expectStatsEqual(s.aggregate, first.aggregate);
    }
}

TEST(ServeEngine, WindowCoalescesAndSplitsCorrectly)
{
    const ModelSpec spec = tinySpec();
    InferenceEngine loader;
    auto model = loader.load(spec, ServeModelOptions{});
    const std::vector<MatrixF> inputs =
        makeRequests(model->inputFeatures(), 8);

    EngineOptions opts;
    opts.batchWindow = 8;
    opts.batchDeadlineMs = 200.0; // generous: let the window fill
    opts.workers = 1;
    InferenceEngine engine(opts);
    std::vector<std::future<RequestResult>> futures;
    for (const MatrixF &x : inputs)
        futures.push_back(engine.submit(model, x));
    std::size_t max_batch = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        RequestResult r = futures[i].get();
        max_batch = std::max(max_batch, r.batchSize);
        EXPECT_EQ(r.output.rows(), model->outputFeatures());
        EXPECT_EQ(r.output.cols(), inputs[i].cols());
        EXPECT_GE(r.latencyMs, 0.0);
    }
    // Timing-dependent lower bound: with a 200 ms fill deadline the
    // eight near-instant submissions all but certainly coalesce; keep
    // the assertion conservative so slow CI cannot flake it.
    EXPECT_GE(max_batch, 2u);
    const EngineStats s = engine.stats();
    EXPECT_EQ(s.maxBatch, max_batch);
    EXPECT_EQ(s.requests, 8u);
}

TEST(ServeEngine, MalformedRequestsAreRejectedViaFuture)
{
    const ModelSpec spec = tinySpec();
    InferenceEngine engine;
    auto model = engine.load(spec, ServeModelOptions{});

    // Wrong column multiple, wrong feature rows, missing model: each
    // rejection arrives on its own future; the engine keeps serving.
    EXPECT_THROW(
        engine.submit(model, MatrixF(model->inputFeatures(), 3)).get(),
        std::invalid_argument);
    EXPECT_THROW(
        engine.submit(model, MatrixF(model->inputFeatures() + 1, 4))
            .get(),
        std::invalid_argument);
    EXPECT_THROW(engine.submit(nullptr, MatrixF(4, 4)).get(),
                 std::invalid_argument);

    MatrixF good(model->inputFeatures(), 4);
    for (auto &v : good.data())
        v = 0.25f;
    RequestResult r = engine.submit(model, good).get();
    EXPECT_EQ(r.output.cols(), 4u);
    EXPECT_EQ(engine.stats().requests, 1u);
}

TEST(ServeCache, PreparedModelsAreBuiltOncePerKey)
{
    PreparedModelCache cache;
    const ModelSpec spec = tinySpec();
    ServeModelOptions opts;

    auto a = cache.acquire(spec, opts);
    auto b = cache.acquire(spec, opts);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_GE(cache.stats().buildMsSaved, 0.0);

    // Any option that changes prepared bytes is a different key.
    ServeModelOptions other = opts;
    other.seed += 1;
    auto c = cache.acquire(spec, other);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ServeModel, AdaptFeaturesTruncatesAndTiles)
{
    MatrixF y(3, 2);
    y(0, 0) = 1;  y(0, 1) = 2;
    y(1, 0) = 3;  y(1, 1) = 4;
    y(2, 0) = 5;  y(2, 1) = 6;

    MatrixF same = ServedModel::adaptFeatures(y, 3);
    EXPECT_TRUE(same == y);

    MatrixF cut = ServedModel::adaptFeatures(y, 2);
    EXPECT_EQ(cut.rows(), 2u);
    EXPECT_EQ(cut(1, 1), 4.0f);

    MatrixF tiled = ServedModel::adaptFeatures(y, 5);
    EXPECT_EQ(tiled.rows(), 5u);
    EXPECT_EQ(tiled(3, 0), 1.0f); // row 3 = row 0 again
    EXPECT_EQ(tiled(4, 1), 4.0f); // row 4 = row 1
}

} // namespace
} // namespace serve
} // namespace panacea
