/**
 * @file
 * Determinism and fairness tests for the serving runtime, driven
 * through the public API (panacea::Runtime / CompiledModel / Session):
 * the same request set must produce byte-identical per-request outputs
 * and statistics for ANY submission order, worker count, batch
 * window/deadline and PANACEA_ISA level - micro-batching may change
 * throughput and latency only, never a result bit. Models take
 * round-robin turns, so a flooding model cannot starve others
 * (pinned exactly via RequestResult::batchSeq on a paused-start,
 * single-worker session). Plus coverage of the prepared-model cache
 * and the batching machinery itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "isa_guard.h"
#include "panacea/runtime.h"
#include "panacea/session.h"
#include "pool_guard.h"
#include "serve/operand_cache.h"
#include "serve/served_model.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

/** A three-layer toy stack exercising distinct distribution families
 *  and a feature-width change (24 -> 16 forces the glue path). */
ModelSpec
tinySpec(const std::string &name = "serve-test-tiny")
{
    ModelSpec spec;
    spec.name = name;
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12; // mismatched on purpose: exercises adaptFeatures
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

std::vector<MatrixF>
makeRequests(std::size_t features, std::size_t count)
{
    Rng rng(0xbeef);
    std::vector<MatrixF> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Mixed widths: 4 or 8 columns (1 or 2 column groups).
        MatrixF x(features, (i % 3 == 0) ? 8 : 4);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }
    return inputs;
}

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.compMults, b.compMults);
    EXPECT_EQ(a.compAdds, b.compAdds);
    EXPECT_EQ(a.compExtraEmaNibbles, b.compExtraEmaNibbles);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
    EXPECT_EQ(a.wIndexBits, b.wIndexBits);
    EXPECT_EQ(a.xIndexBits, b.xIndexBits);
    EXPECT_EQ(a.denseNibbles, b.denseNibbles);
    EXPECT_DOUBLE_EQ(a.macsPerOuterProduct, b.macsPerOuterProduct);
}

/** Run every request through a fresh session; results in input order. */
std::vector<InferenceResult>
runSession(Runtime &rt, const SessionOptions &opts,
           const CompiledModel &model,
           const std::vector<MatrixF> &inputs,
           const std::vector<std::size_t> &order)
{
    Session session = rt.createSession(opts);
    std::vector<std::future<InferenceResult>> futures(inputs.size());
    for (std::size_t idx : order)
        futures[idx] = session.submit(model, inputs[idx]);
    std::vector<InferenceResult> results;
    results.reserve(inputs.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

std::vector<std::size_t>
identityOrder(std::size_t n)
{
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    return order;
}

TEST(ServeEngine, BatchingIsBitExactForAnyOrderWorkersWindowAndIsa)
{
    PoolGuard pool_guard;
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 6);

    // Reference: every request alone (window 1 = no batching).
    SessionOptions solo_opts;
    solo_opts.batchWindow = 1;
    solo_opts.batchDeadlineMs = 0.0;
    solo_opts.workers = 1;
    const std::vector<InferenceResult> solo = runSession(
        rt, solo_opts, model, inputs, identityOrder(inputs.size()));

    std::vector<std::size_t> reversed = identityOrder(inputs.size());
    std::reverse(reversed.begin(), reversed.end());
    std::vector<std::size_t> interleaved = {3, 0, 5, 1, 4, 2};

    struct Sweep
    {
        int window;
        double deadlineMs;
        int workers;
        const std::vector<std::size_t> *order;
    };
    const std::vector<std::size_t> ident = identityOrder(inputs.size());
    const std::vector<Sweep> sweeps = {
        {1, 0.0, 2, &reversed},    {3, 5.0, 1, &ident},
        {3, 0.0, 4, &interleaved}, {8, 5.0, 2, &ident},
        {8, 5.0, 4, &reversed},    {8, 0.0, 1, &interleaved},
    };
    for (const Sweep &sw : sweeps) {
        SessionOptions opts;
        opts.batchWindow = sw.window;
        opts.batchDeadlineMs = sw.deadlineMs;
        opts.workers = sw.workers;
        const std::vector<InferenceResult> got =
            runSession(rt, opts, model, inputs, *sw.order);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            EXPECT_TRUE(got[i].output == solo[i].output)
                << "request " << i << " window=" << sw.window
                << " workers=" << sw.workers;
            expectStatsEqual(got[i].stats, solo[i].stats);
        }
    }

    // Thread-pool width and ISA level must not change a bit either.
    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {1, 4}) {
            setParallelThreads(threads);
            SessionOptions opts;
            opts.batchWindow = 8;
            opts.batchDeadlineMs = 5.0;
            opts.workers = 2;
            const std::vector<InferenceResult> got =
                runSession(rt, opts, model, inputs, ident);
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                EXPECT_TRUE(got[i].output == solo[i].output)
                    << "request " << i << " isa=" << toString(isa)
                    << " threads=" << threads;
                expectStatsEqual(got[i].stats, solo[i].stats);
            }
        }
    }
}

TEST(ServeEngine, RoundRobinPreventsStarvationDeterministically)
{
    Runtime rt;
    const CompiledModel flood = rt.compile(tinySpec("serve-flood"));
    const CompiledModel victim = rt.compile(tinySpec("serve-victim"));

    // Paused start + one worker: the schedule is a pure function of
    // the submission sequence. Model "flood" piles up 12 requests
    // BEFORE "victim" submits 2.
    SessionOptions opts;
    opts.batchWindow = 4;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true;
    Session session = rt.createSession(opts);

    MatrixF x(flood.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.25f;
    std::vector<std::future<InferenceResult>> flood_futs;
    for (int i = 0; i < 12; ++i)
        flood_futs.push_back(session.submit(flood, x));
    std::vector<std::future<InferenceResult>> victim_futs;
    for (int i = 0; i < 2; ++i)
        victim_futs.push_back(session.submit(victim, x));
    session.start();

    // Round-robin ring: flood cuts one window (seq 0, requests 0-3),
    // rotates behind victim; victim's whole queue is seq 1; flood's
    // remainder follows (seq 2, 3). FIFO within each model.
    const std::uint64_t expect_flood_seq[12] = {0, 0, 0, 0, 2, 2,
                                                2, 2, 3, 3, 3, 3};
    for (int i = 0; i < 12; ++i) {
        const InferenceResult r = flood_futs[i].get();
        EXPECT_EQ(r.batchSeq, expect_flood_seq[i]) << "flood req " << i;
        EXPECT_EQ(r.batchSize, 4u);
    }
    for (int i = 0; i < 2; ++i) {
        const InferenceResult r = victim_futs[i].get();
        EXPECT_EQ(r.batchSeq, 1u)
            << "victim req " << i << " was starved behind the flood";
        EXPECT_EQ(r.batchSize, 2u);
    }

    // The old oldest-request-first pop would have given the victim
    // batchSeq 3 (after ALL flood batches); round-robin bounds its
    // wait to one batch regardless of the flood depth.
}

TEST(ServeEngine, PausedStartIsIdempotentAndDrainImpliesStart)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    SessionOptions opts;
    opts.batchWindow = 2;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true;
    Session session = rt.createSession(opts);

    MatrixF x(model.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.5f;
    auto fut = session.submit(model, x);
    // Nothing runs while paused; drain() releases the workers and
    // completes the request. start() twice is harmless.
    session.drain();
    session.start();
    EXPECT_EQ(fut.get().output.rows(), model.outputFeatures());
    EXPECT_EQ(session.stats().requests, 1u);
}

TEST(ServeEngine, AggregateStatsAreDeterministic)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 5);

    SessionStats first;
    for (int run = 0; run < 3; ++run) {
        SessionOptions opts;
        opts.batchWindow = run + 1; // different batch compositions
        opts.batchDeadlineMs = run == 2 ? 5.0 : 0.0;
        opts.workers = run + 1;
        Session session = rt.createSession(opts);
        std::vector<std::future<InferenceResult>> futures;
        for (const MatrixF &x : inputs)
            futures.push_back(session.submit(model, x));
        for (auto &f : futures)
            f.get();
        session.drain();
        const SessionStats s = session.stats();
        EXPECT_EQ(s.requests, inputs.size());
        EXPECT_EQ(s.columns, 28u); // 8 + 4 + 4 + 8 + 4
        EXPECT_EQ(s.macs, 28u * model.macsPerColumn());
        EXPECT_GE(s.batches, 1u);
        EXPECT_LE(s.batches, inputs.size());
        EXPECT_GE(s.p99LatencyMs, s.p50LatencyMs);
        if (run == 0)
            first = s;
        else
            expectStatsEqual(s.aggregate, first.aggregate);
    }
}

TEST(ServeEngine, WindowCoalescesAndSplitsCorrectly)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 8);

    SessionOptions opts;
    opts.batchWindow = 8;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true; // all 8 queue up -> exactly one batch
    Session session = rt.createSession(opts);
    std::vector<std::future<InferenceResult>> futures;
    for (const MatrixF &x : inputs)
        futures.push_back(session.submit(model, x));
    session.start();
    for (std::size_t i = 0; i < futures.size(); ++i) {
        InferenceResult r = futures[i].get();
        EXPECT_EQ(r.batchSize, 8u);
        EXPECT_EQ(r.batchSeq, 0u);
        EXPECT_EQ(r.output.rows(), model.outputFeatures());
        EXPECT_EQ(r.output.cols(), inputs[i].cols());
        EXPECT_GE(r.latencyMs, 0.0);
    }
    const SessionStats s = session.stats();
    EXPECT_EQ(s.maxBatch, 8u);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.requests, 8u);
}

TEST(ServeEngine, MalformedRequestsAreRejectedViaFuture)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    Session session = rt.createSession();

    // Wrong column multiple, wrong feature rows, missing model: each
    // rejection arrives on its own future; the session keeps serving.
    EXPECT_THROW(
        session.submit(model, MatrixF(model.inputFeatures(), 3)).get(),
        std::invalid_argument);
    EXPECT_THROW(
        session.submit(model, MatrixF(model.inputFeatures() + 1, 4))
            .get(),
        std::invalid_argument);
    EXPECT_THROW(session.submit(CompiledModel(), MatrixF(4, 4)).get(),
                 std::invalid_argument);

    MatrixF good(model.inputFeatures(), 4);
    for (auto &v : good.data())
        v = 0.25f;
    InferenceResult r = session.infer(model, good);
    EXPECT_EQ(r.output.cols(), 4u);
    EXPECT_EQ(session.stats().requests, 1u);
}

TEST(ServeEngine, DrainRejectsOrCompletesConcurrentSubmissions)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());

    // One worker, paused start: request A is the only thing the
    // worker can run, and its stepHook blocks at layer 0 while a
    // drainer thread sits inside drain(). Submissions racing that
    // window must reject-or-complete, never hang - the old drain()
    // accepted them silently, which let a fast submitter extend the
    // drain forever and left late futures dangling at teardown.
    std::promise<void> entered;
    std::atomic<bool> entered_once{false};
    std::atomic<bool> release{false};
    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true;
    opts.stepHook = [&](std::size_t layer) {
        if (layer != 0)
            return;
        if (!entered_once.exchange(true))
            entered.set_value();
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    Session session = rt.createSession(opts);

    MatrixF x(model.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.5f;
    auto fut_a = session.submit(model, x);
    std::thread drainer([&] { session.drain(); });
    entered.get_future().wait(); // the worker now holds A mid-stack

    // Probe until the drain window is observable: a rejected future
    // is ready the moment submit() returns (the promise is fulfilled
    // inline), while an accepted one cannot be - the only worker is
    // blocked inside A's stepHook.
    std::vector<std::future<InferenceResult>> accepted;
    bool saw_rejection = false;
    for (int i = 0; i < 20000 && !saw_rejection; ++i) {
        auto f = session.submit(model, x);
        if (f.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            EXPECT_THROW(f.get(), std::runtime_error);
            saw_rejection = true;
        } else {
            accepted.push_back(std::move(f));
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
    }
    EXPECT_TRUE(saw_rejection)
        << "drain() never rejected a concurrent submit";

    release.store(true);
    drainer.join();
    // Reject-or-complete: A and every accepted racer completed.
    EXPECT_EQ(fut_a.get().output.cols(), 4u);
    for (auto &f : accepted)
        EXPECT_EQ(f.get().output.cols(), 4u);
}

TEST(ServeEngine, StepHookThrowIsDeliveredThroughEveryCohortFuture)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());

    // Paused start + window 8: three requests form exactly one
    // cohort, whose first layer step throws. Every member's future
    // must receive the exception - and the engine must keep serving
    // the next batch as if nothing happened.
    std::atomic<std::uint64_t> cohorts{0};
    SessionOptions opts;
    opts.batchWindow = 8;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true;
    opts.stepHook = [&](std::size_t layer) {
        if (layer == 0 && ++cohorts == 1)
            throw std::runtime_error("injected engine fault");
    };
    Session session = rt.createSession(opts);

    MatrixF x(model.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.25f;
    std::vector<std::future<InferenceResult>> doomed;
    for (int i = 0; i < 3; ++i)
        doomed.push_back(session.submit(model, x));
    session.start();
    for (auto &f : doomed)
        EXPECT_THROW(f.get(), std::runtime_error);

    // The engine survived the faulted cohort: a fresh request (cohort
    // 2, hook passes) completes, and stats count only completions.
    InferenceResult ok = session.infer(model, x);
    EXPECT_EQ(ok.output.cols(), 4u);
    session.drain();
    EXPECT_EQ(session.stats().requests, 1u);
}

TEST(ServeCache, PreparedModelsAreBuiltOncePerKey)
{
    Runtime rt;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;

    CompiledModel a = rt.compile(spec, opts);
    CompiledModel b = rt.compile(spec, opts);
    EXPECT_EQ(a.shared().get(), b.shared().get());
    EXPECT_EQ(rt.cache().size(), 1u);
    EXPECT_EQ(rt.cacheStats().misses, 1u);
    EXPECT_EQ(rt.cacheStats().hits, 1u);
    EXPECT_GE(rt.cacheStats().buildMsSaved, 0.0);

    // Any option that changes prepared bytes is a different key.
    CompileOptions other = opts;
    other.seed += 1;
    CompiledModel c = rt.compile(spec, other);
    EXPECT_NE(a.shared().get(), c.shared().get());
    EXPECT_EQ(rt.cache().size(), 2u);

    rt.cache().clear();
    EXPECT_EQ(rt.cache().size(), 0u);
    EXPECT_EQ(rt.cacheStats().hits, 0u);
}

TEST(ServeModel, AdaptFeaturesTruncatesAndTiles)
{
    MatrixF y(3, 2);
    y(0, 0) = 1;  y(0, 1) = 2;
    y(1, 0) = 3;  y(1, 1) = 4;
    y(2, 0) = 5;  y(2, 1) = 6;

    MatrixF same = serve::ServedModel::adaptFeatures(y, 3);
    EXPECT_TRUE(same == y);

    MatrixF cut = serve::ServedModel::adaptFeatures(y, 2);
    EXPECT_EQ(cut.rows(), 2u);
    EXPECT_EQ(cut(1, 1), 4.0f);

    MatrixF tiled = serve::ServedModel::adaptFeatures(y, 5);
    EXPECT_EQ(tiled.rows(), 5u);
    EXPECT_EQ(tiled(3, 0), 1.0f); // row 3 = row 0 again
    EXPECT_EQ(tiled(4, 1), 4.0f); // row 4 = row 1
}

} // namespace
} // namespace panacea
