/**
 * @file
 * Panacea cycle-simulator tests: counter cross-checks against the
 * functional engine, sparsity monotonicity, DTP gains and dense-case
 * throughput sanity (the Fig. 13 behaviours).
 */

#include <gtest/gtest.h>

#include "arch/panacea_sim.h"
#include "baselines/simd.h"
#include "core/aqs_gemm.h"
#include "util/random.h"

namespace panacea {
namespace {

MatrixI32
randomWeightCodes(Rng &rng, std::size_t m, std::size_t k, double bias)
{
    MatrixI32 codes(m, k);
    for (auto &c : codes.data())
        c = rng.bernoulli(bias)
                ? static_cast<std::int32_t>(rng.uniformInt(-8, 7))
                : static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    return codes;
}

MatrixI32
randomActCodes(Rng &rng, std::size_t k, std::size_t n, std::int32_t zp,
               double bias)
{
    MatrixI32 codes(k, n);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(bias))
            c = static_cast<std::int32_t>(
                std::clamp<std::int64_t>(zp + rng.uniformInt(-6, 6), 0,
                                         255));
        else
            c = static_cast<std::int32_t>(rng.uniformInt(0, 255));
    }
    return codes;
}

TEST(PanaceaSim, CountersMatchFunctionalEngine)
{
    Rng rng(91);
    const std::int32_t zp = 136;
    MatrixI32 w = randomWeightCodes(rng, 128, 96, 0.7);
    MatrixI32 x = randomActCodes(rng, 96, 128, zp, 0.8);

    AqsConfig gemm_cfg;
    WeightOperand w_op = prepareWeights(w, 1, gemm_cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, gemm_cfg);
    AqsStats fstats;
    (void)aqsGemm(w_op, x_op, gemm_cfg, &fstats);

    GemmWorkload wl =
        GemmWorkload::fromOperands("x", w_op, x_op, 4, 1);
    PanaceaConfig cfg;
    cfg.enableDtp = false;
    PanaceaSimulator sim(cfg);
    PerfResult res = sim.run(wl);

    // The cycle simulator schedules exactly the outer products the
    // functional engine executed (plus the same compensation).
    EXPECT_EQ(res.counters.mults4b, fstats.totalMults());
    EXPECT_EQ(res.counters.adds, fstats.totalAdds());
}

TEST(PanaceaSim, CyclesDecreaseWithSparsity)
{
    Rng rng(92);
    std::uint64_t prev = ~0ull;
    PanaceaConfig cfg;
    cfg.enableDtp = false;
    PanaceaSimulator sim(cfg);
    for (double rho : {0.0, 0.3, 0.6, 0.9}) {
        GemmWorkload wl = GemmWorkload::synthetic(
            "sweep", 512, 512, 256, rho, rho, 4, rng);
        PerfResult res = sim.run(wl);
        EXPECT_LT(res.counters.cycles, prev) << "rho " << rho;
        prev = res.counters.cycles;
    }
}

TEST(PanaceaSim, DtpHelpsAtHighSparsity)
{
    Rng rng(93);
    GemmWorkload wl = GemmWorkload::synthetic(
        "hs", 512, 256, 256, 0.85, 0.9, 4, rng);

    PanaceaConfig no_dtp;
    no_dtp.enableDtp = false;
    PanaceaConfig dtp;
    dtp.enableDtp = true;
    PerfResult r0 = PanaceaSimulator(no_dtp).run(wl);
    PerfResult r1 = PanaceaSimulator(dtp).run(wl);
    EXPECT_LT(r1.counters.cycles, r0.counters.cycles);
    // DTP halves the activation re-streaming passes.
    EXPECT_LT(r1.counters.dramReadBytes, r0.counters.dramReadBytes);
}

TEST(PanaceaSim, SlowerThanSimdWhenDense_FasterWhenSparse)
{
    // Fig. 13(a): with 4 DWOs + 8 SWOs Panacea loses to SIMD at zero
    // sparsity (dynamic products bottleneck on few DWOs) and wins at
    // high sparsity.
    Rng rng(94);
    PanaceaSimulator panacea{};
    SimdSimulator simd{};

    GemmWorkload dense = GemmWorkload::synthetic(
        "dense", 1024, 1024, 256, 0.0, 0.0, 4, rng);
    GemmWorkload sparse = GemmWorkload::synthetic(
        "sparse", 1024, 1024, 256, 0.6, 0.95, 4, rng);

    EXPECT_GT(panacea.run(dense).counters.cycles,
              simd.run(dense).counters.cycles);
    EXPECT_LT(panacea.run(sparse).counters.cycles,
              simd.run(sparse).counters.cycles);
}

TEST(PanaceaSim, MoreDwosNarrowTheDenseGap)
{
    // Fig. 13(b): 8 DWOs + 4 SWOs narrows the dense-case gap.
    Rng rng(95);
    GemmWorkload dense = GemmWorkload::synthetic(
        "dense", 512, 512, 256, 0.0, 0.0, 4, rng);

    PanaceaConfig d4;
    d4.dwosPerPea = 4;
    d4.swosPerPea = 8;
    PanaceaConfig d8;
    d8.dwosPerPea = 8;
    d8.swosPerPea = 4;
    EXPECT_LT(PanaceaSimulator(d8).run(dense).counters.cycles,
              PanaceaSimulator(d4).run(dense).counters.cycles);
}

TEST(PanaceaSim, RepeatScalesLinearly)
{
    Rng rng(96);
    GemmWorkload once = GemmWorkload::synthetic(
        "r1", 256, 256, 64, 0.5, 0.5, 4, rng);
    GemmWorkload thrice = once;
    thrice.repeat = 3;

    PanaceaSimulator sim{};
    PerfResult r1 = sim.run(once);
    PerfResult r3 = sim.run(thrice);
    EXPECT_EQ(r3.counters.cycles, 3 * r1.counters.cycles);
    EXPECT_EQ(r3.counters.mults4b, 3 * r1.counters.mults4b);
    EXPECT_EQ(r3.counters.usefulMacs, 3 * r1.counters.usefulMacs);
}

TEST(PanaceaSim, ResourceNormalization)
{
    PanaceaConfig cfg;
    EXPECT_EQ(cfg.totalMultipliers(), 3072);
    EXPECT_EQ(cfg.totalSramBytes(), 192u * 1024);
}

TEST(PanaceaSim, PerfResultDerivedMetrics)
{
    Rng rng(97);
    GemmWorkload wl = GemmWorkload::synthetic(
        "m", 256, 256, 64, 0.5, 0.8, 4, rng);
    PerfResult res = PanaceaSimulator{}.run(wl);
    EXPECT_GT(res.tops(), 0.0);
    EXPECT_GT(res.topsPerWatt(), 0.0);
    EXPECT_GT(res.seconds(), 0.0);
    EXPECT_GT(res.watts(), 0.0);
    EXPECT_NEAR(res.tops() / res.watts(), res.topsPerWatt(), 1e-9);
}

} // namespace
} // namespace panacea
