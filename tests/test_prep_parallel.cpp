/**
 * @file
 * Determinism tests for the parallelized operand-preparation stages:
 * SBR/straightforward/DBS slicing, RLE plane encoding, HO mask
 * construction and the full prepareWeights / prepareActivations
 * pipelines must produce byte-identical outputs at 1/2/4/8 pool
 * threads (the 1-thread run is the serial baseline).
 */

#include <gtest/gtest.h>

#include "core/aqs_gemm.h"
#include "pool_guard.h"
#include "slicing/sbr.h"
#include "slicing/rle.h"
#include "slicing/slice_tensor.h"
#include "slicing/sparsity.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

constexpr int kThreadCounts[] = {2, 4, 8};

MatrixI32
randomSignedCodes(Rng &rng, std::size_t rows, std::size_t cols, int bits)
{
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    MatrixI32 codes(rows, cols);
    for (auto &c : codes.data())
        c = static_cast<std::int32_t>(rng.uniformInt(lo, hi));
    return codes;
}

MatrixI32
randomUnsignedCodes(Rng &rng, std::size_t rows, std::size_t cols, int bits)
{
    const std::int32_t hi = (1 << bits) - 1;
    MatrixI32 codes(rows, cols);
    for (auto &c : codes.data())
        c = static_cast<std::int32_t>(rng.uniformInt(0, hi));
    return codes;
}

void
expectSlicedEqual(const SlicedMatrix &a, const SlicedMatrix &b)
{
    ASSERT_EQ(a.levels(), b.levels());
    for (std::size_t l = 0; l < a.levels(); ++l) {
        EXPECT_TRUE(a.planes[l].data == b.planes[l].data)
            << "plane " << l << " differs";
        EXPECT_EQ(a.planes[l].shift, b.planes[l].shift);
    }
}

void
expectStreamsEqual(const std::vector<RleStream> &a,
                   const std::vector<RleStream> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        ASSERT_EQ(a[s].storedCount(), b[s].storedCount()) << "stream " << s;
        EXPECT_EQ(a[s].totalCount(), b[s].totalCount());
        for (std::size_t i = 0; i < a[s].storedCount(); ++i) {
            EXPECT_EQ(a[s].entries()[i].skip, b[s].entries()[i].skip);
            EXPECT_EQ(a[s].entries()[i].vectorIndex,
                      b[s].entries()[i].vectorIndex);
            std::span<const Slice> pa = a[s].payload(i);
            std::span<const Slice> pb = b[s].payload(i);
            EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin()));
        }
    }
}

TEST(PrepParallel, SlicingMatchesSerialAcrossThreads)
{
    PoolGuard guard;
    Rng rng(11);
    MatrixI32 w_codes = randomSignedCodes(rng, 37, 23, sbrBits(2));
    MatrixI32 x_codes = randomUnsignedCodes(rng, 29, 31, 12);
    MatrixI32 dbs_codes = randomUnsignedCodes(rng, 29, 31, 8);

    setParallelThreads(1);
    const SlicedMatrix w_serial = sbrSliceMatrix(w_codes, 2);
    const SlicedMatrix x_serial = activationSliceMatrix(x_codes, 2);
    const SlicedMatrix d_serial = dbsSliceMatrix(dbs_codes, 5);

    for (int threads : kThreadCounts) {
        setParallelThreads(threads);
        expectSlicedEqual(sbrSliceMatrix(w_codes, 2), w_serial);
        expectSlicedEqual(activationSliceMatrix(x_codes, 2), x_serial);
        expectSlicedEqual(dbsSliceMatrix(dbs_codes, 5), d_serial);
    }
}

TEST(PrepParallel, RleEncodingMatchesSerialAcrossThreads)
{
    PoolGuard guard;
    Rng rng(22);
    // Biased planes so runs of compressible vectors actually occur.
    Matrix<Slice> w_plane(24, 40);
    for (auto &s : w_plane.data())
        s = rng.bernoulli(0.7) ? 0
                               : static_cast<Slice>(rng.uniformInt(-8, 7));
    Matrix<Slice> x_plane(40, 24);
    for (auto &s : x_plane.data())
        s = rng.bernoulli(0.7) ? 9
                               : static_cast<Slice>(rng.uniformInt(0, 15));

    setParallelThreads(1);
    const auto w_serial = encodeWeightPlane(w_plane, 4, 4);
    const auto x_serial = encodeActivationPlane(x_plane, 4, 9, 4);

    for (int threads : kThreadCounts) {
        setParallelThreads(threads);
        expectStreamsEqual(encodeWeightPlane(w_plane, 4, 4), w_serial);
        expectStreamsEqual(encodeActivationPlane(x_plane, 4, 9, 4),
                           x_serial);
    }
}

TEST(PrepParallel, MaskBuildMatchesSerialAcrossThreads)
{
    PoolGuard guard;
    Rng rng(33);
    Matrix<Slice> w_plane(32, 20);
    for (auto &s : w_plane.data())
        s = rng.bernoulli(0.6) ? 0
                               : static_cast<Slice>(rng.uniformInt(-8, 7));
    Matrix<Slice> x_plane(20, 32);
    for (auto &s : x_plane.data())
        s = rng.bernoulli(0.6) ? 8
                               : static_cast<Slice>(rng.uniformInt(0, 15));

    setParallelThreads(1);
    const MatrixU8 w_serial = weightVectorMask(w_plane, 4);
    const MatrixU8 x_serial = activationVectorMask(x_plane, 4, 8);

    for (int threads : kThreadCounts) {
        setParallelThreads(threads);
        EXPECT_TRUE(weightVectorMask(w_plane, 4) == w_serial);
        EXPECT_TRUE(activationVectorMask(x_plane, 4, 8) == x_serial);
    }
}

TEST(PrepParallel, FullOperandPreparationMatchesSerialAcrossThreads)
{
    PoolGuard guard;
    Rng rng(44);
    const std::int32_t zp = 137;
    MatrixI32 w_codes = randomSignedCodes(rng, 32, 24, sbrBits(1));
    MatrixI32 x_codes = randomUnsignedCodes(rng, 24, 28, 8);

    AqsConfig cfg;
    setParallelThreads(1);
    const WeightOperand w_serial = prepareWeights(w_codes, 1, cfg);
    const ActivationOperand x_serial =
        prepareActivations(x_codes, 1, zp, cfg);

    for (int threads : kThreadCounts) {
        setParallelThreads(threads);
        WeightOperand w = prepareWeights(w_codes, 1, cfg);
        ActivationOperand x = prepareActivations(x_codes, 1, zp, cfg);

        expectSlicedEqual(w.sliced, w_serial.sliced);
        EXPECT_TRUE(w.totalCodes == w_serial.totalCodes);
        EXPECT_TRUE(w.hoMask == w_serial.hoMask);
        expectStreamsEqual(w.streams, w_serial.streams);

        expectSlicedEqual(x.sliced, x_serial.sliced);
        EXPECT_EQ(x.r, x_serial.r);
        EXPECT_TRUE(x.hoMask == x_serial.hoMask);
        expectStreamsEqual(x.streams, x_serial.streams);
        EXPECT_EQ(x.widenedPlanes, x_serial.widenedPlanes);
        EXPECT_EQ(x.pairedPlanes, x_serial.pairedPlanes);
    }
}

} // namespace
} // namespace panacea
