/**
 * @file
 * Signed bit-slice representation tests: exhaustive round trips, slice
 * range invariants and the zero-HO-slice capture property that motivates
 * SBR (paper Fig. 3(b)).
 */

#include <gtest/gtest.h>

#include "slicing/sbr.h"

namespace panacea {
namespace {

TEST(Sbr, BitWidthHelpers)
{
    EXPECT_EQ(sbrBits(0), 4);
    EXPECT_EQ(sbrBits(1), 7);
    EXPECT_EQ(sbrBits(2), 10);
    EXPECT_EQ(sbrLoSliceCount(4), 0);
    EXPECT_EQ(sbrLoSliceCount(7), 1);
    EXPECT_EQ(sbrLoSliceCount(10), 2);
}

TEST(Sbr, PaperExampleMinusOne)
{
    // Fig. 3(b): -1 = 1111111(2) becomes HO 0000 after the +1
    // compensation, with LO = 1111(2) = -1.
    std::vector<Slice> s = sbrEncode(-1, 1);
    EXPECT_EQ(s[1], 0);   // HO slice is zero -> skippable
    EXPECT_EQ(s[0], -1);  // sign-extended LO slice
    EXPECT_EQ(sbrDecode(s), -1);
}

/** Exhaustive round-trip + range check per slice count. */
class SbrRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(SbrRoundTrip, AllValues)
{
    const int n = GetParam();
    const int bits = sbrBits(n);
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    for (std::int32_t v = lo; v <= hi; ++v) {
        std::vector<Slice> s = sbrEncode(v, n);
        ASSERT_EQ(static_cast<int>(s.size()), n + 1);
        for (Slice sl : s) {
            ASSERT_GE(sl, signedSliceMin);
            ASSERT_LE(sl, signedSliceMax);
        }
        ASSERT_EQ(sbrDecode(s), v) << "value " << v << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, SbrRoundTrip,
                         ::testing::Values(0, 1, 2, 3));

TEST(Sbr, ZeroHoSliceRange)
{
    // SBR's purpose: every |v| <= 8^n has an all-zero HO slice, covering
    // negative near-zero values that straightforward slicing misses.
    for (int n : {1, 2}) {
        const std::int32_t window = 1 << (3 * n);
        const int bits = sbrBits(n);
        const std::int32_t lo = -(1 << (bits - 1));
        const std::int32_t hi = (1 << (bits - 1)) - 1;
        for (std::int32_t v = lo; v <= hi; ++v) {
            std::vector<Slice> s = sbrEncode(v, n);
            bool ho_zero = s.back() == 0;
            bool in_window = v >= -window && v <= window - 1;
            ASSERT_EQ(ho_zero, in_window) << "v=" << v << " n=" << n;
        }
    }
}

TEST(Sbr, EncodeIntoMatchesVectorForm)
{
    Slice buf[3];
    for (std::int32_t v = -512; v <= 511; ++v) {
        sbrEncodeInto(v, 2, buf);
        std::vector<Slice> s = sbrEncode(v, 2);
        ASSERT_EQ(buf[0], s[0]);
        ASSERT_EQ(buf[1], s[1]);
        ASSERT_EQ(buf[2], s[2]);
    }
}

TEST(SbrDeath, RejectsOutOfRange)
{
    EXPECT_DEATH(sbrEncode(64, 1), "does not fit");
    EXPECT_DEATH(sbrEncode(-65, 1), "does not fit");
    EXPECT_DEATH(sbrLoSliceCount(8), "SBR requires");
}

} // namespace
} // namespace panacea
