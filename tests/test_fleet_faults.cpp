/**
 * @file
 * Fault-injection tests for the fleet tier, driven through
 * FleetOptions::testHooks (per-replica admit delay, forced engine
 * throw, stall-at-layer). The contract under test: a stalled or
 * throwing replica is quarantined and its ROUTER-QUEUED requests are
 * re-dispatched to healthy replicas (or shed, typed, when none can
 * take them) - never lost, never answered twice. Requests already
 * committed to a stalled engine complete exactly once when the stall
 * releases. Completed outputs stay byte-identical to solo runs
 * through every fault path.
 *
 * Determinism: these tests pin the engine depth to one request
 * (engineDepthColumns = one request's columns, batchWindow = 1), so
 * "which request was in the engine when the fault fired" is a pure
 * function of the paused-start placement schedule - no sleeps, no
 * timing assumptions except the stall timeout itself.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "panacea/fleet.h"
#include "panacea/runtime.h"
#include "panacea/session.h"
#include "util/random.h"

namespace panacea {
namespace {

ModelSpec
tinySpec(const std::string &name)
{
    ModelSpec spec;
    spec.name = name;
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12;
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

std::vector<MatrixF>
makeInputs(std::size_t features, std::size_t count)
{
    Rng rng(0xfa17);
    std::vector<MatrixF> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        MatrixF x(features, 4);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }
    return inputs;
}

std::vector<InferenceResult>
soloRun(Runtime &rt, const CompiledModel &model,
        const std::vector<MatrixF> &inputs)
{
    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    Session session = rt.createSession(opts);
    std::vector<InferenceResult> out;
    out.reserve(inputs.size());
    for (const MatrixF &x : inputs)
        out.push_back(session.infer(model, x));
    return out;
}

/** Fleet options shared by the deterministic fault scenarios: one
 *  request in the engine at a time, one request per cohort. */
FleetOptions
faultFleetOptions(int replicas)
{
    FleetOptions fopts;
    fopts.replicas = replicas;
    fopts.queueCapColumns = 64;
    fopts.engineDepthColumns = 4; // exactly one 4-column request
    fopts.startPaused = true;
    fopts.engine.workers = 1;
    fopts.engine.batchWindow = 1;
    fopts.engine.batchDeadlineMs = 0.0;
    return fopts;
}

TEST(FleetFaults, AdmitDelayOnlySlowsNeverChangesResults)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-fault-delay");
    const CompiledModel model = rt.compile(spec);
    const std::vector<MatrixF> inputs =
        makeInputs(model.inputFeatures(), 8);
    const std::vector<InferenceResult> solo =
        soloRun(rt, model, inputs);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.engine.workers = 1;
    fopts.testHooks.replicas.resize(1);
    fopts.testHooks.replicas[0].admitDelayMs = 2.0; // slow replica 0
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model);

    std::vector<std::future<FleetResult>> futs;
    for (const MatrixF &x : inputs)
        futs.push_back(fleet.submit(spec.name, x));
    fleet.drain();
    for (std::size_t i = 0; i < futs.size(); ++i) {
        FleetResult r = futs[i].get();
        ASSERT_EQ(r.outcome, FleetOutcome::Completed)
            << "i=" << i << ": " << r.rejectReason;
        EXPECT_TRUE(r.result.output == solo[i].output) << "i=" << i;
    }
    EXPECT_EQ(fleet.stats().quarantined, 0u);
}

TEST(FleetFaults, ThrowingReplicaIsQuarantinedAndWorkRedispatched)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-fault-throw");
    const CompiledModel model = rt.compile(spec);
    const std::vector<MatrixF> inputs =
        makeInputs(model.inputFeatures(), 6);
    const std::vector<InferenceResult> solo =
        soloRun(rt, model, inputs);

    // Paused placement alternates 0,1,0,1,0,1 -> replica 0 holds
    // requests {0,2,4}, replica 1 holds {1,3,5}. Replica 0's FIRST
    // cohort (request 0, alone: window 1, depth 1 request) throws;
    // the harvester quarantines it, recalls {2,4} and redispatches
    // them, then redispatches request 0 itself - all under one mutex
    // hold, so replica 0's dispatcher can never sneak another forward
    // in between.
    FleetOptions fopts = faultFleetOptions(2);
    fopts.testHooks.replicas.resize(1);
    fopts.testHooks.replicas[0].throwOnCohort = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model);

    std::vector<std::future<FleetResult>> futs;
    for (const MatrixF &x : inputs)
        futs.push_back(fleet.submit(spec.name, x));
    fleet.start();
    fleet.drain();

    for (std::size_t i = 0; i < futs.size(); ++i) {
        FleetResult r = futs[i].get();
        ASSERT_EQ(r.outcome, FleetOutcome::Completed)
            << "i=" << i << ": " << r.rejectReason;
        // Never lost, never answered twice, still bit-exact: every
        // request completed exactly once on the healthy replica.
        EXPECT_EQ(r.replica, 1) << "i=" << i;
        EXPECT_TRUE(r.result.output == solo[i].output) << "i=" << i;
        EXPECT_EQ(r.dispatches, i == 0 ? 2 : 1) << "i=" << i;
    }
    const FleetStats s = fleet.stats();
    EXPECT_EQ(s.completed, 6u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.quarantined, 1u);
    EXPECT_EQ(s.redispatched, 3u); // recalled {2,4} + faulted {0}
    ASSERT_EQ(s.replicas.size(), 2u);
    EXPECT_TRUE(s.replicas[0].quarantined);
    EXPECT_EQ(s.replicas[0].faults, 1u);
    EXPECT_EQ(s.replicas[0].recalled, 2u);
    EXPECT_NE(s.replicas[0].quarantineReason.find("engine fault"),
              std::string::npos);
    EXPECT_FALSE(s.replicas[1].quarantined);
}

TEST(FleetFaults, LastReplicaFaultShedsTypedNeverHangs)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-fault-last");
    const CompiledModel model = rt.compile(spec);
    const std::vector<MatrixF> inputs =
        makeInputs(model.inputFeatures(), 3);

    FleetOptions fopts = faultFleetOptions(1);
    fopts.testHooks.replicas.resize(1);
    fopts.testHooks.replicas[0].throwOnCohort = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model);

    std::vector<std::future<FleetResult>> futs;
    for (const MatrixF &x : inputs)
        futs.push_back(fleet.submit(spec.name, x));
    fleet.start();
    fleet.drain();

    // With no healthy replica left, everything sheds TYPED - the
    // futures resolve (drain() returned, proving no request was
    // lost) instead of hanging or throwing.
    for (std::size_t i = 0; i < futs.size(); ++i) {
        FleetResult r = futs[i].get();
        EXPECT_EQ(r.outcome, FleetOutcome::Rejected) << "i=" << i;
        EXPECT_NE(r.rejectReason.find("shed after replica fault"),
                  std::string::npos)
            << r.rejectReason;
    }
    // New submissions reject immediately: the fleet is honest about
    // being dead rather than queueing into nowhere.
    FleetResult dead = fleet.submit(spec.name, inputs[0]).get();
    EXPECT_EQ(dead.outcome, FleetOutcome::Rejected);
    EXPECT_NE(dead.rejectReason.find("no healthy replica"),
              std::string::npos);
    EXPECT_EQ(fleet.stats().quarantined, 1u);
}

TEST(FleetFaults, StalledReplicaIsQuarantinedQueueMovesWorkFinishes)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-fault-stall");
    const CompiledModel model = rt.compile(spec);
    const std::vector<MatrixF> inputs =
        makeInputs(model.inputFeatures(), 6);
    const std::vector<InferenceResult> solo =
        soloRun(rt, model, inputs);

    // Replica 0 stalls at layer 1 (request 0's cohort blocks there);
    // the 50 ms stall timeout quarantines it and redispatches its
    // queued requests {2,4}. Waiting on THEIR futures is the
    // sleep-free proof that stall detection fired: they can only
    // complete on replica 1 after the recall.
    FleetOptions fopts = faultFleetOptions(2);
    fopts.stallTimeoutMs = 50.0;
    fopts.testHooks.replicas.resize(1);
    fopts.testHooks.replicas[0].stallAtLayer = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model);

    std::vector<std::future<FleetResult>> futs;
    for (const MatrixF &x : inputs)
        futs.push_back(fleet.submit(spec.name, x));
    fleet.start();

    for (std::size_t i = 1; i < futs.size(); ++i) {
        FleetResult r = futs[i].get();
        ASSERT_EQ(r.outcome, FleetOutcome::Completed)
            << "i=" << i << ": " << r.rejectReason;
        EXPECT_EQ(r.replica, 1) << "i=" << i;
        EXPECT_TRUE(r.result.output == solo[i].output) << "i=" << i;
    }
    {
        const FleetStats s = fleet.stats();
        EXPECT_EQ(s.quarantined, 1u);
        ASSERT_EQ(s.replicas.size(), 2u);
        EXPECT_NE(s.replicas[0].quarantineReason.find("stalled"),
                  std::string::npos);
        EXPECT_EQ(s.replicas[0].recalled, 2u);
    }
    // Request 0 is committed to the stalled engine: not recallable,
    // not lost. It must still be pending...
    EXPECT_NE(futs[0].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    // ...and completes exactly once - on the quarantined replica,
    // bit-exact - when the stall releases.
    fleet.releaseStalls();
    FleetResult r0 = futs[0].get();
    ASSERT_EQ(r0.outcome, FleetOutcome::Completed)
        << r0.rejectReason;
    EXPECT_EQ(r0.replica, 0);
    EXPECT_EQ(r0.dispatches, 1);
    EXPECT_TRUE(r0.result.output == solo[0].output);
    fleet.drain();
    const FleetStats s = fleet.stats();
    EXPECT_EQ(s.completed, 6u);
    EXPECT_EQ(s.rejected, 0u);
}

} // namespace
} // namespace panacea
