/**
 * @file
 * Hardware-faithful unit tests for the small PEA components: the
 * shift-accumulator (S-ACC), the compensator (CS) against the AQS-GEMM's
 * internal compensation, and the RLE index decoder (IDXD).
 */

#include <gtest/gtest.h>

#include "arch/compensator.h"
#include "arch/idx_decoder.h"
#include "arch/s_acc.h"
#include "core/aqs_gemm.h"
#include "quant/gemm_quant.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(SAcc, ShiftAndAccumulate)
{
    ShiftAccumulator acc;
    acc.accumulate(3, 4);    // 48
    acc.accumulate(-2, 0);   // 46
    acc.accumulate(1, 8);    // 302
    EXPECT_EQ(acc.value(), 302);
    EXPECT_EQ(acc.shiftsPerformed(), 3u);
    acc.reset();
    EXPECT_EQ(acc.value(), 0);
}

TEST(SAcc, DbsShiftCombination)
{
    // DBS type-2 (l = 5): HO partials shift by 5, LO by 1.
    EXPECT_EQ(sAccShift(0, 5), 5);
    EXPECT_EQ(sAccShift(3, 1), 4);
}

TEST(IdxDecoder, RecoverIndicesFromSkips)
{
    std::vector<Slice> vectors(10 * 4, 7);
    for (int j = 0; j < 4; ++j) {
        vectors[2 * 4 + j] = 1;
        vectors[7 * 4 + j] = 2;
    }
    RleStream stream = RleStream::encode(vectors, 10, 4, 7, 4);
    auto indices = IndexDecoder::decodeIndices(stream);
    ASSERT_EQ(indices.size(), 2u);
    EXPECT_EQ(indices[0], 2u);
    EXPECT_EQ(indices[1], 7u);
}

TEST(IdxDecoder, MatchIndices)
{
    std::vector<std::uint32_t> a = {0, 2, 5, 9, 11};
    std::vector<std::uint32_t> b = {2, 3, 9, 12};
    auto matched = IndexDecoder::matchIndices(a, b);
    ASSERT_EQ(matched.size(), 2u);
    EXPECT_EQ(matched[0], 2u);
    EXPECT_EQ(matched[1], 9u);
}

TEST(Compensator, MatchesAqsGemmCompensation)
{
    // Run the functional engine with and without r-skipping; the
    // difference of the two accumulators is exactly the compensation a
    // CS must produce for each output block.
    Rng rng(121);
    const std::int32_t zp = 136;
    const Slice r = zp >> 4;
    MatrixI32 w(4, 24);
    MatrixI32 x(24, 4);
    for (auto &v : w.data())
        v = static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    for (auto &v : x.data())
        v = rng.bernoulli(0.7)
                ? (static_cast<std::int32_t>(r) << 4) +
                      static_cast<std::int32_t>(rng.uniformInt(0, 15))
                : static_cast<std::int32_t>(rng.uniformInt(0, 255));

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);

    // Feed the CS exactly what the hardware would: the total weight
    // columns at activation-uncompressed indices.
    Compensator cs(4, 4);
    std::vector<std::int64_t> b_prime(4, 0);
    for (int i = 0; i < 4; ++i) {
        std::int64_t sum = 0;
        for (std::size_t k = 0; k < 24; ++k)
            sum += w_op.totalCodes(i, k);
        b_prime[i] = sum * (static_cast<std::int64_t>(r) << 4);
    }
    // Absorb each plane's column separately, exactly as the CS's small
    // S-ACCs accumulate the loaded weight slices.
    for (std::size_t k = 0; k < 24; ++k) {
        if (x_op.hoMask(k, 0))
            continue;
        for (const SlicePlane &plane : w_op.sliced.planes) {
            Slice col[4];
            for (int i = 0; i < 4; ++i)
                col[i] = plane.data(i, k);
            cs.absorbColumn(std::span<const Slice>(col, 4), plane.shift);
        }
    }
    std::vector<std::int64_t> comp = cs.finish(b_prime, r);

    // Reference: difference between dense and skipped accumulators.
    AqsConfig dense_cfg;
    dense_cfg.actSkip = ActSkipMode::None;
    dense_cfg.skipWeightVectors = false;
    WeightOperand w_dense = prepareWeights(w, 1, dense_cfg);
    ActivationOperand x_dense =
        prepareActivations(x, 1, zp, dense_cfg);
    MatrixI64 full = aqsGemm(w_dense, x_dense, dense_cfg);

    AqsConfig skip_nocomp = cfg;
    MatrixI64 with_comp = aqsGemm(w_op, x_op, skip_nocomp);
    // with_comp == full (exactness); so the CS output must equal the
    // contribution of the skipped HO vectors.
    EXPECT_TRUE(with_comp == full);

    // Direct check of the CS arithmetic: comp == r*2^4 * sum of
    // compressed columns of the total weight.
    for (int i = 0; i < 4; ++i) {
        std::int64_t expect = 0;
        for (std::size_t k = 0; k < 24; ++k)
            if (x_op.hoMask(k, 0))
                expect += w_op.totalCodes(i, k) *
                          (static_cast<std::int64_t>(r) << 4);
        EXPECT_EQ(comp[i], expect) << "row " << i;
    }
    EXPECT_GT(cs.adds(), 0u);
    EXPECT_EQ(cs.mults(), 16u);
}

} // namespace
} // namespace panacea
