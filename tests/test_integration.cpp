/**
 * @file
 * Cross-module integration tests: multi-layer pipelines with PPU
 * requantization between layers, functional-vs-cycle-simulator
 * consistency at the model level, and configuration invariances
 * (results never depend on DTP, RLE width or the Eq. (5)/(6) choice).
 */

#include <gtest/gtest.h>

#include "arch/panacea_sim.h"
#include "arch/ppu.h"
#include "baselines/sibia.h"
#include "core/aqs_layer.h"
#include "models/model_workloads.h"
#include "models/model_zoo.h"
#include "quant/gemm_quant.h"
#include "quant/quantizer.h"
#include "util/random.h"

namespace panacea {
namespace {

MatrixF
randomMatrix(Rng &rng, std::size_t r, std::size_t c, double mean,
             double stddev)
{
    MatrixF m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(rng.gaussian(mean, stddev));
    return m;
}

TEST(Integration, TwoLayerChainWithPpuRequantization)
{
    // layer1 -> GELU (PWL) -> requantize -> layer2, all through the
    // AQS path; compare against the float reference end to end.
    Rng rng(201);
    MatrixF w1 = randomMatrix(rng, 32, 48, 0.0, 0.15);
    MatrixF w2 = randomMatrix(rng, 16, 32, 0.0, 0.15);
    MatrixF calib1 = randomMatrix(rng, 48, 64, 0.2, 0.5);
    MatrixF x = randomMatrix(rng, 48, 16, 0.2, 0.5);

    AqsPipelineOptions opts;
    opts.enableDbs = false;
    std::vector<MatrixF> batches1 = {calib1};
    AqsLinearLayer layer1 =
        AqsLinearLayer::calibrate(w1, {}, batches1, opts);

    // Calibrate layer 2 on layer 1's (non-linear) calibration output.
    MatrixF mid_calib = applyNonlinearityPwl(layer1.forward(calib1),
                                             Nonlinearity::Gelu);
    std::vector<MatrixF> batches2 = {mid_calib};
    AqsLinearLayer layer2 =
        AqsLinearLayer::calibrate(w2, {}, batches2, opts);

    // Quantized chain.
    MatrixF mid = applyNonlinearityPwl(layer1.forward(x),
                                       Nonlinearity::Gelu);
    MatrixF out = layer2.forward(mid);

    // Float reference.
    MatrixF mid_ref = applyNonlinearityExact(floatGemm(w1, x),
                                             Nonlinearity::Gelu);
    MatrixF out_ref = floatGemm(w2, mid_ref);

    double err = 0.0;
    double mag = 0.0;
    for (std::size_t i = 0; i < out.data().size(); ++i) {
        double d = out.data()[i] - out_ref.data()[i];
        err += d * d;
        mag += static_cast<double>(out_ref.data()[i]) *
               out_ref.data()[i];
    }
    EXPECT_LT(std::sqrt(err / mag), 0.05);
}

TEST(Integration, RequantizeRoundTripFeedsNextLayer)
{
    // The PPU's integer requantization must agree with quantizing the
    // dequantized accumulator - the property that lets layer outputs
    // feed the next layer without leaving the integer domain.
    Rng rng(202);
    MatrixF w = randomMatrix(rng, 16, 32, 0.0, 0.2);
    MatrixF calib = randomMatrix(rng, 32, 32, 0.5, 0.4);
    AqsPipelineOptions opts;
    opts.enableDbs = false;
    std::vector<MatrixF> batches = {calib};
    AqsLinearLayer layer = AqsLinearLayer::calibrate(w, {}, batches, opts);

    MatrixF x = randomMatrix(rng, 32, 8, 0.5, 0.4);
    MatrixI32 codes = layer.quantizeInput(x);
    MatrixI64 acc = layer.forwardCodes(codes);
    double acc_scale =
        layer.weightParams().scale * layer.activationParams().scale;

    QuantParams next;
    next.scheme = QuantScheme::Asymmetric;
    next.bits = 8;
    next.scale = 0.05;
    next.zeroPoint = 120;
    MatrixI32 requant = requantize(acc, acc_scale, next);
    MatrixF dequant = dequantizeAccumulator(acc, acc_scale, 1.0);
    MatrixI32 reference = quantize(dequant, next);
    EXPECT_TRUE(requant == reference);
}

TEST(Integration, SimCountersMatchFunctionalOnModelLayer)
{
    // Build a small model layer through the full bridge and check the
    // cycle simulator's arithmetic counters against the functional
    // engine run on the same prepared operands.
    LayerSpec spec;
    spec.name = "IT";
    spec.m = 128;
    spec.kDim = 96;
    spec.dist = ActDistKind::PostGelu;

    ModelBuildOptions opt;
    Rng rng(203);
    LayerBuild lb = buildLayer(spec, 64, opt, rng);

    PanaceaConfig cfg;
    cfg.enableDtp = false;
    PerfResult res = PanaceaSimulator(cfg).run(lb.panacea);

    // Reconstruct the functional stats from the workload masks via the
    // Table-I-validated counting: executed = sum over products.
    // (The simulator was already cross-checked against aqsGemm in
    // test_panacea_sim; here we assert the bridge preserved the masks.)
    EXPECT_EQ(lb.panacea.wMask.rows(), spec.m / 4);
    EXPECT_EQ(lb.panacea.xMask.cols(), 64u / 4);
    EXPECT_GT(res.counters.mults4b, 0u);
    EXPECT_LT(res.counters.mults4b,
              4ull * spec.m * spec.kDim * 64 * 2);
    EXPECT_GT(res.opUtilization(), 0.0);
    EXPECT_LE(res.opUtilization(), 1.0);
}

TEST(Integration, DtpNeverChangesArithmetic)
{
    // DTP re-schedules work; executed multiplies, adds and useful MACs
    // must be identical with and without it (only cycles/traffic move).
    Rng rng(204);
    GemmWorkload wl = GemmWorkload::synthetic(
        "dtp", 512, 256, 128, 0.7, 0.9, 4, rng);
    PanaceaConfig a;
    a.enableDtp = false;
    PanaceaConfig b;
    b.enableDtp = true;
    PerfResult ra = PanaceaSimulator(a).run(wl);
    PerfResult rb = PanaceaSimulator(b).run(wl);
    EXPECT_EQ(ra.counters.mults4b, rb.counters.mults4b);
    EXPECT_EQ(ra.counters.adds, rb.counters.adds);
    EXPECT_EQ(ra.counters.usefulMacs, rb.counters.usefulMacs);
    EXPECT_LE(rb.counters.cycles, ra.counters.cycles);
}

TEST(Integration, RleWidthNeverChangesResults)
{
    // The RLE index width trades traffic for skip budget; functional
    // results must be bit-identical across widths.
    Rng rng(205);
    const std::int32_t zp = 136;
    MatrixI32 w(32, 48);
    MatrixI32 x(48, 16);
    for (auto &v : w.data())
        v = static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    for (auto &v : x.data())
        v = rng.bernoulli(0.9)
                ? zp + static_cast<std::int32_t>(rng.uniformInt(-6, 6))
                : static_cast<std::int32_t>(rng.uniformInt(0, 255));

    MatrixI64 reference;
    for (int idx_bits : {2, 4, 8, 16}) {
        AqsConfig cfg;
        cfg.rleIndexBits = idx_bits;
        WeightOperand w_op = prepareWeights(w, 1, cfg);
        ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
        MatrixI64 acc = aqsGemm(w_op, x_op, cfg);
        if (idx_bits == 2)
            reference = acc;
        else
            EXPECT_TRUE(acc == reference) << "idx bits " << idx_bits;
    }
}

TEST(Integration, Eq5AndEq6ProduceIdenticalResults)
{
    Rng rng(206);
    const std::int32_t zp = 88;
    MatrixI32 w(16, 32);
    MatrixI32 x(32, 8);
    for (auto &v : w.data())
        v = static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    for (auto &v : x.data())
        v = rng.bernoulli(0.8)
                ? zp + static_cast<std::int32_t>(rng.uniformInt(-7, 7))
                : static_cast<std::int32_t>(rng.uniformInt(0, 255));

    AqsConfig eq6;
    AqsConfig eq5;
    eq5.useEq6 = false;
    WeightOperand w_op = prepareWeights(w, 1, eq6);
    ActivationOperand x_op = prepareActivations(x, 1, zp, eq6);
    EXPECT_TRUE(aqsGemm(w_op, x_op, eq6) == aqsGemm(w_op, x_op, eq5));
}

TEST(Integration, HistAwareZpmKeepsExactness)
{
    // The extension changes r, never correctness.
    Rng rng(207);
    MatrixF w = randomMatrix(rng, 16, 32, 0.0, 0.2);
    MatrixF calib = randomMatrix(rng, 32, 64, 0.3, 0.3);
    MatrixF x = randomMatrix(rng, 32, 8, 0.3, 0.3);

    AqsPipelineOptions opts;
    opts.enableDbs = false;
    opts.histAwareZpm = true;
    std::vector<MatrixF> batches = {calib};
    AqsLinearLayer layer = AqsLinearLayer::calibrate(w, {}, batches, opts);

    QuantizedLinear ref = QuantizedLinear::make(
        w, {}, opts.weightBits, layer.activationParams());
    MatrixI32 codes = layer.quantizeInput(x);
    EXPECT_TRUE(layer.forwardCodes(codes) == ref.forwardCodes(codes));
}

TEST(Integration, SmallModelEndToEndAcrossDesigns)
{
    // A miniature model through the whole bridge and both bit-slice
    // simulators: every derived metric must be finite and positive.
    ModelSpec tiny;
    tiny.name = "tiny";
    tiny.seqLen = 64;
    tiny.layers = {
        {"A", 64, 64, 0, ActDistKind::LayerNormGauss, 1.0, 0.02, 2, 7, 8},
        {"B", 64, 64, 0, ActDistKind::PostGelu, 1.0, 0.0, 2, 7, 8},
    };
    ModelBuildOptions opt;
    ModelBuild build = buildModel(tiny, opt);

    PanaceaSimulator panacea;
    SibiaSimulator sibia;
    PerfResult rp = panacea.runAll(build.panaceaWorkloads(), tiny.name);
    PerfResult rs = sibia.runAll(build.sibiaWorkloads(), tiny.name);
    for (const PerfResult *r : {&rp, &rs}) {
        EXPECT_GT(r->tops(), 0.0) << r->accelerator;
        EXPECT_GT(r->topsPerWatt(), 0.0) << r->accelerator;
        EXPECT_GT(r->counters.dramReadBytes, 0u) << r->accelerator;
        EXPECT_LE(r->opUtilization(), 1.0) << r->accelerator;
    }
    EXPECT_EQ(rp.counters.usefulMacs, rs.counters.usefulMacs);
}

} // namespace
} // namespace panacea
