/**
 * @file
 * Uniform quantizer tests (paper Eq. (1)/(2)): scale conventions,
 * round-trip error bounds, clipping and zero-point semantics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/quantizer.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(Quantizer, SymmetricScaleConvention)
{
    std::vector<float> sample = {-2.0f, -0.5f, 0.0f, 1.0f, 1.5f};
    QuantParams p = chooseSymmetricParams(sample, 8);
    EXPECT_EQ(p.scheme, QuantScheme::Symmetric);
    EXPECT_DOUBLE_EQ(p.scale, 2.0 * 2.0 / 255.0);
    EXPECT_EQ(p.zeroPoint, 0);
    EXPECT_EQ(p.codeMin(), -128);
    EXPECT_EQ(p.codeMax(), 127);
}

TEST(Quantizer, AsymmetricScaleAndZeroPoint)
{
    std::vector<float> sample = {-1.0f, 0.0f, 3.0f};
    QuantParams p = chooseAsymmetricParams(sample, 8);
    EXPECT_EQ(p.scheme, QuantScheme::Asymmetric);
    EXPECT_DOUBLE_EQ(p.scale, 4.0 / 255.0);
    EXPECT_EQ(p.zeroPoint,
              static_cast<std::int32_t>(std::llround(1.0 / p.scale)));
    EXPECT_EQ(p.codeMin(), 0);
    EXPECT_EQ(p.codeMax(), 255);
    // Real zero maps to the zero point.
    EXPECT_EQ(quantizeValue(0.0f, p), p.zeroPoint);
}

TEST(Quantizer, RoundTripErrorBoundedByHalfStep)
{
    Rng rng(3);
    std::vector<float> sample(4096);
    for (auto &v : sample)
        v = static_cast<float>(rng.gaussian(0.7, 1.3));
    for (auto scheme : {QuantScheme::Symmetric, QuantScheme::Asymmetric}) {
        QuantParams p = scheme == QuantScheme::Symmetric
                            ? chooseSymmetricParams(sample, 8)
                            : chooseAsymmetricParams(sample, 8);
        for (float v : sample) {
            float rec = dequantizeValue(quantizeValue(v, p), p);
            // Within the representable range the error is at most s/2.
            EXPECT_LE(std::abs(v - rec), p.scale * 0.5 + 1e-6)
                << toString(scheme);
        }
    }
}

TEST(Quantizer, ClipsOutOfRangeValues)
{
    QuantParams p = chooseAsymmetricParamsFromRange(0.0f, 1.0f, 8);
    EXPECT_EQ(quantizeValue(5.0f, p), 255);
    EXPECT_EQ(quantizeValue(-5.0f, p), 0);

    QuantParams s = chooseSymmetricParamsFromAbsMax(1.0f, 8);
    EXPECT_EQ(quantizeValue(100.0f, s), 127);
    EXPECT_EQ(quantizeValue(-100.0f, s), -128);
}

TEST(Quantizer, MatrixRoundTripMatchesScalar)
{
    Rng rng(4);
    MatrixF x(8, 8);
    for (auto &v : x.data())
        v = static_cast<float>(rng.uniformReal(-2.0, 5.0));
    QuantParams p = chooseAsymmetricParams(x.data(), 8);
    MatrixI32 codes = quantize(x, p);
    MatrixF rec = dequantize(codes, p);
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c) {
            EXPECT_EQ(codes(r, c), quantizeValue(x(r, c), p));
            EXPECT_FLOAT_EQ(rec(r, c),
                            dequantizeValue(codes(r, c), p));
        }
}

class QuantizerBitSweep : public ::testing::TestWithParam<int>
{};

TEST_P(QuantizerBitSweep, CodesStayInRange)
{
    const int bits = GetParam();
    Rng rng(bits);
    std::vector<float> sample(1024);
    for (auto &v : sample)
        v = static_cast<float>(rng.laplace(0.5, 2.0));

    QuantParams sym = chooseSymmetricParams(sample, bits);
    QuantParams asym = chooseAsymmetricParams(sample, bits);
    for (float v : sample) {
        std::int32_t cs = quantizeValue(v, sym);
        std::int32_t ca = quantizeValue(v, asym);
        ASSERT_GE(cs, sym.codeMin());
        ASSERT_LE(cs, sym.codeMax());
        ASSERT_GE(ca, 0);
        ASSERT_LE(ca, asym.codeMax());
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerBitSweep,
                         ::testing::Values(4, 7, 8, 10, 12));

TEST(Quantizer, ConstantTensorDegenerateRange)
{
    std::vector<float> sample(16, 3.0f);
    QuantParams p = chooseAsymmetricParams(sample, 8);
    // Degenerate range falls back to unit scale without dividing by 0.
    EXPECT_GT(p.scale, 0.0);
    std::int32_t c = quantizeValue(3.0f, p);
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 255);
}

} // namespace
} // namespace panacea
