/**
 * @file
 * Sliced-matrix tests: lossless reconstruction across representations
 * and plane metadata (shifts, HO flags).
 */

#include <gtest/gtest.h>

#include "slicing/slice_tensor.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(SliceTensor, SbrReconstructLossless)
{
    Rng rng(31);
    for (int n : {0, 1, 2}) {
        const int bits = 3 * n + 4;
        MatrixI32 codes(16, 12);
        for (auto &c : codes.data())
            c = static_cast<std::int32_t>(rng.uniformInt(
                -(1 << (bits - 1)), (1 << (bits - 1)) - 1));
        SlicedMatrix sliced = sbrSliceMatrix(codes, n);
        EXPECT_EQ(sliced.levels(), static_cast<std::size_t>(n + 1));
        EXPECT_TRUE(sliced.signedSlices);
        EXPECT_TRUE(sliced.reconstruct() == codes) << "n=" << n;
    }
}

TEST(SliceTensor, ActivationReconstructLossless)
{
    Rng rng(32);
    for (int k : {1, 2}) {
        const int bits = 4 * k + 4;
        MatrixI32 codes(12, 16);
        for (auto &c : codes.data())
            c = static_cast<std::int32_t>(
                rng.uniformInt(0, (1 << bits) - 1));
        SlicedMatrix sliced = activationSliceMatrix(codes, k);
        EXPECT_EQ(sliced.levels(), static_cast<std::size_t>(k + 1));
        EXPECT_FALSE(sliced.signedSlices);
        EXPECT_TRUE(sliced.reconstruct() == codes) << "k=" << k;
    }
}

TEST(SliceTensor, SbrPlaneShifts)
{
    MatrixI32 codes(4, 4, 0);
    SlicedMatrix sliced = sbrSliceMatrix(codes, 2);
    EXPECT_EQ(sliced.planes[0].shift, 0);
    EXPECT_EQ(sliced.planes[1].shift, 3);
    EXPECT_EQ(sliced.planes[2].shift, 6);
    EXPECT_FALSE(sliced.planes[0].high);
    EXPECT_FALSE(sliced.planes[1].high);
    EXPECT_TRUE(sliced.planes[2].high);
}

TEST(SliceTensor, DbsReconstructMasksLsbs)
{
    Rng rng(33);
    MatrixI32 codes(8, 8);
    for (auto &c : codes.data())
        c = static_cast<std::int32_t>(rng.uniformInt(0, 255));

    for (int l : {4, 5, 6}) {
        SlicedMatrix sliced = dbsSliceMatrix(codes, l);
        EXPECT_EQ(sliced.planes[0].shift, l - 4);
        EXPECT_EQ(sliced.planes[1].shift, l);
        MatrixI32 rec = sliced.reconstruct();
        for (std::size_t i = 0; i < codes.data().size(); ++i)
            ASSERT_EQ(rec.data()[i],
                      codes.data()[i] & ~((1 << (l - 4)) - 1))
                << "l=" << l;
    }
}

TEST(SliceTensor, HoPlaneAccessor)
{
    MatrixI32 codes(4, 4, 5);
    SlicedMatrix sliced = activationSliceMatrix(codes, 1);
    EXPECT_TRUE(sliced.hoPlane().high);
    EXPECT_EQ(sliced.hoPlane().shift, 4);
}

} // namespace
} // namespace panacea
