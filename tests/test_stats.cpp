/**
 * @file
 * Scalar statistics tests: moments, percentiles, MSE and SQNR.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/random.h"
#include "util/stats.h"

namespace panacea {
namespace {

TEST(Stats, KnownSample)
{
    std::vector<float> s = {1.0f, 2.0f, 3.0f, 4.0f};
    SampleStats st = computeStats(s);
    EXPECT_DOUBLE_EQ(st.min, 1.0);
    EXPECT_DOUBLE_EQ(st.max, 4.0);
    EXPECT_DOUBLE_EQ(st.mean, 2.5);
    EXPECT_NEAR(st.stddev, std::sqrt(1.25), 1e-12);
    EXPECT_EQ(st.count, 4u);
}

TEST(Stats, IntegerOverload)
{
    std::vector<std::int32_t> s = {-2, 0, 2};
    SampleStats st = computeStats(s);
    EXPECT_DOUBLE_EQ(st.mean, 0.0);
    EXPECT_NEAR(st.stddev, std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(Stats, EmptySample)
{
    std::vector<float> s;
    SampleStats st = computeStats(std::span<const float>(s));
    EXPECT_EQ(st.count, 0u);
    EXPECT_DOUBLE_EQ(st.mean, 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<float> s = {10.0f, 20.0f, 30.0f, 40.0f, 50.0f};
    EXPECT_DOUBLE_EQ(percentile(s, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(s, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(s, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(s, 25.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(s, 12.5), 15.0);
}

TEST(Stats, PercentileDoesNotReorderInput)
{
    std::vector<float> s = {3.0f, 1.0f, 2.0f};
    (void)percentile(s, 50.0);
    EXPECT_EQ(s[0], 3.0f);
}

TEST(Stats, MseAndSqnr)
{
    std::vector<float> a = {1.0f, 2.0f};
    std::vector<float> b = {1.0f, 2.0f};
    EXPECT_DOUBLE_EQ(meanSquaredError(a, b), 0.0);
    EXPECT_TRUE(std::isinf(sqnrDb(a, b)));

    std::vector<float> c = {1.5f, 2.5f};
    EXPECT_DOUBLE_EQ(meanSquaredError(a, c), 0.25);
    // SQNR = 10 log10( (1+4)/(0.25+0.25) ) = 10 log10(10) = 10 dB.
    EXPECT_NEAR(sqnrDb(a, c), 10.0, 1e-9);
}

TEST(Stats, GaussianMomentsRecovered)
{
    Rng rng(141);
    std::vector<float> s(100000);
    for (auto &v : s)
        v = static_cast<float>(rng.gaussian(3.0, 2.0));
    SampleStats st = computeStats(s);
    EXPECT_NEAR(st.mean, 3.0, 0.05);
    EXPECT_NEAR(st.stddev, 2.0, 0.05);
}

TEST(StatsDeath, BadArguments)
{
    std::vector<float> s = {1.0f};
    std::vector<float> t = {1.0f, 2.0f};
    EXPECT_DEATH(meanSquaredError(s, t), "size mismatch");
    EXPECT_DEATH(percentile(s, 101.0), "out of");
    std::vector<float> empty;
    EXPECT_DEATH(percentile(std::span<const float>(empty), 50.0),
                 "empty");
}

} // namespace
} // namespace panacea
