/**
 * @file
 * Tests for the per-host measured-cost stream/gather dispatch
 * (core/kernel_cost_model.h): every forced policy is bit-identical on
 * both GEMM engines (the policy may move work between the stream and
 * gather mechanisms, never change a bit of results or statistics); the
 * calibration file round-trips exactly and is rejected - silently, by
 * falling back to re-measurement, never by throwing - on version,
 * checksum, or ISA-coverage mismatch; and a poisoned calibration (cost
 * fields off by 1000x either way) still yields exact outputs.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/aqs_gemm.h"
#include "core/kernel_cost_model.h"
#include "core/legacy_gemm.h"
#include "isa_guard.h"
#include "pool_guard.h"
#include "quant/gemm_quant.h"
#include "slicing/sbr.h"
#include "slicing/straightforward.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

/** Drops any setStreamPolicy() override on scope exit. */
class PolicyGuard
{
  public:
    PolicyGuard() = default;
    ~PolicyGuard() { resetStreamPolicy(); }

    PolicyGuard(const PolicyGuard &) = delete;
    PolicyGuard &operator=(const PolicyGuard &) = delete;
};

/**
 * Points the calibration cache at a fresh temp dir for one test and
 * restores the env-derived dir + process-wide table on scope exit.
 */
class CostDirGuard
{
  public:
    explicit CostDirGuard(const std::string &subdir)
        : dir_(std::filesystem::path(::testing::TempDir()) / subdir)
    {
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        detail::setKernelCostCacheDir(dir_.string());
    }
    ~CostDirGuard()
    {
        detail::setKernelCostCacheDir("", /*reset=*/true);
        detail::reloadKernelCosts();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    const std::filesystem::path &dir() const { return dir_; }
    std::string path() const { return detail::kernelCostCachePath(); }

    CostDirGuard(const CostDirGuard &) = delete;
    CostDirGuard &operator=(const CostDirGuard &) = delete;

  private:
    std::filesystem::path dir_;
};

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out << text;
}

MatrixI32
randomWeightCodes(Rng &rng, std::size_t m, std::size_t k)
{
    const int bits = sbrBits(1);
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    const std::int32_t narrow = (1 << std::max(1, bits - 4)) - 1;
    MatrixI32 codes(m, k);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(0.5))
            c = static_cast<std::int32_t>(rng.uniformInt(-narrow, narrow));
        else
            c = static_cast<std::int32_t>(rng.uniformInt(lo, hi));
    }
    return codes;
}

MatrixI32
randomActivationCodes(Rng &rng, std::size_t k, std::size_t n,
                      std::int32_t zp, double cluster_bias)
{
    MatrixI32 codes(k, n);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(cluster_bias))
            c = static_cast<std::int32_t>(
                std::clamp<std::int64_t>(zp + rng.uniformInt(-6, 6), 0,
                                         255));
        else
            c = static_cast<std::int32_t>(rng.uniformInt(0, 255));
    }
    return codes;
}

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.compMults, b.compMults);
    EXPECT_EQ(a.compAdds, b.compAdds);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
    EXPECT_DOUBLE_EQ(a.macsPerOuterProduct, b.macsPerOuterProduct);
}

/** A fully-populated synthetic calibration valid for this host. */
detail::KernelCostTable
syntheticTable(std::uint64_t gather_ps, std::uint64_t stream_ps)
{
    detail::KernelCostTable t;
    t.version = detail::kKernelCostVersion;
    t.isa_cap = supportedIsaCap();
    for (std::size_t l = 0; l < kIsaLevelCount; ++l)
        for (std::size_t f = 0; f < detail::kKernelFamilyCount; ++f) {
            t.entries[l][f].measured = true;
            t.entries[l][f].gather_ps_per_step = gather_ps;
            t.entries[l][f].stream_ps_per_pair = stream_ps;
        }
    return t;
}

TEST(CostModel, PolicyNamesRoundTrip)
{
    for (StreamPolicy p :
         {StreamPolicy::Static, StreamPolicy::Measured,
          StreamPolicy::Stream, StreamPolicy::Gather}) {
        StreamPolicy parsed;
        ASSERT_TRUE(parseStreamPolicy(toString(p), &parsed));
        EXPECT_EQ(parsed, p);
    }
    StreamPolicy parsed;
    EXPECT_TRUE(parseStreamPolicy("MEASURED", &parsed));
    EXPECT_EQ(parsed, StreamPolicy::Measured);
    EXPECT_FALSE(parseStreamPolicy("always", &parsed));
    EXPECT_FALSE(parseStreamPolicy("", &parsed));
}

TEST(CostModel, PolicyOverrideRoundTrips)
{
    PolicyGuard guard;
    for (StreamPolicy p :
         {StreamPolicy::Gather, StreamPolicy::Stream,
          StreamPolicy::Static, StreamPolicy::Measured}) {
        setStreamPolicy(p);
        EXPECT_EQ(activeStreamPolicy(), p);
    }
}

TEST(CostModel, ForcedDecisionsAndStaticRule)
{
    PolicyGuard guard;

    setStreamPolicy(StreamPolicy::Stream);
    detail::StreamDecision d = detail::streamDecision(
        activeIsaLevel(), detail::KernelFamily::Pass4);
    EXPECT_TRUE(d.profitable(0, 1024));
    EXPECT_TRUE(d.profitable(1024, 1024));

    setStreamPolicy(StreamPolicy::Gather);
    d = detail::streamDecision(activeIsaLevel(),
                               detail::KernelFamily::Pass4);
    EXPECT_FALSE(d.profitable(0, 1024));
    EXPECT_FALSE(d.profitable(1024, 1024));

    setStreamPolicy(StreamPolicy::Static);
    d = detail::streamDecision(activeIsaLevel(),
                               detail::KernelFamily::Pass4);
    EXPECT_FALSE(d.measured); // Static never consults the cost table
    EXPECT_FALSE(d.profitable(511, 1024));
    EXPECT_TRUE(d.profitable(512, 1024));
}

TEST(CostModel, ProfitabilityIsMonotoneInListLength)
{
    // The packStreamWeightOperands() precondition proof needs every
    // policy's profitable() nondecreasing in nk at fixed kk.
    detail::StreamDecision d;
    d.policy = StreamPolicy::Measured;
    d.measured = true;
    d.gather_ps_per_step = 7;
    d.stream_ps_per_pair = 13;
    const std::size_t kk = 1024;
    bool prev = false;
    for (std::size_t nk = 0; nk <= kk; ++nk) {
        const bool cur = d.profitable(nk, kk);
        EXPECT_TRUE(cur || !prev)
            << "profitable() dropped from true to false at nk=" << nk;
        prev = cur;
    }
}

TEST(CostModel, AllPoliciesBitIdenticalOnBothEngines)
{
    PoolGuard pool_guard;
    PolicyGuard policy_guard;
    Rng rng(4242);
    const std::size_t m = 32, kk = 28, n = 24;
    const std::int32_t zp = 133;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk);

    for (int v : {4, 8}) {             // Pass4 vs Generic family
        for (double cluster : {0.2, 0.9}) {
            AqsConfig cfg;
            cfg.v = v;
            MatrixI32 x_codes =
                randomActivationCodes(rng, kk, n, zp, cluster);
            WeightOperand w = prepareWeights(w_codes, 1, cfg);
            ActivationOperand x =
                prepareActivations(x_codes, 1, zp, cfg);

            AqsStats ref_stats;
            MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);
            for (StreamPolicy p :
                 {StreamPolicy::Static, StreamPolicy::Measured,
                  StreamPolicy::Stream, StreamPolicy::Gather}) {
                setStreamPolicy(p);
                for (int threads : {1, 4}) {
                    setParallelThreads(threads);
                    AqsStats new_stats;
                    MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
                    EXPECT_TRUE(got == ref)
                        << "policy=" << toString(p) << " v=" << v
                        << " cluster=" << cluster
                        << " threads=" << threads;
                    expectStatsEqual(new_stats, ref_stats);
                }
            }
        }
    }

    // Legacy engine: same four policies against the dense product.
    MatrixI32 lw = randomWeightCodes(rng, m, kk);
    MatrixI32 lx = randomWeightCodes(rng, kk, n);
    SlicedMatrix ws = sbrSliceMatrix(lw, 1);
    SlicedMatrix xs = sbrSliceMatrix(lx, 1);
    MatrixI64 dense = intGemm(lw, lx);
    for (StreamPolicy p :
         {StreamPolicy::Static, StreamPolicy::Measured,
          StreamPolicy::Stream, StreamPolicy::Gather}) {
        setStreamPolicy(p);
        for (int threads : {1, 4}) {
            setParallelThreads(threads);
            EXPECT_TRUE(
                legacyBitsliceGemm(ws, xs, 4, SibiaSkipSide::Auto) ==
                dense)
                << "legacy policy=" << toString(p)
                << " threads=" << threads;
        }
    }
}

TEST(CostModel, CalibrationRoundTripsExactly)
{
    detail::KernelCostTable t = syntheticTable(1043, 642);
    t.entries[0][1].measured = false; // a hole must survive too
    t.entries[0][1].gather_ps_per_step = 0;
    t.entries[0][1].stream_ps_per_pair = 0;

    const std::string text = detail::serializeKernelCosts(t);
    detail::KernelCostTable parsed;
    ASSERT_TRUE(detail::parseKernelCosts(text, &parsed));
    EXPECT_TRUE(parsed.loaded_from_disk);
    EXPECT_EQ(parsed.measurements, 0);
    EXPECT_EQ(parsed.version, t.version);
    EXPECT_EQ(parsed.isa_cap, t.isa_cap);
    for (std::size_t l = 0; l < kIsaLevelCount; ++l)
        for (std::size_t f = 0; f < detail::kKernelFamilyCount; ++f) {
            EXPECT_EQ(parsed.entries[l][f].measured,
                      t.entries[l][f].measured);
            EXPECT_EQ(parsed.entries[l][f].gather_ps_per_step,
                      t.entries[l][f].gather_ps_per_step);
            EXPECT_EQ(parsed.entries[l][f].stream_ps_per_pair,
                      t.entries[l][f].stream_ps_per_pair);
        }
    // Serializing the parse result reproduces the image byte-for-byte.
    EXPECT_EQ(detail::serializeKernelCosts(parsed), text);
}

TEST(CostModel, CalibrationRejectedOnVersionMismatch)
{
    detail::KernelCostTable t = syntheticTable(100, 100);
    t.version = detail::kKernelCostVersion + 1;
    // Serialized with a self-consistent checksum: rejection must come
    // from the version check, not checksum.
    detail::KernelCostTable parsed;
    EXPECT_FALSE(
        detail::parseKernelCosts(detail::serializeKernelCosts(t),
                                 &parsed));
}

TEST(CostModel, CalibrationRejectedOnChecksumMismatch)
{
    const std::string text =
        detail::serializeKernelCosts(syntheticTable(1043, 642));
    // Corrupt one cost digit; the structure still parses.
    std::string bad = text;
    const std::size_t pos = bad.find("\"gather_ps_per_step\": 1043");
    ASSERT_NE(pos, std::string::npos);
    bad[pos + sizeof("\"gather_ps_per_step\": ") - 1] = '9';
    detail::KernelCostTable parsed;
    EXPECT_FALSE(detail::parseKernelCosts(bad, &parsed));
    // Trailing garbage after the closing brace is rejected too.
    EXPECT_FALSE(detail::parseKernelCosts(text + "x", &parsed));
    EXPECT_FALSE(detail::parseKernelCosts("", &parsed));
    EXPECT_FALSE(detail::parseKernelCosts("not json", &parsed));
}

TEST(CostModel, CalibrationRejectedOnNarrowerIsaCoverage)
{
    // A file calibrated under a narrower build/host must re-measure,
    // not silently run the wider tiers on the static rule.
    if (supportedIsaCap() == IsaLevel::Scalar)
        GTEST_SKIP() << "host cap is scalar; no narrower cap exists";
    detail::KernelCostTable t = syntheticTable(100, 100);
    t.isa_cap = IsaLevel::Scalar;
    detail::KernelCostTable parsed;
    EXPECT_FALSE(
        detail::parseKernelCosts(detail::serializeKernelCosts(t),
                                 &parsed));
}

TEST(CostModel, PersistedCalibrationLoadsWithZeroMeasurements)
{
    CostDirGuard dir_guard("panacea_cost_model_persist");
    EXPECT_EQ(dir_guard.path(),
              (dir_guard.dir() / "kernel_costs.json").string());

    // First resolve on an empty dir measures and persists...
    EXPECT_FALSE(detail::reloadKernelCosts());
    const detail::KernelCostTable first = detail::kernelCostTable();
    EXPECT_GT(first.measurements, 0);
    ASSERT_TRUE(std::filesystem::exists(dir_guard.path()));

    // ...and the second resolve loads that file, measuring nothing.
    EXPECT_TRUE(detail::reloadKernelCosts());
    const detail::KernelCostTable &second = detail::kernelCostTable();
    EXPECT_EQ(second.measurements, 0);
    EXPECT_EQ(second.isa_cap, first.isa_cap);
    for (std::size_t l = 0; l < kIsaLevelCount; ++l)
        for (std::size_t f = 0; f < detail::kKernelFamilyCount; ++f) {
            EXPECT_EQ(second.entries[l][f].measured,
                      first.entries[l][f].measured);
            EXPECT_EQ(second.entries[l][f].gather_ps_per_step,
                      first.entries[l][f].gather_ps_per_step);
            EXPECT_EQ(second.entries[l][f].stream_ps_per_pair,
                      first.entries[l][f].stream_ps_per_pair);
        }
}

TEST(CostModel, CorruptCalibrationFileFallsBackToMeasuring)
{
    CostDirGuard dir_guard("panacea_cost_model_corrupt");
    writeFile(dir_guard.path(), "{\"version\": 999, garbage");

    // Reload must swallow the bad file (warn, re-measure, repersist) -
    // never throw into callers.
    EXPECT_FALSE(detail::reloadKernelCosts());
    EXPECT_GT(detail::kernelCostTable().measurements, 0);

    // The re-persisted file is valid again.
    EXPECT_TRUE(detail::reloadKernelCosts());
}

TEST(CostModel, PoisonedCalibrationStillBitCorrect)
{
    // Wildly wrong costs may flip every stream/gather choice; they must
    // never change a bit of output. Poison both directions: stream
    // 1000x too expensive (all passes gather) and gather 1000x too
    // expensive (all runnable passes stream).
    PoolGuard pool_guard;
    PolicyGuard policy_guard;
    setStreamPolicy(StreamPolicy::Measured);
    setParallelThreads(4);

    Rng rng(5151);
    const std::size_t m = 24, kk = 24, n = 20;
    AqsConfig cfg;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 140, 0.6);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, 140, cfg);
    AqsStats ref_stats;
    MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);

    CostDirGuard dir_guard("panacea_cost_model_poison");
    for (auto [gather_ps, stream_ps] :
         {std::pair<std::uint64_t, std::uint64_t>{50, 50000},
          std::pair<std::uint64_t, std::uint64_t>{50000, 50}}) {
        writeFile(dir_guard.path(),
                  detail::serializeKernelCosts(
                      syntheticTable(gather_ps, stream_ps)));
        ASSERT_TRUE(detail::reloadKernelCosts());
        AqsStats new_stats;
        MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
        EXPECT_TRUE(got == ref)
            << "poison gather_ps=" << gather_ps
            << " stream_ps=" << stream_ps;
        expectStatsEqual(new_stats, ref_stats);
    }
}

} // namespace
} // namespace panacea
