/**
 * @file
 * Hot-reload tests for the fleet tier: atomically swapping a new
 * .pncm compiled-model version under a live router. The contract:
 * requests admitted BEFORE the swap complete on (and bit-match solo
 * runs of) the old version, requests admitted after carry the new
 * version and match ITS solo runs, the version boundary is monotone
 * in submission order, and no request ever observes a torn model -
 * every completed output equals exactly one version's reference,
 * never a mixture. Both versions are served from read-only mmapped
 * .pncm v2 files, the deployment artifact replicas actually share.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "panacea/fleet.h"
#include "panacea/runtime.h"
#include "panacea/serialize.h"
#include "panacea/session.h"
#include "util/random.h"

namespace panacea {
namespace {

ModelSpec
tinySpec(const std::string &name)
{
    ModelSpec spec;
    spec.name = name;
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12;
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

/** Unique scratch directory, removed on destruction. */
struct TempDir
{
    std::filesystem::path path;
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("panacea_fleet_reload_" + std::to_string(::getpid()) +
                "_" + std::to_string(counter()++));
        std::filesystem::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
    static int &
    counter()
    {
        static int c = 0;
        return c;
    }
};

std::vector<MatrixF>
makeInputs(std::size_t features, std::size_t count)
{
    Rng rng(0x4e10);
    std::vector<MatrixF> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        MatrixF x(features, 4);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }
    return inputs;
}

std::vector<InferenceResult>
soloRun(Runtime &rt, const CompiledModel &model,
        const std::vector<MatrixF> &inputs)
{
    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    Session session = rt.createSession(opts);
    std::vector<InferenceResult> out;
    out.reserve(inputs.size());
    for (const MatrixF &x : inputs)
        out.push_back(session.infer(model, x));
    return out;
}

/** Two genuinely different versions of the SAME model name, both
 *  round-tripped through mmapped .pncm v2 files. */
struct TwoVersions
{
    TempDir dir;
    CompiledModel old_model;
    CompiledModel new_model;

    explicit TwoVersions(const ModelSpec &spec)
    {
        CompileOptions old_opts;
        CompileOptions new_opts;
        new_opts.seed = old_opts.seed + 1; // different weights
        const std::string old_path = dir.file("v1.pncm");
        const std::string new_path = dir.file("v2.pncm");
        saveCompiledModel(compileModel(spec, old_opts), old_path);
        saveCompiledModel(compileModel(spec, new_opts), new_path);
        old_model = loadCompiledModel(old_path);
        new_model = loadCompiledModel(new_path);
    }
};

TEST(FleetReload, PausedSwapBoundaryIsExactAndVersionTagged)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-reload-paused");
    TwoVersions v(spec);
    const std::vector<MatrixF> inputs = makeInputs(v.old_model.inputFeatures(), 8);
    const std::vector<InferenceResult> solo_old =
        soloRun(rt, v.old_model, inputs);
    const std::vector<InferenceResult> solo_new =
        soloRun(rt, v.new_model, inputs);
    // The two versions must actually disagree, or the parity checks
    // below prove nothing.
    bool differ = false;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        differ = differ || !(solo_old[i].output == solo_new[i].output);
    ASSERT_TRUE(differ);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.startPaused = true;
    fopts.engine.workers = 1;
    Fleet fleet = rt.createFleet(fopts);
    const std::uint64_t ver_old = fleet.deploy(v.old_model);

    // First half admitted under the old version, swap, second half
    // under the new - all while paused, so the admission boundary is
    // exactly between submissions 3 and 4 regardless of timing.
    std::vector<std::future<FleetResult>> futs;
    for (std::size_t i = 0; i < 4; ++i)
        futs.push_back(fleet.submit(spec.name, inputs[i]));
    const std::uint64_t ver_new = fleet.reload(v.new_model);
    EXPECT_GT(ver_new, ver_old);
    for (std::size_t i = 4; i < 8; ++i)
        futs.push_back(fleet.submit(spec.name, inputs[i]));
    fleet.start();
    fleet.drain();

    for (std::size_t i = 0; i < 8; ++i) {
        FleetResult r = futs[i].get();
        ASSERT_EQ(r.outcome, FleetOutcome::Completed)
            << "i=" << i << ": " << r.rejectReason;
        const bool pre_swap = i < 4;
        EXPECT_EQ(r.modelVersion, pre_swap ? ver_old : ver_new)
            << "i=" << i;
        const MatrixF &want =
            pre_swap ? solo_old[i].output : solo_new[i].output;
        EXPECT_TRUE(r.result.output == want) << "i=" << i;
    }
    EXPECT_EQ(fleet.stats().reloads, 1u);
}

TEST(FleetReload, LiveSwapUnderTrafficIsMonotoneAndNeverTorn)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-reload-live");
    TwoVersions v(spec);
    const std::vector<MatrixF> inputs = makeInputs(v.old_model.inputFeatures(), 6);
    const std::vector<InferenceResult> solo_old =
        soloRun(rt, v.old_model, inputs);
    const std::vector<InferenceResult> solo_new =
        soloRun(rt, v.new_model, inputs);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.engine.workers = 1;
    Fleet fleet = rt.createFleet(fopts);
    const std::uint64_t ver_old = fleet.deploy(v.old_model);

    // A live stream: a submitter thread feeds requests while the main
    // thread hot-swaps mid-stream. Wherever the boundary lands, every
    // completed request must match ITS version's solo reference.
    constexpr int kTotal = 30;
    std::vector<std::size_t> picks;
    std::vector<std::future<FleetResult>> futs;
    picks.reserve(kTotal);
    futs.reserve(kTotal);
    std::uint64_t ver_new = 0;
    std::thread submitter([&] {
        for (int i = 0; i < kTotal; ++i) {
            const std::size_t pick =
                static_cast<std::size_t>(i) % inputs.size();
            picks.push_back(pick);
            futs.push_back(fleet.submit(spec.name, inputs[pick]));
            std::this_thread::sleep_for(
                std::chrono::microseconds(300));
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    ver_new = fleet.reload(v.new_model);
    submitter.join();
    fleet.drain();

    bool saw_new = false;
    int completed = 0;
    for (int i = 0; i < kTotal; ++i) {
        FleetResult r = futs[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, FleetOutcome::Completed)
            << "i=" << i << ": " << r.rejectReason;
        ++completed;
        ASSERT_TRUE(r.modelVersion == ver_old ||
                    r.modelVersion == ver_new)
            << "i=" << i << " version=" << r.modelVersion;
        // Monotone boundary in submission order: once a request is
        // admitted under the new version, no later one is old.
        if (r.modelVersion == ver_new)
            saw_new = true;
        else
            EXPECT_FALSE(saw_new) << "old version after new, i=" << i;
        // Never torn: the output equals exactly the reference of the
        // version the router says it ran on.
        const std::size_t pick = picks[static_cast<std::size_t>(i)];
        const MatrixF &want = r.modelVersion == ver_old
                                  ? solo_old[pick].output
                                  : solo_new[pick].output;
        EXPECT_TRUE(r.result.output == want) << "i=" << i;
    }
    EXPECT_EQ(completed, kTotal); // zero lost under the swap
    const FleetStats s = fleet.stats();
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kTotal));
    EXPECT_EQ(s.completed + s.rejected, s.submitted);
    EXPECT_EQ(s.reloads, 1u);
}

TEST(FleetReload, ReplicasServeTheMmappedArtifactInPlace)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-reload-mmap");
    TwoVersions v(spec);
    // The deployment artifact really is the zero-copy path: the
    // loaded models are backed by read-only mappings, so N replicas
    // serving them share one set of physical weight pages.
    EXPECT_GT(v.old_model.mappedBytes(), 0u);
    EXPECT_GT(v.new_model.mappedBytes(), 0u);

    const std::vector<MatrixF> inputs = makeInputs(v.old_model.inputFeatures(), 4);
    const std::vector<InferenceResult> solo_old =
        soloRun(rt, v.old_model, inputs);

    FleetOptions fopts;
    fopts.replicas = 3;
    fopts.engine.workers = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(v.old_model);
    std::vector<std::future<FleetResult>> futs;
    for (const MatrixF &x : inputs)
        futs.push_back(fleet.submit(spec.name, x));
    fleet.drain();
    for (std::size_t i = 0; i < futs.size(); ++i) {
        FleetResult r = futs[i].get();
        ASSERT_EQ(r.outcome, FleetOutcome::Completed);
        EXPECT_TRUE(r.result.output == solo_old[i].output);
    }
}

} // namespace
} // namespace panacea
