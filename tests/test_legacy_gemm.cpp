/**
 * @file
 * Legacy (Sibia-style) bit-slice GEMM tests: exactness, one-sided
 * skipping semantics and stats.
 */

#include <gtest/gtest.h>

#include "core/legacy_gemm.h"
#include "quant/gemm_quant.h"
#include "slicing/slice_tensor.h"
#include "util/random.h"

namespace panacea {
namespace {

MatrixI32
randomSigned(Rng &rng, std::size_t r, std::size_t c, int bits,
             double near_zero_bias)
{
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    const std::int32_t narrow = (1 << (bits - 4)) - 1;
    MatrixI32 m(r, c);
    for (auto &v : m.data())
        v = rng.bernoulli(near_zero_bias)
                ? static_cast<std::int32_t>(rng.uniformInt(-narrow, narrow))
                : static_cast<std::int32_t>(rng.uniformInt(lo, hi));
    return m;
}

TEST(LegacyGemm, ExactAllSkipSides)
{
    Rng rng(41);
    MatrixI32 w = randomSigned(rng, 16, 24, 7, 0.8);
    MatrixI32 x = randomSigned(rng, 24, 8, 7, 0.8);
    SlicedMatrix ws = sbrSliceMatrix(w, 1);
    SlicedMatrix xs = sbrSliceMatrix(x, 1);
    MatrixI64 ref = intGemm(w, x);

    for (auto side : {SibiaSkipSide::Weight, SibiaSkipSide::Activation,
                      SibiaSkipSide::Auto}) {
        LegacyStats stats;
        MatrixI64 acc = legacyBitsliceGemm(ws, xs, 4, side, &stats);
        EXPECT_TRUE(acc == ref);
        EXPECT_EQ(stats.executedOuterProducts +
                      stats.skippedOuterProducts,
                  stats.denseOuterProducts);
    }
}

TEST(LegacyGemm, AutoPicksSparserSide)
{
    Rng rng(42);
    // Dense weights, sparse activations.
    MatrixI32 w = randomSigned(rng, 16, 24, 7, 0.0);
    MatrixI32 x = randomSigned(rng, 24, 8, 7, 0.97);
    SlicedMatrix ws = sbrSliceMatrix(w, 1);
    SlicedMatrix xs = sbrSliceMatrix(x, 1);

    LegacyStats stats;
    (void)legacyBitsliceGemm(ws, xs, 4, SibiaSkipSide::Auto, &stats);
    EXPECT_FALSE(stats.skippedWeightSide);
    EXPECT_GT(stats.rhoX, stats.rhoW);
}

TEST(LegacyGemm, DenseEmaIndependentOfSparsity)
{
    Rng rng(43);
    MatrixI32 w_sparse = randomSigned(rng, 16, 24, 7, 0.95);
    MatrixI32 w_dense = randomSigned(rng, 16, 24, 7, 0.0);
    MatrixI32 x = randomSigned(rng, 24, 8, 7, 0.5);
    SlicedMatrix xs = sbrSliceMatrix(x, 1);

    LegacyStats s1;
    LegacyStats s2;
    (void)legacyBitsliceGemm(sbrSliceMatrix(w_sparse, 1), xs, 4,
                             SibiaSkipSide::Auto, &s1);
    (void)legacyBitsliceGemm(sbrSliceMatrix(w_dense, 1), xs, 4,
                             SibiaSkipSide::Auto, &s2);
    // Sibia ships uncompressed operands: traffic ignores sparsity.
    EXPECT_EQ(s1.emaNibbles, s2.emaNibbles);
}

TEST(LegacyGemm, TenBitWeights)
{
    Rng rng(44);
    MatrixI32 w = randomSigned(rng, 8, 16, 10, 0.6);
    MatrixI32 x = randomSigned(rng, 16, 8, 7, 0.6);
    MatrixI64 acc = legacyBitsliceGemm(sbrSliceMatrix(w, 2),
                                       sbrSliceMatrix(x, 1), 4,
                                       SibiaSkipSide::Auto);
    EXPECT_TRUE(acc == intGemm(w, x));
}

} // namespace
} // namespace panacea
