/**
 * @file
 * Tests for the operand-reuse entry points the serving runtime builds
 * on: concatActivationOperands() (batch assembly must be byte-identical
 * to preparing the concatenated codes directly, and batched GEMMs must
 * be column-slice deterministic), aqsCountStats()/aqsCountStatsBatch()
 * (counting must reproduce kernel statistics bit-for-bit, per range),
 * AqsLinearLayer::forwardPrepared(), and the generic-v streaming
 * pair-pass kernels across every runnable ISA level.
 */

#include <gtest/gtest.h>

#include "core/aqs_gemm.h"
#include "core/aqs_layer.h"
#include "core/legacy_gemm.h"
#include "isa_guard.h"
#include "pool_guard.h"
#include "slicing/sbr.h"
#include "slicing/slice_tensor.h"
#include "slicing/straightforward.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

MatrixI32
randomWeightCodes(Rng &rng, std::size_t m, std::size_t k, int n,
                  double near_zero_bias = 0.5)
{
    const int bits = sbrBits(n);
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    const std::int32_t narrow = (1 << std::max(1, bits - 4)) - 1;
    MatrixI32 codes(m, k);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(near_zero_bias))
            c = static_cast<std::int32_t>(rng.uniformInt(-narrow, narrow));
        else
            c = static_cast<std::int32_t>(rng.uniformInt(lo, hi));
    }
    return codes;
}

MatrixI32
randomActivationCodes(Rng &rng, std::size_t k, std::size_t n, int bits,
                      std::int32_t zp, double cluster_bias = 0.6)
{
    const std::int32_t hi = (1 << bits) - 1;
    MatrixI32 codes(k, n);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(cluster_bias)) {
            auto v = zp + rng.uniformInt(-6, 6);
            c = static_cast<std::int32_t>(
                std::clamp<std::int64_t>(v, 0, hi));
        } else {
            c = static_cast<std::int32_t>(rng.uniformInt(0, hi));
        }
    }
    return codes;
}

MatrixI32
concatColumns(const MatrixI32 &a, const MatrixI32 &b)
{
    MatrixI32 out(a.rows(), a.cols() + b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto ra = a.row(r);
        const auto rb = b.row(r);
        auto dst = out.row(r);
        std::copy(ra.begin(), ra.end(), dst.begin());
        std::copy(rb.begin(), rb.end(),
                  dst.begin() + static_cast<std::ptrdiff_t>(a.cols()));
    }
    return out;
}

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.compMults, b.compMults);
    EXPECT_EQ(a.compAdds, b.compAdds);
    EXPECT_EQ(a.compExtraEmaNibbles, b.compExtraEmaNibbles);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
    EXPECT_EQ(a.wIndexBits, b.wIndexBits);
    EXPECT_EQ(a.xIndexBits, b.xIndexBits);
    EXPECT_EQ(a.denseNibbles, b.denseNibbles);
    EXPECT_DOUBLE_EQ(a.macsPerOuterProduct, b.macsPerOuterProduct);
}

/** Column range [c0, c1) of a matrix. */
MatrixI64
columnSlice(const MatrixI64 &m, std::size_t c0, std::size_t c1)
{
    MatrixI64 out(m.rows(), c1 - c0);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = c0; c < c1; ++c)
            out(r, c - c0) = m(r, c);
    return out;
}

struct ModeCase
{
    ActSkipMode mode;
    bool useEq6;
};

class OperandReuse : public ::testing::TestWithParam<ModeCase>
{};

TEST_P(OperandReuse, ConcatIsByteIdenticalToDirectPreparation)
{
    const ModeCase pc = GetParam();
    Rng rng(811);
    const std::size_t m = 16, kk = 24;
    const std::int32_t zp = 141;
    AqsConfig cfg;
    cfg.actSkip = pc.mode;
    cfg.useEq6 = pc.useEq6;

    MatrixI32 a_codes = randomActivationCodes(rng, kk, 8, 8, zp);
    MatrixI32 b_codes = randomActivationCodes(rng, kk, 12, 8, zp, 0.9);
    ActivationOperand a = prepareActivations(a_codes, 1, zp, cfg);
    ActivationOperand b = prepareActivations(b_codes, 1, zp, cfg);
    ActivationOperand direct = prepareActivations(
        concatColumns(a_codes, b_codes), 1, zp, cfg);

    const ActivationOperand *ops[] = {&a, &b};
    ActivationOperand cat = concatActivationOperands(ops, cfg);

    ASSERT_EQ(cat.sliced.levels(), direct.sliced.levels());
    for (std::size_t l = 0; l < direct.sliced.levels(); ++l) {
        EXPECT_TRUE(cat.sliced.planes[l].data ==
                    direct.sliced.planes[l].data);
        EXPECT_EQ(cat.sliced.planes[l].shift,
                  direct.sliced.planes[l].shift);
    }
    EXPECT_EQ(cat.r, direct.r);
    EXPECT_TRUE(cat.hoMask == direct.hoMask);
    ASSERT_EQ(cat.streams.size(), direct.streams.size());
    for (std::size_t s = 0; s < direct.streams.size(); ++s) {
        EXPECT_EQ(cat.streams[s].storedCount(),
                  direct.streams[s].storedCount());
        EXPECT_EQ(cat.streams[s].encodedBits(),
                  direct.streams[s].encodedBits());
        EXPECT_EQ(cat.streams[s].decode(), direct.streams[s].decode());
    }
    EXPECT_EQ(cat.widenedPlanes, direct.widenedPlanes);
    EXPECT_EQ(cat.pairedPlanes, direct.pairedPlanes);

    // And the GEMM sees no difference.
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    AqsStats s_cat, s_direct;
    EXPECT_TRUE(aqsGemm(w, cat, cfg, &s_cat) ==
                aqsGemm(w, direct, cfg, &s_direct));
    expectStatsEqual(s_cat, s_direct);
}

TEST_P(OperandReuse, BatchedGemmIsColumnSliceDeterministic)
{
    // The serving guarantee: a request's columns of a batched GEMM are
    // bit-identical to running the request alone - for SBR and DBS
    // slicing and across every runnable ISA level.
    const ModeCase pc = GetParam();
    Rng rng(812);
    const std::size_t m = 24, kk = 20;
    const std::int32_t zp = 137;
    AqsConfig cfg;
    cfg.actSkip = pc.mode;
    cfg.useEq6 = pc.useEq6;

    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);

    for (bool dbs : {false, true}) {
        MatrixI32 a_codes = randomActivationCodes(rng, kk, 4, 8, zp);
        MatrixI32 b_codes = randomActivationCodes(rng, kk, 8, 8, zp, 0.9);
        MatrixI32 c_codes = randomActivationCodes(rng, kk, 4, 8, zp, 0.2);
        ActivationOperand a, b, c;
        if (dbs) {
            const Slice r = static_cast<Slice>((zp >> 4) & 0xF);
            a = prepareActivationsDbs(a_codes, 5, r, cfg);
            b = prepareActivationsDbs(b_codes, 5, r, cfg);
            c = prepareActivationsDbs(c_codes, 5, r, cfg);
        } else {
            a = prepareActivations(a_codes, 1, zp, cfg);
            b = prepareActivations(b_codes, 1, zp, cfg);
            c = prepareActivations(c_codes, 1, zp, cfg);
        }
        const ActivationOperand *ops[] = {&a, &b, &c};
        ActivationOperand cat = concatActivationOperands(ops, cfg);

        IsaGuard isa_guard;
        for (IsaLevel isa : runnableIsaLevels()) {
            setIsaLevel(isa);
            MatrixI64 solo_a = aqsGemm(w, a, cfg);
            MatrixI64 solo_b = aqsGemm(w, b, cfg);
            MatrixI64 solo_c = aqsGemm(w, c, cfg);
            MatrixI64 batched = aqsGemm(w, cat, cfg);
            EXPECT_TRUE(columnSlice(batched, 0, 4) == solo_a)
                << "dbs=" << dbs << " isa=" << toString(isa);
            EXPECT_TRUE(columnSlice(batched, 4, 12) == solo_b)
                << "dbs=" << dbs << " isa=" << toString(isa);
            EXPECT_TRUE(columnSlice(batched, 12, 16) == solo_c)
                << "dbs=" << dbs << " isa=" << toString(isa);
        }
    }
}

TEST_P(OperandReuse, CountStatsMatchesKernelStats)
{
    const ModeCase pc = GetParam();
    Rng rng(813);
    const std::size_t m = 32, kk = 24, n = 16;
    const std::int32_t zp = 117;
    AqsConfig cfg;
    cfg.actSkip = pc.mode;
    cfg.useEq6 = pc.useEq6;

    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, zp);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, zp, cfg);

    AqsStats blocked_stats, ref_stats;
    aqsGemm(w, x, cfg, &blocked_stats);
    aqsGemmReference(w, x, cfg, &ref_stats);
    AqsStats counted = aqsCountStats(w, x, cfg);
    expectStatsEqual(counted, blocked_stats);
    expectStatsEqual(counted, ref_stats);
}

TEST_P(OperandReuse, CountStatsRangeMatchesSoloRun)
{
    // Per-request attribution: counting a request's column range of
    // the BATCHED operand must reproduce the stats of its solo run.
    const ModeCase pc = GetParam();
    Rng rng(814);
    const std::size_t m = 16, kk = 28;
    const std::int32_t zp = 149;
    AqsConfig cfg;
    cfg.actSkip = pc.mode;
    cfg.useEq6 = pc.useEq6;

    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    MatrixI32 a_codes = randomActivationCodes(rng, kk, 8, 8, zp);
    MatrixI32 b_codes = randomActivationCodes(rng, kk, 4, 8, zp, 0.95);
    ActivationOperand a = prepareActivations(a_codes, 1, zp, cfg);
    ActivationOperand b = prepareActivations(b_codes, 1, zp, cfg);
    const ActivationOperand *ops[] = {&a, &b};
    ActivationOperand cat = concatActivationOperands(ops, cfg);

    AqsStats solo_a, solo_b;
    aqsGemm(w, a, cfg, &solo_a);
    aqsGemm(w, b, cfg, &solo_b);

    expectStatsEqual(aqsCountStats(w, cat, cfg, 0, 2), solo_a);
    expectStatsEqual(aqsCountStats(w, cat, cfg, 2, 3), solo_b);

    const std::size_t offsets[] = {0, 2, 3};
    std::vector<AqsStats> batch = aqsCountStatsBatch(w, cat, cfg, offsets);
    ASSERT_EQ(batch.size(), 2u);
    expectStatsEqual(batch[0], solo_a);
    expectStatsEqual(batch[1], solo_b);
}

TEST_P(OperandReuse, PrecomputedWeightCountingCacheIsBitEqual)
{
    // The cached overloads (ServedModel precomputes the weight-side
    // mask scan once per layer) must reproduce the scanning overloads
    // bit for bit, range by range.
    const ModeCase pc = GetParam();
    Rng rng(815);
    const std::size_t m = 16, kk = 28;
    const std::int32_t zp = 149;
    AqsConfig cfg;
    cfg.actSkip = pc.mode;
    cfg.useEq6 = pc.useEq6;

    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, 12, 8, zp);
    ActivationOperand x = prepareActivations(x_codes, 1, zp, cfg);

    const WeightCountingCache wcache = buildWeightCountingCache(w, cfg.v);
    expectStatsEqual(aqsCountStats(w, x, cfg, wcache),
                     aqsCountStats(w, x, cfg));
    expectStatsEqual(aqsCountStats(w, x, cfg, wcache, 1, 3),
                     aqsCountStats(w, x, cfg, 1, 3));

    const std::size_t offsets[] = {0, 1, 3};
    const std::vector<AqsStats> cached =
        aqsCountStatsBatch(w, x, cfg, wcache, offsets);
    const std::vector<AqsStats> scanned =
        aqsCountStatsBatch(w, x, cfg, offsets);
    ASSERT_EQ(cached.size(), scanned.size());
    for (std::size_t i = 0; i < cached.size(); ++i)
        expectStatsEqual(cached[i], scanned[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, OperandReuse,
    ::testing::Values(ModeCase{ActSkipMode::RValued, true},
                      ModeCase{ActSkipMode::RValued, false},
                      ModeCase{ActSkipMode::ZeroOnly, true},
                      ModeCase{ActSkipMode::None, true}));

TEST(OperandReuseLayer, ForwardPreparedMatchesForwardCodes)
{
    Rng rng(815);
    const std::size_t m = 16, kk = 12;
    MatrixF wf(m, kk);
    for (auto &v : wf.data())
        v = static_cast<float>(rng.gaussian(0.0, 0.4));
    MatrixF calib(kk, 16);
    for (auto &v : calib.data())
        v = static_cast<float>(rng.gaussian(0.3, 1.0));
    std::vector<float> bias(m);
    for (auto &v : bias)
        v = static_cast<float>(rng.gaussian(0.0, 0.1));

    AqsPipelineOptions opts;
    const MatrixF calib_batches[] = {calib};
    AqsLinearLayer layer =
        AqsLinearLayer::calibrate(wf, bias, calib_batches, opts);

    MatrixF x(kk, 8);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian(0.3, 1.0));
    MatrixI32 codes = layer.quantizeInput(x);

    AqsStats direct_stats, prepared_stats;
    MatrixI64 direct = layer.forwardCodes(codes, &direct_stats);
    ActivationOperand op = layer.prepareInput(codes);
    MatrixI64 prepared = layer.forwardPrepared(op, &prepared_stats);
    EXPECT_TRUE(direct == prepared);
    expectStatsEqual(direct_stats, prepared_stats);

    // countStats reproduces the engine-recorded stats without running.
    AqsStats fresh;
    fresh += layer.countStats(op);
    expectStatsEqual(fresh, prepared_stats);

    // dequantizeOutput is the forward() tail.
    EXPECT_TRUE(layer.dequantizeOutput(direct) == layer.forward(x));
}

TEST(GenericVStream, BlockedMatchesReferenceAcrossIsaLevels)
{
    // The generic-v streaming kernels (SSE2/AVX2/AVX-512) engage on
    // dense skip lists for v != 4; every level must agree with the
    // scalar reference bit-for-bit, results and statistics.
    PoolGuard pool_guard;
    Rng rng(816);
    const std::int32_t zp = 133;
    for (int v : {2, 8, 16}) {
        const std::size_t m = static_cast<std::size_t>(v) * 4;
        const std::size_t kk = 24;
        const std::size_t n = static_cast<std::size_t>(v) * 3;
        AqsConfig cfg;
        cfg.v = v;
        // Clustered codes make most activation HO vectors all-r, so
        // dense lists (stream passes) and sparse lists (gather) both
        // occur across the column groups.
        MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
        MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, zp, 0.7);
        WeightOperand w = prepareWeights(w_codes, 1, cfg);
        ActivationOperand x = prepareActivations(x_codes, 1, zp, cfg);

        AqsStats ref_stats;
        MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);

        IsaGuard isa_guard;
        for (IsaLevel isa : runnableIsaLevels()) {
            setIsaLevel(isa);
            for (int threads : {1, 4}) {
                setParallelThreads(threads);
                AqsStats got_stats;
                MatrixI64 got = aqsGemm(w, x, cfg, &got_stats);
                EXPECT_TRUE(got == ref)
                    << "v=" << v << " isa=" << toString(isa)
                    << " threads=" << threads;
                expectStatsEqual(got_stats, ref_stats);
            }
        }
    }
}

TEST(GenericVStream, LegacyGemmAgreesAcrossIsaLevels)
{
    PoolGuard pool_guard;
    Rng rng(817);
    const int v = 8;
    const std::size_t m = 32, kk = 24, n = 16;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1, 0.8);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, 0, 0.8);
    SlicedMatrix w = sbrSliceMatrix(w_codes, 1);
    SlicedMatrix x = activationSliceMatrix(x_codes, 1);

    IsaGuard isa_guard;
    setIsaLevel(IsaLevel::Scalar);
    LegacyStats ref_stats;
    MatrixI64 ref = legacyBitsliceGemm(w, x, v, SibiaSkipSide::Auto,
                                       &ref_stats);
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        LegacyStats got_stats;
        MatrixI64 got = legacyBitsliceGemm(w, x, v, SibiaSkipSide::Auto,
                                           &got_stats);
        EXPECT_TRUE(got == ref) << "isa=" << toString(isa);
        EXPECT_EQ(got_stats.executedOuterProducts,
                  ref_stats.executedOuterProducts);
        EXPECT_EQ(got_stats.mults, ref_stats.mults);
    }
}

} // namespace
} // namespace panacea
