/**
 * @file
 * Histogram tests: counting, clamping, moments and skip-range mass -
 * the DBS monitor's primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/histogram.h"

namespace panacea {
namespace {

TEST(Histogram, CountsAndTotal)
{
    Histogram h(0, 15);
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.count(7), 1u);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0, 10);
    h.add(-5);
    h.add(100);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(10), 1u);
}

TEST(Histogram, BatchAdd)
{
    Histogram h(0, 255);
    std::vector<std::int32_t> v = {1, 1, 2};
    h.addAll(v);
    std::vector<std::uint8_t> u = {1};
    h.addAll(u);
    EXPECT_EQ(h.count(1), 3u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, MeanAndStd)
{
    Histogram h(0, 10);
    for (int v : {2, 4, 4, 4, 5, 5, 7, 9})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_NEAR(h.stddev(), 2.0, 1e-12);
}

TEST(Histogram, MassInRange)
{
    Histogram h(0, 255);
    for (int v = 100; v < 200; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.massIn(100, 199), 1.0);
    EXPECT_DOUBLE_EQ(h.massIn(100, 149), 0.5);
    EXPECT_DOUBLE_EQ(h.massIn(0, 99), 0.0);
    EXPECT_DOUBLE_EQ(h.massIn(300, 400), 0.0);
    EXPECT_DOUBLE_EQ(h.massIn(150, 100), 0.0);  // inverted
}

TEST(Histogram, NegativeDomain)
{
    Histogram h(-8, 7);
    h.add(-8);
    h.add(7);
    h.add(0);
    EXPECT_EQ(h.count(-8), 1u);
    EXPECT_DOUBLE_EQ(h.massIn(-8, -1), 1.0 / 3.0);
}

TEST(HistogramDeath, InvertedRange)
{
    EXPECT_DEATH(Histogram(5, 4), "inverted");
}

} // namespace
} // namespace panacea
