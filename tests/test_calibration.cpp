/**
 * @file
 * PTQ calibration tests: multi-batch range tracking, percentile clipping
 * of outliers and scheme dispatch.
 */

#include <gtest/gtest.h>

#include "quant/calibration.h"
#include "quant/quantizer.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(Calibration, MinMaxTracksAcrossBatches)
{
    Calibrator cal(QuantScheme::Asymmetric, 8);
    std::vector<float> a = {0.0f, 1.0f};
    std::vector<float> b = {-2.0f, 0.5f};
    cal.observe(a);
    cal.observe(b);
    QuantParams p = cal.finalize();
    EXPECT_DOUBLE_EQ(p.scale, 3.0 / 255.0);
    EXPECT_EQ(cal.observedCount(), 4u);
}

TEST(Calibration, PercentileRejectsOutliers)
{
    Rng rng(5);
    std::vector<float> sample(20000);
    for (auto &v : sample)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    sample[7] = 1000.0f;  // a single gross outlier

    Calibrator minmax(QuantScheme::Asymmetric, 8,
                      CalibrationPolicy::MinMax);
    Calibrator pct(QuantScheme::Asymmetric, 8,
                   CalibrationPolicy::Percentile, 0.5);
    minmax.observe(sample);
    pct.observe(sample);

    QuantParams p_minmax = minmax.finalize();
    QuantParams p_pct = pct.finalize();
    // The outlier blows up the min/max scale; percentile stays tight.
    EXPECT_GT(p_minmax.scale, 10.0 * p_pct.scale);
}

TEST(Calibration, SymmetricSchemeProducesZeroZp)
{
    Calibrator cal(QuantScheme::Symmetric, 7);
    std::vector<float> s = {-3.0f, 2.0f};
    cal.observe(s);
    QuantParams p = cal.finalize();
    EXPECT_EQ(p.scheme, QuantScheme::Symmetric);
    EXPECT_EQ(p.zeroPoint, 0);
    EXPECT_DOUBLE_EQ(p.scale, 2.0 * 3.0 / 127.0);
}

TEST(CalibrationDeath, FinalizeWithoutData)
{
    Calibrator cal(QuantScheme::Asymmetric, 8);
    EXPECT_DEATH(cal.finalize(), "without observations");
}

TEST(CalibrationDeath, RejectsBadConfig)
{
    EXPECT_DEATH(Calibrator(QuantScheme::Asymmetric, 1), "bit-width");
    EXPECT_DEATH(Calibrator(QuantScheme::Asymmetric, 8,
                            CalibrationPolicy::Percentile, 60.0),
                 "percentile tail");
}

} // namespace
} // namespace panacea
