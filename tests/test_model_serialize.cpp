/**
 * @file
 * Compiled-model serialization tests: the on-disk format must be a
 * faithful, versioned, integrity-checked image of the prepared state.
 *
 *  - round trip: save -> load -> save reproduces IDENTICAL bytes, and
 *    the loaded model produces byte-identical outputs and AqsStats to
 *    the freshly built one at every runnable ISA level;
 *  - rejection: wrong magic, unknown format version, checksum
 *    mismatch, truncation at any boundary, trailing bytes and
 *    fingerprint mismatches all throw SerializeError - a load never
 *    returns a half-built model;
 *  - disk tier: a cold PreparedModelCache pointed at a directory a
 *    warm cache populated serves the model with ZERO builds
 *    (CacheStats::misses == 0, diskHits == 1) and bit-equal behaviour.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "isa_guard.h"
#include "panacea/compiled_model.h"
#include "panacea/serialize.h"
#include "serve/model_serialize.h"
#include "serve/operand_cache.h"
#include "util/cpu_features.h"
#include "util/random.h"

namespace panacea {
namespace {

/** Three layers over distinct distributions + a feature-width bend. */
ModelSpec
tinySpec()
{
    ModelSpec spec;
    spec.name = "serialize-test-tiny";
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12;
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** Unique scratch directory, removed on destruction. */
struct TempDir
{
    std::filesystem::path path;
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("panacea_serialize_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter()++));
        std::filesystem::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
    static int &
    counter()
    {
        static int c = 0;
        return c;
    }
};

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.compMults, b.compMults);
    EXPECT_EQ(a.compAdds, b.compAdds);
    EXPECT_EQ(a.compExtraEmaNibbles, b.compExtraEmaNibbles);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
    EXPECT_EQ(a.wIndexBits, b.wIndexBits);
    EXPECT_EQ(a.xIndexBits, b.xIndexBits);
    EXPECT_EQ(a.denseNibbles, b.denseNibbles);
    EXPECT_DOUBLE_EQ(a.macsPerOuterProduct, b.macsPerOuterProduct);
}

std::uint32_t
fieldU32(const std::string &bytes, std::size_t off)
{
    std::uint32_t v = 0;
    std::memcpy(&v, bytes.data() + off, sizeof(v));
    return v;
}

std::uint64_t
fieldU64(const std::string &bytes, std::size_t off)
{
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + off, sizeof(v));
    return v;
}

/** One deterministic request through a model's stack. */
serve::ServedModel::BatchResult
runOnce(const serve::ServedModel &model)
{
    Rng rng(0xf00d);
    MatrixF x(model.inputFeatures(), 8);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian(0.2, 1.0));
    const std::size_t offsets[] = {0, 2};
    return model.runPrepared(model.prepareInput(x), offsets);
}

TEST(ModelSerialize, RoundTripIsByteIdenticalAndBitExactAcrossIsa)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;
    const CompiledModel fresh = compileModel(spec, opts);

    const std::string path_a = dir.file("a.pncm");
    saveCompiledModel(fresh, path_a);
    const CompiledModel loaded = loadCompiledModel(path_a);

    // save -> load -> save: identical bytes.
    const std::string path_b = dir.file("b.pncm");
    saveCompiledModel(loaded, path_b);
    const std::string bytes_a = readFile(path_a);
    const std::string bytes_b = readFile(path_b);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, bytes_b);

    // Identity of everything observable.
    EXPECT_EQ(loaded.key(), fresh.key());
    EXPECT_EQ(loaded.layerCount(), fresh.layerCount());
    EXPECT_EQ(loaded.inputFeatures(), fresh.inputFeatures());
    EXPECT_EQ(loaded.outputFeatures(), fresh.outputFeatures());
    EXPECT_EQ(loaded.macsPerColumn(), fresh.macsPerColumn());
    EXPECT_DOUBLE_EQ(loaded.buildMs(), fresh.buildMs());

    // The loaded model is behaviourally byte-identical at every ISA
    // level - outputs AND statistics.
    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        const auto ref = runOnce(*fresh.shared());
        const auto got = runOnce(*loaded.shared());
        EXPECT_TRUE(got.output == ref.output)
            << "outputs diverge at isa=" << toString(isa);
        ASSERT_EQ(got.perRequest.size(), ref.perRequest.size());
        for (std::size_t i = 0; i < ref.perRequest.size(); ++i)
            expectStatsEqual(got.perRequest[i], ref.perRequest[i]);
    }
}

TEST(ModelSerialize, FingerprintMismatchIsRejected)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;
    const CompiledModel model = compileModel(spec, opts);
    const std::string path = dir.file("m.pncm");
    saveCompiledModel(model, path);

    // The right (spec, opts) loads...
    EXPECT_NO_THROW(loadCompiledModelFor(path, spec, opts));

    // ...anything that changes the prepared bytes does not.
    CompileOptions other_opts = opts;
    other_opts.seed += 1;
    EXPECT_THROW(loadCompiledModelFor(path, spec, other_opts),
                 SerializeError);
    ModelSpec other_spec = spec;
    other_spec.layers[0].kDim += 4;
    EXPECT_THROW(loadCompiledModelFor(path, other_spec, opts),
                 SerializeError);

    // A tampered stored key no longer matches the body fingerprint.
    std::string bytes = readFile(path);
    const std::size_t key_payload = 8 + 8; // magic+version, key length
    ASSERT_GT(bytes.size(), key_payload + 1);
    bytes[key_payload] ^= 0x01; // first key character
    const std::string tampered = dir.file("tampered.pncm");
    writeFile(tampered, bytes);
    EXPECT_THROW(loadCompiledModel(tampered), SerializeError);
}

TEST(ModelSerialize, VersionMagicChecksumAndTruncationAreRejected)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;
    opts.maxLayers = 1; // small file: truncation sweep stays cheap
    const CompiledModel model = compileModel(spec, opts);
    const std::string path = dir.file("m.pncm");
    saveCompiledModel(model, path);
    const std::string good = readFile(path);
    ASSERT_GT(good.size(), 32u);

    const auto expectRejected = [&](std::string bytes,
                                    const char *what) {
        const std::string p = dir.file("bad.pncm");
        writeFile(p, bytes);
        EXPECT_THROW(loadCompiledModel(p), SerializeError) << what;
    };

    // Magic.
    {
        std::string bad = good;
        bad[0] = 'X';
        expectRejected(bad, "magic");
    }
    // Unknown format version.
    {
        std::string bad = good;
        bad[4] = static_cast<char>(bad[4] + 1);
        expectRejected(bad, "version");
    }
    // Payload corruption -> checksum mismatch.
    {
        std::string bad = good;
        bad[good.size() / 2] ^= 0x40;
        expectRejected(bad, "checksum");
    }
    // Checksum corruption itself.
    {
        std::string bad = good;
        bad[good.size() - 1] ^= 0x01;
        expectRejected(bad, "trailer");
    }
    // Truncation at every kind of boundary: inside the envelope,
    // inside the payload, and just shy of the full file.
    for (std::size_t cut :
         {std::size_t{0}, std::size_t{3}, std::size_t{8},
          std::size_t{15}, good.size() / 3, good.size() / 2,
          good.size() - 9, good.size() - 1}) {
        expectRejected(good.substr(0, cut), "truncation");
    }
    // Trailing garbage after a valid image.
    expectRejected(good + std::string(4, '\0'), "trailing bytes");

    // Missing file.
    EXPECT_THROW(loadCompiledModel(dir.file("absent.pncm")),
                 SerializeError);

    // The original still loads after all that.
    EXPECT_NO_THROW(loadCompiledModel(path));
}

TEST(ModelSerialize, DiskTierServesColdStartWithZeroBuilds)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;

    // Warm process: builds once, writes through to disk.
    serve::PreparedModelCache warm;
    warm.setDiskDir(dir.path.string());
    auto built = warm.acquire(spec, opts);
    EXPECT_EQ(warm.stats().misses, 1u);
    EXPECT_EQ(warm.stats().diskHits, 0u);
    const std::string file =
        (dir.path / serve::compiledModelFileName(built->key())).string();
    EXPECT_TRUE(std::filesystem::exists(file));

    // Cold process (fresh cache object): the file is found, decoded,
    // and NOTHING is built - the zero-preparation cold start.
    serve::PreparedModelCache cold;
    cold.setDiskDir(dir.path.string());
    auto loaded = cold.acquire(spec, opts);
    const auto cstats = cold.stats();
    EXPECT_EQ(cstats.misses, 0u) << "cold start rebuilt the model";
    EXPECT_EQ(cstats.diskHits, 1u);
    EXPECT_EQ(cstats.hits, 0u);
    EXPECT_GT(cstats.buildMsSaved, 0.0);
    EXPECT_GE(cstats.loadMsTotal, 0.0);

    // Same behaviour, bit for bit.
    const auto ref = runOnce(*built);
    const auto got = runOnce(*loaded);
    EXPECT_TRUE(got.output == ref.output);
    for (std::size_t i = 0; i < ref.perRequest.size(); ++i)
        expectStatsEqual(got.perRequest[i], ref.perRequest[i]);

    // Second acquire in the cold cache: memory hit, no extra disk I/O.
    cold.acquire(spec, opts);
    EXPECT_EQ(cold.stats().hits, 1u);
    EXPECT_EQ(cold.stats().diskHits, 1u);

    // A corrupt file degrades to a rebuild, never a failure.
    std::string bytes = readFile(file);
    bytes[bytes.size() / 2] ^= 0x10;
    writeFile(file, bytes);
    serve::PreparedModelCache recover;
    recover.setDiskDir(dir.path.string());
    auto rebuilt = recover.acquire(spec, opts);
    EXPECT_EQ(recover.stats().misses, 1u);
    EXPECT_EQ(recover.stats().diskHits, 0u);
    EXPECT_TRUE(runOnce(*rebuilt).output == ref.output);
}

TEST(ModelSerialize, V2SectionDirectoryIsAlignedAndCoversFile)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;
    const CompiledModel model = compileModel(spec, opts);
    const std::string path = dir.file("m.pncm");
    saveCompiledModel(model, path);
    const std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 32u);

    // Envelope: magic, current version, declared size == actual size.
    EXPECT_EQ(bytes.substr(0, 4), "PNCM");
    EXPECT_EQ(fieldU32(bytes, 4), kCompiledModelFormatVersion);
    EXPECT_EQ(fieldU64(bytes, 8), bytes.size());

    // Directory: 1 META section + 6 bulk sections per layer, offsets
    // 64-byte aligned, ascending, non-overlapping, in bounds, and the
    // last section ends exactly at the declared file size (no slack a
    // mapped reader could silently run past).
    const std::uint64_t sections = fieldU64(bytes, 24);
    EXPECT_EQ(sections, 1u + 6u * model.layerCount());
    const std::size_t dir_end = 32 + sections * 16;
    ASSERT_LT(dir_end, bytes.size());
    std::uint64_t prev_end = dir_end;
    for (std::uint64_t s = 0; s < sections; ++s) {
        const std::uint64_t off = fieldU64(bytes, 32 + s * 16);
        const std::uint64_t size = fieldU64(bytes, 32 + s * 16 + 8);
        EXPECT_EQ(off % 64, 0u) << "section " << s << " misaligned";
        EXPECT_GE(off, prev_end) << "section " << s << " overlaps";
        EXPECT_LE(off + size, bytes.size()) << "section " << s;
        // Alignment gaps are zero-filled - the bytes are a pure
        // function of the prepared state, nothing leaks in.
        for (std::uint64_t p = prev_end; p < off; ++p)
            ASSERT_EQ(bytes[p], '\0') << "gap byte " << p;
        prev_end = off + size;
    }
    EXPECT_EQ(prev_end, bytes.size()) << "last section must end at EOF";
}

TEST(ModelSerialize, MappedAndCopyingLoadsAreBitExactAcrossIsa)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;
    const CompiledModel fresh = compileModel(spec, opts);
    const std::string path = dir.file("m.pncm");
    saveCompiledModel(fresh, path);

    // allow_mmap=true serves the weights from the mapping; the
    // copying decode of the SAME file owns everything.
    const CompiledModel mapped = loadCompiledModel(path, true);
    const CompiledModel copied = loadCompiledModel(path, false);
    EXPECT_GT(mapped.mappedBytes(), 0u);
    EXPECT_EQ(mapped.mappedBytes(), std::filesystem::file_size(path));
    EXPECT_EQ(copied.mappedBytes(), 0u);

    // PANACEA_MMAP=0 is the operational kill switch: it wins over the
    // caller and forces the copying decode.
    ::setenv("PANACEA_MMAP", "0", 1);
    const CompiledModel killed = loadCompiledModel(path, true);
    ::unsetenv("PANACEA_MMAP");
    EXPECT_EQ(killed.mappedBytes(), 0u);

    // All three serve bit-identically to the fresh build at every
    // runnable ISA level - outputs AND statistics.
    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        const auto ref = runOnce(*fresh.shared());
        for (const CompiledModel *m : {&mapped, &copied, &killed}) {
            const auto got = runOnce(*m->shared());
            EXPECT_TRUE(got.output == ref.output)
                << "outputs diverge at isa=" << toString(isa);
            ASSERT_EQ(got.perRequest.size(), ref.perRequest.size());
            for (std::size_t i = 0; i < ref.perRequest.size(); ++i)
                expectStatsEqual(got.perRequest[i], ref.perRequest[i]);
        }
    }
}

TEST(ModelSerialize, LegacyV1WritesLoadThroughCopyingFallback)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;
    const CompiledModel fresh = compileModel(spec, opts);

    const std::string v1_path = dir.file("legacy.pncm");
    saveCompiledModel(fresh, v1_path, kCompiledModelLegacyFormatVersion);
    const std::string v2_path = dir.file("current.pncm");
    saveCompiledModel(fresh, v2_path);
    EXPECT_EQ(peekCompiledModelVersion(v1_path),
              kCompiledModelLegacyFormatVersion);
    EXPECT_EQ(peekCompiledModelVersion(v2_path),
              kCompiledModelFormatVersion);

    // A v1 file can never be served from a mapping: the loader falls
    // back to the copying decode even with mmap allowed, and the
    // result is bit-identical to the v2 load and the fresh build.
    const CompiledModel v1 = loadCompiledModel(v1_path, true);
    EXPECT_EQ(v1.mappedBytes(), 0u);
    EXPECT_EQ(v1.key(), fresh.key());
    const CompiledModel v2 = loadCompiledModel(v2_path, true);
    const auto ref = runOnce(*fresh.shared());
    EXPECT_TRUE(runOnce(*v1.shared()).output == ref.output);
    EXPECT_TRUE(runOnce(*v2.shared()).output == ref.output);

    // v1 save -> load -> save reproduces identical bytes too.
    const std::string v1_again = dir.file("legacy_again.pncm");
    saveCompiledModel(v1, v1_again, kCompiledModelLegacyFormatVersion);
    EXPECT_EQ(readFile(v1_path), readFile(v1_again));

    // And the v1 rejection paths still hold behind the fallback.
    std::string bad = readFile(v1_path);
    bad[bad.size() / 2] ^= 0x20;
    const std::string bad_path = dir.file("legacy_bad.pncm");
    writeFile(bad_path, bad);
    EXPECT_THROW(loadCompiledModel(bad_path), SerializeError);
    writeFile(bad_path, readFile(v1_path).substr(0, bad.size() / 2));
    EXPECT_THROW(loadCompiledModel(bad_path), SerializeError);
}

TEST(ModelSerialize, SweepKeepsEveryReadableVersion)
{
    TempDir dir;
    const ModelSpec spec = tinySpec();
    CompileOptions opts;
    opts.maxLayers = 1;
    const CompiledModel model = compileModel(spec, opts);

    // Two valid artifacts (one per readable version), one from the
    // future, one corrupt, one unrelated file.
    saveCompiledModel(model, dir.file("v2.pncm"));
    saveCompiledModel(model, dir.file("v1.pncm"),
                      kCompiledModelLegacyFormatVersion);
    std::string future = readFile(dir.file("v2.pncm"));
    future[4] = static_cast<char>(future[4] + 55);
    writeFile(dir.file("future.pncm"), future);
    writeFile(dir.file("garbage.pncm"), "not a compiled model");
    writeFile(dir.file("notes.txt"), "ignored: wrong extension");

    const serve::CacheDirReport report =
        serve::sweepCompiledModelDir(dir.path.string());
    EXPECT_EQ(report.scanned, 4u);
    EXPECT_EQ(report.staleVersion, 1u);
    EXPECT_EQ(report.corrupt, 1u);
    EXPECT_EQ(report.evicted, 0u);

    // The sweep keeps BOTH readable versions - v1 is legacy, not
    // stale - and ignores non-.pncm files.
    EXPECT_TRUE(std::filesystem::exists(dir.file("v2.pncm")));
    EXPECT_TRUE(std::filesystem::exists(dir.file("v1.pncm")));
    EXPECT_FALSE(std::filesystem::exists(dir.file("future.pncm")));
    EXPECT_FALSE(std::filesystem::exists(dir.file("garbage.pncm")));
    EXPECT_TRUE(std::filesystem::exists(dir.file("notes.txt")));
    EXPECT_NO_THROW(loadCompiledModel(dir.file("v2.pncm")));
    EXPECT_NO_THROW(loadCompiledModel(dir.file("v1.pncm")));
}

} // namespace
} // namespace panacea
