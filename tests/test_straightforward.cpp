/**
 * @file
 * Straightforward and DBS slicing tests: exhaustive round trips and the
 * LSB-truncation semantics of the dynamic slicing rules (paper Fig. 10).
 */

#include <gtest/gtest.h>

#include "slicing/straightforward.h"

namespace panacea {
namespace {

TEST(Straightforward, BitWidthHelpers)
{
    EXPECT_EQ(activationBits(0), 4);
    EXPECT_EQ(activationBits(1), 8);
    EXPECT_EQ(activationBits(2), 12);
    EXPECT_EQ(activationLoSliceCount(8), 1);
    EXPECT_EQ(activationLoSliceCount(12), 2);
}

class ActivationRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(ActivationRoundTrip, AllValues)
{
    const int k = GetParam();
    const std::int32_t hi = (1 << activationBits(k)) - 1;
    for (std::int32_t v = 0; v <= hi; ++v) {
        std::vector<Slice> s = activationEncode(v, k);
        ASSERT_EQ(static_cast<int>(s.size()), k + 1);
        for (Slice sl : s) {
            ASSERT_GE(sl, 0);
            ASSERT_LE(sl, unsignedSliceMax);
        }
        ASSERT_EQ(activationDecode(s), v);
    }
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, ActivationRoundTrip,
                         ::testing::Values(0, 1, 2));

TEST(Dbs, PaperExampleType2)
{
    // Fig. 10(b): 01010101(2) = 85 under l = 5 splits into HO 010(2)
    // and LO 10101(2); stored slices are HO zero-padded and LO with the
    // lowest bit discarded.
    DbsSlices s = dbsEncode(85, 5);
    EXPECT_EQ(s.ho, 2);    // 010
    EXPECT_EQ(s.lo, 10);   // 1010 (LSB of 10101 dropped)
    EXPECT_EQ(dbsDecode(s, 5), 84);  // 85 & ~1
}

class DbsSliceSweep : public ::testing::TestWithParam<int>
{};

TEST_P(DbsSliceSweep, TruncationSemanticsAllCodes)
{
    const int l = GetParam();
    const std::int32_t lsb_mask = ~((1 << (l - 4)) - 1);
    for (std::int32_t v = 0; v <= 255; ++v) {
        DbsSlices s = dbsEncode(v, l);
        ASSERT_GE(s.ho, 0);
        ASSERT_LE(s.ho, unsignedSliceMax);
        ASSERT_GE(s.lo, 0);
        ASSERT_LE(s.lo, unsignedSliceMax);
        ASSERT_EQ(dbsDecode(s, l), v & lsb_mask) << "v=" << v;
        if (l == 4) {
            ASSERT_EQ(dbsDecode(s, l), v);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(LoWidths, DbsSliceSweep,
                         ::testing::Values(4, 5, 6));

TEST(DbsDeath, RejectsBadInputs)
{
    EXPECT_DEATH(dbsEncode(256, 5), "8-bit");
    EXPECT_DEATH(dbsEncode(10, 7), "outside");
}

} // namespace
} // namespace panacea
