/**
 * @file
 * Memory-manager tests: compressed-byte accounting, residency policies
 * and the DTP enable condition.
 */

#include <gtest/gtest.h>

#include "arch/memory_manager.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(MemoryManager, WeightBitsDenseAndCompressed)
{
    Rng rng(81);
    PanaceaConfig cfg;
    MemoryManager mem(cfg);

    // Fully dense masks: every HO vector stored.
    GemmWorkload dense =
        GemmWorkload::synthetic("d", 64, 32, 64, 0.0, 0.0, 4, rng);
    // HO: (64/4)*32 vectors * (16+4) bits; LO: 16*32*16 bits.
    std::uint64_t expected = 16ull * 32 * (16 + 4) + 16ull * 32 * 16;
    EXPECT_EQ(mem.weightBits(dense, 0, 16), expected);

    // Fully compressed HO plane: only LO remains.
    GemmWorkload sparse =
        GemmWorkload::synthetic("s", 64, 32, 64, 1.0, 0.0, 4, rng);
    EXPECT_EQ(mem.weightBits(sparse, 0, 16), 16ull * 32 * 16);
}

TEST(MemoryManager, SingleSliceWeightsAreDenseLo)
{
    Rng rng(82);
    PanaceaConfig cfg;
    MemoryManager mem(cfg);
    GemmWorkload wl =
        GemmWorkload::synthetic("w4", 64, 32, 64, 0.9, 0.0, 4, rng);
    wl.wLevels = 1;
    wl.weightHoSkippable = false;
    // One dense 4-bit plane; the mask is ignored.
    EXPECT_EQ(mem.weightBits(wl, 0, 16), 16ull * 32 * 16);
}

TEST(MemoryManager, ActivationBitsTrackSparsity)
{
    Rng rng(83);
    PanaceaConfig cfg;
    MemoryManager mem(cfg);
    GemmWorkload dense =
        GemmWorkload::synthetic("d", 64, 32, 64, 0.0, 0.0, 4, rng);
    GemmWorkload sparse =
        GemmWorkload::synthetic("s", 64, 32, 64, 0.0, 1.0, 4, rng);
    EXPECT_GT(mem.activationBits(dense), mem.activationBits(sparse));
    // Fully compressed: only the LO plane remains.
    EXPECT_EQ(mem.activationBits(sparse), 32ull * 64 * 4);
}

TEST(MemoryManager, DtpRequiresTwoTilesInWmem)
{
    Rng rng(84);
    PanaceaConfig cfg;
    cfg.enableDtp = true;

    // Small weights: 2 tiles easily fit 160 KB.
    GemmWorkload small =
        GemmWorkload::synthetic("small", 256, 256, 64, 0.0, 0.0, 4, rng);
    TrafficPlan plan_small = MemoryManager(cfg).plan(small);
    EXPECT_TRUE(plan_small.dtpEnabled);
    EXPECT_EQ(plan_small.mSupers, 2u);  // 4 tiles paired

    // Huge K: two dense 64 x 16384 tiles exceed WMEM.
    GemmWorkload big =
        GemmWorkload::synthetic("big", 256, 16384, 64, 0.0, 0.0, 4, rng);
    TrafficPlan plan_big = MemoryManager(cfg).plan(big);
    EXPECT_FALSE(plan_big.dtpEnabled);
}

TEST(MemoryManager, DtpSingleTileModelDisabled)
{
    Rng rng(85);
    PanaceaConfig cfg;
    GemmWorkload one_tile =
        GemmWorkload::synthetic("one", 64, 128, 64, 0.0, 0.0, 4, rng);
    TrafficPlan plan = MemoryManager(cfg).plan(one_tile);
    EXPECT_FALSE(plan.dtpEnabled);
    EXPECT_EQ(plan.mSupers, 1u);
}

TEST(MemoryManager, NonResidentWeightsRestreamPerNTile)
{
    Rng rng(86);
    PanaceaConfig cfg;
    cfg.enableDtp = false;
    // 64 x 40960 dense weights: ~400 KB per tile, past 160 KB WMEM.
    GemmWorkload wl =
        GemmWorkload::synthetic("stream", 64, 40960, 256, 0.0, 0.0, 4,
                                rng);
    TrafficPlan plan = MemoryManager(cfg).plan(wl);
    EXPECT_FALSE(plan.weightsResident);
    EXPECT_EQ(plan.nTiles, 4u);
    EXPECT_GE(plan.dramReadBytes, plan.wBytesCompressed * 4);
}

TEST(MemoryManager, CompressionShrinksDram)
{
    Rng rng(87);
    PanaceaConfig cfg;
    GemmWorkload dense =
        GemmWorkload::synthetic("d", 512, 512, 256, 0.0, 0.0, 4, rng);
    GemmWorkload sparse =
        GemmWorkload::synthetic("s", 512, 512, 256, 0.8, 0.9, 4, rng);
    TrafficPlan pd = MemoryManager(cfg).plan(dense);
    TrafficPlan ps = MemoryManager(cfg).plan(sparse);
    EXPECT_LT(ps.dramReadBytes, pd.dramReadBytes);
    EXPECT_LT(ps.sramReadBytes, pd.sramReadBytes);
}

} // namespace
} // namespace panacea
