/**
 * @file
 * Distribution-based slicing tests (paper Fig. 9): z-score computation,
 * type classification thresholds, type-based ZPM and the effective-code
 * mask.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/dbs.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(Dbs, ZScoreMatchesKnownQuantiles)
{
    // Two-sided z-scores of the standard normal.
    EXPECT_NEAR(zScoreForMass(0.6827), 1.0, 1e-3);
    EXPECT_NEAR(zScoreForMass(0.90), 1.6449, 1e-3);
    EXPECT_NEAR(zScoreForMass(0.95), 1.9600, 1e-3);
    EXPECT_NEAR(zScoreForMass(0.99), 2.5758, 1e-3);
}

Histogram
gaussianHistogram(double mean, double stddev, std::size_t samples = 200000)
{
    Rng rng(42);
    Histogram h(0, 255);
    for (std::size_t i = 0; i < samples; ++i) {
        auto v = static_cast<std::int64_t>(
            std::llround(rng.gaussian(mean, stddev)));
        h.add(std::clamp<std::int64_t>(v, 0, 255));
    }
    return h;
}

TEST(Dbs, ClassifiesNarrowAsType1)
{
    Histogram h = gaussianHistogram(136.0, 3.0);
    DbsConfig cfg;
    DbsDecision d = classifyDistribution(h, 133, cfg);
    EXPECT_EQ(d.type, DbsType::Type1);
    EXPECT_EQ(d.loBits, 4);
}

TEST(Dbs, ClassifiesMediumAsType2)
{
    Histogram h = gaussianHistogram(136.0, 7.0);
    DbsConfig cfg;
    DbsDecision d = classifyDistribution(h, 133, cfg);
    EXPECT_EQ(d.type, DbsType::Type2);
    EXPECT_EQ(d.loBits, 5);
}

TEST(Dbs, ClassifiesWideAsType3)
{
    Histogram h = gaussianHistogram(136.0, 16.0);
    DbsConfig cfg;
    DbsDecision d = classifyDistribution(h, 133, cfg);
    EXPECT_EQ(d.type, DbsType::Type3);
    EXPECT_EQ(d.loBits, 6);
}

TEST(Dbs, TypeBasedZpmUsesChosenLoWidth)
{
    Histogram h = gaussianHistogram(136.0, 7.0);  // type-2, l = 5
    DbsConfig cfg;
    DbsDecision d = classifyDistribution(h, 133, cfg);
    ASSERT_EQ(d.loBits, 5);
    // zp'' must sit at the centre of a 32-wide bucket.
    EXPECT_EQ(d.zpm.zeroPoint % 32, 16);
    EXPECT_EQ(d.zpm.frequentSlice, (d.zpm.zeroPoint - 16) >> 5);
}

TEST(Dbs, ZpmCanBeDisabled)
{
    Histogram h = gaussianHistogram(136.0, 7.0);
    DbsConfig cfg;
    cfg.enableZpm = false;
    DbsDecision d = classifyDistribution(h, 133, cfg);
    EXPECT_EQ(d.zpm.zeroPoint, 133);
    EXPECT_EQ(d.zpm.frequentSlice, 133 >> 5);
}

TEST(Dbs, EffectiveCodeMasking)
{
    EXPECT_EQ(dbsEffectiveCode(0xFF, 4), 0xFF);
    EXPECT_EQ(dbsEffectiveCode(0xFF, 5), 0xFE);
    EXPECT_EQ(dbsEffectiveCode(0xFF, 6), 0xFC);
    EXPECT_EQ(dbsEffectiveCode(85, 5), 84);
}

TEST(Dbs, LoBitsForTypes)
{
    EXPECT_EQ(loBitsFor(DbsType::Type1), 4);
    EXPECT_EQ(loBitsFor(DbsType::Type2), 5);
    EXPECT_EQ(loBitsFor(DbsType::Type3), 6);
}

TEST(Dbs, HigherTargetMassWidensClassification)
{
    // Raising the target mass raises std*z, pushing borderline layers
    // into higher types (wider skip ranges).
    Histogram h = gaussianHistogram(136.0, 5.2);
    DbsConfig strict;
    strict.targetMass = 0.99;
    DbsConfig loose;
    loose.targetMass = 0.80;
    DbsDecision d_strict = classifyDistribution(h, 133, strict);
    DbsDecision d_loose = classifyDistribution(h, 133, loose);
    EXPECT_GE(static_cast<int>(d_strict.type),
              static_cast<int>(d_loose.type));
}

} // namespace
} // namespace panacea
