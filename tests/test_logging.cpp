/**
 * @file
 * Logging primitive tests: message assembly, verbosity gating and the
 * fatal/panic termination semantics.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

namespace panacea {
namespace {

TEST(Logging, ConcatAssemblesMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, VerbosityToggle)
{
    setVerbose(false);
    EXPECT_FALSE(verbose());
    testing::internal::CaptureStdout();
    inform("hidden");
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "");

    setVerbose(true);
    EXPECT_TRUE(verbose());
    testing::internal::CaptureStdout();
    inform("shown ", 42);
    EXPECT_EQ(testing::internal::GetCapturedStdout(),
              "info: shown 42\n");
}

TEST(Logging, WarnGoesToStderr)
{
    testing::internal::CaptureStderr();
    warn("careful");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: careful"), std::string::npos);
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal: bad config");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("bug: ", 7), "panic: bug: 7");
}

TEST(LoggingDeath, ConditionalForms)
{
    EXPECT_DEATH(panic_if(1 + 1 == 2, "math works"), "math works");
    panic_if(false, "never fires");
    fatal_if(false, "never fires");
    SUCCEED();
}

} // namespace
} // namespace panacea
