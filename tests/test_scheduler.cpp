/**
 * @file
 * Workload-scheduler tests: the closed-form makespan must match greedy
 * list scheduling across the workload space, and the DTP rules must
 * route second-tile static work correctly.
 */

#include <gtest/gtest.h>

#include "arch/scheduler.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(Scheduler, DenseWithoutDtp)
{
    PeaScheduler sched(4, 8);
    // Paper-dense mix per (k, ng): 3 dynamic, 1 static.
    PeaTileWork work;
    work.dynOps = 300;
    work.statOps = 100;
    EXPECT_EQ(sched.makespan(work, false), 75u);   // DWO bound
    EXPECT_EQ(sched.simulateGreedy(work, false), 75u);
}

TEST(Scheduler, StaticBoundWithoutDtp)
{
    PeaScheduler sched(8, 4);
    PeaTileWork work;
    work.dynOps = 10;
    work.statOps = 100;
    EXPECT_EQ(sched.makespan(work, false), 25u);   // SWO bound
}

TEST(Scheduler, DtpAllowsStaticSpillToDwos)
{
    PeaScheduler sched(4, 8);
    PeaTileWork work;
    work.dynOps = 0;
    work.statOps = 800;   // saturates SWOs for 100 cycles
    work.statOps2 = 400;  // must spill to DWOs
    EXPECT_EQ(sched.makespan(work, true), 100u);
    EXPECT_EQ(sched.simulateGreedy(work, true), 100u);
}

TEST(Scheduler, DtpImprovesHighSparsityThroughput)
{
    // At high sparsity, dynamic work vanishes; without DTP the second
    // tile would be processed serially. DTP overlaps the two static
    // streams across all operators.
    PeaScheduler sched(4, 8);
    PeaTileWork single;
    single.dynOps = 20;
    single.statOps = 200;
    std::uint64_t two_passes = 2 * sched.makespan(single, false);

    PeaTileWork dtp;
    dtp.dynOps = 40;
    dtp.statOps = 200;
    dtp.statOps2 = 200;
    std::uint64_t one_pass = sched.makespan(dtp, true);
    EXPECT_LT(one_pass, two_passes);
}

TEST(Scheduler, ClosedFormMatchesGreedyRandomized)
{
    Rng rng(61);
    for (int trial = 0; trial < 500; ++trial) {
        int d = static_cast<int>(rng.uniformInt(1, 12));
        int s = static_cast<int>(rng.uniformInt(1, 12));
        PeaScheduler sched(d, s);
        PeaTileWork work;
        work.dynOps = static_cast<std::uint64_t>(rng.uniformInt(0, 2000));
        work.statOps = static_cast<std::uint64_t>(rng.uniformInt(0, 2000));
        bool dtp = rng.bernoulli(0.5);
        if (dtp)
            work.statOps2 =
                static_cast<std::uint64_t>(rng.uniformInt(0, 2000));

        std::uint64_t closed = sched.makespan(work, dtp);
        std::uint64_t greedy = sched.simulateGreedy(work, dtp);
        // Greedy is a feasible schedule: it can exceed the fluid bound
        // by at most one rounding cycle and never beat it.
        ASSERT_GE(greedy, closed == 0 ? 0 : closed - 1)
            << "d=" << d << " s=" << s;
        ASSERT_LE(greedy, closed + 1)
            << "d=" << d << " s=" << s << " dyn=" << work.dynOps
            << " st=" << work.statOps << " st2=" << work.statOps2;
    }
}

TEST(Scheduler, EmptyWorkIsFree)
{
    PeaScheduler sched(4, 8);
    PeaTileWork work;
    EXPECT_EQ(sched.makespan(work, false), 0u);
    EXPECT_EQ(sched.simulateGreedy(work, true), 0u);
}

TEST(SchedulerDeath, Stat2RequiresDtp)
{
    PeaScheduler sched(4, 8);
    PeaTileWork work;
    work.statOps2 = 5;
    EXPECT_DEATH(sched.makespan(work, false), "without DTP");
}

} // namespace
} // namespace panacea
