/**
 * @file
 * Parity tests for the register-blocked, multi-threaded AQS-GEMM kernel:
 * aqsGemm() must reproduce the retained scalar reference
 * (aqsGemmReference) bit-for-bit - accumulator AND statistics counters -
 * across every ActSkipMode, SBR and DBS slicing, the Eq. (5)/(6)
 * variants, non-default vector lengths, 1/2/4/8 pool threads, AND every
 * runnable ISA level (scalar/SSE2/AVX2/AVX-512/AVX512-VNNI): the
 * dispatch table of core/pair_pass.h may change throughput only, never
 * a single bit of results or statistics. Hosts without VNNI skip (not
 * fail) the explicit VNNI axis; the runnableIsaLevels() sweeps cover it
 * automatically wherever it is available.
 */

#include <gtest/gtest.h>

#include "core/aqs_gemm.h"
#include "core/legacy_gemm.h"
#include "quant/gemm_quant.h"
#include "isa_guard.h"
#include "pool_guard.h"
#include "slicing/sbr.h"
#include "slicing/straightforward.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

MatrixI32
randomWeightCodes(Rng &rng, std::size_t m, std::size_t k, int n,
                  double near_zero_bias = 0.5)
{
    const int bits = sbrBits(n);
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    const std::int32_t narrow = (1 << std::max(1, bits - 4)) - 1;
    MatrixI32 codes(m, k);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(near_zero_bias))
            c = static_cast<std::int32_t>(rng.uniformInt(-narrow, narrow));
        else
            c = static_cast<std::int32_t>(rng.uniformInt(lo, hi));
    }
    return codes;
}

MatrixI32
randomActivationCodes(Rng &rng, std::size_t k, std::size_t n, int bits,
                      std::int32_t zp, double cluster_bias = 0.6)
{
    const std::int32_t hi = (1 << bits) - 1;
    MatrixI32 codes(k, n);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(cluster_bias)) {
            auto v = zp + rng.uniformInt(-6, 6);
            c = static_cast<std::int32_t>(
                std::clamp<std::int64_t>(v, 0, hi));
        } else {
            c = static_cast<std::int32_t>(rng.uniformInt(0, hi));
        }
    }
    return codes;
}

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.compMults, b.compMults);
    EXPECT_EQ(a.compAdds, b.compAdds);
    EXPECT_EQ(a.compExtraEmaNibbles, b.compExtraEmaNibbles);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
    EXPECT_EQ(a.wIndexBits, b.wIndexBits);
    EXPECT_EQ(a.xIndexBits, b.xIndexBits);
    EXPECT_EQ(a.denseNibbles, b.denseNibbles);
    EXPECT_DOUBLE_EQ(a.macsPerOuterProduct, b.macsPerOuterProduct);
}

struct ParityCase
{
    ActSkipMode mode;
    bool useEq6;
};

class KernelParity : public ::testing::TestWithParam<ParityCase>
{};

TEST_P(KernelParity, SbrActivationsMatchReferenceAcrossThreads)
{
    PoolGuard guard;
    const ParityCase pc = GetParam();
    Rng rng(101);
    const std::size_t m = 32, kk = 24, n = 20;
    const std::int32_t zp = 137;

    AqsConfig cfg;
    cfg.actSkip = pc.mode;
    cfg.useEq6 = pc.useEq6;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, zp);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, zp, cfg);

    AqsStats ref_stats;
    MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);

    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {1, 2, 4, 8}) {
            setParallelThreads(threads);
            AqsStats new_stats;
            MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
            EXPECT_TRUE(got == ref)
                << "accumulator mismatch at isa=" << toString(isa)
                << " threads=" << threads;
            expectStatsEqual(new_stats, ref_stats);
        }
    }
}

TEST_P(KernelParity, DbsActivationsMatchReferenceAcrossThreads)
{
    PoolGuard guard;
    const ParityCase pc = GetParam();
    Rng rng(202);
    const std::size_t m = 24, kk = 16, n = 28;

    AqsConfig cfg;
    cfg.actSkip = pc.mode;
    cfg.useEq6 = pc.useEq6;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);

    for (int lo_bits : {4, 5, 6}) {
        const Slice r = 9;
        MatrixI32 x_codes =
            randomActivationCodes(rng, kk, n, 8, r << lo_bits);
        WeightOperand w = prepareWeights(w_codes, 1, cfg);
        ActivationOperand x =
            prepareActivationsDbs(x_codes, lo_bits, r, cfg);

        AqsStats ref_stats;
        MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);
        IsaGuard isa_guard;
        for (IsaLevel isa : runnableIsaLevels()) {
            setIsaLevel(isa);
            for (int threads : {1, 2, 4, 8}) {
                setParallelThreads(threads);
                AqsStats new_stats;
                MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
                EXPECT_TRUE(got == ref)
                    << "DBS mismatch at l=" << lo_bits
                    << " isa=" << toString(isa)
                    << " threads=" << threads;
                expectStatsEqual(new_stats, ref_stats);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSkipModes, KernelParity,
    ::testing::Values(ParityCase{ActSkipMode::RValued, true},
                      ParityCase{ActSkipMode::RValued, false},
                      ParityCase{ActSkipMode::ZeroOnly, true},
                      ParityCase{ActSkipMode::None, true}));

TEST(KernelParity, MultiSliceOperandsMatchReference)
{
    PoolGuard guard;
    Rng rng(303);
    // n = 2 LO weight slices (3 planes), k = 2 activation slices
    // (3 planes): exercises multi-LO-plane pair scheduling.
    const std::size_t m = 16, kk = 12, n = 16;
    AqsConfig cfg;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 2);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 12, 1234);
    WeightOperand w = prepareWeights(w_codes, 2, cfg);
    ActivationOperand x = prepareActivations(x_codes, 2, 1234, cfg);

    AqsStats ref_stats;
    MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);
    for (int threads : {1, 4}) {
        setParallelThreads(threads);
        AqsStats new_stats;
        MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
        EXPECT_TRUE(got == ref);
        expectStatsEqual(new_stats, ref_stats);
    }
}

TEST(KernelParity, NonDefaultVectorLengthMatchesReference)
{
    PoolGuard guard;
    Rng rng(404);
    const std::size_t m = 32, kk = 12, n = 24;
    AqsConfig cfg;
    cfg.v = 8; // generic (non-SSE) micro-kernel path
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, 99);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, 99, cfg);

    AqsStats ref_stats;
    MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);
    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {1, 2, 8}) {
            setParallelThreads(threads);
            AqsStats new_stats;
            MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
            EXPECT_TRUE(got == ref) << "isa=" << toString(isa);
            expectStatsEqual(new_stats, ref_stats);
        }
    }
}

TEST(KernelParity, DensityExtremesMatchReferenceAcrossIsaLevels)
{
    // Near-fully-compressible and fully-dense operands steer the
    // AVX2+ kernels through the streaming and gather paths
    // respectively; both must match the reference bit-for-bit.
    PoolGuard guard;
    IsaGuard isa_guard;
    Rng rng(1001);
    const std::size_t m = 16, kk = 32, n = 16;
    const std::int32_t zp = 136;

    AqsConfig cfg;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);

    for (double cluster : {0.0, 0.98}) {
        MatrixI32 x_codes =
            randomActivationCodes(rng, kk, n, 8, zp, cluster);
        WeightOperand w = prepareWeights(w_codes, 1, cfg);
        ActivationOperand x = prepareActivations(x_codes, 1, zp, cfg);

        AqsStats ref_stats;
        MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);
        for (IsaLevel isa : runnableIsaLevels()) {
            setIsaLevel(isa);
            for (int threads : {1, 4}) {
                setParallelThreads(threads);
                AqsStats new_stats;
                MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
                EXPECT_TRUE(got == ref)
                    << "cluster=" << cluster
                    << " isa=" << toString(isa)
                    << " threads=" << threads;
                expectStatsEqual(new_stats, ref_stats);
            }
        }
    }
}

TEST(KernelParity, VnniKernelsMatchReferenceBitForBit)
{
    // Explicit VNNI axis: vpdpwssd wraps mod 2^32 exactly like the
    // madd+add pair it fuses, so the VNNI tier must be bit-identical -
    // accumulator AND stats - on both engines, across the stream
    // (pass4 + streamGeneric) and gather paths. Skip, not fail, when
    // the host or toolchain lacks AVX512-VNNI.
    if (supportedIsaCap() < IsaLevel::Avx512Vnni)
        GTEST_SKIP() << "host/toolchain cap is "
                     << toString(supportedIsaCap())
                     << "; AVX512-VNNI kernels not runnable";

    PoolGuard guard;
    IsaGuard isa_guard;
    setIsaLevel(IsaLevel::Avx512Vnni);
    Rng rng(1301);
    const std::size_t m = 32, kk = 32, n = 24;
    const std::int32_t zp = 131;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);

    for (int v : {4, 8}) {             // stream4 vs streamGeneric
        for (double cluster : {0.1, 0.9}) { // gather- vs stream-heavy
            AqsConfig cfg;
            cfg.v = v;
            MatrixI32 x_codes =
                randomActivationCodes(rng, kk, n, 8, zp, cluster);
            WeightOperand w = prepareWeights(w_codes, 1, cfg);
            ActivationOperand x = prepareActivations(x_codes, 1, zp, cfg);

            AqsStats ref_stats;
            MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);
            for (int threads : {1, 4}) {
                setParallelThreads(threads);
                AqsStats new_stats;
                MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
                EXPECT_TRUE(got == ref)
                    << "vnni mismatch at v=" << v
                    << " cluster=" << cluster << " threads=" << threads;
                expectStatsEqual(new_stats, ref_stats);
            }
        }
    }

    // Legacy engine over the same VNNI row.
    MatrixI32 lw = randomWeightCodes(rng, m, kk, 1, 0.7);
    MatrixI32 lx = randomWeightCodes(rng, kk, n, 1, 0.7);
    SlicedMatrix ws = sbrSliceMatrix(lw, 1);
    SlicedMatrix xs = sbrSliceMatrix(lx, 1);
    MatrixI64 dense = intGemm(lw, lx);
    for (int threads : {1, 4}) {
        setParallelThreads(threads);
        EXPECT_TRUE(legacyBitsliceGemm(ws, xs, 4, SibiaSkipSide::Auto) ==
                    dense)
            << "legacy vnni mismatch at threads=" << threads;
    }
}

TEST(KernelParity, OversizedVectorLengthFallsBackCorrectly)
{
    PoolGuard guard;
    setParallelThreads(4);
    Rng rng(808);
    // v = 20 exceeds the blocked micro-tile bound: aqsGemm must fall
    // back to the scalar reference and legacyBitsliceGemm to its
    // scalar band, not abort.
    const std::size_t m = 40, kk = 8, n = 20;
    AqsConfig cfg;
    cfg.v = 20;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, 66);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, 66, cfg);

    AqsStats ref_stats, new_stats;
    MatrixI64 ref = aqsGemmReference(w, x, cfg, &ref_stats);
    MatrixI64 got = aqsGemm(w, x, cfg, &new_stats);
    EXPECT_TRUE(got == ref);
    expectStatsEqual(new_stats, ref_stats);

    SlicedMatrix ws = sbrSliceMatrix(w_codes, 1);
    SlicedMatrix xs = sbrSliceMatrix(randomWeightCodes(rng, kk, n, 1), 1);
    MatrixI64 legacy = legacyBitsliceGemm(ws, xs, 20,
                                          SibiaSkipSide::Auto);
    EXPECT_EQ(legacy.rows(), m);
}

TEST(KernelParity, HandBuiltOperandWithoutWidenedPlanesStillWorks)
{
    Rng rng(909);
    const std::size_t m = 16, kk = 8, n = 12;
    AqsConfig cfg;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, 50);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, 50, cfg);
    MatrixI64 ref = aqsGemmReference(w, x, cfg);

    // Simulate an operand assembled by hand (no precomputed int16
    // planes): the kernel must widen on the fly.
    x.widenedPlanes.clear();
    EXPECT_TRUE(aqsGemm(w, x, cfg) == ref);
}

TEST(KernelParity, HandBuiltOperandWithoutMaskRunsUnderNoneMode)
{
    // Under ActSkipMode::None the HO mask is never consulted, so a
    // hand-built operand may leave it (and every cache) empty; the
    // kernel must fall back to gather passes rather than touch the
    // absent mask.
    Rng rng(1203);
    const std::size_t m = 16, kk = 8, n = 12;
    AqsConfig cfg;
    cfg.actSkip = ActSkipMode::None;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, 60);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, 60, cfg);
    MatrixI64 ref = aqsGemm(w, x, cfg);

    ActivationOperand bare;
    bare.sliced = x.sliced;
    bare.r = x.r;
    EXPECT_TRUE(aqsGemm(w, bare, cfg) == ref);
}

TEST(KernelParity, ReferenceStillMatchesPlainIntGemm)
{
    Rng rng(505);
    const std::size_t m = 16, kk = 8, n = 12;
    AqsConfig cfg;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, 77);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, 77, cfg);

    MatrixI64 dense = intGemm(w_codes, x_codes);
    EXPECT_TRUE(aqsGemmReference(w, x, cfg) == dense);
    EXPECT_TRUE(aqsGemm(w, x, cfg) == dense);
}

TEST(KernelParity, MacReductionUsesConfiguredVectorLength)
{
    Rng rng(606);
    AqsConfig cfg;
    cfg.v = 2;
    const std::size_t m = 8, kk = 8, n = 8;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1);
    MatrixI32 x_codes = randomActivationCodes(rng, kk, n, 8, 40);
    WeightOperand w = prepareWeights(w_codes, 1, cfg);
    ActivationOperand x = prepareActivations(x_codes, 1, 40, cfg);

    AqsStats stats;
    (void)aqsGemm(w, x, cfg, &stats);
    EXPECT_DOUBLE_EQ(stats.macsPerOuterProduct, 4.0);
    // Reduction must be derived from v*v = 4, not the hardcoded 16:
    // executed * 4 MACs of denseOuterProducts * 4.
    const double expect =
        1.0 - static_cast<double>(stats.totalMults()) /
                  (static_cast<double>(stats.denseOuterProducts) * 4.0);
    EXPECT_DOUBLE_EQ(stats.macReduction(), expect);
}

TEST(KernelParity, MixedVectorLengthMergeKeepsReductionExact)
{
    // Merging stats from runs with different v must blend the per-OP
    // MAC count weighted by dense OPs, keeping macReduction() exact.
    AqsStats a;
    a.denseOuterProducts = 100;
    a.executedOuterProducts = 50;
    a.mults = 50 * 16;
    a.macsPerOuterProduct = 16.0;

    AqsStats b;
    b.denseOuterProducts = 300;
    b.executedOuterProducts = 300;
    b.mults = 300 * 4;
    b.macsPerOuterProduct = 4.0;

    AqsStats total;
    total += a;
    total += b;
    // dense MACs = 100*16 + 300*4 = 2800; executed = 800 + 1200 = 2000.
    EXPECT_DOUBLE_EQ(total.denseOuterProducts * total.macsPerOuterProduct,
                     2800.0);
    EXPECT_DOUBLE_EQ(total.macReduction(), 1.0 - 2000.0 / 2800.0);
}

TEST(KernelParity, LegacyGemmDeterministicAcrossThreads)
{
    PoolGuard guard;
    Rng rng(707);
    const std::size_t m = 24, kk = 16, n = 20;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1, 0.8);
    MatrixI32 x_codes = randomWeightCodes(rng, kk, n, 1, 0.8);
    SlicedMatrix ws = sbrSliceMatrix(w_codes, 1);
    SlicedMatrix xs = sbrSliceMatrix(x_codes, 1);

    MatrixI64 dense = intGemm(w_codes, x_codes);
    setParallelThreads(1);
    LegacyStats base;
    MatrixI64 ref = legacyBitsliceGemm(ws, xs, 4, SibiaSkipSide::Auto,
                                       &base);
    EXPECT_TRUE(ref == dense);
    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {2, 4, 8}) {
            setParallelThreads(threads);
            LegacyStats st;
            MatrixI64 got = legacyBitsliceGemm(ws, xs, 4,
                                               SibiaSkipSide::Auto, &st);
            EXPECT_TRUE(got == ref) << "isa=" << toString(isa);
            EXPECT_EQ(st.executedOuterProducts,
                      base.executedOuterProducts);
            EXPECT_EQ(st.skippedOuterProducts,
                      base.skippedOuterProducts);
            EXPECT_EQ(st.mults, base.mults);
            EXPECT_DOUBLE_EQ(st.rhoW, base.rhoW);
            EXPECT_DOUBLE_EQ(st.rhoX, base.rhoX);
        }
    }
}

TEST(KernelParity, LegacyGemmBothSkipSidesMatchDenseAcrossIsaLevels)
{
    // Weight-side and activation-side skipping drive different masked
    // stream operands in the legacy kernel; both must stay exact.
    PoolGuard guard;
    IsaGuard isa_guard;
    Rng rng(1102);
    const std::size_t m = 16, kk = 24, n = 16;
    MatrixI32 w_codes = randomWeightCodes(rng, m, kk, 1, 0.7);
    MatrixI32 x_codes = randomWeightCodes(rng, kk, n, 1, 0.7);
    SlicedMatrix ws = sbrSliceMatrix(w_codes, 1);
    SlicedMatrix xs = sbrSliceMatrix(x_codes, 1);
    MatrixI64 dense = intGemm(w_codes, x_codes);

    for (SibiaSkipSide side :
         {SibiaSkipSide::Weight, SibiaSkipSide::Activation}) {
        for (IsaLevel isa : runnableIsaLevels()) {
            setIsaLevel(isa);
            MatrixI64 got = legacyBitsliceGemm(ws, xs, 4, side);
            EXPECT_TRUE(got == dense)
                << "side=" << static_cast<int>(side)
                << " isa=" << toString(isa);
        }
    }
}

} // namespace
} // namespace panacea
