/**
 * @file
 * Matrix container tests: indexing, rows/spans, fill, equality and
 * bounds checking.
 */

#include <gtest/gtest.h>

#include "util/matrix.h"

namespace panacea {
namespace {

TEST(Matrix, ConstructionAndIndexing)
{
    MatrixI32 m(3, 4, 7);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_FALSE(m.empty());
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(m(r, c), 7);

    m(1, 2) = 42;
    EXPECT_EQ(m.at(1, 2), 42);
    // Row-major layout: element (1,2) sits at offset 1*4+2.
    EXPECT_EQ(m.data()[6], 42);
}

TEST(Matrix, RowSpan)
{
    MatrixI32 m(2, 3);
    m(1, 0) = 10;
    m(1, 2) = 30;
    auto row = m.row(1);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], 10);
    EXPECT_EQ(row[2], 30);
    row[1] = 20;
    EXPECT_EQ(m(1, 1), 20);
}

TEST(Matrix, FillAndEquality)
{
    MatrixI32 a(2, 2, 1);
    MatrixI32 b(2, 2, 1);
    EXPECT_TRUE(a == b);
    b.fill(2);
    EXPECT_FALSE(a == b);
    MatrixI32 c(2, 3, 1);
    EXPECT_FALSE(a == c);
}

TEST(Matrix, EmptyDefault)
{
    MatrixF m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixDeath, AtChecksBounds)
{
    MatrixI32 m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of");
    EXPECT_DEATH(m.at(0, 5), "out of");
}

} // namespace
} // namespace panacea
