/**
 * @file
 * Tests for the shared thread pool: chunk partition determinism, full
 * range coverage, nested-call safety, resizing, and the env-independent
 * chunk-count contract that kernel reductions rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "pool_guard.h"
#include "util/parallel_for.h"

namespace panacea {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    PoolGuard guard;
    for (int threads : {1, 2, 3, 8}) {
        setParallelThreads(threads);
        std::vector<std::atomic<int>> hits(1000);
        parallelFor(0, hits.size(),
                    [&](std::size_t b, std::size_t e, int) {
                        for (std::size_t i = b; i < e; ++i)
                            hits[i].fetch_add(1);
                    });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                         << threads;
    }
}

TEST(ParallelFor, ChunkIndicesAreDenseAndOrdered)
{
    PoolGuard guard;
    setParallelThreads(4);
    const std::size_t items = 103;
    const int chunks = parallelChunkCount(items);
    EXPECT_EQ(chunks, 4);

    std::vector<std::pair<std::size_t, std::size_t>> ranges(
        static_cast<std::size_t>(chunks), {0, 0});
    parallelFor(0, items, [&](std::size_t b, std::size_t e, int c) {
        ranges[static_cast<std::size_t>(c)] = {b, e};
    });
    // Contiguous, ordered partition: chunk c ends where c+1 begins.
    EXPECT_EQ(ranges.front().first, 0u);
    EXPECT_EQ(ranges.back().second, items);
    for (int c = 0; c + 1 < chunks; ++c)
        EXPECT_EQ(ranges[static_cast<std::size_t>(c)].second,
                  ranges[static_cast<std::size_t>(c) + 1].first);
}

TEST(ParallelFor, PartitionDependsOnlyOnRangeAndThreads)
{
    PoolGuard guard;
    setParallelThreads(3);
    std::vector<std::size_t> first, second;
    auto record = [](std::vector<std::size_t> &sink) {
        return [&sink](std::size_t b, std::size_t e, int) {
            static std::mutex m;
            std::lock_guard<std::mutex> lock(m);
            sink.push_back(b);
            sink.push_back(e);
        };
    };
    parallelFor(0, 77, record(first));
    parallelFor(0, 77, record(second));
    std::sort(first.begin(), first.end());
    std::sort(second.begin(), second.end());
    EXPECT_EQ(first, second);
}

TEST(ParallelFor, SmallRangesRunInline)
{
    PoolGuard guard;
    setParallelThreads(8);
    EXPECT_EQ(parallelChunkCount(1), 1);
    int calls = 0;
    parallelFor(0, 1, [&](std::size_t b, std::size_t e, int c) {
        ++calls;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1u);
        EXPECT_EQ(c, 0);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    int calls = 0;
    parallelFor(5, 5, [&](std::size_t, std::size_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    PoolGuard guard;
    setParallelThreads(4);
    std::atomic<int> total{0};
    parallelFor(0, 8, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) {
            // A nested parallelFor must not fan out again (and must not
            // deadlock); it runs inline as a single chunk.
            parallelFor(0, 10, [&](std::size_t nb, std::size_t ne,
                                   int nc) {
                EXPECT_EQ(nc, 0);
                total.fetch_add(static_cast<int>(ne - nb));
            });
        }
    });
    EXPECT_EQ(total.load(), 80);
}

TEST(ParallelFor, SingleChunkTopLevelDoesNotStarveNestedParallelism)
{
    PoolGuard guard;
    setParallelThreads(4);
    // A top-level call that spans one chunk (e.g. a single-layer sweep)
    // runs inline but must NOT be treated as a pool worker: parallelism
    // nested beneath it still fans out.
    int nested_chunks = 0;
    std::atomic<int> covered{0};
    parallelFor(0, 1, [&](std::size_t, std::size_t, int) {
        nested_chunks = parallelChunkCount(100);
        parallelFor(0, 100, [&](std::size_t b, std::size_t e, int) {
            covered.fetch_add(static_cast<int>(e - b));
        });
    });
    EXPECT_EQ(nested_chunks, 4);
    EXPECT_EQ(covered.load(), 100);
}

TEST(ParallelFor, ResizeIsEffective)
{
    PoolGuard guard;
    setParallelThreads(2);
    EXPECT_EQ(parallelThreads(), 2);
    setParallelThreads(5);
    EXPECT_EQ(parallelThreads(), 5);
    EXPECT_EQ(parallelChunkCount(100), 5);
}

TEST(ParallelFor, IsolatedPoolWorks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3);
    std::vector<int> data(300, 0);
    pool.parallelFor(0, data.size(),
                     [&](std::size_t b, std::size_t e, int) {
                         for (std::size_t i = b; i < e; ++i)
                             data[i] = static_cast<int>(i);
                     });
    long long sum = std::accumulate(data.begin(), data.end(), 0LL);
    EXPECT_EQ(sum, 299LL * 300 / 2);
}

} // namespace
} // namespace panacea
