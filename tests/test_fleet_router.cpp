/**
 * @file
 * Property and determinism tests for the fleet tier
 * (serve/fleet.h ReplicaRouter through the panacea::Fleet facade).
 * The invariants under test:
 *
 *   1. Exactly-once: every submission yields exactly one terminal
 *      FleetResult - Completed xor Rejected - across overload
 *      schedules, replica counts and concurrent submitters. Futures
 *      never throw and never dangle.
 *   2. Bit-exactness: a Completed request's output and stats are
 *      byte-identical to a solo single-engine run, whatever replica
 *      served it and whatever else was in flight.
 *   3. Pinned dispatch: on a paused router the placement schedule is
 *      a pure function of the submission sequence - replicated here
 *      by an independent reference simulator of the
 *      least-outstanding-columns rule, and hand-pinned for one case.
 *   4. Typed backpressure: admission failures (queue bounds, unknown
 *      names, malformed inputs) reject with a reason, immediately.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "isa_guard.h"
#include "panacea/fleet.h"
#include "panacea/runtime.h"
#include "panacea/session.h"
#include "pool_guard.h"
#include "util/cpu_features.h"
#include "util/fnv.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

/** Same three-layer toy stack the engine tests use. */
ModelSpec
tinySpec(const std::string &name = "fleet-test-tiny")
{
    ModelSpec spec;
    spec.name = name;
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12;
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

std::vector<MatrixF>
makeRequests(std::size_t features, std::size_t count,
             std::uint64_t seed = 0xbeef)
{
    Rng rng(seed);
    std::vector<MatrixF> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        MatrixF x(features, (i % 3 == 0) ? 8 : 4);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }
    return inputs;
}

/** Solo references: each input through a window-1 session alone. */
std::vector<InferenceResult>
soloRun(Runtime &rt, const CompiledModel &model,
        const std::vector<MatrixF> &inputs)
{
    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    Session session = rt.createSession(opts);
    std::vector<InferenceResult> out;
    out.reserve(inputs.size());
    for (const MatrixF &x : inputs)
        out.push_back(session.infer(model, x));
    return out;
}

/**
 * Independent model of the router's admission rule for full-width
 * placement: least outstanding columns among replicas that can take
 * `cols` under the cap, ties to the lowest index, -1 = shed. Valid
 * while nothing completes (a paused router), which is exactly how the
 * pinned-dispatch tests run it.
 */
struct SimRouter
{
    std::vector<std::size_t> outstanding;
    std::size_t cap;

    SimRouter(int replicas, std::size_t cap_cols)
        : outstanding(static_cast<std::size_t>(replicas), 0),
          cap(cap_cols)
    {}

    int submit(std::size_t cols)
    {
        int best = -1;
        std::size_t best_out = 0;
        for (int r = 0; r < static_cast<int>(outstanding.size());
             ++r) {
            const std::size_t out =
                outstanding[static_cast<std::size_t>(r)];
            if (out + cols > cap)
                continue;
            if (best < 0 || out < best_out) {
                best = r;
                best_out = out;
            }
        }
        if (best >= 0)
            outstanding[static_cast<std::size_t>(best)] += cols;
        return best;
    }
};

TEST(FleetRouter, PinnedDispatchForAFixedSubmissionSequence)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-pinned");
    const CompiledModel model = rt.compile(spec);

    // Two replicas, 12-column bound, six 4-column submissions: the
    // least-outstanding rule alternates 0,1,0,1,0,1 (ties break to
    // the lowest index), filling both replicas to the bound; the
    // seventh and eighth shed. Hand-pinned - if dispatch ever changes,
    // this fails before the property tests do.
    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.queueCapColumns = 12;
    fopts.startPaused = true;
    fopts.engine.workers = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model);

    MatrixF x(model.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.25f;
    std::vector<std::future<FleetResult>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(fleet.submit(spec.name, x));
    fleet.start();
    fleet.drain();

    const int expect_replica[8] = {0, 1, 0, 1, 0, 1, -1, -1};
    for (int i = 0; i < 8; ++i) {
        FleetResult r = futs[i].get();
        if (expect_replica[i] < 0) {
            EXPECT_EQ(r.outcome, FleetOutcome::Rejected)
                << "submission " << i;
            EXPECT_NE(r.rejectReason.find("queue full"),
                      std::string::npos)
                << r.rejectReason;
        } else {
            ASSERT_EQ(r.outcome, FleetOutcome::Completed)
                << "submission " << i << ": " << r.rejectReason;
            EXPECT_EQ(r.replica, expect_replica[i])
                << "submission " << i;
            EXPECT_EQ(r.dispatches, 1);
        }
    }
    const FleetStats s = fleet.stats();
    EXPECT_EQ(s.submitted, 8u);
    EXPECT_EQ(s.completed, 6u);
    EXPECT_EQ(s.rejected, 2u);
    EXPECT_EQ(s.redispatched, 0u);
}

TEST(FleetRouter, DispatchMatchesReferenceSimulatorAcrossSeeds)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-sim");
    const CompiledModel model = rt.compile(spec);
    const std::vector<MatrixF> pool =
        makeRequests(model.inputFeatures(), 8);
    const std::vector<InferenceResult> solo = soloRun(rt, model, pool);

    for (int replicas : {1, 2, 3}) {
        for (std::uint64_t seed : {0x11ull, 0x22ull, 0x33ull}) {
            FleetOptions fopts;
            fopts.replicas = replicas;
            fopts.queueCapColumns = 16;
            fopts.startPaused = true;
            fopts.engine.workers = 1;
            Fleet fleet = rt.createFleet(fopts);
            fleet.deploy(model);
            SimRouter sim(replicas, fopts.queueCapColumns);

            // A seeded random overload schedule: enough submissions
            // to overflow every replica several times over.
            Rng rng(seed);
            std::vector<std::size_t> picks;
            std::vector<int> expect;
            std::vector<std::future<FleetResult>> futs;
            for (int i = 0; i < 24; ++i) {
                const std::size_t idx = static_cast<std::size_t>(
                    rng.uniformReal(0.0, 1.0) *
                    static_cast<double>(pool.size()));
                const std::size_t pick =
                    idx < pool.size() ? idx : pool.size() - 1;
                picks.push_back(pick);
                expect.push_back(sim.submit(pool[pick].cols()));
                futs.push_back(fleet.submit(spec.name, pool[pick]));
            }
            fleet.start();
            fleet.drain();

            std::uint64_t completed = 0;
            std::uint64_t rejected = 0;
            for (std::size_t i = 0; i < futs.size(); ++i) {
                FleetResult r = futs[i].get();
                if (expect[i] < 0) {
                    EXPECT_EQ(r.outcome, FleetOutcome::Rejected)
                        << "replicas=" << replicas << " seed=" << seed
                        << " i=" << i;
                    ++rejected;
                } else {
                    ASSERT_EQ(r.outcome, FleetOutcome::Completed)
                        << "replicas=" << replicas << " seed=" << seed
                        << " i=" << i << ": " << r.rejectReason;
                    EXPECT_EQ(r.replica, expect[i])
                        << "replicas=" << replicas << " seed=" << seed
                        << " i=" << i;
                    // Bit-exact vs the solo run of the same input.
                    EXPECT_TRUE(r.result.output ==
                                solo[picks[i]].output);
                    ++completed;
                }
            }
            // Exactly one terminal result each, reflected in stats.
            const FleetStats s = fleet.stats();
            EXPECT_EQ(s.submitted, futs.size());
            EXPECT_EQ(s.completed, completed);
            EXPECT_EQ(s.rejected, rejected);
            EXPECT_EQ(s.completed + s.rejected, s.submitted);
        }
    }
}

TEST(FleetRouter, OutputsAreBitExactAtEveryIsaLevel)
{
    PoolGuard pool_guard;
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-isa");
    const CompiledModel model = rt.compile(spec);
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 6);
    // Outputs are bit-identical across ISA levels repo-wide, so one
    // set of solo references serves every leg.
    const std::vector<InferenceResult> solo =
        soloRun(rt, model, inputs);

    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        FleetOptions fopts;
        fopts.replicas = 2;
        fopts.engine.workers = 1;
        Fleet fleet = rt.createFleet(fopts);
        fleet.deploy(model);
        std::vector<std::future<FleetResult>> futs;
        for (const MatrixF &x : inputs)
            futs.push_back(fleet.submit(spec.name, x));
        fleet.drain();
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            FleetResult r = futs[i].get();
            ASSERT_EQ(r.outcome, FleetOutcome::Completed)
                << "isa=" << toString(isa) << " i=" << i;
            EXPECT_TRUE(r.result.output == solo[i].output)
                << "isa=" << toString(isa) << " i=" << i;
        }
    }
}

TEST(FleetRouter, ConcurrentSubmittersGetExactlyOneTerminalEach)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-stress");
    const CompiledModel model = rt.compile(spec);
    const std::vector<MatrixF> pool =
        makeRequests(model.inputFeatures(), 8);
    const std::vector<InferenceResult> solo = soloRun(rt, model, pool);

    // Live (unpaused) router with tight bounds so the submitters
    // genuinely race dispatch, harvest and shed decisions.
    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.queueCapColumns = 16;
    fopts.engineDepthColumns = 8;
    fopts.engine.workers = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model);

    constexpr int kPerThread = 40;
    constexpr int kThreads = 2;
    std::vector<std::vector<std::size_t>> picks(kThreads);
    std::vector<std::vector<std::future<FleetResult>>> futs(kThreads);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            Rng rng(0x5eed + static_cast<std::uint64_t>(t));
            for (int i = 0; i < kPerThread; ++i) {
                const std::size_t idx = static_cast<std::size_t>(
                    rng.uniformReal(0.0, 1.0) *
                    static_cast<double>(pool.size()));
                const std::size_t pick =
                    idx < pool.size() ? idx : pool.size() - 1;
                picks[t].push_back(pick);
                futs[t].push_back(
                    fleet.submit(spec.name, pool[pick]));
            }
        });
    }
    for (std::thread &s : submitters)
        s.join();
    fleet.drain();

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    for (int t = 0; t < kThreads; ++t) {
        for (std::size_t i = 0; i < futs[t].size(); ++i) {
            FleetResult r = futs[t][i].get(); // never throws
            if (r.outcome == FleetOutcome::Completed) {
                EXPECT_TRUE(r.result.output ==
                            solo[picks[t][i]].output)
                    << "thread " << t << " req " << i;
                ++completed;
            } else {
                EXPECT_FALSE(r.rejectReason.empty());
                ++rejected;
            }
        }
    }
    const FleetStats s = fleet.stats();
    EXPECT_EQ(s.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(s.completed, completed);
    EXPECT_EQ(s.rejected, rejected);
    EXPECT_EQ(s.completed + s.rejected, s.submitted);
}

TEST(FleetRouter, AdmissionFailuresRejectTypedAndImmediately)
{
    Runtime rt;
    const ModelSpec spec = tinySpec("fleet-reject");
    const CompiledModel model = rt.compile(spec);
    FleetOptions fopts;
    fopts.replicas = 1;
    fopts.engine.workers = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model);

    // Unknown name.
    FleetResult unknown =
        fleet.submit("no-such-model", MatrixF(24, 4)).get();
    EXPECT_EQ(unknown.outcome, FleetOutcome::Rejected);
    EXPECT_NE(unknown.rejectReason.find("unknown model"),
              std::string::npos);

    // Malformed: wrong rows, then a non-multiple-of-v column count.
    FleetResult bad_rows =
        fleet.submit(spec.name,
                     MatrixF(model.inputFeatures() + 1, 4))
            .get();
    EXPECT_EQ(bad_rows.outcome, FleetOutcome::Rejected);
    EXPECT_NE(bad_rows.rejectReason.find("malformed"),
              std::string::npos);
    FleetResult bad_cols =
        fleet.submit(spec.name, MatrixF(model.inputFeatures(), 3))
            .get();
    EXPECT_EQ(bad_cols.outcome, FleetOutcome::Rejected);

    // The fleet keeps serving after every rejection.
    MatrixF x(model.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.25f;
    FleetResult ok = fleet.submit(spec.name, x).get();
    EXPECT_EQ(ok.outcome, FleetOutcome::Completed);
    EXPECT_EQ(fleet.stats().rejected, 3u);
}

TEST(FleetRouter, PlacementWidthIsolatesModels)
{
    Runtime rt;
    const ModelSpec spec_a = tinySpec("fleet-place-a");
    const int home_a = static_cast<int>(
        fnv1a64(spec_a.name.data(), spec_a.name.size()) % 2);
    // Pick B's name so the two models hash to DIFFERENT home
    // replicas (the shared fnv1a64 is the router's placement hash).
    ModelSpec spec_b = tinySpec("fleet-place-b");
    int home_b = home_a;
    for (int i = 0; home_b == home_a; ++i) {
        spec_b = tinySpec("fleet-place-b" + std::to_string(i));
        home_b = static_cast<int>(
            fnv1a64(spec_b.name.data(), spec_b.name.size()) % 2);
    }
    const CompiledModel model_a = rt.compile(spec_a);
    const CompiledModel model_b = rt.compile(spec_b);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.placementWidth = 1;
    fopts.queueCapColumns = 8;
    fopts.startPaused = true;
    fopts.engine.workers = 1;
    Fleet fleet = rt.createFleet(fopts);
    fleet.deploy(model_a);
    fleet.deploy(model_b);

    MatrixF x(model_a.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.25f;
    // Fill A's home replica to its bound (2 x 4 cols), then overflow:
    // the overflow sheds even though the OTHER replica is idle -
    // that's the isolation contract.
    std::vector<std::future<FleetResult>> a_futs;
    for (int i = 0; i < 3; ++i)
        a_futs.push_back(fleet.submit(spec_a.name, x));
    auto b_fut = fleet.submit(spec_b.name, x);
    fleet.start();
    fleet.drain();

    for (int i = 0; i < 2; ++i) {
        FleetResult r = a_futs[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, FleetOutcome::Completed);
        EXPECT_EQ(r.replica, home_a);
    }
    FleetResult overflow = a_futs[2].get();
    EXPECT_EQ(overflow.outcome, FleetOutcome::Rejected);
    FleetResult rb = b_fut.get();
    ASSERT_EQ(rb.outcome, FleetOutcome::Completed);
    EXPECT_EQ(rb.replica, home_b);
}

} // namespace
} // namespace panacea
