/**
 * @file
 * Deterministic RNG tests: reproducibility, independent forks and
 * distribution sanity (all experiments depend on seeded determinism).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"
#include "util/stats.h"

namespace panacea {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30);
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(7);
    Rng child = parent.fork();
    // The child stream differs from the parent's continued stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.uniformInt(0, 1 << 30) ==
                child.uniformInt(0, 1 << 30);
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBoundsInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(10);
    std::vector<float> s(200000);
    for (auto &v : s)
        v = static_cast<float>(rng.gaussian(-1.0, 3.0));
    SampleStats st = computeStats(s);
    EXPECT_NEAR(st.mean, -1.0, 0.05);
    EXPECT_NEAR(st.stddev, 3.0, 0.05);
}

TEST(Rng, LaplaceHeavierTailsThanGaussian)
{
    Rng rng(11);
    std::size_t gauss_tail = 0;
    std::size_t laplace_tail = 0;
    const double threshold = 4.0;
    for (int i = 0; i < 200000; ++i) {
        if (std::abs(rng.gaussian(0.0, 1.0)) > threshold)
            ++gauss_tail;
        // Laplace scale 1/sqrt(2) matches unit variance.
        if (std::abs(rng.laplace(0.0, 1.0 / std::sqrt(2.0))) > threshold)
            ++laplace_tail;
    }
    EXPECT_GT(laplace_tail, gauss_tail * 5);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(12);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

} // namespace
} // namespace panacea
