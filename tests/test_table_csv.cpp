/**
 * @file
 * Console-table and CSV-writer tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace panacea {
namespace {

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.newRow().cell("alpha").cell(std::int64_t{42});
    t.newRow().cell("b").cell(3.14159, 2);
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, FormattedCells)
{
    Table t({"a", "b", "c"});
    t.newRow().ratioCell(1.974).percentCell(0.613).cell(
        std::uint64_t{7});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("1.97x"), std::string::npos);
    EXPECT_NE(out.find("61.3%"), std::string::npos);
}

TEST(Table, Banner)
{
    std::ostringstream oss;
    printBanner(oss, "Figure 13");
    EXPECT_EQ(oss.str(), "\n== Figure 13 ==\n");
}

TEST(TableDeath, CellBeforeRow)
{
    Table t({"x"});
    EXPECT_DEATH(t.cell("oops"), "before newRow");
}

TEST(Csv, WritesAndEscapes)
{
    const std::string path = "/tmp/panacea_test_csv.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.writeRow({"plain", "with,comma"});
        csv.writeRow({"with\"quote", "multi\nline"});
        EXPECT_TRUE(csv.good());
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string content = ss.str();
    EXPECT_NE(content.find("a,b\n"), std::string::npos);
    EXPECT_NE(content.find("plain,\"with,comma\"\n"),
              std::string::npos);
    EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(CsvDeath, ColumnMismatch)
{
    const std::string path = "/tmp/panacea_test_csv2.csv";
    CsvWriter csv(path, {"a", "b"});
    EXPECT_DEATH(csv.writeRow({"only-one"}), "expected");
    std::remove(path.c_str());
}

} // namespace
} // namespace panacea
