/**
 * @file
 * Exactness and accounting tests for the AQS-GEMM engine - the central
 * invariant of the repository: compressing and skipping r-valued HO
 * slice-vectors plus the Eq. (6) compensation reproduces the plain
 * integer GEMM bit-for-bit, for every configuration.
 */

#include <gtest/gtest.h>

#include "core/aqs_gemm.h"
#include "quant/gemm_quant.h"
#include "quant/quantizer.h"
#include "quant/zpm.h"
#include "slicing/sbr.h"
#include "slicing/straightforward.h"
#include "util/random.h"

namespace panacea {
namespace {

/** Random signed codes for a (3n+4)-bit weight matrix. */
MatrixI32
randomWeightCodes(Rng &rng, std::size_t m, std::size_t k, int n,
                  double near_zero_bias = 0.5)
{
    const int bits = sbrBits(n);
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    const std::int32_t narrow = (1 << std::max(1, bits - 4)) - 1;
    MatrixI32 codes(m, k);
    for (auto &c : codes.data()) {
        // A biased mixture produces realistic HO-slice sparsity.
        if (rng.bernoulli(near_zero_bias))
            c = static_cast<std::int32_t>(rng.uniformInt(-narrow, narrow));
        else
            c = static_cast<std::int32_t>(rng.uniformInt(lo, hi));
    }
    return codes;
}

/** Random unsigned codes clustered near a zero point. */
MatrixI32
randomActivationCodes(Rng &rng, std::size_t k, std::size_t n, int bits,
                      std::int32_t zp, double cluster_bias = 0.6)
{
    const std::int32_t hi = (1 << bits) - 1;
    MatrixI32 codes(k, n);
    for (auto &c : codes.data()) {
        if (rng.bernoulli(cluster_bias)) {
            auto v = zp + rng.uniformInt(-6, 6);
            c = static_cast<std::int32_t>(std::clamp<std::int64_t>(
                v, 0, hi));
        } else {
            c = static_cast<std::int32_t>(rng.uniformInt(0, hi));
        }
    }
    return codes;
}

MatrixI64
referenceGemm(const MatrixI32 &w, const MatrixI32 &x)
{
    return intGemm(w, x);
}

TEST(AqsGemm, ExactOnDenseRandomCodes)
{
    Rng rng(11);
    MatrixI32 w = randomWeightCodes(rng, 16, 24, 1, 0.0);
    MatrixI32 x = randomActivationCodes(rng, 24, 8, 8, 130, 0.0);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, 130, cfg);
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg);
    EXPECT_TRUE(acc == referenceGemm(w, x));
}

TEST(AqsGemm, ExactWithHighSparsity)
{
    Rng rng(12);
    const std::int32_t zp = 136;
    MatrixI32 w = randomWeightCodes(rng, 32, 40, 1, 0.9);
    MatrixI32 x = randomActivationCodes(rng, 40, 16, 8, zp, 0.95);

    AqsConfig cfg;
    AqsStats stats;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg, &stats);
    EXPECT_TRUE(acc == referenceGemm(w, x));
    EXPECT_GT(stats.skippedOuterProducts, 0u);
    EXPECT_GT(stats.macReduction(), 0.2);
}

TEST(AqsGemm, ExactWithEq5Compensation)
{
    Rng rng(13);
    const std::int32_t zp = 136;
    MatrixI32 w = randomWeightCodes(rng, 16, 32, 1, 0.7);
    MatrixI32 x = randomActivationCodes(rng, 32, 8, 8, zp, 0.9);

    AqsConfig cfg;
    cfg.useEq6 = false;
    AqsStats stats;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg, &stats);
    EXPECT_TRUE(acc == referenceGemm(w, x));
    // Eq. (5) pays extra external traffic for the compensation loads.
    EXPECT_GT(stats.compExtraEmaNibbles, 0u);
}

TEST(AqsGemm, Exact4BitWeights)
{
    Rng rng(14);
    MatrixI32 w = randomWeightCodes(rng, 16, 20, 0, 0.5);
    MatrixI32 x = randomActivationCodes(rng, 20, 8, 8, 72, 0.8);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 0, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, 72, cfg);
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg);
    EXPECT_TRUE(acc == referenceGemm(w, x));
}

TEST(AqsGemm, Exact10BitWeights12BitActs)
{
    Rng rng(15);
    MatrixI32 w = randomWeightCodes(rng, 8, 16, 2, 0.6);
    MatrixI32 x = randomActivationCodes(rng, 16, 8, 12, 2048, 0.7);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 2, cfg);
    ActivationOperand x_op = prepareActivations(x, 2, 2048, cfg);
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg);
    EXPECT_TRUE(acc == referenceGemm(w, x));
}

TEST(AqsGemm, ExactUnderDbsSlicing)
{
    Rng rng(16);
    for (int lo_bits : {4, 5, 6}) {
        const std::int32_t zp = 136;
        ZpmResult zpm = manipulateZeroPoint(zp, 8, lo_bits);
        MatrixI32 w = randomWeightCodes(rng, 16, 24, 1, 0.6);
        MatrixI32 x = randomActivationCodes(rng, 24, 8, 8,
                                            zpm.zeroPoint, 0.8);

        AqsConfig cfg;
        WeightOperand w_op = prepareWeights(w, 1, cfg);
        ActivationOperand x_op = prepareActivationsDbs(
            x, lo_bits, static_cast<Slice>(zpm.frequentSlice), cfg);
        MatrixI64 acc = aqsGemm(w_op, x_op, cfg);

        // DBS discards the (l-4) LSBs: the result must equal the GEMM
        // over LSB-masked codes.
        MatrixI32 masked = x;
        for (auto &c : masked.data())
            c &= ~((1 << (lo_bits - 4)) - 1);
        EXPECT_TRUE(acc == referenceGemm(w, masked))
            << "DBS l=" << lo_bits;
    }
}

TEST(AqsGemm, ZeroOnlySkipIsExactWithoutCompensation)
{
    Rng rng(17);
    MatrixI32 w = randomWeightCodes(rng, 16, 24, 1, 0.7);
    // Cluster near zero so zero-only skipping has something to skip.
    MatrixI32 x = randomActivationCodes(rng, 24, 8, 8, 3, 0.9);

    AqsConfig cfg;
    cfg.actSkip = ActSkipMode::ZeroOnly;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, 3, cfg);
    AqsStats stats;
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg, &stats);
    EXPECT_TRUE(acc == referenceGemm(w, x));
    EXPECT_EQ(stats.compMults, 0u);
    EXPECT_EQ(stats.compAdds, 0u);
}

TEST(AqsGemm, NoneModeMatchesDenseCounts)
{
    Rng rng(18);
    MatrixI32 w = randomWeightCodes(rng, 16, 24, 1, 0.0);
    MatrixI32 x = randomActivationCodes(rng, 24, 8, 8, 130, 0.9);

    AqsConfig cfg;
    cfg.actSkip = ActSkipMode::None;
    cfg.skipWeightVectors = false;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, 130, cfg);
    AqsStats stats;
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg, &stats);
    EXPECT_TRUE(acc == referenceGemm(w, x));
    EXPECT_EQ(stats.executedOuterProducts, stats.denseOuterProducts);
    EXPECT_EQ(stats.skippedOuterProducts, 0u);
}

TEST(AqsGemm, StatsConservation)
{
    Rng rng(19);
    MatrixI32 w = randomWeightCodes(rng, 32, 48, 1, 0.8);
    MatrixI32 x = randomActivationCodes(rng, 48, 16, 8, 136, 0.85);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, 136, cfg);
    AqsStats stats;
    (void)aqsGemm(w_op, x_op, cfg, &stats);
    EXPECT_EQ(stats.executedOuterProducts + stats.skippedOuterProducts,
              stats.denseOuterProducts);
    EXPECT_EQ(stats.mults, stats.executedOuterProducts * 16);
    EXPECT_LE(stats.totalTrafficNibbles(),
              stats.denseNibbles + stats.denseNibbles / 2);
}

/** Parametrized sweep: exactness across the sparsity spectrum. */
class AqsGemmSparsitySweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(AqsGemmSparsitySweep, ExactEverywhere)
{
    const double w_bias = std::get<0>(GetParam());
    const double x_bias = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(w_bias * 100 + x_bias * 10000) + 7);

    const std::int32_t zp = 136;
    MatrixI32 w = randomWeightCodes(rng, 24, 36, 1, w_bias);
    MatrixI32 x = randomActivationCodes(rng, 36, 12, 8, zp, x_bias);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
    AqsStats stats;
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg, &stats);
    EXPECT_TRUE(acc == referenceGemm(w, x));
    EXPECT_EQ(stats.executedOuterProducts + stats.skippedOuterProducts,
              stats.denseOuterProducts);
}

INSTANTIATE_TEST_SUITE_P(
    SparsityGrid, AqsGemmSparsitySweep,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 0.95),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.95)));

/** Exactness for every r value the zero point can produce. */
class AqsGemmZeroPointSweep : public ::testing::TestWithParam<int>
{};

TEST_P(AqsGemmZeroPointSweep, ExactForEveryZeroPoint)
{
    const std::int32_t zp = GetParam();
    Rng rng(static_cast<std::uint64_t>(zp) + 101);
    MatrixI32 w = randomWeightCodes(rng, 16, 20, 1, 0.5);
    MatrixI32 x = randomActivationCodes(rng, 20, 8, 8, zp, 0.8);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
    MatrixI64 acc = aqsGemm(w_op, x_op, cfg);
    EXPECT_TRUE(acc == referenceGemm(w, x));
}

INSTANTIATE_TEST_SUITE_P(ZeroPoints, AqsGemmZeroPointSweep,
                         ::testing::Values(0, 8, 16, 40, 88, 100, 128,
                                           136, 161, 200, 248, 255));

} // namespace
} // namespace panacea
