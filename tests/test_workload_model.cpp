/**
 * @file
 * Table I validation: the closed-form workload model must match the
 * counted functional engines when operands are constructed with exact
 * vector sparsities.
 */

#include <gtest/gtest.h>

#include "core/aqs_gemm.h"
#include "core/legacy_gemm.h"
#include "core/workload_model.h"
#include "slicing/slice_tensor.h"
#include "util/random.h"

namespace panacea {
namespace {

/**
 * Construct a 4 x K weight whose HO vector sparsity is exactly
 * |zero_cols| / k (the single row-band groups whole columns).
 * The compressed column set is passed explicitly so weight and
 * activation compression can be decorrelated exactly (Table I's closed
 * forms assume independent sparsities).
 */
MatrixI32
weightWithCompressedColumns(Rng &rng, std::size_t k,
                            const std::vector<bool> &compressed)
{
    MatrixI32 w(4, k);
    for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t r = 0; r < 4; ++r) {
            if (compressed[c]) {
                // HO slice zero: |w| <= 7 keeps the SBR HO slice clear.
                w(r, c) = static_cast<std::int32_t>(rng.uniformInt(-8, 7));
            } else {
                // Force a nonzero HO slice.
                bool neg = rng.bernoulli(0.5);
                w(r, c) = static_cast<std::int32_t>(
                    neg ? rng.uniformInt(-64, -10)
                        : rng.uniformInt(9, 63));
            }
        }
    }
    return w;
}

/**
 * First-rho fraction of a set marked true (prefix selection keeps the
 * counts exact for the rho grid used below).
 */
std::vector<bool>
prefixSet(std::size_t k, double rho)
{
    std::vector<bool> set(k, false);
    auto count = static_cast<std::size_t>(
        std::llround(rho * static_cast<double>(k)));
    for (std::size_t i = 0; i < count; ++i)
        set[i] = true;
    return set;
}

/**
 * A compressed set of exact size rho_x*k whose overlap with `other` is
 * exactly rho_x * |other| - making the two masks statistically
 * independent, as Table I's product form assumes. Requires the rho grid
 * to produce integer counts (K = 400 below does).
 */
std::vector<bool>
independentSet(std::size_t k, double rho_x,
               const std::vector<bool> &other)
{
    std::size_t other_count = 0;
    for (bool b : other)
        other_count += b ? 1 : 0;
    auto in_other = static_cast<std::size_t>(
        std::llround(rho_x * static_cast<double>(other_count)));
    auto out_other = static_cast<std::size_t>(
        std::llround(rho_x * static_cast<double>(k - other_count)));

    std::vector<bool> set(k, false);
    std::size_t taken_in = 0;
    std::size_t taken_out = 0;
    for (std::size_t i = 0; i < k; ++i) {
        if (other[i] && taken_in < in_other) {
            set[i] = true;
            ++taken_in;
        } else if (!other[i] && taken_out < out_other) {
            set[i] = true;
            ++taken_out;
        }
    }
    return set;
}

/** Construct a K x 4 activation with the given r-valued vector set. */
MatrixI32
activationWithCompressedRows(Rng &rng, std::size_t k,
                             const std::vector<bool> &compressed,
                             std::int32_t zp)
{
    const std::int32_t r_slice = zp >> 4;
    MatrixI32 x(k, 4);
    for (std::size_t row = 0; row < k; ++row) {
        for (std::size_t col = 0; col < 4; ++col) {
            if (compressed[row]) {
                x(row, col) = (r_slice << 4) +
                              static_cast<std::int32_t>(
                                  rng.uniformInt(0, 15));
            } else {
                std::int32_t other;
                do {
                    other = static_cast<std::int32_t>(
                        rng.uniformInt(0, 255));
                } while ((other >> 4) == r_slice);
                x(row, col) = other;
            }
        }
    }
    return x;
}

class TableOneSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(TableOneSweep, PanaceaCountsMatchClosedForm)
{
    const double rho_w = std::get<0>(GetParam());
    const double rho_x = std::get<1>(GetParam());
    const std::size_t k = 400;
    const std::int32_t zp = 136;
    Rng rng(77);

    std::vector<bool> w_set = prefixSet(k, rho_w);
    std::vector<bool> x_set = independentSet(k, rho_x, w_set);
    MatrixI32 w = weightWithCompressedColumns(rng, k, w_set);
    MatrixI32 x = activationWithCompressedRows(rng, k, x_set, zp);

    AqsConfig cfg;
    // Table I idealizes away the RLE skip budget; 16-bit indices make
    // runs of any length compressible (the 4-bit-budget behaviour is
    // covered by the RLE tests).
    cfg.rleIndexBits = 16;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);

    // The construction must hit the target sparsities exactly.
    double rho_w_measured = 0.0;
    for (auto m : w_op.hoMask.data())
        rho_w_measured += m;
    rho_w_measured /= static_cast<double>(w_op.hoMask.size());
    ASSERT_NEAR(rho_w_measured, rho_w, 1e-9);

    AqsStats stats;
    (void)aqsGemm(w_op, x_op, cfg, &stats);

    WorkloadCounts bs = panaceaBitsliceWorkload(k, rho_w, rho_x);
    WorkloadCounts cs = compensationWorkload(k, rho_x, /*eq6=*/true);
    EXPECT_DOUBLE_EQ(static_cast<double>(stats.mults), bs.mults);
    EXPECT_DOUBLE_EQ(static_cast<double>(stats.adds), bs.adds);
    EXPECT_DOUBLE_EQ(static_cast<double>(stats.compMults), cs.mults);
    EXPECT_DOUBLE_EQ(static_cast<double>(stats.compAdds), cs.adds);
    // EMA without RLE index overhead matches 4K(4 - rho_w - rho_x).
    EXPECT_DOUBLE_EQ(
        static_cast<double>(stats.wNibbles + stats.xNibbles),
        bs.emaNibbles);
}

TEST_P(TableOneSweep, SibiaCountsMatchClosedForm)
{
    const double rho_w = std::get<0>(GetParam());
    const double rho_x = std::get<1>(GetParam());
    const std::size_t k = 400;
    Rng rng(78);

    // Sibia: symmetric both sides; reuse the weight construction for
    // activations (transposed shape). Sibia's max(rho) form does not
    // depend on mask correlation, so prefix sets suffice.
    MatrixI32 w =
        weightWithCompressedColumns(rng, k, prefixSet(k, rho_w));
    MatrixI32 xw =
        weightWithCompressedColumns(rng, k, prefixSet(k, rho_x));
    MatrixI32 x(k, 4);
    for (std::size_t r = 0; r < k; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            x(r, c) = xw(c, r);

    SlicedMatrix ws = sbrSliceMatrix(w, 1);
    SlicedMatrix xs = sbrSliceMatrix(x, 1);
    LegacyStats stats;
    (void)legacyBitsliceGemm(ws, xs, 4, SibiaSkipSide::Auto, &stats);

    ASSERT_NEAR(stats.rhoW, rho_w, 1e-9);
    ASSERT_NEAR(stats.rhoX, rho_x, 1e-9);
    WorkloadCounts wl = sibiaWorkload(k, rho_w, rho_x);
    EXPECT_DOUBLE_EQ(static_cast<double>(stats.mults), wl.mults);
    EXPECT_DOUBLE_EQ(static_cast<double>(stats.emaNibbles),
                     wl.emaNibbles);
}

INSTANTIATE_TEST_SUITE_P(
    RhoGrid, TableOneSweep,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.8, 1.0),
                       ::testing::Values(0.0, 0.25, 0.5, 0.8, 1.0)));

TEST(WorkloadModel, CompensationTransitionEq5ToEq6)
{
    // Eq. (6) eliminates the EMA overhead of Eq. (5) entirely and swaps
    // the add count from rho_x to (1 - rho_x).
    WorkloadCounts eq5 = compensationWorkload(100, 0.8, false);
    WorkloadCounts eq6 = compensationWorkload(100, 0.8, true);
    EXPECT_DOUBLE_EQ(eq5.emaNibbles, 8.0 * 100 * 0.8);
    EXPECT_DOUBLE_EQ(eq6.emaNibbles, 0.0);
    EXPECT_DOUBLE_EQ(eq5.adds, 8.0 * 100 * 0.8);
    EXPECT_DOUBLE_EQ(eq6.adds, 8.0 * 100 * 0.2);
    EXPECT_DOUBLE_EQ(eq5.mults, 16.0);
    EXPECT_DOUBLE_EQ(eq6.mults, 16.0);
}

TEST(WorkloadModel, PanaceaBeatsSibiaWhenBothSparse)
{
    // With both sparsities high, exploiting both multiplicatively beats
    // exploiting one: 16K(2-rho)^2 < 32K(2-rho) for rho > 0.
    for (double rho : {0.2, 0.5, 0.9}) {
        WorkloadCounts p = panaceaTotalWorkload(1000, rho, rho, true);
        WorkloadCounts s = sibiaWorkload(1000, rho, rho);
        EXPECT_LT(p.mults, s.mults) << "rho " << rho;
    }
}

TEST(WorkloadModelDeath, RejectsBadRho)
{
    EXPECT_DEATH(sibiaWorkload(10, -0.1, 0.5), "out of");
    EXPECT_DEATH(panaceaBitsliceWorkload(10, 0.5, 1.5), "out of");
}

} // namespace
} // namespace panacea
