/**
 * @file
 * Shared test helper for sweeping the ISA axis: an RAII guard that
 * drops any setIsaLevel() override on scope exit. The level list comes
 * from runnableIsaLevels() in util/cpu_features.h.
 */

#ifndef PANACEA_TESTS_ISA_GUARD_H
#define PANACEA_TESTS_ISA_GUARD_H

#include "util/cpu_features.h"

namespace panacea {

class IsaGuard
{
  public:
    IsaGuard() = default;
    ~IsaGuard() { resetIsaLevel(); }

    IsaGuard(const IsaGuard &) = delete;
    IsaGuard &operator=(const IsaGuard &) = delete;
};

} // namespace panacea

#endif // PANACEA_TESTS_ISA_GUARD_H
