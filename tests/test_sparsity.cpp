/**
 * @file
 * Sparsity analytics tests: slice-level and vector-level measures on
 * hand-constructed planes.
 */

#include <gtest/gtest.h>

#include "slicing/sparsity.h"

namespace panacea {
namespace {

TEST(Sparsity, SliceSparsityCounts)
{
    Matrix<Slice> plane(4, 4, 0);
    plane(0, 0) = 3;
    plane(1, 1) = 3;
    EXPECT_DOUBLE_EQ(sliceSparsity(plane, 0), 14.0 / 16.0);
    EXPECT_DOUBLE_EQ(sliceSparsity(plane, 3), 2.0 / 16.0);
}

TEST(Sparsity, WeightVectorMaskGroupsRows)
{
    Matrix<Slice> plane(8, 2, 0);
    plane(5, 0) = 1;  // poisons band 1, column 0
    MatrixU8 mask = weightVectorMask(plane, 4);
    ASSERT_EQ(mask.rows(), 2u);
    ASSERT_EQ(mask.cols(), 2u);
    EXPECT_EQ(mask(0, 0), 1);
    EXPECT_EQ(mask(0, 1), 1);
    EXPECT_EQ(mask(1, 0), 0);
    EXPECT_EQ(mask(1, 1), 1);
    EXPECT_DOUBLE_EQ(maskDensityOfOnes(mask), 3.0 / 4.0);
}

TEST(Sparsity, ActivationVectorMaskGroupsCols)
{
    Matrix<Slice> plane(2, 8, 9);
    plane(0, 6) = 2;  // poisons row 0, band 1
    MatrixU8 mask = activationVectorMask(plane, 4, 9);
    ASSERT_EQ(mask.rows(), 2u);
    ASSERT_EQ(mask.cols(), 2u);
    EXPECT_EQ(mask(0, 0), 1);
    EXPECT_EQ(mask(0, 1), 0);
    EXPECT_EQ(mask(1, 0), 1);
    EXPECT_EQ(mask(1, 1), 1);
}

TEST(Sparsity, VectorLevelNeverExceedsSliceLevel)
{
    // Grouping can only lose sparsity: a compressed vector needs all v
    // slices at the fill value.
    Matrix<Slice> plane(8, 8);
    int counter = 0;
    for (auto &s : plane.data())
        s = static_cast<Slice>((counter++ % 3 == 0) ? 0 : 1);
    SparsityReport rep = analyzeWeightHo(plane, 4);
    EXPECT_LE(rep.vectorLevel, rep.sliceLevel);
}

TEST(Sparsity, Reports)
{
    Matrix<Slice> plane(4, 4, 0);
    SparsityReport rep = analyzeWeightHo(plane, 4);
    EXPECT_DOUBLE_EQ(rep.sliceLevel, 1.0);
    EXPECT_DOUBLE_EQ(rep.vectorLevel, 1.0);

    Matrix<Slice> act(4, 4, 7);
    SparsityReport arep = analyzeActivationHo(act, 4, 7);
    EXPECT_DOUBLE_EQ(arep.sliceLevel, 1.0);
    EXPECT_DOUBLE_EQ(arep.vectorLevel, 1.0);
}

TEST(SparsityDeath, RequiresDivisibleDims)
{
    Matrix<Slice> plane(6, 4, 0);
    EXPECT_DEATH(weightVectorMask(plane, 4), "not divisible");
    Matrix<Slice> act(4, 6, 0);
    EXPECT_DEATH(activationVectorMask(act, 4, 0), "not divisible");
}

} // namespace
} // namespace panacea
