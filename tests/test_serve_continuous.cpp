/**
 * @file
 * Continuous-batching (layer-stepped admission) tests.
 *
 * The contract under test: whatever layer a request is admitted at,
 * its output bytes and AqsStats are bit-identical to a solo run - for
 * any submission order, arrival timing, worker count, batch window,
 * ISA level and pool width. The deterministic splice matrix drives
 * ServedModel::forwardPreparedStep directly at EVERY admission layer;
 * the engine tests pin a deterministic continuous schedule
 * (paused-start, one worker) and stress timing-dependent admission.
 * Continuous=false must preserve the pinned layer-0 batchSeq
 * schedules exactly (the PR-4 fairness contract).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <numeric>
#include <vector>

#include "isa_guard.h"
#include "panacea/runtime.h"
#include "panacea/session.h"
#include "pool_guard.h"
#include "serve/served_model.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

/** Three layers, distinct distributions, one feature-width bend. */
ModelSpec
tinySpec(const std::string &name = "cont-test-tiny")
{
    ModelSpec spec;
    spec.name = name;
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12; // mismatched on purpose: exercises adaptFeatures
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

std::vector<MatrixF>
makeRequests(std::size_t features, std::size_t count)
{
    Rng rng(0xcafe);
    std::vector<MatrixF> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        MatrixF x(features, (i % 3 == 0) ? 8 : 4);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }
    return inputs;
}

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.compMults, b.compMults);
    EXPECT_EQ(a.compAdds, b.compAdds);
    EXPECT_EQ(a.compExtraEmaNibbles, b.compExtraEmaNibbles);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
    EXPECT_EQ(a.wIndexBits, b.wIndexBits);
    EXPECT_EQ(a.xIndexBits, b.xIndexBits);
    EXPECT_EQ(a.denseNibbles, b.denseNibbles);
    EXPECT_DOUBLE_EQ(a.macsPerOuterProduct, b.macsPerOuterProduct);
}

/** Solo run of one request via the whole-stack path (the reference). */
serve::ServedModel::BatchResult
soloRun(const serve::ServedModel &sm, const MatrixF &input)
{
    const std::size_t uv = static_cast<std::size_t>(sm.options().v);
    const std::size_t offsets[2] = {0, input.cols() / uv};
    return sm.runPrepared(sm.prepareInput(input), offsets);
}

/** Column-concat the per-request layer-0 preparations. */
ActivationOperand
prepConcat(const serve::ServedModel &sm,
           const std::vector<const MatrixF *> &inputs)
{
    std::vector<ActivationOperand> ops;
    ops.reserve(inputs.size());
    for (const MatrixF *x : inputs)
        ops.push_back(sm.prepareInput(*x));
    if (ops.size() == 1)
        return std::move(ops.front());
    std::vector<const ActivationOperand *> ptrs;
    ptrs.reserve(ops.size());
    for (const ActivationOperand &o : ops)
        ptrs.push_back(&o);
    return concatActivationOperands(ptrs, sm.layer(0).config());
}

/**
 * The deterministic splice matrix: a two-request cohort advances layer
 * by layer; two newcomers catch up and are spliced in at
 * `admit_layer`. Every member's output columns and stats must equal
 * its solo run - the exact invariant the engine's continuous scheduler
 * relies on, pinned here without any timing dependence.
 */
void
runSpliceMatrix(const serve::ServedModel &sm,
                const std::vector<MatrixF> &inputs,
                std::size_t admit_layer)
{
    ASSERT_EQ(inputs.size(), 4u);
    const std::size_t uv = static_cast<std::size_t>(sm.options().v);
    const std::size_t layers = sm.layerCount();

    std::vector<std::size_t> offsets = {0, inputs[0].cols() / uv};
    offsets.push_back(offsets.back() + inputs[1].cols() / uv);
    std::vector<AqsStats> stats(4);

    ActivationOperand op = prepConcat(sm, {&inputs[0], &inputs[1]});
    std::size_t member_count = 2;
    MatrixF cur;
    for (std::size_t li = 0; li < layers; ++li) {
        if (li > 0) {
            op = sm.prepareStepInput(li, cur);
            if (li == admit_layer) {
                // Catch-up: the newcomers replay layers 0..li-1 as
                // their own mini-cohort, then splice by operand
                // concat - exactly what the engine does.
                std::vector<std::size_t> noffsets = {
                    0, inputs[2].cols() / uv};
                noffsets.push_back(noffsets.back() +
                                   inputs[3].cols() / uv);
                ActivationOperand nop =
                    prepConcat(sm, {&inputs[2], &inputs[3]});
                MatrixF ncur;
                for (std::size_t lj = 0; lj < li; ++lj) {
                    if (lj > 0)
                        nop = sm.prepareStepInput(lj, ncur);
                    serve::ServedModel::StepResult sr =
                        sm.forwardPreparedStep(lj, nop, noffsets);
                    stats[2] += sr.perRequest[0];
                    stats[3] += sr.perRequest[1];
                    ncur = std::move(sr.next);
                }
                nop = sm.prepareStepInput(li, ncur);
                const ActivationOperand *parts[2] = {&op, &nop};
                op = concatActivationOperands(parts,
                                              sm.layer(li).config());
                const std::size_t base = offsets.back();
                offsets.push_back(base + noffsets[1]);
                offsets.push_back(base + noffsets[2]);
                member_count = 4;
            }
        }
        serve::ServedModel::StepResult sr =
            sm.forwardPreparedStep(li, op, offsets);
        for (std::size_t r = 0; r < member_count; ++r)
            stats[r] += sr.perRequest[r];
        cur = std::move(sr.next);
    }
    ASSERT_EQ(member_count, 4u);

    for (std::size_t r = 0; r < 4; ++r) {
        const serve::ServedModel::BatchResult solo =
            soloRun(sm, inputs[r]);
        const std::size_t c0 = offsets[r] * uv;
        ASSERT_EQ(offsets[r + 1] * uv - c0, solo.output.cols())
            << "admit layer " << admit_layer << " member " << r;
        bool bytes_equal = solo.output.rows() == cur.rows();
        for (std::size_t row = 0; bytes_equal && row < cur.rows(); ++row)
            for (std::size_t c = 0; c < solo.output.cols(); ++c)
                if (cur(row, c0 + c) != solo.output(row, c)) {
                    bytes_equal = false;
                    break;
                }
        EXPECT_TRUE(bytes_equal)
            << "admit layer " << admit_layer << " member " << r;
        expectStatsEqual(stats[r], solo.perRequest[0]);
    }
}

TEST(ServeContinuous, SpliceIsBitExactAtEveryAdmissionLayer)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const serve::ServedModel &sm = *model.shared();
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 4);
    for (std::size_t admit = 1; admit < sm.layerCount(); ++admit)
        runSpliceMatrix(sm, inputs, admit);
}

/**
 * The layer-level single-call step must equal the scheduler's split
 * step (stats counted separately, GEMM + dequantize fused) bit for
 * bit at every layer.
 */
TEST(ServeContinuous, LayerStepConvenienceMatchesScheduledStep)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const serve::ServedModel &sm = *model.shared();
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 1);
    const std::size_t uv = static_cast<std::size_t>(sm.options().v);
    const std::size_t offsets[2] = {0, inputs[0].cols() / uv};

    MatrixF cur = inputs[0];
    for (std::size_t li = 0; li < sm.layerCount(); ++li) {
        const ActivationOperand op = sm.prepareStepInput(li, cur);
        AqsStats layer_stats;
        const MatrixF direct =
            sm.layer(li).forwardPreparedStep(op, &layer_stats);
        const serve::ServedModel::StepResult sr =
            sm.forwardPreparedStep(li, op, offsets);
        if (li + 1 < sm.layerCount()) {
            // The scheduler adapts for the next layer; compare before
            // adaptation via the same deterministic transform.
            const MatrixF adapted = serve::ServedModel::adaptFeatures(
                direct, sm.layer(li + 1).weights().sliced.cols());
            EXPECT_TRUE(sr.next == adapted) << "layer " << li;
        } else {
            EXPECT_TRUE(sr.next == direct) << "layer " << li;
        }
        expectStatsEqual(sr.perRequest[0], layer_stats);
        cur = sr.next;
    }
}

TEST(ServeContinuous, SpliceMatrixHoldsAcrossIsaLevelsAndPoolWidths)
{
    PoolGuard pool_guard;
    IsaGuard isa_guard;
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const serve::ServedModel &sm = *model.shared();
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 4);
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {1, 4}) {
            setParallelThreads(threads);
            for (std::size_t admit = 1; admit < sm.layerCount(); ++admit)
                runSpliceMatrix(sm, inputs, admit);
        }
    }
}

/**
 * Deterministic continuous schedule: paused start + ONE worker +
 * window 1 means the worker cuts request 0 alone as the cohort, and
 * every other queued request is admitted at layer 1 (the first
 * admission boundary) - a pure function of the submission sequence.
 */
TEST(ServeContinuous, PinnedAdmissionScheduleAndMetadata)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 4);

    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true;
    opts.continuous = true;
    Session session = rt.createSession(opts);

    std::vector<std::future<InferenceResult>> futures;
    for (const MatrixF &x : inputs)
        futures.push_back(session.submit(model, x));
    session.start();

    // Solo reference.
    SessionOptions solo_opts;
    solo_opts.batchWindow = 1;
    solo_opts.batchDeadlineMs = 0.0;
    solo_opts.workers = 1;
    Session solo_session = rt.createSession(solo_opts);

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const InferenceResult got = futures[i].get();
        EXPECT_EQ(got.batchSeq, 0u) << "request " << i;
        EXPECT_EQ(got.batchSize, 4u) << "request " << i;
        EXPECT_EQ(got.admittedAtLayer, i == 0 ? 0u : 1u)
            << "request " << i;
        EXPECT_GE(got.latencyMs, 0.0);
        EXPECT_GE(got.queueWaitMs, 0.0);
        EXPECT_GE(got.executeMs, 0.0);
        EXPECT_NEAR(got.queueWaitMs + got.executeMs, got.latencyMs,
                    0.5);
        const InferenceResult solo =
            solo_session.infer(model, inputs[i]);
        EXPECT_TRUE(got.output == solo.output) << "request " << i;
        expectStatsEqual(got.stats, solo.stats);
    }

    const SessionStats s = session.stats();
    EXPECT_EQ(s.requests, 4u);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.maxBatch, 4u);
    ASSERT_EQ(s.admittedAtLayer.size(), 2u);
    EXPECT_EQ(s.admittedAtLayer[0], 1u);
    EXPECT_EQ(s.admittedAtLayer[1], 3u);
    EXPECT_GE(s.p99LatencyMs, s.p50LatencyMs);
    EXPECT_GE(s.p99QueueWaitMs, s.p50QueueWaitMs);
    EXPECT_GE(s.p99ExecuteMs, s.p50ExecuteMs);
}

/** The in-flight column cap bounds what admission may splice. */
TEST(ServeContinuous, InflightColumnCapLimitsAdmission)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t uv =
        static_cast<std::size_t>(model.options().v);

    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true;
    opts.continuous = true;
    // Cohort starts with one 4-column request; cap leaves room for
    // exactly one more 4-column admission.
    opts.maxInflightColumns = 8;
    Session session = rt.createSession(opts);

    MatrixF x(model.inputFeatures(), uv);
    for (auto &v : x.data())
        v = 0.25f;
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(session.submit(model, x));
    session.start();

    std::vector<InferenceResult> results;
    for (auto &f : futures)
        results.push_back(f.get());
    // Request 0: the cohort. Request 1: admitted (8-column cap).
    // Request 2: does not fit - served by the NEXT cohort.
    EXPECT_EQ(results[0].batchSeq, 0u);
    EXPECT_EQ(results[0].admittedAtLayer, 0u);
    EXPECT_EQ(results[1].batchSeq, 0u);
    EXPECT_EQ(results[1].admittedAtLayer, 1u);
    EXPECT_EQ(results[2].batchSeq, 1u);
    EXPECT_EQ(results[2].admittedAtLayer, 0u);
    EXPECT_EQ(session.stats().batches, 2u);
}

TEST(ServeContinuous, EngineIsBitExactForAnyOrderWorkersWindowAndIsa)
{
    PoolGuard pool_guard;
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 8);

    SessionOptions solo_opts;
    solo_opts.batchWindow = 1;
    solo_opts.batchDeadlineMs = 0.0;
    solo_opts.workers = 1;
    Session solo_session = rt.createSession(solo_opts);
    std::vector<InferenceResult> solo;
    for (const MatrixF &x : inputs)
        solo.push_back(solo_session.infer(model, x));

    std::vector<std::size_t> order(inputs.size());
    std::iota(order.begin(), order.end(), 0u);
    std::vector<std::size_t> reversed = order;
    std::reverse(reversed.begin(), reversed.end());
    std::vector<std::size_t> interleaved = {3, 0, 7, 5, 1, 6, 4, 2};

    struct Sweep
    {
        int window;
        double deadlineMs;
        int workers;
        int maxCols;
        int admitLayer; ///< 0 = default (1); big = every boundary
        const std::vector<std::size_t> *order;
    };
    const std::vector<Sweep> sweeps = {
        {1, 0.0, 1, 0, 99, &order},      {1, 0.0, 2, 8, 0, &reversed},
        {3, 5.0, 1, 0, 99, &interleaved}, {4, 0.0, 4, 16, 2, &order},
        {8, 5.0, 2, 0, 0, &reversed},    {2, 1.0, 3, 12, 99, &interleaved},
    };
    for (const Sweep &sw : sweeps) {
        SessionOptions opts;
        opts.batchWindow = sw.window;
        opts.batchDeadlineMs = sw.deadlineMs;
        opts.workers = sw.workers;
        opts.continuous = true;
        opts.maxInflightColumns = sw.maxCols;
        opts.maxAdmissionLayer = sw.admitLayer;
        Session session = rt.createSession(opts);
        std::vector<std::future<InferenceResult>> futures(inputs.size());
        for (std::size_t idx : *sw.order)
            futures[idx] = session.submit(model, inputs[idx]);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const InferenceResult got = futures[i].get();
            EXPECT_TRUE(got.output == solo[i].output)
                << "request " << i << " window=" << sw.window
                << " workers=" << sw.workers;
            expectStatsEqual(got.stats, solo[i].stats);
            EXPECT_LT(got.admittedAtLayer, model.layerCount());
        }
        session.drain();
        const SessionStats s = session.stats();
        EXPECT_EQ(s.requests, inputs.size());
        std::uint64_t admitted_total = 0;
        for (std::uint64_t n : s.admittedAtLayer)
            admitted_total += n;
        EXPECT_EQ(admitted_total, s.requests);
    }

    IsaGuard isa_guard;
    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {1, 4}) {
            setParallelThreads(threads);
            SessionOptions opts;
            opts.batchWindow = 2;
            opts.batchDeadlineMs = 1.0;
            opts.workers = 2;
            opts.continuous = true;
            Session session = rt.createSession(opts);
            std::vector<std::future<InferenceResult>> futures;
            for (const MatrixF &x : inputs)
                futures.push_back(session.submit(model, x));
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                const InferenceResult got = futures[i].get();
                EXPECT_TRUE(got.output == solo[i].output)
                    << "request " << i << " isa=" << toString(isa)
                    << " threads=" << threads;
                expectStatsEqual(got.stats, solo[i].stats);
            }
        }
    }
}

/** Mid-run submission storm: admission under real timing races. */
TEST(ServeContinuous, MidRunArrivalsStayBitExact)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 12);

    SessionOptions solo_opts;
    solo_opts.batchWindow = 1;
    solo_opts.batchDeadlineMs = 0.0;
    solo_opts.workers = 1;
    Session solo_session = rt.createSession(solo_opts);
    std::vector<InferenceResult> solo;
    for (const MatrixF &x : inputs)
        solo.push_back(solo_session.infer(model, x));

    for (int round = 0; round < 3; ++round) {
        SessionOptions opts;
        opts.batchWindow = 2;
        opts.batchDeadlineMs = 0.0;
        opts.workers = 1 + round;
        opts.continuous = true;
        opts.maxAdmissionLayer = round; // 0 = default(1), then deeper
        Session session = rt.createSession(opts);
        // Submit from the test thread while workers are already
        // running: arrivals land at arbitrary layer boundaries.
        std::vector<std::future<InferenceResult>> futures;
        for (const MatrixF &x : inputs)
            futures.push_back(session.submit(model, x));
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const InferenceResult got = futures[i].get();
            EXPECT_TRUE(got.output == solo[i].output)
                << "round " << round << " request " << i;
            expectStatsEqual(got.stats, solo[i].stats);
        }
    }
}

/**
 * continuous=false must keep the PR-4 pinned round-robin schedule:
 * flood 12 + victim 2 on a paused single worker, window 4 - and every
 * request reports admittedAtLayer 0.
 */
TEST(ServeContinuous, LayerZeroModePreservesPinnedBatchSeqSchedules)
{
    Runtime rt;
    const CompiledModel flood = rt.compile(tinySpec("cont-flood"));
    const CompiledModel victim = rt.compile(tinySpec("cont-victim"));

    SessionOptions opts;
    opts.batchWindow = 4;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.startPaused = true;
    opts.continuous = false;
    Session session = rt.createSession(opts);

    MatrixF x(flood.inputFeatures(), 4);
    for (auto &v : x.data())
        v = 0.25f;
    std::vector<std::future<InferenceResult>> flood_futs;
    for (int i = 0; i < 12; ++i)
        flood_futs.push_back(session.submit(flood, x));
    std::vector<std::future<InferenceResult>> victim_futs;
    for (int i = 0; i < 2; ++i)
        victim_futs.push_back(session.submit(victim, x));
    session.start();

    const std::uint64_t expect_flood_seq[12] = {0, 0, 0, 0, 2, 2,
                                                2, 2, 3, 3, 3, 3};
    for (int i = 0; i < 12; ++i) {
        const InferenceResult r = flood_futs[i].get();
        EXPECT_EQ(r.batchSeq, expect_flood_seq[i]) << "flood req " << i;
        EXPECT_EQ(r.admittedAtLayer, 0u);
    }
    for (int i = 0; i < 2; ++i) {
        const InferenceResult r = victim_futs[i].get();
        EXPECT_EQ(r.batchSeq, 1u) << "victim req " << i;
        EXPECT_EQ(r.admittedAtLayer, 0u);
    }
    const SessionStats s = session.stats();
    ASSERT_EQ(s.admittedAtLayer.size(), 1u);
    EXPECT_EQ(s.admittedAtLayer[0], 14u);
}

/** The queue/execute split is reported and consistent per request. */
TEST(ServeContinuous, LatencySplitSemantics)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::vector<MatrixF> inputs =
        makeRequests(model.inputFeatures(), 6);

    for (bool continuous : {false, true}) {
        SessionOptions opts;
        opts.batchWindow = 3;
        opts.batchDeadlineMs = 1.0;
        opts.workers = 2;
        opts.continuous = continuous;
        Session session = rt.createSession(opts);
        std::vector<std::future<InferenceResult>> futures;
        for (const MatrixF &x : inputs)
            futures.push_back(session.submit(model, x));
        for (auto &f : futures) {
            const InferenceResult r = f.get();
            EXPECT_GE(r.queueWaitMs, 0.0);
            EXPECT_GE(r.executeMs, 0.0);
            EXPECT_NEAR(r.queueWaitMs + r.executeMs, r.latencyMs, 0.5);
        }
        session.drain();
        const SessionStats s = session.stats();
        // Percentiles cover exactly the completed requests (all of
        // them here: the session is drained).
        EXPECT_EQ(s.requests, inputs.size());
        EXPECT_GE(s.p99LatencyMs, s.p50LatencyMs);
        EXPECT_GE(s.p99QueueWaitMs, s.p50QueueWaitMs);
        EXPECT_GE(s.p99ExecuteMs, s.p50ExecuteMs);
        EXPECT_GE(s.p50LatencyMs, 0.0);
    }
}

} // namespace
} // namespace panacea
