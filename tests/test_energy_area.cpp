/**
 * @file
 * Energy- and area-model tests: linear accounting, component splits and
 * the DRAM >> SRAM >> MAC ordering every reported ratio relies on.
 */

#include <gtest/gtest.h>

#include "sim/area_model.h"
#include "sim/dram.h"
#include "sim/energy_model.h"
#include "sim/sram.h"

namespace panacea {
namespace {

TEST(EnergyModel, LinearInCounters)
{
    EnergyModel model;
    OpCounters c;
    c.mults4b = 1000;
    c.adds = 500;
    c.dramReadBytes = 64;
    c.cycles = 10;

    EnergyBreakdown e1 = model.compute(c);
    OpCounters c2 = c;
    c2.scale(3);
    EnergyBreakdown e3 = model.compute(c2);
    EXPECT_NEAR(e3.totalPJ(), 3.0 * e1.totalPJ(), 1e-9);
}

TEST(EnergyModel, CostOrdering)
{
    const EnergyTable t;
    // Per byte moved: DRAM must dominate SRAM, which dominates a MAC.
    EXPECT_GT(t.dramPJPerByte, 10.0 * t.sramReadPJPerByte);
    EXPECT_GT(t.sramReadPJPerByte, t.mult4bPJ);
}

TEST(EnergyModel, ComponentSplit)
{
    EnergyModel model;
    OpCounters c;
    c.mults4b = 100;
    c.sramReadBytes = 100;
    c.dramReadBytes = 100;
    EnergyBreakdown e = model.compute(c);
    EXPECT_GT(e.computePJ, 0.0);
    EXPECT_GT(e.sramPJ, 0.0);
    EXPECT_GT(e.dramPJ, 0.0);
    EXPECT_DOUBLE_EQ(e.totalPJ(), e.computePJ + e.ppuPJ + e.sramPJ +
                                      e.dramPJ + e.controlPJ);
}

TEST(Sram, FitsAndCounts)
{
    SramModel sram("WMEM", 1024);
    EXPECT_TRUE(sram.fits(1024));
    EXPECT_FALSE(sram.fits(1025));
    sram.read(100);
    sram.write(50);
    EXPECT_EQ(sram.readBytes(), 100u);
    EXPECT_EQ(sram.writeBytes(), 50u);
    sram.reset();
    EXPECT_EQ(sram.readBytes(), 0u);
}

TEST(Dram, BandwidthCycles)
{
    DramModel dram(32);
    EXPECT_EQ(dram.cyclesFor(0), 0u);
    EXPECT_EQ(dram.cyclesFor(32), 1u);
    EXPECT_EQ(dram.cyclesFor(33), 2u);
    EXPECT_EQ(dram.cyclesFor(320), 10u);
}

TEST(AreaModel, MonotoneInResources)
{
    AreaInputs small;
    small.multipliers = 1536;
    small.sramBytes = 96 * 1024;
    AreaInputs big;
    big.multipliers = 3072;
    big.sramBytes = 192 * 1024;
    EXPECT_LT(estimateAreaMm2(small), estimateAreaMm2(big));
}

TEST(AreaModel, PanaceaOverheadIsSmall)
{
    // Fig. 15(c): the AQS machinery (decoders, schedulers, CS adders)
    // adds only a small fraction on top of the MAC + SRAM baseline.
    AreaInputs base;
    base.multipliers = 3072;
    base.adders = 3072;
    base.sramBytes = 192 * 1024;
    base.bufferBytes = 16 * 1024;

    AreaInputs panacea = base;
    panacea.decoders = 16;
    panacea.schedulers = 16;
    panacea.shifters = 16 * 4;
    panacea.adders += 16 * 2 * 4;  // CS small S-ACCs

    double a0 = estimateAreaMm2(base);
    double a1 = estimateAreaMm2(panacea);
    EXPECT_GT(a1, a0);
    EXPECT_LT((a1 - a0) / a0, 0.10);
}

} // namespace
} // namespace panacea
