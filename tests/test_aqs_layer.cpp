/**
 * @file
 * Layer-pipeline tests: the calibrate+forward path must agree with the
 * reference quantized-linear path (Eq. (3)) bit-for-bit whenever DBS
 * keeps l = 4, and with the LSB-masked reference under wider DBS types.
 */

#include <gtest/gtest.h>

#include "core/aqs_layer.h"
#include "quant/quantizer.h"
#include "util/random.h"

namespace panacea {
namespace {

MatrixF
randomMatrix(Rng &rng, std::size_t r, std::size_t c, double mean,
             double stddev)
{
    MatrixF m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(rng.gaussian(mean, stddev));
    return m;
}

TEST(AqsLayer, MatchesReferenceQuantizedLinear)
{
    Rng rng(51);
    MatrixF w = randomMatrix(rng, 16, 32, 0.0, 0.3);
    MatrixF calib = randomMatrix(rng, 32, 16, 1.0, 0.2);
    MatrixF x = randomMatrix(rng, 32, 8, 1.0, 0.2);
    std::vector<float> bias(16, 0.25f);

    AqsPipelineOptions opts;
    opts.enableDbs = false;  // keep l = 4 so codes match exactly
    opts.enableZpm = true;
    std::vector<MatrixF> batches = {calib};
    AqsLinearLayer layer =
        AqsLinearLayer::calibrate(w, bias, batches, opts);

    // Reference path with the *same* parameters (post-ZPM zero point).
    QuantizedLinear ref = QuantizedLinear::make(
        w, bias, opts.weightBits, layer.activationParams());

    MatrixI32 codes = layer.quantizeInput(x);
    MatrixI64 aqs_acc = layer.forwardCodes(codes);
    MatrixI64 ref_acc = ref.forwardCodes(codes);
    EXPECT_TRUE(aqs_acc == ref_acc);
}

TEST(AqsLayer, ZpmSnapsZeroPoint)
{
    Rng rng(52);
    MatrixF w = randomMatrix(rng, 8, 16, 0.0, 0.3);
    // Asymmetric input: mean shifted well above zero.
    MatrixF calib = randomMatrix(rng, 16, 32, 2.0, 0.7);

    AqsPipelineOptions opts;
    opts.enableDbs = false;
    opts.enableZpm = true;
    std::vector<MatrixF> batches = {calib};
    AqsLinearLayer layer = AqsLinearLayer::calibrate(w, {}, batches, opts);
    const std::int32_t zp = layer.activationParams().zeroPoint;
    if (zp != 0) {
        EXPECT_EQ(zp % 16, 8);  // bucket-centred
    }
}

TEST(AqsLayer, DbsWideDistributionTruncatesLsbs)
{
    Rng rng(53);
    MatrixF w = randomMatrix(rng, 8, 16, 0.0, 0.3);
    // Wide activation: forces DBS type-2/3.
    MatrixF calib = randomMatrix(rng, 16, 64, 0.0, 3.0);
    MatrixF x = randomMatrix(rng, 16, 8, 0.0, 3.0);

    AqsPipelineOptions opts;
    opts.enableDbs = true;
    std::vector<MatrixF> batches = {calib};
    AqsLinearLayer layer = AqsLinearLayer::calibrate(w, {}, batches, opts);
    ASSERT_GT(layer.dbsDecision().loBits, 4);

    QuantizedLinear ref = QuantizedLinear::make(
        w, {}, opts.weightBits, layer.activationParams());

    MatrixI32 codes = layer.quantizeInput(x);
    MatrixI64 aqs_acc = layer.forwardCodes(codes);

    MatrixI32 masked = codes;
    const int l = layer.dbsDecision().loBits;
    for (auto &c : masked.data())
        c &= ~((1 << (l - 4)) - 1);
    MatrixI64 ref_acc = ref.forwardCodes(masked);
    EXPECT_TRUE(aqs_acc == ref_acc);
}

TEST(AqsLayer, ForwardFloatApproximatesFloatGemm)
{
    Rng rng(54);
    MatrixF w = randomMatrix(rng, 16, 32, 0.0, 0.2);
    MatrixF calib = randomMatrix(rng, 32, 32, 0.8, 0.4);
    MatrixF x = randomMatrix(rng, 32, 8, 0.8, 0.4);

    AqsPipelineOptions opts;
    // Base-path fidelity check: DBS trades fidelity for sparsity and is
    // measured separately (quantizationNmseDbs ordering test).
    opts.enableDbs = false;
    std::vector<MatrixF> batches = {calib};
    AqsLinearLayer layer = AqsLinearLayer::calibrate(w, {}, batches, opts);
    AqsStats stats;
    MatrixF y = layer.forward(x, &stats);
    MatrixF ref = floatGemm(w, x);

    double err = 0.0;
    double mag = 0.0;
    for (std::size_t i = 0; i < y.data().size(); ++i) {
        double d = y.data()[i] - ref.data()[i];
        err += d * d;
        mag += static_cast<double>(ref.data()[i]) * ref.data()[i];
    }
    EXPECT_LT(std::sqrt(err / mag), 0.02);
    EXPECT_GT(stats.denseOuterProducts, 0u);
}

namespace {

/** A peaked core plus rare wide tails: the code-domain shape of real
 * activations (the min/max range is set by the tails, the mass sits in
 * a few codes around the zero point). */
MatrixF
peakedWithTails(Rng &rng, std::size_t r, std::size_t c)
{
    // Mode at zero (like real activations): quantization maps the mode
    // to the zero point, which ZPM centres in the skip range.
    MatrixF m(r, c);
    for (auto &v : m.data())
        v = rng.bernoulli(0.05)
                ? static_cast<float>(rng.uniformReal(-5.0, 15.0))
                : static_cast<float>(rng.gaussian(0.0, 0.05));
    return m;
}

} // namespace

TEST(AqsLayer, SkipsProduceMacSavingsOnPeakedInput)
{
    Rng rng(55);
    MatrixF w = randomMatrix(rng, 16, 32, 0.0, 0.05);
    // Tightly clustered activations with rare tails: nearly all codes
    // land in the skip range after ZPM.
    MatrixF calib = peakedWithTails(rng, 32, 64);
    MatrixF x = peakedWithTails(rng, 32, 16);

    AqsPipelineOptions opts;
    std::vector<MatrixF> batches = {calib};
    AqsLinearLayer layer = AqsLinearLayer::calibrate(w, {}, batches, opts);
    AqsStats stats;
    (void)layer.forward(x, &stats);
    EXPECT_GT(stats.macReduction(), 0.4);
}

TEST(AqsLayerDeath, RequiresCalibrationData)
{
    MatrixF w(4, 4, 0.1f);
    AqsPipelineOptions opts;
    EXPECT_DEATH(AqsLinearLayer::calibrate(w, {}, {}, opts),
                 "at least one batch");
}

} // namespace
} // namespace panacea
