/**
 * @file
 * Baseline accelerator model tests: resource normalization, dataflow
 * cycle sanity and the qualitative orderings of paper §IV.
 */

#include <gtest/gtest.h>

#include "arch/panacea_sim.h"
#include "baselines/sibia.h"
#include "baselines/simd.h"
#include "baselines/systolic.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(Baselines, SystolicRespectsMultiplierBudget)
{
    // 32 x 24 x 4 = 3072 4-bit multiplier equivalents.
    SystolicSimulator ws(SystolicDataflow::WeightStationary);
    SystolicSimulator os(SystolicDataflow::OutputStationary);
    EXPECT_EQ(ws.name(), "SA-WS");
    EXPECT_EQ(os.name(), "SA-OS");
    ResourceBudget bad;
    bad.multipliers4b = 1024;
    EXPECT_EXIT(SystolicSimulator(SystolicDataflow::WeightStationary,
                                  bad),
                ::testing::ExitedWithCode(1), "multiplier budget");
}

TEST(Baselines, SimdDenseCyclesMatchLaneMath)
{
    Rng rng(101);
    GemmWorkload wl = GemmWorkload::synthetic(
        "d", 768, 768, 256, 0.9, 0.9, 4, rng);
    SimdSimulator simd{};
    PerfResult res = simd.run(wl);
    // SIMD ignores sparsity: cycles >= M*N*K / 768.
    std::uint64_t macs = 768ull * 768 * 256;
    EXPECT_GE(res.counters.cycles, macs / 768);
    EXPECT_EQ(res.counters.mults4b, 4 * macs);
}

TEST(Baselines, SystolicFillOverheadShowsOnSmallN)
{
    Rng rng(102);
    // Small N: WS pays (N + fill) per block, so its cycle count per MAC
    // exceeds SIMD's.
    GemmWorkload wl = GemmWorkload::synthetic(
        "s", 768, 768, 32, 0.0, 0.0, 4, rng);
    SystolicSimulator ws(SystolicDataflow::WeightStationary);
    SimdSimulator simd{};
    EXPECT_GT(ws.run(wl).counters.cycles, simd.run(wl).counters.cycles);
}

TEST(Baselines, SibiaExploitsOneSideOnly)
{
    Rng rng(103);
    // Both operands sparse: Sibia can exploit only max(rho_w, rho_x).
    GemmWorkload both = GemmWorkload::synthetic(
        "b", 512, 512, 128, 0.8, 0.8, 4, rng);
    // Only activations sparse at the same max: same Sibia performance
    // class.
    GemmWorkload act_only = GemmWorkload::synthetic(
        "a", 512, 512, 128, 0.0, 0.8, 4, rng);

    SibiaSimulator sibia{};
    std::uint64_t c_both = sibia.run(both).counters.cycles;
    std::uint64_t c_act = sibia.run(act_only).counters.cycles;
    // Within a few percent: the extra weight sparsity buys Sibia
    // nothing.
    double ratio = static_cast<double>(c_both) /
                   static_cast<double>(c_act);
    EXPECT_NEAR(ratio, 1.0, 0.05);

    // Panacea exploits both multiplicatively.
    PanaceaSimulator panacea{};
    EXPECT_LT(panacea.run(both).counters.cycles,
              panacea.run(act_only).counters.cycles);
}

TEST(Baselines, PanaceaBeatsSibiaOnCompressedTraffic)
{
    Rng rng(104);
    GemmWorkload wl = GemmWorkload::synthetic(
        "t", 768, 768, 256, 0.5, 0.9, 4, rng);
    SibiaSimulator sibia{};
    PanaceaSimulator panacea{};
    PerfResult rs = sibia.run(wl);
    PerfResult rp = panacea.run(wl);
    EXPECT_LT(rp.counters.dramReadBytes, rs.counters.dramReadBytes);
    EXPECT_LT(rp.counters.sramReadBytes, rs.counters.sramReadBytes);
    EXPECT_GT(rp.topsPerWatt(), rs.topsPerWatt());
}

TEST(Baselines, RunAllAggregates)
{
    Rng rng(105);
    std::vector<GemmWorkload> layers = {
        GemmWorkload::synthetic("l0", 256, 256, 64, 0.5, 0.5, 4, rng),
        GemmWorkload::synthetic("l1", 256, 256, 64, 0.5, 0.5, 4, rng),
    };
    SimdSimulator simd{};
    PerfResult total = simd.runAll(layers, "two-layers");
    PerfResult l0 = simd.run(layers[0]);
    PerfResult l1 = simd.run(layers[1]);
    EXPECT_EQ(total.counters.cycles,
              l0.counters.cycles + l1.counters.cycles);
    EXPECT_EQ(total.workload, "two-layers");
}

TEST(Baselines, DenseDesignsIgnoreMasks)
{
    Rng rng(106);
    GemmWorkload sparse = GemmWorkload::synthetic(
        "s", 512, 512, 128, 0.9, 0.9, 4, rng);
    GemmWorkload dense = sparse;
    for (auto &m : dense.wMask.data())
        m = 0;
    for (auto &m : dense.xMask.data())
        m = 0;

    for (const Accelerator *acc :
         std::initializer_list<const Accelerator *>{
             new SimdSimulator{},
             new SystolicSimulator(SystolicDataflow::WeightStationary),
             new SystolicSimulator(SystolicDataflow::OutputStationary)}) {
        EXPECT_EQ(acc->run(sparse).counters.cycles,
                  acc->run(dense).counters.cycles)
            << acc->name();
        delete acc;
    }
}

} // namespace
} // namespace panacea
