/**
 * @file
 * PEA work-counting tests: the O(K) mask-aggregated counts must equal a
 * brute-force recount, and the counts must satisfy the structural
 * dynamic/static classification.
 */

#include <gtest/gtest.h>

#include "arch/pea.h"
#include "util/random.h"

namespace panacea {
namespace {

GemmWorkload
randomWorkload(Rng &rng, std::size_t m, std::size_t k, std::size_t n,
               double rho_w, double rho_x, int w_levels = 2,
               int x_levels = 2)
{
    GemmWorkload wl = GemmWorkload::synthetic("t", m, k, n, rho_w, rho_x,
                                              4, rng);
    wl.wLevels = w_levels;
    wl.xLevels = x_levels;
    wl.weightHoSkippable = w_levels >= 2;
    return wl;
}

/** Brute-force recount straight from the masks. */
PeaWork
bruteForce(const GemmWorkload &wl, std::size_t mg, std::size_t nt,
           int tile_n, int v, bool compensate)
{
    PeaWork work;
    const std::size_t n_groups = wl.n / static_cast<std::size_t>(v);
    const std::size_t gpt = static_cast<std::size_t>(tile_n / v);
    const std::size_t g0 = nt * gpt;
    const std::size_t g1 = std::min(n_groups, g0 + gpt);

    for (std::size_t k = 0; k < wl.k; ++k) {
        const bool wc =
            wl.weightHoSkippable && wl.wMask(mg, k) != 0;
        for (std::size_t g = g0; g < g1; ++g) {
            const bool xc = wl.xMask(k, g) != 0;
            for (int wlvl = 0; wlvl < wl.wLevels; ++wlvl) {
                const bool w_is_ho =
                    wl.weightHoSkippable && wlvl == wl.wLevels - 1;
                for (int xlvl = 0; xlvl < wl.xLevels; ++xlvl) {
                    const bool x_is_ho = xlvl == wl.xLevels - 1;
                    const bool dynamic = w_is_ho || x_is_ho;
                    bool skipped =
                        (w_is_ho && wc) || (x_is_ho && xc);
                    if (!dynamic) {
                        ++work.statExec;
                    } else if (skipped) {
                        ++work.dynSkipped;
                    } else {
                        ++work.dynExec;
                    }
                }
            }
            if (compensate) {
                if (!xc)
                    work.compAddsEq6 += static_cast<std::uint64_t>(v) *
                                        wl.wLevels;
                else
                    work.compAddsEq5 += static_cast<std::uint64_t>(v) *
                                        wl.wLevels;
            }
        }
        // Brute force counts per (k, g); the aggregated version counts
        // compMults once per output block below.
    }
    if (compensate)
        work.compMults += (g1 - g0) * static_cast<std::uint64_t>(v) * v;
    return work;
}

TEST(Pea, XccTableMatchesMask)
{
    Rng rng(71);
    GemmWorkload wl = randomWorkload(rng, 64, 40, 96, 0.4, 0.6);
    XccTable xcc = XccTable::build(wl, 64, 4);
    ASSERT_EQ(xcc.tiles(), 2u);
    EXPECT_EQ(xcc.groups(0), 16u);
    EXPECT_EQ(xcc.groups(1), 8u);  // 96/4 = 24 groups; 24-16 = 8
    for (std::size_t k = 0; k < wl.k; ++k) {
        std::uint32_t manual = 0;
        for (std::size_t g = 0; g < 16; ++g)
            manual += wl.xMask(k, g);
        ASSERT_EQ(xcc.skippable(k, 0), manual);
    }
}

class PeaCountSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>>
{};

TEST_P(PeaCountSweep, AggregatedMatchesBruteForce)
{
    const double rho_w = std::get<0>(GetParam());
    const double rho_x = std::get<1>(GetParam());
    const int w_levels = std::get<2>(GetParam());
    Rng rng(static_cast<std::uint64_t>(rho_w * 7 + rho_x * 13 +
                                       w_levels * 100) + 5);
    GemmWorkload wl = randomWorkload(rng, 32, 48, 64, rho_w, rho_x,
                                     w_levels);
    XccTable xcc = XccTable::build(wl, 64, 4);
    for (std::size_t mg = 0; mg < wl.m / 4; ++mg) {
        for (bool comp : {false, true}) {
            PeaWork fast = countPeaWork(wl, xcc, mg, 0, 4, comp);
            PeaWork slow = bruteForce(wl, mg, 0, 64, 4, comp);
            ASSERT_EQ(fast.dynExec, slow.dynExec);
            ASSERT_EQ(fast.statExec, slow.statExec);
            ASSERT_EQ(fast.dynSkipped, slow.dynSkipped);
            ASSERT_EQ(fast.compAddsEq6, slow.compAddsEq6);
            ASSERT_EQ(fast.compAddsEq5, slow.compAddsEq5);
            ASSERT_EQ(fast.compMults, slow.compMults);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PeaCountSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(1, 2, 3)));

TEST(Pea, SingleSliceWeightsHaveNoDynamicWeightWork)
{
    Rng rng(72);
    // n = 0: single LO weight slice; only x_HO products are dynamic.
    GemmWorkload wl = randomWorkload(rng, 16, 32, 64, 0.9, 0.0, 1);
    XccTable xcc = XccTable::build(wl, 64, 4);
    PeaWork work = countPeaWork(wl, xcc, 0, 0, 4, true);
    // Per (k, g): 1 dynamic (LO x HO) + 1 static (LO x LO).
    EXPECT_EQ(work.dynExec, 32u * 16);
    EXPECT_EQ(work.statExec, 32u * 16);
    EXPECT_EQ(work.dynSkipped, 0u);
}

TEST(Pea, FullSparsityLeavesOnlyStatic)
{
    Rng rng(73);
    GemmWorkload wl = randomWorkload(rng, 16, 32, 64, 1.0, 1.0);
    XccTable xcc = XccTable::build(wl, 64, 4);
    PeaWork work = countPeaWork(wl, xcc, 0, 0, 4, true);
    EXPECT_EQ(work.dynExec, 0u);
    EXPECT_EQ(work.statExec, 32u * 16);  // LO x LO survives
}

} // namespace
} // namespace panacea
