/**
 * @file
 * Tests for the runtime ISA detection and selection layer
 * (util/cpu_features.h): name parsing, ordering, clamping of
 * overrides to what the host + build support, and the dispatch-table
 * invariant that every returned row is fully populated.
 */

#include <gtest/gtest.h>

#include "core/pair_pass.h"
#include "isa_guard.h"
#include "util/cpu_features.h"

namespace panacea {
namespace {

TEST(CpuFeatures, NamesRoundTrip)
{
    for (IsaLevel lvl : {IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2,
                         IsaLevel::Avx512, IsaLevel::Avx512Vnni}) {
        IsaLevel parsed;
        ASSERT_TRUE(parseIsaLevel(toString(lvl), &parsed));
        EXPECT_EQ(parsed, lvl);
    }
    IsaLevel parsed;
    EXPECT_TRUE(parseIsaLevel("AVX2", &parsed)); // case-insensitive
    EXPECT_EQ(parsed, IsaLevel::Avx2);
    EXPECT_TRUE(parseIsaLevel("avx512vnni", &parsed)); // alias of "vnni"
    EXPECT_EQ(parsed, IsaLevel::Avx512Vnni);
    EXPECT_FALSE(parseIsaLevel("avx1024", &parsed));
    EXPECT_FALSE(parseIsaLevel("", &parsed));
}

TEST(CpuFeatures, ActiveLevelNeverExceedsSupport)
{
    IsaGuard guard;
    for (IsaLevel lvl : {IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2,
                         IsaLevel::Avx512, IsaLevel::Avx512Vnni}) {
        setIsaLevel(lvl);
        EXPECT_LE(activeIsaLevel(), detectedIsaLevel());
        EXPECT_LE(activeIsaLevel(), compiledIsaLevel());
        EXPECT_LE(activeIsaLevel(), lvl); // clamped down, never up
    }
}

TEST(CpuFeatures, ScalarOverrideAlwaysHonored)
{
    IsaGuard guard;
    setIsaLevel(IsaLevel::Scalar);
    EXPECT_EQ(activeIsaLevel(), IsaLevel::Scalar);
    resetIsaLevel();
    // Back to env/auto - whatever that is, it must be runnable.
    EXPECT_LE(activeIsaLevel(), detectedIsaLevel());
}

TEST(CpuFeatures, DispatchTableRowsAreFullyPopulated)
{
    for (IsaLevel lvl : {IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2,
                         IsaLevel::Avx512, IsaLevel::Avx512Vnni}) {
        const detail::PairPassKernels &kern = detail::pairPassKernels(lvl);
        EXPECT_NE(kern.pass4, nullptr);
        EXPECT_NE(kern.passGeneric, nullptr);
        // The row handed back must itself be runnable on this host.
        EXPECT_LE(kern.level, detectedIsaLevel());
        EXPECT_LE(kern.level, compiledIsaLevel());
    }
    // The scalar row never carries SIMD entry points.
    EXPECT_EQ(detail::pairPassKernels(IsaLevel::Scalar).stream4, nullptr);
}

TEST(CpuFeatures, StreamRunnablePredicateMatchesTableSlots)
{
    // The shared predicate (the ONE gate for both the prep-time paired
    // precompute and the engines' stream_ok) must track the row's
    // slots exactly: v = 4 follows stream4, 4 < v <= 16 follows
    // streamGeneric, v > 16 never streams (scalar-band fallback).
    for (IsaLevel lvl : {IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2,
                         IsaLevel::Avx512, IsaLevel::Avx512Vnni}) {
        const detail::PairPassKernels &kern = detail::pairPassKernels(lvl);
        EXPECT_EQ(detail::streamKernelsRunnable(kern, 4),
                  kern.stream4 != nullptr);
        EXPECT_EQ(detail::streamKernelsRunnable(kern, 8),
                  kern.streamGeneric != nullptr);
        EXPECT_FALSE(detail::streamKernelsRunnable(kern, 20));
    }
}

TEST(CpuFeatures, RunnableLevelsAreOrderedAndStartScalar)
{
    IsaGuard guard;
    const std::vector<IsaLevel> levels = runnableIsaLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), IsaLevel::Scalar);
    for (std::size_t i = 1; i < levels.size(); ++i)
        EXPECT_LT(levels[i - 1], levels[i]);
}

} // namespace
} // namespace panacea
