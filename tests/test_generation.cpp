/**
 * @file
 * Generation subsystem tests (src/serve/generation/).
 *
 * The contract under test: a generation's bytes are a pure function of
 * (samplerSeed, prompt bytes) - scheduling policy (phase-aware vs
 * naive FIFO), prefill chunking, ISA level, worker count, admission
 * layer and replica count change WHEN steps execute, never WHAT they
 * compute. On top of identity: the engine's urgent queue pins a
 * deterministic decode-over-prefill schedule; a long chunked prefill
 * may not delay a running decode stream by more than one chunk;
 * SubmitExtras::prepared operands are bit-exact and onReady fires
 * exactly once on every path; drain() delivers exactly one terminal
 * per generation and rejects concurrent generate() calls.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "isa_guard.h"
#include "panacea/fleet.h"
#include "panacea/runtime.h"
#include "panacea/session.h"
#include "pool_guard.h"
#include "serve/engine.h"
#include "serve/generation/generation.h"
#include "serve/served_model.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace panacea {
namespace {

/** Three layers, distinct distributions, one feature-width bend. */
ModelSpec
tinySpec(const std::string &name = "gen-test-tiny")
{
    ModelSpec spec;
    spec.name = name;
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 24;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "L1.FC2";
    l1.m = 16;
    l1.kDim = 24;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "L2.PROJ";
    l2.m = 20;
    l2.kDim = 12; // mismatched on purpose: exercises adaptFeatures
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

/** Bigger layers so chunk GEMMs dominate scheduling noise (fairness). */
ModelSpec
fairSpec()
{
    ModelSpec spec;
    spec.name = "gen-test-fair";
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "F0";
    l0.m = 64;
    l0.kDim = 48;
    l0.dist = ActDistKind::LayerNormGauss;
    LayerSpec l1;
    l1.name = "F1";
    l1.m = 48;
    l1.kDim = 64;
    l1.dist = ActDistKind::PostGelu;
    LayerSpec l2;
    l2.name = "F2";
    l2.m = 56;
    l2.kDim = 48;
    l2.dist = ActDistKind::PostAttention;
    spec.layers = {l0, l1, l2};
    return spec;
}

MatrixF
makePrompt(std::size_t features, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    MatrixF x(features, cols);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian(0.2, 1.0));
    return x;
}

void
expectStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.wNibbles, b.wNibbles);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
}

/**
 * Generation-vs-manual-loop stats identity covers compute and
 * activation traffic. Weight-side nibbles are EXCLUDED: the weight
 * operand is read once per engine call, so a chunked prefill (3 calls)
 * legitimately moves more weight traffic than the manual loop's single
 * whole-prompt call - that is the cost chunking pays for fairness, not
 * a computation difference.
 */
void
expectComputeStatsEqual(const AqsStats &a, const AqsStats &b)
{
    EXPECT_EQ(a.denseOuterProducts, b.denseOuterProducts);
    EXPECT_EQ(a.executedOuterProducts, b.executedOuterProducts);
    EXPECT_EQ(a.skippedOuterProducts, b.skippedOuterProducts);
    EXPECT_EQ(a.mults, b.mults);
    EXPECT_EQ(a.adds, b.adds);
    EXPECT_EQ(a.xNibbles, b.xNibbles);
}

/** The reference: whole prompt + one infer() per decode step. */
struct ManualGen
{
    MatrixF prefill;
    MatrixF output;
    AqsStats stats;
};

ManualGen
manualGenerate(Session &session, const CompiledModel &model,
               const MatrixF &prompt, std::size_t steps,
               std::uint64_t seed)
{
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    serve::TokenSampler sampler(seed);
    ManualGen mg;
    const InferenceResult pre = session.infer(model, prompt);
    mg.prefill = pre.output;
    mg.stats += pre.stats;
    mg.output = MatrixF(model.outputFeatures(), steps * v);
    MatrixF prev = mg.prefill;
    for (std::size_t step = 0; step < steps; ++step) {
        MatrixF x = sampler.next(prev, model.inputFeatures(), v);
        const InferenceResult r = session.infer(model, std::move(x));
        for (std::size_t row = 0; row < r.output.rows(); ++row) {
            const auto src = r.output.row(row);
            std::copy(src.begin(), src.end(),
                      mg.output.row(row).begin() +
                          static_cast<std::ptrdiff_t>(step * v));
        }
        mg.stats += r.stats;
        prev = r.output;
    }
    return mg;
}

Session
soloSession(Runtime &rt)
{
    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    return rt.createSession(opts);
}

/**
 * Identity across the scheduling sweep: phase-aware and naive FIFO,
 * 1 and 2 workers, shallow and every-boundary admission, continuous
 * on and off - all byte-identical to the manual per-step loop, with
 * exact stats folds and the pinned chunk count.
 */
TEST(Generation, MatchesManualLoopAcrossPolicyWorkersAndAdmission)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    const MatrixF prompt =
        makePrompt(model.inputFeatures(), 8 * v, 0xfeed);
    const std::size_t steps = 6;

    Session solo = soloSession(rt);
    const ManualGen ref =
        manualGenerate(solo, model, prompt, steps, 0x5eed);

    struct Sweep
    {
        bool phaseAware;
        int workers;
        int admitLayer; ///< 0 = default (1); big = every boundary
        bool continuous;
    };
    const std::vector<Sweep> sweeps = {
        {true, 1, 0, true},  {true, 2, 99, true}, {true, 1, 2, true},
        {false, 1, 0, true}, {false, 2, 99, true}, {true, 1, 0, false},
        {false, 1, 0, false},
    };
    for (const Sweep &sw : sweeps) {
        SessionOptions opts;
        opts.batchWindow = 2;
        opts.batchDeadlineMs = 0.0;
        opts.workers = sw.workers;
        opts.continuous = sw.continuous;
        opts.maxAdmissionLayer = sw.admitLayer;
        Session session = rt.createSession(opts);

        GenerationRequest req;
        req.prompt = prompt;
        req.maxSteps = steps;
        req.samplerSeed = 0x5eed;
        req.phaseAware = sw.phaseAware;
        req.prefillChunkGroups = 3; // 8 groups -> chunks of 3+3+2
        const GenerationResult res =
            session.generate(model, req).get();

        EXPECT_TRUE(res.prefillOutput == ref.prefill)
            << "phaseAware=" << sw.phaseAware
            << " workers=" << sw.workers;
        EXPECT_TRUE(res.output == ref.output)
            << "phaseAware=" << sw.phaseAware
            << " workers=" << sw.workers;
        expectComputeStatsEqual(res.stats, ref.stats);
        EXPECT_EQ(res.steps, steps);
        EXPECT_EQ(res.interTokenMs.size(), steps - 1);

        std::size_t prefill_meta = 0;
        for (const GenerationStepMeta &m : res.stepMeta)
            if (m.phase == GenerationPhase::Prefill)
                ++prefill_meta;
        // Phase-aware chunks the 8-group prompt 3+3+2; naive FIFO
        // sends it whole (the manual loop's admission).
        EXPECT_EQ(prefill_meta, sw.phaseAware ? 3u : 1u);
        EXPECT_EQ(res.stepMeta.size(), prefill_meta + steps);
        EXPECT_GT(res.arenaBytes, 0u);
    }
}

TEST(Generation, IdentityHoldsAcrossIsaLevelsAndPoolWidths)
{
    PoolGuard pool_guard;
    IsaGuard isa_guard;
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    const MatrixF prompt =
        makePrompt(model.inputFeatures(), 4 * v, 0xabcd);

    Session solo = soloSession(rt);
    const ManualGen ref = manualGenerate(solo, model, prompt, 4, 42);

    for (IsaLevel isa : runnableIsaLevels()) {
        setIsaLevel(isa);
        for (int threads : {1, 4}) {
            setParallelThreads(threads);
            SessionOptions opts;
            opts.batchWindow = 2;
            opts.batchDeadlineMs = 0.0;
            opts.workers = 2;
            opts.continuous = true;
            Session session = rt.createSession(opts);
            GenerationRequest req;
            req.prompt = prompt;
            req.maxSteps = 4;
            req.samplerSeed = 42;
            req.prefillChunkGroups = 2;
            const GenerationResult res =
                session.generate(model, req).get();
            EXPECT_TRUE(res.prefillOutput == ref.prefill)
                << "isa=" << toString(isa) << " threads=" << threads;
            EXPECT_TRUE(res.output == ref.output)
                << "isa=" << toString(isa) << " threads=" << threads;
        }
    }
}

/** Concurrent generations on one session, each against its own ref. */
TEST(Generation, ConcurrentGenerationsStayIndependent)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);

    Session solo = soloSession(rt);
    struct Job
    {
        MatrixF prompt;
        std::uint64_t seed;
        std::size_t steps;
        ManualGen ref;
    };
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < 3; ++i) {
        Job j;
        j.prompt =
            makePrompt(model.inputFeatures(), (2 + i) * v, 100 + i);
        j.seed = 7000 + i;
        j.steps = 3 + i;
        j.ref = manualGenerate(solo, model, j.prompt, j.steps, j.seed);
        jobs.push_back(std::move(j));
    }

    SessionOptions opts;
    opts.batchWindow = 4;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 2;
    opts.continuous = true;
    Session session = rt.createSession(opts);
    std::vector<std::future<GenerationResult>> futures;
    for (const Job &j : jobs) {
        GenerationRequest req;
        req.prompt = j.prompt;
        req.maxSteps = j.steps;
        req.samplerSeed = j.seed;
        req.prefillChunkGroups = 2;
        futures.push_back(session.generate(model, req));
    }
    std::uint64_t decode_cols = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const GenerationResult res = futures[i].get();
        EXPECT_TRUE(res.prefillOutput == jobs[i].ref.prefill)
            << "generation " << i;
        EXPECT_TRUE(res.output == jobs[i].ref.output)
            << "generation " << i;
        decode_cols += res.steps * v;
    }
    session.drain();
    const GenerationStats gs = session.generationStats();
    EXPECT_EQ(gs.generations, jobs.size());
    EXPECT_EQ(gs.failed, 0u);
    EXPECT_EQ(gs.decodeColumns, decode_cols);
    EXPECT_EQ(gs.arenaBytesLive, 0u);
    EXPECT_GT(gs.arenaBytesRetired, 0u);
    EXPECT_GE(gs.p99TtftMs, gs.p50TtftMs);
    EXPECT_GE(gs.p99InterTokenMs, gs.p50InterTokenMs);
    EXPECT_GT(gs.tokensPerSecond, 0.0);
}

/**
 * The engine-level phase schedule, pinned: on a paused single-worker
 * window-1 engine, Decode submissions are served BEFORE Prefill
 * submissions queued ahead of them - urgent before FIFO, FIFO within
 * each - and every result echoes its phase.
 */
TEST(Generation, DecodePhaseOvertakesQueuedPrefillDeterministically)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::shared_ptr<const serve::ServedModel> sm = model.shared();
    const std::size_t v = static_cast<std::size_t>(model.options().v);

    serve::EngineOptions eo;
    eo.batchWindow = 1;
    eo.batchDeadlineMs = 0.0;
    eo.workers = 1;
    eo.startPaused = true;
    serve::InferenceEngine engine(eo);

    const MatrixF x = makePrompt(model.inputFeatures(), v, 0xbeef);
    const auto submit = [&](serve::RequestPhase phase) {
        serve::SubmitExtras ex;
        ex.phase = phase;
        return engine.submit(sm, MatrixF(x), std::move(ex));
    };
    auto p1 = submit(serve::RequestPhase::Prefill);
    auto p2 = submit(serve::RequestPhase::Prefill);
    auto d1 = submit(serve::RequestPhase::Decode);
    auto d2 = submit(serve::RequestPhase::Decode);
    engine.start();

    const serve::RequestResult rd1 = d1.get();
    const serve::RequestResult rd2 = d2.get();
    const serve::RequestResult rp1 = p1.get();
    const serve::RequestResult rp2 = p2.get();
    // Decode submissions arrived LAST but are served first.
    EXPECT_EQ(rd1.batchSeq, 0u);
    EXPECT_EQ(rd2.batchSeq, 1u);
    EXPECT_EQ(rp1.batchSeq, 2u);
    EXPECT_EQ(rp2.batchSeq, 3u);
    EXPECT_EQ(rd1.phase, serve::RequestPhase::Decode);
    EXPECT_EQ(rd2.phase, serve::RequestPhase::Decode);
    EXPECT_EQ(rp1.phase, serve::RequestPhase::Prefill);
    EXPECT_EQ(rp2.phase, serve::RequestPhase::Prefill);
    // Service order never changes bytes: same input, same output.
    EXPECT_TRUE(rd1.output == rp1.output);
    EXPECT_TRUE(rd2.output == rp2.output);
    expectStatsEqual(rd1.stats, rp1.stats);

    const serve::EngineStats s = engine.stats();
    EXPECT_EQ(s.requests, 4u);
    EXPECT_EQ(s.prefillRequests, 2u);
    EXPECT_EQ(s.decodeRequests, 2u);
    EXPECT_EQ(s.batches, 4u);
}

/**
 * The fairness contract: a 64-group prefill (8 chunks of 8) admitted
 * behind a RUNNING decode stream may never delay it by more than one
 * chunk - consecutive decode cohorts of the running generation are
 * separated by at most one other cohort in the engine's batchSeq
 * sequence. Byte identity holds for both generations throughout.
 */
TEST(Generation, PrefillChunkingCannotStallARunningDecodeStream)
{
    Runtime rt;
    const CompiledModel model = rt.compile(fairSpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    const MatrixF prompt_a =
        makePrompt(model.inputFeatures(), v, 0xaaaa);
    const MatrixF prompt_b =
        makePrompt(model.inputFeatures(), 64 * v, 0xbbbb);

    Session solo = soloSession(rt);
    const ManualGen ref_a =
        manualGenerate(solo, model, prompt_a, 16, 0xa);
    const ManualGen ref_b = manualGenerate(solo, model, prompt_b, 1, 0xb);

    SessionOptions opts;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.workers = 1;
    opts.continuous = false; // pure cohort serialization
    Session session = rt.createSession(opts);

    std::promise<void> first_decode;
    auto fired = std::make_shared<std::atomic<bool>>(false);
    GenerationRequest ra;
    ra.prompt = prompt_a;
    ra.maxSteps = 16;
    ra.samplerSeed = 0xa;
    ra.onStep = [&first_decode,
                 fired](const GenerationStepView &view) {
        if (view.phase == GenerationPhase::Decode && view.index == 0 &&
            !fired->exchange(true))
            first_decode.set_value();
    };
    std::future<GenerationResult> fa = session.generate(model, ra);
    // B's long prefill starts only once A's decode stream is running.
    first_decode.get_future().wait();

    GenerationRequest rb;
    rb.prompt = prompt_b;
    rb.maxSteps = 1;
    rb.samplerSeed = 0xb;
    rb.prefillChunkGroups = 8;
    std::future<GenerationResult> fb = session.generate(model, rb);

    const GenerationResult ga = fa.get();
    const GenerationResult gb = fb.get();
    EXPECT_TRUE(ga.output == ref_a.output);
    EXPECT_TRUE(ga.prefillOutput == ref_a.prefill);
    EXPECT_TRUE(gb.prefillOutput == ref_b.prefill);
    EXPECT_TRUE(gb.output == ref_b.output);

    std::size_t b_chunks = 0;
    for (const GenerationStepMeta &m : gb.stepMeta)
        if (m.phase == GenerationPhase::Prefill)
            ++b_chunks;
    EXPECT_EQ(b_chunks, 8u); // 64 groups / 8-group chunks

    // A's consecutive decode cohorts: at most ONE foreign cohort (one
    // bounded prefill chunk) may run between them.
    std::vector<std::uint64_t> decode_seq;
    for (const GenerationStepMeta &m : ga.stepMeta)
        if (m.phase == GenerationPhase::Decode)
            decode_seq.push_back(m.batchSeq);
    ASSERT_EQ(decode_seq.size(), 16u);
    for (std::size_t i = 1; i < decode_seq.size(); ++i)
        EXPECT_LE(decode_seq[i] - decode_seq[i - 1], 2u)
            << "decode step " << i
            << " was stalled by more than one prefill chunk";
}

/** Same seed -> identical chain; different seed -> different chain. */
TEST(Generation, SeededSamplerDeterminism)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    const MatrixF prompt =
        makePrompt(model.inputFeatures(), 2 * v, 0x1111);

    SessionOptions opts;
    opts.workers = 1;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    Session session = rt.createSession(opts);

    GenerationRequest req;
    req.prompt = prompt;
    req.maxSteps = 4;
    req.samplerSeed = 0xd00d;
    const GenerationResult r1 = session.generate(model, req).get();
    const GenerationResult r2 = session.generate(model, req).get();
    EXPECT_TRUE(r1.output == r2.output);
    EXPECT_TRUE(r1.prefillOutput == r2.prefillOutput);

    req.samplerSeed = 0xd00e;
    const GenerationResult r3 = session.generate(model, req).get();
    EXPECT_TRUE(r3.prefillOutput == r1.prefillOutput)
        << "prefill does not depend on the sampler seed";
    EXPECT_FALSE(r3.output == r1.output);
}

/**
 * Mid-generation drain: exactly one terminal per generation, and
 * generate() while a drain is in progress is rejected through the
 * future (the engine's reject-or-complete contract, one level up).
 */
TEST(Generation, DrainDeliversOneTerminalAndRejectsConcurrentGenerate)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    const MatrixF prompt = makePrompt(model.inputFeatures(), v, 0x2222);

    Session solo = soloSession(rt);
    const ManualGen ref = manualGenerate(solo, model, prompt, 2, 9);

    struct Gate
    {
        std::mutex m;
        std::condition_variable cv;
        bool open = false;
    };
    auto gate = std::make_shared<Gate>();
    SessionOptions opts;
    opts.workers = 1;
    opts.batchWindow = 1;
    opts.batchDeadlineMs = 0.0;
    opts.stepHook = [gate](std::size_t layer) {
        if (layer != 0)
            return;
        std::unique_lock<std::mutex> lock(gate->m);
        gate->cv.wait(lock, [&] { return gate->open; });
    };
    Session session = rt.createSession(opts);

    GenerationRequest req;
    req.prompt = prompt;
    req.maxSteps = 2;
    req.samplerSeed = 9;
    std::future<GenerationResult> fa = session.generate(model, req);

    std::thread drainer([&session] { session.drain(); });
    // Let the drain enter its wait (the generation is held live by
    // the closed gate), then race a generate() against it.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::future<GenerationResult> fb = session.generate(model, req);
    EXPECT_THROW(fb.get(), std::runtime_error);

    {
        std::lock_guard<std::mutex> lock(gate->m);
        gate->open = true;
    }
    gate->cv.notify_all();
    drainer.join();

    const GenerationResult ga = fa.get();
    EXPECT_EQ(ga.steps, 2u);
    EXPECT_TRUE(ga.output == ref.output);
    const GenerationStats gs = session.generationStats();
    EXPECT_EQ(gs.generations, 1u);
    EXPECT_EQ(gs.arenaBytesLive, 0u);
}

/** Malformed requests reject through the future, typed. */
TEST(Generation, MalformedRequestsRejectThroughTheFuture)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    Session session = rt.createSession({});

    GenerationRequest req;
    req.prompt = makePrompt(model.inputFeatures(), v, 1);
    req.maxSteps = 0; // zero step budget
    EXPECT_THROW(session.generate(model, req).get(),
                 std::invalid_argument);

    req.maxSteps = 2;
    req.prompt = makePrompt(model.inputFeatures() + 1, v, 1);
    EXPECT_THROW(session.generate(model, req).get(),
                 std::invalid_argument);

    req.prompt = makePrompt(model.inputFeatures(), v + 1, 1);
    EXPECT_THROW(session.generate(model, req).get(),
                 std::invalid_argument);

    serve::InferenceEngine engine;
    serve::GenerationScheduler sched(engine);
    req.prompt = makePrompt(model.inputFeatures(), v, 1);
    EXPECT_THROW(sched.generate(nullptr, req).get(),
                 std::invalid_argument);
}

/** The tile-blocked adaptFeatures rewrite == the modulo reference. */
TEST(Generation, AdaptFeaturesTileRewriteMatchesModuloReference)
{
    Rng rng(77);
    struct Shape
    {
        std::size_t rows, cols, features;
    };
    const std::vector<Shape> shapes = {
        {8, 4, 8},   // identity
        {8, 4, 20},  // grow, non-multiple tail
        {8, 4, 16},  // grow, exact multiple
        {16, 4, 6},  // shrink
        {5, 3, 17},  // odd everything
    };
    for (const Shape &sh : shapes) {
        MatrixF y(sh.rows, sh.cols);
        for (auto &val : y.data())
            val = static_cast<float>(rng.gaussian(0.0, 1.0));
        const MatrixF got =
            serve::ServedModel::adaptFeatures(MatrixF(y), sh.features);
        ASSERT_EQ(got.rows(), sh.features);
        ASSERT_EQ(got.cols(), sh.cols);
        for (std::size_t r = 0; r < sh.features; ++r)
            for (std::size_t c = 0; c < sh.cols; ++c)
                EXPECT_EQ(got(r, c), y(r % sh.rows, c))
                    << "rows=" << sh.rows << " features=" << sh.features
                    << " at (" << r << "," << c << ")";
    }
}

/**
 * SubmitExtras::prepared is used verbatim and bit-exact; onReady fires
 * exactly once AFTER the promise resolves - on success, on a
 * mismatched prepared operand, and on a synchronous rejection.
 */
TEST(Generation, PreparedOperandSubmitIsBitExactAndOnReadyFiresOnce)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::shared_ptr<const serve::ServedModel> sm = model.shared();
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    const MatrixF x = makePrompt(model.inputFeatures(), v, 0x3333);

    serve::EngineOptions eo;
    eo.workers = 1;
    eo.batchWindow = 1;
    eo.batchDeadlineMs = 0.0;
    serve::InferenceEngine engine(eo);
    const serve::RequestResult plain =
        engine.submit(sm, MatrixF(x)).get();

    const auto await_fired = [](const std::atomic<int> &fired) {
        for (int spin = 0; spin < 2000 && fired.load() == 0; ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };

    std::atomic<int> fired{0};
    serve::SubmitExtras ex;
    ex.phase = serve::RequestPhase::Decode;
    ex.prepared = std::make_shared<const ActivationOperand>(
        sm->prepareInput(x));
    ex.onReady = [&fired] { ++fired; };
    const serve::RequestResult r =
        engine.submit(sm, MatrixF(x), std::move(ex)).get();
    EXPECT_TRUE(r.output == plain.output);
    expectStatsEqual(r.stats, plain.stats);
    await_fired(fired);
    EXPECT_EQ(fired.load(), 1);

    // A prepared operand whose column count mismatches the input is a
    // malformed request; the hook still fires exactly once.
    std::atomic<int> fired_bad{0};
    serve::SubmitExtras bad;
    bad.prepared = std::make_shared<const ActivationOperand>(
        sm->prepareInput(makePrompt(model.inputFeatures(), 2 * v, 4)));
    bad.onReady = [&fired_bad] { ++fired_bad; };
    auto fbad = engine.submit(sm, MatrixF(x), std::move(bad));
    EXPECT_THROW(fbad.get(), std::invalid_argument);
    await_fired(fired_bad);
    EXPECT_EQ(fired_bad.load(), 1);

    // Synchronous rejection (wrong feature rows): hook fires too.
    std::atomic<int> fired_rej{0};
    serve::SubmitExtras rej;
    rej.onReady = [&fired_rej] { ++fired_rej; };
    auto frej = engine.submit(
        sm, makePrompt(model.inputFeatures() + 3, v, 5),
        std::move(rej));
    EXPECT_THROW(frej.get(), std::invalid_argument);
    await_fired(fired_rej);
    EXPECT_EQ(fired_rej.load(), 1);
}

/**
 * Fleet-side generation: byte-identical to the Session path at 1 and
 * 2 replicas, every step tagged with its serving model version; an
 * unknown model name throws through the future.
 */
TEST(Generation, FleetGenerationMatchesSessionAtAnyReplicaCount)
{
    Runtime rt;
    const CompiledModel model = rt.compile(tinySpec());
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    const MatrixF prompt =
        makePrompt(model.inputFeatures(), 6 * v, 0x4444);

    Session solo = soloSession(rt);
    const ManualGen ref = manualGenerate(solo, model, prompt, 4, 0xf1);

    for (int replicas : {1, 2}) {
        FleetOptions fo;
        fo.replicas = replicas;
        Fleet fleet = rt.createFleet(fo);
        fleet.deploy(model);

        GenerationRequest req;
        req.prompt = prompt;
        req.maxSteps = 4;
        req.samplerSeed = 0xf1;
        req.prefillChunkGroups = 2;
        const GenerationResult res = fleet.generate(model, req).get();
        EXPECT_TRUE(res.prefillOutput == ref.prefill)
            << "replicas=" << replicas;
        EXPECT_TRUE(res.output == ref.output)
            << "replicas=" << replicas;
        expectComputeStatsEqual(res.stats, ref.stats);
        EXPECT_EQ(res.steps, 4u);
        ASSERT_EQ(res.stepMeta.size(), 3u + 4u); // 2+2+2 chunks + steps
        for (const GenerationStepMeta &m : res.stepMeta)
            EXPECT_GE(m.modelVersion, 1u);

        GenerationRequest unknown = req;
        auto fu = fleet.generate("no-such-model", std::move(unknown));
        EXPECT_THROW(fu.get(), std::invalid_argument);
        fleet.drain();
    }
}

} // namespace
} // namespace panacea
