/**
 * @file
 * Disk-tier eviction tests: the compiled-model cache directory must
 * stay under its byte cap by least-recently-used pruning (disk hits
 * refresh recency, the newest entry always survives), the version
 * sweep must remove exactly the entries a reader would reject (stale
 * format versions, corrupt envelopes) and nothing else, and a corrupt
 * file must be PRUNED on a failed load - never served, never left to
 * count against the cap forever.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "panacea/runtime.h"
#include "serve/model_serialize.h"
#include "serve/operand_cache.h"

namespace panacea {
namespace {

namespace fs = std::filesystem;

/** One layer keeps builds fast; the name salts the cache key. */
ModelSpec
tinySpec(const std::string &name)
{
    ModelSpec spec;
    spec.name = name;
    spec.seqLen = 16;
    LayerSpec l0;
    l0.name = "L0.FC1";
    l0.m = 16;
    l0.kDim = 16;
    l0.dist = ActDistKind::LayerNormGauss;
    spec.layers = {l0};
    return spec;
}

/** Unique scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;
    TempDir()
    {
        path = fs::temp_directory_path() /
               ("panacea_evict_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
    static int &
    counter()
    {
        static int c = 0;
        return c;
    }
};

/** The disk-tier file path of (spec, opts) inside `dir`. */
std::string
tierPath(const TempDir &dir, const ModelSpec &spec,
         const serve::ServeModelOptions &opts = {})
{
    return dir.file(
        serve::compiledModelFileName(serve::serveModelKey(spec, opts)));
}

void
setMtime(const std::string &path, int seconds_ago)
{
    fs::last_write_time(path,
                        fs::file_time_type::clock::now() -
                            std::chrono::seconds(seconds_ago));
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::size_t
pncmCount(const TempDir &dir)
{
    std::size_t n = 0;
    for (const auto &de : fs::directory_iterator(dir.path))
        if (de.path().extension() == ".pncm")
            ++n;
    return n;
}

TEST(CacheEviction, PruneRemovesOldestFirstAndSparesNewest)
{
    TempDir dir;
    writeBytes(dir.file("a.pncm"), std::string(1024, 'a'));
    writeBytes(dir.file("b.pncm"), std::string(1024, 'b'));
    writeBytes(dir.file("c.pncm"), std::string(1024, 'c'));
    setMtime(dir.file("a.pncm"), 300);
    setMtime(dir.file("b.pncm"), 200);
    setMtime(dir.file("c.pncm"), 100);

    // Cap fits two entries: the oldest (a) goes.
    serve::CacheDirReport r =
        serve::pruneCompiledModelDir(dir.path.string(), 2048);
    EXPECT_EQ(r.scanned, 3u);
    EXPECT_EQ(r.evicted, 1u);
    EXPECT_EQ(r.bytesFreed, 1024u);
    EXPECT_EQ(r.bytesKept, 2048u);
    EXPECT_FALSE(fs::exists(dir.file("a.pncm")));
    EXPECT_TRUE(fs::exists(dir.file("b.pncm")));
    EXPECT_TRUE(fs::exists(dir.file("c.pncm")));

    // A cap smaller than ANY entry still keeps the newest one.
    r = serve::pruneCompiledModelDir(dir.path.string(), 100);
    EXPECT_EQ(r.evicted, 1u);
    EXPECT_FALSE(fs::exists(dir.file("b.pncm")));
    EXPECT_TRUE(fs::exists(dir.file("c.pncm")));

    // Cap 0 = unbounded: a no-op.
    r = serve::pruneCompiledModelDir(dir.path.string(), 0);
    EXPECT_EQ(r.evicted, 0u);
    EXPECT_TRUE(fs::exists(dir.file("c.pncm")));
}

TEST(CacheEviction, WriteBackEnforcesTheCapThroughTheCache)
{
    TempDir dir;
    serve::PreparedModelCache cache;
    cache.setDiskDir(dir.path.string());

    // First build establishes the per-entry footprint.
    cache.acquire(tinySpec("evict-a"));
    const std::string path_a = tierPath(dir, tinySpec("evict-a"));
    ASSERT_TRUE(fs::exists(path_a));
    const std::uint64_t entry_bytes = fs::file_size(path_a);
    setMtime(path_a, 300);

    // Cap fits two entries; a third write-back must evict the LRU.
    cache.setDiskCapBytes(entry_bytes * 2 + entry_bytes / 2);
    EXPECT_EQ(cache.diskCapBytes(), entry_bytes * 2 + entry_bytes / 2);
    cache.acquire(tinySpec("evict-b"));
    setMtime(tierPath(dir, tinySpec("evict-b")), 200);
    cache.acquire(tinySpec("evict-c"));

    EXPECT_EQ(pncmCount(dir), 2u);
    EXPECT_FALSE(fs::exists(path_a));
    EXPECT_TRUE(fs::exists(tierPath(dir, tinySpec("evict-b"))));
    EXPECT_TRUE(fs::exists(tierPath(dir, tinySpec("evict-c"))));
}

TEST(CacheEviction, DiskHitRefreshesLruRecency)
{
    TempDir dir;
    std::uint64_t entry_bytes = 0;
    {
        serve::PreparedModelCache warm;
        warm.setDiskDir(dir.path.string());
        warm.acquire(tinySpec("lru-a"));
        warm.acquire(tinySpec("lru-b"));
        entry_bytes = fs::file_size(tierPath(dir, tinySpec("lru-a")));
    }
    // a is older than b on disk...
    setMtime(tierPath(dir, tinySpec("lru-a")), 300);
    setMtime(tierPath(dir, tinySpec("lru-b")), 200);

    // ...but a fresh process HITS a, refreshing its recency.
    serve::PreparedModelCache cold;
    cold.setDiskDir(dir.path.string());
    cold.setDiskCapBytes(entry_bytes * 2 + entry_bytes / 2);
    cold.acquire(tinySpec("lru-a"));
    EXPECT_EQ(cold.stats().diskHits, 1u);

    // The next write-back evicts b (now the least recently USED).
    cold.acquire(tinySpec("lru-c"));
    EXPECT_TRUE(fs::exists(tierPath(dir, tinySpec("lru-a"))));
    EXPECT_FALSE(fs::exists(tierPath(dir, tinySpec("lru-b"))));
    EXPECT_TRUE(fs::exists(tierPath(dir, tinySpec("lru-c"))));
}

TEST(CacheEviction, SweepRemovesStaleVersionsAndCorruptKeepsCurrent)
{
    TempDir dir;
    {
        serve::PreparedModelCache cache;
        cache.setDiskDir(dir.path.string());
        cache.acquire(tinySpec("sweep-keep"));
    }
    const std::string keep = tierPath(dir, tinySpec("sweep-keep"));
    ASSERT_TRUE(fs::exists(keep));
    EXPECT_EQ(serve::peekCompiledModelVersion(keep),
              serve::kCompiledModelFormatVersion);

    // A stale-version twin: same valid body, version field patched
    // (the version lives OUTSIDE the checksummed payload).
    std::ifstream in(keep, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[4] = static_cast<char>(
        serve::kCompiledModelFormatVersion + 57);
    writeBytes(dir.file("stale.pncm"), bytes);
    EXPECT_NE(serve::peekCompiledModelVersion(dir.file("stale.pncm")),
              serve::kCompiledModelFormatVersion);

    // A corrupt envelope and an unrelated file.
    writeBytes(dir.file("corrupt.pncm"), "not a compiled model");
    writeBytes(dir.file("notes.txt"), "left alone");

    const serve::CacheDirReport r =
        serve::sweepCompiledModelDir(dir.path.string());
    EXPECT_EQ(r.scanned, 3u);
    EXPECT_EQ(r.staleVersion, 1u);
    EXPECT_EQ(r.corrupt, 1u);
    EXPECT_EQ(r.evicted, 0u);
    EXPECT_TRUE(fs::exists(keep));
    EXPECT_FALSE(fs::exists(dir.file("stale.pncm")));
    EXPECT_FALSE(fs::exists(dir.file("corrupt.pncm")));
    EXPECT_TRUE(fs::exists(dir.file("notes.txt")));
}

TEST(CacheEviction, CorruptFileIsPrunedAndRebuiltNotLoaded)
{
    TempDir dir;
    const ModelSpec spec = tinySpec("corrupt-rebuild");
    const std::string path = tierPath(dir, spec);
    writeBytes(path, "garbage that is definitely not a model");

    serve::PreparedModelCache cache;
    cache.setDiskDir(dir.path.string());
    auto model = cache.acquire(spec);
    ASSERT_NE(model, nullptr);
    // Rebuilt, not loaded; the corrupt bytes were pruned and the
    // write-back replaced them with a loadable entry.
    EXPECT_EQ(cache.stats().diskHits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(serve::peekCompiledModelVersion(path),
              serve::kCompiledModelFormatVersion);
}

TEST(CacheEviction, RuntimeOptionPlumbsTheCap)
{
    TempDir dir;
    RuntimeOptions ropts;
    ropts.cacheDir = dir.path.string();
    ropts.cacheMaxBytes = 7 * 1024 * 1024;
    Runtime rt(ropts);
    EXPECT_EQ(rt.cache().diskDir(), dir.path.string());
    EXPECT_EQ(rt.cache().diskCapBytes(), 7u * 1024 * 1024);
}

} // namespace
} // namespace panacea
