/**
 * @file
 * Dataflow-conservation tests (DESIGN.md §5.6): the tiled executor walks
 * the cycle simulator's exact tile traversal - with DTP pairing and the
 * hardware Compensator units - and must reproduce the reference
 * AQS-GEMM engine bit-for-bit, at every sparsity and configuration.
 */

#include <gtest/gtest.h>

#include "arch/tiled_executor.h"
#include "quant/gemm_quant.h"
#include "util/random.h"

namespace panacea {
namespace {

struct Operands
{
    MatrixI32 w;
    MatrixI32 x;
    WeightOperand wOp;
    ActivationOperand xOp;
};

Operands
makeOperands(Rng &rng, std::size_t m, std::size_t k, std::size_t n,
             double w_bias, double x_bias, std::int32_t zp,
             const AqsConfig &cfg, int weight_lo = 1)
{
    Operands ops;
    ops.w = MatrixI32(m, k);
    const int bits = 3 * weight_lo + 4;
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    const std::int32_t narrow = (1 << std::max(1, bits - 4)) - 1;
    for (auto &v : ops.w.data())
        v = rng.bernoulli(w_bias)
                ? static_cast<std::int32_t>(rng.uniformInt(-narrow, narrow))
                : static_cast<std::int32_t>(rng.uniformInt(lo, hi));
    ops.x = MatrixI32(k, n);
    for (auto &v : ops.x.data()) {
        if (rng.bernoulli(x_bias))
            v = static_cast<std::int32_t>(std::clamp<std::int64_t>(
                zp + rng.uniformInt(-7, 7), 0, 255));
        else
            v = static_cast<std::int32_t>(rng.uniformInt(0, 255));
    }
    ops.wOp = prepareWeights(ops.w, weight_lo, cfg);
    ops.xOp = prepareActivations(ops.x, 1, zp, cfg);
    return ops;
}

TEST(TiledExecutor, MatchesReferenceEngineSingleTile)
{
    Rng rng(301);
    AqsConfig gemm_cfg;
    Operands ops = makeOperands(rng, 64, 32, 64, 0.6, 0.8, 136,
                                gemm_cfg);
    PanaceaConfig cfg;
    TiledExecutionStats st;
    MatrixI64 tiled = executeTiled(ops.wOp, ops.xOp, cfg, &st);
    MatrixI64 ref = aqsGemm(ops.wOp, ops.xOp, gemm_cfg);
    EXPECT_TRUE(tiled == ref);
    EXPECT_TRUE(ref == intGemm(ops.w, ops.x));
    EXPECT_EQ(st.tilesVisited, 1u);
    EXPECT_FALSE(st.dtpUsed);
}

TEST(TiledExecutor, MatchesReferenceWithDtpPairing)
{
    Rng rng(302);
    AqsConfig gemm_cfg;
    // 4 m-tiles x 3 n-tiles, high sparsity so DTP engages.
    Operands ops = makeOperands(rng, 256, 64, 192, 0.8, 0.9, 136,
                                gemm_cfg);
    PanaceaConfig cfg;
    cfg.enableDtp = true;
    TiledExecutionStats st;
    MatrixI64 tiled = executeTiled(ops.wOp, ops.xOp, cfg, &st);
    EXPECT_TRUE(tiled == intGemm(ops.w, ops.x));
    EXPECT_TRUE(st.dtpUsed);

    // DTP must never change the result or the executed-product count.
    PanaceaConfig no_dtp = cfg;
    no_dtp.enableDtp = false;
    TiledExecutionStats st2;
    MatrixI64 tiled2 = executeTiled(ops.wOp, ops.xOp, no_dtp, &st2);
    EXPECT_TRUE(tiled == tiled2);
    EXPECT_EQ(st.outerProducts, st2.outerProducts);
}

TEST(TiledExecutor, PartialTilesAtEveryEdge)
{
    Rng rng(303);
    AqsConfig gemm_cfg;
    // M = 192 (3 m-tiles), N = 80 (1.25 n-tiles): exercises the short
    // final tile in both dimensions.
    Operands ops = makeOperands(rng, 192, 48, 80, 0.5, 0.7, 88,
                                gemm_cfg);
    PanaceaConfig cfg;
    MatrixI64 tiled = executeTiled(ops.wOp, ops.xOp, cfg);
    EXPECT_TRUE(tiled == intGemm(ops.w, ops.x));
}

TEST(TiledExecutor, OuterProductCountMatchesFunctionalStats)
{
    Rng rng(304);
    AqsConfig gemm_cfg;
    Operands ops = makeOperands(rng, 128, 64, 128, 0.7, 0.85, 136,
                                gemm_cfg);
    AqsStats fstats;
    (void)aqsGemm(ops.wOp, ops.xOp, gemm_cfg, &fstats);
    PanaceaConfig cfg;
    TiledExecutionStats st;
    (void)executeTiled(ops.wOp, ops.xOp, cfg, &st);
    EXPECT_EQ(st.outerProducts, fstats.executedOuterProducts);
}

class TiledExecutorSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(TiledExecutorSweep, ConservationAcrossSparsities)
{
    const double w_bias = std::get<0>(GetParam());
    const double x_bias = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(w_bias * 31 + x_bias * 101) + 9);
    AqsConfig gemm_cfg;
    Operands ops = makeOperands(rng, 128, 40, 128, w_bias, x_bias, 168,
                                gemm_cfg);
    PanaceaConfig cfg;
    MatrixI64 tiled = executeTiled(ops.wOp, ops.xOp, cfg);
    EXPECT_TRUE(tiled == intGemm(ops.w, ops.x));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TiledExecutorSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 0.95),
                       ::testing::Values(0.0, 0.5, 0.95)));

TEST(TiledExecutor, ZeroOnlyAndNoneModes)
{
    Rng rng(305);
    for (ActSkipMode mode :
         {ActSkipMode::ZeroOnly, ActSkipMode::None}) {
        AqsConfig gemm_cfg;
        gemm_cfg.actSkip = mode;
        Operands ops = makeOperands(rng, 64, 32, 64, 0.6,
                                    mode == ActSkipMode::ZeroOnly ? 0.9
                                                                  : 0.5,
                                    mode == ActSkipMode::ZeroOnly ? 4
                                                                  : 136,
                                    gemm_cfg);
        PanaceaConfig cfg;
        cfg.actSkip = mode;
        MatrixI64 tiled = executeTiled(ops.wOp, ops.xOp, cfg);
        EXPECT_TRUE(tiled == intGemm(ops.w, ops.x))
            << toString(mode);
    }
}

TEST(TiledExecutor, TenBitWeightsThreeSlices)
{
    Rng rng(306);
    AqsConfig gemm_cfg;
    Operands ops = makeOperands(rng, 64, 32, 64, 0.6, 0.8, 136,
                                gemm_cfg, /*weight_lo=*/2);
    PanaceaConfig cfg;
    MatrixI64 tiled = executeTiled(ops.wOp, ops.xOp, cfg);
    EXPECT_TRUE(tiled == intGemm(ops.w, ops.x));
}

} // namespace
} // namespace panacea
