/**
 * @file
 * Zero-point manipulation tests (paper Eq. (7)): bucket-centre snapping,
 * clamping at the code-range edges, and the skip-range property that
 * motivates ZPM.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/zpm.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(Zpm, PaperExampleZp161)
{
    // Fig. 8: zp = 161 with l = 4. Eq. (7): 16*round(161/16)+8 = 168,
    // frequent slice r' = (168-8)>>4 = 10 = 1010(2).
    ZpmResult res = manipulateZeroPoint(161, 8, 4);
    EXPECT_EQ(res.zeroPoint, 168);
    EXPECT_EQ(res.frequentSlice, 10);
}

TEST(Zpm, ZeroStaysZero)
{
    ZpmResult res = manipulateZeroPoint(0, 8, 4);
    EXPECT_EQ(res.zeroPoint, 0);
    EXPECT_EQ(res.frequentSlice, 0);
}

TEST(Zpm, TopOfRangeStaysInTopBucket)
{
    // zp = 255 lives in bucket 15; its centre is 248.
    ZpmResult res = manipulateZeroPoint(255, 8, 4);
    EXPECT_EQ(res.zeroPoint, 248);
    EXPECT_EQ(res.frequentSlice, 15);
}

TEST(Zpm, RefitScaleKeepsRangeCovered)
{
    // Raw calibration: range [-1, 3] on 8 bits -> s = 4/255, zp = 64.
    QuantParams raw;
    raw.scheme = QuantScheme::Asymmetric;
    raw.bits = 8;
    raw.scale = 4.0 / 255.0;
    raw.zeroPoint = 64;

    // Move the zero point up (as a wide-bucket ZPM might): without a
    // refit, the top of the range would clip.
    QuantParams refit = refitScaleForZeroPoint(raw, 96);
    EXPECT_EQ(refit.zeroPoint, 96);
    // Both calibrated endpoints stay representable.
    double lo = -64.0 * raw.scale;
    double hi = (255.0 - 64.0) * raw.scale;
    EXPECT_LE(-refit.zeroPoint * refit.scale, lo + 1e-12);
    EXPECT_GE((255.0 - refit.zeroPoint) * refit.scale, hi - 1e-12);
    // Identity when the zero point is unchanged.
    QuantParams same = refitScaleForZeroPoint(raw, 64);
    EXPECT_DOUBLE_EQ(same.scale, raw.scale);
}

/** Exhaustive invariants over every possible zero point. */
class ZpmSweep : public ::testing::TestWithParam<int>
{};

TEST_P(ZpmSweep, InvariantsForAllZeroPoints)
{
    const int lo_bits = GetParam();
    const int step = 1 << lo_bits;
    for (std::int32_t zp = 0; zp <= 255; ++zp) {
        ZpmResult res = manipulateZeroPoint(zp, 8, lo_bits);
        // zp' is a representable code.
        ASSERT_GE(res.zeroPoint, 0);
        ASSERT_LE(res.zeroPoint, 255);
        if (zp > 0) {
            // zp' sits exactly at the centre of its HO bucket, so the
            // skip range [r*2^l, (r+1)*2^l) is centred on zp'.
            ASSERT_EQ(res.zeroPoint % step, step / 2) << "zp=" << zp;
            // Snapping to the containing bucket's centre moves the zero
            // point by at most half a bucket.
            ASSERT_LE(std::abs(res.zeroPoint - zp), step / 2);
            // The frequent slice is the HO slice of the original zp.
            ASSERT_EQ(res.frequentSlice, zp >> lo_bits);
        }
        // r' is the HO slice of the bucket base.
        ASSERT_EQ(res.frequentSlice,
                  (res.zeroPoint - (zp > 0 ? step / 2 : 0)) >> lo_bits);
        ASSERT_GE(res.frequentSlice, 0);
        ASSERT_LT(res.frequentSlice, 1 << (8 - lo_bits));
    }
}

INSTANTIATE_TEST_SUITE_P(LoWidths, ZpmSweep, ::testing::Values(4, 5, 6));

TEST(Zpm, SkipRangeCapturesCentredMass)
{
    // Values within +-2^(l-1) of zp' share the frequent HO slice: the
    // mechanism by which ZPM raises slice sparsity (68% -> 98% in the
    // paper example).
    const int l = 4;
    ZpmResult res = manipulateZeroPoint(161, 8, l);
    const int lo = res.frequentSlice << l;
    const int hi = lo + (1 << l) - 1;
    for (int v = res.zeroPoint - 8; v <= res.zeroPoint + 7; ++v) {
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
        EXPECT_EQ(v >> l, res.frequentSlice);
    }
}

TEST(Zpm, ApplyUpdatesParams)
{
    QuantParams params;
    params.scheme = QuantScheme::Asymmetric;
    params.bits = 8;
    params.zeroPoint = 161;
    ZpmResult res = applyZpm(params, 4);
    EXPECT_EQ(params.zeroPoint, 168);
    EXPECT_EQ(res.zeroPoint, 168);
}

TEST(Zpm, FrequentSliceOfUnmanipulatedZp)
{
    EXPECT_EQ(frequentSliceOf(161, 4), 10);
    EXPECT_EQ(frequentSliceOf(15, 4), 0);
    EXPECT_EQ(frequentSliceOf(255, 4), 15);
}

TEST(ZpmDeath, RejectsInvalidArguments)
{
    EXPECT_DEATH(manipulateZeroPoint(-1, 8, 4), "non-negative");
    EXPECT_DEATH(manipulateZeroPoint(10, 8, 8), "invalid");
}

namespace {

/** Skip-range mass captured when re-quantizing with the given zp'. */
double
capturedMass(const Histogram &codes, std::int32_t zp_old,
             std::int32_t zp_new, int lo_bits)
{
    const std::int32_t shift = zp_new - zp_old;
    const std::int32_t r = zp_new >> lo_bits;
    return codes.massIn((r << lo_bits) - shift,
                        (r << lo_bits) - shift + (1 << lo_bits) - 1);
}

} // namespace

TEST(ZpmHistAware, NeverWorseThanEq7)
{
    // Across a family of skewed distributions, the histogram-aware
    // phase must capture at least as much calibration mass as the
    // blind Eq. (7) centring.
    Rng rng(77);
    for (int trial = 0; trial < 30; ++trial) {
        const std::int32_t zp =
            static_cast<std::int32_t>(rng.uniformInt(1, 254));
        const double skew = rng.uniformReal(-6.0, 6.0);
        Histogram hist(0, 255);
        for (int i = 0; i < 20000; ++i) {
            auto c = static_cast<std::int64_t>(std::llround(
                zp + skew + rng.laplace(0.0, 4.0)));
            hist.add(std::clamp<std::int64_t>(c, 0, 255));
        }
        ZpmResult eq7 = manipulateZeroPoint(zp, 8, 4);
        ZpmResult aware = manipulateZeroPointHistAware(hist, zp, 8, 4);
        double mass_eq7 = capturedMass(hist, zp, eq7.zeroPoint, 4);
        double mass_aware = capturedMass(hist, zp, aware.zeroPoint, 4);
        ASSERT_GE(mass_aware + 1e-9, mass_eq7)
            << "zp=" << zp << " skew=" << skew;
        // The result is always a consistent (zp', r') pair in range.
        ASSERT_GE(aware.zeroPoint, 0);
        ASSERT_LE(aware.zeroPoint, 255);
        ASSERT_EQ(aware.frequentSlice, aware.zeroPoint >> 4);
    }
}

TEST(ZpmHistAware, PicksSkewedPhase)
{
    // A one-sided pile just above zp: the best bucket phase puts the
    // skip range over the pile, not symmetrically around zp.
    Histogram hist(0, 255);
    const std::int32_t zp = 96;
    for (int c = 96; c < 110; ++c)
        for (int i = 0; i < 100; ++i)
            hist.add(c);
    ZpmResult aware = manipulateZeroPointHistAware(hist, zp, 8, 4);
    double mass = capturedMass(hist, zp, aware.zeroPoint, 4);
    EXPECT_GT(mass, 0.99);
    // Eq. (7) centring loses the top of the pile.
    ZpmResult eq7 = manipulateZeroPoint(zp, 8, 4);
    EXPECT_LT(capturedMass(hist, zp, eq7.zeroPoint, 4), mass);
}

} // namespace
} // namespace panacea
