/**
 * @file
 * Shared test helper: RAII guard that restores the global thread-pool
 * size when a test that resizes it returns.
 */

#ifndef PANACEA_TESTS_POOL_GUARD_H
#define PANACEA_TESTS_POOL_GUARD_H

#include "util/parallel_for.h"

namespace panacea {

class PoolGuard
{
  public:
    PoolGuard() : saved_(parallelThreads()) {}
    ~PoolGuard() { setParallelThreads(saved_); }

    PoolGuard(const PoolGuard &) = delete;
    PoolGuard &operator=(const PoolGuard &) = delete;

  private:
    int saved_;
};

} // namespace panacea

#endif // PANACEA_TESTS_POOL_GUARD_H
