/**
 * @file
 * PPU tests: PWL GELU accuracy, non-linearity dispatch and integer
 * requantization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/ppu.h"
#include "quant/quantizer.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(Ppu, PwlGeluCloseToExact)
{
    double max_err = 0.0;
    for (float x = -6.0f; x <= 6.0f; x += 0.01f) {
        double err = std::abs(pwlGelu(x) - geluExact(x));
        max_err = std::max(max_err, err);
    }
    EXPECT_LT(max_err, 8e-3);
}

TEST(Ppu, PwlGeluTailsExact)
{
    EXPECT_FLOAT_EQ(pwlGelu(-10.0f), 0.0f);
    EXPECT_FLOAT_EQ(pwlGelu(10.0f), 10.0f);
}

TEST(Ppu, NonlinearityDispatch)
{
    MatrixF x(1, 3);
    x(0, 0) = -1.0f;
    x(0, 1) = 0.0f;
    x(0, 2) = 2.0f;

    MatrixF relu = applyNonlinearityExact(x, Nonlinearity::Relu);
    EXPECT_FLOAT_EQ(relu(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(relu(0, 2), 2.0f);

    MatrixF none = applyNonlinearityExact(x, Nonlinearity::None);
    EXPECT_TRUE(none == x);

    MatrixF gelu_pwl = applyNonlinearityPwl(x, Nonlinearity::Gelu);
    MatrixF gelu_exact = applyNonlinearityExact(x, Nonlinearity::Gelu);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(gelu_pwl(0, i), gelu_exact(0, i), 8e-3);
}

TEST(Ppu, RequantizeMatchesScalarQuantizer)
{
    Rng rng(111);
    MatrixI64 acc(4, 4);
    for (auto &v : acc.data())
        v = rng.uniformInt(-50000, 50000);
    const double acc_scale = 0.0005;

    QuantParams out;
    out.scheme = QuantScheme::Asymmetric;
    out.bits = 8;
    out.scale = 0.02;
    out.zeroPoint = 131;

    MatrixI32 codes = requantize(acc, acc_scale, out);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c) {
            float real = static_cast<float>(acc(r, c) * acc_scale);
            EXPECT_EQ(codes(r, c), quantizeValue(real, out));
        }
}

TEST(Ppu, RequantizeClips)
{
    MatrixI64 acc(1, 2);
    acc(0, 0) = 1 << 30;
    acc(0, 1) = -(1 << 30);
    QuantParams out;
    out.scheme = QuantScheme::Asymmetric;
    out.bits = 8;
    out.scale = 0.01;
    out.zeroPoint = 128;
    MatrixI32 codes = requantize(acc, 1.0, out);
    EXPECT_EQ(codes(0, 0), 255);
    EXPECT_EQ(codes(0, 1), 0);
}

TEST(Ppu, OpCount)
{
    EXPECT_EQ(ppuOpsFor(100), 300u);
}

} // namespace
} // namespace panacea
