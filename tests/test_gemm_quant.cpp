/**
 * @file
 * Integer-GEMM-with-bias-folding tests (paper Eq. (3)): the folded-bias
 * identity W(x - zp) = Wx - zp*W*1 must hold bit-exactly, and the
 * dequantized output must approximate the float GEMM.
 */

#include <gtest/gtest.h>

#include "quant/gemm_quant.h"
#include "quant/quantizer.h"
#include "util/random.h"

namespace panacea {
namespace {

TEST(GemmQuant, IntGemmMatchesFloatOnIntegers)
{
    Rng rng(6);
    MatrixI32 w(8, 12);
    MatrixI32 x(12, 4);
    for (auto &v : w.data())
        v = static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    for (auto &v : x.data())
        v = static_cast<std::int32_t>(rng.uniformInt(0, 255));

    MatrixI64 acc = intGemm(w, x);
    for (std::size_t m = 0; m < 8; ++m)
        for (std::size_t n = 0; n < 4; ++n) {
            std::int64_t ref = 0;
            for (std::size_t k = 0; k < 12; ++k)
                ref += static_cast<std::int64_t>(w(m, k)) * x(k, n);
            ASSERT_EQ(acc(m, n), ref);
        }
}

TEST(GemmQuant, ZeroPointFoldingIdentity)
{
    Rng rng(7);
    MatrixI32 w(8, 12);
    MatrixI32 x(12, 4);
    const std::int32_t zp = 137;
    for (auto &v : w.data())
        v = static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    for (auto &v : x.data())
        v = static_cast<std::int32_t>(rng.uniformInt(0, 255));

    // Reference: W (x - zp) computed directly.
    MatrixI32 x_shifted(12, 4);
    for (std::size_t r = 0; r < 12; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            x_shifted(r, c) = x(r, c) - zp;
    MatrixI64 ref = intGemm(w, x_shifted);

    // Folded: W x + b_hat with b_hat = -zp * W * 1.
    MatrixI64 folded = intGemm(w, x);
    std::vector<std::int64_t> b_hat = foldZeroPointBias(w, zp);
    addRowBias(folded, b_hat);
    EXPECT_TRUE(folded == ref);
}

TEST(GemmQuant, QuantizedLinearApproximatesFloat)
{
    Rng rng(8);
    MatrixF w(16, 32);
    MatrixF x(32, 8);
    std::vector<float> bias(16);
    for (auto &v : w.data())
        v = static_cast<float>(rng.gaussian(0.0, 0.2));
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian(1.0, 0.8));
    for (auto &v : bias)
        v = static_cast<float>(rng.gaussian(0.0, 0.5));

    QuantParams x_params = chooseAsymmetricParams(x.data(), 8);
    QuantizedLinear layer = QuantizedLinear::make(w, bias, 8, x_params);
    MatrixF y_q = layer.forward(x);
    MatrixF y_f = floatGemm(w, x, bias);

    double err = 0.0;
    double mag = 0.0;
    for (std::size_t i = 0; i < y_q.data().size(); ++i) {
        double d = y_q.data()[i] - y_f.data()[i];
        err += d * d;
        mag += static_cast<double>(y_f.data()[i]) * y_f.data()[i];
    }
    // 8-bit quantization of well-behaved data: relative error well
    // under 1%.
    EXPECT_LT(std::sqrt(err / mag), 0.01);
}

TEST(GemmQuant, DequantizeAccumulatorScales)
{
    MatrixI64 acc(2, 2);
    acc(0, 0) = 100;
    acc(1, 1) = -50;
    MatrixF out = dequantizeAccumulator(acc, 0.5, 0.25);
    EXPECT_FLOAT_EQ(out(0, 0), 12.5f);
    EXPECT_FLOAT_EQ(out(1, 1), -6.25f);
    EXPECT_FLOAT_EQ(out(0, 1), 0.0f);
}

TEST(GemmQuantDeath, ShapeMismatch)
{
    MatrixI32 w(4, 5);
    MatrixI32 x(6, 3);
    EXPECT_DEATH(intGemm(w, x), "shape mismatch");
}

} // namespace
} // namespace panacea
