/**
 * @file
 * Model-zoo and synthetic-data tests: shape divisibility, distribution
 * family properties, the layer-build bridge and the accuracy proxy
 * orderings the paper relies on.
 */

#include <gtest/gtest.h>

#include "models/accuracy_proxy.h"
#include "models/model_workloads.h"
#include "models/model_zoo.h"
#include "models/synth_data.h"
#include "quant/quantizer.h"
#include "util/stats.h"

namespace panacea {
namespace {

TEST(ModelZoo, AllShapesDivisibleByVectorLength)
{
    for (const ModelSpec &model : allModels()) {
        for (const LayerSpec &l : model.layers) {
            EXPECT_EQ(l.m % 4, 0u) << model.name << "/" << l.name;
            std::size_t n = l.nOverride ? l.nOverride : model.seqLen;
            EXPECT_EQ(n % 4, 0u) << model.name << "/" << l.name;
            EXPECT_GT(l.kDim, 0u);
            // Weight widths must be SBR-compatible.
            EXPECT_EQ((l.weightBits - 4) % 3, 0)
                << model.name << "/" << l.name;
            EXPECT_EQ(l.actBits % 4, 0) << model.name << "/" << l.name;
        }
    }
}

TEST(ModelZoo, KnownShapes)
{
    ModelSpec opt = opt2_7b();
    ASSERT_EQ(opt.layers.size(), 4u);
    EXPECT_EQ(opt.layers[0].m, 3u * 2560);   // QKV
    EXPECT_EQ(opt.layers[2].m, 10240u);      // FC1
    EXPECT_EQ(opt.layers[2].kDim, 2560u);
    EXPECT_EQ(opt.layers[0].repeat, 32u);
    EXPECT_TRUE(opt.isLlm);

    ModelSpec gpt = gpt2();
    EXPECT_EQ(gpt.layers[2].weightBits, 10);  // paper footnote
    EXPECT_EQ(gpt.layers[0].weightBits, 7);

    ModelSpec llama = llama32_1b();
    EXPECT_EQ(llama.layers.back().actBits, 12);  // down-projection
}

TEST(ModelZoo, TotalMacsScaleWithSeq)
{
    ModelSpec bert = bertBase();
    EXPECT_EQ(bert.totalMacs(256), 2 * bert.totalMacs(128));
}

TEST(SynthData, PostReluIsNonNegativeWithZeros)
{
    Rng rng(131);
    MatrixF x = genActivations(rng, 64, 128, ActDistKind::PostRelu);
    std::size_t zeros = 0;
    for (float v : x.data()) {
        ASSERT_GE(v, 0.0f);
        zeros += v == 0.0f ? 1 : 0;
    }
    // ReLU of near-centred Gaussians: a large fraction of exact zeros.
    EXPECT_GT(zeros, x.size() / 5);
}

TEST(SynthData, PostGeluIsAsymmetric)
{
    Rng rng(132);
    MatrixF x = genActivations(rng, 64, 128, ActDistKind::PostGelu);
    SampleStats st = computeStats(x.data());
    // GELU's negative lobe is bounded (~ -0.17 * sigma); positive tail
    // is long: |min| << max.
    EXPECT_LT(std::abs(st.min), st.max / 3.0);
}

TEST(SynthData, OutliersWidenTheRange)
{
    Rng rng(133);
    MatrixF narrow =
        genActivations(rng, 256, 64, ActDistKind::LayerNormGauss, 1.0,
                       0.0);
    Rng rng2(133);
    MatrixF wide = genActivations(rng2, 256, 64,
                                  ActDistKind::LayerNormGauss, 1.0, 0.1);
    SampleStats sn = computeStats(narrow.data());
    SampleStats sw = computeStats(wide.data());
    EXPECT_GT(sw.max - sw.min, sn.max - sn.min);
}

TEST(SynthData, WeightsNearZero)
{
    Rng rng(134);
    MatrixF w = genWeights(rng, 128, 256);
    SampleStats st = computeStats(w.data());
    EXPECT_NEAR(st.mean, 0.0, 0.01);
    EXPECT_LT(st.stddev, 0.2);
}

TEST(ModelWorkloads, BuildLayerProducesConsistentWorkloads)
{
    LayerSpec spec;
    spec.name = "T";
    spec.m = 128;
    spec.kDim = 96;
    spec.dist = ActDistKind::PostGelu;

    ModelBuildOptions opt;
    Rng rng(135);
    LayerBuild lb = buildLayer(spec, 64, opt, rng);

    EXPECT_EQ(lb.panacea.m, 128u);
    EXPECT_EQ(lb.panacea.k, 96u);
    EXPECT_EQ(lb.panacea.n, 64u);
    EXPECT_EQ(lb.panacea.wLevels, 2);
    EXPECT_EQ(lb.panacea.xLevels, 2);
    EXPECT_EQ(lb.sibia.actBits, 7);
    // Same weights on both sides.
    EXPECT_TRUE(lb.panacea.wMask == lb.sibia.wMask);
    // The AQS path must find skippable activation vectors on a GELU
    // layer; the symmetric zero-skip path finds some too (near-zero
    // GELU outputs), but Panacea's r-skip dominates.
    EXPECT_GT(lb.actHoPanacea.vectorLevel, 0.3);
    EXPECT_GE(lb.actHoPanacea.vectorLevel, lb.actHoSibia.vectorLevel);
}

TEST(ModelWorkloads, ZpmRaisesSparsity)
{
    LayerSpec spec;
    spec.name = "T";
    spec.m = 64;
    spec.kDim = 64;
    spec.dist = ActDistKind::LayerNormGauss;

    ModelBuildOptions with_zpm;
    with_zpm.enableDbs = false;
    with_zpm.enableZpm = true;
    ModelBuildOptions no_zpm = with_zpm;
    no_zpm.enableZpm = false;

    Rng rng_a(136);
    Rng rng_b(136);
    LayerBuild a = buildLayer(spec, 64, with_zpm, rng_a);
    LayerBuild b = buildLayer(spec, 64, no_zpm, rng_b);
    EXPECT_GE(a.actHoPanacea.sliceLevel, b.actHoPanacea.sliceLevel);
}

TEST(ModelWorkloads, AsymBeatsSymOnAsymmetricData)
{
    LayerSpec spec;
    spec.name = "T";
    spec.m = 64;
    spec.kDim = 128;
    spec.dist = ActDistKind::PostGelu;

    // Apples-to-apples quantizer comparison (paper Fig. 1/5): plain
    // asymmetric vs symmetric, without the DBS fidelity/sparsity trade.
    ModelBuildOptions opt;
    opt.enableDbs = false;
    Rng rng(137);
    LayerBuild lb = buildLayer(spec, 128, opt, rng);
    EXPECT_LT(lb.actNmseAsym, lb.actNmseSym);
}

TEST(ModelWorkloads, BuildModelCollectsAllLayers)
{
    ModelSpec tiny;
    tiny.name = "tiny";
    tiny.seqLen = 32;
    tiny.layers = {
        {"A", 64, 64, 0, ActDistKind::LayerNormGauss, 1.0, 0.0, 2, 7, 8},
        {"B", 64, 64, 0, ActDistKind::PostGelu, 1.0, 0.0, 2, 7, 8},
    };
    ModelBuildOptions opt;
    ModelBuild build = buildModel(tiny, opt);
    ASSERT_EQ(build.layers.size(), 2u);
    EXPECT_EQ(build.panaceaWorkloads().size(), 2u);
    EXPECT_EQ(build.sibiaWorkloads().size(), 2u);
    EXPECT_EQ(build.layers[0].panacea.repeat, 2u);
    EXPECT_GT(build.meanNmseSym(), 0.0);
}

TEST(AccuracyProxy, MonotoneAndAnchored)
{
    EXPECT_DOUBLE_EQ(proxyPerplexity(12.47, 0.0), 12.47);
    EXPECT_GT(proxyPerplexity(12.47, 0.01), 12.47);
    EXPECT_GT(proxyPerplexity(12.47, 0.02),
              proxyPerplexity(12.47, 0.01));
    EXPECT_DOUBLE_EQ(proxyAccuracyLossPct(0.0), 0.0);
    EXPECT_GT(proxyAccuracyLossPct(0.01), proxyAccuracyLossPct(0.001));
}

TEST(AccuracyProxy, NmseMeasuresQuantizer)
{
    Rng rng(138);
    MatrixF x(64, 64);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian(1.0, 0.5));
    QuantParams p8 = chooseAsymmetricParams(x.data(), 8);
    QuantParams p4 = chooseAsymmetricParams(x.data(), 4);
    double n8 = quantizationNmse(x, p8);
    double n4 = quantizationNmse(x, p4);
    EXPECT_LT(n8, n4);  // more bits, less noise
    EXPECT_GT(n8, 0.0);
    // DBS truncation adds error monotonically in l.
    double d4 = quantizationNmseDbs(x, p8, 4);
    double d5 = quantizationNmseDbs(x, p8, 5);
    double d6 = quantizationNmseDbs(x, p8, 6);
    EXPECT_DOUBLE_EQ(d4, n8);
    EXPECT_LE(d4, d5);
    EXPECT_LE(d5, d6);
}

} // namespace
} // namespace panacea
