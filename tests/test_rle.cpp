/**
 * @file
 * Run-length encoding tests (paper Fig. 7(a)): round trips, the skip
 * budget of w-bit indices, verbatim storage of over-budget runs,
 * trailing-run elision and traffic accounting.
 */

#include <gtest/gtest.h>

#include "slicing/rle.h"
#include "util/random.h"

namespace panacea {
namespace {

std::vector<Slice>
makeVectors(Rng &rng, std::size_t count, int vlen, Slice fill,
            double fill_prob)
{
    std::vector<Slice> out(count * static_cast<std::size_t>(vlen));
    for (std::size_t i = 0; i < count; ++i) {
        bool compressed = rng.bernoulli(fill_prob);
        for (int j = 0; j < vlen; ++j) {
            out[i * vlen + j] =
                compressed ? fill
                           : static_cast<Slice>(rng.uniformInt(0, 15));
        }
    }
    return out;
}

TEST(Rle, RoundTripRandom)
{
    Rng rng(21);
    for (double p : {0.0, 0.3, 0.7, 0.95, 1.0}) {
        std::vector<Slice> vectors = makeVectors(rng, 200, 4, 10, p);
        RleStream stream = RleStream::encode(vectors, 200, 4, 10, 4);
        EXPECT_EQ(stream.decode(), vectors) << "fill prob " << p;
    }
}

TEST(Rle, AllCompressedNeedsNoEntries)
{
    std::vector<Slice> vectors(40, 5);  // 10 vectors of fill=5
    RleStream stream = RleStream::encode(vectors, 10, 4, 5, 4);
    EXPECT_EQ(stream.storedCount(), 0u);
    EXPECT_EQ(stream.decode(), vectors);
    EXPECT_DOUBLE_EQ(stream.compressionRatio(), 1.0);
    EXPECT_EQ(stream.encodedBits(), 0u);
}

TEST(Rle, OverBudgetRunStoredVerbatim)
{
    // 20 compressed vectors in a row with 4-bit indices (max skip 15):
    // the 16th must be stored verbatim, the remaining 4 elided as a
    // trailing run... unless a stored vector follows.
    std::vector<Slice> vectors(21 * 4, 7);
    for (int j = 0; j < 4; ++j)
        vectors[20 * 4 + j] = 1;  // final vector uncompressed
    RleStream stream = RleStream::encode(vectors, 21, 4, 7, 4);
    // Entries: the verbatim fill vector at index 15 and the real one at
    // index 20.
    ASSERT_EQ(stream.storedCount(), 2u);
    EXPECT_EQ(stream.entries()[0].skip, 15);
    EXPECT_EQ(stream.entries()[0].vectorIndex, 15u);
    EXPECT_EQ(stream.entries()[1].skip, 4);
    EXPECT_EQ(stream.entries()[1].vectorIndex, 20u);
    EXPECT_EQ(stream.decode(), vectors);
}

TEST(Rle, WiderIndexExtendsBudget)
{
    std::vector<Slice> vectors(21 * 4, 7);
    for (int j = 0; j < 4; ++j)
        vectors[20 * 4 + j] = 1;
    RleStream stream = RleStream::encode(vectors, 21, 4, 7, 8);
    // With 8-bit indices the 20-vector run fits in one skip.
    ASSERT_EQ(stream.storedCount(), 1u);
    EXPECT_EQ(stream.entries()[0].skip, 20);
    EXPECT_EQ(stream.decode(), vectors);
}

TEST(Rle, TrafficAccounting)
{
    Rng rng(22);
    std::vector<Slice> vectors = makeVectors(rng, 100, 4, 0, 0.8);
    RleStream stream = RleStream::encode(vectors, 100, 4, 0, 4);
    EXPECT_EQ(stream.denseBits(), 100u * 16);
    EXPECT_EQ(stream.encodedBits(), stream.storedCount() * (16 + 4));
    EXPECT_LT(stream.encodedBits(), stream.denseBits());
}

TEST(Rle, WeightPlaneStreams)
{
    // 8x3 plane, v=4: two row bands. Band 0 columns {0,2} all-zero.
    Matrix<Slice> plane(8, 3, 0);
    for (int r = 0; r < 4; ++r)
        plane(r, 1) = static_cast<Slice>(r + 1);
    for (int r = 4; r < 8; ++r)
        for (int c = 0; c < 3; ++c)
            plane(r, c) = 3;

    auto streams = encodeWeightPlane(plane, 4, 4);
    ASSERT_EQ(streams.size(), 2u);
    EXPECT_EQ(streams[0].storedCount(), 1u);  // only column 1 stored
    EXPECT_EQ(streams[0].entries()[0].vectorIndex, 1u);
    EXPECT_EQ(streams[1].storedCount(), 3u);  // nothing compressible
}

TEST(Rle, ActivationPlaneStreams)
{
    // 3x8 plane, v=4: two column bands; fill value r=9.
    Matrix<Slice> plane(3, 8, 9);
    plane(1, 0) = 2;  // row 1, band 0 not compressible
    auto streams = encodeActivationPlane(plane, 4, 9, 4);
    ASSERT_EQ(streams.size(), 2u);
    EXPECT_EQ(streams[0].storedCount(), 1u);
    EXPECT_EQ(streams[0].entries()[0].vectorIndex, 1u);
    EXPECT_EQ(streams[1].storedCount(), 0u);
}

TEST(RleDeath, SizeMismatch)
{
    std::vector<Slice> vectors(10);
    EXPECT_DEATH(RleStream::encode(vectors, 4, 4, 0, 4), "input size");
}

} // namespace
} // namespace panacea
