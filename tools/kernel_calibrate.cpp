/**
 * @file
 * panacea_kernel_calibrate - resolve (and persist) the per-host
 * stream-vs-gather kernel cost calibration (core/kernel_cost_model.h).
 *
 * The first run on a host measures every runnable ISA tier x kernel
 * family and writes PANACEA_CACHE_DIR/kernel_costs.json; later runs
 * load that file with zero re-measurements - which is exactly what the
 * CI calibration smoke asserts by running this tool twice and checking
 * `loaded_from_disk` / `measurements` in the JSON summary below.
 *
 * Usage:
 *   panacea_kernel_calibrate [--dir=<cache-dir>]
 *
 * --dir overrides PANACEA_CACHE_DIR. Without either, the calibration
 * is measured but not persisted (path reported as ""). Exit code 0 on
 * success, 1 on usage errors.
 */

#include <iostream>
#include <string>

#include "core/kernel_cost_model.h"
#include "util/cpu_features.h"

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--dir=", 0) == 0) {
            panacea::detail::setKernelCostCacheDir(arg.substr(6));
        } else {
            std::cerr << "unknown option " << arg << "\n"
                      << "usage: panacea_kernel_calibrate "
                         "[--dir=<cache-dir>]\n";
            return 1;
        }
    }

    const panacea::detail::KernelCostTable &table =
        panacea::detail::kernelCostTable();

    std::cout << "{\n  \"path\": \""
              << panacea::detail::kernelCostCachePath()
              << "\",\n  \"isa_cap\": \""
              << panacea::toString(table.isa_cap)
              << "\",\n  \"loaded_from_disk\": "
              << (table.loaded_from_disk ? "true" : "false")
              << ",\n  \"measurements\": " << table.measurements
              << ",\n  \"entries\": [\n";
    bool first = true;
    for (std::size_t l = 0; l < panacea::kIsaLevelCount; ++l)
        for (std::size_t f = 0;
             f < panacea::detail::kKernelFamilyCount; ++f) {
            const panacea::detail::KernelCostEntry &e =
                table.entries[l][f];
            if (!e.measured)
                continue;
            if (!first)
                std::cout << ",\n";
            first = false;
            std::cout
                << "    {\"isa\": \""
                << panacea::toString(static_cast<panacea::IsaLevel>(l))
                << "\", \"family\": \"" << (f == 0 ? "pass4" : "generic")
                << "\", \"gather_ps_per_step\": " << e.gather_ps_per_step
                << ", \"stream_ps_per_pair\": " << e.stream_ps_per_pair
                << "}";
        }
    std::cout << "\n  ]\n}\n";
    return 0;
}
