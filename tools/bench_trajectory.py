#!/usr/bin/env python3
"""Concatenate per-commit BENCH_*.json figures into a trajectory CSV.

Each CI run calls this with the commit SHA and whatever BENCH_*.json
files the benches wrote; the emitted CSV has one row per (bench, isa,
case, metric) figure, so rows from successive commits concatenate into
a perf-over-time series (download the BENCH_trajectory artifacts and
`cat` them - the header repeats but is trivially de-duplicated).

Usage:
    bench_trajectory.py --commit <sha> [--out trajectory.csv] BENCH_*.json

Understands these payload shapes:
  - bench_kernels:    isa_cases[] and single_thread_cases[] GMAC/s;
                      density_sweep[] static-vs-measured stream-policy
                      GMAC/s per activation density;
                      thread_scaling[] GMAC/s, folded ONLY when the
                      payload says thread_scaling_measured (a 1-core
                      host's flat width-1 ladder is unmeasured scaling,
                      not a real curve - it is skipped with a note)
  - bench_serving:    sequential.gmacs and windows[].gmacs
  - bench_fleet:      load_points[].gmacs (goodput at 0.5x/1x/2x load)
  - bench_generation: modes[].tokens_per_s and inter-token p99 (the
                      phase-aware-vs-FIFO serving trajectory)
Unknown files are skipped with a note, never an error - the script must
not fail a CI run over a bench it predates.
"""

import argparse
import csv
import json
import sys


def rows_for(path, payload, commit):
    bench = payload.get("bench", "")
    isa = payload.get("isa", "")
    out = []

    def row(case, value, metric="gmacs"):
        if value is not None:
            out.append(
                {
                    "commit": commit,
                    "bench": bench or path,
                    "isa": isa,
                    "case": case,
                    "metric": metric,
                    "value": value,
                }
            )

    for case in payload.get("isa_cases", []):
        row("isa:" + case.get("isa", "?"), case.get("gmacs"))
    for case in payload.get("single_thread_cases", []):
        shape = "%sx%sx%s@%s" % (
            case.get("m"),
            case.get("k"),
            case.get("n"),
            case.get("sparsity_pct"),
        )
        row("blocked:" + shape, case.get("blocked_gmacs"))
    for p in payload.get("density_sweep", []):
        case = "density:%s" % p.get("density_pct", "?")
        row(case, p.get("static_gmacs"), "static_gmacs")
        row(case, p.get("measured_gmacs"), "measured_gmacs")
    scaling = payload.get("thread_scaling", [])
    if scaling:
        if payload.get("thread_scaling_measured"):
            for p in scaling:
                row("threads:%s" % p.get("threads", "?"), p.get("gmacs"))
        else:
            print(
                "skipping %s thread_scaling: host could not run the "
                "ladder concurrently (unmeasured scaling, not a real "
                "curve)" % path,
                file=sys.stderr,
            )
    seq = payload.get("sequential")
    if isinstance(seq, dict):
        row("sequential", seq.get("gmacs"))
    for w in payload.get("windows", []):
        row("window:%s" % w.get("window", "?"), w.get("gmacs"))
    for p in payload.get("load_points", []):
        row("load:%sx" % p.get("factor", "?"), p.get("gmacs"))
    if bench == "generation":
        for m in payload.get("modes", []):
            name = m.get("name", "?")
            row("mode:%s" % name, m.get("tokens_per_s"), "tokens_per_s")
            row(
                "mode:%s" % name,
                m.get("inter_token_p99_ms"),
                "inter_token_p99_ms",
            )
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--commit", required=True)
    ap.add_argument("--out", default="BENCH_trajectory.csv")
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    rows = []
    for path in args.files:
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as err:
            print("skipping %s: %s" % (path, err), file=sys.stderr)
            continue
        found = rows_for(path, payload, args.commit)
        if not found:
            print("skipping %s: no figures" % path, file=sys.stderr)
        rows.extend(found)

    with open(args.out, "w", newline="") as fh:
        writer = csv.DictWriter(
            fh,
            fieldnames=["commit", "bench", "isa", "case", "metric", "value"],
        )
        writer.writeheader()
        writer.writerows(rows)
    print("wrote %s (%d rows)" % (args.out, len(rows)))


if __name__ == "__main__":
    main()
