#!/usr/bin/env python3
"""CI gate over bench_kernels --density-sweep output.

Asserts the measured-cost stream/gather dispatch policy holds up
against the static rule across the activation-density sweep:

  - parity: every sweep point compared both policies' outputs against
    the scalar reference bit-for-bit;
  - no point may lose more than 2% to the static rule
    (measured_over_static >= 0.98 everywhere);
  - at least one point must win or tie (max ratio >= 1.0) - on every
    calibrated host the low-density end is a real gather-vs-stream
    crossover win, not noise.

This is a perf gate on shared runners, so the CI step retries the
bench once before treating a miss as real.

Usage: check_density_sweep.py BENCH_kernels.json
"""

import json
import sys


def main():
    if len(sys.argv) != 2:
        print("usage: check_density_sweep.py BENCH_kernels.json",
              file=sys.stderr)
        return 2
    payload = json.load(open(sys.argv[1]))
    sweep = payload.get("density_sweep", [])
    if not sweep:
        print("no density_sweep in payload (run bench_kernels with "
              "--density-sweep)", file=sys.stderr)
        return 1
    ratios = [p["measured_over_static"] for p in sweep]
    print("measured/static GMAC/s by density:",
          ", ".join("%d%%: %.3f" % (p["density_pct"],
                                    p["measured_over_static"])
                    for p in sweep))
    if not all(p["parity"] for p in sweep):
        print("FAIL: a sweep point broke bit-parity with the reference",
              file=sys.stderr)
        return 1
    if min(ratios) < 0.98:
        print("FAIL: measured policy lost %.1f%% to static at %d%% "
              "density (budget: 2%%)"
              % ((1 - min(ratios)) * 100,
                 sweep[ratios.index(min(ratios))]["density_pct"]),
              file=sys.stderr)
        return 1
    if max(ratios) < 1.0:
        print("FAIL: measured policy never reached parity with static "
              "(max ratio %.3f)" % max(ratios), file=sys.stderr)
        return 1
    print("ok: min ratio %.3f, max ratio %.3f"
          % (min(ratios), max(ratios)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
