/**
 * @file
 * panacea_cache_sweep - maintenance tool for a compiled-model cache
 * directory (the disk tier of PreparedModelCache / PANACEA_CACHE_DIR).
 *
 * Removes every .pncm file that a reader would reject anyway - stale
 * format versions and corrupt envelopes - and, with --max-mb, enforces
 * a size cap by least-recently-used pruning (disk hits refresh a
 * file's timestamp, so idle entries go first; the newest entry always
 * survives). Entries of any READABLE format version are left intact -
 * legacy v1 files still load (via the copying path) and stay.
 *
 * Usage:
 *   panacea_cache_sweep <dir> [--max-mb=N] [--dry-run]
 *
 * Exit code 0 on success (even when nothing was removed), 1 on usage
 * errors or a missing directory.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "serve/model_serialize.h"

int
main(int argc, char **argv)
{
    std::string dir;
    std::uint64_t max_bytes = 0;
    bool dry_run = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--max-mb=", 0) == 0) {
            const long mb = std::strtol(arg.c_str() + 9, nullptr, 10);
            if (mb <= 0) {
                std::cerr << "bad --max-mb value in '" << arg << "'\n";
                return 1;
            }
            max_bytes =
                static_cast<std::uint64_t>(mb) * 1024ull * 1024ull;
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option " << arg << "\n"
                      << "usage: panacea_cache_sweep <dir> [--max-mb=N]"
                         " [--dry-run]\n";
            return 1;
        } else if (dir.empty()) {
            dir = arg;
        } else {
            std::cerr << "more than one directory given\n";
            return 1;
        }
    }
    if (dir.empty()) {
        std::cerr << "usage: panacea_cache_sweep <dir> [--max-mb=N]"
                     " [--dry-run]\n";
        return 1;
    }
    if (!std::filesystem::is_directory(dir)) {
        std::cerr << dir << " is not a directory\n";
        return 1;
    }

    if (dry_run) {
        // Report what a sweep WOULD remove - stale/corrupt envelopes
        // plus the size-cap LRU evictions - without touching anything.
        struct Entry
        {
            std::filesystem::file_time_type mtime;
            std::uint64_t bytes;
        };
        std::uint64_t scanned = 0, stale = 0, corrupt = 0, bytes = 0;
        std::vector<Entry> kept;
        for (const auto &de : std::filesystem::directory_iterator(dir)) {
            if (!de.is_regular_file() ||
                de.path().extension() !=
                    panacea::serve::kCompiledModelExtension)
                continue;
            ++scanned;
            bytes += de.file_size();
            try {
                if (!panacea::serve::isSupportedCompiledModelVersion(
                        panacea::serve::peekCompiledModelVersion(
                            de.path().string()))) {
                    ++stale;
                    continue;
                }
            } catch (const panacea::serve::SerializeError &) {
                ++corrupt;
                continue;
            }
            kept.push_back({de.last_write_time(), de.file_size()});
        }
        // Replay the LRU pass over the survivors: oldest first, the
        // newest entry always spared - same rule as the real prune.
        std::uint64_t evict = 0, kept_bytes = 0;
        for (const Entry &e : kept)
            kept_bytes += e.bytes;
        if (max_bytes > 0 && kept_bytes > max_bytes) {
            std::sort(kept.begin(), kept.end(),
                      [](const Entry &a, const Entry &b) {
                          return a.mtime < b.mtime;
                      });
            for (std::size_t i = 0;
                 i + 1 < kept.size() && kept_bytes > max_bytes; ++i) {
                kept_bytes -= kept[i].bytes;
                ++evict;
            }
        }
        std::cout << "dry run: " << scanned << " entries (" << bytes
                  << " bytes), would remove " << stale
                  << " stale-version + " << corrupt << " corrupt + "
                  << evict << " size-cap evictions (keeping "
                  << kept_bytes << " bytes)\n";
        return 0;
    }

    const panacea::serve::CacheDirReport report =
        panacea::serve::sweepCompiledModelDir(dir, max_bytes);
    std::cout << "swept " << dir << ": " << report.scanned
              << " entries scanned, removed " << report.staleVersion
              << " stale-version + " << report.corrupt << " corrupt + "
              << report.evicted << " size-cap evictions ("
              << report.bytesFreed << " bytes freed, "
              << report.bytesKept << " kept)\n";
    return 0;
}
