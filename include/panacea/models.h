/**
 * @file
 * Model descriptions for the public API: LayerSpec/ModelSpec (exact
 * GEMM shapes plus an activation-distribution family per layer - the
 * repository's checkpoint substitute) and the model zoo of paper
 * workloads (deitBase(), bertBase(), opt350m(), opt2_7b(), gpt2(),
 * llama32_1b(), ...). Pass any of these - or your own ModelSpec - to
 * Runtime::compile().
 */

#ifndef PANACEA_PUBLIC_MODELS_H
#define PANACEA_PUBLIC_MODELS_H

#include "models/layer.h"
#include "models/model_zoo.h"

#endif // PANACEA_PUBLIC_MODELS_H
