/**
 * @file
 * The Panacea public API, one include. This facade is the supported
 * surface of the library - `src/` headers are implementation detail
 * and may change without notice.
 *
 *   #include <panacea/panacea.h>
 *
 *   panacea::Runtime rt({.cacheDir = "/var/cache/panacea"});
 *   panacea::CompiledModel m = rt.compile(panacea::opt350m());
 *   panacea::Session s = rt.createSession();
 *   panacea::InferenceResult r = s.infer(m, input);
 *
 *   panacea::saveCompiledModel(m, "opt350m.pncm");   // deploy artifact
 *   auto cold = panacea::loadCompiledModel("opt350m.pncm"); // 0 prep
 *
 * Pieces (each usable on its own):
 *   panacea/runtime.h        Runtime: ISA/pool/cache in one place
 *   panacea/compiled_model.h CompiledModel + uncached compileModel()
 *   panacea/session.h        Session: submit/await micro-batching
 *   panacea/generation.h     autoregressive generate(): phase-aware decode
 *   panacea/fleet.h          Fleet: N replicas behind a shedding router
 *   panacea/serialize.h      save/load of compiled models
 *   panacea/models.h         ModelSpec + the paper model zoo
 *   panacea/core.h           single-layer AQS pipeline + AQS-GEMM
 *   panacea/simulation.h     cycle simulator + paper baselines
 *   panacea/util.h           Matrix, RNG, tables, pool/ISA knobs
 */

#ifndef PANACEA_PUBLIC_PANACEA_H
#define PANACEA_PUBLIC_PANACEA_H

#include "panacea/compiled_model.h"
#include "panacea/core.h"
#include "panacea/fleet.h"
#include "panacea/generation.h"
#include "panacea/models.h"
#include "panacea/runtime.h"
#include "panacea/serialize.h"
#include "panacea/session.h"
#include "panacea/simulation.h"
#include "panacea/util.h"

#endif // PANACEA_PUBLIC_PANACEA_H
