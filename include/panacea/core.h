/**
 * @file
 * Layer-level public API: the single-layer Panacea pipeline for users
 * who bring their own float tensors instead of a ModelSpec.
 *
 *   auto layer = panacea::AqsLinearLayer::calibrate(w, bias, calib, opts);
 *   panacea::MatrixF y = layer.forward(x, &stats);
 *
 * Also re-exports the AQS-GEMM engine surface (prepare/execute/count
 * entry points, AqsStats, AqsConfig) and the plain quantized-GEMM
 * reference used for exactness checks. Serving whole models is the
 * job of panacea/runtime.h; this header is the escape hatch below it.
 */

#ifndef PANACEA_PUBLIC_CORE_H
#define PANACEA_PUBLIC_CORE_H

#include "core/aqs_gemm.h"
#include "core/aqs_layer.h"
#include "quant/gemm_quant.h"

#endif // PANACEA_PUBLIC_CORE_H
