/**
 * @file
 * Autoregressive generation - the public surface over
 * src/serve/generation/. A GenerationRequest (prompt, step budget,
 * seeded sampler, streaming callback) becomes a chain of phase-tagged
 * engine submissions: bounded prefill chunks that can never stall a
 * running decode stream for more than one chunk, and decode steps
 * that ride the engine's urgent queue with their single new column
 * group pre-prepped off the critical path.
 *
 *   panacea::Runtime rt;
 *   panacea::CompiledModel m = rt.compile(panacea::opt350m());
 *   panacea::Session s = rt.createSession({.continuous = true});
 *
 *   panacea::GenerationRequest req;
 *   req.prompt = prompt;            // inputFeatures x (k*v) floats
 *   req.maxSteps = 16;
 *   req.samplerSeed = 42;
 *   req.onStep = [](const panacea::GenerationStepView &sv) {
 *       stream(sv.output, sv.rows, sv.cols);  // valid during call
 *   };
 *   panacea::GenerationResult r = s.generate(m, req).get();
 *   // r.output: outputFeatures x (16*v), byte-identical to a manual
 *   // per-step loop at any ISA level / worker count / replica count.
 *
 * Determinism: the decode chain is a pure function of
 * (samplerSeed, prompt bytes). Scheduling policy (phaseAware on/off),
 * ISA level, worker count, admission timing and replica count change
 * WHEN steps execute, never their bytes (tests/test_generation.cpp).
 */

#ifndef PANACEA_PUBLIC_GENERATION_H
#define PANACEA_PUBLIC_GENERATION_H

#include "serve/generation/generation.h"

namespace panacea {

/** Which half of a generation a step belonged to (prefill/decode). */
using GenerationPhase = serve::GenerationPhase;

/** The deterministic next-step sampler (seed -> decode chain). */
using TokenSampler = serve::TokenSampler;

/** One generation job: prompt, steps, seed, policy, callback. */
using GenerationRequest = serve::GenerationRequest;

/** Streaming view of one completed step (valid during callback). */
using GenerationStepView = serve::GenerationStepView;

/** Scheduling record of one engine step of a generation. */
using GenerationStepMeta = serve::GenerationStepMeta;

/** Terminal record: prefill + decode outputs, stats, latency rings. */
using GenerationResult = serve::GenerationResult;

/** Aggregate scheduler counters: tokens/s, TTFT and inter-token
 *  percentiles, paged-state accounting. */
using GenerationStats = serve::GenerationStats;

} // namespace panacea

#endif // PANACEA_PUBLIC_GENERATION_H
