/**
 * @file
 * Accelerator simulation for the public API: the cycle-level Panacea
 * simulator (PEA/scheduler/memory/DTP), the SIBIA / systolic / SIMD
 * baselines, workload construction from model specs, and the
 * accuracy/perplexity proxies - everything the paper-figure benches
 * and the what-if examples use to size a deployment.
 */

#ifndef PANACEA_PUBLIC_SIMULATION_H
#define PANACEA_PUBLIC_SIMULATION_H

#include "arch/panacea_sim.h"
#include "baselines/sibia.h"
#include "baselines/simd.h"
#include "baselines/systolic.h"
#include "models/accuracy_proxy.h"
#include "models/model_workloads.h"

#endif // PANACEA_PUBLIC_SIMULATION_H
