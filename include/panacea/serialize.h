/**
 * @file
 * Save/load of compiled models: the versioned little-endian binary
 * format that turns the expensive AQS preparation into a deployable
 * artifact. A model saved here and loaded in another process is
 * behaviourally byte-identical to the freshly compiled original -
 * same outputs, same AqsStats, at every ISA level - and loading does
 * zero calibration/slicing/RLE/HO work.
 *
 * The current format (v2) lays every bulk payload out in
 * 64-byte-aligned sections so loadCompiledModel() can map the file
 * read-only and serve the weights in place: cold-start cost becomes
 * page mapping plus header validation, and processes loading the same
 * file share one set of physical weight pages
 * (CompiledModel::mappedBytes() reports the mapping). Legacy v1 files
 * remain loadable through the copying decode. The full layout is
 * documented in src/serve/model_serialize.h;
 * tests/test_model_serialize.cpp pins round-trip byte identity and
 * every rejection path. Any structural defect - bad magic, unknown
 * version, checksum mismatch, truncation, fingerprint mismatch -
 * throws SerializeError; a load never returns a half-built model.
 *
 * Runtime::compile() with RuntimeOptions::cacheDir automates this
 * (save on build, load on cold start); these entry points are for
 * explicit artifact handling (CI, deployment pipelines,
 * bench_serving --save/--load).
 */

#ifndef PANACEA_PUBLIC_SERIALIZE_H
#define PANACEA_PUBLIC_SERIALIZE_H

#include <string>

#include "panacea/compiled_model.h"
#include "serve/model_serialize.h"

namespace panacea {

/** Structural defect in a compiled-model file (see file header). */
using SerializeError = serve::SerializeError;

/** Current compiled-model file format version (sectioned, mappable). */
inline constexpr std::uint32_t kCompiledModelFormatVersion =
    serve::kCompiledModelFormatVersion;

/** The legacy copying format; still loadable, writable on request. */
inline constexpr std::uint32_t kCompiledModelLegacyFormatVersion =
    serve::kCompiledModelLegacyFormatVersion;

/**
 * Write a compiled model to `path` (atomically: temp file + rename).
 * The bytes are a pure function of (prepared state, version), so
 * save -> load -> save reproduces the identical file. `version`
 * selects the file format - pass kCompiledModelLegacyFormatVersion to
 * produce a v1 file for consumers that predate the mappable format.
 */
inline void
saveCompiledModel(const CompiledModel &model, const std::string &path,
                  std::uint32_t version = kCompiledModelFormatVersion)
{
    serve::saveServedModel(*model.shared(), path, version);
}

/**
 * Read a compiled model from `path`; throws SerializeError. With
 * `allow_mmap` (the default) a v2 file is mapped read-only and its
 * weights served in place (CompiledModel::mappedBytes() > 0); the
 * copying decode covers v1 files, mmap-less platforms and
 * PANACEA_MMAP=0 (which wins over the caller). Both paths produce
 * bit-identical models.
 */
inline CompiledModel
loadCompiledModel(const std::string &path, bool allow_mmap = true)
{
    return CompiledModel(serve::loadServedModel(path, allow_mmap));
}

/**
 * @return the format version stored in a compiled-model file's
 * envelope (a few bytes read, no payload decode). Throws
 * SerializeError on a missing/short file or bad magic.
 */
inline std::uint32_t
peekCompiledModelVersion(const std::string &path)
{
    return serve::peekCompiledModelVersion(path);
}

/**
 * loadCompiledModel() plus an identity check: the file's fingerprint
 * must equal serveModelKey(spec, opts) - i.e. the artifact must be
 * THE compiled form of exactly this model and configuration. Use it
 * when the file name is untrusted (deployment manifests, CI
 * artifacts); throws SerializeError on mismatch.
 */
inline CompiledModel
loadCompiledModelFor(const std::string &path, const ModelSpec &spec,
                     const CompileOptions &opts = {},
                     bool allow_mmap = true)
{
    CompiledModel model = loadCompiledModel(path, allow_mmap);
    const std::string want = serve::serveModelKey(spec, opts);
    if (model.key() != want)
        throw SerializeError("compiled model at " + path +
                             " holds key '" + model.key() +
                             "', expected '" + want + "'");
    return model;
}

} // namespace panacea

#endif // PANACEA_PUBLIC_SERIALIZE_H
