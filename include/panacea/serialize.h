/**
 * @file
 * Save/load of compiled models: the versioned little-endian binary
 * format that turns the expensive AQS preparation into a deployable
 * artifact. A model saved here and loaded in another process is
 * behaviourally byte-identical to the freshly compiled original -
 * same outputs, same AqsStats, at every ISA level - and loading does
 * zero calibration/slicing/RLE/HO work.
 *
 * File layout ("PNCM" magic + format version + fingerprinted payload
 * + FNV-1a checksum) is documented in src/serve/model_serialize.h;
 * tests/test_model_serialize.cpp pins round-trip byte identity and
 * every rejection path. Any structural defect - bad magic, unknown
 * version, checksum mismatch, truncation, fingerprint mismatch -
 * throws SerializeError; a load never returns a half-built model.
 *
 * Runtime::compile() with RuntimeOptions::cacheDir automates this
 * (save on build, load on cold start); these entry points are for
 * explicit artifact handling (CI, deployment pipelines,
 * bench_serving --save/--load).
 */

#ifndef PANACEA_PUBLIC_SERIALIZE_H
#define PANACEA_PUBLIC_SERIALIZE_H

#include <string>

#include "panacea/compiled_model.h"
#include "serve/model_serialize.h"

namespace panacea {

/** Structural defect in a compiled-model file (see file header). */
using SerializeError = serve::SerializeError;

/** Current compiled-model file format version. */
inline constexpr std::uint32_t kCompiledModelFormatVersion =
    serve::kCompiledModelFormatVersion;

/**
 * Write a compiled model to `path` (atomically: temp file + rename).
 * The bytes are a pure function of the prepared state, so
 * save -> load -> save reproduces the identical file.
 */
inline void
saveCompiledModel(const CompiledModel &model, const std::string &path)
{
    serve::saveServedModel(*model.shared(), path);
}

/** Read a compiled model from `path`; throws SerializeError. */
inline CompiledModel
loadCompiledModel(const std::string &path)
{
    return CompiledModel(serve::loadServedModel(path));
}

/**
 * loadCompiledModel() plus an identity check: the file's fingerprint
 * must equal serveModelKey(spec, opts) - i.e. the artifact must be
 * THE compiled form of exactly this model and configuration. Use it
 * when the file name is untrusted (deployment manifests, CI
 * artifacts); throws SerializeError on mismatch.
 */
inline CompiledModel
loadCompiledModelFor(const std::string &path, const ModelSpec &spec,
                     const CompileOptions &opts = {})
{
    CompiledModel model = loadCompiledModel(path);
    const std::string want = serve::serveModelKey(spec, opts);
    if (model.key() != want)
        throw SerializeError("compiled model at " + path +
                             " holds key '" + model.key() +
                             "', expected '" + want + "'");
    return model;
}

} // namespace panacea

#endif // PANACEA_PUBLIC_SERIALIZE_H
