/**
 * @file
 * panacea::Session - the submit/await surface of the serving runtime.
 * A Session wraps the layer-stepped micro-batching engine: requests
 * for the same CompiledModel coalesce into one column-concatenated
 * GEMM (up to the batch window, waiting at most the batch deadline),
 * models take round-robin turns, and every request receives its own
 * output columns and execution statistics - bit-identical to a solo
 * run, whatever batch it rode in.
 *
 * Continuous batching (SessionOptions::continuous): the engine
 * advances a running batch one layer at a time and admits newly
 * submitted requests BETWEEN layer steps - a late request catches up
 * through the layers it missed and is spliced into the running
 * cohort instead of waiting for the whole stack, cutting tail
 * latency under open-loop arrivals. InferenceResult::admittedAtLayer
 * records where each request joined, and SessionStats splits latency
 * into queue-wait and execute percentile series plus an
 * admission-layer histogram. Bit-exactness is unchanged in either
 * mode.
 *
 * Sessions come from Runtime::createSession() and must not outlive
 * their Runtime (they serve models through its cache). All methods
 * are thread-safe; a Session may be shared by any number of
 * submitting threads.
 */

#ifndef PANACEA_PUBLIC_SESSION_H
#define PANACEA_PUBLIC_SESSION_H

#include <future>
#include <memory>
#include <utility>

#include "panacea/compiled_model.h"
#include "panacea/generation.h"
#include "serve/engine.h"
#include "serve/request.h"

namespace panacea {

/**
 * Session configuration: batch window, fill deadline, worker count,
 * paused start, continuous (layer-stepped) admission and its
 * in-flight column cap. See serve/engine.h for field semantics;
 * batching parameters change throughput and latency only, never
 * results.
 */
using SessionOptions = serve::EngineOptions;

/**
 * One request's completion record: output columns, solo-equivalent
 * AqsStats, batch size/sequence, admission layer
 * (admittedAtLayer: 0 = batched at stack entry, L = spliced into a
 * running cohort at layer L), and the latency split
 * (queueWaitMs + executeMs = latencyMs).
 */
using InferenceResult = serve::RequestResult;

/**
 * Aggregate session counters (requests, batches, latency/queue-wait/
 * execute percentiles, admission-layer histogram, stats). Percentiles
 * cover completed requests only; see serve/request.h.
 */
using SessionStats = serve::EngineStats;

/** The submit/await handle; see the file header. */
class Session
{
  public:
    Session() = default;

    /**
     * Wrap an engine bound to `cache` (the Runtime's). Application
     * code uses Runtime::createSession() instead.
     */
    Session(const SessionOptions &opts,
            serve::PreparedModelCache *cache)
        : engine_(std::make_unique<serve::InferenceEngine>(opts, cache)),
          gen_(std::make_unique<serve::GenerationScheduler>(*engine_))
    {}

    /** @return whether this session holds an engine. */
    bool valid() const { return engine_ != nullptr; }

    /**
     * Enqueue one request: `input` must be model.inputFeatures() rows
     * by a positive multiple of v columns. Malformed requests are
     * rejected through the returned future (std::invalid_argument on
     * get()) and never disturb other requests.
     */
    std::future<InferenceResult>
    submit(const CompiledModel &model, MatrixF input)
    {
        return engine_->submit(model.shared(), std::move(input));
    }

    /** submit() and wait: the blocking convenience for simple loops. */
    InferenceResult
    infer(const CompiledModel &model, MatrixF input)
    {
        return submit(model, std::move(input)).get();
    }

    /**
     * Start one autoregressive generation (see panacea/generation.h):
     * the prompt prefills in bounded chunks, then maxSteps decode
     * steps chain through the seeded sampler, each re-entering the
     * engine's admission ahead of queued prefill work (phase-aware
     * scheduling; GenerationRequest::phaseAware = false reproduces a
     * naive FIFO loop, with byte-identical outputs). The future
     * yields exactly one GenerationResult or one exception.
     */
    std::future<GenerationResult>
    generate(const CompiledModel &model, GenerationRequest req)
    {
        return gen_->generate(model.shared(), std::move(req));
    }

    /** Release the workers of a startPaused session (idempotent). */
    void start() { engine_->start(); }

    /**
     * Block until every submitted request AND every started
     * generation completed (implies start). Generations drain first:
     * they stop feeding the engine once terminal, so the engine drain
     * below cannot race their step submissions.
     */
    void drain()
    {
        gen_->drain();
        engine_->drain();
    }

    /** @return aggregate counters (deterministic fields documented). */
    SessionStats stats() const { return engine_->stats(); }

    /** @return generation counters: tokens/s, TTFT and inter-token
     *  percentiles, paged-state bytes (see GenerationStats). */
    GenerationStats generationStats() const { return gen_->stats(); }

    /** @return the resolved options (window/deadline/workers). */
    const SessionOptions &options() const { return engine_->options(); }

  private:
    std::unique_ptr<serve::InferenceEngine> engine_;
    /** Declared after engine_: destroyed FIRST, so teardown drains
     *  live generations through a still-alive engine. */
    std::unique_ptr<serve::GenerationScheduler> gen_;
};

} // namespace panacea

#endif // PANACEA_PUBLIC_SESSION_H
