/**
 * @file
 * panacea::Fleet - the horizontally-scaled serving surface. Where a
 * Session is one engine, a Fleet is N engine replicas behind a
 * queue-depth-aware router: per-model placement, least-outstanding
 * dispatch, bounded per-replica queues with typed load-shedding
 * (FleetOutcome::Rejected instead of unbounded latency), replica
 * quarantine with redispatch on faults, and hot-reload of a new
 * compiled-model version under live traffic.
 *
 * Typical use:
 *
 *   panacea::RuntimeOptions ropts;
 *   ropts.replicas = 4;                    // or PANACEA_REPLICAS
 *   panacea::Runtime rt(ropts);
 *   panacea::CompiledModel model = rt.compile(spec);
 *   panacea::Fleet fleet = rt.createFleet();
 *   fleet.deploy(model);
 *   auto fut = fleet.submit(spec.name, input);
 *   panacea::FleetResult r = fut.get();    // never throws
 *   if (r.outcome == panacea::FleetOutcome::Completed) use(r.result);
 *   else retryElsewhere(r.rejectReason);   // typed shed, not an error
 *
 *   fleet.reload(rt.compile(newSpec));     // hot-swap, zero downtime
 *
 * Every submission yields exactly one terminal FleetResult (completed
 * xor rejected); completed outputs are byte-identical to a solo
 * Session run regardless of replica count, faults, or reload timing.
 * With .pncm v2 models loaded via mmap, all replicas share one
 * physical copy of the weights. Fleets must not outlive their
 * Runtime. See src/serve/fleet.h for the full router semantics.
 */

#ifndef PANACEA_PUBLIC_FLEET_H
#define PANACEA_PUBLIC_FLEET_H

#include <future>
#include <memory>
#include <string>
#include <utility>

#include "panacea/compiled_model.h"
#include "panacea/generation.h"
#include "serve/fleet.h"

namespace panacea {

/**
 * Fleet configuration: replica count (0 -> PANACEA_REPLICAS -> 2),
 * per-replica column bounds (queueCapColumns/engineDepthColumns),
 * placement width, stall detection, paused start, per-replica engine
 * options and test hooks. See serve/fleet.h for field semantics.
 */
using FleetOptions = serve::FleetOptions;

/** Completed xor Rejected - every submission gets exactly one. */
using FleetOutcome = serve::FleetOutcome;

/** Terminal record: outcome, engine result, replica, version, why. */
using FleetResult = serve::FleetResult;

/** Aggregate router counters plus per-replica health. */
using FleetStats = serve::FleetStats;

/** Deterministic per-replica fault injection (tests). */
using FleetTestHooks = serve::FleetTestHooks;

/** The multi-replica serving handle; see the file header. */
class Fleet
{
  public:
    Fleet() = default;

    /**
     * Wrap a router. Application code uses Runtime::createFleet()
     * instead.
     */
    explicit Fleet(const FleetOptions &opts)
        : router_(std::make_unique<serve::ReplicaRouter>(opts))
    {}

    /** @return whether this fleet holds a router. */
    bool valid() const { return router_ != nullptr; }

    /**
     * Make `model` routable by its compiled name; deploying a name
     * again is a hot-reload. @return the version new submissions get.
     */
    std::uint64_t deploy(const CompiledModel &model)
    {
        return router_->deploy(model.shared());
    }

    /**
     * Hot-reload: atomically swap what `model`'s name routes to.
     * In-flight requests complete on the version they were admitted
     * under (FleetResult::modelVersion tags each).
     */
    std::uint64_t reload(const CompiledModel &model)
    {
        return router_->reload(model.shared());
    }

    /**
     * Submit one request to the named deployed model. The future
     * ALWAYS yields exactly one FleetResult and never throws:
     * backpressure, unknown names and malformed inputs surface as
     * typed Rejected results.
     */
    std::future<FleetResult> submit(const std::string &model_name,
                                    MatrixF input)
    {
        return router_->submit(model_name, std::move(input));
    }

    /** Convenience overload routing by the model's compiled name. */
    std::future<FleetResult> submit(const CompiledModel &model,
                                    MatrixF input)
    {
        return router_->submit(model.shared()->spec().name,
                               std::move(input));
    }

    /**
     * Run one autoregressive generation over the fleet (see
     * panacea/generation.h): the same chunked-prefill + seeded-decode
     * chain as Session::generate, each step routed (and possibly
     * redispatched) by the router under its phase tag - so outputs
     * are byte-identical to the Session path at any replica count.
     * The future yields the GenerationResult, or throws
     * std::runtime_error when a step was shed/rejected mid-chain
     * (unlike submit(), whose rejections are typed results - a
     * half-generated sequence has no useful typed half). The Fleet
     * must outlive the returned future.
     */
    std::future<GenerationResult>
    generate(const std::string &model_name, GenerationRequest req)
    {
        return std::async(
            std::launch::async,
            [router = router_.get(), model_name,
             r = std::move(req)]() mutable {
                return serve::generateOverRouter(*router, model_name,
                                                 std::move(r));
            });
    }

    /** Convenience overload routing by the model's compiled name. */
    std::future<GenerationResult>
    generate(const CompiledModel &model, GenerationRequest req)
    {
        return generate(model.shared()->spec().name, std::move(req));
    }

    /** Release a startPaused fleet's dispatchers (idempotent). */
    void start() { router_->start(); }

    /** Block until every prior submission reached a terminal result
     *  (implies start; concurrent submits reject while draining). */
    void drain() { router_->drain(); }

    /** Open every test-hook stall latch (idempotent; tests). */
    void releaseStalls() { router_->releaseStalls(); }

    /** @return router counters and per-replica health. */
    FleetStats stats() const { return router_->stats(); }

    /** @return the resolved options. */
    const FleetOptions &options() const { return router_->options(); }

    /** @return the replica count after defaulting. */
    int replicaCount() const { return router_->replicaCount(); }

  private:
    std::unique_ptr<serve::ReplicaRouter> router_;
};

} // namespace panacea

#endif // PANACEA_PUBLIC_FLEET_H
