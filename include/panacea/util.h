/**
 * @file
 * Support types the public API hands out or accepts: the dense Matrix
 * container, the deterministic RNG, wall-clock helpers, table/banner
 * printing, FNV-1a hashing (the library's digest/fingerprint
 * primitive), the shared thread pool (panacea::setParallelThreads)
 * and runtime ISA selection (panacea::setIsaLevel) - the two knobs
 * RuntimeOptions wraps.
 */

#ifndef PANACEA_PUBLIC_UTIL_H
#define PANACEA_PUBLIC_UTIL_H

#include "util/cpu_features.h"
#include "util/fnv.h"
#include "util/matrix.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/table.h"
#include "util/walltime.h"

#endif // PANACEA_PUBLIC_UTIL_H
