/**
 * @file
 * panacea::Runtime - the root object of the public API. One Runtime
 * gathers everything that used to require poking four internal layers
 * (`aqsGemm`, `AqsLinearLayer`, `ServedModel`, `InferenceEngine`)
 * into a single place:
 *
 *   - execution environment: micro-kernel ISA tier and thread-pool
 *     width, applied once at construction;
 *   - the prepared-model cache, optionally backed by an on-disk tier
 *     of versioned compiled-model files so a cold process loads
 *     models with ZERO calibration/slicing/RLE/HO work;
 *   - compile(): ModelSpec -> CompiledModel through that cache;
 *   - createSession(): the submit/await serving surface.
 *
 * Typical use:
 *
 *   panacea::RuntimeOptions ropts;
 *   ropts.cacheDir = "/var/cache/panacea";     // optional disk tier
 *   panacea::Runtime rt(ropts);
 *   panacea::CompiledModel model = rt.compile(panacea::deitBase());
 *   panacea::Session session = rt.createSession();
 *   auto result = session.infer(model, input); // or submit() futures
 *
 * Sessions and CompiledModels must not outlive their Runtime.
 */

#ifndef PANACEA_PUBLIC_RUNTIME_H
#define PANACEA_PUBLIC_RUNTIME_H

#include <memory>
#include <string>

#include "panacea/compiled_model.h"
#include "panacea/fleet.h"
#include "panacea/session.h"
#include "serve/operand_cache.h"

namespace panacea {

/** Cache effectiveness counters (hits/misses/diskHits/ms saved). */
using CacheStats = serve::PreparedModelCache::CacheStats;

/** Runtime configuration (fixed at construction). */
struct RuntimeOptions
{
    /**
     * Micro-kernel ISA tier: "scalar" | "sse2" | "avx2" | "avx512" |
     * "vnni"; "" keeps the current selection (PANACEA_ISA env var or
     * auto detection). Requests above what the machine or build
     * supports clamp down. NOTE: kernel dispatch is process-global
     * state - the last Runtime constructed wins.
     */
    std::string isa;
    /**
     * Stream-vs-gather dispatch policy for the pair-pass kernels:
     * "static" | "measured" | "stream" | "gather"; "" keeps the
     * current selection (PANACEA_STREAM_POLICY env var, default
     * "measured" - the per-host calibrated cost comparison). Also
     * process-global; every policy produces bit-identical results.
     */
    std::string streamPolicy;
    /**
     * Thread-pool width for kernels and operand preparation; 0 keeps
     * the current width (PANACEA_THREADS env var or hardware
     * concurrency). Also process-global.
     */
    int threads = 0;
    /**
     * Directory of the compiled-model disk tier; "" disables it.
     * With a directory set, compile() loads previously-saved models
     * instead of rebuilding (cold starts skip calibration entirely)
     * and writes every fresh build back.
     */
    std::string cacheDir;
    /**
     * Size cap of the disk tier in bytes; 0 = unbounded (or the
     * PANACEA_CACHE_MAX_MB environment variable when the global cache
     * is shared). When a write-back pushes the directory past the
     * cap, least-recently-USED .pncm files are pruned (disk hits
     * refresh recency) until it fits - the newest entry is never
     * pruned. Eviction only costs a later cold start a rebuild; it
     * can never change results.
     */
    std::uint64_t cacheMaxBytes = 0;
    /**
     * Share the process-wide model cache instead of owning a private
     * one: several Runtimes then deduplicate preparation across each
     * other (cacheDir, when set, is applied to the global cache).
     */
    bool useGlobalCache = false;
    /**
     * Serve disk-tier hits by mapping the compiled-model file
     * read-only and consuming its payloads in place (format v2), so a
     * cold start is bounded by page mapping - not by decoding - and
     * every process loading the same file shares one set of physical
     * weight pages. Off (or PANACEA_MMAP=0 in the environment, which
     * wins over this flag) forces the copying decode; legacy v1 files
     * always decode by copying. Either path yields bit-identical
     * outputs.
     */
    bool mmapModels = true;
    /**
     * Default replica count for createFleet(): the value used when
     * FleetOptions::replicas is left at 0. 0 here defers to the
     * PANACEA_REPLICAS environment variable, falling back to 2.
     */
    int replicas = 0;
};

/** The public API root; see the file header. */
class Runtime
{
  public:
    explicit Runtime(const RuntimeOptions &opts = {});

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Compile (prepare) a model, deduplicated through the cache:
     * memory hit -> shared handle; disk hit (cacheDir set) -> decode,
     * zero preparation work; otherwise the full calibration +
     * slicing/RLE/HO pipeline runs once and (cacheDir set) the result
     * is persisted. Concurrent compiles of the same key share one
     * build. Every path returns a behaviourally identical model -
     * same outputs, same AqsStats, at every ISA level.
     */
    CompiledModel compile(const ModelSpec &spec,
                          const CompileOptions &opts = {});

    /** Create a serving session over this runtime's cache. */
    Session createSession(const SessionOptions &opts = {});

    /**
     * Create a multi-replica serving fleet (see panacea/fleet.h).
     * opts.replicas == 0 takes RuntimeOptions::replicas, then
     * PANACEA_REPLICAS, then 2. Deploy CompiledModels from compile()
     * or loadCompiledModel() - with mmapModels, every replica shares
     * one physical copy of the weights.
     */
    Fleet createFleet(FleetOptions opts = {});

    /** @return cache counters (the cold-start proof lives here). */
    CacheStats cacheStats() const { return cache_->stats(); }

    /** @return the model cache (advanced use: clear(), size()). */
    serve::PreparedModelCache &cache() { return *cache_; }

    /** @return the options the runtime was constructed with. */
    const RuntimeOptions &options() const { return opts_; }

  private:
    RuntimeOptions opts_;
    std::unique_ptr<serve::PreparedModelCache> owned_;
    serve::PreparedModelCache *cache_ = nullptr;
};

} // namespace panacea

#endif // PANACEA_PUBLIC_RUNTIME_H
