/**
 * @file
 * panacea::CompiledModel - an immutable, prepared model: every unique
 * GEMM layer calibrated through the full Panacea PTQ pipeline with its
 * weight operand SBR-sliced, RLE-encoded and HO-compressed exactly
 * once. This is the deployable artifact of the library: compile (or
 * load) it once, then serve any number of requests through
 * panacea::Session, save it with panacea::saveCompiledModel(), ship
 * the file, and reload it in another process with zero preparation
 * work (panacea/serialize.h).
 *
 * A CompiledModel is a cheap shared handle (copying shares the
 * underlying prepared state); all observers are const and
 * thread-safe.
 */

#ifndef PANACEA_PUBLIC_COMPILED_MODEL_H
#define PANACEA_PUBLIC_COMPILED_MODEL_H

#include <memory>
#include <string>

#include "serve/served_model.h"

namespace panacea {

/**
 * Options fixed at compile (preparation) time. Every field
 * participates in the model's cache-key fingerprint; see
 * serve/served_model.h for the field list (vector length v, RLE index
 * width, skip mode, ZPM/DBS, bit-width override, tensor seed,
 * calibration size, layer cap).
 */
using CompileOptions = serve::ServeModelOptions;

/** A prepared, immutable model; see the file header. */
class CompiledModel
{
  public:
    /** An empty (invalid) handle; compile or load to get a real one. */
    CompiledModel() = default;

    /**
     * Wrap an already-prepared model. This is the bridge the Runtime,
     * the loader and the serving internals use; application code
     * normally receives CompiledModels from Runtime::compile() or
     * loadCompiledModel() instead of constructing them.
     */
    explicit CompiledModel(
        std::shared_ptr<const serve::ServedModel> model)
        : model_(std::move(model))
    {}

    /** @return whether this handle holds a model. */
    bool valid() const { return model_ != nullptr; }

    /** @return the cache-key fingerprint (model + compile options). */
    const std::string &key() const { return model_->key(); }
    /** @return the source model description. */
    const ModelSpec &spec() const { return model_->spec(); }
    /** @return the options the model was compiled with. */
    const CompileOptions &options() const { return model_->options(); }
    /** @return number of served (prepared) layers. */
    std::size_t layerCount() const { return model_->layerCount(); }
    /** @return input features K of the first layer. */
    std::size_t inputFeatures() const { return model_->inputFeatures(); }
    /** @return output features M of the last layer. */
    std::size_t outputFeatures() const
    {
        return model_->outputFeatures();
    }
    /** @return dense-equivalent MACs one activation column costs. */
    std::uint64_t macsPerColumn() const
    {
        return model_->macsPerColumn();
    }
    /**
     * @return wall time the ORIGINAL preparation spent. For a model
     * loaded from disk this is what the load avoided re-spending, not
     * the load time itself.
     */
    double buildMs() const { return model_->buildMs(); }
    /**
     * @return bytes of the read-only file mapping this model's weight
     * payloads are served from (0 when the model owns its payloads,
     * i.e. it was compiled in-process, loaded with mmap disabled, or
     * loaded from a legacy v1 file). Non-zero means the weight bytes
     * are shared with every other process mapping the same .pncm
     * file - the zero-copy cold-start path (panacea/serialize.h).
     */
    std::size_t mappedBytes() const { return model_->mappedBytes(); }

    /** @return the underlying shared state (internal bridge). */
    const std::shared_ptr<const serve::ServedModel> &shared() const
    {
        return model_;
    }

  private:
    std::shared_ptr<const serve::ServedModel> model_;
};

/**
 * Compile a model WITHOUT any cache: always runs the full calibration
 * and preparation pipeline. Prefer Runtime::compile(), which
 * deduplicates work through the memory cache and (when configured)
 * the disk tier; this entry point exists for benchmarks and demos
 * that want to measure the uncached cost.
 */
inline CompiledModel
compileModel(const ModelSpec &spec, const CompileOptions &opts = {})
{
    return CompiledModel(std::make_shared<const serve::ServedModel>(
        serve::ServedModel::build(spec, opts)));
}

} // namespace panacea

#endif // PANACEA_PUBLIC_COMPILED_MODEL_H
