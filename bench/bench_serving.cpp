/**
 * @file
 * Serving-runtime benchmark: throughput of the micro-batching
 * InferenceEngine versus sequential single-request execution on the
 * same prepared model, across batch windows, with per-request latency
 * percentiles and a bit-exactness check (every batched output must
 * equal its solo run).
 *
 * Usage:
 *   bench_serving                       # DeiT-base attention block
 *   bench_serving --model=opt350m      # LLM-shaped stack
 *   bench_serving --requests=64 --cols=4
 *   bench_serving --json[=out.json]    # write BENCH_serving.json
 *   bench_serving --quick              # CI smoke variant
 *
 * The JSON payload records sequential vs batched requests/s and
 * effective GMAC/s (dense-equivalent MACs served per second), the
 * speedup per batch window, batch-size and latency statistics, the
 * model-preparation time the cache amortizes, and a parity flag. See
 * README.md ("Bench JSON schema") for the field list.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "serve/engine.h"
#include "serve/operand_cache.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/table.h"
#include "util/walltime.h"

using namespace panacea;
using namespace panacea::serve;

namespace {

struct BenchOptions
{
    bool writeJson = false;
    std::string jsonPath = "BENCH_serving.json";
    std::string model = "deit";
    std::size_t requests = 32;
    std::size_t cols = 4;
    bool quick = false;
};

/** One engine configuration measured over the full request set. */
struct WindowResult
{
    int window = 0;
    double wallMs = 0.0;
    double meanBatch = 0.0;
    std::size_t maxBatch = 0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    bool parity = true;
};

ModelSpec
pickModel(const std::string &name)
{
    if (name == "deit")
        return deitBase();
    if (name == "opt350m")
        return opt350m();
    if (name == "bert")
        return bertBase();
    std::cerr << "unknown --model=" << name
              << " (deit | opt350m | bert)\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.writeJson = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            opt.writeJson = true;
            opt.jsonPath = arg.substr(7);
        } else if (arg.rfind("--model=", 0) == 0) {
            opt.model = arg.substr(8);
        } else if (arg.rfind("--requests=", 0) == 0) {
            opt.requests = std::stoul(arg.substr(11));
        } else if (arg.rfind("--cols=", 0) == 0) {
            opt.cols = std::stoul(arg.substr(7));
        } else if (arg == "--quick") {
            opt.quick = true;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 1;
        }
    }
    if (opt.quick)
        opt.requests = std::min<std::size_t>(opt.requests, 16);

    const ModelSpec spec = pickModel(opt.model);
    ServeModelOptions mopts;
    mopts.maxLayers = opt.quick ? 2 : 4;

    std::cout << "Preparing " << spec.name << " ("
              << (mopts.maxLayers ? mopts.maxLayers : spec.layers.size())
              << " layers) for serving...\n";
    auto model = PreparedModelCache::global().acquire(spec, mopts);
    std::cout << "  prepared in " << model->buildMs() << " ms ("
              << model->macsPerColumn() / 1.0e6
              << " dense MMAC per column; cached for every engine)\n";

    // Request set: Gaussian activations, opt.cols columns each.
    Rng rng(0x5e81);
    std::vector<MatrixF> inputs;
    inputs.reserve(opt.requests);
    for (std::size_t r = 0; r < opt.requests; ++r) {
        MatrixF x(model->inputFeatures(), opt.cols);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }

    // --- Sequential baseline: one request at a time, wait for each.
    // Its outputs double as the solo-run reference for the parity
    // check (window 1 = no batching by construction).
    std::vector<MatrixF> solo(opt.requests);
    double seq_ms = 0.0;
    {
        EngineOptions eopts;
        eopts.batchWindow = 1;
        eopts.batchDeadlineMs = 0.0;
        eopts.workers = 1;
        InferenceEngine engine(eopts);
        const auto t0 = nowTick();
        for (std::size_t r = 0; r < opt.requests; ++r)
            solo[r] = engine.submit(model, inputs[r]).get().output;
        seq_ms = msSince(t0);
    }
    const double total_cols =
        static_cast<double>(opt.requests) * static_cast<double>(opt.cols);
    const double total_gmacs =
        total_cols * static_cast<double>(model->macsPerColumn()) / 1.0e9;
    const double seq_rps =
        static_cast<double>(opt.requests) / (seq_ms / 1.0e3);

    // --- Batched: submit everything, sweep the batch window.
    std::vector<int> windows =
        opt.quick ? std::vector<int>{2, 8}
                  : std::vector<int>{2, 4, 8, 16};
    std::vector<WindowResult> results;
    bool all_parity = true;
    for (int window : windows) {
        EngineOptions eopts;
        eopts.batchWindow = window;
        eopts.batchDeadlineMs = 5.0;
        eopts.workers = 2;
        InferenceEngine engine(eopts);
        std::vector<std::future<RequestResult>> futures;
        futures.reserve(opt.requests);
        const auto t0 = nowTick();
        for (const MatrixF &x : inputs)
            futures.push_back(engine.submit(model, x));
        WindowResult wr;
        wr.window = window;
        for (std::size_t r = 0; r < opt.requests; ++r) {
            RequestResult res = futures[r].get();
            wr.parity = wr.parity && (res.output == solo[r]);
        }
        wr.wallMs = msSince(t0);
        const EngineStats es = engine.stats();
        wr.meanBatch = es.meanBatch;
        wr.maxBatch = es.maxBatch;
        wr.p50Ms = es.p50LatencyMs;
        wr.p99Ms = es.p99LatencyMs;
        all_parity = all_parity && wr.parity;
        results.push_back(wr);
    }

    Table t({"mode", "wall ms", "req/s", "GMAC/s", "speedup",
             "mean batch", "p50 ms", "p99 ms", "bit-exact"});
    t.newRow()
        .cell("sequential")
        .cell(seq_ms, 2)
        .cell(seq_rps, 1)
        .cell(total_gmacs / (seq_ms / 1.0e3), 3)
        .cell("1.00x")
        .cell(1.0, 2)
        .cell("-")
        .cell("-")
        .cell("ref");
    for (const WindowResult &wr : results) {
        t.newRow()
            .cell("window " + std::to_string(wr.window))
            .cell(wr.wallMs, 2)
            .cell(static_cast<double>(opt.requests) / (wr.wallMs / 1e3),
                  1)
            .cell(total_gmacs / (wr.wallMs / 1.0e3), 3)
            .ratioCell(seq_ms / wr.wallMs)
            .cell(wr.meanBatch, 2)
            .cell(wr.p50Ms, 2)
            .cell(wr.p99Ms, 2)
            .cell(wr.parity ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "\nGMAC/s counts dense-equivalent MACs served; "
                 "bit-exact means every batched output equals its "
                 "solo run.\n";

    if (opt.writeJson) {
        std::ofstream out(opt.jsonPath);
        if (!out) {
            std::cerr << "cannot write " << opt.jsonPath << "\n";
            return 1;
        }
        out << "{\n  \"bench\": \"serving\",\n";
        out << "  \"model\": \"" << spec.name << "\",\n";
        out << "  \"layers\": " << model->layerCount() << ",\n";
        out << "  \"input_features\": " << model->inputFeatures()
            << ",\n";
        out << "  \"requests\": " << opt.requests << ",\n";
        out << "  \"cols_per_request\": " << opt.cols << ",\n";
        out << "  \"macs_per_column\": " << model->macsPerColumn()
            << ",\n";
        out << "  \"model_build_ms\": " << model->buildMs() << ",\n";
        out << "  \"isa\": \"" << toString(activeIsaLevel()) << "\",\n";
        out << "  \"pool_threads\": " << parallelThreads() << ",\n";
        out << "  \"hardware_concurrency\": "
            << static_cast<int>(std::thread::hardware_concurrency())
            << ",\n";
        out << "  \"parity\": " << (all_parity ? "true" : "false")
            << ",\n";
        out << "  \"sequential\": {\"wall_ms\": " << seq_ms
            << ", \"req_per_s\": " << seq_rps
            << ", \"gmacs\": " << total_gmacs / (seq_ms / 1.0e3)
            << "},\n";
        out << "  \"windows\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const WindowResult &wr = results[i];
            out << "    {\"window\": " << wr.window
                << ", \"wall_ms\": " << wr.wallMs << ", \"req_per_s\": "
                << static_cast<double>(opt.requests) / (wr.wallMs / 1e3)
                << ", \"gmacs\": " << total_gmacs / (wr.wallMs / 1.0e3)
                << ", \"speedup_vs_sequential\": " << seq_ms / wr.wallMs
                << ", \"mean_batch\": " << wr.meanBatch
                << ", \"max_batch\": " << wr.maxBatch
                << ", \"p50_ms\": " << wr.p50Ms << ", \"p99_ms\": "
                << wr.p99Ms << ", \"parity\": "
                << (wr.parity ? "true" : "false") << "}"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "\nwrote " << opt.jsonPath << "\n";
    }
    return all_parity ? 0 : 1;
}
