/**
 * @file
 * Serving-runtime benchmark: throughput of the micro-batching Session
 * versus sequential single-request execution on the same compiled
 * model, across batch windows, with per-request latency percentiles
 * and a bit-exactness check (every batched output must equal its solo
 * run). Written entirely against the public API (include/panacea/).
 *
 * Usage:
 *   bench_serving                       # DeiT-base attention block
 *   bench_serving --model=opt350m      # LLM-shaped stack
 *   bench_serving --requests=64 --cols=4
 *   bench_serving --json[=out.json]    # write BENCH_serving.json
 *   bench_serving --quick              # CI smoke variant
 *   bench_serving --save=m.pncm        # also save the compiled model
 *   bench_serving --save-format=v1     # ... as a legacy v1 file (the
 *                                      # copying-decode baseline)
 *   bench_serving --load=m.pncm        # COLD START: load instead of
 *                                      # compiling (zero calibration/
 *                                      # slicing work), then bench.
 *                                      # A v2 file is mmapped and
 *                                      # consumed in place; the run
 *                                      # also times the copying
 *                                      # decode of the same file, so
 *                                      # map_ms vs copy_ms lands in
 *                                      # the cold_start JSON block
 *   bench_serving --arrivals=poisson:<rate|auto>
 *                                      # open-loop Poisson arrivals
 *                                      # (seeded, deterministic
 *                                      # schedule): measures layer-0
 *                                      # batching vs CONTINUOUS
 *                                      # admission at window 16 -
 *                                      # p50/p99 latency split and
 *                                      # the admitted_at_layer
 *                                      # histogram land in the JSON
 *
 * The Poisson schedule is deterministic: inter-arrival gaps come from
 * a fixed-seed Rng, so two runs (or two modes) see the SAME arrival
 * times; "auto" scales the rate to 1.5x the measured sequential
 * throughput so arrivals land mid-stack (where continuous admission
 * matters) on any machine. Both modes run one engine worker at
 * window 16: the layer-0 server keeps a 15 ms fill deadline (the
 * window-filling wait a throughput-tuned batch server needs), the
 * continuous server starts cohorts immediately and coalesces by
 * mid-stack admission instead - which is exactly the trade the bench
 * measures.
 *
 * The JSON payload records sequential vs batched requests/s and
 * effective GMAC/s (dense-equivalent MACs served per second), the
 * speedup per batch window, batch-size and latency statistics, the
 * model-preparation time the cache amortizes, a parity flag, an
 * output digest (FNV-1a over the solo outputs - byte-stable across
 * processes at a fixed ISA leg, so a --save run and a --load run can
 * be diffed for cross-process parity), and a cold_start block
 * comparing the load cost against the build cost it avoided. See
 * README.md ("Bench JSON schema") for the field list.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "panacea/models.h"
#include "panacea/runtime.h"
#include "panacea/serialize.h"
#include "panacea/session.h"
#include "panacea/util.h"

using namespace panacea;

namespace {

struct BenchOptions
{
    bool writeJson = false;
    std::string jsonPath = "BENCH_serving.json";
    std::string model = "deit";
    std::size_t requests = 32;
    std::size_t cols = 4;
    bool quick = false;
    std::string savePath; ///< save the compiled model after the bench
    /** File format --save writes (v2 = mappable, v1 = legacy). */
    std::uint32_t saveVersion = kCompiledModelFormatVersion;
    std::string loadPath; ///< cold start: load instead of compiling
    bool arrivals = false;  ///< open-loop Poisson arrivals mode
    double arrivalRate = 0; ///< req/s; 0 = auto (1.5x sequential)
    int arrivalWindow = 16; ///< batch window of the arrivals runs
};

/** One arrivals-mode configuration (layer-0 vs continuous). */
struct ArrivalResult
{
    std::string name;
    double wallMs = 0.0;
    double reqPerS = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double p50QueueMs = 0.0;
    double p99QueueMs = 0.0;
    double p50ExecMs = 0.0;
    double p99ExecMs = 0.0;
    std::vector<std::uint64_t> admittedAtLayer;
    bool parity = true;
};

/** One session configuration measured over the full request set. */
struct WindowResult
{
    int window = 0;
    double wallMs = 0.0;
    double meanBatch = 0.0;
    std::size_t maxBatch = 0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    bool parity = true;
};

ModelSpec
pickModel(const std::string &name)
{
    if (name == "deit")
        return deitBase();
    if (name == "opt350m")
        return opt350m();
    if (name == "bert")
        return bertBase();
    std::cerr << "unknown --model=" << name
              << " (deit | opt350m | bert)\n";
    std::exit(1);
}

/** Resident / anonymous footprint snapshot (/proc; zeros elsewhere). */
struct MemUsage
{
    long rssKb = 0;  ///< resident set, file-backed mappings included
    long anonKb = 0; ///< anonymous (heap) resident pages
};

/**
 * Snapshot this process's memory footprint. The ANONYMOUS delta around
 * a model load is the zero-copy smoke: an mmap load keeps heap growth
 * near zero - its RSS growth is file-backed, page-cache pages that
 * every mapper of the file shares and the kernel can drop - while a
 * copying decode allocates roughly the file size on the heap.
 */
MemUsage
memUsage()
{
    MemUsage u;
    std::ifstream st("/proc/self/smaps_rollup");
    std::string line;
    while (std::getline(st, line)) {
        long kb = 0;
        if (std::sscanf(line.c_str(), "Rss: %ld kB", &kb) == 1)
            u.rssKb = kb;
        else if (std::sscanf(line.c_str(), "Anonymous: %ld kB", &kb) ==
                 1)
            u.anonKb = kb;
    }
    return u;
}

/** FNV-1a over the solo outputs: the cross-process parity digest. */
std::uint64_t
outputDigest(const std::vector<MatrixF> &outputs)
{
    std::uint64_t h = fnv1a64Offset;
    for (const MatrixF &m : outputs)
        h = fnv1a64(m.data().data(), m.size() * sizeof(float), h);
    return h;
}

/**
 * One open-loop arrivals run: request r is submitted schedule_ms[r]
 * after t0 (the same deterministic schedule for every mode), every
 * output is parity-checked against its solo run, and the session's
 * latency split + admission histogram are captured.
 */
ArrivalResult
runArrivalMode(Runtime &rt, const CompiledModel &model,
               const std::vector<MatrixF> &inputs,
               const std::vector<MatrixF> &solo,
               const std::vector<double> &schedule_ms, int window,
               bool continuous)
{
    SessionOptions sopts;
    sopts.batchWindow = window;
    sopts.batchDeadlineMs = 15.0;
    sopts.workers = 1;
    sopts.continuous = continuous;
    sopts.maxAdmissionLayer = 0;
    Session session = rt.createSession(sopts);

    std::vector<std::future<InferenceResult>> futures;
    futures.reserve(inputs.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < inputs.size(); ++r) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         schedule_ms[r])));
        futures.push_back(session.submit(model, inputs[r]));
    }
    ArrivalResult res;
    res.name = continuous ? "continuous" : "layer0";
    for (std::size_t r = 0; r < inputs.size(); ++r) {
        const InferenceResult ir = futures[r].get();
        res.parity = res.parity && (ir.output == solo[r]);
    }
    res.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    res.reqPerS =
        static_cast<double>(inputs.size()) / (res.wallMs / 1.0e3);
    const SessionStats es = session.stats();
    res.p50Ms = es.p50LatencyMs;
    res.p99Ms = es.p99LatencyMs;
    res.p50QueueMs = es.p50QueueWaitMs;
    res.p99QueueMs = es.p99QueueWaitMs;
    res.p50ExecMs = es.p50ExecuteMs;
    res.p99ExecMs = es.p99ExecuteMs;
    res.admittedAtLayer = es.admittedAtLayer;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.writeJson = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            opt.writeJson = true;
            opt.jsonPath = arg.substr(7);
        } else if (arg.rfind("--model=", 0) == 0) {
            opt.model = arg.substr(8);
        } else if (arg.rfind("--requests=", 0) == 0) {
            opt.requests = std::stoul(arg.substr(11));
        } else if (arg.rfind("--cols=", 0) == 0) {
            opt.cols = std::stoul(arg.substr(7));
        } else if (arg == "--quick") {
            opt.quick = true;
        } else if (arg.rfind("--save=", 0) == 0) {
            opt.savePath = arg.substr(7);
        } else if (arg.rfind("--save-format=", 0) == 0) {
            const std::string fmt = arg.substr(14);
            if (fmt == "v1") {
                opt.saveVersion = kCompiledModelLegacyFormatVersion;
            } else if (fmt == "v2") {
                opt.saveVersion = kCompiledModelFormatVersion;
            } else {
                std::cerr << "bad --save-format=" << fmt
                          << " (v1 | v2)\n";
                return 1;
            }
        } else if (arg.rfind("--load=", 0) == 0) {
            opt.loadPath = arg.substr(7);
        } else if (arg.rfind("--arrivals=", 0) == 0) {
            const std::string spec_arg = arg.substr(11);
            if (spec_arg.rfind("poisson:", 0) != 0) {
                std::cerr << "bad --arrivals spec '" << spec_arg
                          << "' (want poisson:<rate|auto>)\n";
                return 1;
            }
            const std::string rate = spec_arg.substr(8);
            opt.arrivals = true;
            if (rate == "auto") {
                opt.arrivalRate = 0.0;
            } else {
                opt.arrivalRate = std::stod(rate);
                if (opt.arrivalRate <= 0.0) {
                    std::cerr << "arrival rate must be positive\n";
                    return 1;
                }
            }
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 1;
        }
    }
    if (opt.quick)
        opt.requests = std::min<std::size_t>(opt.requests, 16);

    const ModelSpec spec = pickModel(opt.model);
    CompileOptions mopts;
    mopts.maxLayers = opt.quick ? 2 : 4;

    Runtime rt;
    CompiledModel model;
    double load_ms = 0.0;  ///< wall time of the primary (served) load
    double map_ms = 0.0;   ///< = load_ms when the load was mapped
    double copy_ms = 0.0;  ///< copying decode of the same file (ref)
    std::size_t mapped_bytes = 0;
    std::uint32_t file_version = 0;
    long rss_delta_kb = 0;  ///< RSS growth across the primary load
    long anon_delta_kb = 0; ///< heap growth of the primary load - the
                            ///< zero-copy smoke (near 0 when mapped)
    long copy_anon_delta_kb = 0; ///< heap growth of the copy-decode leg
    const bool cold = !opt.loadPath.empty();
    if (cold) {
        // Cold start: consume the compiled artifact - zero
        // calibration, slicing, RLE or HO work. A v2 file is mapped
        // read-only and its weights served in place; v1 decodes by
        // copying. loadCompiledModelFor() verifies the file is THE
        // compiled form of exactly this (model, options).
        std::cout << "Loading compiled " << spec.name << " from "
                  << opt.loadPath << " (cold start)...\n";
        const MemUsage mem0 = memUsage();
        const auto t0 = nowTick();
        try {
            model = loadCompiledModelFor(opt.loadPath, spec, mopts);
        } catch (const SerializeError &err) {
            std::cerr << "cold-start load failed: " << err.what()
                      << "\n";
            return 1;
        }
        load_ms = msSince(t0);
        const MemUsage mem1 = memUsage();
        rss_delta_kb = mem1.rssKb - mem0.rssKb;
        anon_delta_kb = mem1.anonKb - mem0.anonKb;
        mapped_bytes = model.mappedBytes();
        if (mapped_bytes > 0)
            map_ms = load_ms;
        try {
            file_version = peekCompiledModelVersion(opt.loadPath);
            // Reference leg: the same file through the copying decode
            // (mmap off), so one run reports map_ms vs copy_ms.
            const MemUsage mem2 = memUsage();
            const auto t1 = nowTick();
            const CompiledModel copied = loadCompiledModelFor(
                opt.loadPath, spec, mopts, /*allow_mmap=*/false);
            copy_ms = msSince(t1);
            copy_anon_delta_kb = memUsage().anonKb - mem2.anonKb;
            if (copied.mappedBytes() != 0) {
                std::cerr << "copy-decode leg unexpectedly mapped\n";
                return 1;
            }
        } catch (const SerializeError &err) {
            std::cerr << "cold-start copy-decode leg failed: "
                      << err.what() << "\n";
            return 1;
        }
        std::cout << "  loaded in " << load_ms << " ms ("
                  << (mapped_bytes > 0 ? "mmap, zero-copy"
                                       : "copying decode")
                  << ", format v" << file_version << ") vs "
                  << copy_ms << " ms copying decode vs "
                  << model.buildMs()
                  << " ms the original build spent ("
                  << model.buildMs() / load_ms << "x faster than "
                  << "building)\n";
        if (mapped_bytes > 0)
            std::cout << "  mapped " << mapped_bytes
                      << " bytes read-only; weight pages are shared "
                      << "with every process mapping this file ("
                      << (map_ms > 0.0 ? copy_ms / map_ms : 0.0)
                      << "x faster than the copying decode)\n";
        std::cout << "  load RSS delta " << rss_delta_kb << " kB ("
                  << anon_delta_kb
                  << " kB heap) vs copy-decode heap delta "
                  << copy_anon_delta_kb << " kB"
                  << (mapped_bytes > 0
                          ? " - zero-copy: the weights stay in "
                            "file-backed pages every mapper shares"
                          : "")
                  << "\n";
    } else {
        std::cout << "Preparing " << spec.name << " ("
                  << (mopts.maxLayers ? mopts.maxLayers
                                      : spec.layers.size())
                  << " layers) for serving...\n";
        model = rt.compile(spec, mopts);
        std::cout << "  prepared in " << model.buildMs() << " ms ("
                  << model.macsPerColumn() / 1.0e6
                  << " dense MMAC per column; cached for every "
                  << "session)\n";
    }

    // Request set: Gaussian activations, opt.cols columns each.
    Rng rng(0x5e81);
    std::vector<MatrixF> inputs;
    inputs.reserve(opt.requests);
    for (std::size_t r = 0; r < opt.requests; ++r) {
        MatrixF x(model.inputFeatures(), opt.cols);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        inputs.push_back(std::move(x));
    }

    // --- Sequential baseline: one request at a time, wait for each.
    // Its outputs double as the solo-run reference for the parity
    // check (window 1 = no batching by construction).
    std::vector<MatrixF> solo(opt.requests);
    double seq_ms = 0.0;
    {
        SessionOptions sopts;
        sopts.batchWindow = 1;
        sopts.batchDeadlineMs = 0.0;
        sopts.workers = 1;
        Session session = rt.createSession(sopts);
        const auto t0 = nowTick();
        for (std::size_t r = 0; r < opt.requests; ++r)
            solo[r] = session.infer(model, inputs[r]).output;
        seq_ms = msSince(t0);
    }
    const double total_cols =
        static_cast<double>(opt.requests) * static_cast<double>(opt.cols);
    const double total_gmacs =
        total_cols * static_cast<double>(model.macsPerColumn()) / 1.0e9;
    const double seq_rps =
        static_cast<double>(opt.requests) / (seq_ms / 1.0e3);
    const std::uint64_t digest = outputDigest(solo);

    // --- Batched: submit everything, sweep the batch window.
    std::vector<int> windows =
        opt.quick ? std::vector<int>{2, 8}
                  : std::vector<int>{2, 4, 8, 16};
    std::vector<WindowResult> results;
    bool all_parity = true;
    for (int window : windows) {
        SessionOptions sopts;
        sopts.batchWindow = window;
        sopts.batchDeadlineMs = 5.0;
        sopts.workers = 2;
        Session session = rt.createSession(sopts);
        std::vector<std::future<InferenceResult>> futures;
        futures.reserve(opt.requests);
        const auto t0 = nowTick();
        for (const MatrixF &x : inputs)
            futures.push_back(session.submit(model, x));
        WindowResult wr;
        wr.window = window;
        for (std::size_t r = 0; r < opt.requests; ++r) {
            InferenceResult res = futures[r].get();
            wr.parity = wr.parity && (res.output == solo[r]);
        }
        wr.wallMs = msSince(t0);
        const SessionStats es = session.stats();
        wr.meanBatch = es.meanBatch;
        wr.maxBatch = es.maxBatch;
        wr.p50Ms = es.p50LatencyMs;
        wr.p99Ms = es.p99LatencyMs;
        all_parity = all_parity && wr.parity;
        results.push_back(wr);
    }

    Table t({"mode", "wall ms", "req/s", "GMAC/s", "speedup",
             "mean batch", "p50 ms", "p99 ms", "bit-exact"});
    t.newRow()
        .cell("sequential")
        .cell(seq_ms, 2)
        .cell(seq_rps, 1)
        .cell(total_gmacs / (seq_ms / 1.0e3), 3)
        .cell("1.00x")
        .cell(1.0, 2)
        .cell("-")
        .cell("-")
        .cell("ref");
    for (const WindowResult &wr : results) {
        t.newRow()
            .cell("window " + std::to_string(wr.window))
            .cell(wr.wallMs, 2)
            .cell(static_cast<double>(opt.requests) / (wr.wallMs / 1e3),
                  1)
            .cell(total_gmacs / (wr.wallMs / 1.0e3), 3)
            .ratioCell(seq_ms / wr.wallMs)
            .cell(wr.meanBatch, 2)
            .cell(wr.p50Ms, 2)
            .cell(wr.p99Ms, 2)
            .cell(wr.parity ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "\nGMAC/s counts dense-equivalent MACs served; "
                 "bit-exact means every batched output equals its "
                 "solo run.\n";

    // --- Open-loop Poisson arrivals: layer-0 batching vs continuous
    // admission over the SAME deterministic arrival schedule.
    std::vector<ArrivalResult> arrivals;
    double arrival_rate = 0.0;
    if (opt.arrivals) {
        arrival_rate = opt.arrivalRate > 0.0 ? opt.arrivalRate
                                             : seq_rps * 1.5;
        Rng arng(0xa221); // fixed seed: the schedule is reproducible
        std::vector<double> schedule(opt.requests);
        double at = 0.0;
        for (double &s : schedule) {
            at += -std::log(1.0 - arng.uniformReal(0.0, 1.0)) *
                  1000.0 / arrival_rate;
            s = at;
        }
        std::cout << "\nOpen-loop Poisson arrivals: "
                  << arrival_rate << " req/s (seed 0xa221), window "
                  << opt.arrivalWindow << ", " << opt.requests
                  << " requests\n";
        arrivals.push_back(runArrivalMode(rt, model, inputs, solo,
                                          schedule, opt.arrivalWindow,
                                          false));
        arrivals.push_back(runArrivalMode(rt, model, inputs, solo,
                                          schedule, opt.arrivalWindow,
                                          true));
        all_parity = all_parity && arrivals[0].parity &&
                     arrivals[1].parity;

        Table at_table({"mode", "req/s", "p50 ms", "p99 ms",
                        "p50 queue", "p99 queue", "p50 exec",
                        "p99 exec", "bit-exact"});
        for (const ArrivalResult &ar : arrivals) {
            at_table.newRow()
                .cell(ar.name)
                .cell(ar.reqPerS, 1)
                .cell(ar.p50Ms, 2)
                .cell(ar.p99Ms, 2)
                .cell(ar.p50QueueMs, 2)
                .cell(ar.p99QueueMs, 2)
                .cell(ar.p50ExecMs, 2)
                .cell(ar.p99ExecMs, 2)
                .cell(ar.parity ? "yes" : "NO");
        }
        at_table.print(std::cout);
        const ArrivalResult &l0 = arrivals[0];
        const ArrivalResult &ct = arrivals[1];
        std::cout << "admitted_at_layer (continuous): [";
        for (std::size_t i = 0; i < ct.admittedAtLayer.size(); ++i)
            std::cout << (i ? ", " : "") << ct.admittedAtLayer[i];
        std::cout << "]\ncontinuous vs layer0: p99 "
                  << ct.p99Ms << " vs " << l0.p99Ms << " ms ("
                  << (l0.p99Ms > 0.0
                          ? 100.0 * (l0.p99Ms - ct.p99Ms) / l0.p99Ms
                          : 0.0)
                  << "% lower), throughput " << ct.reqPerS << " vs "
                  << l0.reqPerS << " req/s\n";
    }

    if (!opt.savePath.empty()) {
        try {
            saveCompiledModel(model, opt.savePath, opt.saveVersion);
            std::cout << "\nsaved compiled model to " << opt.savePath
                      << " (format v" << opt.saveVersion
                      << "; reload with --load=" << opt.savePath
                      << " for a zero-preparation cold start)\n";
        } catch (const SerializeError &err) {
            std::cerr << "saving compiled model failed: " << err.what()
                      << "\n";
            return 1;
        }
    }

    if (opt.writeJson) {
        std::ofstream out(opt.jsonPath);
        if (!out) {
            std::cerr << "cannot write " << opt.jsonPath << "\n";
            return 1;
        }
        out << "{\n  \"bench\": \"serving\",\n";
        out << "  \"model\": \"" << spec.name << "\",\n";
        out << "  \"layers\": " << model.layerCount() << ",\n";
        out << "  \"input_features\": " << model.inputFeatures()
            << ",\n";
        out << "  \"requests\": " << opt.requests << ",\n";
        out << "  \"cols_per_request\": " << opt.cols << ",\n";
        out << "  \"macs_per_column\": " << model.macsPerColumn()
            << ",\n";
        out << "  \"model_build_ms\": " << model.buildMs() << ",\n";
        out << "  \"cold_start\": {\"loaded\": "
            << (cold ? "true" : "false")
            << ", \"load_ms\": " << load_ms
            << ", \"map_ms\": " << map_ms
            << ", \"copy_ms\": " << copy_ms
            << ", \"mapped_bytes\": " << mapped_bytes
            << ", \"format_version\": " << file_version
            << ", \"rss_delta_kb\": " << rss_delta_kb
            << ", \"anon_delta_kb\": " << anon_delta_kb
            << ", \"copy_anon_delta_kb\": " << copy_anon_delta_kb
            << ", \"build_ms_saved\": "
            << (cold ? model.buildMs() : 0.0) << "},\n";
        char digest_hex[17];
        std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                      static_cast<unsigned long long>(digest));
        out << "  \"output_digest\": \"" << digest_hex << "\",\n";
        out << "  \"isa\": \"" << toString(activeIsaLevel()) << "\",\n";
        out << "  \"pool_threads\": " << parallelThreads() << ",\n";
        out << "  \"hardware_concurrency\": "
            << static_cast<int>(std::thread::hardware_concurrency())
            << ",\n";
        out << "  \"parity\": " << (all_parity ? "true" : "false")
            << ",\n";
        out << "  \"sequential\": {\"wall_ms\": " << seq_ms
            << ", \"req_per_s\": " << seq_rps
            << ", \"gmacs\": " << total_gmacs / (seq_ms / 1.0e3)
            << "},\n";
        out << "  \"windows\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const WindowResult &wr = results[i];
            out << "    {\"window\": " << wr.window
                << ", \"wall_ms\": " << wr.wallMs << ", \"req_per_s\": "
                << static_cast<double>(opt.requests) / (wr.wallMs / 1e3)
                << ", \"gmacs\": " << total_gmacs / (wr.wallMs / 1.0e3)
                << ", \"speedup_vs_sequential\": " << seq_ms / wr.wallMs
                << ", \"mean_batch\": " << wr.meanBatch
                << ", \"max_batch\": " << wr.maxBatch
                << ", \"p50_ms\": " << wr.p50Ms << ", \"p99_ms\": "
                << wr.p99Ms << ", \"parity\": "
                << (wr.parity ? "true" : "false") << "}"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        out << "  \"arrivals\": {\"enabled\": "
            << (opt.arrivals ? "true" : "false");
        if (opt.arrivals) {
            out << ", \"mode\": \"poisson\", \"rate_req_per_s\": "
                << arrival_rate << ", \"seed\": \"0xa221\""
                << ", \"window\": " << opt.arrivalWindow
                << ", \"requests\": " << opt.requests << ",\n"
                << "    \"modes\": [\n";
            for (std::size_t i = 0; i < arrivals.size(); ++i) {
                const ArrivalResult &ar = arrivals[i];
                out << "      {\"name\": \"" << ar.name
                    << "\", \"wall_ms\": " << ar.wallMs
                    << ", \"req_per_s\": " << ar.reqPerS
                    << ", \"p50_ms\": " << ar.p50Ms << ", \"p99_ms\": "
                    << ar.p99Ms << ", \"p50_queue_ms\": "
                    << ar.p50QueueMs << ", \"p99_queue_ms\": "
                    << ar.p99QueueMs << ", \"p50_exec_ms\": "
                    << ar.p50ExecMs << ", \"p99_exec_ms\": "
                    << ar.p99ExecMs << ",\n       \"models\": [{"
                    << "\"name\": \"" << spec.name
                    << "\", \"p50_ms\": " << ar.p50Ms
                    << ", \"p99_ms\": " << ar.p99Ms << "}],\n"
                    << "       \"admitted_at_layer\": [";
                for (std::size_t h = 0; h < ar.admittedAtLayer.size();
                     ++h)
                    out << (h ? ", " : "") << ar.admittedAtLayer[h];
                out << "], \"parity\": "
                    << (ar.parity ? "true" : "false") << "}"
                    << (i + 1 < arrivals.size() ? "," : "") << "\n";
            }
            out << "    ]}\n";
        } else {
            out << "}\n";
        }
        out << "}\n";
        std::cout << "\nwrote " << opt.jsonPath << "\n";
    }
    return all_parity ? 0 : 1;
}
