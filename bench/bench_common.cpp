#include "bench_common.h"

#include <cstdlib>

namespace panacea {
namespace bench {

PanaceaConfig
defaultPanaceaConfig()
{
    PanaceaConfig cfg;
    cfg.dwosPerPea = 4;
    cfg.swosPerPea = 8;
    cfg.enableDtp = true;
    return cfg;
}

DesignResults
runAllDesigns(const ModelBuild &build, const PanaceaConfig &panacea_cfg)
{
    DesignResults out;
    std::vector<GemmWorkload> panacea_wl = build.panaceaWorkloads();
    std::vector<GemmWorkload> sibia_wl = build.sibiaWorkloads();
    const std::string &name = build.spec.name;

    SystolicSimulator sa_ws(SystolicDataflow::WeightStationary);
    SystolicSimulator sa_os(SystolicDataflow::OutputStationary);
    SimdSimulator simd;
    SibiaSimulator sibia;
    PanaceaSimulator panacea(panacea_cfg);

    out.saWs = sa_ws.runAll(panacea_wl, name);
    out.saOs = sa_os.runAll(panacea_wl, name);
    out.simd = simd.runAll(panacea_wl, name);
    out.sibia = sibia.runAll(sibia_wl, name);
    out.panacea = panacea.runAll(panacea_wl, name);
    return out;
}

DesignResults
runAllDesigns(const ModelBuild &build)
{
    return runAllDesigns(build, defaultPanaceaConfig());
}

void
addComparisonRows(Table &table, const DesignResults &results)
{
    const PerfResult *all[] = {&results.saWs, &results.saOs,
                               &results.simd, &results.sibia,
                               &results.panacea};
    const double panacea_eff = results.panacea.topsPerWatt();
    for (const PerfResult *r : all) {
        table.newRow()
            .cell(r->accelerator)
            .cell(r->tops(), 3)
            .cell(r->topsPerWatt(), 3)
            .ratioCell(panacea_eff / r->topsPerWatt());
    }
}

std::size_t
seqOverrideFromEnv()
{
    const char *env = std::getenv("PANACEA_BENCH_SEQ");
    if (!env)
        return 0;
    long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<std::size_t>(v) : 0;
}

ModelBuildOptions
benchBuildOptions()
{
    ModelBuildOptions opt;
    opt.seqLen = seqOverrideFromEnv();
    return opt;
}

} // namespace bench
} // namespace panacea
