/**
 * @file
 * Host-kernel microbenchmark: the scalar reference AQS-GEMM versus the
 * register-blocked, skip-list-driven, multi-threaded kernel - across
 * every ISA level the host can run - plus the legacy bit-slice GEMM and
 * the dense integer GEMM for context, and the operand-preparation
 * stages serial vs parallel. These measure the simulator's own CPU
 * kernels, not modeled hardware.
 *
 * Usage:
 *   bench_kernels                  # human-readable table
 *   bench_kernels --json           # also write BENCH_kernels.json
 *   bench_kernels --json=out.json  # custom output path
 *   bench_kernels --quick          # fewer repetitions (CI smoke)
 *   bench_kernels --density-sweep  # static-vs-measured policy sweep
 *
 * The JSON payload records old-vs-new GMAC/s (effective dense MACs per
 * second), the speedup ratio, a per-ISA GMAC/s table at the 256^3/60%
 * reference case, the thread-scaling curve of the new kernel, the
 * serial-vs-parallel preparation-stage speedups, and a parity flag
 * asserting every kernel agreed with the reference bit-for-bit during
 * the run. With --density-sweep it additionally records GMAC/s of the
 * static vs measured stream/gather dispatch policy
 * (core/kernel_cost_model.h) across activation densities - the CI gate
 * asserts the measured policy never loses more than noise to the
 * static rule at any density. See README.md ("Bench JSON schema") for
 * the field list.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/aqs_gemm.h"
#include "core/kernel_cost_model.h"
#include "core/legacy_gemm.h"
#include "quant/gemm_quant.h"
#include "slicing/rle.h"
#include "slicing/slice_tensor.h"
#include "util/cpu_features.h"
#include "util/parallel_for.h"
#include "util/random.h"

using namespace panacea;

namespace {

struct BenchOptions
{
    bool writeJson = false;
    std::string jsonPath = "BENCH_kernels.json";
    double minSeconds = 0.3;
    int maxReps = 25;
    bool quick = false;
    bool densitySweep = false;
};

MatrixI32
weightCodes(Rng &rng, std::size_t m, std::size_t k, double near_zero)
{
    MatrixI32 w(m, k);
    for (auto &v : w.data())
        v = rng.bernoulli(near_zero)
                ? static_cast<std::int32_t>(rng.uniformInt(-8, 7))
                : static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    return w;
}

MatrixI32
actCodes(Rng &rng, std::size_t k, std::size_t n, std::int32_t zp,
         double clustered)
{
    MatrixI32 x(k, n);
    for (auto &v : x.data())
        v = rng.bernoulli(clustered)
                ? static_cast<std::int32_t>(std::clamp<std::int64_t>(
                      zp + rng.uniformInt(-7, 7), 0, 255))
                : static_cast<std::int32_t>(rng.uniformInt(0, 255));
    return x;
}

/** Best-of repeated timing in milliseconds. */
template <typename F>
double
timeMs(const BenchOptions &opt, F &&fn)
{
    using clock = std::chrono::steady_clock;
    fn(); // warm-up
    double best = 1e300;
    double total = 0.0;
    for (int rep = 0; rep < opt.maxReps; ++rep) {
        auto t0 = clock::now();
        fn();
        auto t1 = clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best = std::min(best, ms);
        total += ms * 1e-3;
        if (rep >= 2 && total >= opt.minSeconds)
            break;
    }
    return best;
}

double
gmacs(std::size_t m, std::size_t k, std::size_t n, double ms)
{
    return static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n) / (ms * 1e6);
}

struct CaseResult
{
    std::size_t dim = 0;
    int sparsityPct = 0;
    double refMs = 0.0;
    double newMs = 0.0;
    bool parity = false;

    double speedup() const { return refMs / newMs; }
};

struct IsaCase
{
    IsaLevel level = IsaLevel::Scalar;
    double ms = 0.0;
    bool parity = false;
};

struct ThreadPoint
{
    int threads = 0;
    int poolThreads = 0; ///< width the pool actually ran with
    double ms = 0.0;
    double speedupVs1 = 0.0;
};

struct DensityPoint
{
    int densityPct = 0;
    double staticMs = 0.0;
    double measuredMs = 0.0;
    bool parity = false;

    double ratio() const { return staticMs / measuredMs; }
};

struct PrepStage
{
    const char *name = "";
    double serialMs = 0.0;
    double parallelMs = 0.0;

    double speedup() const { return serialMs / parallelMs; }
};

CaseResult
runCase(const BenchOptions &opt, std::size_t dim, int sparsity_pct)
{
    Rng rng(2);
    const std::int32_t zp = 136;
    const double sparsity = sparsity_pct / 100.0;
    MatrixI32 w = weightCodes(rng, dim, dim, sparsity);
    MatrixI32 x = actCodes(rng, dim, dim, zp, sparsity);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);

    CaseResult res;
    res.dim = dim;
    res.sparsityPct = sparsity_pct;

    AqsStats ref_stats, new_stats;
    MatrixI64 ref = aqsGemmReference(w_op, x_op, cfg, &ref_stats);
    MatrixI64 neu = aqsGemm(w_op, x_op, cfg, &new_stats);
    res.parity = ref == neu &&
                 ref_stats.executedOuterProducts ==
                     new_stats.executedOuterProducts &&
                 ref_stats.totalMults() == new_stats.totalMults();

    res.refMs = timeMs(opt, [&] { aqsGemmReference(w_op, x_op, cfg); });
    res.newMs = timeMs(opt, [&] { aqsGemm(w_op, x_op, cfg); });
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.writeJson = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            opt.writeJson = true;
            opt.jsonPath = arg.substr(7);
        } else if (arg == "--quick") {
            opt.minSeconds = 0.05;
            opt.maxReps = 5;
            opt.quick = true;
        } else if (arg == "--density-sweep") {
            opt.densitySweep = true;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    const int pool_threads = parallelThreads();
    const char *isa_active = toString(activeIsaLevel());
    std::cout << "AQS-GEMM kernel bench (pool threads: " << pool_threads
              << ", isa: " << isa_active
              << ", detected: " << toString(detectedIsaLevel()) << ")\n\n";

    // --- Old vs new, single-threaded (the apples-to-apples compare) ---
    setParallelThreads(1);
    std::vector<CaseResult> cases;
    std::cout << "single-thread reference vs blocked kernel (isa: "
              << isa_active << ")\n";
    std::cout << "  dim  sparsity  ref-ms   new-ms   GMAC/s(ref)  "
                 "GMAC/s(new)  speedup  parity\n";
    for (std::size_t dim : {128u, 256u, 512u}) {
        for (int sp : {0, 60, 95}) {
            if (dim != 256 && sp != 60)
                continue; // off-diagonal points add little signal
            CaseResult r = runCase(opt, dim, sp);
            cases.push_back(r);
            std::printf(
                "  %4zu  %6d%%  %7.2f  %7.2f  %11.3f  %11.3f  %6.2fx  %s\n",
                r.dim, r.sparsityPct, r.refMs, r.newMs,
                gmacs(r.dim, r.dim, r.dim, r.refMs),
                gmacs(r.dim, r.dim, r.dim, r.newMs), r.speedup(),
                r.parity ? "yes" : "NO");
        }
    }

    // --- Per-ISA single-thread GMAC/s at the 256^3/60% reference case -
    const std::size_t isa_dim = 256;
    std::vector<IsaCase> isa_cases;
    {
        Rng rng(2);
        const std::int32_t zp = 136;
        MatrixI32 w = weightCodes(rng, isa_dim, isa_dim, 0.6);
        MatrixI32 x = actCodes(rng, isa_dim, isa_dim, zp, 0.6);
        AqsConfig cfg;
        MatrixI64 ref;
        bool have_ref = false;

        std::cout << "\nper-ISA blocked kernel, single thread (dim="
                  << isa_dim << ", 60% clustered)\n";
        std::cout << "  isa       ms    GMAC/s   vs-scalar  parity\n";
        double scalar_ms = 0.0;
        for (IsaLevel lvl : runnableIsaLevels()) {
            setIsaLevel(lvl);
            // Prepare at this level so the precomputed operand caches
            // match the dispatch tier under test - otherwise rows
            // measured under a low PANACEA_ISA pin would time hidden
            // per-call paired-plane rebuilds and the two CI legs'
            // numbers would not be comparable.
            WeightOperand w_op = prepareWeights(w, 1, cfg);
            ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
            if (!have_ref) {
                ref = aqsGemmReference(w_op, x_op, cfg);
                have_ref = true;
            }
            IsaCase c;
            c.level = lvl;
            c.parity = aqsGemm(w_op, x_op, cfg) == ref;
            c.ms = timeMs(opt, [&] { aqsGemm(w_op, x_op, cfg); });
            if (lvl == IsaLevel::Scalar)
                scalar_ms = c.ms;
            isa_cases.push_back(c);
            std::printf("  %-6s %7.2f  %8.3f  %8.2fx  %s\n",
                        toString(lvl), c.ms,
                        gmacs(isa_dim, isa_dim, isa_dim, c.ms),
                        scalar_ms > 0.0 ? scalar_ms / c.ms : 1.0,
                        c.parity ? "yes" : "NO");
        }
        resetIsaLevel();
    }

    // --- Static vs measured dispatch policy across densities ---------
    // The stream/gather crossover moves with activation density (dense
    // lists favor streaming, sparse ones gathering); this sweep pins
    // where the per-host measured-cost policy wins over the static
    // 2*nk >= kk rule and by how much. Single-threaded so the numbers
    // isolate the dispatch choice, not pool effects.
    std::vector<DensityPoint> density_points;
    if (opt.densitySweep) {
        setParallelThreads(1);
        // The CI gate compares the two policies within a 2% band, so
        // this sweep keeps a timing floor even under --quick: at the
        // densities where both policies resolve to the same mechanism
        // the true ratio is 1.0 and anything else is timer noise.
        BenchOptions sweep_opt = opt;
        sweep_opt.minSeconds = std::max(opt.minSeconds, 1.2);
        sweep_opt.maxReps = std::max(opt.maxReps, 80);
        const std::size_t ddim = 256;
        Rng drng(11);
        const std::int32_t dzp = 136;
        MatrixI32 dw = weightCodes(drng, ddim, ddim, 0.6);
        std::cout << "\nstream/gather dispatch policy sweep (dim="
                  << ddim << ", single thread, isa: "
                  << toString(activeIsaLevel()) << ")\n";
        std::cout << "  density  static-GMAC/s  measured-GMAC/s  "
                     "measured/static  parity\n";
        for (int density : {10, 30, 50, 60, 70, 90}) {
            // Density here = fraction of activations OUTSIDE the
            // skippable cluster around the zero point.
            MatrixI32 dx = actCodes(drng, ddim, ddim, dzp,
                                    1.0 - density / 100.0);
            AqsConfig cfg;
            WeightOperand w_op = prepareWeights(dw, 1, cfg);
            ActivationOperand x_op =
                prepareActivations(dx, 1, dzp, cfg);
            MatrixI64 ref = aqsGemmReference(w_op, x_op, cfg);

            DensityPoint p;
            p.densityPct = density;
            setStreamPolicy(StreamPolicy::Static);
            p.parity = aqsGemm(w_op, x_op, cfg) == ref; // also warms
            setStreamPolicy(StreamPolicy::Measured);
            p.parity = p.parity && aqsGemm(w_op, x_op, cfg) == ref;
            // Interleaved best-of: alternate the policies within each
            // repetition so host drift (frequency ramps, CI-container
            // steal time) hits both columns alike instead of biasing
            // whichever was timed second.
            using clock = std::chrono::steady_clock;
            double best_static = 1e300, best_measured = 1e300;
            double total = 0.0;
            for (int rep = 0; rep < sweep_opt.maxReps; ++rep) {
                setStreamPolicy(StreamPolicy::Static);
                auto t0 = clock::now();
                aqsGemm(w_op, x_op, cfg);
                auto t1 = clock::now();
                setStreamPolicy(StreamPolicy::Measured);
                auto t2 = clock::now();
                aqsGemm(w_op, x_op, cfg);
                auto t3 = clock::now();
                const double ms_s =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                const double ms_m =
                    std::chrono::duration<double, std::milli>(t3 - t2)
                        .count();
                best_static = std::min(best_static, ms_s);
                best_measured = std::min(best_measured, ms_m);
                total += (ms_s + ms_m) * 1e-3;
                if (rep >= 2 && total >= sweep_opt.minSeconds)
                    break;
            }
            p.staticMs = best_static;
            p.measuredMs = best_measured;
            resetStreamPolicy();
            density_points.push_back(p);
            std::printf("  %6d%%  %13.3f  %15.3f  %14.3fx  %s\n",
                        p.densityPct,
                        gmacs(ddim, ddim, ddim, p.staticMs),
                        gmacs(ddim, ddim, ddim, p.measuredMs),
                        p.ratio(), p.parity ? "yes" : "NO");
        }
    }

    // --- Thread scaling of the new kernel ----------------------------
    // A shape large enough that band parallelism dominates pool
    // overhead (512 gives 128 m-bands); each point resizes the pool
    // BEFORE the timed region so the kernel re-enters with the
    // requested width, and records the width the pool actually ran
    // with (on small machines the curve is legitimately flat - the
    // hardware concurrency is in the JSON for that).
    const std::size_t dim = opt.quick ? 256 : 512;
    Rng rng(7);
    const std::int32_t zp = 136;
    MatrixI32 w = weightCodes(rng, dim, dim, 0.6);
    MatrixI32 x = actCodes(rng, dim, dim, zp, 0.6);
    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);

    std::vector<ThreadPoint> scaling;
    std::cout << "\nblocked kernel thread scaling (dim=" << dim
              << ", 60% clustered)\n";
    std::cout << "  threads    ms    speedup-vs-1t\n";
    // The doubling ladder plus the machine's full width: on wide hosts
    // the 8-thread cap used to hide the top of the curve, and on
    // 1-core CI containers pool_threads records that every point
    // legitimately ran at width 1 (the curve is flat, not broken).
    std::vector<int> thread_points{1, 2, 4, 8};
    const int hw =
        static_cast<int>(std::thread::hardware_concurrency());
    if (hw > 8)
        thread_points.push_back(hw);
    double ms_1t = 0.0;
    for (int t : thread_points) {
        setParallelThreads(t);
        ThreadPoint p;
        p.threads = t;
        p.poolThreads = parallelThreads();
        p.ms = timeMs(opt, [&] { aqsGemm(w_op, x_op, cfg); });
        if (t == 1)
            ms_1t = p.ms;
        p.speedupVs1 = ms_1t / p.ms;
        scaling.push_back(p);
        std::printf("  %7d  %7.2f  %10.2fx\n", p.threads, p.ms,
                    p.speedupVs1);
    }
    setParallelThreads(pool_threads);
    // A ladder run on a 1-core host (or with every point clamped to
    // pool width 1) measures nothing about scaling: the threads exist
    // but time-slice one core, so the curve is flat by construction.
    // Label that explicitly instead of letting 1.00x read as "does
    // not scale".
    bool wide_pool = false;
    for (const ThreadPoint &p : scaling)
        wide_pool = wide_pool || p.poolThreads > 1;
    const bool scaling_measured = wide_pool && hw > 1;
    if (!scaling_measured)
        std::printf("  (host has %d hardware thread%s: the flat curve "
                    "is UNMEASURED scaling, not absent scaling)\n",
                    hw, hw == 1 ? "" : "s");

    // --- Context kernels --------------------------------------------
    SlicedMatrix ws = sbrSliceMatrix(w, 1);
    SlicedMatrix xs = sbrSliceMatrix(weightCodes(rng, dim, dim, 0.8), 1);
    double legacy_ms = timeMs(
        opt, [&] { legacyBitsliceGemm(ws, xs, 4, SibiaSkipSide::Auto); });
    double dense_ms = timeMs(opt, [&] { intGemm(w, x); });
    std::printf("\ncontext (dim=%zu, pool=%d): legacy bit-slice %.2f ms, "
                "dense int GEMM %.2f ms\n",
                dim, pool_threads, legacy_ms, dense_ms);

    // --- Preparation stages, serial vs parallel ----------------------
    // The ROADMAP flagged prep as a visible serial fraction of layer
    // time; these columns track the parallel_for speedup of each stage
    // (1 thread vs the full pool).
    std::vector<PrepStage> prep{{"sbr_slice"},
                                {"prepare_weights"},
                                {"prepare_activations"}};
    for (PrepStage &stage : prep) {
        auto run = [&] {
            if (std::strcmp(stage.name, "sbr_slice") == 0)
                sbrSliceMatrix(w, 1);
            else if (std::strcmp(stage.name, "prepare_weights") == 0)
                prepareWeights(w, 1, cfg);
            else
                prepareActivations(x, 1, zp, cfg);
        };
        setParallelThreads(1);
        stage.serialMs = timeMs(opt, run);
        setParallelThreads(pool_threads);
        stage.parallelMs = timeMs(opt, run);
    }
    std::vector<Slice> rle_data(65536 * 4);
    for (std::size_t i = 0; i < 65536; ++i) {
        bool fill = rng.bernoulli(0.8);
        for (int j = 0; j < 4; ++j)
            rle_data[i * 4 + j] =
                fill ? 10 : static_cast<Slice>(rng.uniformInt(0, 15));
    }
    double rle_ms = timeMs(
        opt, [&] { RleStream::encode(rle_data, 65536, 4, 10, 4); });
    std::printf("prep (dim=%zu, pool=%d):\n", dim, pool_threads);
    for (const PrepStage &stage : prep)
        std::printf("  %-20s serial %7.2f ms  parallel %7.2f ms  "
                    "speedup %5.2fx\n",
                    stage.name, stage.serialMs, stage.parallelMs,
                    stage.speedup());
    std::printf("  single RLE stream (64Ki vectors): %.2f ms\n", rle_ms);

    bool all_parity = true;
    for (const CaseResult &r : cases)
        all_parity = all_parity && r.parity;
    for (const IsaCase &c : isa_cases)
        all_parity = all_parity && c.parity;
    for (const DensityPoint &p : density_points)
        all_parity = all_parity && p.parity;

    if (opt.writeJson) {
        std::ofstream out(opt.jsonPath);
        if (!out) {
            std::cerr << "cannot write " << opt.jsonPath << "\n";
            return 1;
        }
        out << "{\n  \"bench\": \"kernels\",\n";
        out << "  \"pool_threads\": " << pool_threads << ",\n";
        out << "  \"isa\": \"" << isa_active << "\",\n";
        out << "  \"isa_detected\": \"" << toString(detectedIsaLevel())
            << "\",\n";
        out << "  \"vnni_available\": "
            << (supportedIsaCap() >= IsaLevel::Avx512Vnni ? "true"
                                                          : "false")
            << ",\n";
        out << "  \"stream_policy\": \""
            << toString(activeStreamPolicy()) << "\",\n";
        out << "  \"parity\": " << (all_parity ? "true" : "false")
            << ",\n";
        out << "  \"single_thread_cases\": [\n";
        for (std::size_t i = 0; i < cases.size(); ++i) {
            const CaseResult &r = cases[i];
            out << "    {\"m\": " << r.dim << ", \"k\": " << r.dim
                << ", \"n\": " << r.dim
                << ", \"sparsity_pct\": " << r.sparsityPct
                << ", \"reference_ms\": " << r.refMs
                << ", \"blocked_ms\": " << r.newMs
                << ", \"reference_gmacs\": "
                << gmacs(r.dim, r.dim, r.dim, r.refMs)
                << ", \"blocked_gmacs\": "
                << gmacs(r.dim, r.dim, r.dim, r.newMs)
                << ", \"speedup\": " << r.speedup()
                << ", \"parity\": " << (r.parity ? "true" : "false")
                << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"isa_cases\": [\n";
        for (std::size_t i = 0; i < isa_cases.size(); ++i) {
            const IsaCase &c = isa_cases[i];
            out << "    {\"isa\": \"" << toString(c.level)
                << "\", \"m\": " << isa_dim << ", \"k\": " << isa_dim
                << ", \"n\": " << isa_dim << ", \"sparsity_pct\": 60"
                << ", \"ms\": " << c.ms << ", \"gmacs\": "
                << gmacs(isa_dim, isa_dim, isa_dim, c.ms)
                << ", \"speedup_vs_scalar\": "
                << (isa_cases.front().ms / c.ms)
                << ", \"parity\": " << (c.parity ? "true" : "false")
                << "}" << (i + 1 < isa_cases.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"density_sweep\": [\n";
        for (std::size_t i = 0; i < density_points.size(); ++i) {
            const DensityPoint &p = density_points[i];
            out << "    {\"density_pct\": " << p.densityPct
                << ", \"dim\": 256"
                << ", \"static_ms\": " << p.staticMs
                << ", \"measured_ms\": " << p.measuredMs
                << ", \"static_gmacs\": "
                << gmacs(256, 256, 256, p.staticMs)
                << ", \"measured_gmacs\": "
                << gmacs(256, 256, 256, p.measuredMs)
                << ", \"measured_over_static\": " << p.ratio()
                << ", \"parity\": " << (p.parity ? "true" : "false")
                << "}" << (i + 1 < density_points.size() ? "," : "")
                << "\n";
        }
        // thread_scaling_measured: false when the host cannot run the
        // ladder's threads concurrently (1 hardware core, or every
        // point clamped to pool width 1) - consumers must label or
        // skip the flat curve rather than plot it as real scaling.
        out << "  ],\n  \"thread_scaling_measured\": "
            << (scaling_measured ? "true" : "false") << ",\n";
        out << "  \"thread_scaling\": [\n";
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const ThreadPoint &p = scaling[i];
            out << "    {\"threads\": " << p.threads
                << ", \"pool_threads\": " << p.poolThreads
                << ", \"dim\": " << dim << ", \"ms\": " << p.ms
                << ", \"gmacs\": " << gmacs(dim, dim, dim, p.ms)
                << ", \"speedup_vs_1t\": " << p.speedupVs1 << "}"
                << (i + 1 < scaling.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        out << "  \"hardware_concurrency\": "
            << static_cast<int>(std::thread::hardware_concurrency())
            << ",\n";
        out << "  \"context\": {\"legacy_bitslice_ms\": " << legacy_ms
            << ", \"dense_int_gemm_ms\": " << dense_ms << "},\n";
        out << "  \"prep\": {\n";
        for (std::size_t i = 0; i < prep.size(); ++i) {
            const PrepStage &stage = prep[i];
            out << "    \"" << stage.name << "\": {\"serial_ms\": "
                << stage.serialMs << ", \"parallel_ms\": "
                << stage.parallelMs << ", \"speedup\": "
                << stage.speedup() << "},\n";
        }
        out << "    \"rle_encode_ms\": " << rle_ms << "\n  }\n";
        out << "}\n";
        std::cout << "\nwrote " << opt.jsonPath << "\n";
    }

    return all_parity ? 0 : 1;
}
