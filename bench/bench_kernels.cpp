/**
 * @file
 * google-benchmark microbenchmarks of the functional engines: dense
 * integer GEMM, the legacy (Sibia-style) bit-slice GEMM and the
 * AQS-GEMM at several sparsity points, plus the preparation stages
 * (SBR slicing, RLE encoding). Host-CPU timings - these measure the
 * simulator's own kernels, not modeled hardware.
 */

#include <benchmark/benchmark.h>

#include "core/aqs_gemm.h"
#include "core/legacy_gemm.h"
#include "quant/gemm_quant.h"
#include "slicing/rle.h"
#include "slicing/slice_tensor.h"
#include "util/random.h"

using namespace panacea;

namespace {

MatrixI32
weightCodes(Rng &rng, std::size_t m, std::size_t k, double near_zero)
{
    MatrixI32 w(m, k);
    for (auto &v : w.data())
        v = rng.bernoulli(near_zero)
                ? static_cast<std::int32_t>(rng.uniformInt(-8, 7))
                : static_cast<std::int32_t>(rng.uniformInt(-64, 63));
    return w;
}

MatrixI32
actCodes(Rng &rng, std::size_t k, std::size_t n, std::int32_t zp,
         double clustered)
{
    MatrixI32 x(k, n);
    for (auto &v : x.data())
        v = rng.bernoulli(clustered)
                ? static_cast<std::int32_t>(std::clamp<std::int64_t>(
                      zp + rng.uniformInt(-7, 7), 0, 255))
                : static_cast<std::int32_t>(rng.uniformInt(0, 255));
    return x;
}

void
BM_DenseIntGemm(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    MatrixI32 w = weightCodes(rng, dim, dim, 0.5);
    MatrixI32 x = actCodes(rng, dim, 64, 136, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(intGemm(w, x));
    state.SetItemsProcessed(state.iterations() * dim * dim * 64);
}

void
BM_AqsGemm(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const double sparsity = static_cast<double>(state.range(1)) / 100.0;
    Rng rng(2);
    const std::int32_t zp = 136;
    MatrixI32 w = weightCodes(rng, dim, dim, sparsity);
    MatrixI32 x = actCodes(rng, dim, 64, zp, sparsity);

    AqsConfig cfg;
    WeightOperand w_op = prepareWeights(w, 1, cfg);
    ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(aqsGemm(w_op, x_op, cfg));
    state.SetItemsProcessed(state.iterations() * dim * dim * 64);
}

void
BM_LegacyBitsliceGemm(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    MatrixI32 w = weightCodes(rng, dim, dim, 0.8);
    MatrixI32 x = weightCodes(rng, dim, 64, 0.8);
    SlicedMatrix ws = sbrSliceMatrix(w, 1);
    SlicedMatrix xs = sbrSliceMatrix(x, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            legacyBitsliceGemm(ws, xs, 4, SibiaSkipSide::Auto));
    state.SetItemsProcessed(state.iterations() * dim * dim * 64);
}

void
BM_SbrSlicing(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    MatrixI32 w = weightCodes(rng, dim, dim, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(sbrSliceMatrix(w, 1));
    state.SetItemsProcessed(state.iterations() * dim * dim);
}

void
BM_RleEncode(benchmark::State &state)
{
    const auto vectors = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    std::vector<Slice> data(vectors * 4);
    for (std::size_t i = 0; i < vectors; ++i) {
        bool fill = rng.bernoulli(0.8);
        for (int j = 0; j < 4; ++j)
            data[i * 4 + j] =
                fill ? 10 : static_cast<Slice>(rng.uniformInt(0, 15));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(
            RleStream::encode(data, vectors, 4, 10, 4));
    state.SetItemsProcessed(state.iterations() * vectors);
}

} // namespace

BENCHMARK(BM_DenseIntGemm)->Arg(128)->Arg(256);
BENCHMARK(BM_AqsGemm)
    ->Args({128, 0})
    ->Args({128, 60})
    ->Args({128, 95})
    ->Args({256, 60})
    ->Args({256, 95});
BENCHMARK(BM_LegacyBitsliceGemm)->Arg(128)->Arg(256);
BENCHMARK(BM_SbrSlicing)->Arg(256)->Arg(1024);
BENCHMARK(BM_RleEncode)->Arg(1024)->Arg(65536);

BENCHMARK_MAIN();
