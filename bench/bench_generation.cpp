/**
 * @file
 * Generation benchmark: phase-aware scheduling (bounded prefill chunks
 * + urgent decode steps) versus a naive FIFO loop (whole prompts, no
 * phases) over the SAME seeded mixed traffic - interactive decode
 * streams sharing one engine with long-prompt arrivals, open-loop
 * Poisson submission times. Written against the public API
 * (panacea::Session::generate).
 *
 * The workload is the one the phase split exists for: short-prompt
 * generations holding live decode streams while long prompts land
 * mid-run. Under FIFO a decode step queues behind whole prompts and
 * pays their full stack latency (inter-token p99 blows up); phase-aware
 * bounds that stall to one prefill chunk. Both modes run the identical
 * deterministic arrival schedule on a fresh continuous session, and
 * every generation is checked byte-for-byte against a manual
 * whole-prompt + per-step reference loop (the FNV-1a digest of those
 * reference outputs is the cross-process parity anchor).
 *
 * Usage:
 *   bench_generation                    # opt350m, mixed traffic
 *   bench_generation --model=deit|opt350m|bert
 *   bench_generation --json[=out.json]  # write BENCH_generation.json
 *   bench_generation --quick            # CI smoke variant
 *
 * JSON: tokens/s, TTFT p50/p99, inter-token p50/p99 and prefill-chunk
 * counts per mode, plus the parity flag and digest. See README.md
 * ("Bench JSON schema"). Exit code is nonzero on any parity failure.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "panacea/models.h"
#include "panacea/runtime.h"
#include "panacea/session.h"
#include "panacea/util.h"

using namespace panacea;

namespace {

struct BenchOptions
{
    bool writeJson = false;
    std::string jsonPath = "BENCH_generation.json";
    std::string model = "opt350m";
    bool quick = false;
};

/** One generation job of the mixed traffic. */
struct GenJob
{
    std::string kind; ///< "chat" (decode-heavy) or "doc" (long prompt)
    MatrixF prompt;
    std::size_t steps = 0;
    std::uint64_t seed = 0;
    double arriveMs = 0.0; ///< submission offset on the shared schedule
    MatrixF refPrefill;    ///< manual-loop reference outputs
    MatrixF refOutput;
};

/** One scheduling mode measured over the full traffic. */
struct ModeResult
{
    std::string name;
    double wallMs = 0.0;
    double tokensPerSecond = 0.0;
    double p50TtftMs = 0.0;
    double p99TtftMs = 0.0;
    double p50InterTokenMs = 0.0;
    double p99InterTokenMs = 0.0;
    std::uint64_t prefillChunks = 0;
    std::uint64_t decodeSteps = 0;
    bool parity = true;
};

ModelSpec
pickModel(const std::string &name)
{
    if (name == "deit")
        return deitBase();
    if (name == "opt350m")
        return opt350m();
    if (name == "bert")
        return bertBase();
    std::cerr << "unknown --model=" << name
              << " (deit | opt350m | bert)\n";
    std::exit(1);
}

MatrixF
makePrompt(std::size_t features, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    MatrixF x(features, cols);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian(0.2, 1.0));
    return x;
}

/**
 * The reference loop every mode is checked against: whole prompt, then
 * one infer() per decode step through the same seeded sampler.
 */
void
fillReference(Session &session, const CompiledModel &model, GenJob &job)
{
    const std::size_t v = static_cast<std::size_t>(model.options().v);
    TokenSampler sampler(job.seed);
    job.refPrefill = session.infer(model, job.prompt).output;
    job.refOutput = MatrixF(model.outputFeatures(), job.steps * v);
    MatrixF prev = job.refPrefill;
    for (std::size_t step = 0; step < job.steps; ++step) {
        MatrixF x = sampler.next(prev, model.inputFeatures(), v);
        MatrixF y = session.infer(model, std::move(x)).output;
        for (std::size_t row = 0; row < y.rows(); ++row) {
            const auto src = y.row(row);
            std::copy(src.begin(), src.end(),
                      job.refOutput.row(row).begin() +
                          static_cast<std::ptrdiff_t>(step * v));
        }
        prev = std::move(y);
    }
}

/**
 * One mode over the whole traffic: a fresh continuous session, every
 * job submitted at its schedule offset, every result parity-checked.
 */
ModeResult
runMode(Runtime &rt, const CompiledModel &model,
        std::vector<GenJob> &jobs, bool phase_aware,
        std::size_t chunk_groups)
{
    SessionOptions sopts;
    sopts.batchWindow = 1;
    sopts.batchDeadlineMs = 0.0;
    sopts.workers = 1;
    sopts.continuous = true;
    Session session = rt.createSession(sopts);

    std::vector<std::future<GenerationResult>> futures;
    futures.reserve(jobs.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (GenJob &job : jobs) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         job.arriveMs)));
        GenerationRequest req;
        req.prompt = job.prompt;
        req.maxSteps = job.steps;
        req.samplerSeed = job.seed;
        req.phaseAware = phase_aware;
        req.prefillChunkGroups = chunk_groups;
        futures.push_back(session.generate(model, req));
    }
    ModeResult res;
    res.name = phase_aware ? "phase_aware" : "fifo";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const GenerationResult gr = futures[i].get();
        res.parity = res.parity &&
                     gr.prefillOutput == jobs[i].refPrefill &&
                     gr.output == jobs[i].refOutput;
    }
    res.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    const GenerationStats gs = session.generationStats();
    res.tokensPerSecond = gs.tokensPerSecond;
    res.p50TtftMs = gs.p50TtftMs;
    res.p99TtftMs = gs.p99TtftMs;
    res.p50InterTokenMs = gs.p50InterTokenMs;
    res.p99InterTokenMs = gs.p99InterTokenMs;
    res.prefillChunks = gs.prefillChunks;
    res.decodeSteps = gs.decodeSteps;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.writeJson = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            opt.writeJson = true;
            opt.jsonPath = arg.substr(7);
        } else if (arg.rfind("--model=", 0) == 0) {
            opt.model = arg.substr(8);
        } else if (arg == "--quick") {
            opt.quick = true;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 1;
        }
    }

    const ModelSpec spec = pickModel(opt.model);
    CompileOptions mopts;
    mopts.maxLayers = opt.quick ? 2 : 4;

    Runtime rt;
    std::cout << "Preparing " << spec.name << " ("
              << (mopts.maxLayers ? mopts.maxLayers
                                  : spec.layers.size())
              << " layers) for generation...\n";
    const CompiledModel model = rt.compile(spec, mopts);
    std::cout << "  prepared in " << model.buildMs() << " ms\n";
    const std::size_t v = static_cast<std::size_t>(model.options().v);

    // Mixed traffic: decode-heavy chat streams + long-prompt document
    // arrivals, everything derived from fixed seeds.
    const std::size_t chats = opt.quick ? 3 : 6;
    const std::size_t docs = opt.quick ? 2 : 3;
    const std::size_t chat_steps = opt.quick ? 8 : 12;
    const std::size_t doc_groups = opt.quick ? 32 : 64;
    const std::size_t chunk_groups = 8;
    std::vector<GenJob> jobs;
    for (std::size_t i = 0; i < chats; ++i) {
        GenJob j;
        j.kind = "chat";
        j.prompt =
            makePrompt(model.inputFeatures(), (2 + i % 3) * v, 0xc0 + i);
        j.steps = chat_steps;
        j.seed = 0x1000 + i;
        jobs.push_back(std::move(j));
    }
    for (std::size_t i = 0; i < docs; ++i) {
        GenJob j;
        j.kind = "doc";
        j.prompt =
            makePrompt(model.inputFeatures(), doc_groups * v, 0xd0 + i);
        j.steps = 2;
        j.seed = 0x2000 + i;
        jobs.push_back(std::move(j));
    }

    // References (and the sequential wall time the schedule scales to).
    std::cout << "Running the manual-loop reference ("
              << jobs.size() << " generations)...\n";
    SessionOptions solo_opts;
    solo_opts.batchWindow = 1;
    solo_opts.batchDeadlineMs = 0.0;
    solo_opts.workers = 1;
    Session solo = rt.createSession(solo_opts);
    const auto tref = nowTick();
    for (GenJob &job : jobs)
        fillReference(solo, model, job);
    const double seq_ms = msSince(tref);

    // FNV-1a over the reference outputs: policy-invariant by the
    // identity contract, so any two processes at one ISA leg can diff.
    std::uint64_t digest = fnv1a64Offset;
    for (const GenJob &job : jobs) {
        digest = fnv1a64(job.refPrefill.data().data(),
                         job.refPrefill.size() * sizeof(float), digest);
        digest = fnv1a64(job.refOutput.data().data(),
                         job.refOutput.size() * sizeof(float), digest);
    }

    // Open-loop Poisson arrivals, fixed seed: chats lead (their decode
    // streams must be live when the documents land mid-run), and both
    // modes replay the identical schedule.
    Rng arng(0xa660);
    double at = 0.0;
    const double mean_gap_ms =
        seq_ms / (2.0 * static_cast<double>(jobs.size()));
    for (GenJob &job : jobs) {
        job.arriveMs = at;
        at += -std::log(1.0 - arng.uniformReal(0.0, 1.0)) * mean_gap_ms;
    }

    std::cout << "Mixed Poisson traffic: " << chats << " chat streams ("
              << chat_steps << " steps), " << docs
              << " long prompts (" << doc_groups
              << " groups, chunk " << chunk_groups
              << "), seed 0xa660, mean gap " << mean_gap_ms << " ms\n\n";

    std::vector<ModeResult> modes;
    modes.push_back(runMode(rt, model, jobs, false, chunk_groups));
    modes.push_back(runMode(rt, model, jobs, true, chunk_groups));
    const ModeResult &fifo = modes[0];
    const ModeResult &aware = modes[1];
    const bool parity = fifo.parity && aware.parity;

    Table t({"mode", "wall ms", "tokens/s", "TTFT p50", "TTFT p99",
             "tok gap p50", "tok gap p99", "prefill cohorts",
             "bit-exact"});
    for (const ModeResult &mr : modes) {
        t.newRow()
            .cell(mr.name)
            .cell(mr.wallMs, 1)
            .cell(mr.tokensPerSecond, 1)
            .cell(mr.p50TtftMs, 2)
            .cell(mr.p99TtftMs, 2)
            .cell(mr.p50InterTokenMs, 2)
            .cell(mr.p99InterTokenMs, 2)
            .cell(static_cast<double>(mr.prefillChunks), 0)
            .cell(mr.parity ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "\nphase_aware vs fifo: inter-token p99 "
              << aware.p99InterTokenMs << " vs " << fifo.p99InterTokenMs
              << " ms ("
              << (fifo.p99InterTokenMs > 0.0
                      ? 100.0 *
                            (fifo.p99InterTokenMs -
                             aware.p99InterTokenMs) /
                            fifo.p99InterTokenMs
                      : 0.0)
              << "% lower), tokens/s " << aware.tokensPerSecond
              << " vs " << fifo.tokensPerSecond
              << "; outputs byte-identical to the manual loop: "
              << (parity ? "yes" : "NO") << "\n";

    if (opt.writeJson) {
        std::ofstream out(opt.jsonPath);
        if (!out) {
            std::cerr << "cannot write " << opt.jsonPath << "\n";
            return 1;
        }
        char digest_hex[17];
        std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                      static_cast<unsigned long long>(digest));
        out << "{\n  \"bench\": \"generation\",\n";
        out << "  \"model\": \"" << spec.name << "\",\n";
        out << "  \"layers\": " << model.layerCount() << ",\n";
        out << "  \"quick\": " << (opt.quick ? "true" : "false")
            << ",\n";
        out << "  \"chat_streams\": " << chats << ",\n";
        out << "  \"chat_steps\": " << chat_steps << ",\n";
        out << "  \"doc_prompts\": " << docs << ",\n";
        out << "  \"doc_prompt_groups\": " << doc_groups << ",\n";
        out << "  \"prefill_chunk_groups\": " << chunk_groups << ",\n";
        out << "  \"arrival_seed\": \"0xa660\",\n";
        out << "  \"mean_arrival_gap_ms\": " << mean_gap_ms << ",\n";
        out << "  \"sequential_reference_ms\": " << seq_ms << ",\n";
        out << "  \"isa\": \"" << toString(activeIsaLevel()) << "\",\n";
        out << "  \"pool_threads\": " << parallelThreads() << ",\n";
        out << "  \"hardware_concurrency\": "
            << static_cast<int>(std::thread::hardware_concurrency())
            << ",\n";
        out << "  \"output_digest\": \"" << digest_hex << "\",\n";
        out << "  \"parity\": " << (parity ? "true" : "false") << ",\n";
        out << "  \"modes\": [\n";
        for (std::size_t i = 0; i < modes.size(); ++i) {
            const ModeResult &mr = modes[i];
            out << "    {\"name\": \"" << mr.name
                << "\", \"wall_ms\": " << mr.wallMs
                << ", \"tokens_per_s\": " << mr.tokensPerSecond
                << ", \"ttft_p50_ms\": " << mr.p50TtftMs
                << ", \"ttft_p99_ms\": " << mr.p99TtftMs
                << ", \"inter_token_p50_ms\": " << mr.p50InterTokenMs
                << ", \"inter_token_p99_ms\": " << mr.p99InterTokenMs
                << ", \"prefill_cohorts\": " << mr.prefillChunks
                << ", \"decode_steps\": " << mr.decodeSteps
                << ", \"parity\": " << (mr.parity ? "true" : "false")
                << "}" << (i + 1 < modes.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "wrote " << opt.jsonPath << "\n";
    }
    return parity ? 0 : 1;
}
