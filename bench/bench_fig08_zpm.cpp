/**
 * @file
 * Reproduces paper Fig. 8: sparsity-aware zero-point manipulation on an
 * OPT-2.7B-class FC-layer activation.
 *
 * The paper's example: zp = 161 puts only ~68% of values in the skip
 * range (frequent slice 1010); ZPM moves zp to the bucket centre and
 * raises the in-range share to ~98%, cutting AQS-GEMM operations by
 * ~33% on that layer.
 */

#include <iostream>

#include "core/aqs_gemm.h"
#include "models/model_zoo.h"
#include "models/synth_data.h"
#include "quant/calibration.h"
#include "quant/quantizer.h"
#include "quant/zpm.h"
#include "slicing/slice_tensor.h"
#include "slicing/sparsity.h"
#include "util/histogram.h"
#include "util/table.h"

using namespace panacea;

namespace {

/** Measure skip-range mass, slice and vector sparsity for a given zp. */
struct ZpmPoint
{
    std::int32_t zp;
    std::int32_t r;
    double skipRangeMass;
    double sliceSparsity;
    double vectorSparsity;
    std::uint64_t aqsMults;
};

ZpmPoint
measure(const MatrixF &act, const QuantParams &params, std::int32_t r,
        const MatrixI32 &w_codes)
{
    ZpmPoint pt;
    pt.zp = params.zeroPoint;
    pt.r = r;

    MatrixI32 codes = quantize(act, params);
    Histogram hist(0, 255);
    for (auto c : codes.data())
        hist.add(c);
    pt.skipRangeMass = hist.massIn(static_cast<std::int64_t>(r) << 4,
                                   ((static_cast<std::int64_t>(r) + 1)
                                    << 4) - 1);

    AqsConfig cfg;
    ActivationOperand x_op =
        prepareActivations(codes, 1, static_cast<std::int32_t>(r) << 4,
                           cfg);
    SparsityReport rep =
        analyzeActivationHo(x_op.sliced.hoPlane().data, 4,
                            static_cast<Slice>(r));
    pt.sliceSparsity = rep.sliceLevel;
    pt.vectorSparsity = rep.vectorLevel;

    WeightOperand w_op = prepareWeights(w_codes, 1, cfg);
    AqsStats stats;
    (void)aqsGemm(w_op, x_op, cfg, &stats);
    pt.aqsMults = stats.totalMults();
    return pt;
}

} // namespace

int
main()
{
    Rng rng(88);
    // The paper's Fig. 8 example: an OPT-2.7B FC-layer activation whose
    // calibrated zero point lands at 161, one code above its HO-bucket
    // edge (bucket [160,176), centre 168), with a tight core (std ~3.5
    // codes) and rare outliers setting the range. Synthesized directly
    // in those terms: core N(0, 3.5) with tails spanning [-161, +94]
    // on a unit scale.
    const std::size_t k = 512;
    const std::size_t n = 128;
    MatrixF act(k, n);
    for (auto &v : act.data()) {
        v = rng.bernoulli(0.02)
                ? static_cast<float>(rng.uniformReal(-161.0, 94.0))
                : static_cast<float>(rng.gaussian(0.0, 3.5));
    }
    // Pin the exact calibration endpoints so zp = 161 as in the paper.
    act.data()[0] = -161.0f;
    act.data()[1] = 94.0f;

    MatrixF w = genWeights(rng, 128, k);
    QuantParams wp = chooseSymmetricParams(w.data(), 7);
    MatrixI32 w_codes = quantize(w, wp);

    Calibrator cal(QuantScheme::Asymmetric, 8);
    cal.observe(act);
    QuantParams raw = cal.finalize();

    ZpmResult zpm = manipulateZeroPoint(raw.zeroPoint, 8, 4);
    QuantParams manipulated = refitScaleForZeroPoint(raw, zpm.zeroPoint);

    printBanner(std::cout,
                "Fig. 8: zero-point manipulation (l = 4, OPT-2.7B "
                "FC-class activation)");
    ZpmPoint before =
        measure(act, raw, frequentSliceOf(raw.zeroPoint, 4), w_codes);
    ZpmPoint after = measure(act, manipulated, zpm.frequentSlice,
                             w_codes);

    Table t({"", "zp", "r (freq. HO slice)", "mass in skip range",
             "HO slice sparsity", "HO vector sparsity", "AQS mults"});
    t.newRow()
        .cell("without ZPM")
        .cell(static_cast<std::int64_t>(before.zp))
        .cell(static_cast<std::int64_t>(before.r))
        .percentCell(before.skipRangeMass)
        .percentCell(before.sliceSparsity)
        .percentCell(before.vectorSparsity)
        .cell(static_cast<std::int64_t>(before.aqsMults));
    t.newRow()
        .cell("with ZPM")
        .cell(static_cast<std::int64_t>(after.zp))
        .cell(static_cast<std::int64_t>(after.r))
        .percentCell(after.skipRangeMass)
        .percentCell(after.sliceSparsity)
        .percentCell(after.vectorSparsity)
        .cell(static_cast<std::int64_t>(after.aqsMults));
    t.print(std::cout);

    double op_cut = 1.0 - static_cast<double>(after.aqsMults) /
                              static_cast<double>(before.aqsMults);
    std::cout << "\nZPM operation reduction on this layer: "
              << op_cut * 100.0
              << "%  (paper reports ~33% for the OPT-2.7B FC layer; "
                 "slice sparsity 68% -> 98% in its example)\n";

    printBanner(std::cout,
                "ZPM sweep across distribution centres (zp depends on "
                "where the mode sits inside its HO bucket)");
    Table sweep({"raw zp", "zp'", "mass before", "mass after",
                 "slice sparsity before", "slice sparsity after"});
    for (double shift : {-0.45, -0.3, -0.15, 0.0, 0.15, 0.3, 0.45}) {
        Rng srng(123);
        MatrixF a = genActivations(srng, k, n,
                                   ActDistKind::LayerNormGauss, 1.0,
                                   0.02);
        // Shift the real-valued mode so the raw zp lands at a different
        // phase within its bucket.
        for (auto &v : a.data())
            v += static_cast<float>(shift);
        Calibrator c(QuantScheme::Asymmetric, 8);
        c.observe(a);
        QuantParams p = c.finalize();
        ZpmResult z = manipulateZeroPoint(p.zeroPoint, 8, 4);
        QuantParams m = refitScaleForZeroPoint(p, z.zeroPoint);
        ZpmPoint b = measure(a, p, frequentSliceOf(p.zeroPoint, 4),
                             w_codes);
        ZpmPoint f = measure(a, m, z.frequentSlice, w_codes);
        sweep.newRow()
            .cell(static_cast<std::int64_t>(p.zeroPoint))
            .cell(static_cast<std::int64_t>(z.zeroPoint))
            .percentCell(b.skipRangeMass)
            .percentCell(f.skipRangeMass)
            .percentCell(b.sliceSparsity)
            .percentCell(f.sliceSparsity);
    }
    sweep.print(std::cout);
    std::cout << "\nShape check: ZPM never reduces the in-range mass and "
                 "recovers the worst (bucket-edge) phases.\n";

    printBanner(std::cout,
                "Extension ablation: Eq.(7) centring vs histogram-aware "
                "phase on a skewed (post-GELU-like) layer");
    {
        // One-sided distribution: mode at the zero point, mass piled
        // just above it (the GELU shape Eq. (7) handles worst).
        Rng grng(777);
        MatrixF skewed(k, n);
        for (auto &v : skewed.data()) {
            double g = grng.gaussian(0.0, 3.5);
            v = static_cast<float>(g > 0 ? g * 2.0 : g * 0.1);
        }
        skewed.data()[0] = -40.0f;
        skewed.data()[1] = 120.0f;

        Calibrator c(QuantScheme::Asymmetric, 8);
        c.observe(skewed);
        QuantParams p = c.finalize();
        Histogram hist(0, 255);
        MatrixI32 codes = quantize(skewed, p);
        for (auto cc : codes.data())
            hist.add(cc);

        ZpmResult eq7 = manipulateZeroPoint(p.zeroPoint, 8, 4);
        ZpmResult aware =
            manipulateZeroPointHistAware(hist, p.zeroPoint, 8, 4);

        Table abl({"variant", "zp'", "r", "slice sparsity",
                   "vector sparsity"});
        for (const auto &[name, res] :
             {std::pair<const char *, ZpmResult>{"Eq.(7) centring", eq7},
              {"histogram-aware", aware}}) {
            QuantParams q = refitScaleForZeroPoint(p, res.zeroPoint);
            ZpmPoint pt = measure(skewed, q, res.frequentSlice, w_codes);
            abl.newRow()
                .cell(name)
                .cell(static_cast<std::int64_t>(res.zeroPoint))
                .cell(static_cast<std::int64_t>(res.frequentSlice))
                .percentCell(pt.sliceSparsity)
                .percentCell(pt.vectorSparsity);
        }
        abl.print(std::cout);
        std::cout << "\n(extension beyond the paper: the calibration "
                     "histogram, already recorded for DBS, picks the "
                     "bucket phase - free sparsity on skewed layers)\n";
    }
    return 0;
}
