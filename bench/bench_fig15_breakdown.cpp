/**
 * @file
 * Reproduces paper Fig. 15 and the §III-B traffic claims.
 *
 * (a) energy breakdown of the five designs on GPT-2 (WikiText-2-class
 *     workload);
 * (b) throughput of the designs with the ZPM/DBS/DTP ablation ladder;
 * (c) relative area cost of the proposed methods;
 * plus the EMA/SRAM reduction vs Sibia of §III-B (DeiT-base & GPT-2).
 */

#include <iostream>

#include "bench_common.h"
#include "models/model_zoo.h"
#include "sim/area_model.h"
#include "util/table.h"

using namespace panacea;
using namespace panacea::bench;

namespace {

ModelBuild
buildVariant(const ModelSpec &spec, bool zpm, bool dbs)
{
    ModelBuildOptions opt = benchBuildOptions();
    opt.enableZpm = zpm;
    opt.enableDbs = dbs;
    return buildModel(spec, opt);
}

} // namespace

int
main()
{
    ModelSpec gpt = gpt2();
    ModelBuild full = buildVariant(gpt, true, true);
    DesignResults results = runAllDesigns(full);

    printBanner(std::cout, "Fig. 15(a): energy breakdown on GPT-2 (mJ)");
    {
        Table t({"design", "compute", "PPU", "SRAM", "DRAM", "control",
                 "total"});
        for (const PerfResult *r :
             {&results.saWs, &results.saOs, &results.simd,
              &results.sibia, &results.panacea}) {
            t.newRow()
                .cell(r->accelerator)
                .cell(r->energy.computePJ * 1e-9, 3)
                .cell(r->energy.ppuPJ * 1e-9, 3)
                .cell(r->energy.sramPJ * 1e-9, 3)
                .cell(r->energy.dramPJ * 1e-9, 3)
                .cell(r->energy.controlPJ * 1e-9, 3)
                .cell(r->totalMj(), 3);
        }
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Fig. 15(b): ZPM / DBS / DTP ablation ladder on GPT-2");
    {
        struct Step
        {
            const char *name;
            bool zpm;
            bool dbs;
            bool dtp;
        };
        const Step steps[] = {
            {"AQS-GEMM only", false, false, false},
            {"+ZPM", true, false, false},
            {"+ZPM+DBS", true, true, false},
            {"+ZPM+DBS+DTP", true, true, true},
        };
        Table t({"config", "TOPS", "TOPS/W", "energy vs prev",
                 "thr vs prev"});
        double prev_e = 0.0;
        double prev_t = 0.0;
        for (const Step &s : steps) {
            ModelBuild b = buildVariant(gpt, s.zpm, s.dbs);
            PanaceaConfig cfg = defaultPanaceaConfig();
            cfg.enableDtp = s.dtp;
            PerfResult r = PanaceaSimulator(cfg).runAll(
                b.panaceaWorkloads(), gpt.name);
            double e = r.totalMj();
            double tput = r.tops();
            auto signed_pct = [](double frac) {
                int pct = static_cast<int>(frac * 100.0);
                return (pct >= 0 ? "+" : "") + std::to_string(pct) + "%";
            };
            t.newRow()
                .cell(s.name)
                .cell(tput, 3)
                .cell(r.topsPerWatt(), 3)
                .cell(prev_e > 0.0 ? signed_pct(e / prev_e - 1.0)
                                   : std::string("-"))
                .cell(prev_t > 0.0 ? signed_pct(tput / prev_t - 1.0)
                                   : std::string("-"));
            prev_e = e;
            prev_t = tput;
        }
        t.print(std::cout);
        std::cout << "(paper: ZPM -10% energy/+17% thr; DBS -11%/+12%; "
                     "DTP -8.9%/+7.6% on GPT-2)\n";
    }

    printBanner(std::cout,
                "S III-B: external/on-chip traffic vs Sibia");
    {
        Table t({"model", "EMA reduction vs Sibia",
                 "SRAM reduction vs Sibia"});
        for (const ModelSpec &spec : {deitBase(), gpt2()}) {
            ModelBuild b = buildVariant(spec, true, true);
            DesignResults r = runAllDesigns(b);
            double ema_p = static_cast<double>(
                r.panacea.counters.dramReadBytes +
                r.panacea.counters.dramWriteBytes);
            double ema_s = static_cast<double>(
                r.sibia.counters.dramReadBytes +
                r.sibia.counters.dramWriteBytes);
            double sram_p = static_cast<double>(
                r.panacea.counters.sramReadBytes +
                r.panacea.counters.sramWriteBytes);
            double sram_s = static_cast<double>(
                r.sibia.counters.sramReadBytes +
                r.sibia.counters.sramWriteBytes);
            t.newRow()
                .cell(spec.name)
                .percentCell(1.0 - ema_p / ema_s)
                .percentCell(1.0 - sram_p / sram_s);
        }
        t.print(std::cout);
        std::cout << "(paper: EMA -60.5% DeiT / -46.8% GPT-2; SRAM "
                     "-29.2% / -27.4%)\n";
    }

    printBanner(std::cout, "Fig. 15(c): relative area cost");
    {
        // Baseline bit-slice core (Sibia-class): MACs + SRAM + buffers.
        AreaInputs sibia_in;
        sibia_in.multipliers = 3072;
        sibia_in.adders = 3072;
        sibia_in.shifters = 16 * 2;
        sibia_in.sramBytes = 192 * 1024;
        sibia_in.bufferBytes = 20 * 1024;
        sibia_in.decoders = 16;
        sibia_in.schedulers = 16;

        AreaInputs zpm_in = sibia_in;  // ZPM: calibration-only, no area

        AreaInputs dbs_in = zpm_in;
        dbs_in.shifters += 16 * 2;     // wider S-ACC shift range

        AreaInputs dtp_in = dbs_in;
        dtp_in.bufferBytes += 16 * 1024;  // doubled WBUF + psum buffers
        dtp_in.adders += 16 * 8;          // second CS per PEA

        double base = estimateAreaMm2(sibia_in);
        Table t({"config", "area (mm^2, model)", "relative"});
        t.newRow().cell("baseline (Sibia-class)").cell(base, 3).ratioCell(
            1.0);
        t.newRow()
            .cell("+ZPM")
            .cell(estimateAreaMm2(zpm_in), 3)
            .ratioCell(estimateAreaMm2(zpm_in) / base);
        t.newRow()
            .cell("+ZPM+DBS")
            .cell(estimateAreaMm2(dbs_in), 3)
            .ratioCell(estimateAreaMm2(dbs_in) / base);
        t.newRow()
            .cell("+ZPM+DBS+DTP")
            .cell(estimateAreaMm2(dtp_in), 3)
            .ratioCell(estimateAreaMm2(dtp_in) / base);
        t.print(std::cout);
        std::cout << "(paper: ZPM free, DBS small shifting-unit "
                     "overhead, DTP pays buffers/on-chip memory)\n";
    }

    printBanner(std::cout, "Overall comparison on GPT-2");
    {
        Table t({"design", "TOPS", "TOPS/W", "Panacea eff. advantage"});
        addComparisonRows(t, results);
        t.print(std::cout);
        std::cout << "(paper Fig. 16: 3.82x / 3.07x / 3.81x / 2.03x vs "
                     "SA-WS / SA-OS / SIMD / Sibia on GPT-2)\n";
    }
    return 0;
}
