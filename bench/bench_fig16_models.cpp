/**
 * @file
 * Reproduces paper Fig. 16: energy efficiency (TOPS/W), throughput
 * (TOPS) and accuracy loss of the five designs on DeiT-base, BERT-base,
 * GPT-2 and ResNet-18.
 *
 * Accuracy loss is the quantization-fidelity proxy of DESIGN.md §2:
 * dense designs and Sibia run symmetric activations (8b / 7b), Panacea
 * runs asymmetric 8-bit with ZPM+DBS; AQS-GEMM itself is bit-exact, so
 * each design's loss equals its quantizer's.
 */

#include <iostream>

#include "bench_common.h"
#include "models/accuracy_proxy.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace panacea;
using namespace panacea::bench;

int
main()
{
    for (const ModelSpec &spec :
         {deitBase(), bertBase(), gpt2(), resnet18()}) {
        ModelBuild build = buildModel(spec, benchBuildOptions());
        DesignResults r = runAllDesigns(build);

        printBanner(std::cout, "Fig. 16: " + spec.name);
        Table t({"design", "TOPS", "TOPS/W", "Panacea eff. advantage",
                 "acc. loss (proxy, %p)"});
        const double sym_loss =
            proxyAccuracyLossPct(build.meanNmseSym());
        const double asym_loss =
            proxyAccuracyLossPct(build.meanNmseAsym());
        const double panacea_eff = r.panacea.topsPerWatt();
        struct Row
        {
            const PerfResult *res;
            double loss;
        };
        const Row rows[] = {
            {&r.saWs, sym_loss},   {&r.saOs, sym_loss},
            {&r.simd, sym_loss},   {&r.sibia, sym_loss},
            {&r.panacea, asym_loss},
        };
        for (const Row &row : rows) {
            t.newRow()
                .cell(row.res->accelerator)
                .cell(row.res->tops(), 3)
                .cell(row.res->topsPerWatt(), 3)
                .ratioCell(panacea_eff / row.res->topsPerWatt())
                .cell(row.loss, 3);
        }
        t.print(std::cout);
    }

    std::cout
        << "\nShape checks (paper Fig. 16): Panacea leads every design "
           "on all four models; the margin over Sibia is largest for "
           "GPT-2-class long-token workloads (2.03x in the paper) and "
           "smallest for ResNet-18 (1.49x: ReLU zeros already favour "
           "zero-skipping); Panacea's accuracy loss is the asymmetric "
           "quantizer's (lower than every symmetric design).\n";
    return 0;
}
