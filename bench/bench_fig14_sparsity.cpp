/**
 * @file
 * Reproduces paper Fig. 14: HO vector sparsity on DNN benchmarks.
 *
 * (a) per-layer activation HO vector sparsity in DeiT-base for the
 * previous bit-slice GEMM (symmetric, zero-skipping) and the AQS-GEMM
 * (asymmetric, r-skipping) with and without ZPM/DBS.
 *
 * (b) weight and activation HO vector sparsity of Sibia vs Panacea
 * across DeiT-base, BERT-base and GPT-2.
 */

#include <iostream>

#include "bench_common.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace panacea;
using namespace panacea::bench;

namespace {

ModelBuild
buildWith(const ModelSpec &spec, bool zpm, bool dbs)
{
    ModelBuildOptions opt = benchBuildOptions();
    opt.enableZpm = zpm;
    opt.enableDbs = dbs;
    return buildModel(spec, opt);
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Fig. 14(a): activation HO vector sparsity per DeiT-base"
                " layer (previous bit-slice GEMM vs AQS-GEMM)");
    {
        ModelSpec deit = deitBase();
        ModelBuild plain = buildWith(deit, false, false);
        ModelBuild zpm = buildWith(deit, true, false);
        ModelBuild full = buildWith(deit, true, true);

        Table t({"layer", "prev BSG (zero-skip on asym codes)",
                 "AQS-GEMM", "AQS+ZPM", "AQS+ZPM+DBS", "DBS type"});
        for (std::size_t i = 0; i < plain.layers.size(); ++i) {
            t.newRow()
                .cell(plain.layers[i].spec.name)
                .percentCell(
                    plain.layers[i].actHoAsymZeroSkip.vectorLevel)
                .percentCell(plain.layers[i].actHoPanacea.vectorLevel)
                .percentCell(zpm.layers[i].actHoPanacea.vectorLevel)
                .percentCell(full.layers[i].actHoPanacea.vectorLevel)
                .cell(toString(full.layers[i].dbs.type));
        }
        t.print(std::cout);
        std::cout << "\nShape check: symmetric zero-skipping only works "
                     "on the post-GELU MLP.FC2 input (near-zero heavy); "
                     "AQS-GEMM + ZPM/DBS enables sparsity on every "
                     "layer.\n";
    }

    printBanner(std::cout,
                "Fig. 14(b): weight/activation HO vector sparsity, "
                "Sibia vs Panacea (model means, MAC-weighted layers)");
    {
        Table t({"model", "layer", "weight rho (both)",
                 "act rho Sibia", "act rho Panacea"});
        for (const ModelSpec &spec :
             {deitBase(), bertBase(), gpt2()}) {
            ModelBuild build = buildWith(spec, true, true);
            for (const LayerBuild &lb : build.layers) {
                t.newRow()
                    .cell(spec.name)
                    .cell(lb.spec.name)
                    .percentCell(lb.weightHo.vectorLevel)
                    .percentCell(lb.actHoSibia.vectorLevel)
                    .percentCell(lb.panacea.rhoX());
            }
        }
        t.print(std::cout);
        std::cout << "\nShape check: identical SBR weights give the two "
                     "designs the same weight sparsity; Panacea matches "
                     "or beats Sibia's activation sparsity despite "
                     "asymmetric quantization (the paper's key claim), "
                     "with ZPM/DBS pushing several layers higher.\n";
    }
    return 0;
}
