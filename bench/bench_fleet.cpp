/**
 * @file
 * Fleet benchmark: an open-loop, seeded-Poisson load generator driven
 * at fractions of the fleet's measured capacity, against N engine
 * replicas behind the shedding router (panacea::Fleet). Generalizes
 * bench_serving's arrivals harness from one Session to the fleet tier.
 *
 * Usage:
 *   bench_fleet                        # DeiT-base block, 2 replicas
 *   bench_fleet --replicas=4
 *   bench_fleet --model=opt350m
 *   bench_fleet --json[=out.json]      # write BENCH_fleet.json
 *   bench_fleet --quick                # CI smoke variant
 *
 * Method:
 *   1. Compile the model, save it as a .pncm v2 artifact, and serve
 *      the MMAPPED load of that file - the deployment path, where all
 *      replicas share one physical copy of the weights.
 *   2. Solo-run a fixed input pool (window 1) for the bit-exactness
 *      reference and the cross-process output digest.
 *   3. Measure capacity: closed-loop throughput of the fleet with all
 *      requests pre-queued (generous bounds, nothing sheds).
 *   4. For each load factor in {0.5x, 1x, 2x capacity}: a FRESH fleet
 *      with deliberately small per-replica bounds (queue 16 columns,
 *      engine depth 8) is driven by a deterministic seeded Poisson
 *      schedule (seed 0xf1ee - the same arrival times every run at a
 *      given rate). Reports goodput, shed-rate, fleet p50/p99 latency
 *      over completed requests, GMAC/s actually served, and parity of
 *      every completed output against its solo run. `lost` counts
 *      submissions with no terminal result and MUST be zero.
 *   5. Hot-reload leg at 1x: a second .pncm version (different weight
 *      seed) is swapped in mid-stream; every completed request must
 *      match the solo reference of exactly the version the router
 *      says it ran on, with a monotone version boundary.
 *
 * The process exits nonzero on any parity failure or lost request, so
 * CI can gate on the binary alone. See README.md ("Bench JSON
 * schema") for the BENCH_fleet.json field list.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "panacea/fleet.h"
#include "panacea/models.h"
#include "panacea/runtime.h"
#include "panacea/serialize.h"
#include "panacea/session.h"
#include "panacea/util.h"
#include "util/stats.h"

using namespace panacea;

namespace {

struct BenchOptions
{
    bool writeJson = false;
    std::string jsonPath = "BENCH_fleet.json";
    std::string model = "deit";
    int replicas = 2;
    std::size_t requests = 64; ///< per load point
    std::size_t cols = 4;
    bool quick = false;
};

/** One open-loop load point (a fraction of measured capacity). */
struct LoadPoint
{
    double factor = 0.0;
    double rateReqPerS = 0.0;
    double wallMs = 0.0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t lost = 0; ///< no terminal result - must be 0
    std::uint64_t redispatched = 0;
    double goodputReqPerS = 0.0;
    double shedRate = 0.0;
    double gmacs = 0.0; ///< dense-equivalent MACs actually served
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    bool parity = true;
};

/** The mid-stream hot-reload leg at 1x capacity. */
struct ReloadLeg
{
    double rateReqPerS = 0.0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t lost = 0;
    std::uint64_t preSwap = 0;  ///< completed on the old version
    std::uint64_t postSwap = 0; ///< completed on the new version
    bool monotone = true; ///< version boundary monotone in order
    bool parity = true;
};

ModelSpec
pickModel(const std::string &name)
{
    if (name == "deit")
        return deitBase();
    if (name == "opt350m")
        return opt350m();
    if (name == "bert")
        return bertBase();
    std::cerr << "unknown --model=" << name
              << " (deit | opt350m | bert)\n";
    std::exit(1);
}

/** Unique scratch dir for the .pncm artifacts, removed at exit. */
struct TempDir
{
    std::filesystem::path path;
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("panacea_bench_fleet_" +
                std::to_string(static_cast<long>(::getpid())));
        std::filesystem::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

std::vector<MatrixF>
makeInputPool(const CompiledModel &model, std::size_t cols,
              std::size_t count)
{
    Rng rng(0x5e81);
    std::vector<MatrixF> pool;
    pool.reserve(count);
    for (std::size_t r = 0; r < count; ++r) {
        MatrixF x(model.inputFeatures(), cols);
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian(0.2, 1.0));
        pool.push_back(std::move(x));
    }
    return pool;
}

std::vector<MatrixF>
soloRun(Runtime &rt, const CompiledModel &model,
        const std::vector<MatrixF> &pool)
{
    SessionOptions sopts;
    sopts.batchWindow = 1;
    sopts.batchDeadlineMs = 0.0;
    sopts.workers = 1;
    Session session = rt.createSession(sopts);
    std::vector<MatrixF> out;
    out.reserve(pool.size());
    for (const MatrixF &x : pool)
        out.push_back(session.infer(model, x).output);
    return out;
}

std::uint64_t
outputDigest(const std::vector<MatrixF> &outputs)
{
    std::uint64_t h = fnv1a64Offset;
    for (const MatrixF &m : outputs)
        h = fnv1a64(m.data().data(), m.size() * sizeof(float), h);
    return h;
}

/** The deterministic arrival schedule: seed 0xf1ee, ms offsets. */
std::vector<double>
poissonSchedule(std::size_t requests, double rate_req_per_s)
{
    Rng rng(0xf1ee);
    std::vector<double> schedule(requests);
    double at = 0.0;
    for (double &s : schedule) {
        at += -std::log(1.0 - rng.uniformReal(0.0, 1.0)) * 1000.0 /
              rate_req_per_s;
        s = at;
    }
    return schedule;
}

/** Fleet bounds for the open-loop points: small enough that driving
 *  2x capacity visibly sheds instead of queueing without bound. */
FleetOptions
loadPointFleetOptions(int replicas)
{
    FleetOptions fopts;
    fopts.replicas = replicas;
    fopts.queueCapColumns = 16;  // 4 four-column requests queued
    fopts.engineDepthColumns = 8; // + 2 in the engine
    fopts.engine.workers = 1;
    fopts.engine.batchWindow = 8;
    fopts.engine.batchDeadlineMs = 0.0;
    return fopts;
}

/** Drive one open-loop Poisson point against a fresh fleet. */
LoadPoint
runLoadPoint(Runtime &rt, const CompiledModel &model,
             const std::vector<MatrixF> &pool,
             const std::vector<MatrixF> &solo, double factor,
             double capacity_rps, std::size_t requests, int replicas)
{
    LoadPoint lp;
    lp.factor = factor;
    lp.rateReqPerS = capacity_rps * factor;
    const std::vector<double> schedule =
        poissonSchedule(requests, lp.rateReqPerS);

    Fleet fleet = rt.createFleet(loadPointFleetOptions(replicas));
    fleet.deploy(model);

    std::vector<std::future<FleetResult>> futs;
    futs.reserve(requests);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < requests; ++r) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         schedule[r])));
        futs.push_back(
            fleet.submit(model.shared()->spec().name,
                         MatrixF(pool[r % pool.size()])));
    }
    fleet.drain();
    lp.wallMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

    std::vector<float> latencies;
    latencies.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        const FleetResult res = futs[r].get();
        if (res.outcome == FleetOutcome::Completed) {
            ++lp.completed;
            lp.parity = lp.parity &&
                        (res.result.output == solo[r % solo.size()]);
            latencies.push_back(
                static_cast<float>(res.fleetLatencyMs));
        } else {
            ++lp.rejected;
        }
    }
    const FleetStats s = fleet.stats();
    lp.submitted = s.submitted;
    lp.redispatched = s.redispatched;
    lp.lost = lp.submitted - lp.completed - lp.rejected;
    lp.goodputReqPerS =
        static_cast<double>(lp.completed) / (lp.wallMs / 1.0e3);
    lp.shedRate = lp.submitted
                      ? static_cast<double>(lp.rejected) /
                            static_cast<double>(lp.submitted)
                      : 0.0;
    const double served_cols = static_cast<double>(lp.completed) *
                               static_cast<double>(pool[0].cols());
    lp.gmacs = served_cols *
               static_cast<double>(model.macsPerColumn()) / 1.0e9 /
               (lp.wallMs / 1.0e3);
    if (!latencies.empty()) {
        lp.p50Ms = percentile(latencies, 50.0);
        lp.p99Ms = percentile(latencies, 99.0);
    }
    return lp;
}

/** The hot-reload leg: 1x-capacity Poisson stream, swap at midpoint. */
ReloadLeg
runReloadLeg(Runtime &rt, const CompiledModel &old_model,
             const CompiledModel &new_model,
             const std::vector<MatrixF> &pool,
             const std::vector<MatrixF> &solo_old,
             const std::vector<MatrixF> &solo_new, double capacity_rps,
             std::size_t requests, int replicas)
{
    ReloadLeg leg;
    leg.rateReqPerS = capacity_rps;
    const std::vector<double> schedule =
        poissonSchedule(requests, capacity_rps);

    FleetOptions fopts = loadPointFleetOptions(replicas);
    fopts.queueCapColumns = 0; // default (generous): isolate the swap
    fopts.engineDepthColumns = 0;
    Fleet fleet = rt.createFleet(fopts);
    const std::uint64_t ver_old = fleet.deploy(old_model);
    std::uint64_t ver_new = 0;

    const std::string name = old_model.shared()->spec().name;
    std::vector<std::future<FleetResult>> futs;
    futs.reserve(requests);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < requests; ++r) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         schedule[r])));
        if (r == requests / 2)
            ver_new = fleet.reload(new_model);
        futs.push_back(
            fleet.submit(name, MatrixF(pool[r % pool.size()])));
    }
    fleet.drain();

    bool saw_new = false;
    for (std::size_t r = 0; r < requests; ++r) {
        const FleetResult res = futs[r].get();
        if (res.outcome != FleetOutcome::Completed) {
            ++leg.rejected;
            continue;
        }
        ++leg.completed;
        const bool is_new = res.modelVersion == ver_new;
        if (!is_new && res.modelVersion != ver_old) {
            leg.parity = false; // unknown version: torn swap
            continue;
        }
        if (is_new)
            saw_new = true;
        else if (saw_new)
            leg.monotone = false;
        const MatrixF &want = is_new ? solo_new[r % solo_new.size()]
                                     : solo_old[r % solo_old.size()];
        leg.parity = leg.parity && (res.result.output == want);
        ++(is_new ? leg.postSwap : leg.preSwap);
    }
    leg.submitted = fleet.stats().submitted;
    leg.lost = leg.submitted - leg.completed - leg.rejected;
    return leg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.writeJson = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            opt.writeJson = true;
            opt.jsonPath = arg.substr(7);
        } else if (arg.rfind("--model=", 0) == 0) {
            opt.model = arg.substr(8);
        } else if (arg.rfind("--replicas=", 0) == 0) {
            opt.replicas = std::stoi(arg.substr(11));
        } else if (arg.rfind("--requests=", 0) == 0) {
            opt.requests = std::stoul(arg.substr(11));
        } else if (arg.rfind("--cols=", 0) == 0) {
            opt.cols = std::stoul(arg.substr(7));
        } else if (arg == "--quick") {
            opt.quick = true;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 1;
        }
    }
    if (opt.quick)
        opt.requests = std::min<std::size_t>(opt.requests, 32);
    if (opt.replicas < 1) {
        std::cerr << "--replicas must be >= 1\n";
        return 1;
    }

    const ModelSpec spec = pickModel(opt.model);
    CompileOptions mopts;
    mopts.maxLayers = opt.quick ? 2 : 4;
    CompileOptions mopts_new = mopts;
    mopts_new.seed = mopts.seed + 1; // the hot-reload "v2" weights

    Runtime rt;
    TempDir dir;
    std::cout << "Preparing " << spec.name << " ("
              << (mopts.maxLayers ? mopts.maxLayers
                                  : spec.layers.size())
              << " layers) x2 versions, via .pncm v2 artifacts...\n";
    // Deploy the way production does: compile once, save the .pncm v2
    // artifact, serve the MMAPPED load (replicas share the pages).
    const std::string old_path = dir.file("v1.pncm");
    const std::string new_path = dir.file("v2.pncm");
    saveCompiledModel(compileModel(spec, mopts), old_path);
    saveCompiledModel(compileModel(spec, mopts_new), new_path);
    const CompiledModel model = loadCompiledModel(old_path);
    const CompiledModel new_model = loadCompiledModel(new_path);
    const std::size_t mapped_bytes = model.mappedBytes();
    std::cout << "  serving "
              << (mapped_bytes > 0 ? "mmapped (zero-copy)" : "copied")
              << " artifact, " << opt.replicas << " replicas\n";

    // Fixed input pool; solo runs are the parity reference and digest.
    const std::vector<MatrixF> pool =
        makeInputPool(model, opt.cols, 8);
    const std::vector<MatrixF> solo = soloRun(rt, model, pool);
    const std::vector<MatrixF> solo_new =
        soloRun(rt, new_model, pool);
    const std::uint64_t digest = outputDigest(solo);

    // --- Capacity: closed-loop, everything pre-queued, generous
    // bounds so nothing sheds - the denominator for the load factors.
    double capacity_rps = 0.0;
    {
        // Same engine depth and batch window as the load points - the
        // knobs that set service rate - with a queue wide enough to
        // hold the whole run, so the measured capacity is the rate the
        // open-loop points can actually sustain.
        FleetOptions fopts = loadPointFleetOptions(opt.replicas);
        fopts.queueCapColumns =
            static_cast<int>(opt.requests * opt.cols + opt.cols);
        Fleet fleet = rt.createFleet(fopts);
        fleet.deploy(model);
        std::vector<std::future<FleetResult>> futs;
        futs.reserve(opt.requests);
        const auto t0 = nowTick();
        for (std::size_t r = 0; r < opt.requests; ++r)
            futs.push_back(fleet.submit(
                spec.name, MatrixF(pool[r % pool.size()])));
        fleet.drain();
        const double wall_ms = msSince(t0);
        std::uint64_t done = 0;
        bool parity = true;
        for (std::size_t r = 0; r < opt.requests; ++r) {
            const FleetResult res = futs[r].get();
            if (res.outcome == FleetOutcome::Completed) {
                ++done;
                parity = parity && (res.result.output ==
                                    solo[r % solo.size()]);
            }
        }
        if (done != opt.requests || !parity) {
            std::cerr << "capacity leg lost or corrupted requests ("
                      << done << "/" << opt.requests << ", parity "
                      << parity << ")\n";
            return 1;
        }
        capacity_rps =
            static_cast<double>(opt.requests) / (wall_ms / 1.0e3);
        std::cout << "  measured capacity: " << capacity_rps
                  << " req/s closed-loop (" << opt.requests
                  << " requests, " << wall_ms << " ms)\n";
    }

    // --- Open-loop Poisson load points.
    const std::vector<double> factors = {0.5, 1.0, 2.0};
    std::vector<LoadPoint> points;
    bool all_parity = true;
    std::uint64_t total_lost = 0;
    for (double f : factors) {
        points.push_back(runLoadPoint(rt, model, pool, solo, f,
                                      capacity_rps, opt.requests,
                                      opt.replicas));
        all_parity = all_parity && points.back().parity;
        total_lost += points.back().lost;
    }

    Table t({"load", "rate r/s", "goodput r/s", "GMAC/s", "shed %",
             "p50 ms", "p99 ms", "lost", "bit-exact"});
    for (const LoadPoint &lp : points) {
        char label[32];
        std::snprintf(label, sizeof(label), "%.1fx", lp.factor);
        t.newRow()
            .cell(label)
            .cell(lp.rateReqPerS, 1)
            .cell(lp.goodputReqPerS, 1)
            .cell(lp.gmacs, 3)
            .cell(100.0 * lp.shedRate, 1)
            .cell(lp.p50Ms, 2)
            .cell(lp.p99Ms, 2)
            .cell(static_cast<double>(lp.lost), 0)
            .cell(lp.parity ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "\nshed % is typed FleetOutcome::Rejected - bounded "
                 "p99 under overload instead of unbounded queueing; "
                 "lost must be 0 (every submission got exactly one "
                 "terminal result).\n";

    // --- Hot-reload under 1x traffic.
    const ReloadLeg leg = runReloadLeg(
        rt, model, new_model, pool, solo, solo_new, capacity_rps,
        opt.requests, opt.replicas);
    all_parity = all_parity && leg.parity && leg.monotone;
    total_lost += leg.lost;
    std::cout << "\nhot-reload @1x: " << leg.completed << "/"
              << leg.submitted << " completed (" << leg.preSwap
              << " old + " << leg.postSwap << " new version), "
              << leg.rejected << " shed, " << leg.lost << " lost, "
              << (leg.monotone ? "monotone" : "NON-MONOTONE")
              << " version boundary, "
              << (leg.parity ? "bit-exact per version"
                             : "PARITY FAILURE")
              << "\n";

    if (opt.writeJson) {
        std::ofstream out(opt.jsonPath);
        if (!out) {
            std::cerr << "cannot write " << opt.jsonPath << "\n";
            return 1;
        }
        char digest_hex[17];
        std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                      static_cast<unsigned long long>(digest));
        out << "{\n  \"bench\": \"fleet\",\n";
        out << "  \"model\": \"" << spec.name << "\",\n";
        out << "  \"replicas\": " << opt.replicas << ",\n";
        out << "  \"layers\": " << model.layerCount() << ",\n";
        out << "  \"requests_per_point\": " << opt.requests << ",\n";
        out << "  \"cols_per_request\": " << opt.cols << ",\n";
        out << "  \"macs_per_column\": " << model.macsPerColumn()
            << ",\n";
        out << "  \"mapped_bytes\": " << mapped_bytes << ",\n";
        out << "  \"queue_cap_columns\": "
            << loadPointFleetOptions(opt.replicas).queueCapColumns
            << ",\n";
        out << "  \"engine_depth_columns\": "
            << loadPointFleetOptions(opt.replicas).engineDepthColumns
            << ",\n";
        out << "  \"capacity_req_per_s\": " << capacity_rps << ",\n";
        out << "  \"arrival_seed\": \"0xf1ee\",\n";
        out << "  \"output_digest\": \"" << digest_hex << "\",\n";
        out << "  \"isa\": \"" << toString(activeIsaLevel()) << "\",\n";
        out << "  \"pool_threads\": " << parallelThreads() << ",\n";
        out << "  \"parity\": " << (all_parity ? "true" : "false")
            << ",\n";
        out << "  \"lost\": " << total_lost << ",\n";
        out << "  \"load_points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const LoadPoint &lp = points[i];
            out << "    {\"factor\": " << lp.factor
                << ", \"rate_req_per_s\": " << lp.rateReqPerS
                << ", \"wall_ms\": " << lp.wallMs
                << ", \"submitted\": " << lp.submitted
                << ", \"completed\": " << lp.completed
                << ", \"rejected\": " << lp.rejected
                << ", \"lost\": " << lp.lost
                << ", \"redispatched\": " << lp.redispatched
                << ",\n     \"goodput_req_per_s\": "
                << lp.goodputReqPerS
                << ", \"shed_rate\": " << lp.shedRate
                << ", \"gmacs\": " << lp.gmacs
                << ", \"p50_ms\": " << lp.p50Ms
                << ", \"p99_ms\": " << lp.p99Ms << ", \"parity\": "
                << (lp.parity ? "true" : "false") << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        out << "  \"hot_reload\": {\"rate_req_per_s\": "
            << leg.rateReqPerS << ", \"submitted\": " << leg.submitted
            << ", \"completed\": " << leg.completed
            << ", \"rejected\": " << leg.rejected
            << ", \"lost\": " << leg.lost
            << ", \"pre_swap\": " << leg.preSwap
            << ", \"post_swap\": " << leg.postSwap
            << ", \"monotone\": " << (leg.monotone ? "true" : "false")
            << ", \"parity\": " << (leg.parity ? "true" : "false")
            << "}\n";
        out << "}\n";
        std::cout << "wrote " << opt.jsonPath << "\n";
    }
    return (all_parity && total_lost == 0) ? 0 : 1;
}
