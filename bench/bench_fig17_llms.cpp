/**
 * @file
 * Reproduces paper Fig. 17: energy efficiency and perplexity on the
 * LLM benchmarks (OPT-350M / 1.3B / 2.7B, Llama-3.2-1B / 3B,
 * WikiText-2-class workloads).
 *
 * Perplexity is the fidelity proxy of DESIGN.md §2 anchored at each
 * model's FP16 perplexity. Sensitivity-critical Llama down-projection
 * inputs use three bit-slices (12-bit) on both bit-slice designs, as in
 * the paper.
 */

#include <iostream>

#include "bench_common.h"
#include "models/accuracy_proxy.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace panacea;
using namespace panacea::bench;

int
main()
{
    for (const ModelSpec &spec : {opt350m(), opt1_3b(), opt2_7b(),
                                  llama32_1b(), llama32_3b()}) {
        ModelBuild build = buildModel(spec, benchBuildOptions());
        DesignResults r = runAllDesigns(build);

        printBanner(std::cout,
                    "Fig. 17: " + spec.name + "  (FP16 PPL anchor " +
                        std::to_string(spec.fp16Ppl) + ")");

        const double w_nmse = build.meanWeightNmse();
        const double ppl_sym = proxyPerplexity(
            spec.fp16Ppl, build.meanNmseSym() + w_nmse);
        const double ppl_asym = proxyPerplexity(
            spec.fp16Ppl, build.meanNmseAsym() + w_nmse);
        const double panacea_eff = r.panacea.topsPerWatt();

        Table t({"design", "TOPS", "TOPS/W", "Panacea eff. advantage",
                 "PPL (proxy)"});
        struct Row
        {
            const PerfResult *res;
            double ppl;
        };
        const Row rows[] = {
            {&r.saWs, ppl_sym},   {&r.saOs, ppl_sym},
            {&r.simd, ppl_sym},   {&r.sibia, ppl_sym},
            {&r.panacea, ppl_asym},
        };
        for (const Row &row : rows) {
            t.newRow()
                .cell(row.res->accelerator)
                .cell(row.res->tops(), 3)
                .cell(row.res->topsPerWatt(), 3)
                .ratioCell(panacea_eff / row.res->topsPerWatt())
                .cell(row.ppl, 2);
        }
        t.print(std::cout);
    }

    std::cout
        << "\nShape checks (paper Fig. 17 / §I): Panacea vs Sibia "
           "energy-efficiency advantage grows with OPT size (1.57x / "
           "1.97x / 1.96x for 350M / 1.3B / 2.7B in the paper; "
           "headline: 1.97x and 1.88x throughput on OPT-2.7B, 3.26x / "
           "2.41x vs SIMD); Llama-3.2 keeps the lead under mixed "
           "precision (1.47x vs Sibia on 3B); Panacea's PPL tracks "
           "FP16 thanks to asymmetric activations.\n";
    return 0;
}
