/**
 * @file
 * Reproduces paper Fig. 18: decoupling the benefits of asymmetric
 * quantization from those of the AQS-GEMM, on OPT-2.7B.
 *
 * (a) Panacea running asymmetric vs symmetric activation quantization
 *     (zero point pinned mid-range): asymmetric wins perplexity while
 *     ZPM+DBS keep efficiency nearly equal.
 * (b) AQS-GEMM (skips zero AND r-valued slices, with compensation) vs
 *     skipping only zero slices: the paper reports 1.67x energy
 *     efficiency and 2.10x throughput, at identical PPL because both
 *     produce exact results.
 */

#include <iostream>

#include "bench_common.h"
#include "models/accuracy_proxy.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace panacea;
using namespace panacea::bench;

int
main()
{
    ModelSpec opt = opt2_7b();

    printBanner(std::cout,
                "Fig. 18(a): asymmetric vs symmetric quantization on "
                "Panacea (OPT-2.7B)");
    {
        ModelBuildOptions asym_opt = benchBuildOptions();
        ModelBuildOptions sym_opt = asym_opt;
        sym_opt.symmetricActs = true;

        ModelBuild asym = buildModel(opt, asym_opt);
        ModelBuild sym = buildModel(opt, sym_opt);

        PanaceaSimulator sim(defaultPanaceaConfig());
        PerfResult r_asym =
            sim.runAll(asym.panaceaWorkloads(), "asym");
        PerfResult r_sym = sim.runAll(sym.panaceaWorkloads(), "sym");

        double w = asym.meanWeightNmse();
        Table t({"quantization", "TOPS", "TOPS/W", "PPL (proxy)"});
        t.newRow()
            .cell("symmetric (zp=128)")
            .cell(r_sym.tops(), 3)
            .cell(r_sym.topsPerWatt(), 3)
            .cell(proxyPerplexity(opt.fp16Ppl,
                                  sym.meanNmseAsym() + w), 2);
        t.newRow()
            .cell("asymmetric")
            .cell(r_asym.tops(), 3)
            .cell(r_asym.topsPerWatt(), 3)
            .cell(proxyPerplexity(opt.fp16Ppl,
                                  asym.meanNmseAsym() + w), 2);
        t.print(std::cout);
        std::cout << "(paper: asymmetric lowers PPL while ZPM/DBS keep "
                     "efficiency nearly equal)\n";
    }

    printBanner(std::cout,
                "Fig. 18(b): AQS-GEMM (skip zero + r-valued) vs "
                "zero-only skipping on Panacea (OPT-2.7B)");
    {
        ModelBuildOptions full_opt = benchBuildOptions();
        ModelBuildOptions zero_opt = full_opt;
        zero_opt.actSkip = ActSkipMode::ZeroOnly;

        ModelBuild full = buildModel(opt, full_opt);
        ModelBuild zero = buildModel(opt, zero_opt);

        PanaceaConfig cfg = defaultPanaceaConfig();
        PanaceaConfig zero_cfg = cfg;
        zero_cfg.actSkip = ActSkipMode::ZeroOnly;

        PerfResult r_full = PanaceaSimulator(cfg).runAll(
            full.panaceaWorkloads(), "skip-both");
        PerfResult r_zero = PanaceaSimulator(zero_cfg).runAll(
            zero.panaceaWorkloads(), "zero-only");

        Table t({"skip mode", "TOPS", "TOPS/W", "PPL (proxy)"});
        double w = full.meanWeightNmse();
        double ppl = proxyPerplexity(opt.fp16Ppl,
                                     full.meanNmseAsym() + w);
        t.newRow()
            .cell("zero slices only")
            .cell(r_zero.tops(), 3)
            .cell(r_zero.topsPerWatt(), 3)
            .cell(ppl, 2);
        t.newRow()
            .cell("AQS-GEMM (zero + r-valued)")
            .cell(r_full.tops(), 3)
            .cell(r_full.topsPerWatt(), 3)
            .cell(ppl, 2);
        t.print(std::cout);
        std::cout << "gains: "
                  << r_full.topsPerWatt() / r_zero.topsPerWatt()
                  << "x energy efficiency, "
                  << r_full.tops() / r_zero.tops()
                  << "x throughput  (paper: 1.67x and 2.10x; identical "
                     "PPL because both are exact)\n";
    }
    return 0;
}
