/**
 * @file
 * Reproduces paper Fig. 20: ASIC-level comparison of the recent
 * bit-slice accelerators (Sibia, LUTein, Panacea).
 *
 * Substitution (DESIGN.md §2): the paper shows a 28 nm FD-SOI layout;
 * here the comparison table is regenerated from the area model plus the
 * measured GPT-2 efficiency of the simulators. Only relative numbers
 * are meaningful.
 */

#include <iostream>

#include "bench_common.h"
#include "models/model_zoo.h"
#include "sim/area_model.h"
#include "util/table.h"

using namespace panacea;
using namespace panacea::bench;

int
main()
{
    // Module inventories (model-level) of the three designs, normalized
    // to the paper's comparison: Panacea carries 2x the multipliers of
    // Sibia/LUTein-class cores plus the AQS machinery.
    AreaInputs sibia_in;
    sibia_in.multipliers = 1536;
    sibia_in.adders = 1536;
    sibia_in.shifters = 16;
    sibia_in.sramBytes = 190 * 1024;
    sibia_in.bufferBytes = 12 * 1024;
    sibia_in.decoders = 16;
    sibia_in.schedulers = 16;

    AreaInputs lutein_in = sibia_in;
    lutein_in.multipliers = 1536;
    lutein_in.bufferBytes = 20 * 1024;  // radix-4 LUT slice tensors

    AreaInputs panacea_in;
    panacea_in.multipliers = 3072;
    panacea_in.adders = 3072 + 16 * 2 * 4;  // + CS small S-ACCs
    panacea_in.shifters = 16 * 4;           // DBS-wide S-ACCs
    panacea_in.sramBytes = 192 * 1024;
    panacea_in.bufferBytes = 28 * 1024;     // DTP-doubled WBUF/psum
    panacea_in.decoders = 16;
    panacea_in.schedulers = 16;

    // Measured efficiency on the shared GPT-2 workload.
    ModelBuild gpt = buildModel(gpt2(), benchBuildOptions());
    DesignResults r = runAllDesigns(gpt);

    printBanner(std::cout,
                "Fig. 20: ASIC-level comparison (28 nm-class model)");
    Table t({"design", "technology", "multipliers (4b eq.)",
             "SRAM (KB)", "core area (mm^2, model)", "GPT-2 TOPS",
             "GPT-2 TOPS/W", "asym. quant support"});
    t.newRow()
        .cell("Sibia [HPCA'23]")
        .cell("28nm")
        .cell(std::int64_t{1536})
        .cell(std::int64_t{190})
        .cell(estimateAreaMm2(sibia_in), 2)
        .cell(r.sibia.tops(), 3)
        .cell(r.sibia.topsPerWatt(), 3)
        .cell("no (symmetric only)");
    t.newRow()
        .cell("LUTein [HPCA'24]")
        .cell("28nm")
        .cell(std::int64_t{1536})
        .cell(std::int64_t{190})
        .cell(estimateAreaMm2(lutein_in), 2)
        .cell("n/a (LUT-based)")
        .cell("n/a")
        .cell("no");
    t.newRow()
        .cell("Panacea (this work)")
        .cell("28nm FD-SOI")
        .cell(std::int64_t{3072})
        .cell(std::int64_t{192})
        .cell(estimateAreaMm2(panacea_in), 2)
        .cell(r.panacea.tops(), 3)
        .cell(r.panacea.topsPerWatt(), 3)
        .cell("YES (AQS-GEMM + ZPM + DBS)");
    t.print(std::cout);

    double area_ratio = estimateAreaMm2(panacea_in) /
                        estimateAreaMm2(sibia_in);
    std::cout << "\nPanacea area vs Sibia-class core: " << area_ratio
              << "x for 2x multipliers (paper: 'a small overhead in "
                 "terms of the core area' for 2x more multipliers plus "
                 "the proposed methods).\n";
    return 0;
}
