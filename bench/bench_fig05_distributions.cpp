/**
 * @file
 * Reproduces paper Fig. 2 and Fig. 5.
 *
 * Fig. 2-style preamble: symmetric vs asymmetric uniform quantization of
 * an asymmetric tensor (range utilization and error).
 *
 * Fig. 5(a): HO-slice value histograms of asymmetrically quantized
 * activations - the frequent non-zero slice r = HO(zp) that previous
 * bit-slice GEMMs cannot skip.
 *
 * Fig. 5(b): algorithm fidelity of dense int8 GEMM, the previous
 * bit-slice GEMM (symmetric 7-bit, Sibia-style) and the AQS-GEMM
 * (asymmetric 8-bit) on a BERT-class layer, via the quantization-
 * fidelity proxy (DESIGN.md §2) plus the bit-exactness of AQS-GEMM.
 */

#include <iostream>

#include "core/aqs_gemm.h"
#include "core/legacy_gemm.h"
#include "models/accuracy_proxy.h"
#include "models/model_workloads.h"
#include "models/model_zoo.h"
#include "models/synth_data.h"
#include "quant/calibration.h"
#include "quant/gemm_quant.h"
#include "quant/quantizer.h"
#include "slicing/slice_tensor.h"
#include "slicing/sparsity.h"
#include "util/histogram.h"
#include "util/table.h"

using namespace panacea;

int
main()
{
    Rng rng(2025);

    printBanner(std::cout, "Fig. 2: symmetric vs asymmetric quantization"
                           " of an asymmetric (post-GELU) tensor");
    MatrixF act = genActivations(rng, 256, 128, ActDistKind::PostGelu);
    QuantParams sym = chooseSymmetricParams(act.data(), 8);
    QuantParams asym = chooseAsymmetricParams(act.data(), 8);
    {
        Table t({"scheme", "scale", "zero-point", "NMSE",
                 "codes used (of 256)"});
        for (const QuantParams *p : {&sym, &asym}) {
            MatrixI32 codes = quantize(act, *p);
            Histogram h(p->codeMin(), p->codeMax());
            for (auto c : codes.data())
                h.add(c);
            std::size_t used = 0;
            for (std::int64_t v = p->codeMin(); v <= p->codeMax(); ++v)
                used += h.count(v) > 0 ? 1 : 0;
            t.newRow()
                .cell(toString(p->scheme))
                .cell(p->scale, 5)
                .cell(static_cast<std::int64_t>(p->zeroPoint))
                .cell(quantizationNmse(act, *p), 6)
                .cell(static_cast<std::int64_t>(used));
        }
        t.print(std::cout);
    }

    printBanner(std::cout, "Fig. 5(a): HO-slice histogram of the "
                           "asymmetrically quantized activation");
    {
        MatrixI32 codes = quantize(act, asym);
        SlicedMatrix sliced = activationSliceMatrix(codes, 1);
        Histogram ho(0, 15);
        for (auto s : sliced.hoPlane().data.data())
            ho.add(s);
        Table t({"HO slice", "share", "note"});
        const std::int32_t r = asym.zeroPoint >> 4;
        for (int v = 0; v <= 15; ++v) {
            double share = static_cast<double>(ho.count(v)) /
                           static_cast<double>(ho.total());
            std::string note;
            if (v == r)
                note = "<- r = HO(zp): frequent, skipped only by AQS";
            if (v == 0)
                note += (note.empty() ? "" : " ") +
                        std::string("(zero: the only slice previous "
                                    "bit-slice GEMMs skip)");
            t.newRow().cell(std::int64_t{v}).percentCell(share).cell(note);
        }
        t.print(std::cout);
    }

    printBanner(std::cout, "Fig. 5(b): fidelity of the GEMM methods on "
                           "BERT-base-class layers (proxy; lower NMSE = "
                           "higher accuracy)");
    {
        ModelBuildOptions opt;
        opt.enableDbs = false;  // isolate the quantizer comparison
        ModelBuild build = buildModel(bertBase(), opt);
        Table t({"layer", "dense int8 (sym) NMSE",
                 "prev bit-slice (sym7) NMSE", "AQS-GEMM (asym8) NMSE"});
        for (const LayerBuild &lb : build.layers) {
            // Dense designs quantize symmetrically at 8 bits.
            Rng lrng(7);
            MatrixF eval = genLayerActivations(lrng, lb.spec, 128);
            QuantParams sym8 = chooseSymmetricParams(eval.data(), 8);
            t.newRow()
                .cell(lb.spec.name)
                .cell(quantizationNmse(eval, sym8), 6)
                .cell(lb.actNmseSym, 6)
                .cell(lb.actNmseAsym, 6);
        }
        t.print(std::cout);
        std::cout << "\nproxy accuracy loss (%p, MAC-weighted): sym7="
                  << proxyAccuracyLossPct(build.meanNmseSym())
                  << "  asym8(AQS)="
                  << proxyAccuracyLossPct(build.meanNmseAsym()) << "\n";
    }

    printBanner(std::cout, "AQS-GEMM exactness spot-check (bit-identical "
                           "to the plain integer GEMM)");
    {
        MatrixF x = genActivations(rng, 64, 32, ActDistKind::PostGelu);
        QuantParams xp = chooseAsymmetricParams(x.data(), 8);
        MatrixF wf = genWeights(rng, 32, 64);
        QuantParams wp = chooseSymmetricParams(wf.data(), 7);
        MatrixI32 w_codes = quantize(wf, wp);
        MatrixI32 x_codes = quantize(x, xp);

        AqsConfig cfg;
        WeightOperand w_op = prepareWeights(w_codes, 1, cfg);
        ActivationOperand x_op =
            prepareActivations(x_codes, 1, xp.zeroPoint, cfg);
        AqsStats stats;
        MatrixI64 aqs = aqsGemm(w_op, x_op, cfg, &stats);
        MatrixI64 ref = intGemm(w_codes, x_codes);
        std::cout << "bit-exact: " << (aqs == ref ? "YES" : "NO")
                  << "   MAC reduction vs dense bit-slice: "
                  << stats.macReduction() * 100.0 << "%\n";
    }
    return 0;
}
