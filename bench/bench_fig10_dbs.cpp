/**
 * @file
 * Reproduces paper Fig. 9/10: distribution-based bit-slicing.
 *
 * Three activation widths are classified into DBS types via the
 * quantized histogram's std against the z-score of the target mass;
 * each type's slicing rule (l = 4/5/6) expands the skip range. The
 * bench reports sparsity without/with DBS, the fidelity cost of the
 * discarded LSBs, and the S-ACC shift amounts implementing each rule.
 */

#include <iostream>

#include "core/aqs_gemm.h"
#include "models/accuracy_proxy.h"
#include "models/synth_data.h"
#include "quant/calibration.h"
#include "quant/dbs.h"
#include "quant/quantizer.h"
#include "slicing/sparsity.h"
#include "util/histogram.h"
#include "util/table.h"

using namespace panacea;

namespace {

struct DbsRow
{
    double spread;
    DbsDecision decision;
    double sparsityL4;
    double sparsityDbs;
    double nmseL4;
    double nmseDbs;
};

DbsRow
evaluate(double spread, double outliers)
{
    Rng rng(static_cast<std::uint64_t>(spread * 1000) + 3);
    const std::size_t k = 512;
    const std::size_t n = 128;
    MatrixF act = genActivations(rng, k, n, ActDistKind::LayerNormGauss,
                                 spread, outliers);
    Calibrator cal(QuantScheme::Asymmetric, 8);
    cal.observe(act);
    QuantParams raw = cal.finalize();

    Histogram hist(0, 255);
    MatrixI32 raw_codes = quantize(act, raw);
    for (auto c : raw_codes.data())
        hist.add(c);

    DbsConfig cfg;
    DbsRow row;
    row.spread = spread;
    row.decision = classifyDistribution(hist, raw.zeroPoint, cfg);

    // Baseline: ZPM at l = 4 only.
    ZpmResult zpm4 = manipulateZeroPoint(raw.zeroPoint, 8, 4);
    QuantParams p4 = refitScaleForZeroPoint(raw, zpm4.zeroPoint);
    MatrixI32 c4 = quantize(act, p4);
    AqsConfig gemm_cfg;
    ActivationOperand op4 = prepareActivations(
        c4, 1, p4.zeroPoint, gemm_cfg);
    row.sparsityL4 = analyzeActivationHo(op4.sliced.hoPlane().data, 4,
                                         op4.r).sliceLevel;
    row.nmseL4 = quantizationNmse(act, p4);

    // DBS: type-based ZPM + the chosen slicing rule.
    QuantParams pd =
        refitScaleForZeroPoint(raw, row.decision.zpm.zeroPoint);
    const int l = row.decision.loBits;
    MatrixI32 cd = l > 4 ? quantizeCoarse(act, pd, l - 4)
                         : quantize(act, pd);
    ActivationOperand opd =
        l > 4 ? prepareActivationsDbs(
                    cd, l,
                    static_cast<Slice>(row.decision.zpm.frequentSlice),
                    gemm_cfg)
              : prepareActivations(cd, 1, pd.zeroPoint, gemm_cfg);
    row.sparsityDbs = analyzeActivationHo(opd.sliced.hoPlane().data, 4,
                                          opd.r).sliceLevel;
    row.nmseDbs = l > 4 ? quantizationNmseDbs(act, pd, l)
                        : quantizationNmse(act, pd);
    return row;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Fig. 9: DBS classification and type-based ZPM");
    Table t({"distribution", "std*z", "type", "l", "zp''", "r''",
             "HO slice sparsity l=4", "HO slice sparsity DBS",
             "NMSE l=4", "NMSE DBS"});

    struct Case
    {
        const char *name;
        double spread;
        double outliers;
    };
    const Case cases[] = {
        {"narrow (type-1 class)", 0.12, 0.0},
        {"medium (type-2 class)", 0.35, 0.01},
        {"wide (type-3 class)", 0.9, 0.03},
    };
    for (const Case &c : cases) {
        DbsRow row = evaluate(c.spread, c.outliers);
        t.newRow()
            .cell(c.name)
            .cell(row.decision.stdTimesZ, 1)
            .cell(toString(row.decision.type))
            .cell(static_cast<std::int64_t>(row.decision.loBits))
            .cell(static_cast<std::int64_t>(row.decision.zpm.zeroPoint))
            .cell(static_cast<std::int64_t>(
                row.decision.zpm.frequentSlice))
            .percentCell(row.sparsityL4)
            .percentCell(row.sparsityDbs)
            .cell(row.nmseL4, 6)
            .cell(row.nmseDbs, 6);
    }
    t.print(std::cout);

    printBanner(std::cout,
                "Fig. 10: slicing rules and S-ACC shifts per type");
    Table rules({"type", "l", "HO bits kept", "LO bits kept",
                 "LSBs discarded", "S-ACC shift HO", "S-ACC shift LO",
                 "skip range (codes)"});
    for (DbsType type : {DbsType::Type1, DbsType::Type2, DbsType::Type3}) {
        int l = loBitsFor(type);
        rules.newRow()
            .cell(toString(type))
            .cell(static_cast<std::int64_t>(l))
            .cell(static_cast<std::int64_t>(8 - l))
            .cell(std::int64_t{4})
            .cell(static_cast<std::int64_t>(l - 4))
            .cell(static_cast<std::int64_t>(l))
            .cell(static_cast<std::int64_t>(l - 4))
            .cell(static_cast<std::int64_t>(1 << l));
    }
    rules.print(std::cout);

    std::cout << "\nShape check: wider distributions are pushed to wider "
                 "LO slices, expanding the skip range (the paper "
                 "reports +20% average slice sparsity, >50% on some "
                 "layers, at ~0.6%p accuracy cost on DeiT-base).\n";
    return 0;
}
