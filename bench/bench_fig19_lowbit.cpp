/**
 * @file
 * Reproduces paper Fig. 19: low-bit weight quantization on OPT-2.7B.
 *
 * 7-bit (n=1) vs 4-bit (n=0, OPTQ-class) weights on Sibia and Panacea:
 * energy breakdown, latency and the perplexity proxy. With 4-bit
 * weights there is no weight HO slice, WMEM holds two tiles at once and
 * DTP engages, which is where Panacea's advantage peaks (the paper: 56%
 * of Sibia's energy, 1.9x / 3.3x lower latency at 7 / 4 bits).
 */

#include <iostream>

#include "bench_common.h"
#include "models/accuracy_proxy.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace panacea;
using namespace panacea::bench;

int
main()
{
    ModelSpec opt = opt2_7b();

    Table energy({"weights", "design", "compute (mJ)", "SRAM (mJ)",
                  "DRAM (mJ)", "total (mJ)", "latency (ms)",
                  "PPL (proxy)", "DTP enabled on"});

    for (int weight_bits : {7, 4}) {
        ModelBuildOptions bopt = benchBuildOptions();
        bopt.weightBitsOverride = weight_bits;
        ModelBuild build = buildModel(opt, bopt);

        SibiaSimulator sibia;
        PanaceaSimulator panacea(defaultPanaceaConfig());
        PerfResult r_sibia = sibia.runAll(build.sibiaWorkloads(),
                                          opt.name);
        PerfResult r_pana = panacea.runAll(build.panaceaWorkloads(),
                                           opt.name);

        // How many layers get DTP at this weight width.
        std::size_t dtp_layers = 0;
        for (const GemmWorkload &wl : build.panaceaWorkloads())
            dtp_layers += panacea.planTraffic(wl).dtpEnabled ? 1 : 0;

        double ppl = proxyPerplexity(
            opt.fp16Ppl,
            build.meanNmseAsym() + build.meanWeightNmse());

        for (const PerfResult *r : {&r_sibia, &r_pana}) {
            energy.newRow()
                .cell(std::to_string(weight_bits) + "-bit")
                .cell(r->accelerator)
                .cell(r->energy.computePJ * 1e-9, 2)
                .cell(r->energy.sramPJ * 1e-9, 2)
                .cell(r->energy.dramPJ * 1e-9, 2)
                .cell(r->totalMj(), 2)
                .cell(r->seconds() * 1e3, 3)
                .cell(ppl, 2)
                .cell(r == &r_pana
                          ? std::to_string(dtp_layers) + "/" +
                                std::to_string(
                                    build.panaceaWorkloads().size()) +
                                " layers"
                          : std::string("-"));
        }
    }

    printBanner(std::cout,
                "Fig. 19: 7-bit vs 4-bit weights on OPT-2.7B "
                "(Sibia vs Panacea)");
    energy.print(std::cout);

    std::cout
        << "\nShape checks (paper Fig. 19): 4-bit weights halve the "
           "weight footprint, WMEM fits two tiles and DTP engages on "
           "more layers; Panacea's energy falls toward ~56% of Sibia's "
           "and its latency advantage grows from ~1.9x to ~3.3x; OPTQ "
           "keeps the PPL acceptable at 4 bits.\n";
    return 0;
}
