/**
 * @file
 * Reproduces paper Table I: hardware workloads (4b x 4b multiplications,
 * additions, 4-bit EMA) of the bit-slice GEMM engines as functions of
 * the HO vector sparsities, for W in Z^{4xK} and x in Z^{Kx4} with two
 * slices per operand.
 *
 * Prints the closed forms alongside the *counted* values of the
 * functional engines (constructed with exact, decorrelated sparsities)
 * so the table is validated, not just restated. Also shows the Eq. (5)
 * vs Eq. (6) compensation columns.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "core/aqs_gemm.h"
#include "core/legacy_gemm.h"
#include "core/workload_model.h"
#include "slicing/slice_tensor.h"
#include "util/random.h"
#include "util/table.h"

using namespace panacea;

namespace {

MatrixI32
weightWithSet(Rng &rng, std::size_t k, const std::vector<bool> &set)
{
    MatrixI32 w(4, k);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t r = 0; r < 4; ++r) {
            if (set[c]) {
                w(r, c) = static_cast<std::int32_t>(rng.uniformInt(-8, 7));
            } else {
                bool neg = rng.bernoulli(0.5);
                w(r, c) = static_cast<std::int32_t>(
                    neg ? rng.uniformInt(-64, -10) : rng.uniformInt(9, 63));
            }
        }
    return w;
}

MatrixI32
activationWithSet(Rng &rng, std::size_t k, const std::vector<bool> &set,
                  std::int32_t zp)
{
    const std::int32_t r_slice = zp >> 4;
    MatrixI32 x(k, 4);
    for (std::size_t row = 0; row < k; ++row)
        for (std::size_t col = 0; col < 4; ++col) {
            if (set[row]) {
                x(row, col) =
                    (r_slice << 4) +
                    static_cast<std::int32_t>(rng.uniformInt(0, 15));
            } else {
                std::int32_t v;
                do {
                    v = static_cast<std::int32_t>(rng.uniformInt(0, 255));
                } while ((v >> 4) == r_slice);
                x(row, col) = v;
            }
        }
    return x;
}

std::vector<bool>
prefixSet(std::size_t k, double rho)
{
    std::vector<bool> set(k, false);
    auto n = static_cast<std::size_t>(std::llround(rho * k));
    for (std::size_t i = 0; i < n; ++i)
        set[i] = true;
    return set;
}

std::vector<bool>
independentSet(std::size_t k, double rho, const std::vector<bool> &other)
{
    std::size_t inside = 0;
    for (bool b : other)
        inside += b;
    auto want_in = static_cast<std::size_t>(std::llround(rho * inside));
    auto want_out =
        static_cast<std::size_t>(std::llround(rho * (k - inside)));
    std::vector<bool> set(k, false);
    std::size_t got_in = 0;
    std::size_t got_out = 0;
    for (std::size_t i = 0; i < k; ++i) {
        if (other[i] && got_in < want_in) {
            set[i] = true;
            ++got_in;
        } else if (!other[i] && got_out < want_out) {
            set[i] = true;
            ++got_out;
        }
    }
    return set;
}

} // namespace

int
main()
{
    const std::size_t k = 400;
    const std::int32_t zp = 136;

    printBanner(std::cout, "Table I: bit-slice GEMM hardware workloads"
                           " (W 4xK, x Kx4, K=400, two slices each)");

    Table table({"rho_w", "rho_x", "Sibia Mul", "Sibia EMA(nib)",
                 "Pana Mul(cnt)", "Pana Mul(form)", "Pana Add(+CS eq6)",
                 "CS Mul", "CS Add eq5", "CS Add eq6", "Pana EMA(nib)",
                 "EMA form"});

    for (double rho_w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        for (double rho_x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            Rng rng(static_cast<std::uint64_t>(rho_w * 100) * 101 +
                    static_cast<std::uint64_t>(rho_x * 100));
            std::vector<bool> w_set = prefixSet(k, rho_w);
            std::vector<bool> x_set = independentSet(k, rho_x, w_set);
            MatrixI32 w = weightWithSet(rng, k, w_set);
            MatrixI32 x = activationWithSet(rng, k, x_set, zp);

            AqsConfig cfg;
            cfg.rleIndexBits = 16;  // Table I idealizes the skip budget
            WeightOperand w_op = prepareWeights(w, 1, cfg);
            ActivationOperand x_op = prepareActivations(x, 1, zp, cfg);
            AqsStats stats;
            (void)aqsGemm(w_op, x_op, cfg, &stats);

            AqsConfig cfg5 = cfg;
            cfg5.useEq6 = false;
            AqsStats stats5;
            (void)aqsGemm(w_op, x_op, cfg5, &stats5);

            WorkloadCounts sib = sibiaWorkload(k, rho_w, rho_x);
            WorkloadCounts bs = panaceaBitsliceWorkload(k, rho_w, rho_x);

            table.newRow()
                .cell(rho_w, 2)
                .cell(rho_x, 2)
                .cell(sib.mults, 0)
                .cell(sib.emaNibbles, 0)
                .cell(static_cast<std::int64_t>(stats.mults))
                .cell(bs.mults, 0)
                .cell(static_cast<std::int64_t>(stats.totalAdds()))
                .cell(static_cast<std::int64_t>(stats.compMults))
                .cell(static_cast<std::int64_t>(stats5.compAdds))
                .cell(static_cast<std::int64_t>(stats.compAdds))
                .cell(static_cast<std::int64_t>(stats.wNibbles +
                                                stats.xNibbles))
                .cell(bs.emaNibbles, 0);
        }
    }
    table.print(std::cout);

    printBanner(std::cout,
                "Closed-form check: Eq.(5) vs Eq.(6) compensation");
    Table comp({"rho_x", "Add eq5 (8K*rho)", "Add eq6 (8K*(1-rho))",
                "extra EMA eq5", "extra EMA eq6"});
    for (double rho_x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        WorkloadCounts c5 = compensationWorkload(k, rho_x, false);
        WorkloadCounts c6 = compensationWorkload(k, rho_x, true);
        comp.newRow()
            .cell(rho_x, 2)
            .cell(c5.adds, 0)
            .cell(c6.adds, 0)
            .cell(c5.emaNibbles, 0)
            .cell(c6.emaNibbles, 0);
    }
    comp.print(std::cout);

    std::cout << "\nPaper shape check: Panacea exploits both sparsities "
                 "multiplicatively (16K(2-rx)(2-rw)) while Sibia only "
                 "max(rho) (32K(2-max)); Eq.(6) removes the Eq.(5) "
                 "compensation EMA entirely.\n";
    return 0;
}
