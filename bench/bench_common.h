/**
 * @file
 * Shared bench-harness helpers: run every normalized design on a built
 * model, print comparison rows, and provide the standard configurations
 * of paper §IV.
 */

#ifndef PANACEA_BENCH_BENCH_COMMON_H
#define PANACEA_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "arch/panacea_sim.h"
#include "baselines/sibia.h"
#include "baselines/simd.h"
#include "baselines/systolic.h"
#include "models/model_workloads.h"
#include "util/table.h"

namespace panacea {
namespace bench {

/** Results of all five designs on one workload set. */
struct DesignResults
{
    PerfResult saWs;
    PerfResult saOs;
    PerfResult simd;
    PerfResult sibia;
    PerfResult panacea;
};

/** The paper's default Panacea configuration (4 DWOs, 8 SWOs, DTP). */
PanaceaConfig defaultPanaceaConfig();

/** Run all five designs on a built model. */
DesignResults runAllDesigns(const ModelBuild &build,
                            const PanaceaConfig &panacea_cfg);

/** Run all five designs with the default Panacea configuration. */
DesignResults runAllDesigns(const ModelBuild &build);

/**
 * Append one row per design to a comparison table:
 * name | TOPS | TOPS/W | rel. energy-eff vs Panacea.
 */
void addComparisonRows(Table &table, const DesignResults &results);

/** @return seq length override from PANACEA_BENCH_SEQ (0 = default). */
std::size_t seqOverrideFromEnv();

/** Standard build options for benches (applies the env override). */
ModelBuildOptions benchBuildOptions();

} // namespace bench
} // namespace panacea

#endif // PANACEA_BENCH_BENCH_COMMON_H
