/**
 * @file
 * Reproduces paper Fig. 13: Panacea throughput across HO vector
 * sparsities for different design options, against SA-WS, SA-OS and
 * SIMD.
 *
 * (a) 4 DWOs + 8 SWOs per PEA, (b) 8 DWOs + 4 SWOs; each with DTP
 * on/off, for a small and a large weight/activation size. Throughput is
 * normalized to SIMD (dense) so the crossovers are directly visible.
 */

#include <iostream>

#include "arch/panacea_sim.h"
#include "baselines/simd.h"
#include "baselines/systolic.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/table.h"

using namespace panacea;

namespace {

void
sweepFor(std::size_t m, std::size_t k, std::size_t n, int dwos, int swos,
         CsvWriter &csv)
{
    printBanner(std::cout,
                "Fig. 13 sweep: " + std::to_string(dwos) + " DWOs + " +
                    std::to_string(swos) + " SWOs, W " +
                    std::to_string(m) + "x" + std::to_string(k) +
                    ", x " + std::to_string(k) + "x" +
                    std::to_string(n));

    SystolicSimulator sa_ws(SystolicDataflow::WeightStationary);
    SystolicSimulator sa_os(SystolicDataflow::OutputStationary);
    SimdSimulator simd;

    PanaceaConfig base;
    base.dwosPerPea = dwos;
    base.swosPerPea = swos;

    Table t({"rho(w=x)", "SA-WS", "SA-OS", "SIMD", "Panacea",
             "Panacea+DTP", "DTP gain"});

    for (double rho : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                       0.9, 0.95}) {
        Rng rng(static_cast<std::uint64_t>(rho * 1000) + m);
        GemmWorkload wl = GemmWorkload::synthetic(
            "sweep", m, k, n, rho, rho, 4, rng);

        double simd_tops = simd.run(wl).tops();
        PanaceaConfig no_dtp = base;
        no_dtp.enableDtp = false;
        PanaceaConfig dtp = base;
        dtp.enableDtp = true;

        double p0 = PanaceaSimulator(no_dtp).run(wl).tops();
        double p1 = PanaceaSimulator(dtp).run(wl).tops();

        const double ws = sa_ws.run(wl).tops() / simd_tops;
        const double os = sa_os.run(wl).tops() / simd_tops;
        t.newRow()
            .cell(rho, 2)
            .cell(ws, 3)
            .cell(os, 3)
            .cell(1.0, 3)
            .cell(p0 / simd_tops, 3)
            .cell(p1 / simd_tops, 3)
            .ratioCell(p1 / p0);
        csv.writeRow({std::to_string(m), std::to_string(dwos),
                      std::to_string(swos), std::to_string(rho),
                      std::to_string(ws), std::to_string(os),
                      std::to_string(p0 / simd_tops),
                      std::to_string(p1 / simd_tops)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    // Machine-readable series alongside the console tables.
    CsvWriter csv("fig13_throughput.csv",
                  {"size", "dwos", "swos", "rho", "sa_ws_rel",
                   "sa_os_rel", "panacea_rel", "panacea_dtp_rel"});

    // (a) the paper's shipping configuration.
    sweepFor(512, 512, 256, 4, 8, csv);    // small tensors
    sweepFor(2048, 2048, 256, 4, 8, csv);  // large tensors
    // (b) the DWO-heavy alternative.
    sweepFor(512, 512, 256, 8, 4, csv);
    sweepFor(2048, 2048, 256, 8, 4, csv);
    std::cout << "\nseries written to fig13_throughput.csv\n";

    std::cout
        << "\nShape checks (paper Fig. 13): at low sparsity Panacea "
           "(4D8S) trails SIMD (dynamic products bottleneck on 4 DWOs); "
           "at high sparsity it reaches ~3x SIMD-class speedups; 8D4S "
           "narrows the dense gap but saturates earlier (SWO-bound) "
           "until DTP reroutes second-tile static work; larger tensors "
           "benefit more because compression cuts the memory-bound "
           "phases.\n";
    return 0;
}
