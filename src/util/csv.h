/**
 * @file
 * Minimal CSV writer so bench harnesses can dump machine-readable series
 * alongside the human-readable tables.
 */

#ifndef PANACEA_UTIL_CSV_H
#define PANACEA_UTIL_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace panacea {

/**
 * Streams rows to a CSV file. The writer escapes commas and quotes per
 * RFC 4180 and flushes on destruction.
 */
class CsvWriter
{
  public:
    /** Open (truncate) the file and write the header row. */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /** Write a row of pre-formatted cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** @return whether the underlying stream is healthy. */
    bool good() const { return out_.good(); }

  private:
    static std::string escape(const std::string &cell);

    std::ofstream out_;
    std::size_t columns_;
};

} // namespace panacea

#endif // PANACEA_UTIL_CSV_H
