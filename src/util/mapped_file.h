/**
 * @file
 * Read-only memory-mapped file, the zero-copy backing of the compiled
 * model load path (serve/model_serialize.h, format v2).
 *
 * The mapping is PROT_READ + MAP_SHARED: every process mapping the
 * same .pncm shares one set of physical pages through the page cache,
 * which is what makes replica spin-up near-free - the bytes are read
 * from disk (at most) once per machine, not once per process, and a
 * warm second load touches no disk at all.
 *
 * SIGBUS discipline: touching a mapped page whose backing file has
 * been truncated underneath the mapping raises SIGBUS. The loader
 * therefore snapshots size() at open time, validates the envelope and
 * full-file checksum against that snapshot BEFORE handing out any
 * views, and never re-stats the file. A file replaced via the
 * rename-into-place protocol (saveServedModel) keeps the old inode
 * alive for existing mappings, so post-validation truncation is not a
 * concern on the cache-dir paths this backs.
 *
 * On platforms without mmap (non-POSIX), open() returns nullptr and
 * callers fall through to the copying load path - behaviour degrades
 * in speed only, never in correctness.
 */

#ifndef PANACEA_UTIL_MAPPED_FILE_H
#define PANACEA_UTIL_MAPPED_FILE_H

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace panacea {

/**
 * RAII read-only shared mapping of a whole file.
 *
 * Returned as shared_ptr so operand views can keep the mapping alive
 * via the owning model's payload-owner handle.
 */
class MappedFile
{
  public:
    /**
     * Map `path` read-only (MAP_SHARED).
     *
     * @return the mapping, or nullptr when the file cannot be opened,
     *         is empty, or the platform has no mmap. Callers must
     *         treat nullptr as "use the copying path", not an error.
     */
    static std::shared_ptr<MappedFile> open(const std::string &path);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** @return start of the mapped bytes. */
    const std::byte *data() const { return data_; }
    /** @return mapped length in bytes (the open-time file size). */
    std::size_t size() const { return size_; }
    /** @return the whole mapping as a span. */
    std::span<const std::byte>
    bytes() const
    {
        return {data_, size_};
    }

  private:
    MappedFile(const std::byte *data, std::size_t size)
        : data_(data), size_(size)
    {}

    const std::byte *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace panacea

#endif // PANACEA_UTIL_MAPPED_FILE_H
