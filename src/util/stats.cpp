#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace panacea {

namespace {

template <typename T>
SampleStats
computeStatsImpl(std::span<const T> values)
{
    SampleStats s;
    s.count = values.size();
    if (values.empty())
        return s;

    double sum = 0.0;
    double sum_sq = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (T v : values) {
        double d = static_cast<double>(v);
        sum += d;
        sum_sq += d * d;
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    s.min = lo;
    s.max = hi;
    s.mean = sum / static_cast<double>(s.count);
    double var = sum_sq / static_cast<double>(s.count) - s.mean * s.mean;
    s.stddev = std::sqrt(std::max(0.0, var));
    return s;
}

} // namespace

SampleStats
computeStats(std::span<const float> values)
{
    return computeStatsImpl(values);
}

SampleStats
computeStats(std::span<const std::int32_t> values)
{
    return computeStatsImpl(values);
}

double
percentile(std::span<const float> values, double q)
{
    panic_if(values.empty(), "percentile of empty sample");
    panic_if(q < 0.0 || q > 100.0, "percentile q=", q, " out of [0,100]");

    std::vector<float> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());

    double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double
meanSquaredError(std::span<const float> a, std::span<const float> b)
{
    panic_if(a.size() != b.size(), "MSE size mismatch ", a.size(), " vs ",
             b.size());
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

double
sqnrDb(std::span<const float> signal, std::span<const float> reconstruction)
{
    panic_if(signal.size() != reconstruction.size(),
             "SQNR size mismatch ", signal.size(), " vs ",
             reconstruction.size());
    double power = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        double s = signal[i];
        double e = s - static_cast<double>(reconstruction[i]);
        power += s * s;
        noise += e * e;
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(power / noise);
}

} // namespace panacea
