/**
 * @file
 * Minimal dense row-major matrix container used throughout the library.
 *
 * This is intentionally a plain container: all numerics (quantization,
 * slicing, GEMM) live in their own modules and operate on Matrix views.
 */

#ifndef PANACEA_UTIL_MATRIX_H
#define PANACEA_UTIL_MATRIX_H

#include <cstddef>
#include <span>
#include <vector>

#include "util/logging.h"

namespace panacea {

/**
 * Dense row-major matrix of element type T.
 *
 * Indexing is (row, col); data() exposes the contiguous storage for
 * kernels that want raw spans.
 */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix, value-initialized. */
    Matrix(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    /** @return number of rows. */
    std::size_t rows() const { return rows_; }
    /** @return number of columns. */
    std::size_t cols() const { return cols_; }
    /** @return total number of elements. */
    std::size_t size() const { return data_.size(); }
    /** @return whether the matrix holds no elements. */
    bool empty() const { return data_.empty(); }

    /** Element access (unchecked in release builds). */
    T &
    operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Bounds-checked element access; panics when out of range. */
    T &
    at(std::size_t r, std::size_t c)
    {
        panic_if(r >= rows_ || c >= cols_,
                 "Matrix::at(", r, ",", c, ") out of ", rows_, "x", cols_);
        return (*this)(r, c);
    }

    /** Const bounds-checked element access. */
    const T &
    at(std::size_t r, std::size_t c) const
    {
        panic_if(r >= rows_ || c >= cols_,
                 "Matrix::at(", r, ",", c, ") out of ", rows_, "x", cols_);
        return (*this)(r, c);
    }

    /** @return span over one row. */
    std::span<T>
    row(std::size_t r)
    {
        return {data_.data() + r * cols_, cols_};
    }

    /** @return const span over one row. */
    std::span<const T>
    row(std::size_t r) const
    {
        return {data_.data() + r * cols_, cols_};
    }

    /** @return span over the whole storage. */
    std::span<T> data() { return {data_.data(), data_.size()}; }
    /** @return const span over the whole storage. */
    std::span<const T> data() const { return {data_.data(), data_.size()}; }

    /** Fill every element with the given value. */
    void
    fill(T value)
    {
        std::fill(data_.begin(), data_.end(), value);
    }

    /** Exact element-wise equality. */
    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

/** Convenience aliases for the element types used in this repo. */
using MatrixF = Matrix<float>;
using MatrixI32 = Matrix<std::int32_t>;
using MatrixI64 = Matrix<std::int64_t>;
using MatrixI16 = Matrix<std::int16_t>;
using MatrixI8 = Matrix<std::int8_t>;
using MatrixU8 = Matrix<std::uint8_t>;

} // namespace panacea

#endif // PANACEA_UTIL_MATRIX_H
