/**
 * @file
 * Minimal dense row-major matrix container used throughout the library.
 *
 * This is intentionally a plain container: all numerics (quantization,
 * slicing, GEMM) live in their own modules and operate on Matrix views.
 *
 * A Matrix either OWNS its storage (the default; every constructor
 * below) or is a non-owning VIEW over memory kept alive elsewhere
 * (fromView - the zero-copy compiled-model load path, where element
 * data stays inside an mmap'ed file). Views are read-only: the
 * mutating accessors panic on a view rather than corrupt a shared
 * read-only mapping.
 */

#ifndef PANACEA_UTIL_MATRIX_H
#define PANACEA_UTIL_MATRIX_H

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "util/logging.h"

namespace panacea {

/**
 * Dense row-major matrix of element type T.
 *
 * Indexing is (row, col); data() exposes the contiguous storage for
 * kernels that want raw spans.
 */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix, value-initialized. */
    Matrix(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    /**
     * Non-owning read-only view of rows x cols elements at `elements`
     * (row-major, contiguous). The caller keeps the memory alive for
     * the view's lifetime - the compiled-model loader parks the
     * backing mapping in the owning ServedModel.
     */
    static Matrix
    fromView(const T *elements, std::size_t rows, std::size_t cols)
    {
        Matrix m;
        m.rows_ = rows;
        m.cols_ = cols;
        m.view_ = elements;
        return m;
    }

    /** @return number of rows. */
    std::size_t rows() const { return rows_; }
    /** @return number of columns. */
    std::size_t cols() const { return cols_; }
    /** @return total number of elements. */
    std::size_t size() const { return rows_ * cols_; }
    /** @return whether the matrix holds no elements. */
    bool empty() const { return size() == 0; }
    /** @return whether this is a non-owning read-only view. */
    bool isView() const { return view_ != nullptr; }

    /** Element access (unchecked in release builds). */
    T &
    operator()(std::size_t r, std::size_t c)
    {
        return mutableBase()[r * cols_ + c];
    }

    /** Const element access. */
    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        return base()[r * cols_ + c];
    }

    /** Bounds-checked element access; panics when out of range. */
    T &
    at(std::size_t r, std::size_t c)
    {
        panic_if(r >= rows_ || c >= cols_,
                 "Matrix::at(", r, ",", c, ") out of ", rows_, "x", cols_);
        return (*this)(r, c);
    }

    /** Const bounds-checked element access. */
    const T &
    at(std::size_t r, std::size_t c) const
    {
        panic_if(r >= rows_ || c >= cols_,
                 "Matrix::at(", r, ",", c, ") out of ", rows_, "x", cols_);
        return (*this)(r, c);
    }

    /** @return span over one row. */
    std::span<T>
    row(std::size_t r)
    {
        return {mutableBase() + r * cols_, cols_};
    }

    /** @return const span over one row. */
    std::span<const T>
    row(std::size_t r) const
    {
        return {base() + r * cols_, cols_};
    }

    /** @return span over the whole storage. */
    std::span<T> data() { return {mutableBase(), size()}; }
    /** @return const span over the whole storage. */
    std::span<const T> data() const { return {base(), size()}; }

    /** Fill every element with the given value. */
    void
    fill(T value)
    {
        std::fill_n(mutableBase(), size(), value);
    }

    /** Exact element-wise equality (view/owning agnostic). */
    bool
    operator==(const Matrix &other) const
    {
        if (rows_ != other.rows_ || cols_ != other.cols_)
            return false;
        const std::span<const T> a = data(), b = other.data();
        return std::equal(a.begin(), a.end(), b.begin());
    }

  private:
    const T *
    base() const
    {
        return view_ != nullptr ? view_ : data_.data();
    }

    T *
    mutableBase()
    {
        panic_if(view_ != nullptr, "mutating a view-backed Matrix");
        return data_.data();
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
    const T *view_ = nullptr; ///< non-null => read-only view
};

/** Convenience aliases for the element types used in this repo. */
using MatrixF = Matrix<float>;
using MatrixI32 = Matrix<std::int32_t>;
using MatrixI64 = Matrix<std::int64_t>;
using MatrixI16 = Matrix<std::int16_t>;
using MatrixI8 = Matrix<std::int8_t>;
using MatrixU8 = Matrix<std::uint8_t>;

} // namespace panacea

#endif // PANACEA_UTIL_MATRIX_H
