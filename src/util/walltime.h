/**
 * @file
 * Tiny wall-clock helpers shared by the serving runtime, benches and
 * examples: steady-clock timestamps and elapsed milliseconds.
 */

#ifndef PANACEA_UTIL_WALLTIME_H
#define PANACEA_UTIL_WALLTIME_H

#include <chrono>

namespace panacea {

/** @return a steady-clock timestamp for msSince(). */
inline std::chrono::steady_clock::time_point
nowTick()
{
    return std::chrono::steady_clock::now();
}

/** @return wall milliseconds elapsed since a nowTick() timestamp. */
inline double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(nowTick() - t0)
        .count();
}

} // namespace panacea

#endif // PANACEA_UTIL_WALLTIME_H
