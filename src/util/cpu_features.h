/**
 * @file
 * Runtime CPU-feature detection and ISA-level selection for the SIMD
 * micro-kernels of the bit-slice GEMM engines.
 *
 * Every kernel in `src/core/` that has vectorized variants selects them
 * through activeIsaLevel() at call time, so one binary runs the widest
 * pair-pass micro-kernel the host supports (see
 * `src/core/pair_pass.h`). All ISA variants compute exact integer
 * arithmetic in a value-independent order, so the selected level changes
 * throughput only - results and statistics stay bit-identical across
 * levels (enforced by tests/test_kernel_parity.cpp's ISA axis).
 *
 * Selection order for activeIsaLevel():
 *   1. a setIsaLevel() override (tests, benchmarks),
 *   2. the PANACEA_ISA environment variable
 *      ("scalar" | "sse2" | "avx2" | "avx512" | "vnni", read once per
 *      process),
 *   3. auto: the best level that is both compiled in and detected.
 * Requests above what the hardware or the build supports are clamped
 * down, never rejected: PANACEA_ISA=vnni on an AVX2 machine runs AVX2.
 */

#ifndef PANACEA_UTIL_CPU_FEATURES_H
#define PANACEA_UTIL_CPU_FEATURES_H

#include <cstddef>
#include <string_view>
#include <vector>

namespace panacea {

/**
 * Instruction-set tiers the micro-kernels are built for, ordered so a
 * larger value is a strict superset in capability.
 */
enum class IsaLevel
{
    Scalar = 0, ///< portable C++ loops, no intrinsics
    Sse2 = 1,   ///< 128-bit pmaddwd pair passes (x86-64 baseline)
    Avx2 = 2,   ///< 256-bit pmaddwd, 4 reduction steps per op
    Avx512 = 3, ///< 512-bit pmaddwd (F+BW), 8 reduction steps per op
    Avx512Vnni = 4, ///< 512-bit vpdpwssd: the madd+add pair fused ("vnni")
};

/** Number of IsaLevel tiers (dispatch tables size their rows by it). */
inline constexpr std::size_t kIsaLevelCount = 5;

/** @return printable name of an ISA level ("scalar", "sse2", ...). */
const char *toString(IsaLevel level);

/**
 * Parse an ISA-level name (case-insensitive). @return true and set *out
 * on success; false (out untouched) for unknown names.
 */
bool parseIsaLevel(std::string_view name, IsaLevel *out);

/**
 * The best level this hardware supports, probed once via cpuid and
 * xgetbv (AVX levels additionally require OS xsave state support).
 * Non-x86 builds report Scalar.
 */
IsaLevel detectedIsaLevel();

/**
 * The best level whose micro-kernels were compiled into this binary
 * (the AVX2/AVX-512 translation units are gated on compiler support at
 * configure time).
 */
IsaLevel compiledIsaLevel();

/**
 * The hard ceiling for every selection path:
 * min(detectedIsaLevel(), compiledIsaLevel()). Both the PANACEA_ISA /
 * setIsaLevel() clamping and the kernel dispatch table use this one
 * accessor, so they can never disagree about what is runnable.
 */
IsaLevel supportedIsaCap();

/**
 * The level kernels should dispatch on right now: the setIsaLevel()
 * override if set, else the PANACEA_ISA request, else auto - always
 * clamped to supportedIsaCap().
 */
IsaLevel activeIsaLevel();

/**
 * Override the active level (clamped to what hardware + build support).
 * Intended for tests and benchmarks that sweep the ISA axis; not
 * thread-safe against concurrent kernel launches.
 */
void setIsaLevel(IsaLevel level);

/** Drop the setIsaLevel() override, returning to PANACEA_ISA / auto. */
void resetIsaLevel();

/**
 * Distinct levels reachable through setIsaLevel() on this host + build,
 * low to high (an unreachable request clamps to the best supported
 * level, so levels above the cap are not listed twice). Probes via
 * setIsaLevel() and ends with resetIsaLevel(), so any prior override is
 * dropped; intended for tests and benchmarks sweeping the ISA axis.
 */
std::vector<IsaLevel> runnableIsaLevels();

} // namespace panacea

#endif // PANACEA_UTIL_CPU_FEATURES_H
