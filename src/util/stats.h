/**
 * @file
 * Scalar statistics over sample vectors: mean, variance, percentiles.
 *
 * Used by the PTQ calibrator (min/max and percentile clipping) and by the
 * DBS distribution classifier (standard deviation against z-score ranges).
 */

#ifndef PANACEA_UTIL_STATS_H
#define PANACEA_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace panacea {

/** Summary statistics of a sample. */
struct SampleStats
{
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;   ///< population standard deviation
    std::size_t count = 0;
};

/** Compute min/max/mean/stddev of a sample in one pass. */
SampleStats computeStats(std::span<const float> values);

/** Compute min/max/mean/stddev over integer samples. */
SampleStats computeStats(std::span<const std::int32_t> values);

/**
 * The q-th percentile (q in [0, 100]) using linear interpolation between
 * order statistics. The input is copied; the original is not reordered.
 */
double percentile(std::span<const float> values, double q);

/** Mean squared error between two equally sized samples. */
double meanSquaredError(std::span<const float> a, std::span<const float> b);

/**
 * Signal-to-quantization-noise ratio in dB: 10*log10(E[s^2] / E[(s-q)^2]).
 * Returns +inf when the error is exactly zero.
 */
double sqnrDb(std::span<const float> signal,
              std::span<const float> reconstruction);

} // namespace panacea

#endif // PANACEA_UTIL_STATS_H
