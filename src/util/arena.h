/**
 * @file
 * Operand memory backing for the zero-copy load path: a 64-byte-aligned
 * owning arena plus an own-or-view vector.
 *
 * The compiled-model format (serve/model_serialize.h, v2) lays every
 * bulk payload - slice planes, RLE entry/payload streams, HO masks,
 * folded bias - in 64-byte-aligned sections so a loader can hand the
 * kernels NON-OWNING views straight into the file image instead of
 * copying into per-structure vectors. The same operand structs
 * (Matrix, RleStream, AqsLinearLayer) must also keep working on the
 * build path, where they own their storage. ArenaVec is that dual
 * backing:
 *
 *   - OWNING:  constructed from a std::vector (the build path, the v1
 *     copying loader). Deep copies, mutation allowed via mutableData().
 *   - VIEW:    constructed from a span into memory someone else keeps
 *     alive - an mmap'ed file (util/mapped_file.h) or an Arena holding
 *     the file image. Shallow copies, immutable.
 *
 * Arena is the owning side for loads that cannot (or may not) mmap:
 * one 64-byte-aligned allocation holds the whole file image, views
 * point into it, and the model keeps the Arena alive via shared_ptr -
 * same object graph as the mapped path, one bulk copy instead of
 * thousands of per-structure ones.
 *
 * Lifetime contract: whoever creates views is responsible for parking
 * the backing object (MappedFile / Arena) in the owning model
 * (ServedModel::restore's payload-owner parameter). A view outliving
 * its backing is use-after-free, exactly like any span.
 */

#ifndef PANACEA_UTIL_ARENA_H
#define PANACEA_UTIL_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "util/logging.h"

namespace panacea {

/** Alignment of every arena allocation and every .pncm v2 section. */
inline constexpr std::size_t kArenaAlignment = 64;

/**
 * A minimal owning bump allocator: grab aligned blocks, free them all
 * at destruction. Not thread-safe; allocate before sharing.
 */
class Arena
{
  public:
    Arena() = default;
    ~Arena()
    {
        for (void *block : blocks_)
            ::operator delete[](block, std::align_val_t(kArenaAlignment));
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate `bytes` (may be 0) at kArenaAlignment. Never throws
     *  short of bad_alloc; the memory lives until the Arena dies. */
    std::byte *
    alloc(std::size_t bytes)
    {
        if (bytes == 0)
            return nullptr;
        void *p = ::operator new[](bytes, std::align_val_t(kArenaAlignment));
        blocks_.push_back(p);
        bytes_ += bytes;
        return static_cast<std::byte *>(p);
    }

    /** @return total bytes handed out (keep-alive accounting). */
    std::size_t bytes() const { return bytes_; }

  private:
    std::vector<void *> blocks_;
    std::size_t bytes_ = 0;
};

/**
 * An immutable-by-default sequence that either OWNS its elements (a
 * std::vector, the build path) or VIEWS memory kept alive elsewhere
 * (the zero-copy load path). Read access is uniform; writers must go
 * through mutableData(), which panics on a view - load-path operands
 * are immutable by design.
 */
template <typename T>
class ArenaVec
{
  public:
    ArenaVec() = default;

    /** Owning: adopt a vector (the build path). */
    ArenaVec(std::vector<T> own) // NOLINT(google-explicit-constructor)
        : own_(std::move(own)), view_(own_.data(), own_.size())
    {}

    /** Non-owning view into memory someone else keeps alive. */
    static ArenaVec
    view(std::span<const T> data)
    {
        ArenaVec v;
        v.view_ = data;
        v.isView_ = true;
        return v;
    }

    ArenaVec(const ArenaVec &other) { *this = other; }
    ArenaVec &
    operator=(const ArenaVec &other)
    {
        if (this == &other)
            return *this;
        own_ = other.own_;
        isView_ = other.isView_;
        view_ = isView_ ? other.view_
                        : std::span<const T>(own_.data(), own_.size());
        return *this;
    }
    ArenaVec(ArenaVec &&other) noexcept { *this = std::move(other); }
    ArenaVec &
    operator=(ArenaVec &&other) noexcept
    {
        if (this == &other)
            return *this;
        own_ = std::move(other.own_);
        isView_ = other.isView_;
        view_ = isView_ ? other.view_
                        : std::span<const T>(own_.data(), own_.size());
        other.own_.clear();
        other.view_ = {};
        other.isView_ = false;
        return *this;
    }

    const T *data() const { return view_.data(); }
    std::size_t size() const { return view_.size(); }
    bool empty() const { return view_.empty(); }
    const T &operator[](std::size_t i) const { return view_[i]; }
    auto begin() const { return view_.begin(); }
    auto end() const { return view_.end(); }
    operator std::span<const T>() const { return view_; } // NOLINT

    /** @return whether this is a non-owning view. */
    bool isView() const { return isView_; }

    /** Mutable access; panics on a view (load-path operands are
     *  immutable - copy into an owning ArenaVec first). */
    T *
    mutableData()
    {
        panic_if(isView_, "mutating a view-backed ArenaVec");
        return own_.data();
    }

  private:
    std::vector<T> own_;
    std::span<const T> view_;
    bool isView_ = false;
};

} // namespace panacea

#endif // PANACEA_UTIL_ARENA_H
