#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace panacea {

Histogram::Histogram(std::int64_t lo, std::int64_t hi)
    : lo_(lo), hi_(hi)
{
    panic_if(hi < lo, "Histogram range [", lo, ",", hi, "] inverted");
    bins_.assign(static_cast<std::size_t>(hi - lo + 1), 0);
}

void
Histogram::add(std::int64_t value)
{
    std::int64_t clamped = std::clamp(value, lo_, hi_);
    ++bins_[static_cast<std::size_t>(clamped - lo_)];
    ++total_;
}

void
Histogram::addAll(std::span<const std::int32_t> values)
{
    for (auto v : values)
        add(v);
}

void
Histogram::addAll(std::span<const std::uint8_t> values)
{
    for (auto v : values)
        add(v);
}

std::uint64_t
Histogram::count(std::int64_t value) const
{
    if (value < lo_ || value > hi_)
        return 0;
    return bins_[static_cast<std::size_t>(value - lo_)];
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i)
        acc += static_cast<double>(bins_[i]) *
               static_cast<double>(lo_ + static_cast<std::int64_t>(i));
    return acc / static_cast<double>(total_);
}

double
Histogram::stddev() const
{
    if (total_ == 0)
        return 0.0;
    double mu = mean();
    double acc = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        double v = static_cast<double>(lo_ + static_cast<std::int64_t>(i));
        acc += static_cast<double>(bins_[i]) * (v - mu) * (v - mu);
    }
    return std::sqrt(acc / static_cast<double>(total_));
}

double
Histogram::massIn(std::int64_t lo, std::int64_t hi) const
{
    if (total_ == 0 || hi < lo)
        return 0.0;
    std::int64_t from = std::max(lo, lo_);
    std::int64_t to = std::min(hi, hi_);
    std::uint64_t acc = 0;
    for (std::int64_t v = from; v <= to; ++v)
        acc += bins_[static_cast<std::size_t>(v - lo_)];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

} // namespace panacea
