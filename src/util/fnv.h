/**
 * @file
 * FNV-1a 64-bit hashing, shared by every site that must agree on the
 * exact bit pattern: the compiled-model file checksum and cache-file
 * name (serve/model_serialize.cpp), the ModelSpec fingerprint inside
 * the cache key (serve/served_model.cpp) and the cross-process output
 * digest of bench_serving. One definition, so the constants cannot
 * silently diverge between writers and readers.
 *
 * FNV-1a is an integrity/bucketing hash, NOT a MAC: anyone can
 * recompute it, so checksummed files are tamper-evident against
 * corruption only, never against a deliberate author (which is why
 * the deserializer still validates every structural invariant).
 */

#ifndef PANACEA_UTIL_FNV_H
#define PANACEA_UTIL_FNV_H

#include <cstddef>
#include <cstdint>

namespace panacea {

inline constexpr std::uint64_t fnv1a64Offset = 1469598103934665603ull;
inline constexpr std::uint64_t fnv1a64Prime = 1099511628211ull;

/** Streaming accumulator: seed with fnv1a64Offset, fold bytes/words. */
inline std::uint64_t
fnv1a64Byte(std::uint64_t h, std::uint8_t byte)
{
    h ^= byte;
    h *= fnv1a64Prime;
    return h;
}

/** Fold a 64-bit word as one unit (the cache-key fingerprint form). */
inline std::uint64_t
fnv1a64Word(std::uint64_t h, std::uint64_t word)
{
    h ^= word;
    h *= fnv1a64Prime;
    return h;
}

/** One-shot hash of a byte buffer. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size,
        std::uint64_t h = fnv1a64Offset)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        h = fnv1a64Byte(h, bytes[i]);
    return h;
}

} // namespace panacea

#endif // PANACEA_UTIL_FNV_H
