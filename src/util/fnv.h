/**
 * @file
 * FNV-1a 64-bit hashing, shared by every site that must agree on the
 * exact bit pattern: the compiled-model file checksum and cache-file
 * name (serve/model_serialize.cpp), the ModelSpec fingerprint inside
 * the cache key (serve/served_model.cpp) and the cross-process output
 * digest of bench_serving. One definition, so the constants cannot
 * silently diverge between writers and readers.
 *
 * FNV-1a is an integrity/bucketing hash, NOT a MAC: anyone can
 * recompute it, so checksummed files are tamper-evident against
 * corruption only, never against a deliberate author (which is why
 * the deserializer still validates every structural invariant).
 */

#ifndef PANACEA_UTIL_FNV_H
#define PANACEA_UTIL_FNV_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace panacea {

inline constexpr std::uint64_t fnv1a64Offset = 1469598103934665603ull;
inline constexpr std::uint64_t fnv1a64Prime = 1099511628211ull;

/** Streaming accumulator: seed with fnv1a64Offset, fold bytes/words. */
inline std::uint64_t
fnv1a64Byte(std::uint64_t h, std::uint8_t byte)
{
    h ^= byte;
    h *= fnv1a64Prime;
    return h;
}

/** Fold a 64-bit word as one unit (the cache-key fingerprint form). */
inline std::uint64_t
fnv1a64Word(std::uint64_t h, std::uint64_t word)
{
    h ^= word;
    h *= fnv1a64Prime;
    return h;
}

/** One-shot hash of a byte buffer. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size,
        std::uint64_t h = fnv1a64Offset)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        h = fnv1a64Byte(h, bytes[i]);
    return h;
}

/**
 * Bulk-buffer checksum: 8 independent FNV-1a lanes over interleaved
 * 8-byte words, lane states folded into one digest with fnv1a64Word.
 *
 * The serial fnv1a64 carries a xor-multiply dependency from byte to
 * byte (~1 byte per multiply latency), which is far too slow to
 * checksum a tens-of-MB mapped model before handing out views. Eight
 * lanes break the chain so the multiplies pipeline; the tail (size %
 * 64 bytes) is folded serially. This is a DIFFERENT function from
 * fnv1a64 - the two are not interchangeable, and the compiled-model
 * format records which one a given file version uses (v1: serial,
 * v2: striped).
 */
inline std::uint64_t
fnv1a64Striped(const void *data, std::size_t size)
{
    constexpr int lanes = 8;
    std::uint64_t h[lanes];
    for (int l = 0; l < lanes; ++l)
        h[l] = fnv1a64Word(fnv1a64Offset, static_cast<std::uint64_t>(l));

    const auto *bytes = static_cast<const unsigned char *>(data);
    const std::size_t words = size / 8;
    const std::size_t rounds = words / lanes;
    for (std::size_t r = 0; r < rounds; ++r) {
        for (int l = 0; l < lanes; ++l) {
            // Little-endian word assembly. On LE hosts a plain load IS
            // the LE word, and the shift-or form costs ~3x the whole
            // loop (it defeats load coalescing), so take the memcpy
            // path there; the portable assembly remains for BE hosts -
            // both produce the same digest for the same byte stream.
            std::uint64_t w;
            const unsigned char *p = bytes + (r * lanes + l) * 8;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
            std::memcpy(&w, p, 8);
#else
            w = 0;
            for (int b = 0; b < 8; ++b)
                w |= static_cast<std::uint64_t>(p[b]) << (8 * b);
#endif
            h[l] = fnv1a64Word(h[l], w);
        }
    }

    std::uint64_t digest = fnv1a64Word(fnv1a64Offset, size);
    for (int l = 0; l < lanes; ++l)
        digest = fnv1a64Word(digest, h[l]);
    for (std::size_t i = rounds * lanes * 8; i < size; ++i)
        digest = fnv1a64Byte(digest, bytes[i]);
    return digest;
}

} // namespace panacea

#endif // PANACEA_UTIL_FNV_H
