/**
 * @file
 * Fixed-bin histogram used by the DBS distribution monitor.
 *
 * The paper's calibration step "records histograms for quantized
 * activations and then calculates their standard deviations"; this class
 * is that monitor.
 */

#ifndef PANACEA_UTIL_HISTOGRAM_H
#define PANACEA_UTIL_HISTOGRAM_H

#include <cstdint>
#include <span>
#include <vector>

namespace panacea {

/**
 * Histogram over the integer domain [lo, hi] with one bin per value.
 *
 * Designed for quantized tensors where the domain is at most 2^b values.
 */
class Histogram
{
  public:
    /** Construct a histogram covering the inclusive range [lo, hi]. */
    Histogram(std::int64_t lo, std::int64_t hi);

    /** Add one observation; out-of-range values clamp to the edge bins. */
    void add(std::int64_t value);

    /** Add a batch of observations. */
    void addAll(std::span<const std::int32_t> values);
    /** Add a batch of unsigned 8-bit observations. */
    void addAll(std::span<const std::uint8_t> values);

    /** @return count in the bin for the given value. */
    std::uint64_t count(std::int64_t value) const;

    /** @return total observations recorded. */
    std::uint64_t total() const { return total_; }

    /** @return inclusive lower bound of the domain. */
    std::int64_t lo() const { return lo_; }
    /** @return inclusive upper bound of the domain. */
    std::int64_t hi() const { return hi_; }

    /** Mean of the recorded distribution. */
    double mean() const;

    /** Population standard deviation of the recorded distribution. */
    double stddev() const;

    /**
     * Fraction of observations whose value lies in [lo, hi] (inclusive).
     * Used to measure how much mass falls inside a slice skip range.
     */
    double massIn(std::int64_t lo, std::int64_t hi) const;

    /** @return raw bin array (index 0 corresponds to value lo()). */
    std::span<const std::uint64_t> bins() const { return bins_; }

  private:
    std::int64_t lo_;
    std::int64_t hi_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

} // namespace panacea

#endif // PANACEA_UTIL_HISTOGRAM_H
