/**
 * @file
 * Aligned console table printer used by the bench harnesses to emit the
 * rows/series the paper's tables and figures report.
 */

#ifndef PANACEA_UTIL_TABLE_H
#define PANACEA_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace panacea {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 *
 * Numeric helpers format with a fixed precision so bench output stays
 * stable across runs.
 */
class Table
{
  public:
    /** Construct with a header row. */
    explicit Table(std::vector<std::string> header);

    /** Start a new empty row. */
    Table &newRow();

    /** Append a string cell to the current row. */
    Table &cell(std::string text);

    /** Append an integer cell. */
    Table &cell(std::int64_t value);
    /** Append an unsigned integer cell. */
    Table &cell(std::uint64_t value);

    /** Append a floating-point cell with the given decimal places. */
    Table &cell(double value, int precision = 3);

    /** Append a "x.yz x" ratio cell (e.g. speedups). */
    Table &ratioCell(double value, int precision = 2);

    /** Append a percentage cell rendered as "nn.n %". */
    Table &percentCell(double fraction, int precision = 1);

    /** Render the table with a rule under the header. */
    void print(std::ostream &os) const;

    /** @return number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("== title ==") used between bench sections. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace panacea

#endif // PANACEA_UTIL_TABLE_H
