#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace panacea {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    panic_if(header_.empty(), "Table requires at least one column");
}

Table &
Table::newRow()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(std::string text)
{
    panic_if(rows_.empty(), "Table::cell before newRow");
    rows_.back().push_back(std::move(text));
    return *this;
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::ratioCell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value << "x";
    return cell(oss.str());
}

Table &
Table::percentCell(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << fraction * 100.0
        << "%";
    return cell(oss.str());
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &text = c < row.size() ? row[c] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << text;
        }
        os << "\n";
    };

    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace panacea
