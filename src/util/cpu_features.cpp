#include "util/cpu_features.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define PANACEA_X86 1
#endif

#include "util/logging.h"

namespace panacea {

namespace {

#if defined(PANACEA_X86)

std::uint64_t
xgetbv0()
{
    std::uint32_t eax = 0, edx = 0;
    // xgetbv with ecx = 0 reads XCR0; plain asm avoids needing -mxsave.
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0"
                     : "=a"(eax), "=d"(edx)
                     : "c"(0));
    return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

IsaLevel
probeHardware()
{
    unsigned eax, ebx, ecx, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return IsaLevel::Scalar;
    const bool sse2 = (edx & bit_SSE2) != 0;
    const bool osxsave = (ecx & bit_OSXSAVE) != 0;
    const bool avx = (ecx & bit_AVX) != 0;
    if (!sse2)
        return IsaLevel::Scalar;

    // AVX requires the OS to save ymm state (XCR0 bits 1-2); AVX-512
    // additionally opmask + zmm hi state (bits 5-7).
    const std::uint64_t xcr0 = osxsave ? xgetbv0() : 0;
    const bool ymm_os = (xcr0 & 0x6) == 0x6;
    const bool zmm_os = (xcr0 & 0xE6) == 0xE6;

    unsigned eax7, ebx7, ecx7, edx7;
    if (!avx || !ymm_os ||
        !__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7))
        return IsaLevel::Sse2;
    const bool avx2 = (ebx7 & bit_AVX2) != 0;
    const bool avx512f = (ebx7 & bit_AVX512F) != 0;
    const bool avx512bw = (ebx7 & bit_AVX512BW) != 0;
    // AVX512_VNNI is CPUID.(7,0):ECX bit 11; <cpuid.h> does not define
    // a bit_ macro for it on every toolchain.
    const bool avx512vnni = (ecx7 & (1u << 11)) != 0;
    if (avx512f && avx512bw && zmm_os)
        return avx512vnni ? IsaLevel::Avx512Vnni : IsaLevel::Avx512;
    if (avx2)
        return IsaLevel::Avx2;
    return IsaLevel::Sse2;
}

#else

IsaLevel
probeHardware()
{
    return IsaLevel::Scalar;
}

#endif // PANACEA_X86

IsaLevel
clampToSupported(IsaLevel level)
{
    const IsaLevel cap = supportedIsaCap();
    return level < cap ? level : cap;
}

/** PANACEA_ISA request, read once; defaults to the supported maximum.
 *  An empty value counts as unset (CI matrices export it that way). */
IsaLevel
envIsaLevel()
{
    static const IsaLevel level = [] {
        const char *env = std::getenv("PANACEA_ISA");
        if (env != nullptr && env[0] != '\0') {
            IsaLevel requested;
            if (parseIsaLevel(env, &requested))
                return clampToSupported(requested);
            warn("ignoring unrecognized PANACEA_ISA=", env);
        }
        return clampToSupported(IsaLevel::Avx512Vnni);
    }();
    return level;
}

// setIsaLevel() override; -1 = unset. Relaxed atomics suffice: callers
// must not race overrides against kernel launches (see header).
std::atomic<int> g_override{-1};

} // namespace

const char *
toString(IsaLevel level)
{
    switch (level) {
      case IsaLevel::Scalar: return "scalar";
      case IsaLevel::Sse2:   return "sse2";
      case IsaLevel::Avx2:   return "avx2";
      case IsaLevel::Avx512: return "avx512";
      case IsaLevel::Avx512Vnni: return "vnni";
    }
    return "?";
}

bool
parseIsaLevel(std::string_view name, IsaLevel *out)
{
    auto equals = [&](std::string_view want) {
        if (name.size() != want.size())
            return false;
        for (std::size_t i = 0; i < name.size(); ++i) {
            char c = name[i];
            if (c >= 'A' && c <= 'Z')
                c = static_cast<char>(c - 'A' + 'a');
            if (c != want[i])
                return false;
        }
        return true;
    };
    if (equals("scalar"))
        *out = IsaLevel::Scalar;
    else if (equals("sse2"))
        *out = IsaLevel::Sse2;
    else if (equals("avx2"))
        *out = IsaLevel::Avx2;
    else if (equals("avx512"))
        *out = IsaLevel::Avx512;
    else if (equals("vnni") || equals("avx512vnni"))
        *out = IsaLevel::Avx512Vnni;
    else
        return false;
    return true;
}

IsaLevel
detectedIsaLevel()
{
    static const IsaLevel level = probeHardware();
    return level;
}

IsaLevel
compiledIsaLevel()
{
#if defined(PANACEA_HAVE_VNNI_KERNELS)
    return IsaLevel::Avx512Vnni;
#elif defined(PANACEA_HAVE_AVX512_KERNELS)
    return IsaLevel::Avx512;
#elif defined(PANACEA_HAVE_AVX2_KERNELS)
    return IsaLevel::Avx2;
#elif defined(__SSE2__)
    return IsaLevel::Sse2;
#else
    return IsaLevel::Scalar;
#endif
}

IsaLevel
supportedIsaCap()
{
    IsaLevel cap = detectedIsaLevel();
    if (compiledIsaLevel() < cap)
        cap = compiledIsaLevel();
    return cap;
}

IsaLevel
activeIsaLevel()
{
    const int ov = g_override.load(std::memory_order_relaxed);
    if (ov >= 0)
        return static_cast<IsaLevel>(ov);
    return envIsaLevel();
}

void
setIsaLevel(IsaLevel level)
{
    g_override.store(static_cast<int>(clampToSupported(level)),
                     std::memory_order_relaxed);
}

void
resetIsaLevel()
{
    g_override.store(-1, std::memory_order_relaxed);
}

std::vector<IsaLevel>
runnableIsaLevels()
{
    std::vector<IsaLevel> levels;
    for (IsaLevel lvl : {IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2,
                         IsaLevel::Avx512, IsaLevel::Avx512Vnni}) {
        setIsaLevel(lvl);
        if (activeIsaLevel() == lvl)
            levels.push_back(lvl);
    }
    resetIsaLevel();
    return levels;
}

} // namespace panacea
