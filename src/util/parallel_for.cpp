#include "util/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace panacea {

namespace {

/** True while the current thread is executing a pool chunk. */
thread_local bool tls_in_pool_worker = false;

int
autoThreadCount()
{
    if (const char *env = std::getenv("PANACEA_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<int>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/**
 * One parallelFor invocation. Workers hold a shared_ptr so a straggler
 * that probes the chunk counter after the job completed touches live
 * memory; the counter is per-job, so lanes can never cross generations.
 */
struct JobState
{
    const RangeTask *fn = nullptr;
    std::size_t begin = 0;
    std::size_t items = 0;
    int chunks = 0;
    std::atomic<int> nextChunk{0};
    std::atomic<int> chunksLeft{0};
};

/** Pull chunks off the job until none remain (one pool lane). */
void
runLane(JobState &job, std::mutex &mutex, std::condition_variable &done)
{
    const std::size_t base =
        job.items / static_cast<std::size_t>(job.chunks);
    const std::size_t rem =
        job.items % static_cast<std::size_t>(job.chunks);
    tls_in_pool_worker = true;
    for (;;) {
        const int c = job.nextChunk.fetch_add(1);
        if (c >= job.chunks)
            break;
        const std::size_t uc = static_cast<std::size_t>(c);
        const std::size_t b =
            job.begin + uc * base + std::min<std::size_t>(uc, rem);
        const std::size_t len = base + (uc < rem ? 1 : 0);
        (*job.fn)(b, b + len, c);
        if (job.chunksLeft.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lock(mutex);
            done.notify_all();
        }
    }
    tls_in_pool_worker = false;
}

} // namespace

struct ThreadPool::Impl
{
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable workReady;
    std::condition_variable workDone;

    std::uint64_t generation = 0;
    std::shared_ptr<JobState> job;
    bool stopping = false;
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl)
{
    spawn(threads);
}

ThreadPool::~ThreadPool()
{
    joinAll();
    delete impl_;
}

void
ThreadPool::spawn(int threads)
{
    threads_ = threads > 0 ? threads : autoThreadCount();
    // threads_ - 1 helpers; the calling thread is the last lane.
    for (int t = 0; t < threads_ - 1; ++t)
        impl_->workers.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::joinAll()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->workReady.notify_all();
    for (std::thread &w : impl_->workers)
        w.join();
    impl_->workers.clear();
    impl_->stopping = false;
}

void
ThreadPool::resize(int threads)
{
    joinAll();
    spawn(threads);
}

int
ThreadPool::chunkCount(std::size_t items) const
{
    if (items == 0 || tls_in_pool_worker)
        return 1;
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads_), items));
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<JobState> job;
        {
            std::unique_lock<std::mutex> lock(impl_->mutex);
            impl_->workReady.wait(lock, [&] {
                return impl_->stopping || impl_->generation != seen;
            });
            if (impl_->stopping)
                return;
            seen = impl_->generation;
            job = impl_->job;
        }
        if (job)
            runLane(*job, impl_->mutex, impl_->workDone);
    }
}

void
ThreadPool::runJob(std::size_t begin, std::size_t end, int chunks,
                   const RangeTask &fn)
{
    auto job = std::make_shared<JobState>();
    job->fn = &fn;
    job->begin = begin;
    job->items = end - begin;
    job->chunks = chunks;
    job->chunksLeft.store(chunks);

    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->job = job;
        ++impl_->generation;
    }
    impl_->workReady.notify_all();

    // The calling thread participates as one lane, then waits for the
    // stragglers.
    runLane(*job, impl_->mutex, impl_->workDone);

    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->workDone.wait(lock,
                         [&] { return job->chunksLeft.load() == 0; });
    impl_->job.reset();
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const RangeTask &fn)
{
    if (end <= begin)
        return;
    const int chunks = chunkCount(end - begin);
    if (chunks <= 1 || impl_->workers.empty() || tls_in_pool_worker) {
        // Inline: single lane, nested call, or single-threaded pool.
        // The worker flag is NOT set here - a top-level call that
        // happens to span one chunk (e.g. a single-layer sweep) must
        // not starve parallelism nested beneath it; only runLane marks
        // genuine pool workers.
        fn(begin, end, 0);
        return;
    }
    runJob(begin, end, chunks, fn);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

int
parallelThreads()
{
    return ThreadPool::global().threads();
}

void
setParallelThreads(int threads)
{
    ThreadPool::global().resize(threads);
}

int
parallelChunkCount(std::size_t items)
{
    return ThreadPool::global().chunkCount(items);
}

void
parallelFor(std::size_t begin, std::size_t end, const RangeTask &fn)
{
    ThreadPool::global().parallelFor(begin, end, fn);
}

} // namespace panacea
