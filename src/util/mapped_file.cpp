#include "util/mapped_file.h"

#if defined(__unix__) || defined(__APPLE__)
#define PANACEA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PANACEA_HAVE_MMAP 0
#endif

namespace panacea {

std::shared_ptr<MappedFile>
MappedFile::open(const std::string &path)
{
#if PANACEA_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
        ::close(fd);
        return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void *addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    // The mapping holds its own reference to the inode; the fd is no
    // longer needed either way.
    ::close(fd);
    if (addr == MAP_FAILED)
        return nullptr;
    return std::shared_ptr<MappedFile>(
        new MappedFile(static_cast<const std::byte *>(addr), size));
#else
    (void)path;
    return nullptr;
#endif
}

MappedFile::~MappedFile()
{
#if PANACEA_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<std::byte *>(data_), size_);
#endif
}

} // namespace panacea
