/**
 * @file
 * Deterministic random-number generation for reproducible experiments.
 *
 * Every workload generator in this repository draws from an explicitly
 * seeded Rng so that all tests and benches are bit-reproducible.
 */

#ifndef PANACEA_UTIL_RANDOM_H
#define PANACEA_UTIL_RANDOM_H

#include <cstdint>
#include <random>

namespace panacea {

/**
 * A thin deterministic wrapper over std::mt19937_64 with the sampling
 * helpers used by the synthetic workload generators.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; the default seed is fixed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : engine_(seed)
    {}

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Laplace (double-exponential) with the given location and scale. */
    double
    laplace(double location, double scale)
    {
        double u = uniformReal(-0.5, 0.5);
        double sign = u < 0.0 ? -1.0 : 1.0;
        return location - scale * sign * std::log(1.0 - 2.0 * std::abs(u));
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

    /** Derive an independent child generator (for per-layer streams). */
    Rng
    fork()
    {
        return Rng(engine_());
    }

  private:
    std::mt19937_64 engine_;
};

} // namespace panacea

#endif // PANACEA_UTIL_RANDOM_H
