/**
 * @file
 * Status-message and error-handling primitives in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so the failure can be debugged.
 * fatal()  - the user asked for something unsatisfiable (bad configuration,
 *            invalid arguments); exits with status 1.
 * warn()   - functionality works but with caveats the user should know.
 * inform() - neutral status messages.
 */

#ifndef PANACEA_UTIL_LOGGING_H
#define PANACEA_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace panacea {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Stream a pack of arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    if constexpr (sizeof...(Args) > 0)
        (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit one formatted log line to stderr (Inform goes to stdout). */
void emitLog(LogLevel level, std::string_view file, int line,
             const std::string &message);

} // namespace detail

/** Global verbosity switch: when false, inform() lines are suppressed. */
void setVerbose(bool verbose);

/** @return whether inform() lines are currently emitted. */
bool verbose();

} // namespace panacea

/** Informative message; suppressed when verbosity is off. */
#define inform(...)                                                          \
    ::panacea::detail::emitLog(::panacea::LogLevel::Inform, __FILE__,        \
                               __LINE__, ::panacea::detail::concat(__VA_ARGS__))

/** Something works, but not as well as it should. */
#define warn(...)                                                            \
    ::panacea::detail::emitLog(::panacea::LogLevel::Warn, __FILE__,          \
                               __LINE__, ::panacea::detail::concat(__VA_ARGS__))

/** Unrecoverable user error: print and exit(1). */
#define fatal(...)                                                           \
    do {                                                                     \
        ::panacea::detail::emitLog(::panacea::LogLevel::Fatal, __FILE__,     \
                                   __LINE__,                                 \
                                   ::panacea::detail::concat(__VA_ARGS__));  \
        std::exit(1);                                                        \
    } while (0)

/** Internal bug: print and abort() so a core dump is available. */
#define panic(...)                                                           \
    do {                                                                     \
        ::panacea::detail::emitLog(::panacea::LogLevel::Panic, __FILE__,     \
                                   __LINE__,                                 \
                                   ::panacea::detail::concat(__VA_ARGS__));  \
        std::abort();                                                        \
    } while (0)

/** Assert an internal invariant; panics with the condition text on failure. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond) {                                                          \
            panic("condition '" #cond "' hit: ",                             \
                  ::panacea::detail::concat(__VA_ARGS__));                   \
        }                                                                    \
    } while (0)

/** Report a user error when the condition holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond) {                                                          \
            fatal("condition '" #cond "' hit: ",                             \
                  ::panacea::detail::concat(__VA_ARGS__));                   \
        }                                                                    \
    } while (0)

#endif // PANACEA_UTIL_LOGGING_H
