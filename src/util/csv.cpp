#include "util/csv.h"

#include "util/logging.h"

namespace panacea {

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : out_(path), columns_(header.size())
{
    fatal_if(!out_.good(), "cannot open CSV output '", path, "'");
    writeRow(header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    panic_if(cells.size() != columns_, "CSV row with ", cells.size(),
             " cells, expected ", columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace panacea
