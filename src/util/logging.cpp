#include "util/logging.h"

#include <atomic>

namespace panacea {

namespace {

std::atomic<bool> verboseFlag{true};

/** Human-readable tag for each severity. */
const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
emitLog(LogLevel level, std::string_view file, int line,
        const std::string &message)
{
    if (level == LogLevel::Inform) {
        if (verbose())
            std::cout << levelTag(level) << ": " << message << "\n";
        return;
    }
    std::ostream &os = std::cerr;
    os << levelTag(level) << ": " << message;
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        os << " (" << file << ":" << line << ")";
    os << std::endl;
}

} // namespace detail

} // namespace panacea
