/**
 * @file
 * Shared persistent thread pool and a deterministic chunked
 * parallel-for. All multi-threaded code in the repository (the AQS-GEMM
 * kernel, the legacy bit-slice GEMM, the tiled executor, the model-zoo
 * sweeps) routes through this single pool so thread creation happens
 * once per process, not once per GEMM call.
 *
 * Determinism contract: parallelFor() splits [begin, end) into at most
 * threads() contiguous chunks with a fixed partition rule; the callback
 * receives (chunk_begin, chunk_end, chunk_index). Callers that reduce
 * per-chunk results must index them by chunk and combine in chunk order.
 * All kernels in this repo accumulate integer counters and write
 * disjoint output rows, so results are bit-identical for every thread
 * count. The operand-preparation stages (slicing, RLE encoding, mask
 * construction, operand widening/pairing) follow the same rule -
 * pre-sized outputs, disjoint writes - so prepared operands are
 * byte-identical for every pool width (tests/test_prep_parallel.cpp).
 *
 * Nesting: a parallelFor() issued from inside a pool worker runs
 * inline on that worker (no fan-out), so library code may call it
 * unconditionally; only top-level calls parallelize.
 */

#ifndef PANACEA_UTIL_PARALLEL_FOR_H
#define PANACEA_UTIL_PARALLEL_FOR_H

#include <cstddef>
#include <functional>

namespace panacea {

/** Range task: fn(chunk_begin, chunk_end, chunk_index). */
using RangeTask = std::function<void(std::size_t, std::size_t, int)>;

/**
 * Persistent worker pool. Most callers use the free functions below,
 * which operate on the process-wide pool; the class is public for tests
 * and for embedders that want an isolated pool.
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 picks PANACEA_THREADS from the
     *        environment, falling back to hardware_concurrency().
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return configured degree of parallelism (>= 1). */
    int threads() const { return threads_; }

    /** Re-size the pool (joins and respawns workers; not reentrant). */
    void resize(int threads);

    /**
     * Number of chunks parallelFor() will use for an index range of the
     * given length: min(threads, items), at least 1.
     */
    int chunkCount(std::size_t items) const;

    /**
     * Run fn over [begin, end) split into chunkCount(end - begin)
     * contiguous chunks; blocks until every chunk has finished. Chunk c
     * covers items/chunks elements (the first items%chunks chunks get
     * one extra), so the partition depends only on (range, threads).
     * Runs inline when the pool has one thread, the range is a single
     * chunk, or the caller is itself a pool worker (no nested fan-out).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const RangeTask &fn);

    /** @return the process-wide pool (created on first use). */
    static ThreadPool &global();

  private:
    void workerLoop();
    void runJob(std::size_t begin, std::size_t end, int chunks,
                const RangeTask &fn);
    void spawn(int threads);
    void joinAll();

    struct Impl;
    Impl *impl_;
    int threads_ = 1;
};

/** @return the global pool's degree of parallelism. */
int parallelThreads();

/** Set the global pool's degree of parallelism (0 = auto). */
void setParallelThreads(int threads);

/** @return chunks the global pool uses for an index range. */
int parallelChunkCount(std::size_t items);

/** Run fn over [begin, end) on the global pool (see ThreadPool). */
void parallelFor(std::size_t begin, std::size_t end, const RangeTask &fn);

} // namespace panacea

#endif // PANACEA_UTIL_PARALLEL_FOR_H
