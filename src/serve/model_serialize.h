/**
 * @file
 * Versioned binary serialization of prepared (compiled) models: the
 * on-disk operand format that makes the expensive AQS preparation
 * (calibration, SBR/DBS slicing, RLE + HO compression, folded bias) a
 * deployable artifact instead of per-process warm-up work. A model
 * written by one process and read by another is behaviourally
 * byte-identical to the freshly built original - same outputs, same
 * AqsStats, at every ISA level.
 *
 * Two format versions are readable:
 *
 *   v2 (current, written by default) - SECTIONED, ZERO-COPY. All bulk
 *   payloads live in 64-byte-aligned sections addressed by an offset
 *   directory, laid out exactly as the kernels consume them, so the
 *   loader can mmap the file read-only (util/mapped_file.h) and hand
 *   the operand structs non-owning views straight into the mapping -
 *   no per-structure decode copies, and every process mapping the same
 *   file shares one set of physical pages. Loading without mmap uses
 *   the identical view decode over one 64-byte-aligned arena copy of
 *   the file image.
 *
 *   v1 (legacy, still readable + writable on request) - a single
 *   little-endian scalar stream; every payload is copied and
 *   re-materialized through the restore() entry points. The loader
 *   falls back to this copying path for v1 files with a one-time log;
 *   the sweep does NOT treat v1 as stale.
 *
 * v2 file layout (all scalar fields little-endian):
 *
 *   offset  0  "PNCM"                magic
 *   offset  4  u32  format version   2
 *   offset  8  u64  file size        must equal the real size; rejects
 *                                    truncation/trailing bytes before
 *                                    any payload is touched
 *   offset 16  u64  checksum         fnv1a64Striped over [24, size)
 *   offset 24  u64  section count    1 (META) + 6 per layer
 *   offset 32  directory             section count x {u64 offset,
 *                                    u64 size}; offsets 64-byte
 *                                    aligned, ascending, gaps zeroed
 *   ...        sections
 *
 * Section 0 is META: the scalar stream (cache key, ModelSpec,
 * ServeModelOptions, build ms, per-layer scalars/shapes/stream
 * headers) plus, for each bulk payload, the index of the section that
 * holds its bytes. Each layer owns six bulk sections, in canonical
 * order: slice planes, total codes (i32), HO mask (u8), RLE entries
 * ({u16 skip, u16 zero, u32 index} x stored, concatenated across the
 * layer's streams), RLE payloads (Slice), folded bias (i64). Bulk
 * bytes are raw element bytes, i.e. the host's layout - identical on
 * every x86-64 host, the only architecture the SIMD engine targets.
 *
 * SIGBUS / corruption discipline on the mapped path: the declared file
 * size, the striped checksum and every structural invariant (directory
 * bounds + alignment, shapes, RLE entry chains and padding) are
 * validated BEFORE any view is handed out, so a truncated or
 * bit-flipped file fails with SerializeError - it can never surface
 * later as a fault inside a kernel reading the mapping.
 *
 * Every reader-side structural violation (bad magic, unsupported
 * version, checksum mismatch, truncation, out-of-range enum, trailing
 * bytes, key/fingerprint mismatch) throws SerializeError; a load never
 * returns a partially-initialized model.
 *
 * This header is internal; the public entry points are
 * panacea::saveCompiledModel / loadCompiledModel in
 * include/panacea/serialize.h and the disk tier of PreparedModelCache.
 */

#ifndef PANACEA_SERVE_MODEL_SERIALIZE_H
#define PANACEA_SERVE_MODEL_SERIALIZE_H

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>

#include "serve/served_model.h"

namespace panacea {
namespace serve {

/** Any structural defect found while reading/writing a model file. */
class SerializeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Current compiled-model format version (bumped on layout changes). */
inline constexpr std::uint32_t kCompiledModelFormatVersion = 2;

/** The legacy copying format; still read (and written on request). */
inline constexpr std::uint32_t kCompiledModelLegacyFormatVersion = 1;

/** @return whether a reader of this build can load format version v. */
inline constexpr bool
isSupportedCompiledModelVersion(std::uint32_t v)
{
    return v == kCompiledModelFormatVersion ||
           v == kCompiledModelLegacyFormatVersion;
}

/** Conventional file extension of compiled models. */
inline constexpr const char *kCompiledModelExtension = ".pncm";

/**
 * Serialize a prepared model to a stream; throws SerializeError when
 * the stream fails or `version` is unsupported. The byte sequence is a
 * pure function of (prepared state, version) - timing fields excluded
 * except the recorded build cost - so save -> load -> save reproduces
 * identical bytes, for either version.
 */
void writeServedModel(std::ostream &out, const ServedModel &model,
                      std::uint32_t version = kCompiledModelFormatVersion);

/**
 * Deserialize a model (either supported version); throws
 * SerializeError on any structural defect (see file header). The
 * returned model is immutable and ready to serve - no calibration,
 * slicing, RLE or HO work happens here. Stream loads always own their
 * payloads (v2 views point into an arena copy of the file image); use
 * loadServedModel() for the mmap-backed path.
 */
std::shared_ptr<const ServedModel> readServedModel(std::istream &in);

/** writeServedModel() to `path` (atomic: temp file + rename). */
void saveServedModel(const ServedModel &model, const std::string &path,
                     std::uint32_t version = kCompiledModelFormatVersion);

/**
 * Load a compiled model from `path`; SerializeError covers I/O too.
 *
 * With `allow_mmap` (the default) a v2 file is mapped read-only and
 * consumed in place (model->mappedBytes() > 0); the copying decode is
 * the fallback for v1 files, platforms without mmap, and
 * PANACEA_MMAP=0 in the environment (the operational escape hatch -
 * it beats allow_mmap regardless of the caller).
 */
std::shared_ptr<const ServedModel> loadServedModel(const std::string &path,
                                                   bool allow_mmap = true);

/**
 * @return the disk-tier file name of a cache key:
 * "<fnv1a64(key) in hex><.pncm>". Keys contain characters that are
 * hostile to file systems ('|', '#', ':'), so the name is a hash; the
 * key stored INSIDE the file is authoritative and verified on load.
 */
std::string compiledModelFileName(const std::string &key);

/**
 * Read ONLY the envelope (magic + format version) of a compiled-model
 * file - a few bytes, no payload decode. Throws SerializeError on a
 * missing/short file or bad magic; an out-of-date version is NOT an
 * error here (that is what the sweep is for).
 * @return the file's format version.
 */
std::uint32_t peekCompiledModelVersion(const std::string &path);

/** What a cache-directory maintenance pass removed (file counts). */
struct CacheDirReport
{
    std::uint64_t scanned = 0;      ///< .pncm files examined
    std::uint64_t staleVersion = 0; ///< removed: unsupported version
    std::uint64_t corrupt = 0;      ///< removed: bad magic / unreadable
    std::uint64_t evicted = 0;      ///< removed: size-cap LRU pruning
    std::uint64_t bytesFreed = 0;   ///< total bytes removed
    std::uint64_t bytesKept = 0;    ///< bytes remaining after the pass
};

/**
 * Enforce a size cap on a disk-tier directory: while the total size of
 * its .pncm files exceeds `max_bytes`, remove the least-recently-used
 * one (oldest write/access timestamp - PreparedModelCache refreshes
 * the timestamp on every disk hit). The most recent file is never
 * removed, so a single process's write-back always survives its own
 * prune. (In a directory SHARED by concurrent processes a racing
 * writer or disk hit can out-date an entry between its write and the
 * prune and get it evicted - which costs that process's next cold
 * start a rebuild, nothing else.) max_bytes == 0 means unbounded
 * (no-op). A missing directory is a no-op, never an error.
 */
CacheDirReport pruneCompiledModelDir(const std::string &dir,
                                     std::uint64_t max_bytes);

/**
 * Version-sweep a disk-tier directory: remove every .pncm file whose
 * envelope carries a format version this build cannot READ
 * (isSupportedCompiledModelVersion() - legacy v1 entries are valid and
 * stay) or whose envelope is unreadable/corrupt. With max_bytes > 0,
 * follows up with pruneCompiledModelDir(). This is the library side of
 * the `panacea_cache_sweep` tool.
 */
CacheDirReport sweepCompiledModelDir(const std::string &dir,
                                     std::uint64_t max_bytes = 0);

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_MODEL_SERIALIZE_H
