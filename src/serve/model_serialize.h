/**
 * @file
 * Versioned binary serialization of prepared (compiled) models: the
 * on-disk operand format that makes the expensive AQS preparation
 * (calibration, SBR/DBS slicing, RLE + HO compression, folded bias) a
 * deployable artifact instead of per-process warm-up work. A model
 * written by one process and read by another is behaviourally
 * byte-identical to the freshly built original - same outputs, same
 * AqsStats, at every ISA level - and loading does ZERO slicing/RLE/HO
 * work (pure decode through the restore() entry points of RleStream,
 * AqsLinearLayer and ServedModel).
 *
 * File layout (scalar fields little-endian; bulk tensor payloads are
 * raw element bytes, i.e. the host's layout - identical on every
 * x86-64 host, the only architecture the SIMD engine targets):
 *
 *   offset 0   "PNCM"                     magic
 *   offset 4   u32   format version       readers reject other versions
 *   offset 8   payload                    see below
 *   last 8 B   u64   FNV-1a(payload)      integrity checksum
 *
 * Payload:
 *
 *   string  cache key                     serveModelKey() fingerprint;
 *                                         re-derived from the decoded
 *                                         spec+options and compared,
 *                                         so a tampered or mismatched
 *                                         body is rejected
 *   ModelSpec                             name, seqLen, metric anchors,
 *                                         every LayerSpec field
 *   ServeModelOptions                     every field
 *   f64     original build ms             keeps buildMsSaved accounting
 *                                         meaningful across processes
 *   u64     served layer count
 *   per layer:
 *     AqsPipelineOptions                  incl. the AqsConfig
 *     QuantParams x 2                     weight + activation
 *     DbsDecision                         type, l, ZPM, statistic
 *     WeightOperand                       SBR slice planes, total codes,
 *                                         HO mask, RLE streams
 *     folded bias                         i64 x M
 *
 * Every reader-side structural violation (bad magic, unknown version,
 * checksum mismatch, truncation, out-of-range enum, trailing bytes,
 * key/fingerprint mismatch) throws SerializeError; a load never
 * returns a partially-initialized model.
 *
 * This header is internal; the public entry points are
 * panacea::saveCompiledModel / loadCompiledModel in
 * include/panacea/serialize.h and the disk tier of PreparedModelCache.
 */

#ifndef PANACEA_SERVE_MODEL_SERIALIZE_H
#define PANACEA_SERVE_MODEL_SERIALIZE_H

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>

#include "serve/served_model.h"

namespace panacea {
namespace serve {

/** Any structural defect found while reading/writing a model file. */
class SerializeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Current compiled-model format version (bumped on layout changes). */
inline constexpr std::uint32_t kCompiledModelFormatVersion = 1;

/** Conventional file extension of compiled models. */
inline constexpr const char *kCompiledModelExtension = ".pncm";

/**
 * Serialize a prepared model to a stream; throws SerializeError when
 * the stream fails. The byte sequence is a pure function of the
 * model's prepared state (timing fields excluded except the recorded
 * build cost), so save -> load -> save reproduces identical bytes.
 */
void writeServedModel(std::ostream &out, const ServedModel &model);

/**
 * Deserialize a model; throws SerializeError on any structural defect
 * (see file header). The returned model is immutable and ready to
 * serve - no calibration, slicing, RLE or HO work happens here.
 */
std::shared_ptr<const ServedModel> readServedModel(std::istream &in);

/** writeServedModel() to `path` (atomic: temp file + rename). */
void saveServedModel(const ServedModel &model, const std::string &path);

/** readServedModel() from `path`; SerializeError covers I/O too. */
std::shared_ptr<const ServedModel> loadServedModel(const std::string &path);

/**
 * @return the disk-tier file name of a cache key:
 * "<fnv1a64(key) in hex><.pncm>". Keys contain characters that are
 * hostile to file systems ('|', '#', ':'), so the name is a hash; the
 * key stored INSIDE the file is authoritative and verified on load.
 */
std::string compiledModelFileName(const std::string &key);

/**
 * Read ONLY the envelope (magic + format version) of a compiled-model
 * file - a few bytes, no payload decode. Throws SerializeError on a
 * missing/short file or bad magic; an out-of-date version is NOT an
 * error here (that is what the sweep is for).
 * @return the file's format version.
 */
std::uint32_t peekCompiledModelVersion(const std::string &path);

/** What a cache-directory maintenance pass removed (file counts). */
struct CacheDirReport
{
    std::uint64_t scanned = 0;      ///< .pncm files examined
    std::uint64_t staleVersion = 0; ///< removed: other format version
    std::uint64_t corrupt = 0;      ///< removed: bad magic / unreadable
    std::uint64_t evicted = 0;      ///< removed: size-cap LRU pruning
    std::uint64_t bytesFreed = 0;   ///< total bytes removed
    std::uint64_t bytesKept = 0;    ///< bytes remaining after the pass
};

/**
 * Enforce a size cap on a disk-tier directory: while the total size of
 * its .pncm files exceeds `max_bytes`, remove the least-recently-used
 * one (oldest write/access timestamp - PreparedModelCache refreshes
 * the timestamp on every disk hit). The most recent file is never
 * removed, so a single process's write-back always survives its own
 * prune. (In a directory SHARED by concurrent processes a racing
 * writer or disk hit can out-date an entry between its write and the
 * prune and get it evicted - which costs that process's next cold
 * start a rebuild, nothing else.) max_bytes == 0 means unbounded
 * (no-op). A missing directory is a no-op, never an error.
 */
CacheDirReport pruneCompiledModelDir(const std::string &dir,
                                     std::uint64_t max_bytes);

/**
 * Version-sweep a disk-tier directory: remove every .pncm file whose
 * envelope does not carry the CURRENT format version (stale formats a
 * reader would reject anyway) or whose envelope is unreadable/corrupt.
 * Entries of the current version are left intact. With max_bytes > 0,
 * follows up with pruneCompiledModelDir(). This is the library side of
 * the `panacea_cache_sweep` tool.
 */
CacheDirReport sweepCompiledModelDir(const std::string &dir,
                                     std::uint64_t max_bytes = 0);

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_MODEL_SERIALIZE_H
