#include "serve/operand_cache.h"

#include <cstdlib>
#include <filesystem>

#include "serve/model_serialize.h"
#include "util/logging.h"
#include "util/walltime.h"

namespace panacea {
namespace serve {

std::shared_ptr<const ServedModel>
PreparedModelCache::acquire(const ModelSpec &spec,
                            const ServeModelOptions &opts)
{
    const std::string key = serveModelKey(spec, opts);
    std::promise<std::shared_ptr<const ServedModel>> promise;
    ModelFuture future;
    bool builder = false;
    std::string disk_dir;
    std::uint64_t disk_cap = 0;
    bool allow_mmap = true;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            builder = true;
            disk_dir = diskDir_;
            disk_cap = diskCapBytes_;
            allow_mmap = mmapModels_;
        } else {
            future = it->second;
            ++stats_.hits;
        }
    }

    if (builder) {
        // Build or load outside the lock: only same-key loaders wait
        // (on the future); other keys and the counters stay available.
        // ANY escaping exception must still resolve the future and
        // drop the entry, or every waiter (and every later acquire of
        // this key) would block on a promise nobody will ever fulfil.
        std::shared_ptr<const ServedModel> model;
        std::string path;
        try {
            if (!disk_dir.empty()) {
                path = (std::filesystem::path(disk_dir) /
                        compiledModelFileName(key))
                           .string();
                std::error_code ec;
                if (std::filesystem::exists(path, ec)) {
                    const auto t0 = nowTick();
                    try {
                        model = loadServedModel(path, allow_mmap);
                        // The file stores its own key; a
                        // hash-collision or hand-renamed file for
                        // another model is rejected here, never
                        // silently served.
                        if (model->key() != key) {
                            warn("disk cache file ", path,
                                 " holds key '", model->key(),
                                 "', wanted '", key, "' - rebuilding");
                            model.reset();
                        }
                    } catch (const SerializeError &err) {
                        // Prune, don't just skip: a corrupt file would
                        // otherwise sit in the directory (and count
                        // against the size cap) forever.
                        warn("disk cache file ", path, " unreadable (",
                             err.what(), ") - pruning and rebuilding");
                        std::filesystem::remove(path, ec);
                        model.reset();
                    }
                    if (model != nullptr) {
                        // LRU recency: a hit refreshes the file's
                        // timestamp so eviction prunes genuinely idle
                        // entries first (best-effort).
                        std::filesystem::last_write_time(
                            path, std::filesystem::file_time_type::clock::now(),
                            ec);
                        const double load_ms = msSince(t0);
                        {
                            std::lock_guard<std::mutex> lock(mutex_);
                            ++stats_.diskHits;
                            stats_.loadMsTotal += load_ms;
                            stats_.buildMsSaved += model->buildMs();
                        }
                        promise.set_value(model);
                        return model;
                    }
                }
            }
            model = std::make_shared<const ServedModel>(
                ServedModel::build(spec, opts));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                entries_.erase(key);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.misses;
            stats_.buildMsTotal += model->buildMs();
        }
        // Publish BEFORE the write-back: the model is immutable shared
        // state, so same-key waiters need not stall for a multi-MB
        // disk write.
        promise.set_value(model);
        if (!path.empty()) {
            // Write-through is best-effort: a read-only or full disk
            // costs the next cold start a rebuild, nothing else.
            try {
                std::error_code ec;
                std::filesystem::create_directories(disk_dir, ec);
                saveServedModel(*model, path);
                // Size cap: LRU-prune AFTER the write so the tier
                // never exceeds the cap for longer than one write.
                // The just-written entry is this process's newest and
                // survives its own prune; a CONCURRENT writer to a
                // shared directory can still out-date it and have it
                // evicted, costing only a later rebuild.
                if (disk_cap > 0)
                    pruneCompiledModelDir(disk_dir, disk_cap);
            } catch (const SerializeError &err) {
                warn("disk cache write to ", path, " failed: ",
                     err.what());
            }
        }
        return model;
    }

    std::shared_ptr<const ServedModel> model = future.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.buildMsSaved += model->buildMs();
    }
    return model;
}

void
PreparedModelCache::setDiskDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    diskDir_ = std::move(dir);
}

std::string
PreparedModelCache::diskDir() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskDir_;
}

void
PreparedModelCache::setDiskCapBytes(std::uint64_t max_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    diskCapBytes_ = max_bytes;
}

std::uint64_t
PreparedModelCache::diskCapBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskCapBytes_;
}

void
PreparedModelCache::setMmapModels(bool enable)
{
    std::lock_guard<std::mutex> lock(mutex_);
    mmapModels_ = enable;
}

bool
PreparedModelCache::mmapModels() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mmapModels_;
}

PreparedModelCache::CacheStats
PreparedModelCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
PreparedModelCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
PreparedModelCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    stats_ = CacheStats{};
}

PreparedModelCache &
PreparedModelCache::global()
{
    static PreparedModelCache *cache = [] {
        auto *c = new PreparedModelCache();
        if (const char *dir = std::getenv("PANACEA_CACHE_DIR");
            dir != nullptr && *dir != '\0')
            c->setDiskDir(dir);
        if (const char *mb = std::getenv("PANACEA_CACHE_MAX_MB")) {
            const long v = std::strtol(mb, nullptr, 10);
            if (v > 0)
                c->setDiskCapBytes(static_cast<std::uint64_t>(v) *
                                   1024ull * 1024ull);
        }
        return c;
    }();
    return *cache;
}

} // namespace serve
} // namespace panacea
