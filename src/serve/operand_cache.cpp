#include "serve/operand_cache.h"

namespace panacea {
namespace serve {

std::shared_ptr<const ServedModel>
PreparedModelCache::acquire(const ModelSpec &spec,
                            const ServeModelOptions &opts)
{
    const std::string key = serveModelKey(spec, opts);
    std::promise<std::shared_ptr<const ServedModel>> promise;
    ModelFuture future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            builder = true;
            ++stats_.misses;
        } else {
            future = it->second;
            ++stats_.hits;
        }
    }

    if (builder) {
        // Build outside the lock: only same-key loaders wait (on the
        // future); other keys and the counters stay available.
        auto model = std::make_shared<const ServedModel>(
            ServedModel::build(spec, opts));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stats_.buildMsTotal += model->buildMs();
        }
        promise.set_value(model);
        return model;
    }

    std::shared_ptr<const ServedModel> model = future.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.buildMsSaved += model->buildMs();
    }
    return model;
}

PreparedModelCache::CacheStats
PreparedModelCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
PreparedModelCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
PreparedModelCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    stats_ = CacheStats{};
}

PreparedModelCache &
PreparedModelCache::global()
{
    static PreparedModelCache cache;
    return cache;
}

} // namespace serve
} // namespace panacea
