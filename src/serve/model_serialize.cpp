#include "serve/model_serialize.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <unistd.h>
#include <utility>
#include <vector>

#include "util/fnv.h"

namespace panacea {
namespace serve {

namespace {

constexpr char kMagic[4] = {'P', 'N', 'C', 'M'};

// --- Little-endian writer over a growing byte buffer -------------------

class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }
    void
    u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }
    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }
    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }
    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }
    void
    bytes(const void *data, std::size_t size)
    {
        buf_.append(static_cast<const char *>(data), size);
    }

    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
};

// --- Bounds-checked little-endian reader -------------------------------

class Reader
{
  public:
    Reader(const char *data, std::size_t size) : data_(data), size_(size)
    {}

    std::size_t remaining() const { return size_ - pos_; }
    bool exhausted() const { return pos_ == size_; }

    void
    need(std::size_t n) const
    {
        if (n > remaining())
            throw SerializeError(
                "compiled model truncated: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + ", have " +
                std::to_string(remaining()));
    }

    /** a*b with overflow -> SerializeError (allocation guard). */
    static std::size_t
    checkedMul(std::size_t a, std::size_t b)
    {
        if (b != 0 && a > std::numeric_limits<std::size_t>::max() / b)
            throw SerializeError("compiled model size field overflows");
        return a * b;
    }

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }
    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(
                static_cast<unsigned char>(data_[pos_++]) << (8 * i));
        return v;
    }
    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_++]))
                 << (8 * i);
        return v;
    }
    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_++]))
                 << (8 * i);
        return v;
    }
    std::int32_t
    i32()
    {
        return static_cast<std::int32_t>(u32());
    }
    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }
    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }
    bool
    boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw SerializeError("compiled model bool field holds " +
                                 std::to_string(v));
        return v != 0;
    }
    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(data_ + pos_, n);
        pos_ += n;
        return s;
    }
    void
    bytes(void *dst, std::size_t size)
    {
        need(size);
        std::copy(data_ + pos_, data_ + pos_ + size,
                  static_cast<char *>(dst));
        pos_ += size;
    }

    /** u32 validated against an inclusive enum range. */
    template <typename E>
    E
    enumVal(const char *what, std::uint32_t lo, std::uint32_t hi)
    {
        const std::uint32_t v = u32();
        if (v < lo || v > hi)
            throw SerializeError(std::string("compiled model ") + what +
                                 " enum value " + std::to_string(v) +
                                 " out of [" + std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
        return static_cast<E>(v);
    }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// --- Component writers/readers ----------------------------------------

template <typename T>
void
writeMatrix(Writer &w, const Matrix<T> &m)
{
    w.u64(m.rows());
    w.u64(m.cols());
    w.bytes(m.data().data(), m.size() * sizeof(T));
}

template <typename T>
Matrix<T>
readMatrix(Reader &r)
{
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    const std::size_t elems = Reader::checkedMul(rows, cols);
    r.need(Reader::checkedMul(elems, sizeof(T)));
    Matrix<T> m(rows, cols);
    r.bytes(m.data().data(), elems * sizeof(T));
    return m;
}

void
writeLayerSpec(Writer &w, const LayerSpec &l)
{
    w.str(l.name);
    w.u64(l.m);
    w.u64(l.kDim);
    w.u64(l.nOverride);
    w.u32(static_cast<std::uint32_t>(l.dist));
    w.f64(l.spread);
    w.f64(l.outlierRate);
    w.u64(l.repeat);
    w.i32(l.weightBits);
    w.i32(l.actBits);
    w.f64(l.weightOutlierRate);
}

LayerSpec
readLayerSpec(Reader &r)
{
    LayerSpec l;
    l.name = r.str();
    l.m = r.u64();
    l.kDim = r.u64();
    l.nOverride = r.u64();
    l.dist = r.enumVal<ActDistKind>(
        "ActDistKind", 0,
        static_cast<std::uint32_t>(ActDistKind::ImageNorm));
    l.spread = r.f64();
    l.outlierRate = r.f64();
    l.repeat = r.u64();
    l.weightBits = r.i32();
    l.actBits = r.i32();
    l.weightOutlierRate = r.f64();
    return l;
}

void
writeModelSpec(Writer &w, const ModelSpec &spec)
{
    w.str(spec.name);
    w.u64(spec.seqLen);
    w.boolean(spec.isLlm);
    w.f64(spec.fp16Ppl);
    w.f64(spec.fp32AccPct);
    w.u64(spec.layers.size());
    for (const LayerSpec &l : spec.layers)
        writeLayerSpec(w, l);
}

ModelSpec
readModelSpec(Reader &r)
{
    ModelSpec spec;
    spec.name = r.str();
    spec.seqLen = r.u64();
    spec.isLlm = r.boolean();
    spec.fp16Ppl = r.f64();
    spec.fp32AccPct = r.f64();
    const std::uint64_t layers = r.u64();
    // Each LayerSpec occupies >= 8 bytes (its name length field alone),
    // so this bound rejects absurd counts before any allocation.
    r.need(Reader::checkedMul(layers, 8));
    spec.layers.reserve(layers);
    for (std::uint64_t i = 0; i < layers; ++i)
        spec.layers.push_back(readLayerSpec(r));
    return spec;
}

void
writeServeOptions(Writer &w, const ServeModelOptions &o)
{
    w.i32(o.v);
    w.i32(o.rleIndexBits);
    w.u32(static_cast<std::uint32_t>(o.actSkip));
    w.boolean(o.enableZpm);
    w.boolean(o.enableDbs);
    w.f64(o.dbsTargetMass);
    w.i32(o.weightBitsOverride);
    w.u64(o.seed);
    w.u64(o.calibTokens);
    w.u64(o.maxLayers);
}

ServeModelOptions
readServeOptions(Reader &r)
{
    ServeModelOptions o;
    o.v = r.i32();
    o.rleIndexBits = r.i32();
    o.actSkip = r.enumVal<ActSkipMode>(
        "ActSkipMode", 0, static_cast<std::uint32_t>(ActSkipMode::None));
    o.enableZpm = r.boolean();
    o.enableDbs = r.boolean();
    o.dbsTargetMass = r.f64();
    o.weightBitsOverride = r.i32();
    o.seed = r.u64();
    o.calibTokens = r.u64();
    o.maxLayers = r.u64();
    // The checksum is not a MAC, so semantic bounds matter: v divides
    // shapes all over the restore path (v = 0 would be UB before any
    // kernel guard runs).
    if (o.v <= 0 || o.v > 4096)
        throw SerializeError("compiled model vector length " +
                             std::to_string(o.v) + " out of range");
    if (o.rleIndexBits <= 0 || o.rleIndexBits > 16)
        throw SerializeError("compiled model RLE index width " +
                             std::to_string(o.rleIndexBits) +
                             " out of range");
    return o;
}

void
writePipelineOptions(Writer &w, const AqsPipelineOptions &o)
{
    w.i32(o.weightBits);
    w.i32(o.actBits);
    w.boolean(o.enableZpm);
    w.boolean(o.enableDbs);
    w.boolean(o.histAwareZpm);
    w.f64(o.dbsTargetMass);
    w.u32(static_cast<std::uint32_t>(o.calibPolicy));
    w.f64(o.calibTailPct);
    w.i32(o.gemm.v);
    w.i32(o.gemm.rleIndexBits);
    w.u32(static_cast<std::uint32_t>(o.gemm.actSkip));
    w.boolean(o.gemm.useEq6);
    w.boolean(o.gemm.skipWeightVectors);
}

AqsPipelineOptions
readPipelineOptions(Reader &r)
{
    AqsPipelineOptions o;
    o.weightBits = r.i32();
    o.actBits = r.i32();
    o.enableZpm = r.boolean();
    o.enableDbs = r.boolean();
    o.histAwareZpm = r.boolean();
    o.dbsTargetMass = r.f64();
    o.calibPolicy = r.enumVal<CalibrationPolicy>(
        "CalibrationPolicy", 0,
        static_cast<std::uint32_t>(CalibrationPolicy::Percentile));
    o.calibTailPct = r.f64();
    o.gemm.v = r.i32();
    o.gemm.rleIndexBits = r.i32();
    o.gemm.actSkip = r.enumVal<ActSkipMode>(
        "ActSkipMode", 0, static_cast<std::uint32_t>(ActSkipMode::None));
    o.gemm.useEq6 = r.boolean();
    o.gemm.skipWeightVectors = r.boolean();
    return o;
}

void
writeQuantParams(Writer &w, const QuantParams &p)
{
    w.u32(static_cast<std::uint32_t>(p.scheme));
    w.i32(p.bits);
    w.f64(p.scale);
    w.i32(p.zeroPoint);
}

QuantParams
readQuantParams(Reader &r)
{
    QuantParams p;
    p.scheme = r.enumVal<QuantScheme>(
        "QuantScheme", 0,
        static_cast<std::uint32_t>(QuantScheme::Asymmetric));
    p.bits = r.i32();
    p.scale = r.f64();
    p.zeroPoint = r.i32();
    return p;
}

void
writeDbsDecision(Writer &w, const DbsDecision &d)
{
    w.u32(static_cast<std::uint32_t>(d.type));
    w.i32(d.loBits);
    w.i32(d.zpm.zeroPoint);
    w.i32(d.zpm.frequentSlice);
    w.f64(d.stdTimesZ);
}

DbsDecision
readDbsDecision(Reader &r)
{
    DbsDecision d;
    d.type = r.enumVal<DbsType>(
        "DbsType", static_cast<std::uint32_t>(DbsType::Type1),
        static_cast<std::uint32_t>(DbsType::Type3));
    d.loBits = r.i32();
    d.zpm.zeroPoint = r.i32();
    d.zpm.frequentSlice = r.i32();
    d.stdTimesZ = r.f64();
    return d;
}

void
writeSlicedMatrix(Writer &w, const SlicedMatrix &s)
{
    w.boolean(s.signedSlices);
    w.i32(s.sourceBits);
    w.i32(s.loBits);
    w.u64(s.planes.size());
    for (const SlicePlane &p : s.planes) {
        w.i32(p.shift);
        w.boolean(p.high);
        writeMatrix(w, p.data);
    }
}

SlicedMatrix
readSlicedMatrix(Reader &r)
{
    SlicedMatrix s;
    s.signedSlices = r.boolean();
    s.sourceBits = r.i32();
    s.loBits = r.i32();
    const std::uint64_t planes = r.u64();
    if (planes == 0)
        throw SerializeError("compiled model slice matrix has no planes");
    r.need(Reader::checkedMul(planes, 21)); // fixed bytes per plane
    s.planes.reserve(planes);
    for (std::uint64_t i = 0; i < planes; ++i) {
        SlicePlane p;
        p.shift = r.i32();
        p.high = r.boolean();
        p.data = readMatrix<Slice>(r);
        if (!s.planes.empty() &&
            (p.data.rows() != s.planes.front().data.rows() ||
             p.data.cols() != s.planes.front().data.cols()))
            throw SerializeError(
                "compiled model slice planes disagree on shape");
        s.planes.push_back(std::move(p));
    }
    return s;
}

void
writeRleStream(Writer &w, const RleStream &s)
{
    w.u64(s.totalCount());
    w.u8(static_cast<std::uint8_t>(s.fill()));
    w.i32(s.vlen());
    w.i32(s.indexBits());
    w.u64(s.storedCount());
    for (const RleEntry &e : s.entries()) {
        w.u16(e.skip);
        w.u32(e.vectorIndex);
    }
    for (std::size_t i = 0; i < s.storedCount(); ++i) {
        std::span<const Slice> payload = s.payload(i);
        w.bytes(payload.data(), payload.size() * sizeof(Slice));
    }
}

RleStream
readRleStream(Reader &r)
{
    const std::uint64_t total = r.u64();
    const Slice fill = static_cast<Slice>(r.u8());
    const std::int32_t vlen = r.i32();
    const std::int32_t index_bits = r.i32();
    if (vlen <= 0 || vlen > 4096)
        throw SerializeError("compiled model RLE vlen " +
                             std::to_string(vlen) + " out of range");
    if (index_bits <= 0 || index_bits > 16)
        throw SerializeError("compiled model RLE index bits " +
                             std::to_string(index_bits) + " out of range");
    const std::uint64_t stored = r.u64();
    r.need(Reader::checkedMul(stored, 6)); // entry metadata floor
    std::vector<RleEntry> entries;
    entries.reserve(stored);
    for (std::uint64_t i = 0; i < stored; ++i) {
        RleEntry e;
        e.skip = r.u16();
        e.vectorIndex = r.u32();
        if (e.vectorIndex >= total)
            throw SerializeError("compiled model RLE entry index " +
                                 std::to_string(e.vectorIndex) +
                                 " past sequence end " +
                                 std::to_string(total));
        entries.push_back(e);
    }
    const std::size_t payload_size = Reader::checkedMul(
        stored, static_cast<std::size_t>(vlen));
    r.need(payload_size);
    std::vector<Slice> payloads(payload_size);
    r.bytes(payloads.data(), payload_size * sizeof(Slice));
    return RleStream::restore(std::move(entries), std::move(payloads),
                              total, fill, vlen, index_bits);
}

void
writeWeightOperand(Writer &w, const WeightOperand &op)
{
    writeSlicedMatrix(w, op.sliced);
    writeMatrix(w, op.totalCodes);
    writeMatrix(w, op.hoMask);
    w.u64(op.streams.size());
    for (const RleStream &s : op.streams)
        writeRleStream(w, s);
}

WeightOperand
readWeightOperand(Reader &r)
{
    WeightOperand op;
    op.sliced = readSlicedMatrix(r);
    op.totalCodes = readMatrix<std::int32_t>(r);
    op.hoMask = readMatrix<std::uint8_t>(r);
    const std::uint64_t streams = r.u64();
    r.need(Reader::checkedMul(streams, 24)); // stream header floor
    op.streams.reserve(streams);
    for (std::uint64_t i = 0; i < streams; ++i)
        op.streams.push_back(readRleStream(r));
    return op;
}

AqsLinearLayer
readLayer(Reader &r, int expect_v)
{
    const AqsPipelineOptions opts = readPipelineOptions(r);
    // build() stamps every layer with the model-level vector length;
    // a layer disagreeing with it would make the per-layer counting
    // caches (built with the MODEL v) index past the layer's hoMask.
    if (opts.gemm.v != expect_v)
        throw SerializeError("compiled model layer v " +
                             std::to_string(opts.gemm.v) +
                             " != model v " +
                             std::to_string(expect_v));
    const QuantParams w_params = readQuantParams(r);
    const QuantParams x_params = readQuantParams(r);
    const DbsDecision dbs = readDbsDecision(r);
    WeightOperand op = readWeightOperand(r);
    const std::uint64_t bias_len = r.u64();
    if (bias_len != op.sliced.rows())
        throw SerializeError("compiled model folded bias length " +
                             std::to_string(bias_len) + " != M " +
                             std::to_string(op.sliced.rows()));
    r.need(Reader::checkedMul(bias_len, 8));
    std::vector<std::int64_t> bias(bias_len);
    for (std::uint64_t i = 0; i < bias_len; ++i)
        bias[i] = r.i64();
    // Internal-consistency checks: every structure the kernels index
    // must agree on the layer shape, or a crafted (checksum-valid)
    // file could drive out-of-bounds reads after loading.
    const std::size_t m = op.sliced.rows();
    const std::size_t kk = op.sliced.cols();
    if (opts.gemm.v <= 0 ||
        m % static_cast<std::size_t>(opts.gemm.v) != 0)
        throw SerializeError(
            "compiled model weight rows not divisible by v");
    const std::size_t m_groups =
        m / static_cast<std::size_t>(opts.gemm.v);
    if (op.totalCodes.rows() != m || op.totalCodes.cols() != kk)
        throw SerializeError(
            "compiled model total codes disagree with slice planes");
    if (op.hoMask.rows() != m_groups || op.hoMask.cols() != kk)
        throw SerializeError(
            "compiled model weight HO mask has wrong shape");
    if (op.streams.size() != m_groups)
        throw SerializeError("compiled model weight stream count " +
                             std::to_string(op.streams.size()) +
                             " != m-band count " +
                             std::to_string(m_groups));
    for (const RleStream &s : op.streams)
        if (s.totalCount() != kk || s.vlen() != opts.gemm.v)
            throw SerializeError(
                "compiled model weight stream disagrees with layer "
                "shape");
    return AqsLinearLayer::restore(opts, w_params, x_params, dbs,
                                   std::move(op), std::move(bias));
}

} // namespace

void
writeServedModel(std::ostream &out, const ServedModel &model)
{
    Writer payload;
    payload.str(model.key());
    writeModelSpec(payload, model.spec());
    writeServeOptions(payload, model.options());
    payload.f64(model.buildMs());
    payload.u64(model.layerCount());
    for (std::size_t i = 0; i < model.layerCount(); ++i) {
        const AqsLinearLayer &layer = model.layer(i);
        writePipelineOptions(payload, layer.options());
        writeQuantParams(payload, layer.weightParams());
        writeQuantParams(payload, layer.activationParams());
        writeDbsDecision(payload, layer.dbsDecision());
        writeWeightOperand(payload, layer.weights());
        payload.u64(layer.foldedBias().size());
        for (std::int64_t b : layer.foldedBias())
            payload.i64(b);
    }

    const std::string &body = payload.buffer();
    Writer header;
    header.bytes(kMagic, sizeof(kMagic));
    header.u32(kCompiledModelFormatVersion);
    out.write(header.buffer().data(),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    Writer trailer;
    trailer.u64(fnv1a64(body.data(), body.size()));
    out.write(trailer.buffer().data(),
              static_cast<std::streamsize>(trailer.buffer().size()));
    if (!out)
        throw SerializeError("compiled model write failed");
}

std::shared_ptr<const ServedModel>
readServedModel(std::istream &in)
{
    // Bulk-read seekable streams (files are tens of MB; the
    // char-by-char iterator slurp costs more than the decode);
    // fall back to the iterator for non-seekable sources.
    std::string file;
    in.seekg(0, std::ios::end);
    if (in.good()) {
        const std::streampos end = in.tellg();
        in.seekg(0, std::ios::beg);
        file.resize(static_cast<std::size_t>(end));
        in.read(file.data(), end);
    } else {
        in.clear();
        file.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    if (in.bad())
        throw SerializeError("compiled model read failed");
    constexpr std::size_t kEnvelope = sizeof(kMagic) + 4 + 8;
    if (file.size() < kEnvelope)
        throw SerializeError("compiled model too small (" +
                             std::to_string(file.size()) + " bytes)");
    if (!std::equal(kMagic, kMagic + sizeof(kMagic), file.data()))
        throw SerializeError("compiled model magic mismatch");

    Reader head(file.data() + sizeof(kMagic), 4);
    const std::uint32_t version = head.u32();
    if (version != kCompiledModelFormatVersion)
        throw SerializeError(
            "compiled model format version " + std::to_string(version) +
            " unsupported (expected " +
            std::to_string(kCompiledModelFormatVersion) + ")");

    const char *body = file.data() + sizeof(kMagic) + 4;
    const std::size_t body_size = file.size() - kEnvelope;
    Reader check(file.data() + file.size() - 8, 8);
    const std::uint64_t stored_sum = check.u64();
    if (stored_sum != fnv1a64(body, body_size))
        throw SerializeError("compiled model checksum mismatch");

    Reader r(body, body_size);
    const std::string key = r.str();
    const ModelSpec spec = readModelSpec(r);
    const ServeModelOptions opts = readServeOptions(r);
    const double build_ms = r.f64();

    // The stored key must equal the fingerprint of the decoded
    // spec+options: a body that decodes cleanly but belongs to a
    // different model/configuration is rejected here.
    const std::string derived = serveModelKey(spec, opts);
    if (key != derived)
        throw SerializeError("compiled model fingerprint mismatch: file "
                             "says '" +
                             key + "', body derives '" + derived + "'");

    std::size_t expect_layers = spec.layers.size();
    if (opts.maxLayers != 0 && opts.maxLayers < expect_layers)
        expect_layers = opts.maxLayers;
    const std::uint64_t layer_count = r.u64();
    if (layer_count != expect_layers || layer_count == 0)
        throw SerializeError("compiled model layer count " +
                             std::to_string(layer_count) +
                             " != served count " +
                             std::to_string(expect_layers));
    std::vector<AqsLinearLayer> layers;
    layers.reserve(layer_count);
    for (std::uint64_t i = 0; i < layer_count; ++i)
        layers.push_back(readLayer(r, opts.v));
    if (!r.exhausted())
        throw SerializeError("compiled model has " +
                             std::to_string(r.remaining()) +
                             " trailing payload bytes");

    return std::make_shared<const ServedModel>(
        ServedModel::restore(spec, opts, std::move(layers), build_ms));
}

void
saveServedModel(const ServedModel &model, const std::string &path)
{
    // Per-process temp name: two processes sharing a cache directory
    // can write the same key concurrently; each must stage its own
    // file so the final rename stays atomic.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SerializeError("cannot open " + tmp + " for writing");
        writeServedModel(out, model);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SerializeError("cannot move " + tmp + " to " + path);
    }
}

std::shared_ptr<const ServedModel>
loadServedModel(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open " + path + " for reading");
    return readServedModel(in);
}

std::string
compiledModelFileName(const std::string &key)
{
    const std::uint64_t h = fnv1a64(key.data(), key.size());
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(hex) + kCompiledModelExtension;
}

std::uint32_t
peekCompiledModelVersion(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open " + path + " for reading");
    char envelope[sizeof(kMagic) + 4];
    in.read(envelope, sizeof(envelope));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(envelope)))
        throw SerializeError("compiled model too small (" +
                             std::to_string(in.gcount()) + " bytes)");
    if (!std::equal(kMagic, kMagic + sizeof(kMagic), envelope))
        throw SerializeError("compiled model magic mismatch");
    Reader head(envelope + sizeof(kMagic), 4);
    return head.u32();
}

namespace {

/** One disk-tier entry as the maintenance passes see it. */
struct CacheDirEntry
{
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
};

/** List the .pncm files of `dir` ("" / missing dir -> empty). */
std::vector<CacheDirEntry>
listCacheDir(const std::string &dir)
{
    std::vector<CacheDirEntry> entries;
    if (dir.empty())
        return entries;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return entries;
    for (const auto &de : it) {
        if (!de.is_regular_file(ec))
            continue;
        if (de.path().extension() != kCompiledModelExtension)
            continue;
        CacheDirEntry e;
        e.path = de.path();
        e.bytes = static_cast<std::uint64_t>(de.file_size(ec));
        if (ec)
            continue;
        e.mtime = de.last_write_time(ec);
        if (ec)
            continue;
        entries.push_back(std::move(e));
    }
    return entries;
}

/** LRU prune over an already-listed entry set (shared pass tail). */
void
pruneEntries(std::vector<CacheDirEntry> &entries, std::uint64_t max_bytes,
             CacheDirReport &report)
{
    std::uint64_t total = 0;
    for (const CacheDirEntry &e : entries)
        total += e.bytes;
    if (max_bytes > 0 && total > max_bytes) {
        // Oldest write/access timestamp first; the newest file is
        // never removed (an entry's own write-back must survive).
        std::sort(entries.begin(), entries.end(),
                  [](const CacheDirEntry &a, const CacheDirEntry &b) {
                      return a.mtime < b.mtime;
                  });
        for (std::size_t i = 0;
             i + 1 < entries.size() && total > max_bytes; ++i) {
            std::error_code ec;
            if (!std::filesystem::remove(entries[i].path, ec) || ec)
                continue;
            total -= entries[i].bytes;
            report.bytesFreed += entries[i].bytes;
            entries[i].bytes = 0;
            ++report.evicted;
        }
        entries.erase(std::remove_if(entries.begin(), entries.end(),
                                     [](const CacheDirEntry &e) {
                                         return e.bytes == 0;
                                     }),
                      entries.end());
    }
    report.bytesKept = total;
}

} // namespace

CacheDirReport
pruneCompiledModelDir(const std::string &dir, std::uint64_t max_bytes)
{
    CacheDirReport report;
    std::vector<CacheDirEntry> entries = listCacheDir(dir);
    report.scanned = entries.size();
    pruneEntries(entries, max_bytes, report);
    return report;
}

CacheDirReport
sweepCompiledModelDir(const std::string &dir, std::uint64_t max_bytes)
{
    CacheDirReport report;
    std::vector<CacheDirEntry> entries = listCacheDir(dir);
    report.scanned = entries.size();
    std::vector<CacheDirEntry> kept;
    kept.reserve(entries.size());
    for (CacheDirEntry &e : entries) {
        bool stale = false;
        bool corrupt = false;
        try {
            stale = peekCompiledModelVersion(e.path.string()) !=
                    kCompiledModelFormatVersion;
        } catch (const SerializeError &) {
            corrupt = true;
        }
        if (!stale && !corrupt) {
            kept.push_back(std::move(e));
            continue;
        }
        std::error_code ec;
        if (!std::filesystem::remove(e.path, ec) || ec) {
            kept.push_back(std::move(e));
            continue;
        }
        report.bytesFreed += e.bytes;
        if (stale)
            ++report.staleVersion;
        else
            ++report.corrupt;
    }
    pruneEntries(kept, max_bytes, report);
    return report;
}

} // namespace serve
} // namespace panacea
