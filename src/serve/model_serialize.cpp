#include "serve/model_serialize.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <type_traits>
#include <unistd.h>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/fnv.h"
#include "util/logging.h"
#include "util/mapped_file.h"

namespace panacea {
namespace serve {

namespace {

constexpr char kMagic[4] = {'P', 'N', 'C', 'M'};

// The v2 format stores RleEntry sections as raw entry structs so the
// loader can view them in place. That is only sound while the on-disk
// layout {u16 skip, 2 zero bytes, u32 vectorIndex} IS the in-memory
// layout; these asserts pin it (x86-64, the engine's only target).
// The writer canonicalizes the padding bytes to zero and the reader
// rejects nonzero padding, so files stay byte-deterministic.
static_assert(std::is_trivially_copyable_v<RleEntry>,
              "RleEntry must be raw-viewable");
static_assert(sizeof(RleEntry) == 8, "RleEntry on-disk layout changed");
static_assert(offsetof(RleEntry, skip) == 0,
              "RleEntry on-disk layout changed");
static_assert(offsetof(RleEntry, vectorIndex) == 4,
              "RleEntry on-disk layout changed");
static_assert(sizeof(Slice) == 1, "Slice sections assume 1-byte slices");

// --- Little-endian writer over a growing byte buffer -------------------

class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }
    void
    u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }
    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }
    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }
    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }
    void
    bytes(const void *data, std::size_t size)
    {
        buf_.append(static_cast<const char *>(data), size);
    }

    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
};

// --- Bounds-checked little-endian reader -------------------------------

class Reader
{
  public:
    Reader(const char *data, std::size_t size) : data_(data), size_(size)
    {}

    std::size_t remaining() const { return size_ - pos_; }
    bool exhausted() const { return pos_ == size_; }

    void
    need(std::size_t n) const
    {
        if (n > remaining())
            throw SerializeError(
                "compiled model truncated: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + ", have " +
                std::to_string(remaining()));
    }

    /** a*b with overflow -> SerializeError (allocation guard). */
    static std::size_t
    checkedMul(std::size_t a, std::size_t b)
    {
        if (b != 0 && a > std::numeric_limits<std::size_t>::max() / b)
            throw SerializeError("compiled model size field overflows");
        return a * b;
    }

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }
    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(
                static_cast<unsigned char>(data_[pos_++]) << (8 * i));
        return v;
    }
    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_++]))
                 << (8 * i);
        return v;
    }
    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_++]))
                 << (8 * i);
        return v;
    }
    std::int32_t
    i32()
    {
        return static_cast<std::int32_t>(u32());
    }
    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }
    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }
    bool
    boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw SerializeError("compiled model bool field holds " +
                                 std::to_string(v));
        return v != 0;
    }
    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(data_ + pos_, n);
        pos_ += n;
        return s;
    }
    void
    bytes(void *dst, std::size_t size)
    {
        need(size);
        std::copy(data_ + pos_, data_ + pos_ + size,
                  static_cast<char *>(dst));
        pos_ += size;
    }

    /** u32 validated against an inclusive enum range. */
    template <typename E>
    E
    enumVal(const char *what, std::uint32_t lo, std::uint32_t hi)
    {
        const std::uint32_t v = u32();
        if (v < lo || v > hi)
            throw SerializeError(std::string("compiled model ") + what +
                                 " enum value " + std::to_string(v) +
                                 " out of [" + std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
        return static_cast<E>(v);
    }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// --- Raw little-endian loads/stores (v2 header + directory) ------------

std::uint32_t
loadU32(const std::byte *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(std::to_integer<unsigned>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
loadU64(const std::byte *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(std::to_integer<unsigned>(p[i]))
             << (8 * i);
    return v;
}

void
storeU16(char *p, std::uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void
storeU32(char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void
storeU64(char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

// --- Component writers/readers ----------------------------------------

template <typename T>
void
writeMatrix(Writer &w, const Matrix<T> &m)
{
    w.u64(m.rows());
    w.u64(m.cols());
    w.bytes(m.data().data(), m.size() * sizeof(T));
}

template <typename T>
Matrix<T>
readMatrix(Reader &r)
{
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    const std::size_t elems = Reader::checkedMul(rows, cols);
    r.need(Reader::checkedMul(elems, sizeof(T)));
    Matrix<T> m(rows, cols);
    r.bytes(m.data().data(), elems * sizeof(T));
    return m;
}

void
writeLayerSpec(Writer &w, const LayerSpec &l)
{
    w.str(l.name);
    w.u64(l.m);
    w.u64(l.kDim);
    w.u64(l.nOverride);
    w.u32(static_cast<std::uint32_t>(l.dist));
    w.f64(l.spread);
    w.f64(l.outlierRate);
    w.u64(l.repeat);
    w.i32(l.weightBits);
    w.i32(l.actBits);
    w.f64(l.weightOutlierRate);
}

LayerSpec
readLayerSpec(Reader &r)
{
    LayerSpec l;
    l.name = r.str();
    l.m = r.u64();
    l.kDim = r.u64();
    l.nOverride = r.u64();
    l.dist = r.enumVal<ActDistKind>(
        "ActDistKind", 0,
        static_cast<std::uint32_t>(ActDistKind::ImageNorm));
    l.spread = r.f64();
    l.outlierRate = r.f64();
    l.repeat = r.u64();
    l.weightBits = r.i32();
    l.actBits = r.i32();
    l.weightOutlierRate = r.f64();
    return l;
}

void
writeModelSpec(Writer &w, const ModelSpec &spec)
{
    w.str(spec.name);
    w.u64(spec.seqLen);
    w.boolean(spec.isLlm);
    w.f64(spec.fp16Ppl);
    w.f64(spec.fp32AccPct);
    w.u64(spec.layers.size());
    for (const LayerSpec &l : spec.layers)
        writeLayerSpec(w, l);
}

ModelSpec
readModelSpec(Reader &r)
{
    ModelSpec spec;
    spec.name = r.str();
    spec.seqLen = r.u64();
    spec.isLlm = r.boolean();
    spec.fp16Ppl = r.f64();
    spec.fp32AccPct = r.f64();
    const std::uint64_t layers = r.u64();
    // Each LayerSpec occupies >= 8 bytes (its name length field alone),
    // so this bound rejects absurd counts before any allocation.
    r.need(Reader::checkedMul(layers, 8));
    spec.layers.reserve(layers);
    for (std::uint64_t i = 0; i < layers; ++i)
        spec.layers.push_back(readLayerSpec(r));
    return spec;
}

void
writeServeOptions(Writer &w, const ServeModelOptions &o)
{
    w.i32(o.v);
    w.i32(o.rleIndexBits);
    w.u32(static_cast<std::uint32_t>(o.actSkip));
    w.boolean(o.enableZpm);
    w.boolean(o.enableDbs);
    w.f64(o.dbsTargetMass);
    w.i32(o.weightBitsOverride);
    w.u64(o.seed);
    w.u64(o.calibTokens);
    w.u64(o.maxLayers);
}

ServeModelOptions
readServeOptions(Reader &r)
{
    ServeModelOptions o;
    o.v = r.i32();
    o.rleIndexBits = r.i32();
    o.actSkip = r.enumVal<ActSkipMode>(
        "ActSkipMode", 0, static_cast<std::uint32_t>(ActSkipMode::None));
    o.enableZpm = r.boolean();
    o.enableDbs = r.boolean();
    o.dbsTargetMass = r.f64();
    o.weightBitsOverride = r.i32();
    o.seed = r.u64();
    o.calibTokens = r.u64();
    o.maxLayers = r.u64();
    // The checksum is not a MAC, so semantic bounds matter: v divides
    // shapes all over the restore path (v = 0 would be UB before any
    // kernel guard runs).
    if (o.v <= 0 || o.v > 4096)
        throw SerializeError("compiled model vector length " +
                             std::to_string(o.v) + " out of range");
    if (o.rleIndexBits <= 0 || o.rleIndexBits > 16)
        throw SerializeError("compiled model RLE index width " +
                             std::to_string(o.rleIndexBits) +
                             " out of range");
    return o;
}

void
writePipelineOptions(Writer &w, const AqsPipelineOptions &o)
{
    w.i32(o.weightBits);
    w.i32(o.actBits);
    w.boolean(o.enableZpm);
    w.boolean(o.enableDbs);
    w.boolean(o.histAwareZpm);
    w.f64(o.dbsTargetMass);
    w.u32(static_cast<std::uint32_t>(o.calibPolicy));
    w.f64(o.calibTailPct);
    w.i32(o.gemm.v);
    w.i32(o.gemm.rleIndexBits);
    w.u32(static_cast<std::uint32_t>(o.gemm.actSkip));
    w.boolean(o.gemm.useEq6);
    w.boolean(o.gemm.skipWeightVectors);
}

AqsPipelineOptions
readPipelineOptions(Reader &r)
{
    AqsPipelineOptions o;
    o.weightBits = r.i32();
    o.actBits = r.i32();
    o.enableZpm = r.boolean();
    o.enableDbs = r.boolean();
    o.histAwareZpm = r.boolean();
    o.dbsTargetMass = r.f64();
    o.calibPolicy = r.enumVal<CalibrationPolicy>(
        "CalibrationPolicy", 0,
        static_cast<std::uint32_t>(CalibrationPolicy::Percentile));
    o.calibTailPct = r.f64();
    o.gemm.v = r.i32();
    o.gemm.rleIndexBits = r.i32();
    o.gemm.actSkip = r.enumVal<ActSkipMode>(
        "ActSkipMode", 0, static_cast<std::uint32_t>(ActSkipMode::None));
    o.gemm.useEq6 = r.boolean();
    o.gemm.skipWeightVectors = r.boolean();
    return o;
}

void
writeQuantParams(Writer &w, const QuantParams &p)
{
    w.u32(static_cast<std::uint32_t>(p.scheme));
    w.i32(p.bits);
    w.f64(p.scale);
    w.i32(p.zeroPoint);
}

QuantParams
readQuantParams(Reader &r)
{
    QuantParams p;
    p.scheme = r.enumVal<QuantScheme>(
        "QuantScheme", 0,
        static_cast<std::uint32_t>(QuantScheme::Asymmetric));
    p.bits = r.i32();
    p.scale = r.f64();
    p.zeroPoint = r.i32();
    return p;
}

void
writeDbsDecision(Writer &w, const DbsDecision &d)
{
    w.u32(static_cast<std::uint32_t>(d.type));
    w.i32(d.loBits);
    w.i32(d.zpm.zeroPoint);
    w.i32(d.zpm.frequentSlice);
    w.f64(d.stdTimesZ);
}

DbsDecision
readDbsDecision(Reader &r)
{
    DbsDecision d;
    d.type = r.enumVal<DbsType>(
        "DbsType", static_cast<std::uint32_t>(DbsType::Type1),
        static_cast<std::uint32_t>(DbsType::Type3));
    d.loBits = r.i32();
    d.zpm.zeroPoint = r.i32();
    d.zpm.frequentSlice = r.i32();
    d.stdTimesZ = r.f64();
    return d;
}

/**
 * Internal-consistency checks shared by both format readers: every
 * structure the kernels index must agree on the layer shape, or a
 * crafted (checksum-valid) file could drive out-of-bounds reads after
 * loading.
 */
void
validateLayerShapes(const WeightOperand &op, const AqsPipelineOptions &opts,
                    std::uint64_t bias_len)
{
    if (bias_len != op.sliced.rows())
        throw SerializeError("compiled model folded bias length " +
                             std::to_string(bias_len) + " != M " +
                             std::to_string(op.sliced.rows()));
    const std::size_t m = op.sliced.rows();
    const std::size_t kk = op.sliced.cols();
    if (opts.gemm.v <= 0 ||
        m % static_cast<std::size_t>(opts.gemm.v) != 0)
        throw SerializeError(
            "compiled model weight rows not divisible by v");
    const std::size_t m_groups =
        m / static_cast<std::size_t>(opts.gemm.v);
    if (op.totalCodes.rows() != m || op.totalCodes.cols() != kk)
        throw SerializeError(
            "compiled model total codes disagree with slice planes");
    if (op.hoMask.rows() != m_groups || op.hoMask.cols() != kk)
        throw SerializeError(
            "compiled model weight HO mask has wrong shape");
    if (op.streams.size() != m_groups)
        throw SerializeError("compiled model weight stream count " +
                             std::to_string(op.streams.size()) +
                             " != m-band count " +
                             std::to_string(m_groups));
    for (const RleStream &s : op.streams)
        if (s.totalCount() != kk || s.vlen() != opts.gemm.v)
            throw SerializeError(
                "compiled model weight stream disagrees with layer "
                "shape");
}

// --- v1 (legacy) bulk payload encode/decode ----------------------------

void
writeSlicedMatrix(Writer &w, const SlicedMatrix &s)
{
    w.boolean(s.signedSlices);
    w.i32(s.sourceBits);
    w.i32(s.loBits);
    w.u64(s.planes.size());
    for (const SlicePlane &p : s.planes) {
        w.i32(p.shift);
        w.boolean(p.high);
        writeMatrix(w, p.data);
    }
}

SlicedMatrix
readSlicedMatrix(Reader &r)
{
    SlicedMatrix s;
    s.signedSlices = r.boolean();
    s.sourceBits = r.i32();
    s.loBits = r.i32();
    const std::uint64_t planes = r.u64();
    if (planes == 0)
        throw SerializeError("compiled model slice matrix has no planes");
    r.need(Reader::checkedMul(planes, 21)); // fixed bytes per plane
    s.planes.reserve(planes);
    for (std::uint64_t i = 0; i < planes; ++i) {
        SlicePlane p;
        p.shift = r.i32();
        p.high = r.boolean();
        p.data = readMatrix<Slice>(r);
        if (!s.planes.empty() &&
            (p.data.rows() != s.planes.front().data.rows() ||
             p.data.cols() != s.planes.front().data.cols()))
            throw SerializeError(
                "compiled model slice planes disagree on shape");
        s.planes.push_back(std::move(p));
    }
    return s;
}

void
writeRleStream(Writer &w, const RleStream &s)
{
    w.u64(s.totalCount());
    w.u8(static_cast<std::uint8_t>(s.fill()));
    w.i32(s.vlen());
    w.i32(s.indexBits());
    w.u64(s.storedCount());
    for (const RleEntry &e : s.entries()) {
        w.u16(e.skip);
        w.u32(e.vectorIndex);
    }
    for (std::size_t i = 0; i < s.storedCount(); ++i) {
        std::span<const Slice> payload = s.payload(i);
        w.bytes(payload.data(), payload.size() * sizeof(Slice));
    }
}

RleStream
readRleStream(Reader &r)
{
    const std::uint64_t total = r.u64();
    const Slice fill = static_cast<Slice>(r.u8());
    const std::int32_t vlen = r.i32();
    const std::int32_t index_bits = r.i32();
    if (vlen <= 0 || vlen > 4096)
        throw SerializeError("compiled model RLE vlen " +
                             std::to_string(vlen) + " out of range");
    if (index_bits <= 0 || index_bits > 16)
        throw SerializeError("compiled model RLE index bits " +
                             std::to_string(index_bits) + " out of range");
    const std::uint64_t stored = r.u64();
    r.need(Reader::checkedMul(stored, 6)); // entry metadata floor
    std::vector<RleEntry> entries;
    entries.reserve(stored);
    for (std::uint64_t i = 0; i < stored; ++i) {
        RleEntry e;
        e.skip = r.u16();
        e.vectorIndex = r.u32();
        if (e.vectorIndex >= total)
            throw SerializeError("compiled model RLE entry index " +
                                 std::to_string(e.vectorIndex) +
                                 " past sequence end " +
                                 std::to_string(total));
        entries.push_back(e);
    }
    const std::size_t payload_size = Reader::checkedMul(
        stored, static_cast<std::size_t>(vlen));
    r.need(payload_size);
    std::vector<Slice> payloads(payload_size);
    r.bytes(payloads.data(), payload_size * sizeof(Slice));
    return RleStream::restore(std::move(entries), std::move(payloads),
                              total, fill, vlen, index_bits);
}

void
writeWeightOperand(Writer &w, const WeightOperand &op)
{
    writeSlicedMatrix(w, op.sliced);
    writeMatrix(w, op.totalCodes);
    writeMatrix(w, op.hoMask);
    w.u64(op.streams.size());
    for (const RleStream &s : op.streams)
        writeRleStream(w, s);
}

WeightOperand
readWeightOperand(Reader &r)
{
    WeightOperand op;
    op.sliced = readSlicedMatrix(r);
    op.totalCodes = readMatrix<std::int32_t>(r);
    op.hoMask = readMatrix<std::uint8_t>(r);
    const std::uint64_t streams = r.u64();
    r.need(Reader::checkedMul(streams, 24)); // stream header floor
    op.streams.reserve(streams);
    for (std::uint64_t i = 0; i < streams; ++i)
        op.streams.push_back(readRleStream(r));
    return op;
}

AqsLinearLayer
readLayerV1(Reader &r, int expect_v)
{
    const AqsPipelineOptions opts = readPipelineOptions(r);
    // build() stamps every layer with the model-level vector length;
    // a layer disagreeing with it would make the per-layer counting
    // caches (built with the MODEL v) index past the layer's hoMask.
    if (opts.gemm.v != expect_v)
        throw SerializeError("compiled model layer v " +
                             std::to_string(opts.gemm.v) +
                             " != model v " +
                             std::to_string(expect_v));
    const QuantParams w_params = readQuantParams(r);
    const QuantParams x_params = readQuantParams(r);
    const DbsDecision dbs = readDbsDecision(r);
    WeightOperand op = readWeightOperand(r);
    const std::uint64_t bias_len = r.u64();
    r.need(Reader::checkedMul(bias_len, 8));
    std::vector<std::int64_t> bias(bias_len);
    for (std::uint64_t i = 0; i < bias_len; ++i)
        bias[i] = r.i64();
    validateLayerShapes(op, opts, bias_len);
    return AqsLinearLayer::restore(opts, w_params, x_params, dbs,
                                   std::move(op), std::move(bias));
}

/** The v1 payload: one scalar stream, everything copied. */
void
writeServedModelV1(std::ostream &out, const ServedModel &model)
{
    Writer payload;
    payload.str(model.key());
    writeModelSpec(payload, model.spec());
    writeServeOptions(payload, model.options());
    payload.f64(model.buildMs());
    payload.u64(model.layerCount());
    for (std::size_t i = 0; i < model.layerCount(); ++i) {
        const AqsLinearLayer &layer = model.layer(i);
        writePipelineOptions(payload, layer.options());
        writeQuantParams(payload, layer.weightParams());
        writeQuantParams(payload, layer.activationParams());
        writeDbsDecision(payload, layer.dbsDecision());
        writeWeightOperand(payload, layer.weights());
        payload.u64(layer.foldedBias().size());
        for (std::int64_t b : layer.foldedBias())
            payload.i64(b);
    }

    const std::string &body = payload.buffer();
    Writer header;
    header.bytes(kMagic, sizeof(kMagic));
    header.u32(kCompiledModelLegacyFormatVersion);
    out.write(header.buffer().data(),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    Writer trailer;
    trailer.u64(fnv1a64(body.data(), body.size()));
    out.write(trailer.buffer().data(),
              static_cast<std::streamsize>(trailer.buffer().size()));
    if (!out)
        throw SerializeError("compiled model write failed");
}

/** Shared model-level decode head: key/spec/options + fingerprint. */
struct ModelHead
{
    std::string key;
    ModelSpec spec;
    ServeModelOptions opts;
    double buildMs = 0.0;
    std::uint64_t layerCount = 0;
};

ModelHead
readModelHead(Reader &r)
{
    ModelHead head;
    head.key = r.str();
    head.spec = readModelSpec(r);
    head.opts = readServeOptions(r);
    head.buildMs = r.f64();

    // The stored key must equal the fingerprint of the decoded
    // spec+options: a body that decodes cleanly but belongs to a
    // different model/configuration is rejected here.
    const std::string derived = serveModelKey(head.spec, head.opts);
    if (head.key != derived)
        throw SerializeError("compiled model fingerprint mismatch: file "
                             "says '" +
                             head.key + "', body derives '" + derived +
                             "'");

    std::size_t expect_layers = head.spec.layers.size();
    if (head.opts.maxLayers != 0 && head.opts.maxLayers < expect_layers)
        expect_layers = head.opts.maxLayers;
    head.layerCount = r.u64();
    if (head.layerCount != expect_layers || head.layerCount == 0)
        throw SerializeError("compiled model layer count " +
                             std::to_string(head.layerCount) +
                             " != served count " +
                             std::to_string(expect_layers));
    return head;
}

/** Decode a whole v1 file image (envelope + payload + trailer). */
std::shared_ptr<const ServedModel>
decodeV1(const std::byte *data, std::size_t size)
{
    constexpr std::size_t kEnvelope = sizeof(kMagic) + 4 + 8;
    if (size < kEnvelope)
        throw SerializeError("compiled model too small (" +
                             std::to_string(size) + " bytes)");
    const char *body =
        reinterpret_cast<const char *>(data) + sizeof(kMagic) + 4;
    const std::size_t body_size = size - kEnvelope;
    Reader check(reinterpret_cast<const char *>(data) + size - 8, 8);
    const std::uint64_t stored_sum = check.u64();
    if (stored_sum != fnv1a64(body, body_size))
        throw SerializeError("compiled model checksum mismatch");

    Reader r(body, body_size);
    const ModelHead head = readModelHead(r);
    std::vector<AqsLinearLayer> layers;
    layers.reserve(head.layerCount);
    for (std::uint64_t i = 0; i < head.layerCount; ++i)
        layers.push_back(readLayerV1(r, head.opts.v));
    if (!r.exhausted())
        throw SerializeError("compiled model has " +
                             std::to_string(r.remaining()) +
                             " trailing payload bytes");

    return std::make_shared<const ServedModel>(ServedModel::restore(
        head.spec, head.opts, std::move(layers), head.buildMs));
}

// --- v2 (sectioned, zero-copy) encode/decode ---------------------------

constexpr std::size_t kV2HeaderBytes = 32; ///< magic..sectionCount
constexpr std::size_t kSectionsPerLayer = 6;
constexpr std::uint64_t kV2ChecksumFrom = 24; ///< sectionCount onward

std::uint64_t
alignUp64(std::uint64_t x)
{
    return (x + (kArenaAlignment - 1)) & ~(kArenaAlignment - 1);
}

/** One directory record: where a section's bytes live in the file. */
struct SectionRange
{
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
};

/** Per-layer bulk payload byte counts (writer-side layout planning). */
struct LayerBulkSizes
{
    std::uint64_t planes = 0;
    std::uint64_t codes = 0;
    std::uint64_t mask = 0;
    std::uint64_t entries = 0;
    std::uint64_t payloads = 0;
    std::uint64_t bias = 0;
    std::uint64_t stored = 0; ///< total entries across streams
};

void
writeServedModelV2(std::ostream &out, const ServedModel &model)
{
    const std::size_t layer_count = model.layerCount();
    const std::uint64_t section_count =
        1 + kSectionsPerLayer * layer_count;

    std::vector<LayerBulkSizes> bulk(layer_count);
    for (std::size_t i = 0; i < layer_count; ++i) {
        const WeightOperand &op = model.layer(i).weights();
        LayerBulkSizes &b = bulk[i];
        const std::uint64_t elems =
            static_cast<std::uint64_t>(op.sliced.rows()) *
            op.sliced.cols();
        b.planes = elems * op.sliced.levels() * sizeof(Slice);
        b.codes = elems * sizeof(std::int32_t);
        b.mask = static_cast<std::uint64_t>(op.hoMask.rows()) *
                 op.hoMask.cols();
        for (const RleStream &s : op.streams) {
            b.stored += s.storedCount();
            b.payloads += s.payloads().size();
        }
        b.entries = b.stored * sizeof(RleEntry);
        b.bias = model.layer(i).foldedBias().size() *
                 sizeof(std::int64_t);
    }

    // META: the scalar stream. Bulk payloads are referenced by section
    // index; with canonical ordering, layer i's sections start at
    // 1 + 6*i.
    Writer meta;
    meta.str(model.key());
    writeModelSpec(meta, model.spec());
    writeServeOptions(meta, model.options());
    meta.f64(model.buildMs());
    meta.u64(layer_count);
    for (std::size_t i = 0; i < layer_count; ++i) {
        const AqsLinearLayer &layer = model.layer(i);
        const WeightOperand &op = layer.weights();
        const std::uint64_t base = 1 + kSectionsPerLayer * i;
        writePipelineOptions(meta, layer.options());
        writeQuantParams(meta, layer.weightParams());
        writeQuantParams(meta, layer.activationParams());
        writeDbsDecision(meta, layer.dbsDecision());
        meta.boolean(op.sliced.signedSlices);
        meta.i32(op.sliced.sourceBits);
        meta.i32(op.sliced.loBits);
        meta.u64(op.sliced.planes.size());
        meta.u64(op.sliced.rows());
        meta.u64(op.sliced.cols());
        for (const SlicePlane &p : op.sliced.planes) {
            meta.i32(p.shift);
            meta.boolean(p.high);
        }
        meta.u64(base + 0);
        meta.u64(op.totalCodes.rows());
        meta.u64(op.totalCodes.cols());
        meta.u64(base + 1);
        meta.u64(op.hoMask.rows());
        meta.u64(op.hoMask.cols());
        meta.u64(base + 2);
        meta.u64(op.streams.size());
        for (const RleStream &s : op.streams) {
            meta.u64(s.totalCount());
            meta.u8(static_cast<std::uint8_t>(s.fill()));
            meta.i32(s.vlen());
            meta.i32(s.indexBits());
            meta.u64(s.storedCount());
        }
        meta.u64(base + 3);
        meta.u64(base + 4);
        meta.u64(layer.foldedBias().size());
        meta.u64(base + 5);
    }

    // Lay the sections out: directory right after the header, every
    // section 64-byte aligned, gaps zero (the whole buffer starts
    // zeroed and only payload bytes are written).
    std::vector<SectionRange> sections(section_count);
    std::uint64_t cursor = kV2HeaderBytes + section_count * 16;
    const auto place = [&](std::uint64_t idx, std::uint64_t size) {
        cursor = alignUp64(cursor);
        sections[idx] = {cursor, size};
        cursor += size;
    };
    place(0, meta.buffer().size());
    for (std::size_t i = 0; i < layer_count; ++i) {
        const std::uint64_t base = 1 + kSectionsPerLayer * i;
        place(base + 0, bulk[i].planes);
        place(base + 1, bulk[i].codes);
        place(base + 2, bulk[i].mask);
        place(base + 3, bulk[i].entries);
        place(base + 4, bulk[i].payloads);
        place(base + 5, bulk[i].bias);
    }
    const std::uint64_t file_size = cursor;

    std::string buf(file_size, '\0');
    std::memcpy(buf.data(), kMagic, sizeof(kMagic));
    storeU32(buf.data() + 4, kCompiledModelFormatVersion);
    storeU64(buf.data() + 8, file_size);
    // checksum at offset 16 is patched last
    storeU64(buf.data() + 24, section_count);
    for (std::uint64_t s = 0; s < section_count; ++s) {
        storeU64(buf.data() + kV2HeaderBytes + 16 * s,
                 sections[s].offset);
        storeU64(buf.data() + kV2HeaderBytes + 16 * s + 8,
                 sections[s].size);
    }
    std::memcpy(buf.data() + sections[0].offset, meta.buffer().data(),
                meta.buffer().size());
    for (std::size_t i = 0; i < layer_count; ++i) {
        const WeightOperand &op = model.layer(i).weights();
        const std::uint64_t base = 1 + kSectionsPerLayer * i;

        char *p = buf.data() + sections[base + 0].offset;
        for (const SlicePlane &plane : op.sliced.planes) {
            std::memcpy(p, plane.data.data().data(),
                        plane.data.size() * sizeof(Slice));
            p += plane.data.size() * sizeof(Slice);
        }
        std::memcpy(buf.data() + sections[base + 1].offset,
                    op.totalCodes.data().data(),
                    op.totalCodes.size() * sizeof(std::int32_t));
        std::memcpy(buf.data() + sections[base + 2].offset,
                    op.hoMask.data().data(), op.hoMask.size());

        // Entries are written field-by-field so the two struct padding
        // bytes are canonically zero whatever the in-memory garbage.
        p = buf.data() + sections[base + 3].offset;
        char *q = buf.data() + sections[base + 4].offset;
        for (const RleStream &s : op.streams) {
            for (const RleEntry &e : s.entries()) {
                storeU16(p, e.skip);
                storeU16(p + 2, 0);
                storeU32(p + 4, e.vectorIndex);
                p += sizeof(RleEntry);
            }
            std::memcpy(q, s.payloads().data(), s.payloads().size());
            q += s.payloads().size();
        }

        const std::span<const std::int64_t> bias =
            model.layer(i).foldedBias();
        std::memcpy(buf.data() + sections[base + 5].offset, bias.data(),
                    bias.size() * sizeof(std::int64_t));
    }

    storeU64(buf.data() + 16,
             fnv1a64Striped(buf.data() + kV2ChecksumFrom,
                            file_size - kV2ChecksumFrom));

    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out)
        throw SerializeError("compiled model write failed");
}

/**
 * Decode a whole v2 file image IN PLACE: every validation (declared
 * size, striped checksum, directory bounds/alignment, shapes, RLE
 * chains and padding) runs before a single view is created, and the
 * views the model keeps point into `data` - which `owner` (a
 * MappedFile or an arena-held copy) must keep alive.
 */
std::shared_ptr<const ServedModel>
decodeV2(const std::byte *data, std::size_t size,
         std::shared_ptr<const void> owner, std::size_t mapped_bytes)
{
    if (size < kV2HeaderBytes)
        throw SerializeError("compiled model too small (" +
                             std::to_string(size) + " bytes)");
    const std::uint64_t declared = loadU64(data + 8);
    if (declared != size)
        throw SerializeError(
            "compiled model declared size " + std::to_string(declared) +
            " != actual size " + std::to_string(size) +
            " (truncated or trailing bytes)");
    const std::uint64_t section_count = loadU64(data + 24);
    if (section_count == 0 ||
        section_count > (size - kV2HeaderBytes) / 16)
        throw SerializeError("compiled model section count " +
                             std::to_string(section_count) +
                             " exceeds file");
    if (loadU64(data + 16) !=
        fnv1a64Striped(data + kV2ChecksumFrom, size - kV2ChecksumFrom))
        throw SerializeError("compiled model checksum mismatch");

    // Directory: 64-byte aligned, in-bounds, ascending, non-overlapping.
    std::vector<SectionRange> sections(section_count);
    std::uint64_t prev_end = kV2HeaderBytes + section_count * 16;
    for (std::uint64_t s = 0; s < section_count; ++s) {
        SectionRange &sec = sections[s];
        sec.offset = loadU64(data + kV2HeaderBytes + 16 * s);
        sec.size = loadU64(data + kV2HeaderBytes + 16 * s + 8);
        if (sec.offset % kArenaAlignment != 0)
            throw SerializeError("compiled model section " +
                                 std::to_string(s) +
                                 " offset not 64-byte aligned");
        if (sec.offset < prev_end || sec.size > size ||
            sec.offset > size - sec.size)
            throw SerializeError("compiled model section " +
                                 std::to_string(s) + " out of bounds");
        prev_end = sec.offset + sec.size;
    }
    if (prev_end != size)
        throw SerializeError("compiled model has " +
                             std::to_string(size - prev_end) +
                             " trailing payload bytes");

    const auto sectionAt = [&](std::uint64_t idx,
                               const char *what) -> const SectionRange & {
        if (idx >= section_count)
            throw SerializeError(std::string("compiled model ") + what +
                                 " section index " + std::to_string(idx) +
                                 " out of range");
        return sections[idx];
    };

    Reader r(reinterpret_cast<const char *>(data) + sections[0].offset,
             sections[0].size);
    const ModelHead head = readModelHead(r);
    if (section_count != 1 + kSectionsPerLayer * head.layerCount)
        throw SerializeError("compiled model section count " +
                             std::to_string(section_count) +
                             " != 1 + 6 x layer count " +
                             std::to_string(head.layerCount));

    std::vector<AqsLinearLayer> layers;
    layers.reserve(head.layerCount);
    for (std::uint64_t li = 0; li < head.layerCount; ++li) {
        const AqsPipelineOptions opts = readPipelineOptions(r);
        if (opts.gemm.v != head.opts.v)
            throw SerializeError("compiled model layer v " +
                                 std::to_string(opts.gemm.v) +
                                 " != model v " +
                                 std::to_string(head.opts.v));
        const QuantParams w_params = readQuantParams(r);
        const QuantParams x_params = readQuantParams(r);
        const DbsDecision dbs = readDbsDecision(r);

        WeightOperand op;
        op.sliced.signedSlices = r.boolean();
        op.sliced.sourceBits = r.i32();
        op.sliced.loBits = r.i32();
        const std::uint64_t plane_count = r.u64();
        const std::uint64_t rows = r.u64();
        const std::uint64_t cols = r.u64();
        if (plane_count == 0)
            throw SerializeError(
                "compiled model slice matrix has no planes");
        const std::size_t plane_elems = Reader::checkedMul(rows, cols);
        struct PlaneHead
        {
            std::int32_t shift;
            bool high;
        };
        std::vector<PlaneHead> plane_heads;
        r.need(Reader::checkedMul(plane_count, 5));
        plane_heads.reserve(plane_count);
        for (std::uint64_t p = 0; p < plane_count; ++p)
            plane_heads.push_back({r.i32(), r.boolean()});
        const SectionRange &planes_sec =
            sectionAt(r.u64(), "slice planes");
        if (planes_sec.size !=
            Reader::checkedMul(plane_elems, plane_count))
            throw SerializeError(
                "compiled model slice plane section size mismatch");

        const std::uint64_t codes_rows = r.u64();
        const std::uint64_t codes_cols = r.u64();
        const SectionRange &codes_sec = sectionAt(r.u64(), "total codes");
        if (codes_sec.size !=
            Reader::checkedMul(Reader::checkedMul(codes_rows, codes_cols),
                               sizeof(std::int32_t)))
            throw SerializeError(
                "compiled model total codes section size mismatch");

        const std::uint64_t mask_rows = r.u64();
        const std::uint64_t mask_cols = r.u64();
        const SectionRange &mask_sec = sectionAt(r.u64(), "HO mask");
        if (mask_sec.size != Reader::checkedMul(mask_rows, mask_cols))
            throw SerializeError(
                "compiled model HO mask section size mismatch");

        const std::uint64_t stream_count = r.u64();
        struct StreamHead
        {
            std::uint64_t total;
            Slice fill;
            std::int32_t vlen;
            std::int32_t indexBits;
            std::uint64_t stored;
        };
        std::vector<StreamHead> stream_heads;
        r.need(Reader::checkedMul(stream_count, 25));
        stream_heads.reserve(stream_count);
        std::uint64_t total_stored = 0;
        std::uint64_t total_payload = 0;
        for (std::uint64_t s = 0; s < stream_count; ++s) {
            StreamHead h;
            h.total = r.u64();
            h.fill = static_cast<Slice>(r.u8());
            h.vlen = r.i32();
            h.indexBits = r.i32();
            h.stored = r.u64();
            if (h.vlen <= 0 || h.vlen > 4096)
                throw SerializeError("compiled model RLE vlen " +
                                     std::to_string(h.vlen) +
                                     " out of range");
            if (h.indexBits <= 0 || h.indexBits > 16)
                throw SerializeError("compiled model RLE index bits " +
                                     std::to_string(h.indexBits) +
                                     " out of range");
            if (h.stored > h.total)
                throw SerializeError(
                    "compiled model RLE stored count exceeds sequence");
            total_stored += h.stored;
            total_payload += Reader::checkedMul(
                h.stored, static_cast<std::size_t>(h.vlen));
            stream_heads.push_back(h);
        }
        const SectionRange &entries_sec =
            sectionAt(r.u64(), "RLE entries");
        if (entries_sec.size !=
            Reader::checkedMul(total_stored, sizeof(RleEntry)))
            throw SerializeError(
                "compiled model RLE entry section size mismatch");
        const SectionRange &payloads_sec =
            sectionAt(r.u64(), "RLE payloads");
        if (payloads_sec.size != total_payload)
            throw SerializeError(
                "compiled model RLE payload section size mismatch");

        const std::uint64_t bias_len = r.u64();
        const SectionRange &bias_sec = sectionAt(r.u64(), "folded bias");
        if (bias_sec.size !=
            Reader::checkedMul(bias_len, sizeof(std::int64_t)))
            throw SerializeError(
                "compiled model folded bias section size mismatch");

        // Validate the RLE entry chains (and the canonical zero
        // padding) BEFORE any views exist: the kernels iterate entries
        // without re-checking, and decode() panics - not throws - on a
        // broken chain.
        const std::byte *ebytes = data + entries_sec.offset;
        {
            std::uint64_t e_at = 0;
            for (const StreamHead &h : stream_heads) {
                std::uint64_t cursor = 0;
                for (std::uint64_t j = 0; j < h.stored; ++j) {
                    const std::byte *e =
                        ebytes + (e_at + j) * sizeof(RleEntry);
                    const std::uint16_t skip =
                        static_cast<std::uint16_t>(loadU32(e) & 0xffff);
                    if ((loadU32(e) >> 16) != 0)
                        throw SerializeError(
                            "compiled model RLE entry padding not zero");
                    const std::uint32_t index = loadU32(e + 4);
                    cursor += skip;
                    if (cursor != index || cursor >= h.total)
                        throw SerializeError(
                            "compiled model RLE entry chain broken");
                    ++cursor;
                }
                e_at += h.stored;
            }
        }

        // All bytes validated - build the views.
        const auto *plane_base = reinterpret_cast<const Slice *>(
            data + planes_sec.offset);
        op.sliced.planes.reserve(plane_count);
        for (std::uint64_t p = 0; p < plane_count; ++p) {
            SlicePlane plane;
            plane.shift = plane_heads[p].shift;
            plane.high = plane_heads[p].high;
            plane.data = Matrix<Slice>::fromView(
                plane_base + p * plane_elems, rows, cols);
            op.sliced.planes.push_back(std::move(plane));
        }
        op.totalCodes = MatrixI32::fromView(
            reinterpret_cast<const std::int32_t *>(data +
                                                   codes_sec.offset),
            codes_rows, codes_cols);
        op.hoMask = MatrixU8::fromView(
            reinterpret_cast<const std::uint8_t *>(data +
                                                   mask_sec.offset),
            mask_rows, mask_cols);
        const auto *entry_base =
            reinterpret_cast<const RleEntry *>(data + entries_sec.offset);
        const auto *payload_base = reinterpret_cast<const Slice *>(
            data + payloads_sec.offset);
        op.streams.reserve(stream_count);
        std::uint64_t e_at = 0, p_at = 0;
        for (const StreamHead &h : stream_heads) {
            const std::uint64_t p_len = Reader::checkedMul(
                h.stored, static_cast<std::size_t>(h.vlen));
            op.streams.push_back(RleStream::restore(
                ArenaVec<RleEntry>::view({entry_base + e_at, h.stored}),
                ArenaVec<Slice>::view({payload_base + p_at, p_len}),
                h.total, h.fill, h.vlen, h.indexBits));
            e_at += h.stored;
            p_at += p_len;
        }
        validateLayerShapes(op, opts, bias_len);
        layers.push_back(AqsLinearLayer::restore(
            opts, w_params, x_params, dbs, std::move(op),
            ArenaVec<std::int64_t>::view(
                {reinterpret_cast<const std::int64_t *>(data +
                                                        bias_sec.offset),
                 bias_len})));
    }
    if (!r.exhausted())
        throw SerializeError("compiled model has " +
                             std::to_string(r.remaining()) +
                             " trailing META bytes");

    return std::make_shared<const ServedModel>(ServedModel::restore(
        head.spec, head.opts, std::move(layers), head.buildMs,
        std::move(owner), mapped_bytes));
}

// --- Load-path plumbing ------------------------------------------------

/** A 64-byte-aligned owning copy of a whole file image. */
struct ArenaImage
{
    Arena arena;
    std::byte *data = nullptr;
    std::size_t size = 0;
};

std::shared_ptr<ArenaImage>
makeArenaImage(std::size_t size)
{
    auto img = std::make_shared<ArenaImage>();
    img->size = size;
    img->data = img->arena.alloc(size);
    return img;
}

/** PANACEA_MMAP=0 disables the mapped load path process-wide. */
bool
mmapEnabledByEnv()
{
    const char *e = std::getenv("PANACEA_MMAP");
    return e == nullptr || std::string(e) != "0";
}

void
logLegacyLoadOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        inform("loading legacy v1 compiled model via the copying "
               "decode path; re-save to v2 for zero-copy mmap loads");
    });
}

/**
 * Dispatch a whole in-memory/mapped file image on its envelope.
 * `owner`/`mapped_bytes` describe `data`'s backing and only reach the
 * v2 decoder (v1 copies everything out of the image).
 */
std::shared_ptr<const ServedModel>
decodeFileImage(const std::byte *data, std::size_t size,
                std::shared_ptr<const void> owner,
                std::size_t mapped_bytes)
{
    if (size < sizeof(kMagic) + 4)
        throw SerializeError("compiled model too small (" +
                             std::to_string(size) + " bytes)");
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        throw SerializeError("compiled model magic mismatch");
    const std::uint32_t version = loadU32(data + sizeof(kMagic));
    if (version == kCompiledModelFormatVersion)
        return decodeV2(data, size, std::move(owner), mapped_bytes);
    if (version == kCompiledModelLegacyFormatVersion) {
        logLegacyLoadOnce();
        return decodeV1(data, size);
    }
    throw SerializeError(
        "compiled model format version " + std::to_string(version) +
        " unsupported (readable: " +
        std::to_string(kCompiledModelLegacyFormatVersion) + ", " +
        std::to_string(kCompiledModelFormatVersion) + ")");
}

} // namespace

void
writeServedModel(std::ostream &out, const ServedModel &model,
                 std::uint32_t version)
{
    if (version == kCompiledModelFormatVersion)
        writeServedModelV2(out, model);
    else if (version == kCompiledModelLegacyFormatVersion)
        writeServedModelV1(out, model);
    else
        throw SerializeError("cannot write compiled model format "
                             "version " +
                             std::to_string(version));
}

std::shared_ptr<const ServedModel>
readServedModel(std::istream &in)
{
    // Bulk-read seekable streams (files are tens of MB; the
    // char-by-char iterator slurp costs more than the decode);
    // fall back to the iterator for non-seekable sources.
    std::string file;
    in.seekg(0, std::ios::end);
    if (in.good()) {
        const std::streampos end = in.tellg();
        in.seekg(0, std::ios::beg);
        file.resize(static_cast<std::size_t>(end));
        in.read(file.data(), end);
    } else {
        in.clear();
        file.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    if (in.bad())
        throw SerializeError("compiled model read failed");

    // A v2 image must sit at 64-byte alignment for its in-place views;
    // a std::string buffer guarantees no such thing, so rehome the
    // bytes into an arena image the model then owns. (v1 decodes
    // byte-wise from anywhere and copies everything immediately.)
    if (file.size() >= sizeof(kMagic) + 4 &&
        loadU32(reinterpret_cast<const std::byte *>(file.data()) +
                sizeof(kMagic)) == kCompiledModelFormatVersion) {
        auto img = makeArenaImage(file.size());
        std::memcpy(img->data, file.data(), file.size());
        // Pull the fields out BEFORE std::move(img): argument
        // evaluation order is unspecified, so img->size in the same
        // call could read a moved-from (null) pointer.
        const std::byte *base = img->data;
        const std::size_t size = img->size;
        return decodeFileImage(base, size, std::move(img), 0);
    }
    return decodeFileImage(
        reinterpret_cast<const std::byte *>(file.data()), file.size(),
        nullptr, 0);
}

void
saveServedModel(const ServedModel &model, const std::string &path,
                std::uint32_t version)
{
    // Per-process temp name: two processes sharing a cache directory
    // can write the same key concurrently; each must stage its own
    // file so the final rename stays atomic.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SerializeError("cannot open " + tmp + " for writing");
        writeServedModel(out, model, version);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SerializeError("cannot move " + tmp + " to " + path);
    }
}

std::shared_ptr<const ServedModel>
loadServedModel(const std::string &path, bool allow_mmap)
{
    if (allow_mmap && mmapEnabledByEnv()) {
        if (std::shared_ptr<MappedFile> map = MappedFile::open(path)) {
            const std::byte *base = map->data();
            const std::size_t size = map->size();
            return decodeFileImage(base, size, map, size);
        }
        // No mapping (platform without mmap, unreadable file, ...):
        // fall through to the copying path, which reports open errors
        // properly.
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open " + path + " for reading");
    return readServedModel(in);
}

std::string
compiledModelFileName(const std::string &key)
{
    const std::uint64_t h = fnv1a64(key.data(), key.size());
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(hex) + kCompiledModelExtension;
}

std::uint32_t
peekCompiledModelVersion(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open " + path + " for reading");
    char envelope[sizeof(kMagic) + 4];
    in.read(envelope, sizeof(envelope));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(envelope)))
        throw SerializeError("compiled model too small (" +
                             std::to_string(in.gcount()) + " bytes)");
    if (!std::equal(kMagic, kMagic + sizeof(kMagic), envelope))
        throw SerializeError("compiled model magic mismatch");
    Reader head(envelope + sizeof(kMagic), 4);
    return head.u32();
}

namespace {

/** One disk-tier entry as the maintenance passes see it. */
struct CacheDirEntry
{
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
};

/** List the .pncm files of `dir` ("" / missing dir -> empty). */
std::vector<CacheDirEntry>
listCacheDir(const std::string &dir)
{
    std::vector<CacheDirEntry> entries;
    if (dir.empty())
        return entries;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return entries;
    for (const auto &de : it) {
        if (!de.is_regular_file(ec))
            continue;
        if (de.path().extension() != kCompiledModelExtension)
            continue;
        CacheDirEntry e;
        e.path = de.path();
        e.bytes = static_cast<std::uint64_t>(de.file_size(ec));
        if (ec)
            continue;
        e.mtime = de.last_write_time(ec);
        if (ec)
            continue;
        entries.push_back(std::move(e));
    }
    return entries;
}

/** LRU prune over an already-listed entry set (shared pass tail). */
void
pruneEntries(std::vector<CacheDirEntry> &entries, std::uint64_t max_bytes,
             CacheDirReport &report)
{
    std::uint64_t total = 0;
    for (const CacheDirEntry &e : entries)
        total += e.bytes;
    if (max_bytes > 0 && total > max_bytes) {
        // Oldest write/access timestamp first; the newest file is
        // never removed (an entry's own write-back must survive).
        std::sort(entries.begin(), entries.end(),
                  [](const CacheDirEntry &a, const CacheDirEntry &b) {
                      return a.mtime < b.mtime;
                  });
        for (std::size_t i = 0;
             i + 1 < entries.size() && total > max_bytes; ++i) {
            std::error_code ec;
            if (!std::filesystem::remove(entries[i].path, ec) || ec)
                continue;
            total -= entries[i].bytes;
            report.bytesFreed += entries[i].bytes;
            entries[i].bytes = 0;
            ++report.evicted;
        }
        entries.erase(std::remove_if(entries.begin(), entries.end(),
                                     [](const CacheDirEntry &e) {
                                         return e.bytes == 0;
                                     }),
                      entries.end());
    }
    report.bytesKept = total;
}

} // namespace

CacheDirReport
pruneCompiledModelDir(const std::string &dir, std::uint64_t max_bytes)
{
    CacheDirReport report;
    std::vector<CacheDirEntry> entries = listCacheDir(dir);
    report.scanned = entries.size();
    pruneEntries(entries, max_bytes, report);
    return report;
}

CacheDirReport
sweepCompiledModelDir(const std::string &dir, std::uint64_t max_bytes)
{
    CacheDirReport report;
    std::vector<CacheDirEntry> entries = listCacheDir(dir);
    report.scanned = entries.size();
    std::vector<CacheDirEntry> kept;
    kept.reserve(entries.size());
    for (CacheDirEntry &e : entries) {
        bool stale = false;
        bool corrupt = false;
        try {
            // Both readable versions are valid cache entries: a sweep
            // by a v2-writing build must NOT evict legacy v1 files the
            // loader still serves (via its copying fallback).
            stale = !isSupportedCompiledModelVersion(
                peekCompiledModelVersion(e.path.string()));
        } catch (const SerializeError &) {
            corrupt = true;
        }
        if (!stale && !corrupt) {
            kept.push_back(std::move(e));
            continue;
        }
        std::error_code ec;
        if (!std::filesystem::remove(e.path, ec) || ec) {
            kept.push_back(std::move(e));
            continue;
        }
        report.bytesFreed += e.bytes;
        if (stale)
            ++report.staleVersion;
        else
            ++report.corrupt;
    }
    pruneEntries(kept, max_bytes, report);
    return report;
}

} // namespace serve
} // namespace panacea
