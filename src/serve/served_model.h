/**
 * @file
 * A model loaded for serving: every unique GEMM layer of a ModelSpec
 * calibrated through the full Panacea PTQ pipeline exactly once, with
 * its weight operand SBR-sliced, RLE-encoded and HO-compressed at load
 * time. This is the paper's §III-B split mapped onto a runtime:
 * weights are prepared offline and reused by every request; only
 * activation quantization/slicing is per-request work.
 *
 * A ServedModel is immutable after build(), so one instance is shared
 * concurrently by every request, worker and engine (usually through
 * PreparedModelCache in serve/operand_cache.h).
 *
 * Stack semantics: requests flow through the model's unique layers in
 * order. Between consecutive GEMMs the float output is adapted to the
 * next layer's input width by truncating or cyclically tiling feature
 * rows (adaptFeatures()) - a deterministic, column-independent stand-in
 * for the attention/nonlinearity plumbing this repo does not model.
 * Every per-element/per-column step preserves aqsGemm()'s column-slice
 * determinism, which is what makes batching bit-exact (see
 * runPrepared()).
 */

#ifndef PANACEA_SERVE_SERVED_MODEL_H
#define PANACEA_SERVE_SERVED_MODEL_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/aqs_layer.h"
#include "models/layer.h"

namespace panacea {
namespace serve {

/** Build-time options of a served model (fixed per cache entry). */
struct ServeModelOptions
{
    int v = 4;                   ///< slice-vector length
    int rleIndexBits = 4;
    ActSkipMode actSkip = ActSkipMode::RValued;
    bool enableZpm = true;
    bool enableDbs = true;
    double dbsTargetMass = 0.90;
    int weightBitsOverride = 0;  ///< 0 = per-layer spec widths
    std::uint64_t seed = 0x5eed; ///< synthetic tensor seed
    std::size_t calibTokens = 64; ///< tokens per calibration batch
    std::size_t maxLayers = 0;   ///< serve only the first L layers (0 = all)
};

/** @return the cache key of (model, options); see PreparedModelCache. */
std::string serveModelKey(const ModelSpec &spec,
                          const ServeModelOptions &opts);

/**
 * One model prepared for serving. Thread-safe for concurrent reads
 * (all methods are const after build()).
 */
class ServedModel
{
  public:
    /**
     * Calibrate and prepare every served layer: synthetic weights and
     * calibration batches per the layer's distribution family
     * (deterministic in opts.seed), the full PTQ pipeline of
     * AqsLinearLayer::calibrate(), and the prepared WeightOperand kept
     * for the model's lifetime.
     */
    static ServedModel build(const ModelSpec &spec,
                             const ServeModelOptions &opts);

    /**
     * Reassemble a served model from already-prepared layers WITHOUT
     * any calibration, slicing, RLE or HO work: the deserialization
     * entry point of the compiled-model format
     * (serve/model_serialize.h). The layers must be the ones a
     * build(spec, opts) produced (restored via AqsLinearLayer::
     * restore()); the key is re-derived and the per-layer counting
     * caches materialize lazily on first use, `build_ms` records what
     * the ORIGINAL build spent so cache accounting (buildMsSaved)
     * stays meaningful across processes.
     *
     * Zero-copy loads (model_serialize.h, format v2) pass
     * `payload_owner` - the object whose memory the layers' operand
     * views point into (a MappedFile or an Arena holding the file
     * image); the model keeps it alive for its own lifetime.
     * `mapped_bytes` > 0 records that the payloads live in a shared
     * read-only file mapping of that many bytes (0 for owning loads).
     */
    static ServedModel restore(const ModelSpec &spec,
                               const ServeModelOptions &opts,
                               std::vector<AqsLinearLayer> layers,
                               double build_ms,
                               std::shared_ptr<const void> payload_owner =
                                   nullptr,
                               std::size_t mapped_bytes = 0);

    /** Result of one batched pass through the layer stack. */
    struct BatchResult
    {
        MatrixF output;  ///< final layer output, one column per token
        /**
         * Per-request statistics, one per group range: bit-equal to
         * the stats a solo run of that request would record (counted
         * via aqsCountStatsBatch(), never affected by what else rode
         * in the batch).
         */
        std::vector<AqsStats> perRequest;
        double prepMs = 0.0; ///< intermediate-layer operand prep time
        double gemmMs = 0.0; ///< GEMM time across the stack
    };

    /** Result of one layer step over a set of in-flight column groups. */
    struct StepResult
    {
        /**
         * When the step executed the LAST layer: the final float
         * output. Otherwise: the float activations already adapted
         * (adaptFeatures()) to the NEXT layer's input width, ready for
         * prepareStepInput(layer_index + 1, ...).
         */
        MatrixF next;
        /**
         * This step's statistics, one record per group range:
         * bit-equal to what a solo run of that range would record at
         * this layer (aqsCountStatsBatch() over the per-layer counting
         * cache).
         */
        std::vector<AqsStats> perRequest;
        double gemmMs = 0.0; ///< GEMM wall time of this step
    };

    /**
     * Execute exactly ONE layer on a prepared (possibly spliced)
     * operand: the unit of execution of the layer-stepped continuous
     * scheduler (serve/engine.h). `op` must be layer
     * `layer_index`'s prepared input - a single request's, or any
     * column concatenation of prepared operands
     * (concatActivationOperands()) - and `group_offsets` (cumulative
     * column groups, R+1 entries covering the operand) names each
     * request's column range.
     *
     * When `gemm_mutex` is non-null it is held around the GEMM only;
     * per-request counting and dequantize/adapt run unlocked.
     *
     * Determinism: every stage is column-blocked, so request r's slice
     * of `next` and its stats record are bit-identical whatever other
     * column groups ride in the operand - the invariant that makes
     * mid-stack admission (splice) bit-exact
     * (tests/test_serve_continuous.cpp).
     */
    StepResult forwardPreparedStep(std::size_t layer_index,
                                   const ActivationOperand &op,
                                   std::span<const std::size_t> group_offsets,
                                   std::mutex *gemm_mutex = nullptr) const;

    /**
     * Quantize + slice float activations as layer `layer_index`'s
     * input operand (layer 0: same as prepareInput()). Column-blocked,
     * so preparing a column concatenation equals concatenating
     * per-request preparations.
     */
    ActivationOperand prepareStepInput(std::size_t layer_index,
                                       const MatrixF &x) const;

    /**
     * Run one batch through the stack. `input_op` is the prepared
     * layer-0 activation operand (a single request's, or the
     * concatenation of several via concatActivationOperands());
     * `group_offsets` (R+1 entries, cumulative column groups) names
     * each request's column range.
     *
     * When `gemm_mutex` is non-null it is held around each layer's
     * GEMM only - intermediate-layer quantize/slice prep and the
     * per-request counting run unlocked (they touch batch-local state
     * exclusively), so a concurrent caller's prep genuinely overlaps
     * this batch's GEMMs.
     *
     * Determinism contract (tests/test_serve_engine.cpp): request r's
     * output columns and statistics are bit-identical for EVERY batch
     * composition, because every stage is column-blocked - the GEMMs
     * by aqsGemm()'s column-slice determinism, dequantize/adapt/
     * quantize/slice per element or per column.
     */
    BatchResult runPrepared(const ActivationOperand &input_op,
                            std::span<const std::size_t> group_offsets,
                            std::mutex *gemm_mutex = nullptr) const;

    /** Quantize + slice a float input for layer 0 (per-request prep). */
    ActivationOperand prepareInput(const MatrixF &input) const;

    /**
     * Adapt a float activation to `features` rows: identity when it
     * matches, otherwise truncate or cyclically tile feature rows.
     * Column-independent, so it preserves batching determinism.
     */
    static MatrixF adaptFeatures(MatrixF y, std::size_t features);

    /** @return the cache key (model name + options fingerprint). */
    const std::string &key() const { return key_; }
    /** @return the source model spec. */
    const ModelSpec &spec() const { return spec_; }
    /** @return the build options. */
    const ServeModelOptions &options() const { return opts_; }
    /** @return served layer count (spec layers, capped by maxLayers). */
    std::size_t layerCount() const { return layers_.size(); }
    /** @return one served layer. */
    const AqsLinearLayer &layer(std::size_t i) const { return layers_[i]; }
    /** @return input features K of the first layer. */
    std::size_t inputFeatures() const;
    /** @return output features M of the last layer. */
    std::size_t outputFeatures() const;
    /** @return dense-equivalent MACs one activation column costs. */
    std::uint64_t macsPerColumn() const { return macsPerColumn_; }
    /** @return wall time build() spent preparing this model. */
    double buildMs() const { return buildMs_; }
    /**
     * @return bytes of the read-only file mapping the operand views
     * point into, 0 when the model owns (or arena-copied) its
     * payloads. Non-zero means the weight bytes are shared with every
     * other process mapping the same .pncm.
     */
    std::size_t mappedBytes() const { return mappedBytes_; }

  private:
    ServedModel() = default;

    /** Shared build()/restore() tail: key, MACs, lazy-cache slots. */
    void finalizeDerivedState();

    /**
     * Layer `i`'s weight-side counting cache - the O(M/v * K) hoMask
     * scan aqsCountStats needs - materialized on FIRST use
     * (std::call_once, safe under concurrent readers) instead of at
     * build/restore time: a zero-copy load must not eagerly walk every
     * layer's mask, or map-time degrades back into decode-time. Stats
     * stay bit-equal to the scanning path (see WeightCountingCache).
     */
    const WeightCountingCache &countCache(std::size_t i) const;

    ModelSpec spec_;
    ServeModelOptions opts_;
    std::string key_;
    std::vector<AqsLinearLayer> layers_;
    /** Lazily-built per-layer caches; see countCache(). */
    mutable std::vector<WeightCountingCache> countCaches_;
    /** One flag per layer (array: once_flag is immovable). */
    mutable std::unique_ptr<std::once_flag[]> countCacheOnce_;
    /**
     * Cached feature-adaptation plan of each inter-layer boundary:
     * stepFeatures_[i] is the row count layer i's float output must be
     * adapted to before it becomes layer i+1's input (= layer i+1's
     * K). One entry per boundary (layerCount()-1), filled in
     * finalizeDerivedState() so forwardPreparedStep() - the once-per-
     * layer-per-decode-step hot path - never re-derives the width or
     * calls adaptFeatures() at an identity boundary. Phase-invariant:
     * the adapted shape depends only on the layer stack, never on
     * whether the columns are prefill or decode work.
     */
    std::vector<std::size_t> stepFeatures_;
    /** Keeps the mapped file / arena behind operand views alive. */
    std::shared_ptr<const void> payloadOwner_;
    std::size_t mappedBytes_ = 0;
    std::uint64_t macsPerColumn_ = 0;
    double buildMs_ = 0.0;
};

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_SERVED_MODEL_H
