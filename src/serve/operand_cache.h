/**
 * @file
 * Keyed cache of prepared models: the serving layer's guarantee that
 * weight operands (SBR slices + RLE streams + HO masks) are built once
 * per (model, options) and shared - across requests, engines and
 * repeated load() calls - instead of being re-prepared per call the
 * way the one-shot entry points do.
 *
 * Cache keying: serveModelKey() fingerprints everything that changes
 * the prepared bytes - model name, v, RLE index width, skip mode,
 * ZPM/DBS settings, weight-bit override, tensor seed, calibration
 * token count and the served-layer cap. Two loads agreeing on the key
 * therefore share one immutable ServedModel (shared_ptr); anything
 * else builds a new entry. Entries live until clear().
 *
 * Disk tier (setDiskDir() / PANACEA_CACHE_DIR): when a directory is
 * configured, a memory miss first tries to LOAD the compiled model
 * from "<dir>/<fnv(key)>.pncm" (format: serve/model_serialize.h)
 * before building, and every fresh build is written back. A loaded
 * model does zero calibration/slicing/RLE/HO work and is
 * behaviourally byte-identical to a fresh build, so a cold process
 * skips the multi-second preparation entirely - CacheStats::diskHits
 * vs misses is the observable proof. Unreadable or stale files (wrong
 * version, checksum, fingerprint) are PRUNED with a warning and the
 * model is rebuilt; the disk tier can only add speed, never change
 * results.
 *
 * Eviction (setDiskCapBytes() / PANACEA_CACHE_MAX_MB /
 * RuntimeOptions::cacheMaxBytes): with a byte cap configured, every
 * write-back is followed by an LRU prune - least-recently-USED .pncm
 * files go first (a disk hit refreshes its file's timestamp), the
 * just-written entry always survives - so the directory stops growing
 * without bound (the old behaviour, cap 0, remains the default).
 * Stale format versions are removed by the `panacea_cache_sweep` tool
 * (sweepCompiledModelDir() in serve/model_serialize.h).
 */

#ifndef PANACEA_SERVE_OPERAND_CACHE_H
#define PANACEA_SERVE_OPERAND_CACHE_H

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/served_model.h"

namespace panacea {
namespace serve {

/** Thread-safe keyed cache of immutable ServedModels. */
class PreparedModelCache
{
  public:
    /** Cache effectiveness counters (monotone; reset by clear()). */
    struct CacheStats
    {
        std::uint64_t hits = 0;   ///< served from memory
        /**
         * Entries actually BUILT (full calibration + preparation).
         * With a disk tier, a cold start that finds its file keeps
         * misses at 0 - the cold-start acceptance check.
         */
        std::uint64_t misses = 0;
        /** Entries deserialized from the disk tier instead of built. */
        std::uint64_t diskHits = 0;
        double buildMsTotal = 0.0; ///< wall time spent building entries
        double loadMsTotal = 0.0;  ///< wall time spent loading entries
        /**
         * Wall time hits avoided re-spending: the sum of buildMs() of
         * every entry served from memory or disk - the "prep
         * amortization win" the LLM decode example reports. Disk hits
         * count the ORIGINAL build cost recorded in the file.
         */
        double buildMsSaved = 0.0;
    };

    /**
     * Return the cached model for (spec, opts), building it on first
     * use. Builds (and disk loads) run OUTSIDE the cache lock:
     * concurrent loaders of the same key wait on that entry's future
     * instead of duplicating a multi-second preparation, while loads
     * of other keys proceed unblocked.
     */
    std::shared_ptr<const ServedModel>
    acquire(const ModelSpec &spec, const ServeModelOptions &opts = {});

    /**
     * Enable (non-empty) or disable (empty) the disk tier. The
     * directory is created on first write. Affects subsequent
     * acquire() calls only; resident entries stay valid.
     */
    void setDiskDir(std::string dir);

    /** @return the disk-tier directory ("" = disabled). */
    std::string diskDir() const;

    /**
     * Cap the disk tier at `max_bytes` (0 = unbounded). Enforced by
     * LRU pruning after each write-back; see the file header.
     */
    void setDiskCapBytes(std::uint64_t max_bytes);

    /** @return the disk-tier size cap in bytes (0 = unbounded). */
    std::uint64_t diskCapBytes() const;

    /**
     * Whether disk hits may map the file read-only and serve the
     * weight payloads in place (default: on). Off forces the copying
     * decode. PANACEA_MMAP=0 in the environment disables mapping
     * regardless of this flag (the operational escape hatch lives in
     * loadServedModel()).
     */
    void setMmapModels(bool enable);

    /** @return whether disk hits may use the mmap load path. */
    bool mmapModels() const;

    /** @return a consistent snapshot of the counters. */
    CacheStats stats() const;

    /** @return number of resident entries. */
    std::size_t size() const;

    /** Drop every entry and reset the counters (disk files remain). */
    void clear();

    /**
     * @return the process-wide cache. Its disk tier starts from the
     * PANACEA_CACHE_DIR environment variable when set.
     */
    static PreparedModelCache &global();

  private:
    using ModelFuture =
        std::shared_future<std::shared_ptr<const ServedModel>>;

    mutable std::mutex mutex_;
    std::map<std::string, ModelFuture> entries_;
    std::string diskDir_;
    std::uint64_t diskCapBytes_ = 0;
    bool mmapModels_ = true;
    CacheStats stats_;
};

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_OPERAND_CACHE_H
