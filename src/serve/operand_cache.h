/**
 * @file
 * Keyed cache of prepared models: the serving layer's guarantee that
 * weight operands (SBR slices + RLE streams + HO masks) are built once
 * per (model, options) and shared - across requests, engines and
 * repeated load() calls - instead of being re-prepared per call the
 * way the one-shot entry points do.
 *
 * Cache keying: serveModelKey() fingerprints everything that changes
 * the prepared bytes - model name, v, RLE index width, skip mode,
 * ZPM/DBS settings, weight-bit override, tensor seed, calibration
 * token count and the served-layer cap. Two loads agreeing on the key
 * therefore share one immutable ServedModel (shared_ptr); anything
 * else builds a new entry. Entries live until clear().
 */

#ifndef PANACEA_SERVE_OPERAND_CACHE_H
#define PANACEA_SERVE_OPERAND_CACHE_H

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/served_model.h"

namespace panacea {
namespace serve {

/** Thread-safe keyed cache of immutable ServedModels. */
class PreparedModelCache
{
  public:
    /** Cache effectiveness counters (monotone; reset by clear()). */
    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        double buildMsTotal = 0.0; ///< wall time spent building entries
        /**
         * Wall time hits avoided re-spending: the sum of buildMs() of
         * every entry served from cache - the "prep amortization win"
         * the LLM decode example reports.
         */
        double buildMsSaved = 0.0;
    };

    /**
     * Return the cached model for (spec, opts), building it on first
     * use. Builds run OUTSIDE the cache lock: concurrent loaders of
     * the same key wait on that entry's future instead of duplicating
     * a multi-second preparation, while loads of other keys proceed
     * unblocked.
     */
    std::shared_ptr<const ServedModel>
    acquire(const ModelSpec &spec, const ServeModelOptions &opts = {});

    /** @return a consistent snapshot of the counters. */
    CacheStats stats() const;

    /** @return number of resident entries. */
    std::size_t size() const;

    /** Drop every entry and reset the counters. */
    void clear();

    /** @return the process-wide cache. */
    static PreparedModelCache &global();

  private:
    using ModelFuture =
        std::shared_future<std::shared_ptr<const ServedModel>>;

    mutable std::mutex mutex_;
    std::map<std::string, ModelFuture> entries_;
    CacheStats stats_;
};

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_OPERAND_CACHE_H
