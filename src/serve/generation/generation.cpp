#include "serve/generation/generation.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "serve/fleet.h"
#include "util/logging.h"
#include "util/stats.h"

namespace panacea {
namespace serve {

namespace {

/** TTFT / inter-token percentile rings cover this many recents. */
constexpr std::size_t kGenLatencyWindow = 8192;

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Copy columns [c0, c1) of `m` into an owned matrix. */
MatrixF
sliceColumns(const MatrixF &m, std::size_t c0, std::size_t c1)
{
    MatrixF out(m.rows(), c1 - c0);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const auto src = m.row(r);
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(c0),
                  src.begin() + static_cast<std::ptrdiff_t>(c1),
                  out.row(r).begin());
    }
    return out;
}

} // namespace

const char *
toString(GenerationPhase phase)
{
    return phase == GenerationPhase::Prefill ? "prefill" : "decode";
}

MatrixF
TokenSampler::next(const float *prev, std::size_t rows, std::size_t cols,
                   std::size_t features, std::size_t v)
{
    panic_if(prev == nullptr || rows == 0 || cols < v,
             "TokenSampler::next needs a previous output of >= v columns");
    const std::size_t base = cols - v;
    MatrixF x(features, v);
    for (std::size_t r = 0; r < features; ++r) {
        const float *src = prev + (r % rows) * cols + base;
        auto dst = x.row(r);
        for (std::size_t c = 0; c < v; ++c)
            dst[c] = 0.5f * src[c] +
                     static_cast<float>(rng_.gaussian(0.2, 1.0));
    }
    return x;
}

MatrixF
TokenSampler::next(const MatrixF &prev, std::size_t features,
                   std::size_t v)
{
    return next(prev.data().data(), prev.rows(), prev.cols(), features,
                v);
}

/**
 * One live generation: the request, its sampler chain position, the
 * arena holding its paged outputs, and the single in-flight engine
 * submission. Touched by the pump thread only (after generate()
 * hands it over).
 */
struct GenerationScheduler::Active
{
    std::uint64_t id = 0;
    std::shared_ptr<const ServedModel> model;
    GenerationRequest req;
    TokenSampler sampler;
    std::promise<GenerationResult> promise;

    std::size_t v = 0;
    std::size_t features = 0; ///< layer-0 input rows (K)
    std::size_t outRows = 0;  ///< final-layer output rows (M)
    std::size_t promptCols = 0;
    std::size_t promptGroups = 0;
    std::size_t chunkGroups = 0; ///< prefill chunk bound (groups)
    std::size_t chunksTotal = 0;
    std::size_t chunksDone = 0;
    std::size_t stepsDone = 0;

    /** Paged decode state: prefill output + one page per step. */
    Arena arena;
    float *prefillOut = nullptr;       ///< outRows x promptCols
    std::vector<float *> stepPages;    ///< outRows x v each

    std::future<RequestResult> inflight;
    bool started = false;
    bool done = false;

    AqsStats stats;
    std::vector<GenerationStepMeta> meta;
    std::vector<float> tokenAtMs; ///< decode completions since start
    std::chrono::steady_clock::time_point startTp;
    double prefillMs = 0.0;

    explicit Active(GenerationRequest r)
        : req(std::move(r)), sampler(req.samplerSeed)
    {}

    double
    sinceStartMs() const
    {
        return msBetween(startTp, std::chrono::steady_clock::now());
    }
};

GenerationScheduler::GenerationScheduler(InferenceEngine &engine)
    : engine_(engine), pump_([this] { pumpLoop(); })
{}

GenerationScheduler::~GenerationScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    pumpCv_.notify_all();
    if (pump_.joinable())
        pump_.join();
}

std::future<GenerationResult>
GenerationScheduler::generate(std::shared_ptr<const ServedModel> model,
                              GenerationRequest req)
{
    auto a = std::make_unique<Active>(std::move(req));
    std::future<GenerationResult> fut = a->promise.get_future();
    const auto reject_arg = [&](std::string why) {
        a->promise.set_exception(std::make_exception_ptr(
            std::invalid_argument(std::move(why))));
        return std::move(fut);
    };
    if (model == nullptr)
        return reject_arg("generate() needs a loaded model");
    if (a->req.maxSteps == 0)
        return reject_arg("generate() needs maxSteps >= 1");
    const std::size_t uv = static_cast<std::size_t>(model->options().v);
    if (a->req.prompt.rows() != model->inputFeatures())
        return reject_arg(
            "prompt rows " + std::to_string(a->req.prompt.rows()) +
            " != model input features " +
            std::to_string(model->inputFeatures()));
    if (a->req.prompt.cols() == 0 || a->req.prompt.cols() % uv != 0)
        return reject_arg("prompt columns " +
                          std::to_string(a->req.prompt.cols()) +
                          " must be a positive multiple of v=" +
                          std::to_string(uv));

    a->model = std::move(model);
    a->v = uv;
    a->features = a->model->inputFeatures();
    a->outRows = a->model->outputFeatures();
    a->promptCols = a->req.prompt.cols();
    a->promptGroups = a->promptCols / uv;
    // Naive FIFO sends the whole prompt as one cohort; phase-aware
    // bounds every prefill cohort to chunkGroups column groups.
    a->chunkGroups = a->promptGroups;
    if (a->req.phaseAware) {
        const std::size_t bound = a->req.prefillChunkGroups > 0
                                      ? a->req.prefillChunkGroups
                                      : kDefaultPrefillChunkGroups;
        a->chunkGroups = std::min(a->promptGroups, bound);
    }
    a->chunksTotal =
        (a->promptGroups + a->chunkGroups - 1) / a->chunkGroups;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            a->promise.set_exception(
                std::make_exception_ptr(std::runtime_error(
                    "generate() after scheduler shutdown began")));
            return fut;
        }
        // Same reject-or-complete contract as the engine's drain():
        // accepting would move the drain's goalposts.
        if (draining_ > 0) {
            a->promise.set_exception(
                std::make_exception_ptr(std::runtime_error(
                    "generate() rejected: drain() in progress")));
            return fut;
        }
        a->id = nextId_++;
        ready_.push_back(a->id); // the start event
        active_.emplace(a->id, std::move(a));
    }
    {
        std::lock_guard<std::mutex> slock(statsMutex_);
        if (!haveFirstStart_) {
            haveFirstStart_ = true;
            firstStartTp_ = std::chrono::steady_clock::now();
        }
    }
    pumpCv_.notify_all();
    return fut;
}

void
GenerationScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    ++draining_;
    drainCv_.wait(lock, [&] { return active_.empty(); });
    --draining_;
}

void
GenerationScheduler::pumpLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        pumpCv_.wait(lock, [&] {
            return !ready_.empty() || (stopping_ && active_.empty());
        });
        if (ready_.empty())
            return; // stopping_ with nothing live
        const std::uint64_t id = ready_.front();
        ready_.pop_front();
        const auto it = active_.find(id);
        if (it == active_.end())
            continue; // event of a generation failed mid-chain
        Active *a = it->second.get();

        // Event handling runs UNLOCKED: it preps operands, invokes
        // user callbacks, and submits into the engine - none of which
        // may hold the scheduler mutex (the engine's onReady hook
        // takes it from worker threads).
        lock.unlock();
        handleEvent(*a);
        lock.lock();
        if (a->done) {
            active_.erase(id);
            drainCv_.notify_all();
        }
    }
}

void
GenerationScheduler::handleEvent(Active &a)
{
    if (!a.started) {
        // The start event: page the prefill output, submit chunk 0.
        a.started = true;
        a.startTp = std::chrono::steady_clock::now();
        const std::size_t bytes =
            a.outRows * a.promptCols * sizeof(float);
        a.prefillOut = reinterpret_cast<float *>(a.arena.alloc(bytes));
        {
            std::lock_guard<std::mutex> slock(statsMutex_);
            arenaLive_ += bytes;
        }
        const std::size_t g1 = std::min(a.promptGroups, a.chunkGroups);
        submitStep(a, sliceColumns(a.req.prompt, 0, g1 * a.v),
                   a.req.phaseAware ? RequestPhase::Prefill
                                    : RequestPhase::Bulk);
        return;
    }
    RequestResult rr;
    try {
        rr = a.inflight.get();
    } catch (...) {
        fail(a, std::current_exception());
        return;
    }
    try {
        if (a.chunksDone < a.chunksTotal)
            handlePrefillChunk(a, std::move(rr));
        else
            handleDecodeStep(a, std::move(rr));
    } catch (...) {
        // A throwing user callback (or copy failure) terminates THIS
        // generation; the scheduler itself keeps pumping.
        fail(a, std::current_exception());
    }
}

void
GenerationScheduler::submitStep(Active &a, MatrixF input,
                                RequestPhase phase)
{
    SubmitExtras ex;
    ex.phase = phase;
    // Decode steps are prepped HERE, on the pump thread, off the
    // engine's cohort critical path - the engine splices the operand
    // verbatim (prepareLayer0Concat) instead of re-prepping the new
    // column. Prefill chunks are left to the engine worker, whose
    // layer-0 prep already overlaps other cohorts' GEMMs.
    if (phase == RequestPhase::Decode)
        ex.prepared = std::make_shared<const ActivationOperand>(
            a.model->prepareInput(input));
    ex.onReady = [this, id = a.id] {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ready_.push_back(id);
        }
        pumpCv_.notify_all();
    };
    a.inflight = engine_.submit(a.model, std::move(input), std::move(ex));
}

void
GenerationScheduler::handlePrefillChunk(Active &a, RequestResult &&rr)
{
    const std::size_t chunk = a.chunksDone;
    const std::size_t c0 = chunk * a.chunkGroups * a.v;
    const std::size_t ccols = rr.output.cols();
    for (std::size_t row = 0; row < a.outRows; ++row) {
        const auto src = rr.output.row(row);
        std::copy(src.begin(), src.end(),
                  a.prefillOut + row * a.promptCols + c0);
    }
    a.stats += rr.stats;
    GenerationStepMeta m;
    m.phase = GenerationPhase::Prefill;
    m.index = chunk;
    m.columns = ccols;
    m.engineId = rr.id;
    m.batchSeq = rr.batchSeq;
    m.admittedAtLayer = rr.admittedAtLayer;
    m.batchSize = rr.batchSize;
    m.latencyMs = rr.latencyMs;
    a.meta.push_back(m);
    ++a.chunksDone;
    {
        std::lock_guard<std::mutex> slock(statsMutex_);
        ++prefillChunks_;
        promptColumns_ += ccols;
    }
    if (a.req.onStep) {
        GenerationStepView view;
        view.generationId = a.id;
        view.phase = GenerationPhase::Prefill;
        view.index = chunk;
        view.stepsTotal = a.req.maxSteps;
        view.output = rr.output.data().data();
        view.rows = a.outRows;
        view.cols = ccols;
        view.sinceStartMs = a.sinceStartMs();
        a.req.onStep(view);
    }
    if (a.chunksDone < a.chunksTotal) {
        const std::size_t g0 = a.chunksDone * a.chunkGroups;
        const std::size_t g1 =
            std::min(a.promptGroups, g0 + a.chunkGroups);
        submitStep(a, sliceColumns(a.req.prompt, g0 * a.v, g1 * a.v),
                   a.req.phaseAware ? RequestPhase::Prefill
                                    : RequestPhase::Bulk);
        return;
    }
    // Prefill complete: the first decode step samples from the LAST v
    // prompt output columns.
    a.prefillMs = a.sinceStartMs();
    MatrixF x = a.sampler.next(a.prefillOut, a.outRows, a.promptCols,
                               a.features, a.v);
    submitStep(a, std::move(x),
               a.req.phaseAware ? RequestPhase::Decode
                                : RequestPhase::Bulk);
}

void
GenerationScheduler::handleDecodeStep(Active &a, RequestResult &&rr)
{
    const std::size_t step = a.stepsDone;
    const std::size_t bytes = a.outRows * a.v * sizeof(float);
    float *page = reinterpret_cast<float *>(a.arena.alloc(bytes));
    const std::span<const float> src = rr.output.data();
    std::copy(src.begin(), src.end(), page);
    a.stepPages.push_back(page);
    a.tokenAtMs.push_back(static_cast<float>(a.sinceStartMs()));
    a.stats += rr.stats;
    GenerationStepMeta m;
    m.phase = GenerationPhase::Decode;
    m.index = step;
    m.columns = a.v;
    m.engineId = rr.id;
    m.batchSeq = rr.batchSeq;
    m.admittedAtLayer = rr.admittedAtLayer;
    m.batchSize = rr.batchSize;
    m.latencyMs = rr.latencyMs;
    a.meta.push_back(m);
    ++a.stepsDone;
    {
        std::lock_guard<std::mutex> slock(statsMutex_);
        arenaLive_ += bytes;
        ++decodeSteps_;
        decodeColumns_ += a.v;
        lastDecodeTp_ = std::chrono::steady_clock::now();
    }
    if (a.req.onStep) {
        GenerationStepView view;
        view.generationId = a.id;
        view.phase = GenerationPhase::Decode;
        view.index = step;
        view.stepsTotal = a.req.maxSteps;
        view.output = page;
        view.rows = a.outRows;
        view.cols = a.v;
        view.sinceStartMs = a.sinceStartMs();
        a.req.onStep(view);
    }
    if (a.stepsDone < a.req.maxSteps) {
        MatrixF x =
            a.sampler.next(page, a.outRows, a.v, a.features, a.v);
        submitStep(a, std::move(x),
                   a.req.phaseAware ? RequestPhase::Decode
                                    : RequestPhase::Bulk);
        return;
    }
    finish(a);
}

void
GenerationScheduler::finish(Active &a)
{
    GenerationResult res;
    res.id = a.id;
    res.prefillOutput = MatrixF(a.outRows, a.promptCols);
    std::copy_n(a.prefillOut, a.outRows * a.promptCols,
                res.prefillOutput.data().begin());
    res.output = MatrixF(a.outRows, a.stepsDone * a.v);
    for (std::size_t row = 0; row < a.outRows; ++row) {
        auto dst = res.output.row(row);
        for (std::size_t n = 0; n < a.stepsDone; ++n)
            std::copy_n(a.stepPages[n] + row * a.v, a.v,
                        dst.begin() +
                            static_cast<std::ptrdiff_t>(n * a.v));
    }
    res.steps = a.stepsDone;
    res.stats = a.stats;
    res.prefillMs = a.prefillMs;
    res.ttftMs = a.tokenAtMs.front();
    res.totalMs = a.tokenAtMs.back();
    res.interTokenMs.reserve(a.tokenAtMs.size() - 1);
    for (std::size_t n = 1; n < a.tokenAtMs.size(); ++n)
        res.interTokenMs.push_back(a.tokenAtMs[n] - a.tokenAtMs[n - 1]);
    res.stepMeta = std::move(a.meta);
    res.arenaBytes = a.arena.bytes();

    // Counters fold BEFORE the promise resolves, so stats() already
    // covers a generation whose future just became ready (the
    // engine's convention).
    {
        std::lock_guard<std::mutex> slock(statsMutex_);
        const auto push = [&](std::vector<float> &ring,
                              std::size_t &next, double v) {
            if (ring.size() < kGenLatencyWindow)
                ring.push_back(static_cast<float>(v));
            else
                ring[next % kGenLatencyWindow] = static_cast<float>(v);
            ++next;
        };
        ++generations_;
        push(ttftRing_, ttftNext_, res.ttftMs);
        for (const float gap : res.interTokenMs)
            push(interTokenRing_, interTokenNext_, gap);
        arenaLive_ -= std::min(arenaLive_, a.arena.bytes());
        arenaRetired_ += a.arena.bytes();
    }
    a.promise.set_value(std::move(res));
    a.done = true;
}

void
GenerationScheduler::fail(Active &a, std::exception_ptr exc)
{
    {
        std::lock_guard<std::mutex> slock(statsMutex_);
        ++failed_;
        arenaLive_ -= std::min(arenaLive_, a.arena.bytes());
        arenaRetired_ += a.arena.bytes();
    }
    a.promise.set_exception(std::move(exc));
    a.done = true;
}

GenerationStats
GenerationScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    panic_if(ttftRing_.size() > kGenLatencyWindow ||
                 interTokenRing_.size() > kGenLatencyWindow,
             "generation percentile ring exceeds its window");
    GenerationStats s;
    s.generations = generations_;
    s.failed = failed_;
    s.prefillChunks = prefillChunks_;
    s.decodeSteps = decodeSteps_;
    s.promptColumns = promptColumns_;
    s.decodeColumns = decodeColumns_;
    if (haveFirstStart_ && decodeColumns_ > 0) {
        const double secs =
            msBetween(firstStartTp_, lastDecodeTp_) / 1000.0;
        if (secs > 0.0)
            s.tokensPerSecond =
                static_cast<double>(decodeColumns_) / secs;
    }
    if (!ttftRing_.empty()) {
        s.p50TtftMs = percentile(ttftRing_, 50.0);
        s.p99TtftMs = percentile(ttftRing_, 99.0);
    }
    if (!interTokenRing_.empty()) {
        s.p50InterTokenMs = percentile(interTokenRing_, 50.0);
        s.p99InterTokenMs = percentile(interTokenRing_, 99.0);
    }
    s.arenaBytesLive = arenaLive_;
    s.arenaBytesRetired = arenaRetired_;
    return s;
}

GenerationResult
generateOverRouter(ReplicaRouter &router, const std::string &model_name,
                   GenerationRequest req)
{
    const std::shared_ptr<const ServedModel> model =
        router.deployedModel(model_name);
    if (model == nullptr)
        throw std::invalid_argument(
            "generateOverRouter: unknown model '" + model_name + "'");
    if (req.maxSteps == 0)
        throw std::invalid_argument(
            "generateOverRouter needs maxSteps >= 1");
    const std::size_t v = static_cast<std::size_t>(model->options().v);
    if (req.prompt.rows() != model->inputFeatures() ||
        req.prompt.cols() == 0 || req.prompt.cols() % v != 0)
        throw std::invalid_argument(
            "generateOverRouter: malformed prompt " +
            std::to_string(req.prompt.rows()) + "x" +
            std::to_string(req.prompt.cols()));

    const std::size_t features = model->inputFeatures();
    const std::size_t out_rows = model->outputFeatures();
    const std::size_t prompt_cols = req.prompt.cols();
    const std::size_t prompt_groups = prompt_cols / v;
    std::size_t chunk_groups = prompt_groups;
    if (req.phaseAware) {
        const std::size_t bound = req.prefillChunkGroups > 0
                                      ? req.prefillChunkGroups
                                      : kDefaultPrefillChunkGroups;
        chunk_groups = std::min(prompt_groups, bound);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto since_ms = [&t0] {
        return msBetween(t0, std::chrono::steady_clock::now());
    };
    // One submission at a time, fleet-terminal checked per step: a
    // typed rejection (shed / quarantine) aborts the generation.
    const auto run_step = [&](MatrixF input,
                              RequestPhase phase) -> FleetResult {
        std::future<FleetResult> fut =
            router.submit(model_name, std::move(input), phase);
        FleetResult fr = fut.get();
        if (fr.outcome != FleetOutcome::Completed)
            throw std::runtime_error(
                "generateOverRouter: step rejected: " +
                fr.rejectReason);
        return fr;
    };
    const auto push_meta = [](GenerationResult &res,
                              GenerationPhase phase, std::size_t index,
                              const FleetResult &fr) {
        GenerationStepMeta m;
        m.phase = phase;
        m.index = index;
        m.columns = fr.result.output.cols();
        m.engineId = fr.result.id;
        m.batchSeq = fr.result.batchSeq;
        m.admittedAtLayer = fr.result.admittedAtLayer;
        m.batchSize = fr.result.batchSize;
        m.modelVersion = fr.modelVersion;
        m.latencyMs = fr.result.latencyMs;
        res.stepMeta.push_back(m);
    };

    GenerationResult res;
    TokenSampler sampler(req.samplerSeed);
    res.prefillOutput = MatrixF(out_rows, prompt_cols);
    for (std::size_t g0 = 0, chunk = 0; g0 < prompt_groups;
         g0 += chunk_groups, ++chunk) {
        const std::size_t g1 =
            std::min(prompt_groups, g0 + chunk_groups);
        FleetResult fr =
            run_step(sliceColumns(req.prompt, g0 * v, g1 * v),
                     req.phaseAware ? RequestPhase::Prefill
                                    : RequestPhase::Bulk);
        for (std::size_t row = 0; row < out_rows; ++row) {
            const auto src = fr.result.output.row(row);
            std::copy(src.begin(), src.end(),
                      res.prefillOutput.row(row).begin() +
                          static_cast<std::ptrdiff_t>(g0 * v));
        }
        res.stats += fr.result.stats;
        push_meta(res, GenerationPhase::Prefill, chunk, fr);
    }
    res.prefillMs = since_ms();

    res.output = MatrixF(out_rows, req.maxSteps * v);
    MatrixF prev; ///< previous DECODE output (step 0 reads the prefill)
    std::vector<float> token_at;
    token_at.reserve(req.maxSteps);
    for (std::size_t step = 0; step < req.maxSteps; ++step) {
        MatrixF x = step == 0
                        ? sampler.next(res.prefillOutput, features, v)
                        : sampler.next(prev, features, v);
        FleetResult fr = run_step(
            std::move(x), req.phaseAware ? RequestPhase::Decode
                                         : RequestPhase::Bulk);
        token_at.push_back(static_cast<float>(since_ms()));
        for (std::size_t row = 0; row < out_rows; ++row) {
            const auto src = fr.result.output.row(row);
            std::copy(src.begin(), src.end(),
                      res.output.row(row).begin() +
                          static_cast<std::ptrdiff_t>(step * v));
        }
        res.stats += fr.result.stats;
        push_meta(res, GenerationPhase::Decode, step, fr);
        if (req.onStep) {
            GenerationStepView view;
            view.phase = GenerationPhase::Decode;
            view.index = step;
            view.stepsTotal = req.maxSteps;
            view.output = fr.result.output.data().data();
            view.rows = out_rows;
            view.cols = v;
            view.sinceStartMs = since_ms();
            req.onStep(view);
        }
        prev = std::move(fr.result.output);
    }
    res.steps = req.maxSteps;
    res.ttftMs = token_at.front();
    res.totalMs = token_at.back();
    res.interTokenMs.reserve(token_at.size() - 1);
    for (std::size_t n = 1; n < token_at.size(); ++n)
        res.interTokenMs.push_back(token_at[n] - token_at[n - 1]);
    return res;
}

} // namespace serve
} // namespace panacea
