/**
 * @file
 * The autoregressive generation subsystem: multi-step decode as a
 * first-class scheduling citizen of the serving stack, instead of a
 * hand-rolled loop of one-shot submit() calls.
 *
 * A GenerationRequest is a prompt (inputFeatures x promptCols float
 * activations), a step budget, and a seeded sampler. The
 * GenerationScheduler turns it into a chain of engine submissions that
 * re-enter the continuous-batching engine's admission between layer
 * steps (serve/engine.h):
 *
 *   prompt ──▶ PREFILL: the prompt split into bounded chunks of at
 *              most prefillChunkGroups column groups, submitted
 *              SEQUENTIALLY (chunk c+1 after chunk c completes) with
 *              RequestPhase::Prefill - so a long prompt occupies the
 *              engine only one bounded cohort at a time and can never
 *              stall a running decode stream for more than one chunk.
 *                  ▼
 *           DECODE: step n samples the next v-wide input from step
 *              n-1's output (TokenSampler - deterministic in the
 *              request seed), preps its layer-0 operand ON THE PUMP
 *              THREAD (off the engine's cohort critical path), and
 *              submits it with RequestPhase::Decode + the prepared
 *              operand attached (SubmitExtras) - the engine's urgent
 *              queue admits it ahead of any queued prefill, and
 *              never re-preps what the scheduler already prepared.
 *                  ▼
 *           per-step callback (streaming) ─▶ GenerationResult future
 *
 * Phase-aware vs naive FIFO: with GenerationRequest::phaseAware off,
 * the whole prompt goes down as ONE Bulk request and decode steps are
 * Bulk too - exactly the old manual loop's admission behaviour. The
 * policy is per-request, so one scheduler can serve both (that is how
 * bench_generation compares them). Policy changes WHEN steps execute,
 * never WHAT they compute: outputs are byte-identical across policies,
 * ISA levels, worker counts and admission layers, because prefill
 * chunking rides the engine's column-blocked bit-exactness and the
 * sampler chain depends only on output bytes (tests/
 * test_generation.cpp).
 *
 * Paged decode state: each live generation owns an Arena
 * (util/arena.h); the prefill output and every step's output land in
 * arena pages, so the per-step state of a generation is a bump
 * allocation, not a fresh heap graph per step - and the sampler reads
 * step N's page to prep step N+1's single new column group while the
 * engine is busy with other cohorts. Pages live exactly as long as
 * the generation; the terminal GenerationResult owns plain copies.
 *
 * Threading: one pump thread per scheduler, driven by the engine's
 * SubmitExtras::onReady completion hooks (event-driven, no polling).
 * Step callbacks run on the pump thread with no scheduler lock held;
 * they may call generate() re-entrantly but must not block long (they
 * gate the NEXT step's submission of their own generation only).
 */

#ifndef PANACEA_SERVE_GENERATION_GENERATION_H
#define PANACEA_SERVE_GENERATION_GENERATION_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "util/arena.h"
#include "util/matrix.h"
#include "util/random.h"

namespace panacea {
namespace serve {

class ReplicaRouter;

/** Which half of a generation a completed engine step belonged to. */
enum class GenerationPhase : std::uint8_t
{
    Prefill = 0, ///< a bounded prompt chunk
    Decode = 1,  ///< one sampled v-wide step
};

/** @return "prefill" / "decode". */
const char *toString(GenerationPhase phase);

/** Prefill chunk bound when GenerationRequest::prefillChunkGroups
 *  is 0: at most this many column groups per prefill cohort. */
inline constexpr std::size_t kDefaultPrefillChunkGroups = 8;

/**
 * The deterministic next-step sampler: a stand-in for a token head +
 * embedding lookup that keeps the decode chain's bytes reproducible.
 * Step n's input is built from the LAST v output columns of step n-1
 * (or of the prefill): row r of the new input reads the tiled output
 * row (r % rows) and perturbs it with a seeded gaussian draw -
 *
 *     x(r, c) = 0.5 * prev(r % rows, lastV + c) + N(0.2, 1.0)
 *
 * drawn in row-major order, one draw per element, from an Rng seeded
 * at construction. The chain is therefore a pure function of
 * (seed, prompt bytes): any two loops that feed it byte-identical
 * outputs produce byte-identical inputs - the decode-vs-manual-loop
 * identity contract rides on this. Not thread-safe; one sampler per
 * generation.
 */
class TokenSampler
{
  public:
    explicit TokenSampler(std::uint64_t seed) : rng_(seed) {}

    /**
     * Sample the next step's input from the last `v` columns of
     * `prev` (rows x cols, row-major; cols >= v).
     * @return a `features` x `v` float input for layer 0.
     */
    MatrixF next(const float *prev, std::size_t rows, std::size_t cols,
                 std::size_t features, std::size_t v);

    /** Convenience overload over an owned/viewed matrix. */
    MatrixF next(const MatrixF &prev, std::size_t features,
                 std::size_t v);

  private:
    Rng rng_;
};

/**
 * One completed step, streamed to GenerationRequest::onStep. `output`
 * points into the generation's transient step state (an arena page
 * for decode steps, the engine's chunk output for prefill) and is
 * valid only during the callback; copy what you keep.
 */
struct GenerationStepView
{
    std::uint64_t generationId = 0;
    GenerationPhase phase = GenerationPhase::Prefill;
    /** Chunk index (prefill) or step index (decode), 0-based. */
    std::size_t index = 0;
    /** Total decode steps this generation will run. */
    std::size_t stepsTotal = 0;
    const float *output = nullptr; ///< row-major rows x cols
    std::size_t rows = 0;
    std::size_t cols = 0;
    /** Wall time since the generation started. */
    double sinceStartMs = 0.0;
};

/** One autoregressive generation job. */
struct GenerationRequest
{
    /** inputFeatures x (positive multiple of v) float activations. */
    MatrixF prompt;
    /** Decode steps to run after prefill (>= 1); each emits v columns. */
    std::size_t maxSteps = 8;
    /** TokenSampler seed: the decode chain is a pure function of
     *  (samplerSeed, prompt bytes). */
    std::uint64_t samplerSeed = 0xdec0de;
    /**
     * Phase-aware scheduling (the default): prefill goes down in
     * bounded sequential chunks tagged Prefill, decode steps ride the
     * engine's urgent queue tagged Decode. False = the manual loop's
     * admission behaviour (whole prompt + Bulk steps, FIFO); outputs
     * are byte-identical either way.
     */
    bool phaseAware = true;
    /** Prefill chunk bound in column groups (phase-aware only);
     *  0 picks kDefaultPrefillChunkGroups. */
    std::size_t prefillChunkGroups = 0;
    /** Streaming per-step hook (may be null); see GenerationStepView.
     *  Runs on the scheduler's pump thread, no lock held. */
    std::function<void(const GenerationStepView &)> onStep;
};

/** Scheduling record of one engine step of a generation. */
struct GenerationStepMeta
{
    GenerationPhase phase = GenerationPhase::Prefill;
    /** Chunk / step index within its phase, 0-based. */
    std::size_t index = 0;
    std::size_t columns = 0;         ///< activation columns submitted
    std::uint64_t engineId = 0;      ///< engine submission id
    std::uint64_t batchSeq = 0;      ///< cohort sequence number
    std::size_t admittedAtLayer = 0; ///< continuous-admission splice layer
    std::size_t batchSize = 0;       ///< cohort size it rode in
    std::uint64_t modelVersion = 0;  ///< fleet path only (0 otherwise)
    double latencyMs = 0.0;          ///< engine submit-to-complete
};

/** Terminal result of one generation. */
struct GenerationResult
{
    std::uint64_t id = 0;
    /** Final-layer output of the prompt (outputFeatures x promptCols),
     *  byte-identical to a single whole-prompt inference. */
    MatrixF prefillOutput;
    /** Decode outputs, step-major: columns [n*v, (n+1)*v) are step
     *  n's output (outputFeatures x steps*v). */
    MatrixF output;
    std::size_t steps = 0; ///< decode steps executed (== maxSteps)
    /** Exact fold of every chunk's and step's per-request AqsStats. */
    AqsStats stats;
    double prefillMs = 0.0; ///< start to last prefill chunk completion
    double ttftMs = 0.0;    ///< start to FIRST decode step completion
    double totalMs = 0.0;   ///< start to last decode step completion
    /** Gaps between consecutive decode-step completions (steps-1). */
    std::vector<float> interTokenMs;
    /** Per engine-step scheduling records, in completion order
     *  (prefill chunks, then decode steps). */
    std::vector<GenerationStepMeta> stepMeta;
    /** Arena bytes the generation's paged state peaked at. */
    std::size_t arenaBytes = 0;
};

/** Aggregate scheduler counters; see GenerationScheduler::stats(). */
struct GenerationStats
{
    std::uint64_t generations = 0;   ///< completed generations
    std::uint64_t failed = 0;        ///< terminated by an error
    std::uint64_t prefillChunks = 0; ///< completed prefill cohorts
    std::uint64_t decodeSteps = 0;   ///< completed decode cohorts
    std::uint64_t promptColumns = 0; ///< prefill columns served
    std::uint64_t decodeColumns = 0; ///< decode columns served
    /**
     * decodeColumns / (last decode completion - first generation
     * start): the sustained decode rate across everything this
     * scheduler served. 0 until the first decode step completes.
     */
    double tokensPerSecond = 0.0;
    /** Percentiles over sliding windows (most recent 8192) of
     *  completed generations' TTFT and inter-token gaps. */
    double p50TtftMs = 0.0;
    double p99TtftMs = 0.0;
    double p50InterTokenMs = 0.0;
    double p99InterTokenMs = 0.0;
    /** Arena bytes currently held by live generations. */
    std::size_t arenaBytesLive = 0;
    /** Arena bytes of every generation ever retired. */
    std::uint64_t arenaBytesRetired = 0;
};

/**
 * The generation scheduler: turns GenerationRequests into phase-tagged
 * engine submission chains (see the file header). One pump thread; all
 * public methods are thread-safe. Must be destroyed BEFORE the engine
 * it drives (destruction drains live generations through the engine).
 */
class GenerationScheduler
{
  public:
    /** @param engine the engine submissions go to (not owned; must
     *         outlive the scheduler). */
    explicit GenerationScheduler(InferenceEngine &engine);

    /** Runs every live generation to its terminal, then joins. */
    ~GenerationScheduler();

    GenerationScheduler(const GenerationScheduler &) = delete;
    GenerationScheduler &operator=(const GenerationScheduler &) = delete;

    /**
     * Start one generation. Always yields exactly one terminal through
     * the future: a GenerationResult, or an exception
     * (std::invalid_argument for a malformed request - null model,
     * prompt shape, zero steps; std::runtime_error when racing
     * drain()/teardown, or when a step submission was rejected
     * mid-generation). Never blocks on engine progress.
     */
    std::future<GenerationResult>
    generate(std::shared_ptr<const ServedModel> model,
             GenerationRequest req);

    /**
     * Block until every generation started BEFORE the call reached its
     * terminal. Concurrent generate() calls are rejected through their
     * futures while a drain is in progress (std::runtime_error) - the
     * engine drain()'s reject-or-complete contract, one level up.
     */
    void drain();

    /** @return aggregate counters (see GenerationStats). */
    GenerationStats stats() const;

  private:
    struct Active;

    void pumpLoop();
    /** Submit one engine step of `a` (pump thread, no lock held). */
    void submitStep(Active &a, MatrixF input, RequestPhase phase);
    void handleEvent(Active &a);
    void handlePrefillChunk(Active &a, RequestResult &&rr);
    void handleDecodeStep(Active &a, RequestResult &&rr);
    /** Assemble + fulfil the terminal result (pump thread). */
    void finish(Active &a);
    void fail(Active &a, std::exception_ptr exc);
    /** Retire `a`: stats, erase from actives, wake drainers. */
    void retire(std::uint64_t id, bool failed);

    InferenceEngine &engine_;

    mutable std::mutex mutex_;
    std::condition_variable pumpCv_;  ///< ready-queue activity
    std::condition_variable drainCv_; ///< retirement progress
    std::map<std::uint64_t, std::unique_ptr<Active>> active_;
    /** Generation ids with a consumable event (a completed engine
     *  step, or their own start), in arrival order. */
    std::deque<std::uint64_t> ready_;
    std::uint64_t nextId_ = 0;
    int draining_ = 0;
    bool stopping_ = false;

    mutable std::mutex statsMutex_;
    std::uint64_t generations_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t prefillChunks_ = 0;
    std::uint64_t decodeSteps_ = 0;
    std::uint64_t promptColumns_ = 0;
    std::uint64_t decodeColumns_ = 0;
    std::uint64_t arenaRetired_ = 0;
    std::size_t arenaLive_ = 0;
    bool haveFirstStart_ = false;
    std::chrono::steady_clock::time_point firstStartTp_;
    std::chrono::steady_clock::time_point lastDecodeTp_;
    std::vector<float> ttftRing_;
    std::vector<float> interTokenRing_;
    std::size_t ttftNext_ = 0;
    std::size_t interTokenNext_ = 0;

    std::thread pump_;
};

/**
 * Run one generation over the fleet tier, synchronously: the same
 * chunk/sampler chain as the scheduler, with each step routed by
 * ReplicaRouter::submit() under its phase tag, so outputs are
 * byte-identical to Session-side generation at any replica count
 * (whole-request dispatch onto bit-exact engines). A Rejected step
 * (overload shed, quarantine, unknown model) aborts the generation
 * with std::runtime_error. GenerationStepMeta::modelVersion records
 * each step's serving version across hot-reloads.
 */
GenerationResult generateOverRouter(ReplicaRouter &router,
                                    const std::string &model_name,
                                    GenerationRequest req);

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_GENERATION_GENERATION_H
