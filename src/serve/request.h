/**
 * @file
 * Request/response types of the serving engine (serve/engine.h).
 *
 * A request is one float activation matrix (inputFeatures() rows, a
 * positive multiple of v columns - e.g. v decode tokens) bound for a
 * loaded model's layer stack. Results carry, besides the output
 * columns, the request's OWN execution statistics: bit-equal to what a
 * solo run would record, whatever batch the request actually rode in
 * (see ServedModel::runPrepared()).
 */

#ifndef PANACEA_SERVE_REQUEST_H
#define PANACEA_SERVE_REQUEST_H

#include <cstdint>
#include <vector>

#include "core/aqs_gemm.h"
#include "util/matrix.h"

namespace panacea {
namespace serve {

/**
 * Scheduling class of a request. The phase never changes WHAT a
 * request computes - outputs and stats are phase-independent - only
 * WHEN the engine serves it relative to its model's other queued work:
 *
 *  - Bulk:    ordinary FIFO service (the default; every pre-existing
 *             submission path).
 *  - Prefill: a prompt chunk of an autoregressive generation. Served
 *             FIFO like Bulk; the distinct label keeps stats and
 *             schedules attributable.
 *  - Decode:  one decode step of a generation. Served from a per-model
 *             URGENT queue that both cohort formation and continuous
 *             admission drain BEFORE the FIFO queue, so a v-wide
 *             decode step never waits behind a long prefill that
 *             arrived earlier (the generation scheduler's phase-aware
 *             policy, src/serve/generation/).
 */
enum class RequestPhase : std::uint8_t
{
    Bulk = 0,
    Prefill = 1,
    Decode = 2,
};

/** Completion record of one inference request. */
struct RequestResult
{
    std::uint64_t id = 0;   ///< submission id (monotone per engine)
    MatrixF output;         ///< final-layer columns of this request
    /** Scheduling class the request was submitted under. */
    RequestPhase phase = RequestPhase::Bulk;
    /**
     * This request's execution statistics across the layer stack,
     * attributed out of the batched calls via aqsCountStatsBatch():
     * bit-identical to a solo run of the same input for any batch
     * composition, worker count, submission order or ISA level.
     */
    AqsStats stats;
    /** Requests in the micro-batch this one executed in (>= 1). */
    std::size_t batchSize = 0;
    /**
     * Sequence number of that micro-batch (monotone per engine, in
     * batch-formation order). With one worker this exposes the
     * round-robin service order - what the fairness tests pin down;
     * with several workers formation order is still monotone but
     * completion order may differ.
     */
    std::uint64_t batchSeq = 0;
    /**
     * Layer index at which this request joined its executing cohort:
     * 0 = batched at stack entry (always, when continuous mode is
     * off); L > 0 = the continuous scheduler admitted it while the
     * cohort was about to execute layer L - the request caught up
     * through layers 0..L-1 in its admission sub-batch, then rode the
     * cohort for the remaining layers. The VALUE is timing-dependent
     * in continuous mode; the request's output and stats are not.
     */
    std::size_t admittedAtLayer = 0;
    /** Submit-to-completion wall time (timing, not deterministic). */
    double latencyMs = 0.0;
    /**
     * Submit-to-admission wall time: how long the request sat queued
     * before an executing cohort picked it up (layer 0 or a
     * continuous splice). latencyMs == queueWaitMs + executeMs up to
     * clock resolution. Timing, not deterministic.
     */
    double queueWaitMs = 0.0;
    /** Admission-to-completion wall time (timing, not deterministic). */
    double executeMs = 0.0;
};

/**
 * Aggregate engine counters; see InferenceEngine::stats().
 *
 * Percentile semantics (asserted in stats()): every percentile field
 * covers COMPLETED requests only, over a sliding window of the most
 * recent completions (8192) at snapshot time. Requests still queued or
 * in flight are invisible to them - a snapshot taken mid-run reports
 * the tail of what has FINISHED, not of what is stuck. The latency
 * series splits exactly into the queue-wait and execute series below
 * (same requests, same window).
 */
struct EngineStats
{
    std::uint64_t requests = 0;   ///< completed requests
    std::uint64_t prefillRequests = 0; ///< completed Prefill-phase requests
    std::uint64_t decodeRequests = 0;  ///< completed Decode-phase requests
    std::uint64_t batches = 0;    ///< executed micro-batches (cohorts)
    std::uint64_t columns = 0;    ///< activation columns served
    std::size_t maxBatch = 0;     ///< largest cohort (requests)
    double meanBatch = 0.0;       ///< requests / batches
    double p50LatencyMs = 0.0;    ///< median request latency
    double p99LatencyMs = 0.0;    ///< tail request latency
    double p50QueueWaitMs = 0.0;  ///< median submit-to-admission wait
    double p99QueueWaitMs = 0.0;  ///< tail submit-to-admission wait
    double p50ExecuteMs = 0.0;    ///< median admission-to-completion
    double p99ExecuteMs = 0.0;    ///< tail admission-to-completion
    double prepMs = 0.0;          ///< operand prep wall time (all layers)
    double gemmMs = 0.0;          ///< GEMM wall time
    std::uint64_t macs = 0;       ///< dense-equivalent MACs served
    /**
     * Admission-layer histogram: admittedAtLayer[L] counts completed
     * requests that joined their cohort at layer L (index 0 =
     * layer-0 batching; sized to the deepest admission seen, so it is
     * {requests} when continuous mode is off or never spliced). The
     * split is timing-dependent in continuous mode; the TOTAL equals
     * `requests` always.
     */
    std::vector<std::uint64_t> admittedAtLayer;
    /**
     * Exact fold of every completed request's per-request stats:
     * integer counters sum exactly and the macsPerOuterProduct mean is
     * reconstructed from exact weighted sums, so the aggregate is
     * byte-identical for any completion order, worker count, batch
     * composition and ISA level (the timing fields above are not).
     */
    AqsStats aggregate;
};

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_REQUEST_H
