/**
 * @file
 * The inference engine: a submission queue feeding a LAYER-STEPPED
 * execution core on top of the prepared-operand cache and the AQS-GEMM
 * kernels. The unit of execution is one layer step over a cohort of
 * in-flight column groups, not a whole-stack batch - which is what
 * makes continuous (mid-stack) admission possible.
 *
 * Dataflow (one worker iteration):
 *
 *   submit() ──▶ per-model queues ──▶ [front model of the round-robin
 *                (FIFO within a model)  ring: collect ≤ window, wait
 *                                       ≤ deadline]  = cohort
 *                                        ▼
 *                   per-request quantize + slice (layer 0)
 *                   concatActivationOperands() ─ column concat
 *                                        ▼
 *              ┌──▶ ServedModel::forwardPreparedStep(L)  ──┐
 *              │        one layer, GEMM serialized         │
 *              │        across workers                     │
 *              │                                           ▼
 *              │    [continuous] admit queued requests: catch-up
 *              │    layers 0..L via their own step loop, then
 *              │    splice with concatActivationOperands()
 *              └───────────── next layer L+1 ──────────────┘
 *                                        ▼
 *                   split output columns per request, fulfil futures
 *
 * Micro-batching: a worker takes the model at the FRONT of the
 * round-robin ring, coalesces up to batchWindow of ITS pending
 * requests (FIFO within the model), waiting at most batchDeadlineMs
 * for the window to fill. The cohort executes as ONE activation
 * operand whose columns are the requests' columns concatenated -
 * amortizing the per-call weight-side work (band packing, skip-list
 * builds, pool dispatch) that dominates small-N calls - and results
 * are split back per request. Batching is bit-exact: aqsGemm() is
 * column-slice deterministic and every inter-layer step is
 * column-blocked, so request r's output and stats never depend on
 * what else rode along.
 *
 * Continuous admission (EngineOptions::continuous): between layer
 * steps, the worker revisits the model's queue. A request that
 * arrived AFTER the cohort left layer 0 no longer waits for the whole
 * stack to finish: it is caught up through the layers it missed
 * (prepared at layer 0, advanced by the same step loop as its own
 * mini-cohort) and spliced into the running cohort's next operand
 * with concatActivationOperands(). Admission changes WHEN a request
 * executes, never WHAT it computes: catch-up and cohort steps are the
 * same column-blocked math, so outputs and AqsStats stay bit-equal to
 * a solo run for any arrival timing (tests/test_serve_continuous.cpp).
 * RequestResult::admittedAtLayer records where each request joined;
 * EngineStats keeps the admission histogram and splits latency into
 * queue-wait and execute percentiles. With continuous=false the
 * engine admits at layer 0 only and today's pinned round-robin
 * batchSeq schedules are preserved exactly.
 *
 * Phase-aware service (SubmitExtras::phase): each ring slot keeps two
 * queues - the FIFO queue (Bulk/Prefill submissions, the pre-existing
 * order) and an URGENT queue (Decode submissions). Cohort formation
 * and continuous admission both drain urgent before FIFO, so a v-wide
 * decode step of an autoregressive generation overtakes long prefill
 * prompts queued ahead of it instead of paying their full stack
 * latency. Within each queue order stays FIFO; with no Decode
 * submissions the urgent queue is empty and the engine's schedule is
 * byte-for-byte the pre-phase one. Phase changes service order only -
 * outputs and per-request stats stay bit-equal to solo runs.
 *
 * Multi-model fairness: models take turns. A model enters the ring
 * when its first request arrives; after a batch is cut, a model with
 * remaining requests goes to the BACK of the ring. One model flooding
 * the queue therefore costs every other model at most one batch of
 * extra wait per turn - it can never starve them the way the old
 * oldest-request-first pop could. With one worker the service order
 * is fully deterministic (round-robin in ring order, FIFO per model);
 * tests/test_serve_engine.cpp pins it via RequestResult::batchSeq.
 *
 * Overlap: with workers >= 2, one worker's layer-0 operand prep runs
 * concurrently with another worker's GEMM (the GEMM itself is
 * serialized by a mutex so the shared parallel_for pool serves one
 * kernel at a time); both sides fan out on the shared pool.
 *
 * Determinism: per-request outputs and stats are byte-identical for
 * any submission order, worker count, batch window/deadline and
 * PANACEA_ISA level (tests/test_serve_engine.cpp). Engine timing
 * fields (latency percentiles, prep/GEMM ms) are wall-clock and
 * excluded from that contract.
 */

#ifndef PANACEA_SERVE_ENGINE_H
#define PANACEA_SERVE_ENGINE_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "serve/operand_cache.h"
#include "serve/request.h"
#include "serve/served_model.h"

namespace panacea {
namespace serve {

/** Engine configuration (fixed at construction). */
struct EngineOptions
{
    /**
     * Max requests coalesced into one micro-batch. 0 reads
     * PANACEA_BATCH_WINDOW from the environment, falling back to 8.
     */
    int batchWindow = 0;
    /**
     * How long a worker holding a partial batch waits for the window
     * to fill before executing, in milliseconds. 0 = execute whatever
     * is pending immediately (latency-first).
     */
    double batchDeadlineMs = 0.2;
    /**
     * Engine worker threads. 0 picks 2 (one prepping while one runs
     * GEMM); 1 disables the overlap. Workers only change timing, never
     * results.
     */
    int workers = 0;
    /**
     * When true, workers accept submissions but execute nothing until
     * start() is called: submissions queue up and the batch/round-robin
     * schedule becomes a pure function of the submission sequence
     * (deterministic tests, warm-up sequencing). Default: run
     * immediately.
     */
    bool startPaused = false;
    /**
     * Layer-stepped continuous admission. When true, a worker driving
     * a cohort revisits the submission queue BETWEEN layer steps:
     * newly queued same-model requests are caught up through the
     * layers they missed and spliced into the running cohort instead
     * of waiting for the whole stack (see the file header). Cuts
     * head-of-line blocking under open-loop arrivals; bit-exactness
     * and aggregate-stat determinism are unchanged. When false
     * (default), requests batch at layer 0 only and the pinned
     * round-robin batchSeq schedules of paused-start engines are
     * preserved exactly.
     */
    bool continuous = false;
    /**
     * Continuous-mode cap on a cohort's total activation columns:
     * mid-stack admission stops splicing once the cohort carries this
     * many (a request is admitted only if it fits entirely). 0 picks
     * 1024. Layer-0 cohort formation is governed by batchWindow, not
     * this cap.
     */
    int maxInflightColumns = 0;
    /**
     * Deepest layer boundary continuous admission may splice at: a
     * request joins a running cohort at layer L only when
     * L <= maxAdmissionLayer. Catch-up replays L layers at the
     * admission sub-batch's (small, inefficient) width ON the
     * cohort's critical path, so deep admissions trade everyone's
     * execute time for the newcomer's queue wait - boundary 1 is the
     * measured sweet spot on the 1-core CI runner (bench_serving
     * --arrivals). 0 picks 1; raise it to admit at every boundary.
     */
    int maxAdmissionLayer = 0;
    /**
     * Deterministic fault-injection seam (null = no overhead): the
     * executing worker calls stepHook(L) immediately before each main
     * cohort layer step L (catch-up mini-cohorts do not re-invoke it).
     * The hook may BLOCK (stall injection - the cohort, and with one
     * worker the whole engine, freezes until the hook returns) or
     * THROW (fault injection - the cohort aborts, every member's
     * future receives the exception, and the worker moves on to the
     * next batch; the engine itself stays serviceable). This is what
     * the fleet router's quarantine tests drive
     * (serve/fleet.h FleetTestHooks, tests/test_fleet_faults.cpp).
     */
    std::function<void(std::size_t layer)> stepHook;
};

/**
 * Optional per-submission extras of the generation-aware submit()
 * overload. All fields default to the plain-submit behaviour, so
 * submit(model, input) and submit(model, input, {}) are identical.
 */
struct SubmitExtras
{
    /**
     * Scheduling class (see RequestPhase). Decode-phase requests go to
     * the model's urgent queue, drained before its FIFO queue by both
     * cohort formation and continuous admission. Phase never changes
     * results, only service order.
     */
    RequestPhase phase = RequestPhase::Bulk;
    /**
     * Pre-built layer-0 activation operand for `input` (must be
     * exactly ServedModel::prepareInput(input), same column count).
     * When set, cohort formation and catch-up use it verbatim instead
     * of re-quantizing/slicing the input - the generation scheduler
     * preps step N+1's single new column group off the engine's
     * critical path while the cohort GEMMs, then attaches it here.
     * Bit-exactness is unaffected because prepareInput() is
     * deterministic; a mismatched column count is rejected like any
     * malformed request.
     */
    std::shared_ptr<const ActivationOperand> prepared;
    /**
     * Completion hook: invoked exactly once, AFTER the request's
     * promise is resolved (value, fault, or synchronous rejection),
     * from whatever thread resolved it. The generation scheduler's
     * event pump blocks on this instead of polling futures. Must not
     * throw; keep it O(1) - it runs on the engine worker's path.
     */
    std::function<void()> onReady;
};

/**
 * The serving engine. Owns worker threads and (optionally) a model
 * cache reference; all public methods are thread-safe.
 */
class InferenceEngine
{
  public:
    /**
     * @param opts  engine options (see EngineOptions)
     * @param cache prepared-model cache load() goes through; defaults
     *              to the process-wide cache so engines share models
     */
    explicit InferenceEngine(
        const EngineOptions &opts = {},
        PreparedModelCache *cache = &PreparedModelCache::global());

    /** Drains the queue, then joins the workers. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Load (or fetch from cache) a model for serving. Weight operands
     * are prepared at most once per cache key; the returned handle is
     * the submit() routing key.
     */
    std::shared_ptr<const ServedModel>
    load(const ModelSpec &spec, const ServeModelOptions &opts = {});

    /**
     * Enqueue one request. `input` must be model->inputFeatures() rows
     * by a positive multiple-of-v columns (each v-wide column group is
     * an independently batchable unit). Returns a future fulfilled
     * when the request's micro-batch completes. A malformed request
     * (null model, wrong feature rows, bad column count) or a submit
     * after shutdown began is rejected through the future itself -
     * get() throws std::invalid_argument - and never disturbs other
     * requests. A submit racing a drain() is rejected the same way
     * (get() throws std::runtime_error): accepting it could keep
     * extending the drain forever, and fulfilling the rejection
     * through the future means no submission ever hangs.
     */
    std::future<RequestResult>
    submit(std::shared_ptr<const ServedModel> model, MatrixF input);

    /**
     * submit() with per-request extras: a scheduling phase, an
     * optional pre-built layer-0 operand, and a completion hook (see
     * SubmitExtras). The plain overload is exactly
     * submit(model, input, {}).
     */
    std::future<RequestResult>
    submit(std::shared_ptr<const ServedModel> model, MatrixF input,
           SubmitExtras extras);

    /**
     * Release the workers of a startPaused engine (no-op otherwise,
     * idempotent). Requests submitted while paused execute in
     * round-robin ring order once started.
     */
    void start();

    /**
     * Block until every request submitted BEFORE the call has
     * completed. Implies start(): draining a paused engine would
     * otherwise never return. While a drain is in progress concurrent
     * submit() calls are rejected through their futures
     * (std::runtime_error) - previously they were accepted, which let
     * a fast submitter extend the drain unboundedly and left a
     * submit-after-teardown future hanging. Reject-or-complete is
     * pinned in tests/test_serve_engine.cpp.
     */
    void drain();

    /** @return aggregate counters (see EngineStats). */
    EngineStats stats() const;

    /** @return the resolved options (window/deadline/workers). */
    const EngineOptions &options() const { return opts_; }

  private:
    struct Pending;
    struct Member;
    struct ModelQueue;

    void workerLoop();

    /**
     * Execute one cohort to completion, one layer step at a time; in
     * continuous mode, admit queued same-model requests between
     * steps. Fulfils every member's future.
     * @return the number of requests completed (>= batch.size() -
     *         admissions grow the cohort).
     */
    std::size_t runStack(const std::shared_ptr<const ServedModel> &model,
                         std::vector<Pending> &batch,
                         std::uint64_t batch_seq);

    /**
     * Pop queued requests of `model` admissible into a cohort already
     * carrying `cohort_columns` activation columns (FIFO, capped by
     * maxInflightColumns). Takes mutex_; call with no lock held.
     */
    std::vector<Pending> takeAdmissions(const ServedModel *model,
                                        std::size_t cohort_columns);

    /**
     * Run newcomers through layers [0, upto) as their own mini-cohort
     * (the layers they missed), accumulating their per-request stats.
     * @return their float activations adapted for layer `upto`.
     */
    MatrixF catchUp(const ServedModel &model,
                    std::span<Member> newcomers,
                    std::span<const std::size_t> offsets,
                    std::size_t upto, double &prep_ms, double &gemm_ms);

    /**
     * Per-member layer-0 prep + column concat: the cohort- and
     * catch-up-formation primitive (one code path, so the two can
     * never diverge on the splice bit-exactness invariant).
     */
    static ActivationOperand
    prepareLayer0Concat(const ServedModel &model,
                        std::span<const Member> members);

    /** The model's ring slot, or nullptr (requires mutex_). */
    ModelQueue *findQueue(const ServedModel *model);

    EngineOptions opts_;
    PreparedModelCache *cache_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;  ///< queue activity
    std::condition_variable drainCv_; ///< completion progress
    /**
     * The round-robin ring: one slot per model with pending requests,
     * in service order (new models join at the back; a model with
     * leftovers after a batch re-joins at the back). Requests are
     * FIFO within a slot. deque: refs to surviving slots stay valid
     * across push/pop at the ends.
     */
    std::deque<ModelQueue> ring_;
    std::size_t pendingCount_ = 0;
    std::size_t inFlight_ = 0;
    std::uint64_t nextId_ = 0;
    std::uint64_t nextBatchSeq_ = 0;
    bool started_ = false;
    bool stopping_ = false;
    int draining_ = 0; ///< active drain() calls; submit() rejects while > 0

    std::mutex gemmMutex_; ///< one GEMM at a time on the shared pool

    /**
     * Aggregate state is O(1) in served requests: counters fold
     * incrementally (exact integer sums, so completion order cannot
     * change them; the one floating-point stats field is reconstructed
     * from exact sums in stats()), and latency percentiles cover a
     * fixed-size window of the most recent requests.
     */
    mutable std::mutex statsMutex_;
    AqsStats aggregate_;             ///< integer counters only
    double macsWeightedSum_ = 0.0;   ///< sum of v*v * denseOuterProducts
    std::uint64_t requests_ = 0;
    std::uint64_t prefillRequests_ = 0;
    std::uint64_t decodeRequests_ = 0;
    /**
     * Rings of recent per-request timings, pushed together so the
     * three percentile series always cover the SAME completed
     * requests (asserted in stats()).
     */
    std::vector<float> latenciesMs_;
    std::vector<float> queueWaitsMs_;
    std::vector<float> executesMs_;
    std::size_t latencyNext_ = 0;
    /** admissionHist_[L] = completed requests admitted at layer L. */
    std::vector<std::uint64_t> admissionHist_;
    std::uint64_t batches_ = 0;
    std::uint64_t columns_ = 0;
    std::uint64_t macs_ = 0;
    std::size_t maxBatch_ = 0;
    double prepMs_ = 0.0;
    double gemmMs_ = 0.0;

    std::vector<std::thread> workers_;
};

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_ENGINE_H
