#include "serve/fleet.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/fnv.h"
#include "util/walltime.h"

namespace panacea {
namespace serve {

namespace {

int
defaultReplicas()
{
    if (const char *env = std::getenv("PANACEA_REPLICAS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<int>(v);
    }
    return 2;
}

/** Default per-replica outstanding-column bound (router + engine). */
constexpr std::size_t kDefaultQueueCapColumns = 256;

/** Default cap on columns forwarded into the engine at once. */
constexpr std::size_t kDefaultEngineDepthColumns = 64;

} // namespace

/**
 * One queued fleet request. Owns the promise (single owner at every
 * instant = exactly-once) AND the original input: the engine consumes
 * a copy, so a faulted request can be redispatched from here.
 */
struct ReplicaRouter::PendingReq
{
    std::uint64_t id = 0;
    std::string name;
    std::shared_ptr<const ServedModel> model; ///< pinned at admission
    std::uint64_t version = 0;
    MatrixF input;
    /** Scheduling class forwarded to the engine (SubmitExtras). */
    RequestPhase phase = RequestPhase::Bulk;
    std::promise<FleetResult> promise;
    std::chrono::steady_clock::time_point submitted;
    int dispatches = 0;
};

/** A request forwarded into a replica's engine (not recallable). */
struct ReplicaRouter::InFlightReq
{
    PendingReq req;
    std::future<RequestResult> engineFut;
};

/** name -> the model version NEW submissions route to. */
struct ReplicaRouter::Deployment
{
    std::string name;
    std::shared_ptr<const ServedModel> model;
    std::uint64_t version = 0;
};

/**
 * The shared stall gate testHooks' stallAtLayer blocks on. One latch
 * per router, shared_ptr-held by every stall hook so a hook caught
 * mid-block outlives even the router (engine workers may still be
 * inside it while the engine is being torn down).
 */
struct ReplicaRouter::StallLatch
{
    std::mutex m;
    std::condition_variable cv;
    bool released = false;

    void release()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            released = true;
        }
        cv.notify_all();
    }
    void wait()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return released; });
    }
};

/**
 * One replica: an engine plus the router-side state around it. The
 * router queue holds requests that can still be recalled on a fault;
 * inEngine holds requests the engine owns (promise still here, but
 * the work is committed). All fields require ReplicaRouter::mutex_
 * except engine (thread-safe) and the thread handles.
 */
struct ReplicaRouter::Replica
{
    std::unique_ptr<InferenceEngine> engine;
    std::deque<PendingReq> queue;
    std::deque<InFlightReq> inEngine;
    std::size_t queuedColumns = 0;
    std::size_t engineColumns = 0;
    bool quarantined = false;
    std::string quarantineReason;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t faults = 0;
    std::uint64_t recalled = 0;
    std::condition_variable dispatchCv;
    std::condition_variable harvestCv;
    std::thread dispatcher;
    std::thread harvester;
};

ReplicaRouter::ReplicaRouter(const FleetOptions &opts) : opts_(opts)
{
    if (opts_.replicas <= 0)
        opts_.replicas = defaultReplicas();
    if (opts_.queueCapColumns == 0)
        opts_.queueCapColumns = kDefaultQueueCapColumns;
    if (opts_.engineDepthColumns == 0)
        opts_.engineDepthColumns = kDefaultEngineDepthColumns;
    if (opts_.engineDepthColumns > opts_.queueCapColumns)
        opts_.engineDepthColumns = opts_.queueCapColumns;
    if (opts_.placementWidth <= 0 ||
        opts_.placementWidth > opts_.replicas)
        opts_.placementWidth = opts_.replicas;
    if (opts_.engine.workers <= 0)
        opts_.engine.workers = 1;
    // The router gates dispatch (started_), never the engines: a
    // paused ENGINE would also pause fault delivery.
    opts_.engine.startPaused = false;
    started_ = !opts_.startPaused;
    stallLatch_ = std::make_shared<StallLatch>();

    const std::size_t n = static_cast<std::size_t>(opts_.replicas);
    replicas_.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
        auto rep = std::make_unique<Replica>();
        EngineOptions eopts = opts_.engine;
        FleetTestHooks::Replica hook;
        if (r < opts_.testHooks.replicas.size())
            hook = opts_.testHooks.replicas[r];
        if (hook.throwOnCohort > 0 || hook.stallAtLayer >= 0) {
            // Cohorts are counted at layer 0 (exactly one per cohort,
            // catch-up replays excluded) so throwOnCohort numbers the
            // replica's executed cohorts 1, 2, ...
            auto cohorts =
                std::make_shared<std::atomic<std::uint64_t>>(0);
            std::shared_ptr<StallLatch> latch = stallLatch_;
            eopts.stepHook = [hook, cohorts,
                              latch](std::size_t layer) {
                if (layer == 0 && hook.throwOnCohort > 0 &&
                    cohorts->fetch_add(1) + 1 == hook.throwOnCohort)
                    throw std::runtime_error(
                        "injected engine fault (testHooks "
                        "throwOnCohort)");
                if (hook.stallAtLayer >= 0 &&
                    layer ==
                        static_cast<std::size_t>(hook.stallAtLayer))
                    latch->wait();
            };
        }
        rep->engine = std::make_unique<InferenceEngine>(eopts);
        replicas_.push_back(std::move(rep));
    }
    // Threads start after every replica exists: loops index the
    // finished vector.
    for (std::size_t r = 0; r < n; ++r) {
        replicas_[r]->dispatcher =
            std::thread([this, r] { dispatchLoop(r); });
        replicas_[r]->harvester =
            std::thread([this, r] { harvestLoop(r); });
    }
}

ReplicaRouter::~ReplicaRouter()
{
    // Unblock injected stalls first: a stalled engine can never drain
    // and its dtor would deadlock joining workers.
    releaseStalls();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Every still-queued request resolves as a typed rejection -
        // futures never dangle across teardown. In-engine requests
        // are the harvesters' job: engine dtors drain, so their
        // futures all resolve.
        for (std::unique_ptr<Replica> &rep : replicas_) {
            while (!rep->queue.empty()) {
                PendingReq req = std::move(rep->queue.front());
                rep->queue.pop_front();
                rep->queuedColumns -= req.input.cols();
                rejectLocked(std::move(req), "router shutdown");
            }
        }
    }
    for (std::unique_ptr<Replica> &rep : replicas_) {
        rep->dispatchCv.notify_all();
        rep->harvestCv.notify_all();
    }
    for (std::unique_ptr<Replica> &rep : replicas_) {
        rep->dispatcher.join();
        rep->harvester.join();
    }
}

std::uint64_t
ReplicaRouter::deploy(std::shared_ptr<const ServedModel> model)
{
    if (model == nullptr)
        throw std::invalid_argument("deploy() needs a model");
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string &name = model->spec().name;
    const std::uint64_t version = nextVersion_++;
    for (Deployment &d : deployments_) {
        if (d.name == name) {
            // Redeploying a live name IS the hot-reload: the swap is
            // one pointer assignment under the router mutex, so a
            // submission sees either the old (model, version) pair or
            // the new - never a mix. Requests already admitted hold
            // their own shared_ptr and finish on it.
            d.model = std::move(model);
            d.version = version;
            ++reloads_;
            return version;
        }
    }
    deployments_.push_back(Deployment{name, std::move(model), version});
    return version;
}

std::uint64_t
ReplicaRouter::reload(std::shared_ptr<const ServedModel> model)
{
    return deploy(std::move(model));
}

void
ReplicaRouter::rejectLocked(PendingReq &&req, std::string why)
{
    FleetResult out;
    out.outcome = FleetOutcome::Rejected;
    out.rejectReason = std::move(why);
    out.dispatches = req.dispatches;
    out.modelVersion = req.version;
    out.fleetLatencyMs = msSince(req.submitted);
    ++rejected_;
    ++terminal_;
    req.promise.set_value(std::move(out));
    drainCv_.notify_all();
}

int
ReplicaRouter::pickReplicaLocked(const std::string &name,
                                 std::size_t cols) const
{
    const int n = static_cast<int>(replicas_.size());
    const int width = opts_.placementWidth;
    const int start = static_cast<int>(
        fnv1a64(name.data(), name.size()) %
        static_cast<std::uint64_t>(n));
    int best = -1;
    std::size_t best_out = 0;
    // Scan replica indices in INCREASING order (placement membership
    // filters) so least-outstanding ties break toward the lowest
    // index - the property the pinned-dispatch tests replicate.
    for (int r = 0; r < n; ++r) {
        const int off = (r - start + n) % n;
        if (off >= width)
            continue;
        const Replica &rep = *replicas_[static_cast<std::size_t>(r)];
        if (rep.quarantined)
            continue;
        const std::size_t out = rep.queuedColumns + rep.engineColumns;
        if (out + cols > opts_.queueCapColumns)
            continue;
        if (best < 0 || out < best_out) {
            best = r;
            best_out = out;
        }
    }
    return best;
}

void
ReplicaRouter::enqueueLocked(int r, PendingReq &&req)
{
    Replica &rep = *replicas_[static_cast<std::size_t>(r)];
    rep.queuedColumns += req.input.cols();
    rep.queue.push_back(std::move(req));
}

void
ReplicaRouter::redispatchLocked(PendingReq &&req)
{
    const int r = pickReplicaLocked(req.name, req.input.cols());
    if (r < 0) {
        rejectLocked(std::move(req),
                     "shed after replica fault: no healthy replica "
                     "with capacity");
        return;
    }
    ++redispatched_;
    enqueueLocked(r, std::move(req));
    replicas_[static_cast<std::size_t>(r)]->dispatchCv.notify_all();
}

void
ReplicaRouter::quarantineLocked(std::size_t r, const std::string &why)
{
    Replica &rep = *replicas_[r];
    if (rep.quarantined)
        return;
    rep.quarantined = true;
    rep.quarantineReason = why;
    // Recall the router queue (the engine never saw these) and move
    // each, FIFO, to a healthy replica - or shed it typed. The
    // in-engine list stays: those requests are the engine's to
    // finish.
    std::deque<PendingReq> recalled = std::move(rep.queue);
    rep.queue.clear();
    rep.queuedColumns = 0;
    rep.recalled += recalled.size();
    while (!recalled.empty()) {
        redispatchLocked(std::move(recalled.front()));
        recalled.pop_front();
    }
}

std::shared_ptr<const ServedModel>
ReplicaRouter::deployedModel(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Deployment &d : deployments_)
        if (d.name == name)
            return d.model;
    return nullptr;
}

std::future<FleetResult>
ReplicaRouter::submit(const std::string &model_name, MatrixF input,
                      RequestPhase phase)
{
    PendingReq req;
    req.name = model_name;
    req.input = std::move(input);
    req.phase = phase;
    req.submitted = nowTick();
    std::future<FleetResult> fut = req.promise.get_future();

    std::unique_lock<std::mutex> lock(mutex_);
    ++submitted_;
    req.id = submitted_;
    if (stopping_) {
        rejectLocked(std::move(req), "router shutdown");
        return fut;
    }
    if (draining_ > 0) {
        // Same reject-or-complete contract as the engine's drain():
        // accepting would extend the drain unboundedly.
        rejectLocked(std::move(req), "drain in progress");
        return fut;
    }
    Deployment *dep = nullptr;
    for (Deployment &d : deployments_) {
        if (d.name == model_name) {
            dep = &d;
            break;
        }
    }
    if (dep == nullptr) {
        rejectLocked(std::move(req),
                     "unknown model '" + model_name + "'");
        return fut;
    }
    const std::size_t uv =
        static_cast<std::size_t>(dep->model->options().v);
    if (req.input.rows() != dep->model->inputFeatures() ||
        req.input.cols() == 0 || req.input.cols() % uv != 0) {
        rejectLocked(std::move(req),
                     "malformed request: need " +
                         std::to_string(dep->model->inputFeatures()) +
                         " rows x positive multiple of v=" +
                         std::to_string(uv) + " cols, got " +
                         std::to_string(req.input.rows()) + "x" +
                         std::to_string(req.input.cols()));
        return fut;
    }
    // Admission pins the (model, version) pair: a reload after this
    // point does not touch this request.
    req.model = dep->model;
    req.version = dep->version;
    const int r = pickReplicaLocked(model_name, req.input.cols());
    if (r < 0) {
        bool any_healthy = false;
        for (const std::unique_ptr<Replica> &rep : replicas_)
            any_healthy = any_healthy || !rep->quarantined;
        rejectLocked(std::move(req),
                     any_healthy
                         ? "queue full: every placement replica at "
                           "its column bound"
                         : "no healthy replica");
        return fut;
    }
    enqueueLocked(r, std::move(req));
    lock.unlock();
    replicas_[static_cast<std::size_t>(r)]->dispatchCv.notify_all();
    return fut;
}

void
ReplicaRouter::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        started_ = true;
    }
    for (std::unique_ptr<Replica> &rep : replicas_)
        rep->dispatchCv.notify_all();
}

void
ReplicaRouter::drain()
{
    start();
    std::unique_lock<std::mutex> lock(mutex_);
    ++draining_;
    drainCv_.wait(lock, [&] { return terminal_ == submitted_; });
    --draining_;
}

void
ReplicaRouter::releaseStalls()
{
    stallLatch_->release();
}

void
ReplicaRouter::dispatchLoop(std::size_t ri)
{
    Replica &rep = *replicas_[ri];
    double admit_delay_ms = 0.0;
    if (ri < opts_.testHooks.replicas.size())
        admit_delay_ms = opts_.testHooks.replicas[ri].admitDelayMs;

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        rep.dispatchCv.wait(lock, [&] {
            return stopping_ ||
                   (started_ && !rep.quarantined &&
                    !rep.queue.empty() &&
                    rep.engineColumns < opts_.engineDepthColumns);
        });
        if (stopping_)
            return;
        PendingReq req = std::move(rep.queue.front());
        rep.queue.pop_front();
        const std::size_t cols = req.input.cols();
        // Column accounting moves queue -> engine under the SAME lock
        // hold, so pickReplicaLocked never sees the request counted
        // twice or not at all.
        rep.queuedColumns -= cols;
        rep.engineColumns += cols;
        ++rep.dispatched;
        ++req.dispatches;
        std::shared_ptr<const ServedModel> model = req.model;

        lock.unlock();
        if (admit_delay_ms > 0.0)
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long long>(admit_delay_ms * 1000.0)));
        // The engine consumes a COPY: the original stays with the
        // request so a faulted cohort can redispatch it elsewhere.
        SubmitExtras extras;
        extras.phase = req.phase;
        std::future<RequestResult> ef = rep.engine->submit(
            std::move(model), MatrixF(req.input), std::move(extras));
        lock.lock();
        rep.inEngine.push_back(
            InFlightReq{std::move(req), std::move(ef)});
        rep.harvestCv.notify_all();
    }
}

void
ReplicaRouter::harvestLoop(std::size_t ri)
{
    Replica &rep = *replicas_[ri];
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        rep.harvestCv.wait(lock, [&] {
            return stopping_ || !rep.inEngine.empty();
        });
        if (rep.inEngine.empty()) {
            if (stopping_)
                return;
            continue;
        }
        // Harvest strictly in forward order (the engine serves a
        // replica's requests FIFO anyway). The deque reference stays
        // valid across the unlocked wait: only this thread pops, and
        // push_back never moves existing elements.
        InFlightReq &front = rep.inEngine.front();
        lock.unlock();
        if (opts_.stallTimeoutMs > 0.0) {
            const auto timeout = std::chrono::microseconds(
                static_cast<long long>(opts_.stallTimeoutMs *
                                       1000.0));
            bool flagged = false;
            while (front.engineFut.wait_for(timeout) !=
                   std::future_status::ready) {
                // Unresponsive replica: quarantine ONCE (recalls its
                // queue), then keep waiting - the committed request
                // completes if the stall ever releases, exactly once,
                // here.
                if (!flagged) {
                    flagged = true;
                    lock.lock();
                    quarantineLocked(
                        ri, "stalled: no step progress within " +
                                std::to_string(opts_.stallTimeoutMs) +
                                " ms");
                    lock.unlock();
                }
            }
        } else {
            front.engineFut.wait();
        }
        lock.lock();
        InFlightReq done = std::move(rep.inEngine.front());
        rep.inEngine.pop_front();
        rep.engineColumns -= done.req.input.cols();
        try {
            RequestResult res = done.engineFut.get();
            FleetResult out;
            out.outcome = FleetOutcome::Completed;
            out.result = std::move(res);
            out.replica = static_cast<int>(ri);
            out.dispatches = done.req.dispatches;
            out.modelVersion = done.req.version;
            out.fleetLatencyMs = msSince(done.req.submitted);
            ++completed_;
            ++rep.completed;
            ++terminal_;
            done.req.promise.set_value(std::move(out));
            drainCv_.notify_all();
        } catch (const std::exception &e) {
            // The cohort threw: this request was never answered, so
            // it goes back through placement (or sheds, typed).
            ++rep.faults;
            quarantineLocked(ri, std::string("engine fault: ") +
                                     e.what());
            redispatchLocked(std::move(done.req));
        }
        // Engine capacity freed either way; and after a quarantine
        // other replicas' dispatchers were notified by
        // redispatchLocked.
        rep.dispatchCv.notify_all();
    }
}

FleetStats
ReplicaRouter::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FleetStats s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.redispatched = redispatched_;
    s.reloads = reloads_;
    s.replicas.reserve(replicas_.size());
    for (const std::unique_ptr<Replica> &rep : replicas_) {
        FleetStats::Replica r;
        r.dispatched = rep->dispatched;
        r.completed = rep->completed;
        r.faults = rep->faults;
        r.recalled = rep->recalled;
        r.quarantined = rep->quarantined;
        r.quarantineReason = rep->quarantineReason;
        r.outstandingColumns = rep->queuedColumns + rep->engineColumns;
        if (rep->quarantined)
            ++s.quarantined;
        s.replicas.push_back(std::move(r));
    }
    return s;
}

} // namespace serve
} // namespace panacea
