/**
 * @file
 * The fleet tier: a ReplicaRouter fronting N InferenceEngine replicas
 * (thread-scoped, each with its own worker threads) that share one
 * immutable ServedModel per deployed model - with .pncm v2 models
 * mmapped read-only, replicas share a single physical copy of the
 * weights, so a replica costs threads, not memory.
 *
 * Topology (one router, N replicas, per-model placement):
 *
 *   submit(name, input) ─▶ [admission, under the router mutex]
 *        │   draining / unknown model / malformed / every placement
 *        │   replica full or quarantined ─▶ typed Rejected result
 *        ▼
 *   placement set of `name` (placementWidth consecutive replicas,
 *   start = hash(name) % N) ∩ healthy ─▶ least outstanding COLUMNS
 *   (queued + in-engine; tie → lowest index) ─▶ replica r's bounded
 *   FIFO queue
 *        ▼                      per replica r:
 *   [dispatcher thread r] ─▶ forwards while in-engine columns <
 *        │                   engineDepthColumns (keeping depth
 *        │                   shallow preserves redispatchability)
 *        ▼
 *   InferenceEngine r (continuous batching over the shared model)
 *        ▼
 *   [harvester thread r] ─▶ Completed{output, replica, version}
 *                           or, on an engine fault: quarantine r,
 *                           recall its queue, redispatch-or-shed
 *
 * Exactly-once: a request's promise has a single owner at every
 * instant - it moves router queue → in-engine list → fulfilment, and
 * every admission failure fulfils it immediately with a typed
 * Rejected - so each submission gets exactly one terminal result
 * (completed xor rejected), never zero, never two
 * (tests/test_fleet_router.cpp).
 *
 * Backpressure: queues are bounded in COLUMNS (the engine's unit of
 * work - requests vary in width). A full placement set sheds at
 * admission with FleetOutcome::Rejected instead of queueing
 * unboundedly: under overload, p99 of what IS served stays bounded
 * and the shed rate is the overload signal (bench_fleet at 2x
 * capacity).
 *
 * Fault handling: an engine throw (or a stall detected by
 * stallTimeoutMs) quarantines the replica - it takes no new work and
 * its router-queued requests are recalled and redispatched to healthy
 * replicas (or shed, typed, when none can take them). Requests
 * already forwarded INTO a stalled engine cannot be recalled (the
 * engine owns them); they complete if the stall ever releases -
 * still exactly once, on the quarantined replica. A THROWN cohort's
 * requests, by contrast, come back through the future's exception and
 * ARE redispatched. FleetOptions::testHooks drives all three modes
 * deterministically (tests/test_fleet_faults.cpp).
 *
 * Hot-reload: reload(model) atomically replaces the model a name
 * routes NEW submissions to; requests admitted earlier hold a
 * shared_ptr to the version they were admitted under and complete on
 * it (FleetResult::modelVersion says which). ServedModel is immutable
 * after construction, so no request ever observes a torn model; the
 * old version is released when its last in-flight request drains
 * (tests/test_fleet_reload.cpp).
 *
 * Determinism: dispatch depends only on submission order and queue
 * depths, so a paused router (startPaused, submit everything, then
 * start) has a pinned placement schedule for a fixed submission
 * sequence; outputs are byte-identical to solo runs regardless of
 * replica count, fault schedule, or reload timing because replicas
 * never split a request (whole-request dispatch onto bit-exact
 * engines).
 */

#ifndef PANACEA_SERVE_FLEET_H
#define PANACEA_SERVE_FLEET_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "serve/request.h"
#include "serve/served_model.h"

namespace panacea {
namespace serve {

/** Terminal disposition of a fleet submission (exactly one per). */
enum class FleetOutcome
{
    Completed, ///< served; FleetResult::result holds the engine result
    Rejected   ///< load-shed or refused; rejectReason says why
};

/** Terminal result of one fleet submission. */
struct FleetResult
{
    FleetOutcome outcome = FleetOutcome::Rejected;
    /** Engine-level result (output, stats); valid when Completed. */
    RequestResult result;
    /** Why the request was shed/refused; empty when Completed. */
    std::string rejectReason;
    /** Replica that served it; -1 when Rejected before dispatch. */
    int replica = -1;
    /** Engine forwards (>1 = redispatched after a replica fault). */
    int dispatches = 0;
    /** Model version the request executed on (reload boundary tag). */
    std::uint64_t modelVersion = 0;
    /** Submit-to-terminal wall time as seen by the router. */
    double fleetLatencyMs = 0.0;
};

/**
 * Deterministic per-replica fault injection (tests only; default =
 * all off). Entries index replicas; a shorter vector leaves the rest
 * at defaults.
 */
struct FleetTestHooks
{
    struct Replica
    {
        /** Sleep this long before each engine forward (slow replica). */
        double admitDelayMs = 0.0;
        /**
         * Throw from the replica's Nth executed cohort (1-based; 0 =
         * never): the whole cohort's futures get the exception and
         * the router must quarantine + redispatch.
         */
        std::uint64_t throwOnCohort = 0;
        /**
         * Block the replica's engine at this layer boundary until
         * ReplicaRouter::releaseStalls() (-1 = never): models a hung
         * replica for stall-detection tests.
         */
        int stallAtLayer = -1;
    };
    std::vector<Replica> replicas;
};

/** Router configuration (fixed at construction). */
struct FleetOptions
{
    /** Replica count. 0 reads PANACEA_REPLICAS, falling back to 2. */
    int replicas = 0;
    /**
     * Per-replica bound on outstanding activation columns (router
     * queue + in-engine). Admission sheds when every healthy
     * placement replica is at the bound. 0 picks 256.
     */
    std::size_t queueCapColumns = 0;
    /**
     * Per-replica cap on columns forwarded INTO the engine at once;
     * the rest wait in the router queue where they can still be
     * recalled on a fault. 0 picks 64 (clamped to queueCapColumns).
     */
    std::size_t engineDepthColumns = 0;
    /**
     * Replicas each model is placed on (consecutive from
     * hash(name) % replicas). 0 = all replicas. Width < N isolates
     * models from each other's overload.
     */
    int placementWidth = 0;
    /**
     * Harvester wait before declaring an unresponsive replica stalled
     * and quarantining it (its QUEUED requests redispatch; the stuck
     * in-engine cohort completes if the stall ever releases). 0 =
     * stall detection off (faults still quarantine via exceptions).
     */
    double stallTimeoutMs = 0.0;
    /**
     * When true, dispatchers forward nothing until start():
     * submissions accumulate and the dispatch schedule becomes a pure
     * function of the submission sequence (deterministic tests).
     */
    bool startPaused = false;
    /**
     * Per-replica engine options. workers <= 0 picks 1 (one engine
     * worker per replica - the replica IS the unit of parallelism);
     * startPaused is forced false (the router gates dispatch
     * instead).
     */
    EngineOptions engine;
    FleetTestHooks testHooks;
};

/** Aggregate router counters (monotonic; see also EngineStats). */
struct FleetStats
{
    struct Replica
    {
        std::uint64_t dispatched = 0; ///< engine forwards
        std::uint64_t completed = 0;
        std::uint64_t faults = 0;    ///< cohorts that threw
        std::uint64_t recalled = 0;  ///< queued reqs pulled on fault
        bool quarantined = false;
        std::string quarantineReason;
        std::size_t outstandingColumns = 0; ///< queued + in-engine
    };
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;     ///< typed sheds/refusals
    std::uint64_t redispatched = 0; ///< re-forwards after faults
    std::uint64_t reloads = 0;
    std::uint64_t quarantined = 0;  ///< replicas currently quarantined
    std::vector<Replica> replicas;
};

/**
 * The fleet front-end. One instance owns N replicas (engine +
 * dispatcher thread + harvester thread each) and routes by model
 * name; all public methods are thread-safe.
 */
class ReplicaRouter
{
  public:
    explicit ReplicaRouter(const FleetOptions &opts = {});

    /** Releases stalls, drains what it can, then joins everything. */
    ~ReplicaRouter();

    ReplicaRouter(const ReplicaRouter &) = delete;
    ReplicaRouter &operator=(const ReplicaRouter &) = delete;

    /**
     * Make `model` routable by its spec().name. Deploying a name that
     * already exists is a hot-reload (see reload()).
     * @return the version tag new submissions will carry.
     */
    std::uint64_t deploy(std::shared_ptr<const ServedModel> model);

    /**
     * Hot-reload: atomically swap the model `model->spec().name`
     * routes to. In-flight and queued requests complete on the
     * version they were admitted under; submissions after return
     * carry the new version. Never blocks on traffic.
     */
    std::uint64_t reload(std::shared_ptr<const ServedModel> model);

    /**
     * Submit one request to the named model. ALWAYS yields exactly
     * one terminal FleetResult through the future - Completed, or
     * typed Rejected (unknown model, malformed input, drain in
     * progress, or every healthy placement replica at its column
     * bound). The future never throws.
     */
    std::future<FleetResult> submit(const std::string &model_name,
                                    MatrixF input,
                                    RequestPhase phase =
                                        RequestPhase::Bulk);

    /**
     * @return the model NEW submissions of `name` currently route to
     * (what the generation loop sizes prompts and samplers against),
     * or null when the name is not deployed. A reload after return
     * may supersede it - requests admitted earlier still complete on
     * their pinned version.
     */
    std::shared_ptr<const ServedModel>
    deployedModel(const std::string &name) const;

    /** Release a startPaused router's dispatchers (idempotent). */
    void start();

    /**
     * Block until every prior submission reached its terminal result.
     * Implies start(); concurrent submit() calls are Rejected while
     * draining (same reject-or-complete contract as the engine's).
     */
    void drain();

    /** Open every testHooks stall latch (idempotent). */
    void releaseStalls();

    FleetStats stats() const;
    const FleetOptions &options() const { return opts_; }
    int replicaCount() const
    {
        return static_cast<int>(replicas_.size());
    }

  private:
    struct PendingReq;  ///< a promise-owning queued request
    struct InFlightReq; ///< forwarded: pending + engine future
    struct Deployment;  ///< name -> (model, version)
    struct Replica;     ///< engine + queues + threads + counters
    struct StallLatch;  ///< shared releasable block for stall hooks

    void dispatchLoop(std::size_t r);
    void harvestLoop(std::size_t r);

    /** Healthy placement replica with least outstanding columns, or
     *  -1. Requires mutex_. */
    int pickReplicaLocked(const std::string &name,
                          std::size_t cols) const;
    /** Queue onto replica r (requires mutex_; caller notifies). */
    void enqueueLocked(int r, PendingReq &&req);
    /** Move a recalled/faulted request to a healthy replica, or shed
     *  it typed (requires mutex_). */
    void redispatchLocked(PendingReq &&req);
    /** Mark r quarantined and recall its router queue (requires
     *  mutex_). */
    void quarantineLocked(std::size_t r, const std::string &why);
    /** Fulfil a typed rejection and count it (requires mutex_). */
    void rejectLocked(PendingReq &&req, std::string why);

    FleetOptions opts_;

    mutable std::mutex mutex_;
    std::condition_variable drainCv_;
    std::vector<std::unique_ptr<Replica>> replicas_;
    std::vector<Deployment> deployments_;
    std::shared_ptr<StallLatch> stallLatch_;
    std::uint64_t nextVersion_ = 1;
    std::uint64_t submitted_ = 0;
    std::uint64_t terminal_ = 0; ///< completed + rejected
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t redispatched_ = 0;
    std::uint64_t reloads_ = 0;
    bool started_ = false;
    int draining_ = 0;
    bool stopping_ = false;
};

} // namespace serve
} // namespace panacea

#endif // PANACEA_SERVE_FLEET_H
