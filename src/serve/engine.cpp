#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/aqs_gemm.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/walltime.h"

namespace panacea {
namespace serve {

namespace {

int
defaultBatchWindow()
{
    if (const char *env = std::getenv("PANACEA_BATCH_WINDOW")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<int>(v);
    }
    return 8;
}

/** Latency percentiles cover the most recent this-many requests. */
constexpr std::size_t kLatencyWindow = 8192;

} // namespace

/** One queued request (id, routing handle, input, completion hook). */
struct InferenceEngine::Pending
{
    std::uint64_t id = 0;
    std::shared_ptr<const ServedModel> model;
    MatrixF input;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point submitted;
};

/** One model's slot in the round-robin ring (FIFO within the model). */
struct InferenceEngine::ModelQueue
{
    std::shared_ptr<const ServedModel> model;
    std::deque<Pending> pending;
};

InferenceEngine::InferenceEngine(const EngineOptions &opts,
                                 PreparedModelCache *cache)
    : opts_(opts), cache_(cache)
{
    if (opts_.batchWindow <= 0)
        opts_.batchWindow = defaultBatchWindow();
    if (opts_.workers <= 0)
        opts_.workers = 2;
    if (opts_.batchDeadlineMs < 0.0)
        opts_.batchDeadlineMs = 0.0;
    started_ = !opts_.startPaused;
    workers_.reserve(static_cast<std::size_t>(opts_.workers));
    for (int t = 0; t < opts_.workers; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::shared_ptr<const ServedModel>
InferenceEngine::load(const ModelSpec &spec, const ServeModelOptions &opts)
{
    if (cache_ != nullptr)
        return cache_->acquire(spec, opts);
    return std::make_shared<const ServedModel>(
        ServedModel::build(spec, opts));
}

std::future<RequestResult>
InferenceEngine::submit(std::shared_ptr<const ServedModel> model,
                        MatrixF input)
{
    // A long-lived serving engine must not die on one bad request:
    // malformed submissions are rejected through their own future
    // (std::invalid_argument) while every other request keeps flowing.
    const auto reject = [](std::string why) {
        std::promise<RequestResult> p;
        p.set_exception(std::make_exception_ptr(
            std::invalid_argument(std::move(why))));
        return p.get_future();
    };
    if (model == nullptr)
        return reject("submit() needs a loaded model");
    const std::size_t uv =
        static_cast<std::size_t>(model->options().v);
    if (input.rows() != model->inputFeatures())
        return reject("request rows " + std::to_string(input.rows()) +
                      " != model input features " +
                      std::to_string(model->inputFeatures()));
    if (input.cols() == 0 || input.cols() % uv != 0)
        return reject("request columns " +
                      std::to_string(input.cols()) +
                      " must be a positive multiple of v=" +
                      std::to_string(uv));

    Pending p;
    p.model = std::move(model);
    p.input = std::move(input);
    p.submitted = std::chrono::steady_clock::now();
    std::future<RequestResult> fut = p.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return reject("submit() after engine shutdown began");
        p.id = nextId_++;
        ModelQueue *mq = findQueue(p.model.get());
        if (mq == nullptr) {
            // First pending request of this model: it joins the ring
            // at the back - its turn comes after every model already
            // waiting, and before any of their SECOND turns.
            ring_.emplace_back();
            ring_.back().model = p.model;
            mq = &ring_.back();
        }
        mq->pending.push_back(std::move(p));
        ++pendingCount_;
    }
    workCv_.notify_all();
    return fut;
}

InferenceEngine::ModelQueue *
InferenceEngine::findQueue(const ServedModel *model)
{
    for (ModelQueue &mq : ring_)
        if (mq.model.get() == model)
            return &mq;
    return nullptr;
}

void
InferenceEngine::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        started_ = true;
    }
    workCv_.notify_all();
}

void
InferenceEngine::drain()
{
    start();
    std::unique_lock<std::mutex> lock(mutex_);
    drainCv_.wait(lock,
                  [&] { return pendingCount_ == 0 && inFlight_ == 0; });
}

void
InferenceEngine::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [&] {
            return stopping_ || (started_ && !ring_.empty());
        });
        // Shutdown still drains whatever is queued (even on a paused
        // engine): submitted futures must resolve, never dangle.
        if (ring_.empty()) {
            if (stopping_)
                return;
            continue;
        }

        // Take the front model's turn: cut up to one window of ITS
        // requests (FIFO), then rotate it to the back of the ring if
        // it still has pending work. Moving requests out and counting
        // them in-flight happen under the same lock, so drain() never
        // sees a gap.
        const std::shared_ptr<const ServedModel> model =
            ring_.front().model;
        const std::size_t window =
            static_cast<std::size_t>(opts_.batchWindow);
        std::vector<Pending> batch;
        batch.reserve(window);
        const auto collect = [&] {
            ModelQueue *mq = findQueue(model.get());
            if (mq == nullptr)
                return;
            while (!mq->pending.empty() && batch.size() < window) {
                batch.push_back(std::move(mq->pending.front()));
                mq->pending.pop_front();
                ++inFlight_;
                --pendingCount_;
            }
        };
        collect();
        {
            // Rotate: drop the (now possibly empty) front slot; a
            // remainder re-joins at the back, behind every other
            // waiting model. The remainder can only be non-empty when
            // the window filled, so the deadline wait below never
            // races a back-of-ring copy of the same model.
            ModelQueue turn = std::move(ring_.front());
            ring_.pop_front();
            if (!turn.pending.empty())
                ring_.push_back(std::move(turn));
        }
        if (batch.size() < window && opts_.batchDeadlineMs > 0.0) {
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(static_cast<long long>(
                    std::llround(opts_.batchDeadlineMs * 1000.0)));
            while (batch.size() < window && !stopping_) {
                if (workCv_.wait_until(lock, deadline) ==
                    std::cv_status::timeout) {
                    collect();
                    break;
                }
                collect();
            }
            // A late arrival that re-created this model's ring slot
            // may have been fully drained into the batch; drop the
            // slot so an empty queue never takes a turn.
            for (auto it = ring_.begin(); it != ring_.end(); ++it) {
                if (it->model.get() == model.get()) {
                    if (it->pending.empty())
                        ring_.erase(it);
                    break;
                }
            }
        }
        // Another worker's deadline-wait collect() may have drained a
        // re-created slot of this model and left it empty in the ring
        // for us to take: an empty turn executes nothing (and burns no
        // batch sequence number).
        if (batch.empty())
            continue;
        const std::uint64_t batch_seq = nextBatchSeq_++;

        lock.unlock();
        runBatch(model, batch, batch_seq);
        lock.lock();
        inFlight_ -= batch.size();
        drainCv_.notify_all();
    }
}

void
InferenceEngine::runBatch(const std::shared_ptr<const ServedModel> &model,
                          std::vector<Pending> &batch,
                          std::uint64_t batch_seq)
{
    const std::size_t uv =
        static_cast<std::size_t>(model->options().v);
    const std::size_t requests = batch.size();

    // Layer-0 prep per request + column concat. This part runs
    // concurrently across workers - it is the stage that overlaps the
    // previous batch's GEMM.
    const auto tp = std::chrono::steady_clock::now();
    std::vector<ActivationOperand> ops;
    ops.reserve(requests);
    std::vector<std::size_t> offsets(requests + 1, 0);
    for (std::size_t r = 0; r < requests; ++r) {
        ops.push_back(model->prepareInput(batch[r].input));
        offsets[r + 1] = offsets[r] + batch[r].input.cols() / uv;
    }
    ActivationOperand batched;
    const ActivationOperand *op = &ops.front();
    if (requests > 1) {
        std::vector<const ActivationOperand *> ptrs;
        ptrs.reserve(requests);
        for (const ActivationOperand &o : ops)
            ptrs.push_back(&o);
        batched =
            concatActivationOperands(ptrs, model->layer(0).config());
        op = &batched;
    }
    double prep_ms = msSince(tp);

    // The GEMM stage: gemmMutex_ is taken per layer GEMM inside
    // runPrepared, so another worker's operand prep (layer 0 above,
    // intermediate layers inside its own runPrepared) genuinely
    // overlaps this batch's kernels.
    ServedModel::BatchResult res =
        model->runPrepared(*op, offsets, &gemmMutex_);
    prep_ms += res.prepMs;

    // Split the output columns back per request.
    const auto tdone = std::chrono::steady_clock::now();
    const std::size_t m_out = res.output.rows();
    std::vector<RequestResult> results(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        const std::size_t c0 = offsets[r] * uv;
        const std::size_t c1 = offsets[r + 1] * uv;
        RequestResult &rr = results[r];
        rr.id = batch[r].id;
        rr.stats = res.perRequest[r];
        rr.batchSize = requests;
        rr.batchSeq = batch_seq;
        rr.output = MatrixF(m_out, c1 - c0);
        for (std::size_t row = 0; row < m_out; ++row) {
            const auto src = res.output.row(row);
            std::copy(src.begin() + static_cast<std::ptrdiff_t>(c0),
                      src.begin() + static_cast<std::ptrdiff_t>(c1),
                      rr.output.row(row).begin());
        }
        rr.latencyMs = std::chrono::duration<double, std::milli>(
                           tdone - batch[r].submitted)
                           .count();
    }

    // Record counters BEFORE fulfilling futures: once a caller's
    // future resolves, stats() already includes its request.
    {
        std::lock_guard<std::mutex> stats_lock(statsMutex_);
        for (std::size_t r = 0; r < requests; ++r) {
            const AqsStats &rs = res.perRequest[r];
            // Integer counters only: exact sums, so the fold is
            // identical for every completion order. stats()
            // reconstructs the floating macsPerOuterProduct mean from
            // the exact weighted sum below.
            aggregate_.addCounters(rs);
            // v*v and denseOuterProducts are integers, so each term
            // (and the running sum, up to 2^53) is exact: the mean
            // reconstructed in stats() is order-independent.
            macsWeightedSum_ +=
                rs.macsPerOuterProduct *
                static_cast<double>(rs.denseOuterProducts);
            ++requests_;
            const float lat = static_cast<float>(results[r].latencyMs);
            if (latenciesMs_.size() < kLatencyWindow)
                latenciesMs_.push_back(lat);
            else
                latenciesMs_[latencyNext_ % kLatencyWindow] = lat;
            ++latencyNext_;
        }
        ++batches_;
        maxBatch_ = std::max(maxBatch_, requests);
        const std::uint64_t cols = offsets.back() * uv;
        columns_ += cols;
        macs_ += cols * model->macsPerColumn();
        prepMs_ += prep_ms;
        gemmMs_ += res.gemmMs;
    }

    for (std::size_t r = 0; r < requests; ++r)
        batch[r].promise.set_value(std::move(results[r]));
}

EngineStats
InferenceEngine::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    EngineStats s;
    s.requests = requests_;
    s.batches = batches_;
    s.columns = columns_;
    s.maxBatch = maxBatch_;
    s.meanBatch = batches_ > 0 ? static_cast<double>(s.requests) /
                                     static_cast<double>(batches_)
                               : 0.0;
    s.prepMs = prepMs_;
    s.gemmMs = gemmMs_;
    s.macs = macs_;
    if (!latenciesMs_.empty()) {
        s.p50LatencyMs = percentile(latenciesMs_, 50.0);
        s.p99LatencyMs = percentile(latenciesMs_, 99.0);
    }
    s.aggregate = aggregate_;
    if (aggregate_.denseOuterProducts > 0)
        s.aggregate.macsPerOuterProduct =
            macsWeightedSum_ /
            static_cast<double>(aggregate_.denseOuterProducts);
    return s;
}

} // namespace serve
} // namespace panacea
