#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/aqs_gemm.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/walltime.h"

namespace panacea {
namespace serve {

namespace {

int
defaultBatchWindow()
{
    if (const char *env = std::getenv("PANACEA_BATCH_WINDOW")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<int>(v);
    }
    return 8;
}

/** Latency percentiles cover the most recent this-many requests. */
constexpr std::size_t kLatencyWindow = 8192;

/** Default continuous-mode cap on a cohort's activation columns. */
constexpr int kDefaultMaxInflightColumns = 1024;

} // namespace

/** One queued request (id, routing handle, input, completion hook). */
struct InferenceEngine::Pending
{
    std::uint64_t id = 0;
    std::shared_ptr<const ServedModel> model;
    MatrixF input;
    RequestPhase phase = RequestPhase::Bulk;
    /** Pre-built layer-0 operand, or null (SubmitExtras::prepared). */
    std::shared_ptr<const ActivationOperand> prepared;
    /** Post-resolution hook, or null (SubmitExtras::onReady). */
    std::function<void()> onReady;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point submitted;
};

/**
 * One in-flight request inside an executing cohort: the queued request
 * plus the scheduling state the layer-stepped core tracks through
 * splice and split - where it joined, when, and its stats accumulated
 * one layer step at a time.
 */
struct InferenceEngine::Member
{
    Pending p;
    std::size_t admittedAtLayer = 0;
    std::chrono::steady_clock::time_point admitted;
    AqsStats stats;
};

/**
 * One model's slot in the round-robin ring. Two queues per slot:
 * `urgent` holds Decode-phase submissions and is drained before
 * `pending` (Bulk/Prefill, FIFO) by cohort formation and continuous
 * admission alike - the engine half of the phase-aware policy.
 */
struct InferenceEngine::ModelQueue
{
    std::shared_ptr<const ServedModel> model;
    std::deque<Pending> pending;
    std::deque<Pending> urgent;

    bool empty() const { return pending.empty() && urgent.empty(); }
};

InferenceEngine::InferenceEngine(const EngineOptions &opts,
                                 PreparedModelCache *cache)
    : opts_(opts), cache_(cache)
{
    if (opts_.batchWindow <= 0)
        opts_.batchWindow = defaultBatchWindow();
    if (opts_.workers <= 0)
        opts_.workers = 2;
    if (opts_.batchDeadlineMs < 0.0)
        opts_.batchDeadlineMs = 0.0;
    if (opts_.maxInflightColumns <= 0)
        opts_.maxInflightColumns = kDefaultMaxInflightColumns;
    if (opts_.maxAdmissionLayer <= 0)
        opts_.maxAdmissionLayer = 1;
    started_ = !opts_.startPaused;
    workers_.reserve(static_cast<std::size_t>(opts_.workers));
    for (int t = 0; t < opts_.workers; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::shared_ptr<const ServedModel>
InferenceEngine::load(const ModelSpec &spec, const ServeModelOptions &opts)
{
    if (cache_ != nullptr)
        return cache_->acquire(spec, opts);
    return std::make_shared<const ServedModel>(
        ServedModel::build(spec, opts));
}

std::future<RequestResult>
InferenceEngine::submit(std::shared_ptr<const ServedModel> model,
                        MatrixF input)
{
    return submit(std::move(model), std::move(input), SubmitExtras{});
}

std::future<RequestResult>
InferenceEngine::submit(std::shared_ptr<const ServedModel> model,
                        MatrixF input, SubmitExtras extras)
{
    // A long-lived serving engine must not die on one bad request:
    // malformed submissions are rejected through their own future
    // (std::invalid_argument) while every other request keeps flowing.
    // The onReady hook fires on rejections too - its exactly-once
    // contract is what lets the generation scheduler sleep on it.
    const auto reject = [&extras](std::exception_ptr exc) {
        std::promise<RequestResult> p;
        p.set_exception(std::move(exc));
        std::future<RequestResult> f = p.get_future();
        if (extras.onReady)
            extras.onReady();
        return f;
    };
    const auto reject_arg = [&reject](std::string why) {
        return reject(std::make_exception_ptr(
            std::invalid_argument(std::move(why))));
    };
    if (model == nullptr)
        return reject_arg("submit() needs a loaded model");
    const std::size_t uv =
        static_cast<std::size_t>(model->options().v);
    if (input.rows() != model->inputFeatures())
        return reject_arg("request rows " + std::to_string(input.rows()) +
                          " != model input features " +
                          std::to_string(model->inputFeatures()));
    if (input.cols() == 0 || input.cols() % uv != 0)
        return reject_arg("request columns " +
                          std::to_string(input.cols()) +
                          " must be a positive multiple of v=" +
                          std::to_string(uv));
    if (extras.prepared != nullptr &&
        extras.prepared->sliced.cols() != input.cols())
        return reject_arg("prepared operand columns " +
                          std::to_string(extras.prepared->sliced.cols()) +
                          " != request columns " +
                          std::to_string(input.cols()));

    Pending p;
    p.model = std::move(model);
    p.input = std::move(input);
    p.phase = extras.phase;
    p.prepared = std::move(extras.prepared);
    p.onReady = std::move(extras.onReady);
    p.submitted = std::chrono::steady_clock::now();
    std::future<RequestResult> fut = p.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Shutdown/drain rejections resolve OUTSIDE the lock: the
        // onReady hook may re-enter scheduler state and must never run
        // under the engine mutex.
        if (stopping_) {
            lock.unlock();
            extras.onReady = std::move(p.onReady);
            return reject(std::make_exception_ptr(std::invalid_argument(
                "submit() after engine shutdown began")));
        }
        // A submit racing drain() must reject-or-complete, never
        // hang: accepting it would move the drain's goalposts (a fast
        // submitter could extend the wait forever), and once the
        // drainer proceeds to teardown an accepted-but-unserved
        // future dangles. Rejection is typed distinctly from
        // malformed-request rejection so callers can retry.
        if (draining_ > 0) {
            lock.unlock();
            extras.onReady = std::move(p.onReady);
            return reject(std::make_exception_ptr(std::runtime_error(
                "submit() rejected: drain() in progress")));
        }
        p.id = nextId_++;
        ModelQueue *mq = findQueue(p.model.get());
        if (mq == nullptr) {
            // First pending request of this model: it joins the ring
            // at the back - its turn comes after every model already
            // waiting, and before any of their SECOND turns.
            ring_.emplace_back();
            ring_.back().model = p.model;
            mq = &ring_.back();
        }
        // Decode steps go to the urgent queue, served before the FIFO
        // queue: the engine half of phase-aware admission.
        if (p.phase == RequestPhase::Decode)
            mq->urgent.push_back(std::move(p));
        else
            mq->pending.push_back(std::move(p));
        ++pendingCount_;
    }
    workCv_.notify_all();
    return fut;
}

InferenceEngine::ModelQueue *
InferenceEngine::findQueue(const ServedModel *model)
{
    for (ModelQueue &mq : ring_)
        if (mq.model.get() == model)
            return &mq;
    return nullptr;
}

void
InferenceEngine::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        started_ = true;
    }
    workCv_.notify_all();
}

void
InferenceEngine::drain()
{
    start();
    std::unique_lock<std::mutex> lock(mutex_);
    ++draining_; // submit() rejects while any drain is in progress
    drainCv_.wait(lock,
                  [&] { return pendingCount_ == 0 && inFlight_ == 0; });
    --draining_;
}

void
InferenceEngine::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [&] {
            return stopping_ || (started_ && !ring_.empty());
        });
        // Shutdown still drains whatever is queued (even on a paused
        // engine): submitted futures must resolve, never dangle.
        if (ring_.empty()) {
            if (stopping_)
                return;
            continue;
        }

        // Take the front model's turn: cut up to one window of ITS
        // requests (FIFO), then rotate it to the back of the ring if
        // it still has pending work. Moving requests out and counting
        // them in-flight happen under the same lock, so drain() never
        // sees a gap.
        const std::shared_ptr<const ServedModel> model =
            ring_.front().model;
        const std::size_t window =
            static_cast<std::size_t>(opts_.batchWindow);
        std::vector<Pending> batch;
        batch.reserve(window);
        const auto collect = [&] {
            ModelQueue *mq = findQueue(model.get());
            if (mq == nullptr)
                return;
            // Urgent (Decode) before FIFO (Bulk/Prefill): decode
            // steps ride the next cohort even when long prompts
            // arrived first. Each queue stays FIFO internally.
            while (!mq->empty() && batch.size() < window) {
                std::deque<Pending> &q =
                    !mq->urgent.empty() ? mq->urgent : mq->pending;
                batch.push_back(std::move(q.front()));
                q.pop_front();
                ++inFlight_;
                --pendingCount_;
            }
        };
        collect();
        {
            // Rotate: drop the (now possibly empty) front slot; a
            // remainder re-joins at the back, behind every other
            // waiting model. The remainder can only be non-empty when
            // the window filled, so the deadline wait below never
            // races a back-of-ring copy of the same model.
            ModelQueue turn = std::move(ring_.front());
            ring_.pop_front();
            if (!turn.empty())
                ring_.push_back(std::move(turn));
        }
        // Continuous mode never waits for the window to fill: the fill
        // deadline exists only to coalesce, and mid-stack admission
        // already does that without stalling the requests in hand.
        if (batch.size() < window && opts_.batchDeadlineMs > 0.0 &&
            !opts_.continuous) {
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(static_cast<long long>(
                    std::llround(opts_.batchDeadlineMs * 1000.0)));
            while (batch.size() < window && !stopping_) {
                if (workCv_.wait_until(lock, deadline) ==
                    std::cv_status::timeout) {
                    collect();
                    break;
                }
                collect();
            }
            // A late arrival that re-created this model's ring slot
            // may have been fully drained into the batch; drop the
            // slot so an empty queue never takes a turn.
            for (auto it = ring_.begin(); it != ring_.end(); ++it) {
                if (it->model.get() == model.get()) {
                    if (it->empty())
                        ring_.erase(it);
                    break;
                }
            }
        }
        // Another worker's deadline-wait collect() may have drained a
        // re-created slot of this model and left it empty in the ring
        // for us to take: an empty turn executes nothing (and burns no
        // batch sequence number).
        if (batch.empty())
            continue;
        const std::uint64_t batch_seq = nextBatchSeq_++;

        lock.unlock();
        const std::size_t completed = runStack(model, batch, batch_seq);
        lock.lock();
        inFlight_ -= completed;
        drainCv_.notify_all();
    }
}

std::vector<InferenceEngine::Pending>
InferenceEngine::takeAdmissions(const ServedModel *model,
                                std::size_t cohort_columns)
{
    std::vector<Pending> admitted;
    const std::size_t cap =
        static_cast<std::size_t>(opts_.maxInflightColumns);
    if (cohort_columns >= cap)
        return admitted;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = ring_.begin(); it != ring_.end(); ++it) {
        if (it->model.get() != model)
            continue;
        // Urgent (Decode) ahead of FIFO, each queue FIFO within
        // itself: a request is admitted only if it fits entirely
        // under the column cap; the first one that does not stops
        // admission altogether (preserving submission order within
        // its class, and never letting a later Bulk request overtake
        // a capacity-blocked Decode step).
        std::size_t cols = cohort_columns;
        const auto admit_from = [&](std::deque<Pending> &q) {
            while (!q.empty()) {
                const std::size_t req_cols = q.front().input.cols();
                if (cols + req_cols > cap)
                    return false;
                cols += req_cols;
                admitted.push_back(std::move(q.front()));
                q.pop_front();
                ++inFlight_;
                --pendingCount_;
            }
            return true;
        };
        if (admit_from(it->urgent))
            admit_from(it->pending);
        // Mid-stack admission may empty the slot; drop it so an empty
        // queue never takes a round-robin turn.
        if (it->empty())
            ring_.erase(it);
        break;
    }
    return admitted;
}

ActivationOperand
InferenceEngine::prepareLayer0Concat(const ServedModel &model,
                                     std::span<const Member> members)
{
    // A member carrying a pre-built operand (SubmitExtras::prepared -
    // the generation scheduler preps the new decode column while the
    // previous cohort GEMMs) is used verbatim; everyone else is
    // quantized/sliced here. prepareInput() is deterministic, so the
    // mix cannot change the concat's bytes.
    std::vector<ActivationOperand> ops;
    ops.reserve(members.size());
    std::vector<const ActivationOperand *> ptrs;
    ptrs.reserve(members.size());
    for (const Member &m : members) {
        if (m.p.prepared != nullptr) {
            ptrs.push_back(m.p.prepared.get());
        } else {
            ops.push_back(model.prepareInput(m.p.input));
            ptrs.push_back(&ops.back());
        }
    }
    if (ptrs.size() == 1)
        return ops.empty() ? *ptrs.front() : std::move(ops.front());
    return concatActivationOperands(ptrs, model.layer(0).config());
}

MatrixF
InferenceEngine::catchUp(const ServedModel &model,
                         std::span<Member> newcomers,
                         std::span<const std::size_t> offsets,
                         std::size_t upto, double &prep_ms,
                         double &gemm_ms)
{
    // The newcomers form their own mini-cohort and replay the layers
    // the running cohort already passed - the same column-blocked
    // math, so their outputs and stats stay bit-equal to solo runs.
    auto tp = nowTick();
    ActivationOperand op = prepareLayer0Concat(model, newcomers);
    prep_ms += msSince(tp);

    MatrixF cur;
    for (std::size_t lj = 0; lj < upto; ++lj) {
        if (lj > 0) {
            tp = nowTick();
            op = model.prepareStepInput(lj, cur);
            prep_ms += msSince(tp);
        }
        ServedModel::StepResult step =
            model.forwardPreparedStep(lj, op, offsets, &gemmMutex_);
        for (std::size_t r = 0; r < newcomers.size(); ++r)
            newcomers[r].stats += step.perRequest[r];
        gemm_ms += step.gemmMs;
        cur = std::move(step.next);
    }
    // upto < layerCount always (admission happens before a remaining
    // layer), so `cur` is already adapted for layer `upto`.
    return cur;
}

std::size_t
InferenceEngine::runStack(const std::shared_ptr<const ServedModel> &model,
                          std::vector<Pending> &batch,
                          std::uint64_t batch_seq)
{
    const std::size_t uv =
        static_cast<std::size_t>(model->options().v);
    const std::size_t layer_count = model->layerCount();

    // Cohort state: members in splice order, cumulative column-group
    // offsets naming each member's range, per-member stats folded one
    // layer step at a time.
    const auto formed = std::chrono::steady_clock::now();
    std::vector<Member> members;
    members.reserve(batch.size());
    for (Pending &p : batch) {
        Member m;
        m.p = std::move(p);
        m.admitted = formed;
        members.push_back(std::move(m));
    }
    std::vector<std::size_t> offsets(members.size() + 1, 0);
    for (std::size_t r = 0; r < members.size(); ++r)
        offsets[r + 1] = offsets[r] + members[r].p.input.cols() / uv;

    double prep_ms = 0.0;
    double gemm_ms = 0.0;

    // Everything through promise fulfilment runs under one try: a
    // throw mid-cohort (the EngineOptions::stepHook fault seam, or a
    // prep/kernel failure) is delivered to EVERY member's future -
    // mid-stack admissions join `members` BEFORE their catch-up
    // replay runs, so they are covered too - and the worker moves on
    // to the next batch. Futures never dangle, and the caller's
    // inFlight_ accounting stays exact: the return value counts every
    // member on both paths.
    try {
        // Layer-0 prep per request + column concat. This stage runs
        // concurrently across workers - it overlaps another worker's
        // GEMM.
        auto tp = nowTick();
        ActivationOperand op = prepareLayer0Concat(*model, members);
        prep_ms += msSince(tp);

        // The layer-stepped core: one forwardPreparedStep() per
        // layer, with continuous admission between steps. gemmMutex_
        // is taken per step inside forwardPreparedStep, so another
        // worker's prep (layer 0 above, catch-up, inter-layer
        // quantize/slice) genuinely overlaps this cohort's kernels.
        MatrixF cur;
        for (std::size_t li = 0; li < layer_count; ++li) {
            if (li > 0) {
                // Continuous admission BEFORE preparing layer li's
                // operand: newcomers catch up through layers 0..li-1
                // as their own mini-cohort, then their prepared
                // layer-li operand is spliced onto the cohort's by
                // column concat.
                std::vector<Pending> admitted;
                if (opts_.continuous &&
                    li <= static_cast<std::size_t>(
                              opts_.maxAdmissionLayer))
                    admitted = takeAdmissions(model.get(),
                                              offsets.back() * uv);

                tp = nowTick();
                op = model->prepareStepInput(li, cur);
                prep_ms += msSince(tp);

                if (!admitted.empty()) {
                    const auto now = std::chrono::steady_clock::now();
                    const std::size_t first_new = members.size();
                    std::vector<std::size_t> noffsets(
                        admitted.size() + 1, 0);
                    for (std::size_t r = 0; r < admitted.size();
                         ++r) {
                        Member m;
                        m.p = std::move(admitted[r]);
                        m.admitted = now;
                        m.admittedAtLayer = li;
                        noffsets[r + 1] =
                            noffsets[r] + m.p.input.cols() / uv;
                        members.push_back(std::move(m));
                    }
                    MatrixF ncur = catchUp(
                        *model,
                        std::span<Member>(members).subspan(first_new),
                        noffsets, li, prep_ms, gemm_ms);
                    tp = nowTick();
                    ActivationOperand nop =
                        model->prepareStepInput(li, ncur);
                    const ActivationOperand *parts[2] = {&op, &nop};
                    op = concatActivationOperands(
                        parts, model->layer(li).config());
                    prep_ms += msSince(tp);
                    // Splice the scheduling state: members appended
                    // in admission order above, ranges shift by the
                    // cohort's group count. Each member's range is
                    // preserved verbatim, which is what keeps its
                    // stats and output split bit-exact.
                    const std::size_t base = offsets.back();
                    for (std::size_t r = 1; r < noffsets.size(); ++r)
                        offsets.push_back(base + noffsets[r]);
                }
            }
            // The fault-injection seam: invoked right before each
            // MAIN cohort step (catch-up mini-cohorts replay layers
            // the hook already saw and do not re-invoke it).
            if (opts_.stepHook)
                opts_.stepHook(li);
            ServedModel::StepResult step =
                model->forwardPreparedStep(li, op, offsets,
                                           &gemmMutex_);
            for (std::size_t r = 0; r < members.size(); ++r)
                members[r].stats += step.perRequest[r];
            gemm_ms += step.gemmMs;
            cur = std::move(step.next);
        }

        // `cur` now holds the final layer's output; split its
        // columns back per member.
        const auto tdone = std::chrono::steady_clock::now();
        const std::size_t requests = members.size();
        const std::size_t m_out = cur.rows();
        std::vector<RequestResult> results(requests);
        for (std::size_t r = 0; r < requests; ++r) {
            const std::size_t c0 = offsets[r] * uv;
            const std::size_t c1 = offsets[r + 1] * uv;
            const Member &m = members[r];
            RequestResult &rr = results[r];
            rr.id = m.p.id;
            rr.phase = m.p.phase;
            rr.stats = m.stats;
            rr.batchSize = requests;
            rr.batchSeq = batch_seq;
            rr.admittedAtLayer = m.admittedAtLayer;
            rr.output = MatrixF(m_out, c1 - c0);
            for (std::size_t row = 0; row < m_out; ++row) {
                const auto src = cur.row(row);
                std::copy(src.begin() +
                              static_cast<std::ptrdiff_t>(c0),
                          src.begin() +
                              static_cast<std::ptrdiff_t>(c1),
                          rr.output.row(row).begin());
            }
            rr.latencyMs = std::chrono::duration<double, std::milli>(
                               tdone - m.p.submitted)
                               .count();
            rr.queueWaitMs =
                std::chrono::duration<double, std::milli>(
                    m.admitted - m.p.submitted)
                    .count();
            rr.executeMs = std::chrono::duration<double, std::milli>(
                               tdone - m.admitted)
                               .count();
        }

        // Record counters BEFORE fulfilling futures: once a caller's
        // future resolves, stats() already includes its request.
        {
            std::lock_guard<std::mutex> stats_lock(statsMutex_);
            // The three timing rings advance in lockstep so the
            // latency, queue-wait and execute percentile series
            // always cover the same completed requests.
            const auto push = [&](std::vector<float> &ring, double v) {
                if (ring.size() < kLatencyWindow)
                    ring.push_back(static_cast<float>(v));
                else
                    ring[latencyNext_ % kLatencyWindow] =
                        static_cast<float>(v);
            };
            for (std::size_t r = 0; r < requests; ++r) {
                const Member &m = members[r];
                const AqsStats &rs = m.stats;
                // Integer counters only: exact sums, so the fold is
                // identical for every completion order. stats()
                // reconstructs the floating macsPerOuterProduct mean
                // from the exact weighted sum below.
                aggregate_.addCounters(rs);
                // v*v and denseOuterProducts are integers, so each
                // term (and the running sum, up to 2^53) is exact:
                // the mean reconstructed in stats() is
                // order-independent.
                macsWeightedSum_ +=
                    rs.macsPerOuterProduct *
                    static_cast<double>(rs.denseOuterProducts);
                ++requests_;
                if (m.p.phase == RequestPhase::Prefill)
                    ++prefillRequests_;
                else if (m.p.phase == RequestPhase::Decode)
                    ++decodeRequests_;
                push(latenciesMs_, results[r].latencyMs);
                push(queueWaitsMs_, results[r].queueWaitMs);
                push(executesMs_, results[r].executeMs);
                ++latencyNext_;
                if (admissionHist_.size() <= m.admittedAtLayer)
                    admissionHist_.resize(m.admittedAtLayer + 1, 0);
                ++admissionHist_[m.admittedAtLayer];
            }
            ++batches_;
            maxBatch_ = std::max(maxBatch_, requests);
            const std::uint64_t cols = offsets.back() * uv;
            columns_ += cols;
            macs_ += cols * model->macsPerColumn();
            prepMs_ += prep_ms;
            gemmMs_ += gemm_ms;
        }

        for (std::size_t r = 0; r < requests; ++r)
            members[r].p.promise.set_value(std::move(results[r]));
    } catch (...) {
        // Fault delivery: the cohort aborts as a unit, every
        // member's future receives the exception, and the engine
        // keeps serving subsequent batches
        // (tests/test_serve_engine.cpp, tests/test_fleet_faults.cpp).
        for (Member &m : members)
            m.p.promise.set_exception(std::current_exception());
    }
    // Completion hooks fire AFTER promise resolution on both paths -
    // the exactly-once, after-resolution contract of
    // SubmitExtras::onReady that the generation pump sleeps on.
    for (Member &m : members)
        if (m.p.onReady)
            m.p.onReady();
    return members.size();
}

EngineStats
InferenceEngine::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    // The documented percentile semantics, asserted: the three series
    // cover the SAME completed requests, never more than the sliding
    // window, and never a request that has not completed.
    panic_if(latenciesMs_.size() != queueWaitsMs_.size() ||
                 latenciesMs_.size() != executesMs_.size(),
             "engine percentile rings out of sync (", latenciesMs_.size(),
             "/", queueWaitsMs_.size(), "/", executesMs_.size(), ")");
    panic_if(latenciesMs_.size() > kLatencyWindow,
             "engine percentile ring exceeds its window");
    panic_if(static_cast<std::uint64_t>(latenciesMs_.size()) > requests_,
             "engine percentile ring holds uncompleted requests");
    EngineStats s;
    s.requests = requests_;
    s.prefillRequests = prefillRequests_;
    s.decodeRequests = decodeRequests_;
    s.batches = batches_;
    s.columns = columns_;
    s.maxBatch = maxBatch_;
    s.meanBatch = batches_ > 0 ? static_cast<double>(s.requests) /
                                     static_cast<double>(batches_)
                               : 0.0;
    s.prepMs = prepMs_;
    s.gemmMs = gemmMs_;
    s.macs = macs_;
    if (!latenciesMs_.empty()) {
        s.p50LatencyMs = percentile(latenciesMs_, 50.0);
        s.p99LatencyMs = percentile(latenciesMs_, 99.0);
        s.p50QueueWaitMs = percentile(queueWaitsMs_, 50.0);
        s.p99QueueWaitMs = percentile(queueWaitsMs_, 99.0);
        s.p50ExecuteMs = percentile(executesMs_, 50.0);
        s.p99ExecuteMs = percentile(executesMs_, 99.0);
    }
    s.admittedAtLayer = admissionHist_;
    s.aggregate = aggregate_;
    if (aggregate_.denseOuterProducts > 0)
        s.aggregate.macsPerOuterProduct =
            macsWeightedSum_ /
            static_cast<double>(aggregate_.denseOuterProducts);
    return s;
}

} // namespace serve
} // namespace panacea
