#include "serve/served_model.h"

#include <bit>
#include <sstream>

#include "models/synth_data.h"
#include "util/fnv.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/walltime.h"

namespace panacea {
namespace serve {

namespace {

/**
 * FNV-1a fingerprint of everything in a ModelSpec that changes the
 * prepared bytes: a custom spec reusing another spec's NAME must not
 * collide with it in the cache.
 */
std::uint64_t
specFingerprint(const ModelSpec &spec)
{
    std::uint64_t h = fnv1a64Offset;
    const auto mix = [&h](std::uint64_t v) { h = fnv1a64Word(h, v); };
    mix(spec.seqLen);
    mix(spec.layers.size());
    for (const LayerSpec &l : spec.layers) {
        mix(l.m);
        mix(l.kDim);
        mix(l.nOverride);
        mix(static_cast<std::uint64_t>(l.dist));
        mix(std::bit_cast<std::uint64_t>(l.spread));
        mix(std::bit_cast<std::uint64_t>(l.outlierRate));
        mix(l.repeat);
        mix(static_cast<std::uint64_t>(l.weightBits));
        mix(static_cast<std::uint64_t>(l.actBits));
        mix(std::bit_cast<std::uint64_t>(l.weightOutlierRate));
    }
    return h;
}

} // namespace

std::string
serveModelKey(const ModelSpec &spec, const ServeModelOptions &opts)
{
    std::ostringstream key;
    key << spec.name << "#" << std::hex << specFingerprint(spec)
        << std::dec << "|v=" << opts.v << "|rle=" << opts.rleIndexBits
        << "|skip=" << toString(opts.actSkip)
        << "|zpm=" << (opts.enableZpm ? 1 : 0)
        << "|dbs=" << (opts.enableDbs ? 1 : 0) << ":" << opts.dbsTargetMass
        << "|wbits=" << opts.weightBitsOverride << "|seed=" << opts.seed
        << "|calib=" << opts.calibTokens << "|layers=" << opts.maxLayers;
    return key.str();
}

ServedModel
ServedModel::build(const ModelSpec &spec, const ServeModelOptions &opts)
{
    fatal_if(spec.layers.empty(), "cannot serve a model without layers");
    const auto t0 = nowTick();

    ServedModel model;
    model.spec_ = spec;
    model.opts_ = opts;

    std::size_t count = spec.layers.size();
    if (opts.maxLayers != 0 && opts.maxLayers < count)
        count = opts.maxLayers;
    model.layers_.reserve(count);

    for (std::size_t i = 0; i < count; ++i) {
        const LayerSpec &ls = spec.layers[i];
        // Per-layer RNG stream: layer i's tensors never depend on how
        // many layers precede it, so trimmed (maxLayers) and full
        // builds agree on the shared prefix.
        Rng rng(opts.seed + 0x9e3779b97f4a7c15ull * (i + 1));

        AqsPipelineOptions pipe;
        pipe.weightBits = opts.weightBitsOverride ? opts.weightBitsOverride
                                                  : ls.weightBits;
        pipe.actBits = ls.actBits;
        pipe.enableZpm = opts.enableZpm;
        pipe.enableDbs = opts.enableDbs;
        pipe.dbsTargetMass = opts.dbsTargetMass;
        pipe.gemm.v = opts.v;
        pipe.gemm.rleIndexBits = opts.rleIndexBits;
        pipe.gemm.actSkip = opts.actSkip;

        MatrixF w = genWeights(rng, ls.m, ls.kDim, ls.weightOutlierRate);
        const MatrixF calib[2] = {
            genLayerActivations(rng, ls, opts.calibTokens),
            genLayerActivations(rng, ls, opts.calibTokens),
        };
        model.layers_.push_back(AqsLinearLayer::calibrate(
            w, /*bias=*/{}, std::span<const MatrixF>(calib, 2), pipe));
    }

    model.finalizeDerivedState();
    model.buildMs_ = msSince(t0);
    return model;
}

ServedModel
ServedModel::restore(const ModelSpec &spec, const ServeModelOptions &opts,
                     std::vector<AqsLinearLayer> layers, double build_ms,
                     std::shared_ptr<const void> payload_owner,
                     std::size_t mapped_bytes)
{
    fatal_if(layers.empty(), "cannot restore a model without layers");
    std::size_t count = spec.layers.size();
    if (opts.maxLayers != 0 && opts.maxLayers < count)
        count = opts.maxLayers;
    fatal_if(layers.size() != count, "restored layer count ",
             layers.size(), " != served layer count ", count, " of ",
             spec.name);

    ServedModel model;
    model.spec_ = spec;
    model.opts_ = opts;
    model.layers_ = std::move(layers);
    model.payloadOwner_ = std::move(payload_owner);
    model.mappedBytes_ = mapped_bytes;
    model.finalizeDerivedState();
    model.buildMs_ = build_ms;
    return model;
}

void
ServedModel::finalizeDerivedState()
{
    key_ = serveModelKey(spec_, opts_);
    macsPerColumn_ = 0;
    for (const AqsLinearLayer &layer : layers_)
        macsPerColumn_ +=
            static_cast<std::uint64_t>(layer.weights().sliced.rows()) *
            layer.weights().sliced.cols();
    // Slots only; each layer's cache materializes on first use (see
    // countCache()) so restore from a mapped file stays map-bound.
    countCaches_ = std::vector<WeightCountingCache>(layers_.size());
    countCacheOnce_ =
        std::make_unique<std::once_flag[]>(layers_.size());
    // The inter-layer feature-adaptation plan: boundary i's target row
    // count (= layer i+1's input width K). Computed once here so the
    // per-step path never re-derives it (see forwardPreparedStep).
    stepFeatures_.clear();
    for (std::size_t i = 0; i + 1 < layers_.size(); ++i)
        stepFeatures_.push_back(layers_[i + 1].weights().sliced.cols());
}

const WeightCountingCache &
ServedModel::countCache(std::size_t i) const
{
    std::call_once(countCacheOnce_[i], [this, i] {
        countCaches_[i] =
            buildWeightCountingCache(layers_[i].weights(), opts_.v);
    });
    return countCaches_[i];
}

std::size_t
ServedModel::inputFeatures() const
{
    return layers_.front().weights().sliced.cols();
}

std::size_t
ServedModel::outputFeatures() const
{
    return layers_.back().weights().sliced.rows();
}

MatrixF
ServedModel::adaptFeatures(MatrixF y, std::size_t features)
{
    if (y.rows() == features)
        return y;
    // Cyclic row tiling (or truncation when features < y.rows()),
    // copied a whole tile at a time: rows are contiguous in the
    // row-major storage, so each tile is one contiguous block of
    // min(y.rows(), features - r) rows. Byte-identical to the
    // per-row `src = y.row(r % y.rows())` formulation this replaces.
    MatrixF out(features, y.cols());
    const std::span<const float> src = y.data();
    const std::span<float> dst = out.data();
    const std::size_t row_elems = y.cols();
    std::size_t r = 0;
    while (r < features) {
        const std::size_t take = std::min(y.rows(), features - r);
        std::copy_n(src.begin(),
                    static_cast<std::ptrdiff_t>(take * row_elems),
                    dst.begin() +
                        static_cast<std::ptrdiff_t>(r * row_elems));
        r += take;
    }
    return out;
}

ActivationOperand
ServedModel::prepareInput(const MatrixF &input) const
{
    const AqsLinearLayer &first = layers_.front();
    return first.prepareInput(first.quantizeInput(input));
}

ActivationOperand
ServedModel::prepareStepInput(std::size_t layer_index,
                              const MatrixF &x) const
{
    fatal_if(layer_index >= layers_.size(), "prepareStepInput layer ",
             layer_index, " out of ", layers_.size());
    const AqsLinearLayer &layer = layers_[layer_index];
    return layer.prepareInput(layer.quantizeInput(x));
}

ServedModel::StepResult
ServedModel::forwardPreparedStep(std::size_t layer_index,
                                 const ActivationOperand &op,
                                 std::span<const std::size_t> group_offsets,
                                 std::mutex *gemm_mutex) const
{
    fatal_if(layer_index >= layers_.size(), "forwardPreparedStep layer ",
             layer_index, " out of ", layers_.size());
    fatal_if(group_offsets.size() < 2,
             "forwardPreparedStep needs at least one request range");
    const std::size_t uv = static_cast<std::size_t>(opts_.v);
    fatal_if(group_offsets.back() * uv != op.sliced.cols(),
             "group offsets (", group_offsets.back(),
             " groups) do not cover the operand (", op.sliced.cols(),
             " columns)");
    const AqsLinearLayer &layer = layers_[layer_index];

    StepResult res;
    // Per-request statistics out of the one batched call: counting
    // depends only on masks/streams, which are column-blocked, so
    // each range's record equals a solo run's. The weight-side mask
    // scan comes from the per-layer cache, materialized once on first
    // use (countCache()).
    res.perRequest = aqsCountStatsBatch(layer.weights(), op,
                                        layer.config(),
                                        countCache(layer_index),
                                        group_offsets);

    const auto tg = nowTick();
    MatrixI64 acc;
    {
        std::unique_lock<std::mutex> gemm_lock;
        if (gemm_mutex != nullptr)
            gemm_lock = std::unique_lock<std::mutex>(*gemm_mutex);
        acc = layer.forwardPrepared(op, nullptr);
    }
    res.gemmMs = msSince(tg);

    MatrixF y = layer.dequantizeOutput(acc);
    if (layer_index + 1 < layers_.size()) {
        // Adapt to the next layer's input width via the boundary plan
        // cached at build/restore time (finalizeDerivedState) - decode
        // steps hit this once per layer per step, so re-deriving the
        // target width (and the function call for identity boundaries)
        // is pure waste. The width is a property of the layer stack
        // alone - the same for prefill and decode columns - hence one
        // plan per model, not per phase.
        const std::size_t want = stepFeatures_[layer_index];
        res.next = y.rows() == want ? std::move(y)
                                    : adaptFeatures(std::move(y), want);
    } else {
        res.next = std::move(y);
    }
    return res;
}

ServedModel::BatchResult
ServedModel::runPrepared(const ActivationOperand &input_op,
                         std::span<const std::size_t> group_offsets,
                         std::mutex *gemm_mutex) const
{
    fatal_if(group_offsets.size() < 2,
             "runPrepared needs at least one request range");
    const std::size_t requests = group_offsets.size() - 1;

    BatchResult res;
    res.perRequest.assign(requests, AqsStats{});

    const ActivationOperand *cur_op = &input_op;
    ActivationOperand local_op;
    MatrixF cur;
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        if (li > 0) {
            const auto tp = nowTick();
            local_op = prepareStepInput(li, cur);
            cur_op = &local_op;
            res.prepMs += msSince(tp);
        }
        StepResult step =
            forwardPreparedStep(li, *cur_op, group_offsets, gemm_mutex);
        for (std::size_t r = 0; r < requests; ++r)
            res.perRequest[r] += step.perRequest[r];
        res.gemmMs += step.gemmMs;
        if (li + 1 < layers_.size())
            cur = std::move(step.next);
        else
            res.output = std::move(step.next);
    }
    return res;
}

} // namespace serve
} // namespace panacea
