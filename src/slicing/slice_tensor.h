/**
 * @file
 * Sliced-matrix container: a quantized matrix decomposed into 4-bit slice
 * planes, each with its positional shift. This is the operand format of
 * every bit-slice GEMM engine in the repository.
 */

#ifndef PANACEA_SLICING_SLICE_TENSOR_H
#define PANACEA_SLICING_SLICE_TENSOR_H

#include <vector>

#include "slicing/slice_types.h"
#include "util/matrix.h"

namespace panacea {

/** One 4-bit slice plane of a matrix. */
struct SlicePlane
{
    Matrix<Slice> data;  ///< slice values, same shape as the source
    int shift = 0;       ///< positional weight is 2^shift
    bool high = false;   ///< true for the HO plane
};

/**
 * A matrix decomposed into slice planes, ordered low to high.
 *
 * Weight matrices use SBR (signed slices); activation matrices use
 * straightforward or DBS slicing (unsigned slices).
 */
struct SlicedMatrix
{
    std::vector<SlicePlane> planes;  ///< ordered LO ... HO
    bool signedSlices = false;       ///< SBR planes are signed
    int sourceBits = 0;              ///< bit-width of the source codes
    int loBits = 4;                  ///< DBS l (activations; 4 otherwise)

    /** @return rows of the source matrix. */
    std::size_t rows() const { return planes.at(0).data.rows(); }
    /** @return cols of the source matrix. */
    std::size_t cols() const { return planes.at(0).data.cols(); }
    /** @return number of slice planes. */
    std::size_t levels() const { return planes.size(); }

    /** @return the highest-order plane. */
    const SlicePlane &hoPlane() const { return planes.back(); }

    /**
     * Rebuild the integer codes: sum_i plane_i << shift_i. For DBS this
     * reproduces the LSB-masked effective codes.
     */
    MatrixI32 reconstruct() const;
};

/** Slice a symmetric weight matrix with SBR into n+1 signed planes. */
SlicedMatrix sbrSliceMatrix(const MatrixI32 &codes, int n);

/** Slice an asymmetric activation matrix into k+1 unsigned planes. */
SlicedMatrix activationSliceMatrix(const MatrixI32 &codes, int k);

/**
 * Slice an 8-bit activation matrix with the DBS rule for LO width l.
 * Yields exactly two planes with shifts (l-4, l).
 */
SlicedMatrix dbsSliceMatrix(const MatrixI32 &codes, int lo_bits);

} // namespace panacea

#endif // PANACEA_SLICING_SLICE_TENSOR_H
