/**
 * @file
 * Straightforward (unsigned) bit-slicing for asymmetrically quantized
 * activations (paper §III-B), plus the DBS slicing rules (Fig. 10).
 *
 * A (4k+4)-bit unsigned value is split into k+1 unsigned 4-bit slices:
 * slice_i = (x >> 4i) & 0xF, so x = sum_i slice_i * 16^i.
 *
 * Under DBS the 8-bit case re-draws the HO/LO boundary at bit l in
 * {4, 5, 6}; hardware keeps 4-bit slices by zero-padding the short HO
 * slice and dropping the (l-4) LSBs of the long LO slice. Reconstruction
 * is then HO * 2^l + LO * 2^(l-4), i.e. the value loses its (l-4) LSBs.
 */

#ifndef PANACEA_SLICING_STRAIGHTFORWARD_H
#define PANACEA_SLICING_STRAIGHTFORWARD_H

#include <cstdint>
#include <vector>

#include "slicing/slice_types.h"

namespace panacea {

/** @return bit-width of a straightforward activation: 4k + 4. */
constexpr int
activationBits(int k)
{
    return 4 * k + 4;
}

/** @return number of LO slices k for a (4k+4)-bit activation. */
int activationLoSliceCount(int bits);

/** Encode a (4k+4)-bit unsigned value into k+1 unsigned slices (lo→hi). */
std::vector<Slice> activationEncode(std::int32_t value, int k);

/** Decode straightforward slices (lo→hi) back to the unsigned value. */
std::int32_t activationDecode(const std::vector<Slice> &slices);

/** Positional shift of straightforward slice level i: 4i. */
constexpr int
activationShift(int level)
{
    return 4 * level;
}

/** DBS two-slice split of an 8-bit code at LO width l in {4, 5, 6}. */
struct DbsSlices
{
    Slice lo = 0;   ///< 4-bit stored LO slice (LSBs beyond 4 discarded)
    Slice ho = 0;   ///< 4-bit stored HO slice (zero-padded)
};

/** Apply the DBS slicing rule to one 8-bit code. */
DbsSlices dbsEncode(std::int32_t value, int lo_bits);

/**
 * Reconstruct the effective code from DBS slices:
 * ho * 2^l + lo * 2^(l-4). Equals the original with its (l-4) LSBs
 * cleared.
 */
std::int32_t dbsDecode(const DbsSlices &slices, int lo_bits);

} // namespace panacea

#endif // PANACEA_SLICING_STRAIGHTFORWARD_H
