#include "slicing/sparsity.h"

#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

double
sliceSparsity(const Matrix<Slice> &plane, Slice value)
{
    if (plane.empty())
        return 0.0;
    std::size_t hits = 0;
    for (Slice s : plane.data())
        hits += s == value ? 1 : 0;
    return static_cast<double>(hits) / static_cast<double>(plane.size());
}

MatrixU8
weightVectorMask(const Matrix<Slice> &plane, int v)
{
    panic_if(v <= 0, "vector length must be positive");
    panic_if(plane.rows() % v != 0, "weight rows ", plane.rows(),
             " not divisible by v=", v);

    // Parallel over mask rows (disjoint writes, thread-count
    // independent).
    MatrixU8 mask(plane.rows() / v, plane.cols());
    parallelFor(0, mask.rows(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t g = b; g < e; ++g) {
            for (std::size_t c = 0; c < plane.cols(); ++c) {
                bool all_zero = true;
                for (int i = 0; i < v && all_zero; ++i)
                    all_zero = plane(g * v + i, c) == 0;
                mask(g, c) = all_zero ? 1 : 0;
            }
        }
    });
    return mask;
}

MatrixU8
activationVectorMask(const Matrix<Slice> &plane, int v, Slice r)
{
    panic_if(v <= 0, "vector length must be positive");
    panic_if(plane.cols() % v != 0, "activation cols ", plane.cols(),
             " not divisible by v=", v);

    // Parallel over mask rows (disjoint writes, thread-count
    // independent).
    MatrixU8 mask(plane.rows(), plane.cols() / v);
    parallelFor(0, mask.rows(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t rix = b; rix < e; ++rix) {
            for (std::size_t g = 0; g < mask.cols(); ++g) {
                bool all_r = true;
                for (int i = 0; i < v && all_r; ++i)
                    all_r = plane(rix, g * v + i) == r;
                mask(rix, g) = all_r ? 1 : 0;
            }
        }
    });
    return mask;
}

double
maskDensityOfOnes(const MatrixU8 &mask)
{
    if (mask.empty())
        return 0.0;
    std::size_t ones = 0;
    for (auto b : mask.data())
        ones += b;
    return static_cast<double>(ones) / static_cast<double>(mask.size());
}

SparsityReport
analyzeWeightHo(const Matrix<Slice> &plane, int v)
{
    SparsityReport rep;
    rep.sliceLevel = sliceSparsity(plane, 0);
    rep.vectorLevel = maskDensityOfOnes(weightVectorMask(plane, v));
    return rep;
}

SparsityReport
analyzeActivationHo(const Matrix<Slice> &plane, int v, Slice r)
{
    SparsityReport rep;
    rep.sliceLevel = sliceSparsity(plane, r);
    rep.vectorLevel = maskDensityOfOnes(activationVectorMask(plane, v, r));
    return rep;
}

} // namespace panacea
