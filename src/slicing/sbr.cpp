#include "slicing/sbr.h"

#include "util/logging.h"

namespace panacea {

int
sbrLoSliceCount(int bits)
{
    panic_if(bits < 4 || (bits - 4) % 3 != 0,
             "SBR requires (3n+4)-bit values, got ", bits);
    return (bits - 4) / 3;
}

void
sbrEncodeInto(std::int32_t value, int n, Slice *out)
{
    panic_if(n < 0, "negative LO slice count");
    const int bits = sbrBits(n);
    const std::int32_t lo_bound = -(std::int32_t{1} << (bits - 1));
    const std::int32_t hi_bound = (std::int32_t{1} << (bits - 1)) - 1;
    panic_if(value < lo_bound || value > hi_bound,
             "value ", value, " does not fit ", bits, "-bit SBR");

    const std::int32_t sign = value < 0 ? 1 : 0;

    // Raw split: arithmetic-shift HO, 3-bit unsigned LO fields.
    for (int i = 0; i < n; ++i)
        out[i] = static_cast<Slice>((value >> (3 * i)) & 0x7);
    out[n] = static_cast<Slice>(value >> (3 * n));

    if (sign && n > 0) {
        // Sign-extension: each LO slice gains the sign bit as its MSB
        // (-8), and the slice above absorbs a +1 compensation.
        // Net: LO_0 -= 8; intermediate LO_i += 1 - 8; HO += 1.
        // With n = 0 there is no LO slice and the single 4-bit signed
        // slice is already the value itself.
        out[0] = static_cast<Slice>(out[0] - 8);
        for (int i = 1; i < n; ++i)
            out[i] = static_cast<Slice>(out[i] + 1 - 8);
        out[n] = static_cast<Slice>(out[n] + 1);
    }

    for (int i = 0; i <= n; ++i)
        panic_if(out[i] < signedSliceMin || out[i] > signedSliceMax,
                 "SBR slice ", i, " = ", int{out[i]},
                 " escapes signed 4-bit range for value ", value);
}

std::vector<Slice>
sbrEncode(std::int32_t value, int n)
{
    std::vector<Slice> slices(n + 1);
    sbrEncodeInto(value, n, slices.data());
    return slices;
}

std::int32_t
sbrDecode(const std::vector<Slice> &slices)
{
    panic_if(slices.empty(), "SBR decode of empty slice list");
    std::int32_t value = 0;
    for (std::size_t i = 0; i < slices.size(); ++i)
        value += static_cast<std::int32_t>(slices[i])
                 << sbrShift(static_cast<int>(i));
    return value;
}

} // namespace panacea
