#include "slicing/rle.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

RleStream
RleStream::encode(std::span<const Slice> vectors, std::size_t num_vectors,
                  int vlen, Slice fill, int index_bits)
{
    panic_if(vlen <= 0, "RLE vlen must be positive");
    panic_if(index_bits <= 0 || index_bits > 16, "RLE index bits ",
             index_bits, " out of (0,16]");
    panic_if(vectors.size() != num_vectors * static_cast<std::size_t>(vlen),
             "RLE input size ", vectors.size(), " != ", num_vectors, "*",
             vlen);

    RleStream stream;
    stream.totalVectors_ = num_vectors;
    stream.fill_ = fill;
    stream.vlen_ = vlen;
    stream.indexBits_ = index_bits;

    const std::uint16_t max_skip =
        static_cast<std::uint16_t>((1u << index_bits) - 1);

    std::vector<RleEntry> entries;
    std::vector<Slice> payloads;
    std::uint16_t run = 0;
    for (std::size_t k = 0; k < num_vectors; ++k) {
        std::span<const Slice> vec =
            vectors.subspan(k * vlen, static_cast<std::size_t>(vlen));
        bool compressible =
            std::all_of(vec.begin(), vec.end(),
                        [fill](Slice s) { return s == fill; });

        if (compressible && run < max_skip) {
            ++run;
            continue;
        }
        // Either a genuinely uncompressed vector, or a compressible one
        // that exceeded the skip budget and must be stored verbatim.
        RleEntry entry;
        entry.skip = run;
        entry.vectorIndex = static_cast<std::uint32_t>(k);
        entries.push_back(entry);
        payloads.insert(payloads.end(), vec.begin(), vec.end());
        run = 0;
    }
    // A trailing run needs no entry: the decoder pads to totalVectors_.
    stream.entries_ = std::move(entries);
    stream.payloads_ = std::move(payloads);
    return stream;
}

RleStream
RleStream::restore(ArenaVec<RleEntry> entries,
                   ArenaVec<Slice> payloads, std::size_t total_vectors,
                   Slice fill, int vlen, int index_bits)
{
    panic_if(vlen <= 0, "RLE vlen must be positive");
    panic_if(index_bits <= 0 || index_bits > 16, "RLE index bits ",
             index_bits, " out of (0,16]");
    panic_if(payloads.size() !=
                 entries.size() * static_cast<std::size_t>(vlen),
             "RLE restore payload size ", payloads.size(), " != ",
             entries.size(), "*", vlen);
    for (const RleEntry &e : entries)
        panic_if(e.vectorIndex >= total_vectors,
                 "RLE restore entry index ", e.vectorIndex,
                 " past sequence end ", total_vectors);

    RleStream stream;
    stream.entries_ = std::move(entries);
    stream.payloads_ = std::move(payloads);
    stream.totalVectors_ = total_vectors;
    stream.fill_ = fill;
    stream.vlen_ = vlen;
    stream.indexBits_ = index_bits;
    return stream;
}

std::vector<Slice>
RleStream::decode() const
{
    std::vector<Slice> out(totalVectors_ * static_cast<std::size_t>(vlen_),
                           fill_);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        cursor += entries_[i].skip;
        panic_if(cursor != entries_[i].vectorIndex,
                 "RLE index decode mismatch at entry ", i);
        panic_if(cursor >= totalVectors_, "RLE decode past sequence end");
        std::span<const Slice> src = payload(i);
        std::copy(src.begin(), src.end(),
                  out.begin() + cursor * static_cast<std::size_t>(vlen_));
        ++cursor;
    }
    return out;
}

double
RleStream::compressionRatio() const
{
    if (totalVectors_ == 0)
        return 0.0;
    return 1.0 - static_cast<double>(entries_.size()) /
                     static_cast<double>(totalVectors_);
}

std::size_t
RleStream::encodedBits() const
{
    return entries_.size() *
           (static_cast<std::size_t>(vlen_) * 4 +
            static_cast<std::size_t>(indexBits_));
}

std::size_t
RleStream::denseBits() const
{
    return totalVectors_ * static_cast<std::size_t>(vlen_) * 4;
}

std::span<const Slice>
RleStream::payload(std::size_t i) const
{
    panic_if(i >= entries_.size(), "RLE payload index out of range");
    return {payloads_.data() + i * static_cast<std::size_t>(vlen_),
            static_cast<std::size_t>(vlen_)};
}

std::vector<RleStream>
encodeWeightPlane(const Matrix<Slice> &plane, int v, int index_bits)
{
    panic_if(plane.rows() % v != 0, "weight rows ", plane.rows(),
             " not divisible by v=", v);

    // Parallel over row bands: stream g depends only on band g, and
    // every chunk writes its own pre-sized slots, so the result is
    // identical for any thread count.
    std::vector<RleStream> streams(plane.rows() / v);
    parallelFor(0, streams.size(), [&](std::size_t b, std::size_t e,
                                       int) {
        std::vector<Slice> scratch(plane.cols() *
                                   static_cast<std::size_t>(v));
        for (std::size_t g = b; g < e; ++g) {
            // Gather column vectors: vector k holds rows [g*v, g*v+v)
            // of column k.
            for (std::size_t k = 0; k < plane.cols(); ++k)
                for (int i = 0; i < v; ++i)
                    scratch[k * v + i] = plane(g * v + i, k);
            streams[g] = RleStream::encode(scratch, plane.cols(), v,
                                           /*fill=*/0, index_bits);
        }
    });
    return streams;
}

std::vector<RleStream>
encodeActivationPlane(const Matrix<Slice> &plane, int v, Slice r,
                      int index_bits)
{
    panic_if(plane.cols() % v != 0, "activation cols ", plane.cols(),
             " not divisible by v=", v);

    // Parallel over column bands (disjoint pre-sized slots; see
    // encodeWeightPlane).
    std::vector<RleStream> streams(plane.cols() / v);
    parallelFor(0, streams.size(), [&](std::size_t b, std::size_t e,
                                       int) {
        std::vector<Slice> scratch(plane.rows() *
                                   static_cast<std::size_t>(v));
        for (std::size_t g = b; g < e; ++g) {
            // Gather row vectors: vector k holds columns [g*v, g*v+v)
            // of row k.
            for (std::size_t k = 0; k < plane.rows(); ++k)
                for (int i = 0; i < v; ++i)
                    scratch[k * v + i] = plane(k, g * v + i);
            streams[g] = RleStream::encode(scratch, plane.rows(), v, r,
                                           index_bits);
        }
    });
    return streams;
}

} // namespace panacea
