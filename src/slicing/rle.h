/**
 * @file
 * Run-length encoding of compressed slice-vectors (paper §III-B Fig. 7a).
 *
 * Along the reduction (K) axis, compressible vectors (all-zero weight
 * vectors / all-r activation vectors) are dropped; each stored vector
 * carries a skip index counting the compressed vectors preceding it.
 * With w-bit indices at most 2^w - 1 successive vectors can be skipped
 * per index; a compressible vector beyond that budget is stored verbatim
 * (it still computes correctly - it is simply not skipped). Trailing
 * compressed vectors need no entry: the decoder knows the sequence
 * length.
 */

#ifndef PANACEA_SLICING_RLE_H
#define PANACEA_SLICING_RLE_H

#include <cstdint>
#include <span>
#include <vector>

#include "slicing/slice_types.h"
#include "util/arena.h"
#include "util/matrix.h"

namespace panacea {

/** One stored (uncompressed) vector in an RLE stream. */
struct RleEntry
{
    std::uint16_t skip = 0;        ///< compressed vectors before this one
    std::uint32_t vectorIndex = 0; ///< absolute position (decoder output)
};

/**
 * An RLE-compressed sequence of slice-vectors along one reduction axis.
 */
class RleStream
{
  public:
    /**
     * Encode a flattened sequence of num_vectors vectors of vlen slices.
     *
     * @param vectors     contiguous vector data (num_vectors * vlen)
     * @param num_vectors sequence length
     * @param vlen        slices per vector (paper: 4)
     * @param fill        the compressible value (0 for weights, r for
     *                    asymmetric activations)
     * @param index_bits  RLE index width (paper: 4)
     */
    static RleStream encode(std::span<const Slice> vectors,
                            std::size_t num_vectors, int vlen, Slice fill,
                            int index_bits);

    /**
     * Rebuild a stream from its stored parts (entry metadata, payload
     * slices, sequence length and encoding parameters) WITHOUT
     * re-running the encoder: the deserialization entry point of the
     * compiled-model format (serve/model_serialize.h). The parts must
     * come from a stream encoded with the same parameters; restoring
     * what encode() produced yields a byte-identical stream.
     *
     * @param entries      stored-entry metadata, in stream order
     * @param payloads     entries.size() * vlen payload slices
     * @param total_vectors original sequence length
     */
    static RleStream restore(ArenaVec<RleEntry> entries,
                             ArenaVec<Slice> payloads,
                             std::size_t total_vectors, Slice fill,
                             int vlen, int index_bits);

    /** Reconstruct the full flattened vector sequence. */
    std::vector<Slice> decode() const;

    /** @return number of stored (uncompressed) entries. */
    std::size_t storedCount() const { return entries_.size(); }

    /** @return total vectors in the original sequence. */
    std::size_t totalCount() const { return totalVectors_; }

    /** @return fraction of vectors elided by compression. */
    double compressionRatio() const;

    /** @return bits of the encoded stream: per entry vlen*4 + index. */
    std::size_t encodedBits() const;

    /** @return bits of the dense (uncompressed) sequence. */
    std::size_t denseBits() const;

    /** @return entry metadata (skip counts + absolute indices). */
    std::span<const RleEntry> entries() const { return entries_; }

    /** @return payload slices of entry i (vlen slices). */
    std::span<const Slice> payload(std::size_t i) const;

    /** @return all payload slices (storedCount() * vlen, entry order). */
    std::span<const Slice> payloads() const { return payloads_; }

    /** @return the compressible fill value. */
    Slice fill() const { return fill_; }
    /** @return slices per vector. */
    int vlen() const { return vlen_; }
    /** @return RLE index bit-width. */
    int indexBits() const { return indexBits_; }

  private:
    // Own-or-view backing: encode() owns, the zero-copy loader views
    // into the mapped compiled-model file (util/arena.h).
    ArenaVec<RleEntry> entries_;
    ArenaVec<Slice> payloads_;      ///< entries_.size() * vlen_ slices
    std::size_t totalVectors_ = 0;
    Slice fill_ = 0;
    int vlen_ = defaultVectorLength;
    int indexBits_ = defaultRleIndexBits;
};

/**
 * Encode a weight HO plane: one stream per v-row band, vectors are
 * v x 1 columns streamed along K (the column axis), fill value 0.
 */
std::vector<RleStream> encodeWeightPlane(const Matrix<Slice> &plane, int v,
                                         int index_bits);

/**
 * Encode an activation HO plane: one stream per v-column band, vectors
 * are 1 x v rows streamed along K (the row axis), fill value r.
 */
std::vector<RleStream> encodeActivationPlane(const Matrix<Slice> &plane,
                                             int v, Slice r, int index_bits);

} // namespace panacea

#endif // PANACEA_SLICING_RLE_H
