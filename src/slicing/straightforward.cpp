#include "slicing/straightforward.h"

#include "util/logging.h"

namespace panacea {

int
activationLoSliceCount(int bits)
{
    panic_if(bits < 4 || bits % 4 != 0,
             "straightforward slicing requires (4k+4)-bit values, got ",
             bits);
    return bits / 4 - 1;
}

std::vector<Slice>
activationEncode(std::int32_t value, int k)
{
    panic_if(k < 0, "negative LO slice count");
    const int bits = activationBits(k);
    panic_if(value < 0 || value >= (std::int32_t{1} << bits),
             "value ", value, " does not fit unsigned ", bits, "-bit");

    std::vector<Slice> slices(k + 1);
    for (int i = 0; i <= k; ++i)
        slices[i] = static_cast<Slice>((value >> (4 * i)) & 0xF);
    return slices;
}

std::int32_t
activationDecode(const std::vector<Slice> &slices)
{
    panic_if(slices.empty(), "decode of empty slice list");
    std::int32_t value = 0;
    for (std::size_t i = 0; i < slices.size(); ++i) {
        panic_if(slices[i] < 0 || slices[i] > unsignedSliceMax,
                 "activation slice out of unsigned 4-bit range");
        value += static_cast<std::int32_t>(slices[i])
                 << activationShift(static_cast<int>(i));
    }
    return value;
}

DbsSlices
dbsEncode(std::int32_t value, int lo_bits)
{
    panic_if(lo_bits < 4 || lo_bits > 6, "DBS lo_bits ", lo_bits,
             " outside {4,5,6}");
    panic_if(value < 0 || value > 255, "DBS slicing is defined on 8-bit "
             "codes, got ", value);

    DbsSlices out;
    out.ho = static_cast<Slice>(value >> lo_bits);
    const std::int32_t lo_field = value & ((1 << lo_bits) - 1);
    out.lo = static_cast<Slice>(lo_field >> (lo_bits - 4));
    return out;
}

std::int32_t
dbsDecode(const DbsSlices &slices, int lo_bits)
{
    panic_if(lo_bits < 4 || lo_bits > 6, "DBS lo_bits ", lo_bits,
             " outside {4,5,6}");
    return (static_cast<std::int32_t>(slices.ho) << lo_bits) +
           (static_cast<std::int32_t>(slices.lo) << (lo_bits - 4));
}

} // namespace panacea
