/**
 * @file
 * Slice- and vector-level sparsity analytics (paper §III-B, Fig. 14).
 *
 * Weight HO planes are grouped into v x 1 column vectors along M; a
 * vector is compressible when all its slices are zero. Activation HO
 * planes are grouped into 1 x v row vectors along N; a vector is
 * compressible when all its slices equal the frequent value r = HO(zp').
 */

#ifndef PANACEA_SLICING_SPARSITY_H
#define PANACEA_SLICING_SPARSITY_H

#include "slicing/slice_types.h"
#include "util/matrix.h"

namespace panacea {

/** Fraction of slices in a plane equal to the given value. */
double sliceSparsity(const Matrix<Slice> &plane, Slice value);

/**
 * Compression mask for a weight HO plane: groups rows into v-row bands.
 * @return (rows/v) x cols matrix; 1 marks an all-zero vector.
 */
MatrixU8 weightVectorMask(const Matrix<Slice> &plane, int v);

/**
 * Compression mask for an activation HO plane: groups columns into
 * v-column bands. @return rows x (cols/v) matrix; 1 marks an all-r
 * vector.
 */
MatrixU8 activationVectorMask(const Matrix<Slice> &plane, int v, Slice r);

/** Fraction of set entries in a compression mask. */
double maskDensityOfOnes(const MatrixU8 &mask);

/** Summary of one operand's HO sparsity. */
struct SparsityReport
{
    double sliceLevel = 0.0;   ///< fraction of individually skippable slices
    double vectorLevel = 0.0;  ///< fraction of compressible v-vectors
};

/** Analyze a weight HO plane (zero-valued skipping). */
SparsityReport analyzeWeightHo(const Matrix<Slice> &plane, int v);

/** Analyze an activation HO plane (r-valued skipping). */
SparsityReport analyzeActivationHo(const Matrix<Slice> &plane, int v,
                                   Slice r);

} // namespace panacea

#endif // PANACEA_SLICING_SPARSITY_H
