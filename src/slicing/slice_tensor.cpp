#include "slicing/slice_tensor.h"

#include "slicing/sbr.h"
#include "slicing/straightforward.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

MatrixI32
SlicedMatrix::reconstruct() const
{
    panic_if(planes.empty(), "reconstruct of empty SlicedMatrix");
    MatrixI32 out(rows(), cols());
    // Parallel over disjoint element ranges; each chunk sums its
    // elements across all planes, so the result is identical for any
    // thread count.
    auto dst = out.data();
    parallelFor(0, dst.size(), [&](std::size_t b, std::size_t e, int) {
        for (const SlicePlane &plane : planes) {
            auto src = plane.data.data();
            for (std::size_t i = b; i < e; ++i)
                dst[i] += static_cast<std::int32_t>(src[i])
                          << plane.shift;
        }
    });
    return out;
}

SlicedMatrix
sbrSliceMatrix(const MatrixI32 &codes, int n)
{
    SlicedMatrix sliced;
    sliced.signedSlices = true;
    sliced.sourceBits = sbrBits(n);
    sliced.planes.resize(n + 1);
    for (int level = 0; level <= n; ++level) {
        sliced.planes[level].data =
            Matrix<Slice>(codes.rows(), codes.cols());
        sliced.planes[level].shift = sbrShift(level);
        sliced.planes[level].high = level == n;
    }

    panic_if(n + 1 > 12, "unsupported SBR slice count");
    // Parallel over rows: every chunk encodes its own rows into
    // disjoint plane elements, so slicing is byte-identical for any
    // thread count.
    parallelFor(0, codes.rows(), [&](std::size_t b, std::size_t e, int) {
        Slice scratch[12];
        for (std::size_t r = b; r < e; ++r) {
            for (std::size_t c = 0; c < codes.cols(); ++c) {
                sbrEncodeInto(codes(r, c), n, scratch);
                for (int level = 0; level <= n; ++level)
                    sliced.planes[level].data(r, c) = scratch[level];
            }
        }
    });
    return sliced;
}

SlicedMatrix
activationSliceMatrix(const MatrixI32 &codes, int k)
{
    SlicedMatrix sliced;
    sliced.signedSlices = false;
    sliced.sourceBits = activationBits(k);
    sliced.planes.resize(k + 1);
    for (int level = 0; level <= k; ++level) {
        sliced.planes[level].data =
            Matrix<Slice>(codes.rows(), codes.cols());
        sliced.planes[level].shift = activationShift(level);
        sliced.planes[level].high = level == k;
    }

    // Parallel over rows (disjoint writes; see sbrSliceMatrix).
    parallelFor(0, codes.rows(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t r = b; r < e; ++r) {
            for (std::size_t c = 0; c < codes.cols(); ++c) {
                const std::int32_t value = codes(r, c);
                panic_if(value < 0 ||
                         value >= (std::int32_t{1} << activationBits(k)),
                         "activation code ", value, " out of unsigned ",
                         activationBits(k), "-bit range");
                for (int level = 0; level <= k; ++level)
                    sliced.planes[level].data(r, c) =
                        static_cast<Slice>((value >> (4 * level)) & 0xF);
            }
        }
    });
    return sliced;
}

SlicedMatrix
dbsSliceMatrix(const MatrixI32 &codes, int lo_bits)
{
    panic_if(lo_bits < 4 || lo_bits > 6, "DBS lo_bits ", lo_bits,
             " outside {4,5,6}");

    SlicedMatrix sliced;
    sliced.signedSlices = false;
    sliced.sourceBits = 8;
    sliced.loBits = lo_bits;
    sliced.planes.resize(2);
    sliced.planes[0].data = Matrix<Slice>(codes.rows(), codes.cols());
    sliced.planes[0].shift = lo_bits - 4;
    sliced.planes[0].high = false;
    sliced.planes[1].data = Matrix<Slice>(codes.rows(), codes.cols());
    sliced.planes[1].shift = lo_bits;
    sliced.planes[1].high = true;

    // Parallel over rows (disjoint writes; see sbrSliceMatrix).
    parallelFor(0, codes.rows(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t r = b; r < e; ++r) {
            for (std::size_t c = 0; c < codes.cols(); ++c) {
                DbsSlices s = dbsEncode(codes(r, c), lo_bits);
                sliced.planes[0].data(r, c) = s.lo;
                sliced.planes[1].data(r, c) = s.ho;
            }
        }
    });
    return sliced;
}

} // namespace panacea
