/**
 * @file
 * Signed Bit-slice Representation (SBR) of Sibia (paper §II-B, Fig. 3(b)).
 *
 * A (3n+4)-bit signed integer is divided into one 4-bit signed HO slice
 * and n 3-bit unsigned LO slices; each LO slice is then extended to a
 * signed 4-bit slice by appending the sign bit, and the next-higher slice
 * absorbs a +1 compensation. After extension every slice lies in [-8, 7]
 * and the value reconstructs as
 *
 *     w = HO * 8^n + sum_i LO_i * 8^i .
 *
 * The payoff: both positive and negative near-zero values (|w| <= 8^n)
 * produce an all-zero HO slice, doubling skippable HO slices relative to
 * straightforward slicing.
 */

#ifndef PANACEA_SLICING_SBR_H
#define PANACEA_SLICING_SBR_H

#include <cstdint>
#include <vector>

#include "slicing/slice_types.h"

namespace panacea {

/** @return bit-width of an SBR value with n LO slices: 3n + 4. */
constexpr int
sbrBits(int n)
{
    return 3 * n + 4;
}

/** @return number of LO slices n for a (3n+4)-bit value. */
int sbrLoSliceCount(int bits);

/**
 * Encode one (3n+4)-bit signed value into n+1 signed slices.
 *
 * @param value the signed integer; must fit in sbrBits(n) bits
 * @param n     number of LO slices
 * @return slices ordered low to high; slices[n] is the HO slice.
 */
std::vector<Slice> sbrEncode(std::int32_t value, int n);

/**
 * Allocation-free SBR encode into a caller buffer of n+1 slices
 * (hot path for slicing multi-million-element tensors).
 */
void sbrEncodeInto(std::int32_t value, int n, Slice *out);

/** Decode SBR slices (low to high) back to the integer value. */
std::int32_t sbrDecode(const std::vector<Slice> &slices);

/** Positional shift of SBR slice level i: value contribution is 2^(3i). */
constexpr int
sbrShift(int level)
{
    return 3 * level;
}

} // namespace panacea

#endif // PANACEA_SLICING_SBR_H
