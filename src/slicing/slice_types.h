/**
 * @file
 * Basic types of the bit-slice layer.
 *
 * A slice is a 4-bit datum stored in an int8_t: signed in [-8, 7] for
 * SBR weight slices, unsigned in [0, 15] for activation slices. The
 * hardware multipliers are 4b x 4b sign-unsigned units, so a product of
 * one weight slice and one activation slice fits in a signed 8-bit value.
 */

#ifndef PANACEA_SLICING_SLICE_TYPES_H
#define PANACEA_SLICING_SLICE_TYPES_H

#include <cstdint>

namespace panacea {

/** Storage type of a single 4-bit slice. */
using Slice = std::int8_t;

/** Slice significance level. */
enum class SliceLevel { Low, High };

/** Paper default: slices are grouped into vectors of this length. */
inline constexpr int defaultVectorLength = 4;

/** Paper default: RLE indices are this many bits (skip up to 15). */
inline constexpr int defaultRleIndexBits = 4;

/** Bounds of a signed 4-bit slice. */
inline constexpr Slice signedSliceMin = -8;
inline constexpr Slice signedSliceMax = 7;

/** Bounds of an unsigned 4-bit slice. */
inline constexpr Slice unsignedSliceMin = 0;
inline constexpr Slice unsignedSliceMax = 15;

} // namespace panacea

#endif // PANACEA_SLICING_SLICE_TYPES_H
