/**
 * @file
 * Sibia baseline (paper [53], HPCA'23): the previous-generation signed
 * bit-slice accelerator. Symmetric quantization on both operands, SBR
 * slicing, zero-HO-vector skipping on ONE operand side (whichever has
 * the larger vector sparsity), uncompressed DRAM format, 12 uniform
 * operators per PEA, no compensation and no DTP.
 */

#ifndef PANACEA_BASELINES_SIBIA_H
#define PANACEA_BASELINES_SIBIA_H

#include "baselines/accelerator.h"

namespace panacea {

/** Sibia hardware configuration. */
struct SibiaConfig
{
    int numPeas = 16;
    int opcsPerPea = 12;   ///< uniform operator banks (192 OPCs total)
    int v = 4;
    int tileM = 64;
    int tileN = 64;
    std::uint64_t wmemBytes = 160 * 1024;
    std::uint64_t amemBytes = 16 * 1024;
    std::uint64_t omemBytes = 16 * 1024;
    std::uint64_t dramBytesPerCycle = 32;
    double clockGhz = 0.5;
};

/**
 * Cycle-level performance model of Sibia.
 */
class SibiaSimulator : public Accelerator
{
  public:
    explicit SibiaSimulator(SibiaConfig cfg = SibiaConfig{},
                            EnergyModel energy = EnergyModel{});

    std::string name() const override { return "Sibia"; }
    PerfResult run(const GemmWorkload &wl) const override;

  private:
    SibiaConfig cfg_;
    EnergyModel energy_;
};

} // namespace panacea

#endif // PANACEA_BASELINES_SIBIA_H
