/**
 * @file
 * SIMD baseline (paper §IV [59]): a dense 8-bit vector engine with
 * per-vector scaled quantization, 768 8b MAC lanes (3072 4b x 4b
 * equivalents) and a tiled dataflow with the same SRAM/DRAM budget as
 * Panacea but uncompressed operands and no sparsity support.
 */

#ifndef PANACEA_BASELINES_SIMD_H
#define PANACEA_BASELINES_SIMD_H

#include "baselines/accelerator.h"

namespace panacea {

/**
 * Dense SIMD vector-engine model.
 */
class SimdSimulator : public Accelerator
{
  public:
    explicit SimdSimulator(ResourceBudget budget = ResourceBudget{},
                           EnergyModel energy = EnergyModel{},
                           int tile_m = 64);

    std::string name() const override { return "SIMD"; }
    PerfResult run(const GemmWorkload &wl) const override;

  private:
    ResourceBudget budget_;
    EnergyModel energy_;
    int tileM_;
};

} // namespace panacea

#endif // PANACEA_BASELINES_SIMD_H
