#include "baselines/sibia.h"

#include <algorithm>

#include "arch/pea.h"
#include "sim/dram.h"
#include "util/logging.h"

namespace panacea {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

SibiaSimulator::SibiaSimulator(SibiaConfig cfg, EnergyModel energy)
    : cfg_(cfg), energy_(energy)
{
    fatal_if(cfg.numPeas <= 0 || cfg.opcsPerPea <= 0,
             "invalid Sibia configuration");
    fatal_if(cfg.tileM != cfg.numPeas * cfg.v,
             "Sibia TM must equal P*v");
}

PerfResult
SibiaSimulator::run(const GemmWorkload &wl) const
{
    panic_if(wl.m % cfg_.v != 0 || wl.n % cfg_.v != 0,
             "workload M/N must be divisible by v");

    const std::uint64_t m = wl.m;
    const std::uint64_t k = wl.k;
    const std::uint64_t n = wl.n;
    const std::uint64_t w_levels = static_cast<std::uint64_t>(wl.wLevels);
    const std::uint64_t x_levels = static_cast<std::uint64_t>(wl.xLevels);

    // Pick the sparser operand side; Sibia exploits only one (Table I:
    // 32K(2 - max(rho_x, rho_w))).
    const double rho_w = wl.rhoW();
    const double rho_x = wl.rhoX();
    const bool skip_weight = rho_w >= rho_x;

    XccTable xcc = XccTable::build(wl, cfg_.tileN, cfg_.v);
    const std::size_t groups_per_tile =
        static_cast<std::size_t>(cfg_.tileM / cfg_.v);
    const std::size_t total_groups =
        wl.m / static_cast<std::size_t>(cfg_.v);
    const std::size_t m_tiles =
        (total_groups + groups_per_tile - 1) / groups_per_tile;

    std::uint64_t compute_cycles = 0;
    std::uint64_t executed_total = 0;
    const std::uint64_t opcs = static_cast<std::uint64_t>(cfg_.opcsPerPea);

    for (std::size_t t = 0; t < m_tiles; ++t) {
        for (std::size_t nt = 0; nt < xcc.tiles(); ++nt) {
            std::uint64_t tile_cycles = 0;
            for (int p = 0; p < cfg_.numPeas; ++p) {
                std::size_t g = t * groups_per_tile +
                                static_cast<std::size_t>(p);
                if (g >= total_groups)
                    continue;
                std::uint64_t exec = 0;
                const std::uint64_t cols = xcc.groups(nt);
                for (std::size_t kk = 0; kk < wl.k; ++kk) {
                    std::uint64_t dense = cols * w_levels * x_levels;
                    std::uint64_t skipped = 0;
                    if (skip_weight) {
                        if (wl.weightHoSkippable &&
                            wl.wMask(g, kk) != 0) {
                            skipped = cols * x_levels;
                        }
                    } else {
                        skipped = static_cast<std::uint64_t>(
                                      xcc.skippable(kk, nt)) * w_levels;
                    }
                    exec += dense - skipped;
                }
                executed_total += exec;
                tile_cycles = std::max(tile_cycles, ceilDiv(exec, opcs));
            }
            compute_cycles += tile_cycles;
        }
    }

    // --- Traffic: uncompressed DRAM format (packed source bit-width),
    // dense slice storage on chip. ---
    const std::uint64_t w_dram_bytes =
        m * k * static_cast<std::uint64_t>(wl.weightBits) / 8 + 1;
    const std::uint64_t x_dram_bytes =
        k * n * static_cast<std::uint64_t>(wl.actBits) / 8 + 1;
    const std::uint64_t w_sram_bytes = m * k * w_levels / 2;
    const std::uint64_t x_sram_bytes = k * n * x_levels / 2;
    const std::uint64_t out_bytes = m * n;

    // Weight m-tile row (TM x K slices) resident in WMEM when it fits;
    // otherwise weights re-stream each n-tile pass.
    const std::uint64_t n_tiles = xcc.tiles();
    const std::uint64_t w_tile_sram =
        std::min<std::uint64_t>(m, cfg_.tileM) * k * w_levels / 2;
    const std::uint64_t w_passes =
        w_tile_sram <= cfg_.wmemBytes ? 1 : n_tiles;
    const std::uint64_t x_passes =
        x_sram_bytes <= cfg_.amemBytes ? 1 : m_tiles;

    OpCounters c;
    c.dramReadBytes = w_dram_bytes * w_passes + x_dram_bytes * x_passes;
    c.dramWriteBytes = out_bytes;
    c.sramWriteBytes = c.dramReadBytes + out_bytes;
    c.sramReadBytes = w_sram_bytes * n_tiles + x_sram_bytes * m_tiles +
                      out_bytes;

    const std::uint64_t vv = static_cast<std::uint64_t>(cfg_.v) *
                             static_cast<std::uint64_t>(cfg_.v);
    c.mults4b = executed_total * vv;
    c.adds = executed_total * vv;
    c.shifts = executed_total;
    c.ppuOps = 2 * m * n;
    c.usefulMacs = m * k * n;

    DramModel dram(cfg_.dramBytesPerCycle);
    c.cycles = std::max(compute_cycles,
                        dram.cyclesFor(c.dramReadBytes +
                                       c.dramWriteBytes)) + 256;
    c.scale(wl.repeat);

    PerfResult result;
    result.accelerator = name();
    result.workload = wl.name;
    result.counters = c;
    result.energy = energy_.compute(c);
    result.clockGhz = cfg_.clockGhz;
    result.multipliers = cfg_.numPeas * cfg_.opcsPerPea * 16;
    return result;
}

} // namespace panacea
