#include "baselines/simd.h"

#include <algorithm>

#include "sim/dram.h"
#include "util/logging.h"

namespace panacea {

SimdSimulator::SimdSimulator(ResourceBudget budget, EnergyModel energy,
                             int tile_m)
    : budget_(budget), energy_(energy), tileM_(tile_m)
{
    fatal_if(tile_m <= 0, "invalid SIMD tile height");
}

PerfResult
SimdSimulator::run(const GemmWorkload &wl) const
{
    const std::uint64_t m = wl.m;
    const std::uint64_t k = wl.k;
    const std::uint64_t n = wl.n;
    const std::uint64_t lanes =
        static_cast<std::uint64_t>(budget_.multipliers4b) / 4;

    const std::uint64_t w_bytes = m * k;
    const std::uint64_t x_bytes = k * n;
    const std::uint64_t out_bytes = m * n;

    // Same weight-resident tiling as Panacea's dataflow, but dense
    // 8-bit operands: weights stream once when an m-tile row fits
    // on chip, activations re-stream per m-tile otherwise once.
    const std::uint64_t w_partition = budget_.sramBytes * 5 / 6;
    const std::uint64_t x_partition =
        budget_.sramBytes - w_partition;
    const std::uint64_t m_tiles =
        (m + static_cast<std::uint64_t>(tileM_) - 1) /
        static_cast<std::uint64_t>(tileM_);
    const std::uint64_t w_tile_bytes =
        std::min<std::uint64_t>(m, tileM_) * k;

    OpCounters c;
    const std::uint64_t w_passes = w_tile_bytes <= w_partition ? 1 : m_tiles;
    (void)w_passes;
    const std::uint64_t x_passes = x_bytes <= x_partition ? 1 : m_tiles;
    c.dramReadBytes = w_bytes + x_bytes * x_passes;
    c.sramWriteBytes = c.dramReadBytes;
    // A vector engine has no systolic operand forwarding: each lane
    // fetches its weight byte from the buffer per MAC, amortized only by
    // the register-blocking factor (4 activations per weight fetch);
    // activations broadcast across the lanes (one read per k, n).
    constexpr std::uint64_t reg_blocking = 4;
    c.sramReadBytes = m * k * n / reg_blocking + k * n + x_bytes * m_tiles;

    c.dramWriteBytes = out_bytes;
    c.sramWriteBytes += out_bytes;
    c.sramReadBytes += out_bytes;

    c.mults4b = 4 * m * k * n;
    c.adds = m * k * n;
    c.ppuOps = 2 * m * n;
    c.usefulMacs = m * k * n;

    const std::uint64_t compute_cycles =
        (m * k * n + lanes - 1) / lanes;
    DramModel dram(budget_.dramBytesPerCycle);
    c.cycles = std::max(compute_cycles,
                        dram.cyclesFor(c.dramReadBytes +
                                       c.dramWriteBytes)) + 64;
    c.scale(wl.repeat);

    PerfResult result;
    result.accelerator = name();
    result.workload = wl.name;
    result.counters = c;
    result.energy = energy_.compute(c);
    result.clockGhz = budget_.clockGhz;
    result.multipliers = budget_.multipliers4b;
    return result;
}

} // namespace panacea
