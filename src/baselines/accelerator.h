/**
 * @file
 * Common interface of all accelerator performance models. Every design
 * is normalized to the paper's comparison point (§IV): 3072 4b x 4b
 * multiplier equivalents (one 8b x 8b multiplier counts as four), 192 KB
 * of on-chip SRAM and a 256-bit/cycle DRAM channel.
 */

#ifndef PANACEA_BASELINES_ACCELERATOR_H
#define PANACEA_BASELINES_ACCELERATOR_H

#include <span>
#include <string>

#include "arch/workload.h"
#include "sim/perf_stats.h"

namespace panacea {

/** Shared resource normalization of the paper's evaluation. */
struct ResourceBudget
{
    int multipliers4b = 3072;
    std::uint64_t sramBytes = 192 * 1024;
    std::uint64_t dramBytesPerCycle = 32;
    double clockGhz = 0.5;
};

/**
 * Abstract accelerator performance model.
 */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** @return the design's display name. */
    virtual std::string name() const = 0;

    /** Simulate one GEMM workload. */
    virtual PerfResult run(const GemmWorkload &wl) const = 0;

    /** Simulate a sequence of layers and merge the results. */
    PerfResult
    runAll(std::span<const GemmWorkload> layers,
           const std::string &workload_name) const
    {
        PerfResult total;
        total.accelerator = name();
        total.workload = workload_name;
        bool first = true;
        for (const GemmWorkload &wl : layers) {
            PerfResult r = run(wl);
            if (first) {
                total.clockGhz = r.clockGhz;
                first = false;
            }
            total += r;
        }
        return total;
    }
};

} // namespace panacea

#endif // PANACEA_BASELINES_ACCELERATOR_H
