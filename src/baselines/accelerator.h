/**
 * @file
 * Common interface of all accelerator performance models. Every design
 * is normalized to the paper's comparison point (§IV): 3072 4b x 4b
 * multiplier equivalents (one 8b x 8b multiplier counts as four), 192 KB
 * of on-chip SRAM and a 256-bit/cycle DRAM channel.
 */

#ifndef PANACEA_BASELINES_ACCELERATOR_H
#define PANACEA_BASELINES_ACCELERATOR_H

#include <span>
#include <string>
#include <vector>

#include "arch/workload.h"
#include "sim/perf_stats.h"
#include "util/parallel_for.h"

namespace panacea {

/** Shared resource normalization of the paper's evaluation. */
struct ResourceBudget
{
    int multipliers4b = 3072;
    std::uint64_t sramBytes = 192 * 1024;
    std::uint64_t dramBytesPerCycle = 32;
    double clockGhz = 0.5;
};

/**
 * Abstract accelerator performance model.
 */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** @return the design's display name. */
    virtual std::string name() const = 0;

    /** Simulate one GEMM workload. */
    virtual PerfResult run(const GemmWorkload &wl) const = 0;

    /**
     * Simulate a sequence of layers and merge the results. Layers are
     * independent, so they run concurrently on the shared thread pool;
     * the per-layer results are merged in layer order afterwards, so
     * the total is identical for any thread count.
     */
    PerfResult
    runAll(std::span<const GemmWorkload> layers,
           const std::string &workload_name) const
    {
        std::vector<PerfResult> results(layers.size());
        parallelFor(0, layers.size(),
                    [&](std::size_t b, std::size_t e, int) {
                        for (std::size_t i = b; i < e; ++i)
                            results[i] = run(layers[i]);
                    });

        PerfResult total;
        total.accelerator = name();
        total.workload = workload_name;
        bool first = true;
        for (const PerfResult &r : results) {
            if (first) {
                total.clockGhz = r.clockGhz;
                first = false;
            }
            total += r;
        }
        return total;
    }
};

} // namespace panacea

#endif // PANACEA_BASELINES_ACCELERATOR_H
