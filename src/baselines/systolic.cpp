#include "baselines/systolic.h"

#include <algorithm>

#include "sim/dram.h"
#include "util/logging.h"

namespace panacea {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

SystolicSimulator::SystolicSimulator(SystolicDataflow dataflow,
                                     ResourceBudget budget, int rows,
                                     int cols, EnergyModel energy)
    : dataflow_(dataflow), budget_(budget), rows_(rows), cols_(cols),
      energy_(energy)
{
    fatal_if(rows <= 0 || cols <= 0, "invalid systolic array shape");
    fatal_if(rows * cols * 4 != budget.multipliers4b,
             "systolic array ", rows, "x", cols,
             " violates the multiplier budget of ", budget.multipliers4b);
}

std::string
SystolicSimulator::name() const
{
    return dataflow_ == SystolicDataflow::WeightStationary ? "SA-WS"
                                                           : "SA-OS";
}

PerfResult
SystolicSimulator::run(const GemmWorkload &wl) const
{
    const std::uint64_t m = wl.m;
    const std::uint64_t k = wl.k;
    const std::uint64_t n = wl.n;
    const std::uint64_t fill =
        static_cast<std::uint64_t>(rows_) + static_cast<std::uint64_t>(cols_);

    // Dense designs run 8-bit operands regardless of the bit-slice
    // workload's native widths (paper §IV).
    const std::uint64_t w_bytes = m * k;
    const std::uint64_t x_bytes = k * n;
    const std::uint64_t out_bytes = m * n;
    const std::uint64_t half_sram = budget_.sramBytes / 2;

    OpCounters c;
    std::uint64_t compute_cycles = 0;

    if (dataflow_ == SystolicDataflow::WeightStationary) {
        // Array holds a rows x cols (M x K) weight block; activations
        // stream through for all N columns. The N loop is chunked so a
        // rows x n_chunk psum buffer always fits on chip; weights
        // re-stream once per chunk when N exceeds one chunk.
        const std::uint64_t m_blocks = ceilDiv(m, rows_);
        const std::uint64_t k_blocks = ceilDiv(k, cols_);
        const std::uint64_t n_chunk =
            std::max<std::uint64_t>(1,
                                    half_sram / (static_cast<std::uint64_t>(
                                                     rows_) * 4));
        const std::uint64_t n_chunks = ceilDiv(n, n_chunk);
        compute_cycles = m_blocks * k_blocks * (n + n_chunks * fill);

        const std::uint64_t w_passes =
            w_bytes <= half_sram ? 1 : n_chunks;
        c.dramReadBytes = w_bytes * w_passes;
        // Activations re-streamed once per M block row unless the whole
        // matrix is SRAM-resident.
        const std::uint64_t x_passes =
            x_bytes <= half_sram ? 1 : m_blocks;
        c.dramReadBytes += x_bytes * x_passes;
        c.sramWriteBytes = w_bytes * w_passes + x_bytes * x_passes;
        c.sramReadBytes = w_bytes * n_chunks + x_bytes * m_blocks;

        // Partial sums traverse the on-chip buffer across K blocks.
        if (k_blocks > 1) {
            const std::uint64_t psum_bytes =
                out_bytes * 4 * (k_blocks - 1);
            c.sramWriteBytes += psum_bytes;
            c.sramReadBytes += psum_bytes;
        }
    } else {
        // Output stationary: array accumulates a rows x cols (M x N)
        // output block over the full K reduction.
        const std::uint64_t m_blocks = ceilDiv(m, rows_);
        const std::uint64_t n_blocks = ceilDiv(n, cols_);
        compute_cycles = m_blocks * n_blocks * (k + fill);

        // A row-block of weights (rows x K) can stay in SRAM and be
        // reused across the N blocks; otherwise weights re-stream.
        const std::uint64_t w_row_block = static_cast<std::uint64_t>(rows_) * k;
        const std::uint64_t w_passes =
            (w_bytes <= half_sram || w_row_block <= half_sram) ? 1
                                                               : n_blocks;
        const std::uint64_t x_passes =
            x_bytes <= half_sram ? 1 : m_blocks;
        c.dramReadBytes = w_bytes * w_passes + x_bytes * x_passes;
        c.sramWriteBytes = c.dramReadBytes;
        c.sramReadBytes = w_bytes * n_blocks + x_bytes * m_blocks;
    }

    c.dramWriteBytes += out_bytes;
    c.sramWriteBytes += out_bytes;
    c.sramReadBytes += out_bytes;

    // Dense MAC work: every 8b x 8b MAC costs four 4b x 4b multiplies.
    c.mults4b = 4 * m * k * n;
    c.adds = m * k * n;
    c.ppuOps = 2 * m * n;  // requantization, no PWL/compression stages
    c.usefulMacs = m * k * n;

    DramModel dram(budget_.dramBytesPerCycle);
    c.cycles = std::max(compute_cycles,
                        dram.cyclesFor(c.dramReadBytes +
                                       c.dramWriteBytes)) + fill;
    c.scale(wl.repeat);

    PerfResult result;
    result.accelerator = name();
    result.workload = wl.name;
    result.counters = c;
    result.energy = energy_.compute(c);
    result.clockGhz = budget_.clockGhz;
    result.multipliers = budget_.multipliers4b;
    return result;
}

} // namespace panacea
