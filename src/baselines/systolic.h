/**
 * @file
 * Systolic-array baselines (paper §IV: SA-WS and SA-OS [57][58]):
 * a 32 x 24 array of 768 8b x 8b MACs (3072 4b x 4b equivalents)
 * computing dense 8-bit GEMMs, in weight-stationary or output-stationary
 * dataflow. Fill/drain overheads and partial-sum spill traffic follow
 * the textbook models.
 */

#ifndef PANACEA_BASELINES_SYSTOLIC_H
#define PANACEA_BASELINES_SYSTOLIC_H

#include "baselines/accelerator.h"

namespace panacea {

/** Dataflow of the systolic baseline. */
enum class SystolicDataflow { WeightStationary, OutputStationary };

/**
 * Dense 8-bit systolic-array model.
 */
class SystolicSimulator : public Accelerator
{
  public:
    /**
     * @param dataflow WS or OS
     * @param budget   shared resource normalization
     * @param rows     array rows (default 32)
     * @param cols     array cols (default 24; rows*cols 8b MACs must
     *                 equal budget.multipliers4b / 4)
     */
    SystolicSimulator(SystolicDataflow dataflow,
                      ResourceBudget budget = ResourceBudget{},
                      int rows = 32, int cols = 24,
                      EnergyModel energy = EnergyModel{});

    std::string name() const override;
    PerfResult run(const GemmWorkload &wl) const override;

  private:
    SystolicDataflow dataflow_;
    ResourceBudget budget_;
    int rows_;
    int cols_;
    EnergyModel energy_;
};

} // namespace panacea

#endif // PANACEA_BASELINES_SYSTOLIC_H
