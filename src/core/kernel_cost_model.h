/**
 * @file
 * Per-host measured-cost model for the stream-vs-gather choice inside
 * the bit-slice GEMM engines.
 *
 * The engines can execute a pair pass two ways: GATHER an nk-long skip
 * list of dense reduction steps, or STREAM a masked-dense copy of all
 * kk steps (pairCount(kk) pre-interleaved step pairs; see
 * core/operand_pack.h). Both sum exactly the same products, so the
 * choice is pure throughput - and the right threshold depends on the
 * host's actual ratio of stream to gather cost, which the historical
 * static rule (stream once 2*nk >= kk) merely guesses at 2:1.
 *
 * This module microbenchmarks that ratio ONCE per host: per kernel
 * family (fixed v = 4 vs runtime-v) x ISA tier it times the gather
 * kernel per list step and the stream kernel per step pair over seeded
 * synthetic operands, quantizes both to integer picoseconds, and
 * persists the calibration as a small versioned JSON next to the
 * compiled-model cache (PANACEA_CACHE_DIR/kernel_costs.json). Later
 * processes load the file instead of re-measuring; a file with the
 * wrong version, checksum, or ISA coverage is ignored (never an
 * error), and an unusable entry falls back to the static rule - a bad
 * calibration can cost throughput, never correctness.
 *
 * Policy selection (PANACEA_STREAM_POLICY, or setStreamPolicy()):
 *   - "measured" (default): predicted-cost comparison per pass,
 *     stream_ps_per_pair * pairCount(kk) <= gather_ps_per_step * nk.
 *   - "static": the historical 2*nk >= kk rule (kill switch).
 *   - "stream" / "gather": force one mechanism wherever runnable
 *     (tests; also the two ends of the bench density sweep).
 * Every policy's profitable() is monotone nondecreasing in nk, which
 * the masked-HO-operand precondition in packStreamWeightOperands()
 * relies on (a pass list is never longer than the band's full dense
 * list, so "not profitable at wd_size" proves the copy dead).
 */

#ifndef PANACEA_CORE_KERNEL_COST_MODEL_H
#define PANACEA_CORE_KERNEL_COST_MODEL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/cpu_features.h"

namespace panacea {

/** How the engines decide between a masked-dense stream and a
 *  skip-list gather for each pair pass. */
enum class StreamPolicy
{
    Static = 0,   ///< historical fixed rule: stream once 2*nk >= kk
    Measured = 1, ///< per-host calibrated cost comparison (default)
    Stream = 2,   ///< force streaming wherever stream kernels exist
    Gather = 3,   ///< force gathering (paired operands never built)
};

/** @return printable name ("static", "measured", "stream", "gather"). */
const char *toString(StreamPolicy policy);

/**
 * Parse a policy name (case-insensitive). @return true and set *out on
 * success; false (out untouched) for unknown names.
 */
bool parseStreamPolicy(std::string_view name, StreamPolicy *out);

/**
 * The policy GEMM calls resolve right now: the setStreamPolicy()
 * override if set, else the PANACEA_STREAM_POLICY request (read once
 * per process), else Measured.
 */
StreamPolicy activeStreamPolicy();

/**
 * Override the active policy. Intended for tests, benchmarks and
 * RuntimeOptions plumbing; not thread-safe against concurrent GEMMs.
 */
void setStreamPolicy(StreamPolicy policy);

/** Drop the override, returning to PANACEA_STREAM_POLICY / default. */
void resetStreamPolicy();

namespace detail {

/** The two pair-pass shapes with separate cost behavior. */
enum class KernelFamily
{
    Pass4 = 0,   ///< fixed v = 4 kernels (pass4 / stream4)
    Generic = 1, ///< runtime-v kernels (passGeneric / streamGeneric)
};

inline constexpr std::size_t kKernelFamilyCount = 2;

/** Calibrated costs of one (ISA tier, kernel family) cell. */
struct KernelCostEntry
{
    /// False when this cell was never calibrated (e.g. the tier is not
    /// runnable here, or the loaded file predates it): Measured falls
    /// back to the static rule for it.
    bool measured = false;
    std::uint64_t gather_ps_per_step = 0; ///< gather cost per list step
    std::uint64_t stream_ps_per_pair = 0; ///< stream cost per step pair
};

/**
 * The per-host calibration: one entry per ISA tier x kernel family.
 * Costs are integer picoseconds so the JSON round-trips exactly and
 * the checksum is reproducible (no float formatting in the loop).
 */
struct KernelCostTable
{
    std::uint32_t version = 0;    ///< file-format version (kVersion)
    IsaLevel isa_cap = IsaLevel::Scalar; ///< supportedIsaCap() when calibrated
    bool loaded_from_disk = false; ///< true when read from the cache file
    int measurements = 0;          ///< kernels timed this process (0 on load)
    KernelCostEntry entries[kIsaLevelCount][kKernelFamilyCount];
};

/** Current calibration-file format version. */
inline constexpr std::uint32_t kKernelCostVersion = 1;

/**
 * The process-wide calibration, resolved lazily on first use: load
 * PANACEA_CACHE_DIR/kernel_costs.json when it is valid for this build
 * + host, else measure every runnable tier x family (a few ms) and
 * persist best-effort. Thread-safe; never throws past measurement.
 */
const KernelCostTable &kernelCostTable();

/**
 * The stream-vs-gather choice for one GEMM call, resolved ONCE per
 * call (policy + cost-table lookups hoisted out of the per-pass loop)
 * and then consulted per pass via profitable().
 */
struct StreamDecision
{
    StreamPolicy policy = StreamPolicy::Static;
    bool measured = false; ///< cost fields below are usable
    std::uint64_t gather_ps_per_step = 0;
    std::uint64_t stream_ps_per_pair = 0;

    /**
     * Stream (true) or gather (false) a pass whose dense-step list has
     * nk of the band's kk reduction steps. Monotone nondecreasing in
     * nk under EVERY policy (see file header). Availability of stream
     * kernels is the caller's check (streamKernelsRunnable).
     */
    bool
    profitable(std::size_t nk, std::size_t kk) const
    {
        if (policy == StreamPolicy::Stream)
            return true;
        if (policy == StreamPolicy::Gather)
            return false;
        if (policy == StreamPolicy::Measured && measured) {
            const std::uint64_t pairs = (kk + 1) / 2; // pairCount(kk)
            return stream_ps_per_pair * pairs <=
                   gather_ps_per_step * static_cast<std::uint64_t>(nk);
        }
        return 2 * nk >= kk; // static rule (and Measured's fallback)
    }
};

/**
 * Resolve the active policy + this tier/family's calibrated costs into
 * one StreamDecision. Only the Measured policy touches the cost table
 * (so forced/static policies never trigger calibration).
 */
StreamDecision streamDecision(IsaLevel level, KernelFamily family);

/** Serialize a calibration to its JSON file format (with checksum). */
std::string serializeKernelCosts(const KernelCostTable &table);

/**
 * Parse + validate a calibration file image: structure, version,
 * checksum, and isa_cap coverage for this host. @return true and fill
 * *out (loaded_from_disk = true) on success; false otherwise.
 */
bool parseKernelCosts(std::string_view text, KernelCostTable *out);

/**
 * Drop the cached process-wide table and resolve it again (reloading
 * the persisted file, or re-measuring when it is missing/invalid).
 * @return the fresh table's loaded_from_disk. Test/tool hook.
 */
bool reloadKernelCosts();

/**
 * Override the calibration cache directory (tests point this at a
 * temp dir instead of mutating PANACEA_CACHE_DIR). An empty string
 * disables persistence; call with reset = true to return to the env.
 * Takes effect at the next (re)load.
 */
void setKernelCostCacheDir(std::string dir, bool reset = false);

/** Resolved calibration file path ("" when no cache dir is set). */
std::string kernelCostCachePath();

} // namespace detail
} // namespace panacea

#endif // PANACEA_CORE_KERNEL_COST_MODEL_H
