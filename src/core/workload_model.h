/**
 * @file
 * Closed-form hardware workload model of paper Table I.
 *
 * For the canonical example (W in Z^{4xK}, x in Z^{Kx4}, two bit-slices
 * per operand) the table gives the number of 4b x 4b multiplications,
 * 8b additions and 4-bit external memory accesses as functions of the HO
 * vector sparsities rho_w and rho_x. These forms are validated against
 * the counted functional engines in tests and in bench_table1_workloads.
 */

#ifndef PANACEA_CORE_WORKLOAD_MODEL_H
#define PANACEA_CORE_WORKLOAD_MODEL_H

#include <cstdint>

namespace panacea {

/** Workload counts of Table I, in exact (double) arithmetic. */
struct WorkloadCounts
{
    double mults = 0.0;       ///< 4b x 4b multiplications
    double adds = 0.0;        ///< 8b additions
    double emaNibbles = 0.0;  ///< 4-bit external memory accesses
};

/**
 * Sibia's bit-slice GEMM workload: skips the HO products of whichever
 * operand has the larger vector sparsity.
 *
 * Mul = Add = 32K(2 - max(rho_x, rho_w));  EMA = 14K (7-bit operands,
 * uncompressed DRAM format).
 */
WorkloadCounts sibiaWorkload(std::uint64_t k, double rho_w, double rho_x);

/**
 * Panacea's AQS-GEMM bit-slice workload (without compensation):
 * Mul = Add = 16K(2 - rho_x)(2 - rho_w); EMA = 4K(4 - rho_w - rho_x).
 */
WorkloadCounts panaceaBitsliceWorkload(std::uint64_t k, double rho_w,
                                       double rho_x);

/**
 * The compensation term's workload.
 *
 * @param eq6 true: the weight-reusing form of Eq. (6)
 *            (Mul 16, Add 8K(1-rho_x), EMA 0); false: the naive Eq. (5)
 *            form (Mul 16, Add 8K rho_x, EMA 8K rho_x).
 */
WorkloadCounts compensationWorkload(std::uint64_t k, double rho_x,
                                    bool eq6);

/** Sum of the bit-slice and compensation workloads for Panacea. */
WorkloadCounts panaceaTotalWorkload(std::uint64_t k, double rho_w,
                                    double rho_x, bool eq6);

} // namespace panacea

#endif // PANACEA_CORE_WORKLOAD_MODEL_H
